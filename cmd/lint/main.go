// Command lint is the repository's multichecker: it runs the custom
// go/analysis-style passes in tools/analyzers (mapiter, floatcmp,
// uncheckedcast, permreturn, doccheck, detsource, ctxflow, hotalloc,
// lockmix) over the given package patterns and exits non-zero when any
// finding survives.
//
// Usage:
//
//	go run ./cmd/lint ./...
//	go run ./cmd/lint -list
//	go run ./cmd/lint -run mapiter,floatcmp ./internal/...
//	go run ./cmd/lint -json ./...            # machine-readable findings
//	go run ./cmd/lint -fix -run ctxflow ./...  # apply mechanical fixes
//
// -json emits one JSON object per finding on stdout (analyzer, position,
// message, fixable), for editor and CI integration. -fix applies the
// mechanical rewrites some analyzers attach (today: ctxflow's
// call-the-Ctx-variant rewrite) and reports what it changed; run the
// linter again afterwards — a rewrite can expose further findings.
//
// Findings can be suppressed line by line with a
// `//lint:allow <analyzer> <reason>` comment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/tools/analyzers"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
}

func run() error {
	var (
		list    = flag.Bool("list", false, "list available analyzers and exit")
		only    = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		asJSON  = flag.Bool("json", false, "emit findings as JSON lines on stdout")
		doFixes = flag.Bool("fix", false, "apply mechanical fixes attached to findings")
	)
	flag.Parse()

	all := analyzers.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	selected := all
	if *only != "" {
		byName := map[string]*analyzers.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns)
	if err != nil {
		return err
	}
	diags := analyzers.RunAll(pkgs, selected)

	if *doFixes {
		return applyFixes(diags)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
				Fixable:  d.Fix != nil,
			}); err != nil {
				return err
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Printf("lint: %d packages, %d analyzers, 0 findings\n", len(pkgs), len(selected))
	}
	return nil
}

// jsonFinding is the -json output shape, one object per line.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable"`
}

// applyFixes rewrites the files whose findings carry mechanical fixes,
// applying each file's edits back to front so earlier offsets stay valid.
func applyFixes(diags []analyzers.Diagnostic) error {
	byFile := map[string][]*analyzers.TextEdit{}
	skipped := 0
	for _, d := range diags {
		if d.Fix == nil {
			skipped++
			continue
		}
		byFile[d.Fix.Filename] = append(byFile[d.Fix.Filename], d.Fix)
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	applied := 0
	for _, file := range files {
		edits := byFile[file]
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		for _, e := range edits {
			if e.Start < 0 || e.End > len(src) || e.Start > e.End {
				return fmt.Errorf("fix for %s has offsets [%d, %d) outside the file", file, e.Start, e.End)
			}
			src = append(src[:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
			applied++
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return err
		}
		fmt.Printf("lint: fixed %d finding(s) in %s\n", len(edits), file)
	}
	fmt.Printf("lint: applied %d fix(es); %d finding(s) need manual attention\n", applied, skipped)
	if skipped > 0 {
		os.Exit(1)
	}
	return nil
}
