// Command lint is the repository's multichecker: it runs the custom
// go/analysis-style passes in tools/analyzers (mapiter, floatcmp,
// uncheckedcast, permreturn) over the given package patterns and exits
// non-zero when any finding survives.
//
// Usage:
//
//	go run ./cmd/lint ./...
//	go run ./cmd/lint -list
//	go run ./cmd/lint -run mapiter,floatcmp ./internal/...
//
// Findings can be suppressed line by line with a
// `//lint:allow <analyzer> <reason>` comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tools/analyzers"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
}

func run() error {
	var (
		list = flag.Bool("list", false, "list available analyzers and exit")
		only = flag.String("run", "", "comma-separated analyzer subset (default: all)")
	)
	flag.Parse()

	all := analyzers.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	selected := all
	if *only != "" {
		byName := map[string]*analyzers.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns)
	if err != nil {
		return err
	}
	diags := analyzers.RunAll(pkgs, selected)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Printf("lint: %d packages, %d analyzers, 0 findings\n", len(pkgs), len(selected))
	return nil
}
