// Command cachesim reports the simulated L2 behaviour of a kernel over a
// MatrixMarket matrix under one or more reordering techniques.
//
// Usage:
//
//	cachesim -in a.mtx [-techniques RANDOM,RABBIT,RABBIT++]
//	         [-kernel spmv-csr|spmv-coo|spmm-4|spmm-256|spgemm|spgemm-cluster]
//	         [-l2 262144] [-line 128] [-ways 16] [-belady] [-workers n]
//	         [-impl fast|reference]
//	         [-devices K] [-partition rowblock|metis|community]
//
// Techniques are reordered and simulated concurrently on a bounded worker
// pool (-workers, default all CPUs); the table rows keep the -techniques
// order regardless of completion order. -impl selects the simulator
// implementation: the arena/streaming fast path (default) or the seed
// reference implementation, which produces bit-identical numbers and
// exists for differential checks.
//
// -devices K > 1 switches to the multi-device model: the L2 splits into K
// private caches, rows are assigned to devices by -partition (over the
// reordered matrix), and the table reports remote-traffic fraction and
// per-device load imbalance instead of dead lines. Belady and the
// spgemm-cluster kernel have no multi-device counterpart.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/gpumodel"
	"repro/internal/kernels"
	"repro/internal/multidev"
	"repro/internal/partition"
	"repro/internal/reorder"
	"repro/internal/report"
	"repro/internal/sparse"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "input MatrixMarket file (required)")
		techs   = flag.String("techniques", "ORIGINAL,RANDOM,RABBIT,RABBIT++", "comma-separated techniques")
		kernel  = flag.String("kernel", "spmv-csr", "kernel: spmv-csr, spmv-coo, spmm-4, spmm-256, spgemm, spgemm-cluster")
		l2      = flag.Int64("l2", 256<<10, "L2 capacity in bytes")
		line    = flag.Int64("line", 128, "cache line size in bytes")
		ways    = flag.Int("ways", 16, "associativity")
		belady  = flag.Bool("belady", false, "also simulate Belady-optimal replacement")
		workers = flag.Int("workers", 0, "concurrent technique simulations (0 = all CPUs, 1 = serial)")
		impl    = flag.String("impl", "fast", "simulator implementation: fast or reference (differential check)")
		devices = flag.Int("devices", 1, "simulated compute devices with private L2 slices (1 = flat single L2)")
		part    = flag.String("partition", "rowblock", "row->device partitioner for -devices > 1: rowblock, metis, community")
	)
	flag.Parse()
	simImpl, err := cachesim.ParseImpl(*impl)
	if err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	var k gpumodel.Kernel
	switch *kernel {
	case "spmv-csr":
		k = gpumodel.Kernel{Kind: gpumodel.SpMVCSR}
	case "spmv-coo":
		k = gpumodel.Kernel{Kind: gpumodel.SpMVCOO}
	case "spmm-4":
		k = gpumodel.Kernel{Kind: gpumodel.SpMMCSR, K: 4}
	case "spmm-256":
		k = gpumodel.Kernel{Kind: gpumodel.SpMMCSR, K: 256}
	case "spgemm":
		k = gpumodel.Kernel{Kind: gpumodel.SpGEMMCSR}
	case "spgemm-cluster":
		k = gpumodel.Kernel{Kind: gpumodel.SpGEMMCSRCluster}
	default:
		return fmt.Errorf("unknown kernel %q", *kernel)
	}
	cfg := cachesim.Config{CapacityBytes: *l2, LineBytes: *line, Ways: int32(*ways)}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if *devices < 1 {
		return fmt.Errorf("-devices must be >= 1, got %d", *devices)
	}
	if *devices > 1 {
		switch *part {
		case "rowblock", "metis", "community":
		default:
			return fmt.Errorf("unknown partitioner %q (want rowblock, metis, or community)", *part)
		}
		if *belady {
			return fmt.Errorf("-belady has no multi-device counterpart; drop it or use -devices 1")
		}
		if k.Kind == gpumodel.SpGEMMCSRCluster {
			return fmt.Errorf("kernel %s has no multi-device trace; use -kernel spgemm", *kernel)
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	m, err := sparse.ReadMatrixMarket(bufio.NewReader(f))
	f.Close()
	if err != nil {
		return err
	}
	n, nnz := int64(m.NumRows), int64(m.NNZ())

	// The SpGEMM kinds simulate C = M·M, so they need the product's
	// symbolic shape: the work totals parameterize the analytic traffic
	// model and trace bound (all permutation-invariant), and the
	// per-technique traces need the permuted output row sizes.
	if k.Kind == gpumodel.SpGEMMCSR || k.Kind == gpumodel.SpGEMMCSRCluster {
		info, err := kernels.SpGEMMSymbolic(m, m)
		if err != nil {
			return fmt.Errorf("%s kernel: %w", *kernel, err)
		}
		k.Work = gpumodel.SpGEMMWork{Flops: info.Flops, NNZB: nnz, NNZC: info.NNZC}
	}

	cols := []string{"technique", "traffic", "hit-rate", "dead-lines"}
	title := fmt.Sprintf("%s on %s (%d rows, %d nnz), L2 %dKB", k.String(), *in, n, nnz, *l2>>10)
	if *devices > 1 {
		cols = []string{"technique", "traffic", "hit-rate", "remote%", "imbalance", "max-dev"}
		title = fmt.Sprintf("%s, %d devices (%s split)", title, *devices, *part)
	}
	if *belady {
		cols = append(cols, "belady-traffic")
	}
	tb := report.New(title, cols...)

	traceFor := func(pm *sparse.CSR) func(func(int64)) {
		switch k.Kind {
		case gpumodel.SpMVCOO:
			return trace.SpMVCOO(sparse.CSRToCOO(pm), *line)
		case gpumodel.SpMMCSR:
			return trace.SpMMCSR(pm, k.K, *line)
		case gpumodel.SpGEMMCSR, gpumodel.SpGEMMCSRCluster:
			pinfo, err := kernels.SpGEMMSymbolic(pm, pm)
			if err != nil {
				// The square check above already passed; a failure here
				// would be a programming error, not bad input.
				panic(err)
			}
			if k.Kind == gpumodel.SpGEMMCSRCluster {
				return trace.SpGEMMCluster(pm, pm, pinfo.RowNNZ, nil, *line)
			}
			return trace.SpGEMM(pm, pm, pinfo.RowNNZ, *line)
		default:
			return trace.SpMVCSR(pm, *line)
		}
	}
	// ownerFor assigns each row of the reordered matrix to a device.
	ownerFor := func(pm *sparse.CSR) []int32 {
		switch *part {
		case "metis":
			return partition.Partition(pm, partition.Options{Parts: int32(*devices)})
		case "community":
			return partition.FromCommunities(core.Rabbit(pm).Communities, int32(*devices))
		default:
			return partition.RowBlocks(pm.NumRows, int32(*devices))
		}
	}
	ownedTraceFor := func(pm *sparse.CSR, owner []int32) trace.OwnedTrace {
		switch k.Kind {
		case gpumodel.SpMVCOO:
			return trace.SpMVCOOOwned(sparse.CSRToCOO(pm), owner, *line)
		case gpumodel.SpMMCSR:
			return trace.SpMMCSROwned(pm, k.K, owner, *line)
		case gpumodel.SpGEMMCSR:
			pinfo, err := kernels.SpGEMMSymbolic(pm, pm)
			if err != nil {
				panic(err)
			}
			return trace.SpGEMMOwned(pm, pm, pinfo.RowNNZ, owner, *line)
		default:
			return trace.SpMVCSROwned(pm, owner, *line)
		}
	}
	// Reorder and simulate the techniques concurrently; rows land in
	// their -techniques slot so output order is deterministic.
	names := strings.Split(*techs, ",")
	rows := make([][]string, len(names))
	errs := make([]error, len(names))
	sem := make(chan struct{}, *workers)
	var wg sync.WaitGroup
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t, err := reorder.ByName(strings.TrimSpace(name))
			if err != nil {
				errs[i] = err
				return
			}
			pm := m.PermuteSymmetric(t.Order(m))
			if *devices > 1 {
				mcfg := multidev.Config{Devices: *devices, L2: cfg.Split(*devices), Impl: simImpl}
				mds := multidev.Simulate(mcfg, ownedTraceFor(pm, ownerFor(pm)))
				rows[i] = []string{
					t.Name(),
					report.X(gpumodel.NormalizedTraffic(mds.Flat(), k, n, nnz)),
					report.Pct(mds.Flat().HitRate()),
					report.Pct(mds.RemoteFraction()),
					report.F(mds.Imbalance()),
					report.Bytes(mds.MaxDeviceTrafficBytes()),
				}
				return
			}
			s := cachesim.SimulateLRUWith(cfg, simImpl, traceFor(pm))
			row := []string{
				t.Name(),
				report.X(gpumodel.NormalizedTraffic(s, k, n, nnz)),
				report.Pct(s.HitRate()),
				report.Pct(s.DeadLineFraction()),
			}
			if *belady {
				hint := k.TraceAccessUpperBound(n, nnz, *line)
				bs := cachesim.SimulateBeladyFunc(cfg, simImpl, traceFor(pm), hint)
				row = append(row, report.X(gpumodel.NormalizedTraffic(bs, k, n, nnz)))
			}
			rows[i] = row
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, row := range rows {
		tb.Add(row...)
	}
	tb.Note("traffic is normalized to the kernel's analytic compulsory traffic")
	return tb.Render(os.Stdout)
}
