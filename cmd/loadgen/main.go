// Command loadgen drives the reorderd async job API with a Zipf-skewed
// matrix popularity distribution and reports latency, throughput, and
// store-hit/forwarding ratios as JSON. It brings up its target peers
// in-process (real listeners, real HTTP) so a single invocation can
// compare a 1-peer deployment against a consistent-hash ring without any
// external orchestration, and it measures the binary CSR wire format
// against MatrixMarket (encoded bytes and parse time) over the same
// matrix set.
//
// Usage:
//
//	loadgen [-peers 1,3] [-requests N] [-clients N] [-matrices N]
//	        [-nodes N] [-degree N] [-zipf-s S] [-technique T]
//	        [-workers N] [-seed N] [-out FILE] [-check]
//
// The -check flag turns the run into a self-asserting smoke test: it
// fails unless the Zipf tail produced store hits and (on multi-peer
// rings) round-robin submission produced cross-peer forwards. The check
// script runs it at both ring sizes; bench.sh records the full output as
// BENCH_serve.json.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/sparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// options collects the flag values of one invocation.
type options struct {
	peerCounts []int
	requests   int
	clients    int
	matrices   int
	nodes      int
	degree     int
	zipfS      float64
	technique  string
	workers    int
	seed       uint64
	out        string
	selfCheck  bool
}

func parseFlags() (options, error) {
	var (
		peers     = flag.String("peers", "1,3", "comma-separated ring sizes to sweep (in-process peers per run)")
		requests  = flag.Int("requests", 64, "job submissions per run")
		clients   = flag.Int("clients", 4, "concurrent client goroutines")
		matrices  = flag.Int("matrices", 8, "distinct matrices in the popularity distribution")
		nodes     = flag.Int("nodes", 256, "nodes per generated matrix")
		degree    = flag.Int("degree", 8, "average degree per generated matrix")
		zipfS     = flag.Float64("zipf-s", 1.3, "Zipf exponent of matrix popularity (higher = more skew = more store hits)")
		technique = flag.String("technique", "RABBIT++", "reordering technique requested for every job")
		workers   = flag.Int("workers", 2, "reordering workers per peer")
		seed      = flag.Uint64("seed", 1, "RNG seed for matrix generation and the request schedule")
		out       = flag.String("out", "", "write the JSON report to this file (default stdout)")
		selfCheck = flag.Bool("check", false, "fail unless the run saw store hits (and forwards on multi-peer rings)")
	)
	flag.Parse()
	o := options{
		requests: *requests, clients: *clients, matrices: *matrices,
		nodes: *nodes, degree: *degree, zipfS: *zipfS,
		technique: *technique, workers: *workers, seed: *seed,
		out: *out, selfCheck: *selfCheck,
	}
	for _, tok := range strings.Split(*peers, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 1 {
			return o, fmt.Errorf("bad -peers entry %q", tok)
		}
		o.peerCounts = append(o.peerCounts, n)
	}
	if len(o.peerCounts) == 0 {
		return o, fmt.Errorf("-peers selected no ring sizes")
	}
	if o.requests < 1 || o.clients < 1 || o.matrices < 1 {
		return o, fmt.Errorf("-requests, -clients, and -matrices must be positive")
	}
	if o.zipfS <= 1 {
		return o, fmt.Errorf("-zipf-s must be > 1, got %v", o.zipfS)
	}
	return o, nil
}

// wireReport compares the two upload encodings over the generated matrix
// set: total encoded bytes and total single-threaded parse time.
type wireReport struct {
	Matrices        int     `json:"matrices"`
	MMBytes         int64   `json:"mm_bytes"`
	BinaryBytes     int64   `json:"binary_bytes"`
	BytesRatio      float64 `json:"binary_to_mm_bytes_ratio"`
	MMParseNs       int64   `json:"mm_parse_ns"`
	BinaryParseNs   int64   `json:"binary_parse_ns"`
	ParseSpeedup    float64 `json:"mm_to_binary_parse_speedup"`
	ParseIterations int     `json:"parse_iterations"`
}

// runReport is one ring-size sweep point.
type runReport struct {
	Peers          int     `json:"peers"`
	Requests       int     `json:"requests"`
	Clients        int     `json:"clients"`
	WallMs         float64 `json:"wall_ms"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	LatencyMeanMs  float64 `json:"latency_mean_ms"`
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP90Ms   float64 `json:"latency_p90_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`
	StoreHits      int64   `json:"store_hits"`
	StoreHitRatio  float64 `json:"store_hit_ratio"`
	Forwards       int64   `json:"forwards"`
	CrossPeerRatio float64 `json:"cross_peer_ratio"`
}

// report is the full JSON document loadgen emits.
type report struct {
	Benchmark string      `json:"benchmark"`
	ZipfS     float64     `json:"zipf_s"`
	Technique string      `json:"technique"`
	Wire      wireReport  `json:"wire"`
	Runs      []runReport `json:"runs"`
	HostCPUs  int         `json:"host_logical_cpus"`
}

func run() error {
	o, err := parseFlags()
	if err != nil {
		return err
	}

	// Generate the matrix population once; every sweep point replays the
	// same schedule against it so ring sizes are directly comparable.
	mats, bodies, err := generateMatrices(o)
	if err != nil {
		return err
	}
	wire, err := measureWire(mats, bodies)
	if err != nil {
		return err
	}
	schedule := makeSchedule(o)

	rep := report{
		Benchmark: fmt.Sprintf("reorderd async job API under Zipf(s=%g) popularity over %d planted-partition matrices (%d nodes, avg degree %d)",
			o.zipfS, o.matrices, o.nodes, o.degree),
		ZipfS:     o.zipfS,
		Technique: o.technique,
		Wire:      wire,
		HostCPUs:  runtime.NumCPU(),
	}
	for _, n := range o.peerCounts {
		rr, err := runSweepPoint(o, n, bodies, schedule)
		if err != nil {
			return fmt.Errorf("%d-peer run: %w", n, err)
		}
		rep.Runs = append(rep.Runs, rr)
		fmt.Fprintf(os.Stderr, "loadgen: peers=%d requests=%d p50=%.1fms p99=%.1fms store_hits=%d forwards=%d\n",
			rr.Peers, rr.Requests, rr.LatencyP50Ms, rr.LatencyP99Ms, rr.StoreHits, rr.Forwards)
	}

	if o.selfCheck {
		if err := selfCheck(rep); err != nil {
			return err
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if o.out != "" {
		return os.WriteFile(o.out, enc, 0o644)
	}
	_, err = os.Stdout.Write(enc)
	return err
}

// generateMatrices builds the matrix population and its binary upload
// bodies. Distinct seeds give distinct digests, so each matrix is its own
// job-store entry.
func generateMatrices(o options) ([]*sparse.CSR, [][]byte, error) {
	if !check.FitsInt32(o.nodes) || !check.FitsInt32(o.degree) {
		return nil, nil, fmt.Errorf("-nodes/-degree overflow int32")
	}
	mats := make([]*sparse.CSR, o.matrices)
	bodies := make([][]byte, o.matrices)
	for i := range mats {
		g := gen.PlantedPartition{
			Nodes:       check.SafeInt32(o.nodes),
			Communities: 8,
			AvgDegree:   check.SafeInt32(o.degree),
			Mu:          0.1,
		}
		mats[i] = g.Generate(o.seed + uint64(i)*7919)
		var buf bytes.Buffer
		if err := sparse.WriteBinaryCSR(&buf, mats[i]); err != nil {
			return nil, nil, err
		}
		bodies[i] = buf.Bytes()
	}
	return mats, bodies, nil
}

// measureWire encodes every matrix in both formats and times repeated
// single-threaded parses of each, quantifying what the binary upload path
// saves over MatrixMarket text.
func measureWire(mats []*sparse.CSR, bodies [][]byte) (wireReport, error) {
	const iters = 10
	w := wireReport{Matrices: len(mats), ParseIterations: iters}
	mmBodies := make([][]byte, len(mats))
	for i, m := range mats {
		var mm bytes.Buffer
		if err := sparse.WriteMatrixMarket(&mm, m); err != nil {
			return w, err
		}
		mmBodies[i] = mm.Bytes()
		w.MMBytes += int64(mm.Len())
		w.BinaryBytes += int64(len(bodies[i]))
	}
	start := time.Now()
	for it := 0; it < iters; it++ {
		for _, b := range mmBodies {
			if _, err := sparse.ReadMatrixMarket(bytes.NewReader(b)); err != nil {
				return w, err
			}
		}
	}
	w.MMParseNs = time.Since(start).Nanoseconds()
	start = time.Now()
	for it := 0; it < iters; it++ {
		for _, b := range bodies {
			if _, err := sparse.ReadBinaryCSR(bytes.NewReader(b)); err != nil {
				return w, err
			}
		}
	}
	w.BinaryParseNs = time.Since(start).Nanoseconds()
	if w.MMBytes > 0 {
		w.BytesRatio = float64(w.BinaryBytes) / float64(w.MMBytes)
	}
	if w.BinaryParseNs > 0 {
		w.ParseSpeedup = float64(w.MMParseNs) / float64(w.BinaryParseNs)
	}
	return w, nil
}

// makeSchedule fixes which matrix each request submits, drawn from the
// Zipf popularity distribution, so every sweep point sees identical load.
func makeSchedule(o options) []int {
	r := gen.NewRNG(o.seed ^ 0x9e3779b97f4a7c15)
	schedule := make([]int, o.requests)
	for i := range schedule {
		schedule[i] = int(r.Zipf(check.SafeInt32(o.matrices), o.zipfS))
	}
	return schedule
}

// peerGroup is one in-process ring: n servers on real listeners sharing a
// static peer list.
type peerGroup struct {
	urls    []string
	servers []*serve.Server
	https   []*http.Server
	client  *http.Client
}

// startPeers brings up the ring listener-first: every address is known
// before any server is constructed, exactly like a static -peers
// deployment.
func startPeers(n int, cfg serve.Config) (*peerGroup, error) {
	g := &peerGroup{client: &http.Client{}}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			g.stop()
			return nil, err
		}
		listeners[i] = ln
		g.urls = append(g.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		c := cfg
		c.Self = g.urls[i]
		c.Peers = append([]string{}, g.urls...)
		c.ForwardClient = g.client
		s := serve.New(c)
		hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go hs.Serve(listeners[i])
		g.servers = append(g.servers, s)
		g.https = append(g.https, hs)
	}
	return g, nil
}

func (g *peerGroup) stop() {
	g.client.CloseIdleConnections()
	for _, hs := range g.https {
		hs.Close()
	}
	for _, s := range g.servers {
		s.Close()
	}
}

// jobReply is the subset of the job API response loadgen consumes.
type jobReply struct {
	JobID    string `json:"job_id"`
	Status   string `json:"status"`
	StoreHit bool   `json:"store_hit"`
	Error    string `json:"error"`
}

// runSweepPoint executes the request schedule against an n-peer ring and
// aggregates latency and routing statistics.
func runSweepPoint(o options, n int, bodies [][]byte, schedule []int) (runReport, error) {
	group, err := startPeers(n, serve.Config{Workers: o.workers})
	if err != nil {
		return runReport{}, err
	}
	defer group.stop()

	type job struct{ idx, mat int }
	jobs := make(chan job)
	latencies := make([]time.Duration, len(schedule))
	var storeHits int64
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				// Round-robin entry peer: with n > 1 a large fraction of
				// submissions lands on a non-owner and must forward.
				base := group.urls[jb.idx%n]
				t0 := time.Now()
				hit, err := submitAndAwait(group.client, base, o.technique, bodies[jb.mat])
				elapsed := time.Since(t0)
				mu.Lock()
				latencies[jb.idx] = elapsed
				if hit {
					storeHits++
				}
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("request %d (matrix %d via %s): %w", jb.idx, jb.mat, base, err)
				}
				mu.Unlock()
			}
		}()
	}
	for i, mat := range schedule {
		jobs <- job{idx: i, mat: mat}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return runReport{}, firstErr
	}

	var forwards int64
	for _, u := range group.urls {
		f, err := scrapeCounter(group.client, u, "reorderd_forwards_total")
		if err != nil {
			return runReport{}, err
		}
		forwards += f
	}

	sorted := append([]time.Duration{}, latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	rr := runReport{
		Peers:         n,
		Requests:      len(schedule),
		Clients:       o.clients,
		WallMs:        float64(wall) / float64(time.Millisecond),
		LatencyMeanMs: float64(total) / float64(len(sorted)) / float64(time.Millisecond),
		LatencyP50Ms:  pct(0.50),
		LatencyP90Ms:  pct(0.90),
		LatencyP99Ms:  pct(0.99),
		StoreHits:     storeHits,
		Forwards:      forwards,
	}
	if wall > 0 {
		rr.ThroughputRPS = float64(len(schedule)) / wall.Seconds()
	}
	rr.StoreHitRatio = float64(storeHits) / float64(len(schedule))
	rr.CrossPeerRatio = float64(forwards) / float64(len(schedule))
	return rr, nil
}

// submitAndAwait POSTs one job and polls it to completion, reporting
// whether the submission was a store hit.
func submitAndAwait(client *http.Client, base, technique string, body []byte) (bool, error) {
	u := base + "/jobs?technique=" + strings.ReplaceAll(technique, "+", "%2B")
	resp, err := client.Post(u, sparse.BinaryCSRContentType, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return false, fmt.Errorf("submit status %d: %s", resp.StatusCode, payload)
	}
	var jr jobReply
	if err := json.Unmarshal(payload, &jr); err != nil {
		return false, err
	}
	deadline := time.Now().Add(60 * time.Second)
	for jr.Status == "queued" || jr.Status == "running" {
		if time.Now().After(deadline) {
			return jr.StoreHit, fmt.Errorf("job %s stuck in %q", jr.JobID, jr.Status)
		}
		presp, err := client.Get(base + "/jobs/" + jr.JobID + "?wait=1000")
		if err != nil {
			return jr.StoreHit, err
		}
		ppayload, err := io.ReadAll(presp.Body)
		presp.Body.Close()
		if err != nil {
			return jr.StoreHit, err
		}
		if presp.StatusCode != http.StatusOK {
			return jr.StoreHit, fmt.Errorf("poll status %d: %s", presp.StatusCode, ppayload)
		}
		hit := jr.StoreHit
		if err := json.Unmarshal(ppayload, &jr); err != nil {
			return hit, err
		}
		jr.StoreHit = hit // polls never set the submit-time marker
	}
	if jr.Status != "done" {
		return jr.StoreHit, fmt.Errorf("job %s failed: %s", jr.JobID, jr.Error)
	}
	return jr.StoreHit, nil
}

// scrapeCounter reads one un-labelled series from a peer's /metrics.
func scrapeCounter(client *http.Client, base, series string) (int64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, series+" ") {
			return strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, series+" ")), 10, 64)
		}
	}
	return 0, fmt.Errorf("%s: series %s not found in /metrics", base, series)
}

// selfCheck turns the report into a pass/fail verdict for CI: the Zipf
// tail must produce store hits, multi-peer rings must forward, and the
// binary format must beat MatrixMarket on both bytes and parse time.
func selfCheck(rep report) error {
	for _, rr := range rep.Runs {
		if rr.StoreHits == 0 {
			return fmt.Errorf("check: %d-peer run saw zero store hits; Zipf resubmission is not exercising the store", rr.Peers)
		}
		if rr.Peers > 1 && rr.Forwards == 0 {
			return fmt.Errorf("check: %d-peer run saw zero forwards; sharding is not routing", rr.Peers)
		}
	}
	if rep.Wire.BytesRatio >= 1 {
		return fmt.Errorf("check: binary encoding (%d bytes) is not smaller than MatrixMarket (%d bytes)",
			rep.Wire.BinaryBytes, rep.Wire.MMBytes)
	}
	if rep.Wire.ParseSpeedup <= 1 {
		return fmt.Errorf("check: binary parse (%d ns) is not faster than MatrixMarket (%d ns)",
			rep.Wire.BinaryParseNs, rep.Wire.MMParseNs)
	}
	return nil
}
