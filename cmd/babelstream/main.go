// Command babelstream measures the host's achievable memory bandwidth with
// the four classic STREAM kernels, the same methodology the paper uses
// (via BabelStream) to establish the A6000's 672 GB/s achievable bandwidth
// that ideal run times divide by (Section IV-B).
//
// Usage:
//
//	babelstream [-elems 67108864] [-reps 3]
package main

import (
	"flag"
	"fmt"

	"repro/internal/kernels"
)

func main() {
	var (
		elems = flag.Int("elems", 64<<20, "elements per array (float32)")
		reps  = flag.Int("reps", 3, "repetitions per kernel (best is reported)")
	)
	flag.Parse()
	fmt.Printf("arrays: 3 x %d MB, %d reps\n", *elems*4>>20, *reps)
	r := kernels.MeasureStreamBandwidth(*elems, *reps)
	fmt.Printf("copy : %7.2f GB/s\n", r.CopyGBs)
	fmt.Printf("mul  : %7.2f GB/s\n", r.MulGBs)
	fmt.Printf("add  : %7.2f GB/s\n", r.AddGBs)
	fmt.Printf("triad: %7.2f GB/s\n", r.TriadGBs)
	fmt.Printf("best : %7.2f GB/s (the paper's A6000 measures 672 of 768 GB/s peak)\n", r.Best())
}
