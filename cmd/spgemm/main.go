// Command spgemm multiplies two MatrixMarket matrices on the host CPU
// (C = A·B, or C = A·A when -b is omitted), reports the product's shape
// statistics — nnz(C), flop count, compression ratio — and times the
// selected row strategy. With -cluster the Gustavson outer loop is tiled
// by community blocks and the per-tile accumulator footprint and captured
// B-row reuse are reported alongside. All execution modes produce
// bit-identical output; -verify proves it on the given input.
//
// Usage:
//
//	spgemm -in a.mtx [-b b.mtx] [-strategy dense|merge] [-cluster]
//	       [-technique RABBIT] [-verify] [-out c.mtx]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/kernels"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spgemm:", err)
		os.Exit(1)
	}
}

func readMM(path string) (*sparse.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := sparse.ReadMatrixMarket(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return m, nil
}

func run() error {
	var (
		in      = flag.String("in", "", "left operand A, MatrixMarket file (required)")
		bPath   = flag.String("b", "", "right operand B (default: A, computing A·A)")
		strat   = flag.String("strategy", "dense", "row accumulation strategy: dense or merge")
		cluster = flag.Bool("cluster", false, "tile the outer loop cluster-wise and report tile stats")
		tech    = flag.String("technique", "", "reorder A (and x-side of B) with this technique first; requires square A = B")
		verify  = flag.Bool("verify", false, "cross-check dense, merge, and cluster-wise outputs for exact equality")
		outPath = flag.String("out", "", "write the product C as MatrixMarket (optional)")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	strategy, err := kernels.ParseSpGEMMStrategy(*strat)
	if err != nil {
		return err
	}
	a, err := readMM(*in)
	if err != nil {
		return err
	}
	b := a
	if *bPath != "" {
		if b, err = readMM(*bPath); err != nil {
			return err
		}
	}

	if *tech != "" {
		t, err := reorder.ByName(*tech)
		if err != nil {
			return err
		}
		if *bPath != "" || !a.IsSquare() {
			return fmt.Errorf("-technique applies P·A·Pᵀ and needs a square A·A product: %w", sparse.ErrNotSquare)
		}
		p := t.Order(a)
		a = a.PermuteSymmetric(p)
		b = a
		fmt.Printf("reordered with %s\n", t.Name())
	}

	info, err := kernels.SpGEMMSymbolic(a, b)
	if err != nil {
		return err
	}
	fmt.Printf("A %dx%d (%d nnz) · B %dx%d (%d nnz) -> C %dx%d (%d nnz)\n",
		a.NumRows, a.NumCols, a.NNZ(), b.NumRows, b.NumCols, b.NNZ(), a.NumRows, b.NumCols, info.NNZC)
	fmt.Printf("flops=%d  compression=%.3f (flops per output nonzero)\n", info.Flops, info.CompressionRatio())

	var c *sparse.CSR
	start := time.Now()
	if *cluster {
		var stats kernels.SpGEMMClusterStats
		c, stats, err = kernels.SpGEMMClusterWise(a, b, nil)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("cluster-wise: %d tiles, max tile accumulator %.1f KB, %d distinct B-row loads (vs %d row-wise) in %v\n",
			stats.Tiles, float64(stats.MaxTileAccBytes())/1024, stats.DistinctBRowLoads, a.NNZ(), elapsed.Round(time.Microsecond))
	} else {
		c, err = kernels.SpGEMM(a, b, strategy)
		if err != nil {
			return err
		}
		fmt.Printf("row-wise (%s): computed in %v\n", strategy, time.Since(start).Round(time.Microsecond))
	}

	if *verify {
		dense, err := kernels.SpGEMM(a, b, kernels.SpGEMMDenseAcc)
		if err != nil {
			return err
		}
		merge, err := kernels.SpGEMM(a, b, kernels.SpGEMMSortedMerge)
		if err != nil {
			return err
		}
		clu, _, err := kernels.SpGEMMClusterWise(a, b, nil)
		if err != nil {
			return err
		}
		if !dense.Equal(merge) || !dense.Equal(clu) || !dense.Equal(c) {
			return fmt.Errorf("execution modes disagree on %s", *in)
		}
		fmt.Println("verified: dense, merge, and cluster-wise outputs are bit-identical")
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		if err := sparse.WriteMatrixMarket(w, c); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	return nil
}
