// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run id[,id...]] [-corpus small|full] [-matrices a,b,c]
//	            [-workers n] [-impl fast|reference] [-csv] [-v]
//
// Run "experiments -list" for the experiment inventory. With no -run flag
// every experiment runs, sharing one corpus and its cached intermediate
// results (RABBIT detections, permutations, cache simulations).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/gpumodel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		corpus   = flag.String("corpus", "full", "corpus preset: small or full")
		matrices = flag.String("matrices", "", "comma-separated corpus subset (default: all 50)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		ablate   = flag.Bool("ablations", false, "run the ablation suite instead of the paper experiments")
		outdir   = flag.String("outdir", "", "also write each result as <outdir>/<id>.csv")
		workers  = flag.Int("workers", 0, "concurrent simulation workers (0 = all CPUs, 1 = serial)")
		verbose  = flag.Bool("v", false, "log per-matrix progress to stderr")
		list     = flag.Bool("list", false, "list experiments and corpus matrices, then exit")
		impl     = flag.String("impl", "fast", "cache simulator implementation: fast or reference (differential check)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Paper)
		}
		fmt.Println("ablations (beyond the paper; run with -run or -ablations):")
		for _, e := range experiments.Ablations() {
			fmt.Printf("  %-16s %s\n", e.ID, e.Paper)
		}
		fmt.Println("corpus matrices:")
		for _, e := range gen.Corpus() {
			fmt.Printf("  %-24s %-14s %s\n", e.Name, e.Family, e.Source)
		}
		return nil
	}

	cfg := experiments.FullConfig()
	switch *corpus {
	case "full":
	case "small":
		cfg = experiments.SmallConfig()
	default:
		return fmt.Errorf("unknown corpus %q (want small or full)", *corpus)
	}
	if *matrices != "" {
		cfg.Matrices = strings.Split(*matrices, ",")
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	cfg.Workers = *workers
	simImpl, err := cachesim.ParseImpl(*impl)
	if err != nil {
		return err
	}
	cfg.Impl = simImpl
	runner := experiments.NewRunner(cfg)

	fmt.Printf("# corpus=%s device=%q matrices=%d workers=%d\n",
		cfg.Preset, cfg.Device.Name, len(runner.Entries()), runner.Workers())
	_ = gpumodel.A6000() // keep the real spec linked for -list users reading the source

	render := func(tb interface {
		Render(io.Writer) error
		RenderCSV(io.Writer) error
	}) error {
		if *csv {
			return tb.RenderCSV(os.Stdout)
		}
		return tb.Render(os.Stdout)
	}

	if *runIDs == "" {
		if *csv {
			return fmt.Errorf("-csv requires -run with explicit ids")
		}
		set := experiments.Registry()
		runAll := experiments.RunAll
		if *ablate {
			set = experiments.Ablations()
			runAll = experiments.RunAblations
		}
		if err := runAll(runner, os.Stdout); err != nil {
			return err
		}
		if *outdir != "" {
			// Results are cached in the runner, so the export re-renders
			// without re-simulating.
			return experiments.Export(set, runner, *outdir)
		}
		return nil
	}
	for _, id := range strings.Split(*runIDs, ",") {
		e, err := experiments.ByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		fmt.Printf("\n# %s [%s]\n", e.Paper, e.ID)
		tb, err := e.Run(runner)
		if err != nil {
			return err
		}
		if err := render(tb); err != nil {
			return err
		}
	}
	return nil
}
