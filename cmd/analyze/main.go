// Command analyze prints the structural, community, and ordering-quality
// diagnostics of a MatrixMarket matrix — everything Section V of the paper
// measures to predict whether reordering will reach hardware limits.
//
// Usage:
//
//	analyze -in a.mtx [-window 256] [-line 128]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/reorder"
	"repro/internal/report"
	"repro/internal/sparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in     = flag.String("in", "", "input MatrixMarket file (required)")
		window = flag.Int("window", 256, "row window for the working-set estimate")
		line   = flag.Int64("line", 128, "cache line size in bytes for packing metrics")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	m, err := sparse.ReadMatrixMarket(bufio.NewReader(f))
	f.Close()
	if err != nil {
		return err
	}

	// Structural profile.
	st := report.New(fmt.Sprintf("structure of %s", *in), "metric", "value")
	st.Add("rows x cols", fmt.Sprintf("%d x %d", m.NumRows, m.NumCols))
	st.Add("nonzeros", fmt.Sprintf("%d", m.NNZ()))
	st.Add("average degree", fmt.Sprintf("%.2f", m.AverageDegree()))
	st.Add("degree skew (top 10%)", report.Pct(quality.DegreeSkew(m)))
	st.Add("empty rows", report.Pct(float64(m.EmptyRows())/float64(max32(m.NumRows, 1))))
	st.Add("bandwidth", fmt.Sprintf("%d", m.Bandwidth()))
	st.Add("pattern symmetric", fmt.Sprintf("%v", m.IsPatternSymmetric()))
	if m.IsSquare() {
		st.Add("largest weak component", report.Pct(m.LargestComponentFraction()))
	}
	if err := st.Render(os.Stdout); err != nil {
		return err
	}

	if !m.IsSquare() {
		fmt.Println("matrix is rectangular; community and ordering analyses need square matrices")
		return nil
	}

	// Community diagnostics (Section V).
	rr := core.Rabbit(m)
	cs := core.Analyze(m, rr.Communities)
	ct := report.New("RABBIT community diagnostics (Section V)", "metric", "value")
	ct.Add("communities", fmt.Sprintf("%d", cs.Communities))
	ct.Add("insularity", report.F(cs.Insularity))
	ct.Add("modularity", report.F(cs.Modularity))
	ct.Add("insular nodes", report.Pct(cs.InsularNodeFraction))
	ct.Add("avg community size / N", report.F(cs.AvgCommunitySizeNorm))
	ct.Add("largest community", report.Pct(cs.LargestCommunityFraction))
	verdict := "low insularity: expect headroom; RABBIT++'s insular/hub grouping should help"
	if cs.Insularity >= 0.95 {
		verdict = "high insularity: RABBIT alone should approach hardware limits"
		if cs.LargestCommunityFraction > 0.9 {
			verdict = "degenerate detection (one giant community): insularity is not meaningful here (mawi case)"
		}
	}
	ct.Note("%s", verdict)
	if err := ct.Render(os.Stdout); err != nil {
		return err
	}

	// Ordering quality before/after RABBIT++.
	qt := report.New("ordering quality (cache-model independent)",
		"ordering", "avg-edge-dist", "mean-log2-gap", "line-packing", "workset/N")
	for _, tech := range []reorder.Technique{reorder.Original{}, reorder.Rabbit{}, reorder.RabbitPP{}} {
		p := tech.Order(m)
		s := quality.Measure(m, p, *line, int32(*window))
		qt.Add(tech.Name(),
			fmt.Sprintf("%.0f", s.AvgEdgeDistance),
			report.F(s.MeanLog2Gap),
			report.F(s.LinePacking),
			report.F(s.NormalizedWorkingSet(m.NumRows)))
	}
	return qt.Render(os.Stdout)
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
