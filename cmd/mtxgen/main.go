// Command mtxgen materializes corpus matrices as MatrixMarket files.
//
// Usage:
//
//	mtxgen -out dir [-corpus small|full] [-matrices a,b,c]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mtxgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "", "output directory (required)")
		corpus   = flag.String("corpus", "small", "corpus preset: small or full")
		matrices = flag.String("matrices", "", "comma-separated subset (default: all 50)")
	)
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	preset := gen.Small
	switch *corpus {
	case "small":
	case "full":
		preset = gen.Full
	default:
		return fmt.Errorf("unknown corpus %q", *corpus)
	}
	want := map[string]bool{}
	for _, n := range strings.Split(*matrices, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, e := range gen.Corpus() {
		if len(want) > 0 && !want[e.Name] {
			continue
		}
		m := e.Generate(preset)
		path := filepath.Join(*out, e.Name+".mtx")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := sparse.WriteMatrixMarket(f, m); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%-24s %8d rows %10d nnz -> %s\n", e.Name, m.NumRows, m.NNZ(), path)
	}
	return nil
}
