// Command reorderd serves matrix reordering over HTTP: clients POST a
// MatrixMarket body (or reference a generated corpus matrix) to /reorder
// and get back the permutation plus community-quality metrics. Results are
// cached by (matrix digest × technique) so repeated requests amortize the
// reordering cost, the regime in which the paper's Figure 9 shows
// community reordering pays for itself.
//
// Beyond the synchronous /reorder endpoint, the service exposes an async
// job API (POST /jobs, GET /jobs/{id}) with content-addressed result
// persistence, accepts a compact binary CSR upload format negotiated by
// Content-Type, and can shard job ownership across a static peer ring
// (-self/-peers) with transparent forwarding. docs/SERVING.md documents
// the full surface.
//
// Usage:
//
//	reorderd [-addr :8377] [-workers N] [-queue N] [-cache N] [-store N]
//	         [-max-body-bytes N] [-max-rows N] [-max-timeout D] [-preset small]
//	         [-self URL -peers URL,URL,...]
//
// The -smoke flag runs an in-process self-test (start, reorder a small
// matrix over real HTTP, validate the permutation, exercise the async job
// API and binary upload path, drain) and exits; the check script uses it
// as the service smoke test.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/check"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/sparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reorderd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8377", "listen address")
		workers    = flag.Int("workers", 0, "reordering worker count (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "job queue depth before 429 load shedding")
		cacheN     = flag.Int("cache", 256, "result cache entries (matrix digest x technique)")
		maxBody    = flag.Int64("max-body-bytes", 64<<20, "maximum upload size before 413")
		maxRows    = flag.Int("max-rows", 1<<22, "maximum declared rows/cols in an upload")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "cap on per-request compute deadlines")
		preset     = flag.String("preset", gen.Small.String(), "corpus preset for ?matrix= references (small|full)")
		orderW     = flag.Int("order-workers", 1, "intra-job goroutines for parallel techniques (results identical at any count)")
		storeN     = flag.Int("store", 1024, "async job store entries retained for GET /jobs/{id}")
		self       = flag.String("self", "", "this peer's base URL in a sharded deployment (e.g. http://host:8377)")
		peers      = flag.String("peers", "", "comma-separated peer base URLs forming the consistent-hash ring (include -self)")
		smoke      = flag.Bool("smoke", false, "run an in-process self-test and exit")
	)
	flag.Parse()

	p, err := presetByName(*preset)
	if err != nil {
		return err
	}
	if !check.FitsInt32(*maxRows) {
		return fmt.Errorf("-max-rows %d overflows int32", *maxRows)
	}
	cfg := serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheN,
		StoreEntries: *storeN,
		MaxBodyBytes: *maxBody,
		MaxRows:      check.SafeInt32(*maxRows),
		MaxJobTime:   *maxTimeout,
		Preset:       p,
		OrderWorkers: *orderW,
		Self:         *self,
	}
	if *peers != "" {
		if *self == "" {
			return fmt.Errorf("-peers requires -self so this instance knows its own ring position")
		}
		for _, peer := range strings.Split(*peers, ",") {
			if peer = strings.TrimSpace(peer); peer != "" {
				cfg.Peers = append(cfg.Peers, peer)
			}
		}
	}
	if *smoke {
		return runSmoke(cfg)
	}
	return runServer(*addr, cfg)
}

func presetByName(name string) (gen.Preset, error) {
	switch name {
	case gen.Small.String():
		return gen.Small, nil
	case gen.Full.String():
		return gen.Full, nil
	}
	return gen.Small, fmt.Errorf("unknown preset %q (want %q or %q)", name, gen.Small, gen.Full)
}

// runServer serves until SIGINT/SIGTERM, then drains: stop accepting,
// finish in-flight requests and queued jobs, and exit cleanly.
func runServer(addr string, cfg serve.Config) error {
	s := serve.New(cfg)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "reorderd: listening on %s\n", addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		s.Close()
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "reorderd: %v, draining\n", sig)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutErr := httpSrv.Shutdown(shutCtx)
	s.Close()
	if shutErr != nil {
		return fmt.Errorf("shutdown: %w", shutErr)
	}
	return nil
}

// runSmoke exercises the full service surface in-process: real listener,
// real HTTP round trips, permutation validity, cache-hit accounting, and a
// clean drain. Exit status is the test verdict.
func runSmoke(cfg serve.Config) error {
	s := serve.New(cfg)
	defer s.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// A small two-community matrix: dense 0..3 block plus dense 4..7 block
	// with one bridging edge, symmetric, in MatrixMarket form.
	m := twoCommunityMatrix()
	var mm bytes.Buffer
	if err := sparse.WriteMatrixMarket(&mm, m); err != nil {
		return err
	}

	body := mm.Bytes()
	var first serveReply
	if err := postReorder(base, body, &first); err != nil {
		return fmt.Errorf("cold request: %w", err)
	}
	if first.Cached {
		return fmt.Errorf("cold request unexpectedly served from cache")
	}
	if err := validatePerm(first.Permutation, m.NumRows); err != nil {
		return err
	}
	if first.Quality == nil {
		return fmt.Errorf("response missing quality metrics")
	}

	var second serveReply
	if err := postReorder(base, body, &second); err != nil {
		return fmt.Errorf("warm request: %w", err)
	}
	if !second.Cached {
		return fmt.Errorf("warm request missed the cache")
	}
	if fmt.Sprint(first.Permutation) != fmt.Sprint(second.Permutation) {
		return fmt.Errorf("cache hit returned a different permutation")
	}
	if hits, _ := s.Metrics(); hits < 1 {
		return fmt.Errorf("cache hit counter not incremented (hits=%d)", hits)
	}

	// technique=auto: the advisor must pick a concrete technique, name it
	// in the response, and return a valid permutation.
	var auto serveReply
	if err := postReorderTech(base, "auto", body, &auto); err != nil {
		return fmt.Errorf("auto request: %w", err)
	}
	if auto.Technique == "" || strings.EqualFold(auto.Technique, "auto") {
		return fmt.Errorf("auto request did not resolve to a concrete technique (got %q)", auto.Technique)
	}
	if auto.Advisor == nil || len(auto.Advisor.Ranked) == 0 {
		return fmt.Errorf("auto response missing the advisor block")
	}
	if err := validatePerm(auto.Permutation, m.NumRows); err != nil {
		return fmt.Errorf("auto permutation: %w", err)
	}

	// Sweep every registered technique, with the list fetched from the
	// service itself (/techniques) rather than hardcoded, so a technique
	// added to the reorder registry is exercised here automatically.
	names, err := fetchTechniques(base)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("/techniques returned no techniques")
	}
	for _, name := range names {
		var reply serveReply
		if err := postReorderTech(base, url.QueryEscape(name), body, &reply); err != nil {
			return fmt.Errorf("technique %s: %w", name, err)
		}
		if err := validatePerm(reply.Permutation, m.NumRows); err != nil {
			return fmt.Errorf("technique %s: %w", name, err)
		}
	}

	// Async job API over the binary upload format: submit, poll to
	// completion, and confirm a resubmission is a store hit with the same
	// permutation.
	var bin bytes.Buffer
	if err := sparse.WriteBinaryCSR(&bin, m); err != nil {
		return err
	}
	job, status, err := postJob(base, bin.Bytes())
	if err != nil {
		return fmt.Errorf("job submit: %w", err)
	}
	if status != http.StatusAccepted && status != http.StatusOK {
		return fmt.Errorf("job submit: status %d", status)
	}
	deadline := time.Now().Add(30 * time.Second)
	for job.Status == "queued" || job.Status == "running" {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s did not complete in time", job.JobID)
		}
		if job, err = getJob(base, job.JobID); err != nil {
			return fmt.Errorf("job poll: %w", err)
		}
	}
	if job.Status != "done" || job.Result == nil {
		return fmt.Errorf("job finished in state %q (error %q)", job.Status, job.Error)
	}
	if err := validatePerm(job.Result.Permutation, m.NumRows); err != nil {
		return fmt.Errorf("job permutation: %w", err)
	}
	if fmt.Sprint(job.Result.Permutation) != fmt.Sprint(first.Permutation) {
		return fmt.Errorf("async job and synchronous /reorder disagree on the permutation")
	}
	rejob, status, err := postJob(base, bin.Bytes())
	if err != nil {
		return fmt.Errorf("job resubmit: %w", err)
	}
	if status != http.StatusOK || !rejob.StoreHit {
		return fmt.Errorf("job resubmit was not a store hit (status %d, store_hit %v)", status, rejob.StoreHit)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", mresp.StatusCode)
	}
	if err != nil {
		return err
	}
	if !strings.Contains(string(mbody), "reorderd_advisor_recommendations_total") {
		return fmt.Errorf("metrics missing advisor recommendation counter")
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	s.Close()
	fmt.Println("reorderd smoke: ok")
	return nil
}

type serveReply struct {
	Technique   string  `json:"technique"`
	Cached      bool    `json:"cached"`
	Permutation []int32 `json:"permutation"`
	Quality     *struct {
		Insularity float64 `json:"insularity"`
		Modularity float64 `json:"modularity"`
	} `json:"quality"`
	Advisor *struct {
		Model  string `json:"model"`
		Ranked []struct {
			Technique string `json:"technique"`
		} `json:"ranked"`
	} `json:"advisor"`
}

func postReorder(base string, body []byte, out *serveReply) error {
	return postReorderTech(base, "RABBIT", body, out)
}

// jobReply mirrors the async job API's JSON body.
type jobReply struct {
	JobID    string      `json:"job_id"`
	Status   string      `json:"status"`
	StoreHit bool        `json:"store_hit"`
	Error    string      `json:"error"`
	Result   *serveReply `json:"result"`
}

// postJob submits a binary-CSR body to the async job API using the same
// technique the synchronous smoke requests use, so their permutations are
// directly comparable.
func postJob(base string, body []byte) (jobReply, int, error) {
	resp, err := http.Post(base+"/jobs?technique=RABBIT", sparse.BinaryCSRContentType, bytes.NewReader(body))
	if err != nil {
		return jobReply{}, 0, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return jobReply{}, resp.StatusCode, err
	}
	var out jobReply
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return out, resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, payload)
	}
	return out, resp.StatusCode, json.Unmarshal(payload, &out)
}

// getJob long-polls one round of GET /jobs/{id}.
func getJob(base, id string) (jobReply, error) {
	resp, err := http.Get(base + "/jobs/" + id + "?wait=1000")
	if err != nil {
		return jobReply{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return jobReply{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return jobReply{}, fmt.Errorf("status %d: %s", resp.StatusCode, payload)
	}
	var out jobReply
	return out, json.Unmarshal(payload, &out)
}

// fetchTechniques asks the running service for its registered technique
// names (excluding pseudo-techniques like "auto").
func fetchTechniques(base string) ([]string, error) {
	resp, err := http.Get(base + "/techniques")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("techniques: status %d: %s", resp.StatusCode, payload)
	}
	var reply struct {
		Techniques []string `json:"techniques"`
	}
	if err := json.Unmarshal(payload, &reply); err != nil {
		return nil, err
	}
	return reply.Techniques, nil
}

func postReorderTech(base, technique string, body []byte, out *serveReply) error {
	resp, err := http.Post(base+"/reorder?technique="+technique, "text/plain", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, payload)
	}
	return json.Unmarshal(payload, out)
}

func validatePerm(p []int32, n int32) error {
	if len(p) != int(n) {
		return fmt.Errorf("permutation length %d, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	return nil
}

// twoCommunityMatrix builds the smoke fixture: two 4-cliques joined by a
// single edge, a shape every community technique handles.
func twoCommunityMatrix() *sparse.CSR {
	coo := sparse.NewCOO(8, 8, 64)
	for _, block := range [][2]int32{{0, 4}, {4, 8}} {
		for i := block[0]; i < block[1]; i++ {
			for j := i + 1; j < block[1]; j++ {
				coo.AddSym(i, j, 1)
			}
		}
	}
	coo.AddSym(3, 4, 1)
	return coo.ToCSR()
}
