// Command advisor extracts matrix features, recommends a reordering
// technique, and trains/evaluates the selection model against measured
// miss rates.
//
// Usage:
//
//	advisor features [-in a.mtx | -matrix name [-corpus small|full]] [-json]
//	advisor advise   [-in a.mtx | -matrix name [-corpus small|full]] [-model m]
//	advisor train    [-data d.tsv | -corpus small|full [-matrices a,b] [-workers n]]
//	                 [-out model.json] [-dump-data d.tsv]
//	advisor eval     [-data d.tsv | -corpus small|full [-matrices a,b] [-workers n]]
//	                 [-model m] [-mistakes]
//
// The -model flag accepts "default" (the committed artifact), "rule" (the
// paper-threshold rules), "fixed:TECH" (an always-TECH baseline), or a
// path to a trained JSON artifact. Without -data, train and eval build the
// dataset by simulating every candidate technique over the chosen corpus,
// exactly like the experiments harness.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/advisor"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/sparse"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: advisor features|advise|train|eval [flags] (see -h of each)")
	}
	switch args[0] {
	case "features":
		return runFeatures(args[1:])
	case "advise":
		return runAdvise(args[1:])
	case "train":
		return runTrain(args[1:])
	case "eval":
		return runEval(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want features, advise, train, or eval)", args[0])
	}
}

// matrixFlags is the shared -in / -matrix / -corpus matrix selector.
type matrixFlags struct {
	in     *string
	matrix *string
	corpus *string
}

func addMatrixFlags(fs *flag.FlagSet) matrixFlags {
	return matrixFlags{
		in:     fs.String("in", "", "input MatrixMarket file"),
		matrix: fs.String("matrix", "", "corpus matrix name (alternative to -in)"),
		corpus: fs.String("corpus", "small", "corpus preset for -matrix: small or full"),
	}
}

// load resolves the selector to a matrix and a display name.
func (mf matrixFlags) load() (*sparse.CSR, string, error) {
	switch {
	case *mf.in != "" && *mf.matrix != "":
		return nil, "", fmt.Errorf("-in and -matrix are mutually exclusive")
	case *mf.in != "":
		f, err := os.Open(*mf.in)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		m, err := sparse.ReadMatrixMarket(bufio.NewReader(f))
		if err != nil {
			return nil, "", err
		}
		return m, *mf.in, nil
	case *mf.matrix != "":
		preset, err := parsePreset(*mf.corpus)
		if err != nil {
			return nil, "", err
		}
		e, err := gen.ByName(*mf.matrix)
		if err != nil {
			return nil, "", err
		}
		return e.Generate(preset), e.Name, nil
	default:
		return nil, "", fmt.Errorf("one of -in or -matrix is required")
	}
}

func parsePreset(s string) (gen.Preset, error) {
	switch s {
	case "small":
		return gen.Small, nil
	case "full":
		return gen.Full, nil
	default:
		return 0, fmt.Errorf("unknown corpus %q (want small or full)", s)
	}
}

// parseModel resolves the -model flag value.
func parseModel(s string) (advisor.Model, error) {
	switch {
	case s == "" || s == "default":
		return advisor.DefaultModel(), nil
	case s == "rule":
		return advisor.RuleModel{}, nil
	case strings.HasPrefix(s, "fixed:"):
		return advisor.FixedModel{Technique: strings.TrimPrefix(s, "fixed:")}, nil
	default:
		data, err := os.ReadFile(s)
		if err != nil {
			return nil, err
		}
		return advisor.ParseLinearModel(data)
	}
}

func runFeatures(args []string) error {
	fs := flag.NewFlagSet("advisor features", flag.ContinueOnError)
	mf := addMatrixFlags(fs)
	asJSON := fs.Bool("json", false, "emit the features as JSON instead of name=value lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, name, err := mf.load()
	if err != nil {
		return err
	}
	f := advisor.ExtractFeatures(m)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(f)
	}
	fmt.Printf("matrix=%s rows=%d nnz=%d\n", name, f.Rows, f.NNZ)
	vec := f.Vector()
	for i, fn := range advisor.FeatureNames() {
		fmt.Printf("  %-16s %.6f\n", fn, vec[i])
	}
	return nil
}

func runAdvise(args []string) error {
	fs := flag.NewFlagSet("advisor advise", flag.ContinueOnError)
	mf := addMatrixFlags(fs)
	modelFlag := fs.String("model", "default", "model: default, rule, fixed:TECH, or a JSON artifact path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, name, err := mf.load()
	if err != nil {
		return err
	}
	model, err := parseModel(*modelFlag)
	if err != nil {
		return err
	}
	rec := advisor.Recommend(model, advisor.ExtractFeatures(m))
	fmt.Printf("matrix=%s model=%s best=%s confidence=%.3f\n", name, rec.Model, rec.Best(), rec.Confidence)
	for i, s := range rec.Ranked {
		fmt.Printf("  %d. %-10s score=%.5f\n", i+1, s.Technique, s.Score)
	}
	return nil
}

// datasetFlags is the shared -data / corpus-sweep dataset selector.
type datasetFlags struct {
	data     *string
	corpus   *string
	matrices *string
	workers  *int
	verbose  *bool
}

func addDatasetFlags(fs *flag.FlagSet) datasetFlags {
	return datasetFlags{
		data:     fs.String("data", "", "dataset TSV (default: simulate the corpus)"),
		corpus:   fs.String("corpus", "small", "corpus preset when simulating: small or full"),
		matrices: fs.String("matrices", "", "comma-separated corpus subset when simulating"),
		workers:  fs.Int("workers", 0, "concurrent simulation workers (0 = all CPUs)"),
		verbose:  fs.Bool("v", false, "log per-matrix progress to stderr"),
	}
}

// load reads the TSV or simulates the corpus sweep.
func (df datasetFlags) load() ([]advisor.Sample, error) {
	if *df.data != "" {
		f, err := os.Open(*df.data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return advisor.ReadDataset(bufio.NewReader(f))
	}
	preset, err := parsePreset(*df.corpus)
	if err != nil {
		return nil, err
	}
	cfg := experiments.SmallConfig()
	if preset == gen.Full {
		cfg = experiments.FullConfig()
	}
	if *df.matrices != "" {
		cfg.Matrices = strings.Split(*df.matrices, ",")
	}
	cfg.Workers = *df.workers
	if *df.verbose {
		cfg.Progress = os.Stderr
	}
	return experiments.AdvisorSamples(experiments.NewRunner(cfg))
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("advisor train", flag.ContinueOnError)
	df := addDatasetFlags(fs)
	out := fs.String("out", "", "write the trained model artifact to this path (default: stdout)")
	dumpData := fs.String("dump-data", "", "also write the dataset TSV to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples, err := df.load()
	if err != nil {
		return err
	}
	if *dumpData != "" {
		f, err := os.Create(*dumpData)
		if err != nil {
			return err
		}
		if err := advisor.WriteDataset(f, samples); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d samples to %s\n", len(samples), *dumpData)
	}
	model, err := advisor.Train(samples)
	if err != nil {
		return err
	}
	blob, err := model.MarshalIndent()
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	rep := advisor.Evaluate(model, samples)
	fmt.Printf("trained on %d samples -> %s\n", len(samples), *out)
	fmt.Printf("training-set %s\n", rep.Summary())
	return nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("advisor eval", flag.ContinueOnError)
	df := addDatasetFlags(fs)
	modelFlag := fs.String("model", "default", "model: default, rule, fixed:TECH, or a JSON artifact path")
	mistakes := fs.Bool("mistakes", false, "also list mispredicted matrices, worst regret first")
	if err := fs.Parse(args); err != nil {
		return err
	}
	samples, err := df.load()
	if err != nil {
		return err
	}
	model, err := parseModel(*modelFlag)
	if err != nil {
		return err
	}
	for _, rep := range advisor.CompareBaselines(model, samples) {
		fmt.Println(rep.Summary())
	}
	if *mistakes {
		rep := advisor.Evaluate(model, samples)
		for _, row := range rep.Mistakes() {
			fmt.Printf("  miss %-24s predicted=%-10s oracle=%-10s regret=%.5f\n",
				row.Matrix, row.Predicted, row.Oracle, row.Regret)
		}
	}
	return nil
}
