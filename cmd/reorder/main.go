// Command reorder applies a matrix reordering technique to a MatrixMarket
// file and writes the reordered matrix (and optionally the permutation).
//
// Usage:
//
//	reorder -in a.mtx -out b.mtx [-technique RABBIT++] [-workers N] [-perm p.txt] [-stats]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reorder:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "input MatrixMarket file (required)")
		out     = flag.String("out", "", "output MatrixMarket file (required)")
		tech    = flag.String("technique", "RABBIT++", "reordering technique (see -list)")
		perm    = flag.String("perm", "", "also write the old->new permutation, one entry per line")
		stats   = flag.Bool("stats", false, "print community-quality statistics")
		list    = flag.Bool("list", false, "list available techniques and exit")
		workers = flag.Int("workers", 1, "goroutines for parallel techniques (result is identical at any count)")
	)
	flag.Parse()
	if *list {
		for _, t := range reorder.All() {
			fmt.Println(t.Name())
		}
		return nil
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	t, err := reorder.ByName(*tech)
	if err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	m, err := sparse.ReadMatrixMarket(bufio.NewReader(f))
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *in, err)
	}
	if !m.IsSquare() {
		return fmt.Errorf("%s: reordering requires a square matrix, got %dx%d", *in, m.NumRows, m.NumCols)
	}

	start := time.Now()
	p, err := reorder.OrderWith(context.Background(), t, m, reorder.Options{Workers: *workers})
	if err != nil {
		return fmt.Errorf("%s: %w", t.Name(), err)
	}
	elapsed := time.Since(start)
	if err := p.Validate(); err != nil {
		return fmt.Errorf("%s produced an invalid permutation: %w", t.Name(), err)
	}
	pm := m.PermuteSymmetric(p)
	fmt.Printf("%s: %d rows, %d nnz, reordered with %s in %v (bandwidth %d -> %d)\n",
		*in, m.NumRows, m.NNZ(), t.Name(), elapsed.Round(time.Millisecond), m.Bandwidth(), pm.Bandwidth())

	if *stats {
		rr := core.Rabbit(m)
		cs := core.Analyze(m, rr.Communities)
		fmt.Printf("communities=%d insularity=%.3f modularity=%.3f insular-nodes=%.1f%% skew=%.1f%% largest=%.1f%%\n",
			cs.Communities, cs.Insularity, cs.Modularity,
			100*cs.InsularNodeFraction, 100*cs.Skew, 100*cs.LargestCommunityFraction)
	}

	g, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := sparse.WriteMatrixMarket(g, pm); err != nil {
		g.Close()
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	if *perm != "" {
		pf, err := os.Create(*perm)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(pf)
		for _, v := range p {
			fmt.Fprintln(w, v)
		}
		if err := w.Flush(); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
	}
	return nil
}
