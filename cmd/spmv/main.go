// Command spmv runs the SpMV kernel on a MatrixMarket file for real (on
// the host CPU), verifies it against the dense reference, and reports
// timing — useful for checking that reordering never changes results.
//
// Usage:
//
//	spmv -in a.mtx [-iters 10] [-parallel] [-technique RABBIT++]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/kernels"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spmv:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in       = flag.String("in", "", "input MatrixMarket file (required)")
		iters    = flag.Int("iters", 10, "timed iterations")
		parallel = flag.Bool("parallel", false, "use the parallel kernel")
		tech     = flag.String("technique", "", "reorder with this technique first (optional)")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	m, err := sparse.ReadMatrixMarket(bufio.NewReader(f))
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *in, err)
	}

	rng := gen.NewRNG(1)
	x := make([]float32, m.NumCols)
	for i := range x {
		x[i] = rng.Float32()
	}
	want := kernels.DenseSpMVReference(m, x)

	if *tech != "" {
		t, err := reorder.ByName(*tech)
		if err != nil {
			return err
		}
		if !m.IsSquare() {
			return fmt.Errorf("-technique %s applies a symmetric permutation, but %s is %dx%d: %w",
				t.Name(), *in, m.NumRows, m.NumCols, sparse.ErrNotSquare)
		}
		p := t.Order(m)
		m = m.PermuteSymmetric(p)
		x = p.PermuteVector(x)
		want = p.PermuteVector(want)
		fmt.Printf("reordered with %s\n", t.Name())
	}

	y := make([]float32, m.NumRows)
	kernel := kernels.SpMVCSR
	if *parallel {
		kernel = kernels.SpMVCSRParallel
	}
	if err := kernel(m, x, y); err != nil {
		return err
	}
	var maxErr float64
	for i := range y {
		d := float64(y[i] - want[i])
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("verified: max abs error vs dense reference = %.3g\n", maxErr)

	start := time.Now()
	for i := 0; i < *iters; i++ {
		if err := kernel(m, x, y); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	per := elapsed.Seconds() / float64(*iters)
	gflops := 2 * float64(m.NNZ()) / per / 1e9
	fmt.Printf("%d rows, %d nnz: %d iters in %v (%.3f ms/iter, %.2f GFLOP/s)\n",
		m.NumRows, m.NNZ(), *iters, elapsed.Round(time.Millisecond), per*1e3, gflops)
	return nil
}
