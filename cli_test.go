package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd/ binary into the test's temp dir once.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives the full toolchain end to end: generate a corpus
// matrix, reorder it, verify the kernel on the reordered file, and
// simulate its cache behaviour.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	mtxgen := buildTool(t, dir, "mtxgen")
	reorderBin := buildTool(t, dir, "reorder")
	spmv := buildTool(t, dir, "spmv")
	cachesimBin := buildTool(t, dir, "cachesim")

	out := runTool(t, mtxgen, "-out", dir, "-matrices", "soc-tight-2")
	if !strings.Contains(out, "soc-tight-2") {
		t.Fatalf("mtxgen output: %s", out)
	}
	mtx := filepath.Join(dir, "soc-tight-2.mtx")
	if _, err := os.Stat(mtx); err != nil {
		t.Fatal(err)
	}

	reordered := filepath.Join(dir, "reordered.mtx")
	permFile := filepath.Join(dir, "perm.txt")
	out = runTool(t, reorderBin, "-in", mtx, "-out", reordered, "-technique", "RABBIT++", "-perm", permFile, "-stats")
	if !strings.Contains(out, "RABBIT++") || !strings.Contains(out, "insularity=") {
		t.Fatalf("reorder output: %s", out)
	}
	if _, err := os.Stat(permFile); err != nil {
		t.Fatal(err)
	}

	out = runTool(t, spmv, "-in", reordered, "-iters", "2")
	if !strings.Contains(out, "verified: max abs error") {
		t.Fatalf("spmv output: %s", out)
	}

	out = runTool(t, cachesimBin, "-in", mtx, "-l2", "32768", "-techniques", "RANDOM,RABBIT++")
	if !strings.Contains(out, "RABBIT++") || !strings.Contains(out, "traffic") {
		t.Fatalf("cachesim output: %s", out)
	}
}

// TestCLIExperiments runs the experiments binary on a tiny subset.
func TestCLIExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "experiments")

	out := runTool(t, bin, "-list")
	for _, want := range []string{"fig2", "table2", "abl-policy", "mawi-like"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}

	out = runTool(t, bin, "-corpus", "small", "-matrices", "er-deg16", "-run", "device,fig2")
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "er-deg16") {
		t.Fatalf("experiments output:\n%s", out)
	}

	// CSV mode emits a parseable header row.
	out = runTool(t, bin, "-corpus", "small", "-matrices", "er-deg16", "-run", "device", "-csv")
	if !strings.Contains(out, "spec,") {
		t.Fatalf("csv output:\n%s", out)
	}
}

// TestCLIErrors checks the tools fail cleanly on bad input.
func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	reorderBin := buildTool(t, dir, "reorder")
	if err := exec.Command(reorderBin, "-in", "/no/such.mtx", "-out", "/tmp/x.mtx").Run(); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := exec.Command(reorderBin).Run(); err == nil {
		t.Fatal("missing flags accepted")
	}
	bad := filepath.Join(dir, "bad.mtx")
	if err := os.WriteFile(bad, []byte("not a matrix\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(reorderBin, "-in", bad, "-out", filepath.Join(dir, "o.mtx")).Run(); err == nil {
		t.Fatal("garbage matrix accepted")
	}
}

// TestCLISpGEMM drives the spgemm binary: row-wise and cluster-wise
// products on a corpus matrix with the -verify cross-check, product
// output to a file, and the cachesim SpGEMM kernels on the same matrix.
func TestCLISpGEMM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	mtxgen := buildTool(t, dir, "mtxgen")
	spgemmBin := buildTool(t, dir, "spgemm")
	cachesimBin := buildTool(t, dir, "cachesim")

	runTool(t, mtxgen, "-out", dir, "-matrices", "soc-tight-2")
	mtx := filepath.Join(dir, "soc-tight-2.mtx")

	out := runTool(t, spgemmBin, "-in", mtx, "-strategy", "merge", "-verify")
	for _, want := range []string{"compression=", "row-wise (merge)", "bit-identical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("spgemm row-wise output missing %q:\n%s", want, out)
		}
	}

	product := filepath.Join(dir, "c.mtx")
	out = runTool(t, spgemmBin, "-in", mtx, "-cluster", "-technique", "RABBIT", "-out", product)
	for _, want := range []string{"reordered with RABBIT", "tiles", "accumulator", "distinct B-row loads"} {
		if !strings.Contains(out, want) {
			t.Fatalf("spgemm cluster output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(product); err != nil {
		t.Fatal(err)
	}

	// Unknown strategy must fail cleanly.
	if err := exec.Command(spgemmBin, "-in", mtx, "-strategy", "hash").Run(); err == nil {
		t.Fatal("unknown strategy accepted")
	}

	for _, kernel := range []string{"spgemm", "spgemm-cluster"} {
		out = runTool(t, cachesimBin, "-in", mtx, "-l2", "32768", "-kernel", kernel, "-techniques", "ORIGINAL,RABBIT")
		if !strings.Contains(out, "RABBIT") || !strings.Contains(out, "traffic") {
			t.Fatalf("cachesim -kernel %s output:\n%s", kernel, out)
		}
	}
}

// TestCLIRectangularInput checks the square-only paths reject a
// rectangular matrix with a diagnostic naming the shape (the typed
// sparse.ErrNotSquare path), while plain SpMV on the same file works.
func TestCLIRectangularInput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	spmvBin := buildTool(t, dir, "spmv")

	rect := filepath.Join(dir, "rect.mtx")
	content := "%%MatrixMarket matrix coordinate real general\n3 4 3\n1 2 1.0\n2 3 2.0\n3 4 0.5\n"
	if err := os.WriteFile(rect, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	// Plain SpMV is defined for rectangular matrices and must succeed.
	out := runTool(t, spmvBin, "-in", rect, "-iters", "1")
	if !strings.Contains(out, "verified: max abs error") {
		t.Fatalf("plain rectangular spmv output:\n%s", out)
	}

	// Asking for a symmetric reordering must fail with the shape named.
	cmd := exec.Command(spmvBin, "-in", rect, "-technique", "RABBIT")
	got, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("spmv -technique accepted a rectangular matrix:\n%s", got)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("spmv did not run: %v", err)
	}
	for _, want := range []string{"3x4", "not square"} {
		if !strings.Contains(string(got), want) {
			t.Fatalf("diagnostic should contain %q, got:\n%s", want, got)
		}
	}
}

// TestCLITruncatedInput feeds reorder and spmv a MatrixMarket file whose
// header declares more entries than the file holds; both must exit non-zero
// with a diagnostic naming the truncated entry, not panic.
func TestCLITruncatedInput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	reorderBin := buildTool(t, dir, "reorder")
	spmvBin := buildTool(t, dir, "spmv")

	truncated := filepath.Join(dir, "truncated.mtx")
	content := "%%MatrixMarket matrix coordinate real general\n4 4 5\n1 2 1.0\n2 3 1.0\n"
	if err := os.WriteFile(truncated, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		cmd  *exec.Cmd
	}{
		{"reorder", exec.Command(reorderBin, "-in", truncated, "-out", filepath.Join(dir, "o.mtx"))},
		{"spmv", exec.Command(spmvBin, "-in", truncated)},
	} {
		out, err := tc.cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s accepted a truncated file:\n%s", tc.name, out)
		}
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%s did not run: %v", tc.name, err)
		}
		if !strings.Contains(string(out), "entry") || !strings.Contains(string(out), "truncated.mtx") {
			t.Fatalf("%s diagnostic should name the file and failing entry, got:\n%s", tc.name, out)
		}
		if strings.Contains(string(out), "panic") {
			t.Fatalf("%s panicked on truncated input:\n%s", tc.name, out)
		}
	}
}
