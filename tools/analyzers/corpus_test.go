package analyzers

// The corpus test drives every analyzer over the fixture packages under
// testdata/src and diffs the produced diagnostics against the `// want
// "substring"` expectations embedded in the fixtures — both directions:
// a diagnostic with no matching want fails, and a want with no matching
// diagnostic fails. Fixture packages type-check against each other (the
// detsource facts case imports detfix/dep), so the cross-package facts
// path runs for real; only hotalloc's compiler hook is stubbed, from the
// "// alloc:" markers in its fixture.

import (
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/tools/escape"
)

// corpusImportPath assigns each fixture directory the import path its
// package is checked under, chosen so the scoped analyzers apply and the
// detsource fixtures can import each other.
var corpusImportPath = map[string]string{
	"mapiter":       "internal/core/fix_mapiter",
	"floatcmp":      "internal/core/fix_floatcmp",
	"uncheckedcast": "fix/uncheckedcast",
	"permreturn":    "internal/core/fix_permreturn",
	"doccheck":      "internal/cachesim/fix_doccheck",
	"detsource_dep": "detfix/dep",
	"detsource":     "detfix/use",
	"ctxflow":       "internal/fix_ctxflow",
	"hotalloc":      "fix/hotalloc",
	"lockmix":       "fix/lockmix",
}

// fixtureImporter serves already-checked fixture packages by import path
// and falls back to the source importer for the standard library.
type fixtureImporter struct {
	fallback types.Importer
	pkgs     map[string]*types.Package
}

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.pkgs[path]; ok {
		return p, nil
	}
	return i.fallback.Import(path)
}

// loadCorpus parses and type-checks every fixture package. Directories
// are processed in name order; detsource_dep sorts before detsource's
// user package only by accident of naming, so dependencies are re-queued
// until they resolve.
func loadCorpus(t *testing.T) []*LoadedPackage {
	t.Helper()
	root := filepath.Join("testdata", "src")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading corpus root: %v", err)
	}
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		fallback: importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*types.Package{},
	}
	type pending struct {
		dir, path string
		names     []string
	}
	var queue []pending
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		files, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		var names []string
		for _, f := range files {
			if strings.HasSuffix(f.Name(), ".go") {
				names = append(names, f.Name())
			}
		}
		if len(names) == 0 {
			continue
		}
		path := corpusImportPath[e.Name()]
		if path == "" {
			path = e.Name()
		}
		queue = append(queue, pending{dir, path, names})
	}

	var pkgs []*LoadedPackage
	for len(queue) > 0 {
		var next []pending
		progressed := false
		for _, p := range queue {
			pkg, err := loadOne(fset, imp, p.dir, p.path, p.names)
			if err != nil {
				next = append(next, p)
				continue
			}
			imp.pkgs[p.path] = pkg.Types
			pkgs = append(pkgs, pkg)
			progressed = true
		}
		if !progressed {
			for _, p := range queue {
				_, err := loadOne(fset, imp, p.dir, p.path, p.names)
				t.Fatalf("fixture %s does not type-check: %v", p.dir, err)
			}
		}
		queue = next
	}
	return pkgs
}

// wantRe extracts one expectation per source line.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type wantExpectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// corpusWants scans every fixture file of the loaded packages for `//
// want` expectations.
func corpusWants(t *testing.T, pkgs []*LoadedPackage) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("reading fixture %s: %v", name, err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				if m := wantRe.FindStringSubmatch(line); m != nil {
					wants = append(wants, &wantExpectation{file: name, line: i + 1, substr: m[1]})
				}
			}
		}
	}
	return wants
}

// stubEscapeFromMarkers replaces the hotalloc escape hook with one that
// fabricates allocations from "// alloc: <message>" markers in the
// package's fixture files, restoring the real hook on cleanup.
func stubEscapeFromMarkers(t *testing.T) {
	t.Helper()
	old := escapeAllocs
	escapeAllocs = func(dir string) (map[string][]escape.Alloc, error) {
		byFile := map[string][]escape.Alloc{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			file := filepath.Join(dir, e.Name())
			src, err := os.ReadFile(file)
			if err != nil {
				return nil, err
			}
			for i, line := range strings.Split(string(src), "\n") {
				_, after, ok := strings.Cut(line, "// alloc: ")
				if !ok {
					continue
				}
				msg := after
				if cut := strings.Index(msg, "// want"); cut >= 0 {
					msg = msg[:cut]
				}
				byFile[file] = append(byFile[file], escape.Alloc{
					File: file, Line: i + 1, Col: 1, Message: strings.TrimSpace(msg),
				})
			}
		}
		return byFile, nil
	}
	t.Cleanup(func() { escapeAllocs = old })
}

// TestCorpus diffs every analyzer's diagnostics over the fixture corpus
// against the embedded expectations.
func TestCorpus(t *testing.T) {
	stubEscapeFromMarkers(t)
	pkgs := loadCorpus(t)
	wants := corpusWants(t, pkgs)
	diags := RunAll(pkgs, All())

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				strings.Contains(d.Message, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %s",
				w.file, w.line, strconv.Quote(w.substr))
		}
	}
}

// TestCtxFlowFixGolden applies the mechanical fix ctxflow attaches to the
// Caller fixture and compares the rewritten file against the committed
// golden.
func TestCtxFlowFixGolden(t *testing.T) {
	pkgs := loadCorpus(t)
	diags := RunAll(pkgs, []*Analyzer{CtxFlow})

	target := filepath.Join("testdata", "src", "ctxflow", "caller.go")
	var edits []*TextEdit
	for _, d := range diags {
		if d.Fix != nil && d.Fix.Filename == target {
			edits = append(edits, d.Fix)
		}
	}
	if len(edits) == 0 {
		t.Fatalf("no fixable ctxflow diagnostic for %s (got %d diagnostics)", target, len(diags))
	}
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
	for _, e := range edits {
		if e.Start < 0 || e.End > len(src) || e.Start > e.End {
			t.Fatalf("edit offsets [%d, %d) outside file of %d bytes", e.Start, e.End, len(src))
		}
		src = append(src[:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
	}
	golden, err := os.ReadFile(target + ".golden")
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != string(golden) {
		t.Errorf("fixed source differs from %s.golden:\n--- got ---\n%s\n--- want ---\n%s",
			target, src, golden)
	}
}
