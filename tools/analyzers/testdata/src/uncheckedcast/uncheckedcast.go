// Package fix_uncheckedcast is the uncheckedcast corpus case: an int32
// narrowing of a dynamically sized value with no overflow guard.
package fix_uncheckedcast

// Size narrows a length without a guard — the canonical finding.
func Size(xs []int) int32 {
	return int32(len(xs)) // want "unguarded int32"
}

// SizeGuarded mentions the guard helper, so the cast is accepted.
func SizeGuarded(xs []int) int32 {
	return FitsInt32(len(xs))
}

// FitsInt32 is the guard helper; the raw cast inside it is exempt.
func FitsInt32(n int) int32 {
	if n < 0 || n > 1<<31-1 {
		panic("out of range")
	}
	return int32(n)
}
