// Package use holds the detsource corpus cases: local sources, a
// transitive cross-package fact, goroutine fan-in, a deterministic
// negative, and a waiver.
package use

import (
	"sort"
	"time"

	"detfix/dep"
)

// Clock reads the wall clock directly.
//
//repro:deterministic
func Clock() int64 { // want "reads the wall clock"
	return time.Now().UnixNano()
}

// Transitive reaches the unseeded generator only through an imported
// package; the finding rides on dep's exported fact.
//
//repro:deterministic
func Transitive() int { // want "unseeded global generator"
	return dep.Draw()
}

// FanIn spawns a goroutine that writes a captured variable with no
// ordering step.
//
//repro:deterministic
func FanIn(xs []int) int { // want "shared variable"
	total := 0
	done := make(chan struct{})
	go func() {
		total = len(xs)
		close(done)
	}()
	<-done
	return total
}

// Sorted collects map keys and sorts them — deterministic, no finding.
//
//repro:deterministic
func Sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Indexed fans out with slot-owned stores — deterministic, no finding.
//
//repro:deterministic
func Indexed(xs []int) []int {
	out := make([]int, len(xs))
	done := make(chan struct{})
	go func() {
		for i, x := range xs {
			out[i] = x * 2
		}
		close(done)
	}()
	<-done
	return out
}

// Waived reads the wall clock under a suppression comment.
//
//repro:deterministic
//lint:allow detsource fixture exercises suppression
func Waived() int64 {
	return time.Now().UnixNano()
}
