// Package fix_hotalloc holds the hotalloc corpus cases. The corpus
// runner stubs the escape hook from the "// alloc:" markers below, so no
// compiler runs; the analyzer's line matching and suppression behaviour
// are what is under test.
package fix_hotalloc

// Hot claims zero allocations but the (stubbed) escape analysis reports
// one inside its body — the canonical finding.
//
//repro:noalloc
func Hot(n int) []int {
	out := make([]int, n) // alloc: make([]int, n) escapes to heap // want "heap allocation"
	return out
}

// Cold is unannotated: the marker on its allocation must not surface.
func Cold(n int) []int {
	return make([]int, n) // alloc: make([]int, n) escapes to heap
}

// Waived is annotated but its allocation carries a suppression comment.
//
//repro:noalloc
func Waived(n int) []int {
	//lint:allow hotalloc fixture exercises suppression
	out := make([]int, n) // alloc: make([]int, n) escapes to heap
	return out
}
