// Package fix_doccheck is the doccheck corpus case: an exported symbol
// with no doc comment in a contract package.
package fix_doccheck

// Documented has a doc comment and is not flagged.
func Documented() {}

func Undocumented() {} // want "has no doc comment"
