// Package fix_floatcmp is the floatcmp corpus case: exact float equality
// without an epsilon.
package fix_floatcmp

// Same compares floats exactly — the canonical finding.
func Same(a, b float64) bool {
	return a == b // want "float == comparison"
}

// SameZero compares against constant zero, which is exempt.
func SameZero(a float64) bool {
	return a == 0
}

// SameAllowed is the waived variant.
func SameAllowed(a, b float64) bool {
	//lint:allow floatcmp fixture exercises suppression
	return a == b
}
