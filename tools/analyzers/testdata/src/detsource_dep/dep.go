// Package dep exports a function whose nondeterminism the facts layer
// must carry into importing packages: nothing here is annotated, so the
// package produces no findings of its own — only facts.
package dep

import "math/rand"

// Draw pulls from the unseeded global generator.
func Draw() int {
	return rand.Int()
}
