// Package fix_ctxflow holds the ctxflow corpus cases: a dropped context
// parameter, a fresh context in a library, the compatibility-shim
// exemption, and a waiver. The fixable Ctx-variant case lives in
// caller.go (its golden rewrite is caller.go.golden).
package fix_ctxflow

import "context"

// Work is the context-free core.
func Work(n int) int { return n }

// WorkCtx is the cancellable variant of Work.
func WorkCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// Dropped promises cancellation but never reads its context.
func Dropped(ctx context.Context, n int) int { // want "never used"
	return n
}

// Fresh mints a context inside a library function for no reason.
func Fresh(n int) int {
	ctx := context.Background() // want "context.Background"
	_ = ctx
	return n
}

// Shim is the compatibility wrapper shape: context-free, delegating to
// the Ctx variant — its Background call is exempt.
func Shim(n int) int {
	return WorkCtx(context.Background(), n)
}

// Detached severs cancellation deliberately, under a waiver.
func Detached(n int) int {
	//lint:allow ctxflow fixture exercises suppression
	ctx := context.Background()
	_ = ctx
	return n
}
