package fix_ctxflow

import "context"

// Caller holds a context but calls the context-free core; the attached
// fix rewrites the call to WorkCtx (see caller.go.golden).
func Caller(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return Work(n) // want "drops ctx"
}
