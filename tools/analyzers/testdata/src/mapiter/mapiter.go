// Package fix_mapiter is the mapiter corpus case: keys collected from a
// map range and never sorted leak iteration order.
package fix_mapiter

// Keys returns the map's keys in arbitrary order — the canonical finding.
func Keys(m map[int]int) []int {
	var out []int
	for k := range m { // want "never sorted"
		out = append(out, k)
	}
	return out
}

// Allowed is the same shape under a suppression comment.
func Allowed(m map[int]int) []int {
	var out []int
	//lint:allow mapiter fixture exercises suppression
	for k := range m {
		out = append(out, k)
	}
	return out
}
