// Package fix_permreturn is the permreturn corpus case: an exported
// producer returning a Permutation that never passes validation.
package fix_permreturn

// Permutation mirrors the repository's permutation type by name.
type Permutation []int32

// Identity returns an unvalidated permutation — the canonical finding.
func Identity(n int) Permutation { // want "never validated"
	p := make(Permutation, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// Checked routes the result through a validation callee and is accepted.
func Checked(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = int32(i)
	}
	ValidPermutation(p)
	return p
}

// ValidPermutation stands in for the repository's check helper.
func ValidPermutation(p Permutation) bool { return len(p) >= 0 }
