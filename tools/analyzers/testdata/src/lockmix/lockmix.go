// Package fix_lockmix holds the lockmix corpus cases: a field guarded in
// one method and bare in another, a field mixing atomic and plain access,
// and clean locking discipline as the negative.
package fix_lockmix

import (
	"sync"
	"sync/atomic"
)

// Counter mixes synchronization disciplines across its methods.
type Counter struct {
	mu sync.Mutex
	n  int
	a  int64
	ok int
}

// Add increments n under the lock.
func (c *Counter) Add() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Reset writes n with no lock held — the mutex-mix finding.
func (c *Counter) Reset() {
	c.n = 0 // want "without it"
}

// Bump updates a atomically.
func (c *Counter) Bump() {
	atomic.AddInt64(&c.a, 1)
}

// Peek reads a with a plain load — the atomic-mix finding.
func (c *Counter) Peek() int64 {
	return c.a // want "atomically elsewhere"
}

// Guarded only ever touches ok under the lock — no finding.
func (c *Counter) Guarded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ok++
	return c.ok
}

// resetLocked is a caller-holds-the-lock helper; its bare write to ok is
// treated as guarded by convention.
func (c *Counter) resetLocked() {
	c.ok = 0
}
