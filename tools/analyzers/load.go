package analyzers

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"strings"
)

// LoadedPackage is one parsed and type-checked package plus the suppression
// comments found in its files.
type LoadedPackage struct {
	// ImportPath is the package's import path as go list reports it.
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset is the file set all position info resolves through.
	Fset *token.FileSet
	// Files holds the parsed non-test files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object maps.
	Info *types.Info

	// allowed maps file name -> line -> analyzer names suppressed there via
	// `//lint:allow <name> [reason]` comments.
	allowed map[string]map[int][]string
}

// Load expands the go-list patterns (e.g. ./...), parses every non-test file
// of each matched package, and type-checks it against the module using the
// standard library's source importer. The go toolchain must be on PATH.
func Load(dir string, patterns []string) ([]*LoadedPackage, error) {
	listArgs := append([]string{"list", "-f", "{{.Dir}}\t{{.ImportPath}}\t{{range .GoFiles}}{{.}} {{end}}"}, patterns...)
	cmd := exec.Command("go", listArgs...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	fset := token.NewFileSet()
	// One shared source importer caches dependency packages (including the
	// module's own) across targets.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*LoadedPackage
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("unexpected go list line %q", line)
		}
		pkgDir, importPath := parts[0], parts[1]
		names := strings.Fields(parts[2])
		if len(names) == 0 {
			continue
		}
		pkg, err := loadOne(fset, imp, pkgDir, importPath, names)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func loadOne(fset *token.FileSet, imp types.Importer, dir, importPath string, fileNames []string) (*LoadedPackage, error) {
	pkg := &LoadedPackage{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		allowed:    map[string]map[int][]string{},
	}
	for _, name := range fileNames {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.collectAllowed(f)
	}
	pkg.Info = newInfo()
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	pkg.Types = tp
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// collectAllowed indexes `//lint:allow <analyzer> [reason]` comments by file
// and line. A comment suppresses findings on its own line and, when it is
// the only thing on its line, on the line directly below.
func (p *LoadedPackage) collectAllowed(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:allow ") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "lint:allow "))
			if len(fields) == 0 {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			lines := p.allowed[pos.Filename]
			if lines == nil {
				lines = map[int][]string{}
				p.allowed[pos.Filename] = lines
			}
			// Cover the comment's own line (trailing form) and the line
			// below (leading form).
			lines[pos.Line] = append(lines[pos.Line], fields[0])
			lines[pos.Line+1] = append(lines[pos.Line+1], fields[0])
		}
	}
}

// filterAllowed drops diagnostics suppressed by lint:allow comments in this
// package's files; diagnostics from other packages pass through untouched.
func (p *LoadedPackage) filterAllowed(diags []Diagnostic) []Diagnostic {
	if len(p.allowed) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if lines, ok := p.allowed[d.Pos.Filename]; ok {
			if names, ok := lines[d.Pos.Line]; ok && contains(names, d.Analyzer) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}
