package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `range` statements over maps whose loop body feeds an
// ordering decision. Go randomizes map iteration order, so any ordering
// derived from it differs run to run — which silently breaks the
// reproducibility of every permutation-producing pipeline.
//
// A map range is accepted only when its body is provably order-insensitive:
//   - pure key collection `s = append(s, k)` where s is sorted later in the
//     same function (the canonical sort-keys-first fix),
//   - stores indexed by the loop key `a[k] = v` (each iteration owns a slot),
//   - integer accumulation (`n++`, `n += <integer>`); float accumulation is
//     rejected because float addition is not associative.
//
// Everything else — appends that are never sorted, argmax selection, float
// sums, calls with side effects — is reported.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration whose order feeds an ordering decision",
	Packages: []string{
		"internal/community", "internal/core", "internal/reorder", "internal/partition",
	},
	Run: runMapIter,
}

func runMapIter(pass *Pass) {
	for _, f := range pass.Files {
		enclosingFuncs(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt, decl *ast.FuncDecl) {
			ast.Inspect(body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
					return false // literals are visited separately
				}
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMap(pass.TypesInfo.TypeOf(rs.X)) {
					return true
				}
				checkMapRange(pass, rs, body)
				return true
			})
		})
	}
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	keyName := identName(rs.Key)
	var collected []string
	for _, stmt := range rs.Body.List {
		verdict, collectTarget := classifyMapRangeStmt(pass, stmt, keyName)
		switch verdict {
		case stmtCollect:
			collected = append(collected, collectTarget)
		case stmtSafe:
		default:
			pass.Reportf(rs.Range, "iteration order of map %s feeds an ordering-sensitive computation (%s); iterate sorted keys instead",
				exprString(rs.X), verdict)
			return
		}
	}
	// Collected key slices must be sorted after the loop.
	for _, target := range collected {
		if !sortedAfter(funcBody, target, rs.End()) {
			pass.Reportf(rs.Range, "keys of map %s are collected into %s but never sorted; map order leaks into %s",
				exprString(rs.X), target, target)
			return
		}
	}
}

type stmtVerdict string

const (
	stmtSafe    stmtVerdict = "safe"
	stmtCollect stmtVerdict = "collect"
)

// classifyMapRangeStmt decides whether one statement inside a map-range body
// is order-insensitive. It returns stmtCollect (and the slice name) for the
// append-keys pattern, stmtSafe for per-key stores and integer accumulation,
// and a human-readable reason string otherwise.
func classifyMapRangeStmt(pass *Pass, stmt ast.Stmt, keyName string) (stmtVerdict, string) {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return stmtSafe, ""
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return "multi-assignment in map order", ""
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		switch s.Tok {
		case token.ASSIGN:
			// x = append(x, ...) collects; a[k] = v owns its slot.
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && calleeName(call) == "append" {
				if target := identName(lhs); target != "" && len(call.Args) >= 1 && identName(call.Args[0]) == target {
					return stmtCollect, target
				}
				return "append target aliasing in map order", ""
			}
			if idx, ok := lhs.(*ast.IndexExpr); ok && keyName != "" && identName(idx.Index) == keyName {
				return stmtSafe, ""
			}
			return "assignment depends on map order", ""
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			if t := pass.TypesInfo.TypeOf(lhs); t != nil {
				if isFloat(t) {
					return "floating-point accumulation is order-dependent", ""
				}
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					// Integer accumulation commutes — but only when the slot
					// is the loop key's own or a scalar.
					if idx, ok := lhs.(*ast.IndexExpr); ok {
						if keyName != "" && identName(idx.Index) == keyName {
							return stmtSafe, ""
						}
						return "indexed accumulation not keyed by the loop key", ""
					}
					return stmtSafe, ""
				}
			}
			return "accumulation of non-integer type in map order", ""
		default:
			return "assignment depends on map order", ""
		}
	}
	return "statement with side effects runs in map order", ""
}

// sortedAfter reports whether a sort call over the named slice appears in
// the function body after pos.
func sortedAfter(body *ast.BlockStmt, slice string, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		switch calleeName(call) {
		case "Slice", "SliceStable", "Sort", "SortFunc", "SortStableFunc", "Ints", "Strings", "Float64s", "Stable":
			if len(call.Args) >= 1 && identName(call.Args[0]) == slice {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func identName(e ast.Expr) string {
	if e == nil {
		return ""
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// exprString renders a small expression for diagnostics.
func exprString(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[" + exprString(v.Index) + "]"
	case *ast.BasicLit:
		return v.Value
	case *ast.CallExpr:
		args := make([]string, len(v.Args))
		for i, a := range v.Args {
			args[i] = exprString(a)
		}
		return exprString(v.Fun) + "(" + strings.Join(args, ", ") + ")"
	}
	return "expression"
}
