package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// DetSource proves //repro:deterministic annotations: an annotated
// function (or every exported function of an annotated package) must not
// reach — transitively, through the static call graph and the
// cross-package facts layer — any source of run-to-run nondeterminism:
//
//   - wall-clock reads (time.Now / Since / Until),
//   - the unseeded math/rand (and math/rand/v2) global generators,
//   - map iteration whose order leaks into results (the mapiter
//     classification, applied transitively instead of per-package),
//   - goroutine fan-in without an ordering step: a spawned goroutine
//     writing a captured variable non-indexed, sending on a channel, or a
//     range over a channel (results arrive in completion order).
//
// The package annotation goes in the package doc block of any file:
//
//	//repro:deterministic
//	package core
//
// and covers every exported function and method. A function annotation in
// a doc comment covers just that function. Wall-clock measurement paths
// (Figure 9 times reordering for real) suppress with `//lint:allow
// detsource <reason>` on the declaration line — the suppression policy
// keeps every waiver greppable.
//
// Soundness limits, by construction: calls through interfaces and
// function values are opaque (the paper pipelines dispatch techniques
// through interfaces whose implementations are themselves annotated), and
// facts only exist for packages the driver loaded — run the full `./...`
// gate, not single-package subsets, when the verdict matters.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "proves //repro:deterministic functions reach no nondeterminism source",
	Run:  runDetSource,
}

// detFact is the per-function fact: how (if at all) the function reaches
// nondeterminism. Reasons are human-readable chains, sorted, capped.
type detFact struct {
	Reasons []string
}

// maxDetReasons bounds the fact size; one reason is enough to fail the
// gate, a few make the diagnostic chain informative.
const maxDetReasons = 3

// nondetCallees maps symbol keys of known-nondeterministic stdlib
// functions to the reason they taint callers. Methods of seeded
// *rand.Rand values are deliberately absent: a fixed-seed generator is
// deterministic.
var nondetCallees = map[string]string{
	"time.Now":   "reads the wall clock (time.Now)",
	"time.Since": "reads the wall clock (time.Since)",
	"time.Until": "reads the wall clock (time.Until)",
}

func init() {
	for _, pkg := range []string{"math/rand", "math/rand/v2"} {
		for _, fn := range []string{
			"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n", "IntN",
			"Int32", "Int32N", "Int64", "Int64N", "N", "Uint32", "Uint64",
			"UintN", "Uint64N", "Float32", "Float64", "ExpFloat64",
			"NormFloat64", "Perm", "Shuffle", "Read",
		} {
			nondetCallees[pkg+"."+fn] = "draws from the unseeded global generator (" + pkg + "." + fn + ")"
		}
	}
}

func runDetSource(pass *Pass) {
	// Phase 1: local sources per declared function.
	local := make(map[string][]string, len(pass.Graph.Order))
	for _, key := range pass.Graph.Order {
		node := pass.Graph.Nodes[key]
		local[key] = localNondetSources(pass, node)
	}

	// Phase 2: propagate to a fixpoint through the package's call graph,
	// folding in facts exported by already-analyzed dependency packages.
	// Reason strings are bounded (chains stop growing past a depth cap),
	// so the monotone union terminates.
	facts := make(map[string]*detFact, len(local))
	for key, reasons := range local {
		facts[key] = &detFact{Reasons: append([]string(nil), reasons...)}
	}
	for changed := true; changed; {
		changed = false
		for _, key := range pass.Graph.Order {
			node := pass.Graph.Nodes[key]
			fact := facts[key]
			for _, call := range node.Calls {
				if call.Interface {
					continue // dynamic dispatch is opaque
				}
				for _, r := range calleeReasons(pass, facts, call.Callee) {
					if fact.add(chainReason(call.Callee, r)) {
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: export every non-empty fact for downstream packages.
	for _, key := range pass.Graph.Order {
		if f := facts[key]; len(f.Reasons) > 0 {
			sort.Strings(f.Reasons)
			pass.ExportFact(key, *f)
		}
	}

	// Phase 4: report annotated roots whose fact is non-empty.
	pkgAnnotated := packageAnnotated(pass.Files)
	for _, key := range pass.Graph.Order {
		node := pass.Graph.Nodes[key]
		root := hasAnnotation(node.Decl.Doc, "repro:deterministic") ||
			(pkgAnnotated && node.Decl.Name.IsExported() && exportedRecv(node.Decl))
		if !root {
			continue
		}
		if f := facts[key]; len(f.Reasons) > 0 {
			pass.Reportf(node.Decl.Name.Pos(),
				"//repro:deterministic function %s reaches nondeterminism: %s",
				node.Decl.Name.Name, f.Reasons[0])
		}
	}
}

// add inserts a reason if absent and under the cap; reports growth.
func (f *detFact) add(reason string) bool {
	for _, r := range f.Reasons {
		if r == reason {
			return false
		}
	}
	if len(f.Reasons) >= maxDetReasons {
		return false
	}
	f.Reasons = append(f.Reasons, reason)
	return true
}

// chainReason prefixes a callee's reason with the call step, stopping the
// chain from growing without bound through recursion cycles.
func chainReason(callee, reason string) string {
	const maxChain = 4
	if strings.Count(reason, " -> ") >= maxChain-1 {
		return reason
	}
	return shortSymbol(callee) + " -> " + reason
}

// calleeReasons returns the nondeterminism reasons attributed to a
// callee: a known-bad stdlib function, an intra-package fact being built
// this pass, or a cross-package fact imported from the store.
func calleeReasons(pass *Pass, building map[string]*detFact, callee string) []string {
	if reason, ok := nondetCallees[callee]; ok {
		return []string{reason}
	}
	if f, ok := building[callee]; ok {
		return f.Reasons
	}
	if v, ok := pass.ImportFact(callee); ok {
		f := v.(detFact)
		return f.Reasons
	}
	return nil
}

// packageAnnotated reports whether any file's package doc carries
// //repro:deterministic.
func packageAnnotated(files []*ast.File) bool {
	for _, f := range files {
		if hasAnnotation(f.Doc, "repro:deterministic") {
			return true
		}
	}
	return false
}

// exportedRecv reports whether a declaration is godoc surface: a plain
// function, or a method on an exported receiver type.
func exportedRecv(fd *ast.FuncDecl) bool {
	return fd.Recv == nil || exportedReceiver(fd.Recv)
}

// localNondetSources scans one function body (nested literals included —
// their behaviour is the function's) for directly visible nondeterminism.
func localNondetSources(pass *Pass, node *CallNode) []string {
	var reasons []string
	add := func(r string) {
		for _, have := range reasons {
			if have == r {
				return
			}
		}
		if len(reasons) < maxDetReasons {
			reasons = append(reasons, r)
		}
	}
	body := node.Decl.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			if r := goFanInReason(pass, s); r != "" {
				add(r)
			}
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(s.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Chan); ok {
				add("ranges over a channel (fan-in completion order)")
				return true
			}
			if isMap(t) {
				if r := mapRangeNondetReason(pass, s, body); r != "" {
					add(r)
				}
			}
		}
		return true
	})
	return reasons
}

// mapRangeNondetReason applies the mapiter body classification: an
// order-insensitive loop (per-key stores, integer accumulation, keys
// collected and later sorted) is deterministic; anything else leaks map
// order into the function's behaviour.
func mapRangeNondetReason(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) string {
	keyName := identName(rs.Key)
	var collected []string
	for _, stmt := range rs.Body.List {
		verdict, collectTarget := classifyMapRangeStmt(pass, stmt, keyName)
		switch verdict {
		case stmtCollect:
			collected = append(collected, collectTarget)
		case stmtSafe:
		default:
			return "iterates map " + exprString(rs.X) + " in an order-sensitive way (" + string(verdict) + ")"
		}
	}
	for _, target := range collected {
		if !sortedAfter(funcBody, target, rs.End()) {
			return "collects keys of map " + exprString(rs.X) + " into " + target + " without sorting"
		}
	}
	return ""
}

// goFanInReason inspects a spawned goroutine for unordered result
// publication: writes to captured variables that are not index-keyed
// stores, and channel sends (received in completion order by someone).
// Spawning a named function is opaque here; its own fact still flows
// through the call edge.
func goFanInReason(pass *Pass, g *ast.GoStmt) string {
	fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return ""
	}
	// Objects declared inside the literal (params included) are private to
	// one goroutine; everything else it writes is shared fan-in state.
	inside := map[types.Object]bool{}
	ast.Inspect(fl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				inside[obj] = true
			}
		}
		return true
	})
	var reason string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			reason = "goroutine sends results on a channel (fan-in completion order)"
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if r := sharedWriteReason(pass, inside, lhs); r != "" {
					reason = r
					return false
				}
			}
		case *ast.IncDecStmt:
			if r := sharedWriteReason(pass, inside, s.X); r != "" {
				reason = r
			}
		}
		return true
	})
	return reason
}

// sharedWriteReason classifies one goroutine-side store target: indexed
// stores into captured slices/maps own their slot and are ordering-safe;
// plain writes to captured variables or fields race the other goroutines'
// completion order.
func sharedWriteReason(pass *Pass, inside map[types.Object]bool, lhs ast.Expr) string {
	switch t := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		return "" // slot-owned store, e.g. out[i] = v
	case *ast.Ident:
		if t.Name == "_" {
			return ""
		}
		obj := pass.TypesInfo.Uses[t]
		if obj == nil || inside[obj] {
			return ""
		}
		if _, ok := obj.(*types.Var); ok {
			return "goroutine writes shared variable " + t.Name + " without an ordering step"
		}
	case *ast.SelectorExpr:
		base := ast.Unparen(t.X)
		if id, ok := base.(*ast.Ident); ok {
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || inside[obj] {
				return ""
			}
			return "goroutine writes shared field " + exprString(t) + " without an ordering step"
		}
	}
	return ""
}
