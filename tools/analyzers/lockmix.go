package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockMix flags inconsistent synchronization discipline on struct fields:
//
//   - a field read or written under a sibling sync.Mutex/RWMutex in some
//     methods and touched with no lock held in others (the classic
//     half-guarded race), and
//   - a field accessed both through sync/atomic operations and with plain
//     loads/stores (atomics only compose with atomics).
//
// Scope is deliberately the owning struct's own method set: cross-object
// locking protocols (a Runner locking a MatrixData it owns) encode an
// ownership contract this pass cannot see, and flagging them would drown
// the real findings. Methods whose name ends in "Locked"/"locked" are
// treated as lock-held helpers — the repository convention for bodies
// whose caller owns the mutex.
var LockMix = &Analyzer{
	Name: "lockmix",
	Doc:  "flags fields accessed both under a sibling mutex and without it, and mixed atomic/plain access",
	Run:  runLockMix,
}

// fieldAccess is one touch of a struct field from one of its methods.
type fieldAccess struct {
	pos     token.Pos
	method  string
	guarded bool // the method locks (or is a *Locked helper)
	write   bool
	atomic  bool // via a sync/atomic call
}

func runLockMix(pass *Pass) {
	owners := mutexOwners(pass)
	if len(owners) == 0 {
		return
	}
	accesses := make(map[*types.Var][]fieldAccess)
	for _, key := range pass.Graph.Order {
		node := pass.Graph.Nodes[key]
		fd := node.Decl
		if fd.Recv == nil {
			continue
		}
		obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		recv := obj.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		owner, ok := owners[namedOf(recv.Type())]
		if !ok {
			continue
		}
		guarded := takesLock(fd.Body) || lockedHelperName(fd.Name.Name)
		collectFieldAccesses(pass, fd, owner, guarded, accesses)
	}
	reportLockMix(pass, owners, accesses)
}

// ownerInfo describes one struct type that embeds or declares a mutex.
type ownerInfo struct {
	name     string
	fields   []*types.Var // non-mutex fields in declaration order
	fieldSet map[*types.Var]bool
}

// mutexOwners finds the package's struct types that carry a mutex field,
// keyed by their *types.TypeName.
func mutexOwners(pass *Pass) map[*types.TypeName]*ownerInfo {
	owners := make(map[*types.TypeName]*ownerInfo)
	scope := pass.Pkg.Scope()
	for _, nm := range scope.Names() {
		tn, ok := scope.Lookup(nm).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		info := &ownerInfo{name: tn.Name(), fieldSet: make(map[*types.Var]bool)}
		hasMutex := false
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexType(f.Type()) {
				hasMutex = true
				continue
			}
			info.fields = append(info.fields, f)
			info.fieldSet[f] = true
		}
		if hasMutex {
			owners[tn] = info
		}
	}
	return owners
}

// collectFieldAccesses records every touch of the owner's fields inside
// one method body.
func collectFieldAccesses(pass *Pass, fd *ast.FuncDecl, owner *ownerInfo, guarded bool, out map[*types.Var][]fieldAccess) {
	writes := writeTargets(fd.Body)
	atomicArgs := atomicCallArgs(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		f, ok := selection.Obj().(*types.Var)
		if !ok || !owner.fieldSet[f] {
			return true
		}
		out[f] = append(out[f], fieldAccess{
			pos:     sel.Sel.Pos(),
			method:  fd.Name.Name,
			guarded: guarded,
			write:   writes[sel],
			atomic:  atomicArgs[sel],
		})
		return true
	})
}

func reportLockMix(pass *Pass, owners map[*types.TypeName]*ownerInfo, accesses map[*types.Var][]fieldAccess) {
	// Deterministic report order: owners by name, fields in declaration
	// order.
	ordered := make([]*ownerInfo, 0, len(owners))
	for _, info := range owners {
		ordered = append(ordered, info)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].name < ordered[j].name })
	for _, info := range ordered {
		for _, f := range info.fields {
			accs := accesses[f]
			if len(accs) == 0 {
				continue
			}
			var guarded, unguarded, atomics, plain []fieldAccess
			anyWrite := false
			for _, a := range accs {
				if a.write {
					anyWrite = true
				}
				if a.atomic {
					atomics = append(atomics, a)
					continue
				}
				plain = append(plain, a)
				if a.guarded {
					guarded = append(guarded, a)
				} else {
					unguarded = append(unguarded, a)
				}
			}
			switch {
			case len(atomics) > 0 && len(plain) > 0:
				a := plain[0]
				pass.Reportf(a.pos,
					"field %s of %s is accessed atomically elsewhere but with a plain load/store in %s; atomics only compose with atomics",
					f.Name(), info.name, a.method)
			case len(guarded) > 0 && len(unguarded) > 0 && anyWrite:
				a := unguarded[0]
				pass.Reportf(a.pos,
					"field %s of %s is guarded by a mutex in %s but accessed without it in %s",
					f.Name(), info.name, guarded[0].method, a.method)
			}
		}
	}
}

// takesLock reports whether the body contains any Lock/RLock call — the
// method participates in the locking discipline, so its field accesses
// count as guarded.
func takesLock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeName(call) {
		case "Lock", "RLock":
			found = true
			return false
		}
		return true
	})
	return found
}

// lockedHelperName reports whether the method name marks a
// caller-holds-the-lock helper.
func lockedHelperName(name string) bool {
	return strings.HasSuffix(name, "Locked") || strings.HasSuffix(name, "locked")
}

// writeTargets collects the selector expressions that appear as store
// targets: assignment left-hand sides, inc/dec operands, and
// address-taken operands (the pointer may be written through).
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	targets := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			targets[sel] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(s.X)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				mark(s.X)
			}
		}
		return true
	})
	return targets
}

// atomicCallArgs collects selector expressions passed (by address) to
// sync/atomic functions — accesses that are atomic rather than plain.
func atomicCallArgs(pass *Pass, body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	atomics := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
				atomics[sel] = true
			}
		}
		return true
	})
	return atomics
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a pointer
// to one.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// namedOf unwraps pointers and returns the type name of a named receiver
// type, or nil.
func namedOf(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
