// Package analyzers implements the repository's custom static-analysis
// passes: mapiter (map iteration order feeding ordering decisions), floatcmp
// (exact float equality on gain/modularity comparisons), uncheckedcast
// (unguarded int→int32 index downcasts), permreturn (exported permutation
// producers that skip the validation helper), and doccheck (undocumented
// exported symbols in the contract packages internal/cachesim,
// internal/trace, internal/serve).
//
// The container pins the dependency set, so golang.org/x/tools is
// deliberately not available; the tiny framework below mirrors the
// go/analysis Analyzer/Pass shape on the standard library's go/ast and
// go/types alone, and the passes could migrate to a real multichecker
// verbatim. cmd/lint is the driver binary.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// TextEdit is a mechanical byte-range replacement that resolves a
// diagnostic; cmd/lint -fix applies them.
type TextEdit struct {
	// Filename is the file the edit applies to.
	Filename string
	// Start and End are byte offsets into the file; [Start, End) is
	// replaced by NewText.
	Start, End int
	// NewText is the replacement text.
	NewText string
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Analyzer names the pass that produced the finding.
	Analyzer string
	// Pos is the finding's resolved source position.
	Pos token.Position
	// Message is the human-readable finding text.
	Message string
	// Fix, when non-nil, is a mechanical rewrite that resolves the
	// finding (cmd/lint -fix applies it).
	Fix *TextEdit
}

// String renders the diagnostic in file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer, mirroring
// go/analysis.Pass. The interprocedural additions — ImportPath/Dir
// identifying the package, Graph with the package's static call graph,
// and the fact accessors (ExportFact/ImportFact) — let analyzers reason
// across package boundaries when RunAll drives them in dependency order.
type Pass struct {
	// Fset resolves every position in the package.
	Fset *token.FileSet
	// Files holds the package's parsed files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type-checker's expression and object maps.
	TypesInfo *types.Info
	// ImportPath is the package's import path as go list reports it.
	ImportPath string
	// Dir is the package's source directory (hotalloc shells out to the
	// toolchain from here).
	Dir string
	// Graph is the package's static call graph, built once per package
	// and shared by every analyzer pass over it.
	Graph *CallGraph

	analyzer *Analyzer
	facts    *FactStore
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos that carries a mechanical fix.
func (p *Pass) ReportFix(pos token.Pos, fix *TextEdit, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name is the analyzer's identifier, used by -run and lint:allow.
	Name string
	// Doc is the one-line description -list prints.
	Doc string
	// Packages restricts the driver to import paths containing one of these
	// fragments; empty runs the pass on every package. Interprocedural
	// analyzers (detsource) leave this empty so they harvest facts from
	// every loaded package; their reporting is gated by annotations
	// instead.
	Packages []string
	// Run executes the pass over one package.
	Run func(*Pass)
}

// appliesTo reports whether the analyzer covers the import path.
func (a *Analyzer) appliesTo(importPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, frag := range a.Packages {
		if strings.Contains(importPath, frag) {
			return true
		}
	}
	return false
}

// All returns the repository's analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MapIter, FloatCmp, UncheckedCast, PermReturn, DocCheck,
		DetSource, CtxFlow, HotAlloc, LockMix,
	}
}

// RunAll runs every applicable analyzer over every package and returns the
// surviving diagnostics sorted by position. Packages are processed in
// dependency order over one shared fact store, so facts exported while
// analyzing a package are visible to every package importing it. Findings
// on lines carrying (or directly below) a `//lint:allow <analyzer>`
// comment are suppressed.
func RunAll(pkgs []*LoadedPackage, as []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	facts := NewFactStore()
	for _, pkg := range topoSort(pkgs) {
		graph := buildCallGraph(pkg)
		for _, a := range as {
			pass := &Pass{
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				ImportPath: pkg.ImportPath,
				Dir:        pkg.Dir,
				Graph:      graph,
				analyzer:   a,
				facts:      facts,
				diags:      &diags,
			}
			if !a.appliesTo(pkg.ImportPath) {
				continue
			}
			a.Run(pass)
		}
		diags = pkg.filterAllowed(diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ---- shared type helpers ----

// isMap reports whether t's core type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t is a floating-point type (including untyped
// float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isIntegerKind reports whether t is one of the named integer kinds.
func isIntegerKind(t types.Type, kinds ...types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	for _, k := range kinds {
		if b.Kind() == k {
			return true
		}
	}
	return false
}

// calleeName returns the bare name of a call's target: the selector name for
// x.F(...), the identifier for F(...), and "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// enclosingFuncs yields every function declaration and literal in the file.
func enclosingFuncs(f *ast.File, visit func(name string, ft *ast.FuncType, body *ast.BlockStmt, decl *ast.FuncDecl)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Type, fd.Body, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				visit("", fl.Type, fl.Body, fd)
			}
			return true
		})
	}
}
