// Package analyzers implements the repository's custom static-analysis
// passes: mapiter (map iteration order feeding ordering decisions), floatcmp
// (exact float equality on gain/modularity comparisons), uncheckedcast
// (unguarded int→int32 index downcasts), permreturn (exported permutation
// producers that skip the validation helper), and doccheck (undocumented
// exported symbols in the contract packages internal/cachesim,
// internal/trace, internal/serve).
//
// The container pins the dependency set, so golang.org/x/tools is
// deliberately not available; the tiny framework below mirrors the
// go/analysis Analyzer/Pass shape on the standard library's go/ast and
// go/types alone, and the passes could migrate to a real multichecker
// verbatim. cmd/lint is the driver binary.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer, mirroring
// go/analysis.Pass.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one static-analysis pass.
type Analyzer struct {
	Name string
	Doc  string
	// Packages restricts the driver to import paths containing one of these
	// fragments; empty runs the pass on every package.
	Packages []string
	Run      func(*Pass)
}

// appliesTo reports whether the analyzer covers the import path.
func (a *Analyzer) appliesTo(importPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, frag := range a.Packages {
		if strings.Contains(importPath, frag) {
			return true
		}
	}
	return false
}

// All returns the repository's analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, FloatCmp, UncheckedCast, PermReturn, DocCheck}
}

// RunAll runs every applicable analyzer over every package and returns the
// surviving diagnostics sorted by position. Findings on lines carrying (or
// directly below) a `//lint:allow <analyzer>` comment are suppressed.
func RunAll(pkgs []*LoadedPackage, as []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range as {
			if !a.appliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				analyzer:  a,
				diags:     &diags,
			}
			a.Run(pass)
		}
		diags = pkg.filterAllowed(diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ---- shared type helpers ----

// isMap reports whether t's core type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t is a floating-point type (including untyped
// float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isIntegerKind reports whether t is one of the named integer kinds.
func isIntegerKind(t types.Type, kinds ...types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	for _, k := range kinds {
		if b.Kind() == k {
			return true
		}
	}
	return false
}

// calleeName returns the bare name of a call's target: the selector name for
// x.F(...), the identifier for F(...), and "" otherwise.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// enclosingFuncs yields every function declaration and literal in the file.
func enclosingFuncs(f *ast.File, visit func(name string, ft *ast.FuncType, body *ast.BlockStmt, decl *ast.FuncDecl)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Type, fd.Body, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				visit("", fl.Type, fl.Body, fd)
			}
			return true
		})
	}
}
