package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatCmp flags `==` and `!=` between floating-point operands. Gain and
// modularity comparisons decide merges and orderings; exact float equality
// makes those decisions depend on rounding noise, so near-ties must be
// resolved with an explicit epsilon.
//
// Comparisons against an exact constant zero are exempt: zero is the one
// value float algorithms legitimately use as a sentinel ("slot never
// touched", "weight reset"), and those checks are exact by construction.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags exact float equality comparisons without an epsilon",
	Packages: []string{
		"internal/community", "internal/core", "internal/reorder",
		"internal/partition", "internal/quality", "internal/experiments",
	},
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			lt := pass.TypesInfo.TypeOf(be.X)
			rt := pass.TypesInfo.TypeOf(be.Y)
			if !isFloat(lt) && !isFloat(rt) {
				return true
			}
			if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "float %s comparison without an epsilon: %s %s %s; near-ties resolve by rounding noise",
				be.Op, exprString(be.X), be.Op, exprString(be.Y))
			return true
		})
	}
}

// isExactZero reports whether the expression is a compile-time constant
// equal to zero.
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
