package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces that cancellation flows through the call tree instead
// of silently stopping. Three rules:
//
//  1. A function holding a context.Context must not call F when a Ctx
//     variant (FCtx, or method MCtx on the same receiver) exists — doing
//     so severs cancellation exactly where it was available. These
//     findings carry a mechanical fix (cmd/lint -fix rewrites the call to
//     the variant with the context threaded as first argument).
//  2. Library packages (import paths under internal/) must not mint
//     fresh contexts with context.Background() or context.TODO(), except
//     in the compatibility-shim pattern: a context-free function whose
//     body delegates to a Ctx-suffixed variant (ExtractFeatures wrapping
//     FeaturesCtx) has nowhere else to get a context from.
//     Deliberate detachment (a job outliving its submit request) carries
//     a //lint:allow ctxflow waiver with the reason inline.
//  3. A named context parameter that the body never reads is cancellation
//     theater — the signature promises propagation the implementation
//     drops. (Interface-mandated parameters that are intentionally
//     unused are renamed _ or waived.)
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "enforces context propagation: use Ctx variants, no Background in libraries, no dropped ctx params",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxIdent := ctxParamIdent(pass, fd.Type)
			hasCtx := ctxIdent != nil && ctxIdent.Name != "_"
			if hasCtx {
				obj := pass.TypesInfo.Defs[ctxIdent]
				if obj != nil && !usesObject(pass, fd.Body, obj) {
					pass.Reportf(ctxIdent.Pos(),
						"context parameter %s of %s is never used; thread it to callees or rename it _",
						ctxIdent.Name, fd.Name.Name)
				} else {
					checkCtxVariantCalls(pass, fd, ctxIdent.Name)
				}
			}
			checkFreshContext(pass, fd, hasCtx)
		}
	}
}

// checkCtxVariantCalls flags calls to F from a context-holding function
// when an applicable FCtx variant exists, attaching the mechanical
// rewrite.
func checkCtxVariantCalls(pass *Pass, fd *ast.FuncDecl, ctxName string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		var sel *ast.Ident
		switch v := fun.(type) {
		case *ast.Ident:
			sel = v
		case *ast.SelectorExpr:
			sel = v.Sel
		default:
			return true // generic instantiations etc. — no mechanical rewrite
		}
		fn, ok := pass.TypesInfo.Uses[sel].(*types.Func)
		if !ok || strings.HasSuffix(fn.Name(), "Ctx") {
			return true
		}
		// The Ctx variant conventionally wraps the context-free core; a
		// call to the core from inside its own variant is the one place
		// that call belongs.
		if fd.Name.Name == fn.Name()+"Ctx" {
			return true
		}
		variant := ctxVariantOf(pass, fn)
		if variant == nil {
			return true
		}
		pos := pass.Fset.Position(fun.Pos())
		lparen := pass.Fset.Position(call.Lparen)
		newText := exprString(fun) + "Ctx(" + ctxName
		if len(call.Args) > 0 {
			newText += ", "
		}
		fix := &TextEdit{
			Filename: pos.Filename,
			Start:    pos.Offset,
			End:      lparen.Offset + 1,
			NewText:  newText,
		}
		pass.ReportFix(call.Pos(), fix,
			"call to %s drops %s; %s exists — thread the context",
			fn.Name(), ctxName, variant.Name())
		return true
	})
}

// ctxVariantOf returns the callable Ctx variant of fn — FCtx in fn's
// package scope for a function, MCtx in the receiver's method set for a
// method — provided its first parameter is a context.Context and it is
// accessible from the analyzed package.
func ctxVariantOf(pass *Pass, fn *types.Func) *types.Func {
	if fn.Pkg() == nil {
		return nil // builtin
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var cand types.Object
	if recv := sig.Recv(); recv != nil {
		cand, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), fn.Name()+"Ctx")
	} else {
		cand = fn.Pkg().Scope().Lookup(fn.Name() + "Ctx")
	}
	v, ok := cand.(*types.Func)
	if !ok {
		return nil
	}
	if fn.Pkg() != pass.Pkg && !v.Exported() {
		return nil
	}
	vsig, ok := v.Type().(*types.Signature)
	if !ok || vsig.Params().Len() == 0 || !isContextType(vsig.Params().At(0).Type()) {
		return nil
	}
	return v
}

// checkFreshContext flags context.Background()/context.TODO() in library
// packages, exempting the compatibility-shim pattern (no ctx param, body
// delegates to the function's own Ctx variant).
func checkFreshContext(pass *Pass, fd *ast.FuncDecl, hasCtx bool) {
	if !strings.Contains(pass.ImportPath, "internal/") {
		return
	}
	if !hasCtx && callsCtxVariant(fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if name := fn.Name(); name == "Background" || name == "TODO" {
			what := "minting a fresh context severs cancellation"
			if hasCtx {
				what = "a context is already in scope"
			}
			pass.Reportf(call.Pos(),
				"context.%s() in library function %s: %s; accept and propagate a caller context",
				name, fd.Name.Name, what)
		}
		return true
	})
}

// callsCtxVariant reports whether fd's body delegates to a Ctx-suffixed
// function — the shape of a backward-compatibility shim.
func callsCtxVariant(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && strings.HasSuffix(calleeName(call), "Ctx") {
			found = true
			return false
		}
		return true
	})
	return found
}

// ctxParamIdent returns the identifier of the first context.Context
// parameter, or nil when the signature has none (or it is unnamed).
func ctxParamIdent(pass *Pass, ft *ast.FuncType) *ast.Ident {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		if len(field.Names) == 0 {
			return nil
		}
		return field.Names[0]
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usesObject reports whether any identifier in body resolves to obj.
func usesObject(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
