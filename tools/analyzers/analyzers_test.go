package analyzers

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// analyze type-checks one fixture source string and runs a single analyzer
// over it, returning the diagnostics.
func analyze(t *testing.T, a *Analyzer, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	var diags []Diagnostic
	a.Run(&Pass{
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
		analyzer:  a,
		diags:     &diags,
	})
	return diags
}

func wantFindings(t *testing.T, diags []Diagnostic, substrings ...string) {
	t.Helper()
	if len(diags) != len(substrings) {
		t.Fatalf("got %d findings, want %d:\n%v", len(diags), len(substrings), diags)
	}
	for i, want := range substrings {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("finding %d = %q, want substring %q", i, diags[i].Message, want)
		}
	}
}

func TestMapIterPositive(t *testing.T) {
	src := `package fixture

func argmaxFromMap(w map[int32]float64) int32 {
	var best int32 = -1
	bestW := -1.0
	for k, v := range w {
		if v > bestW {
			bestW = v
			best = k
		}
	}
	return best
}

func collectNeverSorted(w map[int32]float64) []int32 {
	var keys []int32
	for k := range w {
		keys = append(keys, k)
	}
	return keys
}

func floatSum(w map[int32]float64) float64 {
	var s float64
	for _, v := range w {
		s += v
	}
	return s
}
`
	wantFindings(t, analyze(t, MapIter, src),
		"ordering-sensitive computation",
		"never sorted",
		"floating-point accumulation")
}

func TestMapIterNegative(t *testing.T) {
	src := `package fixture

import "sort"

func collectThenSort(w map[int32]float64) []int32 {
	keys := make([]int32, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

func perKeyStore(w map[int32]float64, out []float64) {
	for k, v := range w {
		out[k] = v
	}
}

func intCount(w map[int32]float64) int {
	n := 0
	for range w {
		n++
	}
	return n
}

func sliceRangeUntouched(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}
`
	wantFindings(t, analyze(t, MapIter, src))
}

func TestFloatCmpPositive(t *testing.T) {
	src := `package fixture

func tieBreak(gain, bestGain float64) bool {
	return gain == bestGain
}

func notEqual(a, b float32) bool {
	return a != b
}

func constNonZero(q float64) bool {
	return q == 1.5
}
`
	wantFindings(t, analyze(t, FloatCmp, src),
		"gain == bestGain",
		"a != b",
		"q == 1.5")
}

func TestFloatCmpNegative(t *testing.T) {
	src := `package fixture

func zeroSentinel(w float64) bool {
	return w == 0
}

func nonZeroCheck(w float64) bool {
	return w != 0.0
}

func epsilonCompare(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12
}

func intCompare(a, b int) bool {
	return a == b
}
`
	wantFindings(t, analyze(t, FloatCmp, src))
}

func TestUncheckedCastPositive(t *testing.T) {
	src := `package fixture

type matrix struct{ cols []int32 }

func (m *matrix) NNZ() int { return len(m.cols) }

func fromLen(xs []int64) int32 {
	return int32(len(xs))
}

func fromCall(m *matrix) int32 {
	return int32(m.NNZ())
}
`
	wantFindings(t, analyze(t, UncheckedCast, src),
		"int32(len(xs))",
		"int32(m.NNZ())")
}

func TestUncheckedCastNegative(t *testing.T) {
	src := `package fixture

import "math"

func mustInt32(v int) int32 {
	if v > math.MaxInt32 {
		panic("overflow")
	}
	return int32(v)
}

func guarded(xs []int64) int32 {
	if len(xs) > math.MaxInt32 {
		panic("overflow")
	}
	return int32(len(xs))
}

func viaHelper(xs []int64) int32 {
	return mustInt32(len(xs))
}

func loopVar(n int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i) // arithmetic on an already-bounded value: not flagged
	}
	return out
}
`
	wantFindings(t, analyze(t, UncheckedCast, src))
}

func TestPermReturnPositive(t *testing.T) {
	src := `package fixture

type Permutation []int32

func Identity(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}
`
	wantFindings(t, analyze(t, PermReturn, src), "exported Identity")
}

func TestPermReturnNegative(t *testing.T) {
	src := `package fixture

type Permutation []int32

func (p Permutation) Validate() error { return nil }

func AssertPermutation(p Permutation) {}

func Checked(n int) Permutation {
	p := make(Permutation, n)
	AssertPermutation(p)
	return p
}

func Validated(n int) Permutation {
	p := make(Permutation, n)
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func unexportedSkipped(n int) Permutation {
	return make(Permutation, n)
}

func ExportedNonPerm(n int) []int32 {
	return make([]int32, n)
}

type inner struct{}

func (inner) Order(n int) Permutation {
	return make(Permutation, n)
}
`
	wantFindings(t, analyze(t, PermReturn, src))
}

// TestLoadAndSuppression drives the real loader over the check package and
// verifies lint:allow filtering machinery on a synthetic diagnostic.
func TestLoadAndSuppression(t *testing.T) {
	pkgs, err := Load("../..", []string{"./internal/check"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "repro/internal/check" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
	diags := RunAll(pkgs, All())
	if len(diags) != 0 {
		t.Fatalf("internal/check must be lint-clean, got %v", diags)
	}

	p := &LoadedPackage{allowed: map[string]map[int][]string{
		"f.go": {10: {"mapiter"}},
	}}
	in := []Diagnostic{
		{Analyzer: "mapiter", Pos: token.Position{Filename: "f.go", Line: 10}},
		{Analyzer: "floatcmp", Pos: token.Position{Filename: "f.go", Line: 10}},
		{Analyzer: "mapiter", Pos: token.Position{Filename: "f.go", Line: 11}},
	}
	out := p.filterAllowed(in)
	if len(out) != 2 {
		t.Fatalf("suppression filtered %d of 3, want 1: %v", 3-len(out), out)
	}
}
