package analyzers

// A lightweight per-package call graph: every function declaration in the
// package becomes a node whose edges are the statically resolvable calls
// its body (including nested function literals) makes. Dynamic dispatch is
// out of scope — calls through interface methods or function values record
// the interface method's (or nothing resolvable's) key and are treated by
// consumers as opaque. The graph is intraprocedural to build but the facts
// layer makes its reachability queries interprocedural: detsource, for
// example, folds callee facts exported by dependency packages into each
// node's own fact.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallSite is one statically resolved call inside a function body.
type CallSite struct {
	// Callee is the target's symbol key (see symbolKey); for calls on
	// interface receivers it names the interface method.
	Callee string
	// Interface reports whether the call dispatches through an interface
	// method (so the static target is a declaration, not an
	// implementation).
	Interface bool
	// Pos locates the call for diagnostics.
	Pos token.Pos
}

// CallNode is one function declared in the analyzed package.
type CallNode struct {
	// Key is the function's symbol key.
	Key string
	// Decl is the declaration, body included.
	Decl *ast.FuncDecl
	// Calls lists the body's statically resolvable calls in source order,
	// including calls made inside nested function literals.
	Calls []CallSite
}

// CallGraph holds the package's nodes keyed by symbol, plus a stable
// source order for deterministic iteration.
type CallGraph struct {
	// Nodes maps symbol keys to their declarations.
	Nodes map[string]*CallNode
	// Order lists the keys in source order.
	Order []string
}

// buildCallGraph walks every function declaration of the package and
// records its resolvable calls.
func buildCallGraph(pkg *LoadedPackage) *CallGraph {
	g := &CallGraph{Nodes: make(map[string]*CallNode)}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CallNode{Key: symbolKey(obj), Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if site, ok := resolveCall(pkg.Info, call); ok {
					node.Calls = append(node.Calls, site)
				}
				return true
			})
			g.Nodes[node.Key] = node
			g.Order = append(g.Order, node.Key)
		}
	}
	return g
}

// resolveCall maps a call expression to its static *types.Func target,
// when one exists. Calls of function-typed variables and conversions
// resolve to nothing.
func resolveCall(info *types.Info, call *ast.CallExpr) (CallSite, bool) {
	var id *ast.Ident
	iface := false
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			iface = types.IsInterface(sel.Recv())
		}
	case *ast.IndexExpr: // explicit generic instantiation F[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return CallSite{}, false
	}
	if id == nil {
		return CallSite{}, false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return CallSite{}, false
	}
	return CallSite{Callee: symbolKey(fn), Interface: iface, Pos: call.Pos()}, true
}
