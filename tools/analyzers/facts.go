package analyzers

// The facts layer carries per-function analysis results across package
// boundaries, mirroring go/analysis facts on the standard library alone.
// An analyzer running on package A exports a fact about a function it
// declares; when the driver later analyzes package B (RunAll processes
// packages in dependency order), the same analyzer imports A's facts to
// reason about calls into A without re-walking A's sources.
//
// Facts are keyed by the analyzer's name and the function's fully
// qualified symbol (see symbolKey): the textual key is stable across the
// separate type-checker instances the source importer creates for "A as
// analysis target" and "A as dependency of B".

import (
	"go/types"
	"sort"
	"strings"
)

// FactStore holds exported per-symbol facts for one RunAll invocation,
// shared by every analyzer across every package in dependency order.
type FactStore struct {
	facts map[string]map[string]any // analyzer name -> symbol key -> fact
}

// NewFactStore returns an empty store. RunAll creates one per invocation;
// tests may build their own to seed cross-package cases.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[string]map[string]any)}
}

// export records the analyzer's fact about the symbol, replacing any
// previous fact from the same analyzer.
func (s *FactStore) export(analyzer, symbol string, fact any) {
	m := s.facts[analyzer]
	if m == nil {
		m = make(map[string]any)
		s.facts[analyzer] = m
	}
	m[symbol] = fact
}

// imp returns the analyzer's fact about the symbol, if one was exported.
func (s *FactStore) imp(analyzer, symbol string) (any, bool) {
	f, ok := s.facts[analyzer][symbol]
	return f, ok
}

// symbols returns the keys the analyzer exported facts for, sorted, for
// deterministic diagnostics and tests.
func (s *FactStore) symbols(analyzer string) []string {
	m := s.facts[analyzer]
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExportFact records a fact about the symbol on behalf of the pass's
// analyzer. Facts exported while analyzing package A are visible to every
// later-analyzed package that imports A.
func (p *Pass) ExportFact(symbol string, fact any) {
	p.facts.export(p.analyzer.Name, symbol, fact)
}

// ImportFact returns the pass's analyzer's fact about the symbol, if any
// earlier-analyzed package (or this one) exported it.
func (p *Pass) ImportFact(symbol string) (any, bool) {
	return p.facts.imp(p.analyzer.Name, symbol)
}

// FactSymbols lists every symbol the pass's analyzer has exported a fact
// for so far, sorted.
func (p *Pass) FactSymbols() []string {
	return p.facts.symbols(p.analyzer.Name)
}

// symbolKey renders a *types.Func as its stable cross-package key:
// "time.Now", "repro/internal/core.Rabbit",
// "(*repro/internal/experiments.Runner).Prefetch". Generic functions key
// by their origin, so every instantiation shares one fact.
func symbolKey(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// shortSymbol trims the module path prefix from a symbol key for
// human-readable diagnostics: "(*repro/internal/experiments.Runner).Prefetch"
// becomes "(*experiments.Runner).Prefetch".
func shortSymbol(key string) string {
	repl := func(s string) string {
		if i := strings.LastIndex(s, "/"); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if strings.HasPrefix(key, "(") {
		if i := strings.Index(key, ")"); i > 0 {
			recv := key[1:i]
			star := strings.HasPrefix(recv, "*")
			recv = strings.TrimPrefix(recv, "*")
			if star {
				return "(*" + repl(recv) + key[i:]
			}
			return "(" + repl(recv) + key[i:]
		}
	}
	return repl(key)
}

// topoSort orders the loaded packages so every package appears after the
// loaded packages it imports; ties keep the input (go list) order. The
// facts layer depends on this: an importer's pass must run after its
// dependencies have exported their facts.
func topoSort(pkgs []*LoadedPackage) []*LoadedPackage {
	byPath := make(map[string]*LoadedPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	var (
		out     []*LoadedPackage
		state   = make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
		visit   func(p *LoadedPackage)
		imports = func(p *LoadedPackage) []*types.Package { return p.Types.Imports() }
	)
	visit = func(p *LoadedPackage) {
		switch state[p.ImportPath] {
		case 1, 2:
			return // cycle (impossible in valid Go) or already emitted
		}
		state[p.ImportPath] = 1
		for _, dep := range imports(p) {
			if d, ok := byPath[dep.Path()]; ok {
				visit(d)
			}
		}
		state[p.ImportPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
