package analyzers

import (
	"go/ast"
)

// DocCheck flags exported declarations without a doc comment in the
// packages whose godoc the repository treats as API contract: the cache
// simulator, the trace generators, the host kernels, the HTTP service,
// the sparse formats and their wire encodings, the technique advisor,
// the experiment harness, the graph partitioners, the GPU cost model,
// the multi-device simulator, and the analyzer framework itself. Those
// packages promise units (bytes, line IDs, accesses), wire layouts, and
// determinism guarantees in their doc comments, and the
// differential-testing story depends on readers being able to trust
// them; an undocumented exported symbol is a contract with no text.
// scripts/check.sh runs this via cmd/lint.
var DocCheck = &Analyzer{
	Name: "doccheck",
	Doc:  "flags undocumented exported symbols in contract packages",
	Packages: []string{
		"internal/cachesim", "internal/trace", "internal/serve",
		"internal/sparse", "internal/advisor", "internal/experiments",
		"internal/kernels", "internal/partition", "internal/gpumodel",
		"internal/multidev", "tools/analyzers",
	},
	Run: runDocCheck,
}

func runDocCheck(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				if !decl.Name.IsExported() {
					continue
				}
				if decl.Recv != nil && !exportedReceiver(decl.Recv) {
					continue // methods on unexported types aren't godoc surface
				}
				if decl.Doc == nil {
					pass.Reportf(decl.Name.Pos(), "exported %s %s has no doc comment; document behaviour, units, and determinism",
						funcKind(decl), decl.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(pass, decl)
			}
		}
	}
}

// funcKind names a FuncDecl for diagnostics.
func funcKind(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl flags undocumented exported types, vars, and consts. A doc
// comment on the enclosing declaration group covers every name in it (the
// standard iota-block convention); otherwise each exported spec needs its
// own comment.
func checkGenDecl(pass *Pass, decl *ast.GenDecl) {
	groupDoc := decl.Doc != nil
	for _, spec := range decl.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && s.Doc == nil {
				pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment; document invariants, units, and determinism", s.Name.Name)
			}
			checkFieldDocs(pass, s)
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment", declKind(decl), name.Name)
				}
			}
		}
	}
}

// checkFieldDocs flags undocumented exported fields of exported structs and
// undocumented exported methods of exported interfaces — both render in
// godoc and both carry unit contracts (e.g. Config.CapacityBytes).
func checkFieldDocs(pass *Pass, ts *ast.TypeSpec) {
	var fields *ast.FieldList
	switch t := ts.Type.(type) {
	case *ast.StructType:
		fields = t.Fields
	case *ast.InterfaceType:
		fields = t.Methods
	default:
		return
	}
	for _, field := range fields.List {
		if field.Doc != nil || field.Comment != nil {
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() {
				pass.Reportf(name.Pos(), "exported field or method %s.%s has no doc comment", ts.Name.Name, name.Name)
			}
		}
	}
}

// declKind names a GenDecl token for diagnostics.
func declKind(decl *ast.GenDecl) string {
	return decl.Tok.String()
}
