package analyzers

import (
	"go/ast"
	"go/types"
)

// PermReturn flags exported functions and methods that return a Permutation
// without ever invoking the validation helper. Every reorder output path
// must pass through check.Perm / check.AssertPermutation (or call
// Validate/ValidPermutation directly) so that `go test -tags check ./...`
// verifies bijectivity at every boundary; a skipped assertion means a broken
// technique can silently corrupt every downstream figure.
var PermReturn = &Analyzer{
	Name: "permreturn",
	Doc:  "flags exported permutation producers that skip validation",
	Packages: []string{
		"internal/community", "internal/core", "internal/reorder",
		"internal/partition", "internal/experiments",
	},
	Run: runPermReturn,
}

// validationCallees accepts a permutation when called anywhere in the body.
var validationCallees = map[string]bool{
	"AssertPermutation": true,
	"ValidPermutation":  true,
	"Validate":          true,
	"IsValid":           true,
}

func runPermReturn(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Recv != nil && !exportedReceiver(fd.Recv) {
				continue // methods on unexported types are internal plumbing
			}
			if !returnsPermutation(pass, fd.Type) {
				continue
			}
			if callsValidation(fd.Body) {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported %s returns a Permutation that is never validated; route the result through check.Perm or check.AssertPermutation",
				fd.Name.Name)
		}
	}
}

// returnsPermutation reports whether any result is a (possibly imported)
// named type called Permutation.
func returnsPermutation(pass *Pass, ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, field := range ft.Results.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Permutation" {
			return true
		}
	}
	return false
}

// callsValidation reports whether the body (or the check.Perm pass-through)
// invokes one of the validation helpers.
func callsValidation(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if validationCallees[name] {
			found = true
			return false
		}
		// check.Perm(p) is the validating pass-through.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Perm" {
			if identName(sel.X) == "check" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exportedReceiver reports whether the method's receiver base type is
// exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}
