package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
	"sync"

	"repro/tools/escape"
)

// HotAlloc verifies //repro:noalloc annotations against the compiler's
// escape analysis: a function carrying the annotation must contain no
// statement the compiler attributes a heap allocation to. The FastLRU
// access path and the streaming-Belady inner loops claim 0 allocs/op —
// today that claim is defended only by -benchmem numbers, which drift
// silently when a refactor introduces an escape; this pass rejects the
// escape at lint time.
//
// The annotation goes in the function's doc comment:
//
//	// Access touches one line ...
//	//
//	//repro:noalloc
//	func (c *FastLRU) Access(line int64) bool { ... }
//
// Allocations in cold paths must live in separate (unannotated) functions
// — the grow/spill helpers pattern — so the annotated body stays provably
// allocation-free. Packages without any annotation never invoke the
// compiler.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "verifies //repro:noalloc functions against escape analysis",
	Run:  runHotAlloc,
}

// escapeAllocs is the escape-analysis hook, stubbed by the corpus tests;
// the default shells out to the toolchain via tools/escape.
var escapeAllocs = func(dir string) (map[string][]escape.Alloc, error) {
	rep, err := escape.Analyze(dir)
	if err != nil {
		return nil, err
	}
	return rep.ByFile, nil
}

// escapeCache memoizes escape analysis per package directory, so the
// compiler runs once per package no matter how many files carry
// annotations.
var escapeCache sync.Map // dir -> escapeResult

type escapeResult struct {
	byFile map[string][]escape.Alloc
	err    error
}

func escapeFor(dir string) (map[string][]escape.Alloc, error) {
	if v, ok := escapeCache.Load(dir); ok {
		r := v.(escapeResult)
		return r.byFile, r.err
	}
	byFile, err := escapeAllocs(dir)
	escapeCache.Store(dir, escapeResult{byFile, err})
	return byFile, err
}

func runHotAlloc(pass *Pass) {
	type annotated struct {
		decl *ast.FuncDecl
		file string // absolute path
	}
	var funcs []annotated
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasAnnotation(fd.Doc, "repro:noalloc") {
				continue
			}
			funcs = append(funcs, annotated{fd, pass.Fset.Position(fd.Pos()).Filename})
		}
	}
	if len(funcs) == 0 {
		return
	}
	byFile, err := escapeFor(pass.Dir)
	if err != nil {
		// One report per package, on the first annotated function: the
		// annotation demands verification, and verification is broken.
		pass.Reportf(funcs[0].decl.Name.Pos(), "cannot verify //repro:noalloc: %v", err)
		return
	}
	for _, fn := range funcs {
		start := pass.Fset.Position(fn.decl.Pos()).Line
		end := pass.Fset.Position(fn.decl.End()).Line
		for _, a := range byFile[fn.file] {
			if a.Line < start || a.Line > end {
				continue
			}
			pass.Reportf(posOnLine(pass.Fset, fn.decl, a.Line),
				"heap allocation in //repro:noalloc function %s: %s (line %d)",
				fn.decl.Name.Name, a.Message, a.Line)
		}
	}
}

// hasAnnotation reports whether the doc comment carries the given
// //repro:* marker as its own line (an optional reason may follow after a
// space).
func hasAnnotation(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// posOnLine returns a position on the given line inside the declaration's
// file, so diagnostics (and lint:allow suppressions) anchor to the
// allocation, not the function header.
func posOnLine(fset *token.FileSet, decl *ast.FuncDecl, line int) token.Pos {
	tf := fset.File(decl.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return decl.Name.Pos()
	}
	return tf.LineStart(line)
}
