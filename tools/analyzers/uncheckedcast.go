package analyzers

import (
	"go/ast"
	"go/types"
)

// UncheckedCast flags int32(...) conversions of dynamically sized values —
// len(...), cap(...), and int/int64-returning calls such as NNZ() — that
// are not guarded against overflow. Matrices approaching 2³¹ nonzeros wrap
// these casts silently, corrupting offsets without any error.
//
// Conversions of loop variables and other already-int32-bounded arithmetic
// are not flagged; the hazard is specifically quantities that grow with the
// data. A conversion is accepted when its enclosing function either calls a
// guard helper (check.SafeInt32, FitsInt32, or a local mustInt32) or
// mentions math.MaxInt32 in an explicit bound check.
var UncheckedCast = &Analyzer{
	Name: "uncheckedcast",
	Doc:  "flags unguarded int->int32 downcasts of dynamically sized values",
	Run:  runUncheckedCast,
}

var guardNames = map[string]bool{
	"SafeInt32": true,
	"FitsInt32": true,
	"mustInt32": true,
}

func runUncheckedCast(pass *Pass) {
	for _, f := range pass.Files {
		enclosingFuncs(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt, decl *ast.FuncDecl) {
			if guardNames[name] {
				return // the guard helper itself performs the raw cast
			}
			guarded := hasOverflowGuard(body)
			ast.Inspect(body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
					return false // literals are visited separately
				}
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if !isInt32Conversion(pass, call) {
					return true
				}
				arg := ast.Unparen(call.Args[0])
				inner, ok := arg.(*ast.CallExpr)
				if !ok {
					return true // identifiers/arithmetic: not a sized-value cast
				}
				if !isIntegerKind(pass.TypesInfo.TypeOf(arg), types.Int, types.Int64, types.Uint, types.Uint64) {
					return true
				}
				if guarded {
					return true
				}
				pass.Reportf(call.Pos(), "unguarded int32(%s) downcast: values near 2^31 wrap silently; use check.SafeInt32 or guard with math.MaxInt32",
					exprString(inner))
				return true
			})
		})
	}
}

// isInt32Conversion reports whether the call is a type conversion to int32.
func isInt32Conversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	return isIntegerKind(tv.Type, types.Int32)
}

// hasOverflowGuard reports whether the body calls a guard helper or
// references math.MaxInt32.
func hasOverflowGuard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if guardNames[calleeName(v)] {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if v.Sel.Name == "MaxInt32" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
