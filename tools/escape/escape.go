// Package escape runs the Go compiler's escape analysis over a package
// and parses the -gcflags=-m diagnostics into per-file heap-allocation
// records. The hotalloc analyzer uses it to verify //repro:noalloc
// annotations statically: a function whose line range contains a heap
// allocation cannot honour a zero-allocs-per-op contract.
//
// The package shells out to `go build` (the toolchain is a hard
// prerequisite of the analyzer driver anyway); repeat runs replay the
// cached compiler output, so the steady-state cost is one subprocess, not
// one compile.
package escape

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// Alloc is one heap allocation the compiler's escape analysis attributes
// to a source position.
type Alloc struct {
	// File is the absolute path of the file containing the allocation.
	File string
	// Line and Col are the allocation's 1-based source position.
	Line, Col int
	// Message is the compiler's diagnostic, e.g. "make([]int64, size)
	// escapes to heap" or "moved to heap: out".
	Message string
}

// Report holds every heap allocation of one package keyed by absolute
// file path.
type Report struct {
	// ByFile maps absolute file paths to their allocations in line order.
	ByFile map[string][]Alloc
}

// diagLine matches one compiler diagnostic: "./fast.go:62:13: message".
var diagLine = regexp.MustCompile(`^(.*\.go):(\d+):(\d+): (.*)$`)

// Analyze compiles the package rooted at dir with -gcflags=-m=1 and
// returns its heap allocations. Diagnostics that cannot allocate at run
// time are dropped:
//
//   - "can inline"/"inlining call"/"leaking param" chatter (not
//     allocations at all), and
//   - constant string literals "escaping" into interfaces (panic
//     messages); their backing data is static.
//
// Allocation sites on lines that execute conditionally (error branches)
// are still reported — a //repro:noalloc function must keep its failure
// handling outside the annotated body.
func Analyze(dir string) (*Report, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=1", ".")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escape: go build -gcflags=-m in %s: %v\n%s", dir, err, out.String())
	}
	rep := &Report{ByFile: make(map[string][]Alloc)}
	for _, line := range strings.Split(out.String(), "\n") {
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !isAllocation(msg) {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		file = filepath.Clean(file)
		rep.ByFile[file] = append(rep.ByFile[file], Alloc{
			File: file, Line: ln, Col: col, Message: msg,
		})
	}
	return rep, nil
}

// isAllocation reports whether the -m diagnostic describes a run-time
// heap allocation.
func isAllocation(msg string) bool {
	switch {
	case strings.HasPrefix(msg, "moved to heap: "):
		return true
	case strings.HasSuffix(msg, "escapes to heap"):
		// A constant string literal boxed into an interface (a panic
		// argument, typically) has static backing data and performs no
		// run-time allocation.
		return !strings.HasPrefix(msg, `"`) && !strings.HasPrefix(msg, "`")
	}
	return false
}
