package escape

import (
	"path/filepath"
	"testing"
)

func TestIsAllocation(t *testing.T) {
	cases := []struct {
		msg  string
		want bool
	}{
		{"moved to heap: out", true},
		{"make([]int64, size) escapes to heap", true},
		{"&Dense{...} escapes to heap", true},
		{`"cachesim: negative line ID" escapes to heap`, false}, // static string data
		{"`raw constant` escapes to heap", false},
		{"can inline (*FastLRU).setOf", false},
		{"inlining call to (*FastLRU).setOf", false},
		{"leaking param: a", false},
	}
	for _, c := range cases {
		if got := isAllocation(c.msg); got != c.want {
			t.Errorf("isAllocation(%q) = %v, want %v", c.msg, got, c.want)
		}
	}
}

func TestDiagLine(t *testing.T) {
	m := diagLine.FindStringSubmatch("./fast.go:62:13: make([]int32, n) escapes to heap")
	if m == nil {
		t.Fatal("diagLine did not match a canonical -m line")
	}
	if m[1] != "./fast.go" || m[2] != "62" || m[3] != "13" {
		t.Errorf("parsed %q, %q, %q", m[1], m[2], m[3])
	}
	if diagLine.MatchString("# repro/internal/cachesim") {
		t.Error("diagLine matched a package header line")
	}
}

// TestAnalyzeKernels runs the real compiler over internal/kernels and
// checks the report's shape: paths absolute, lines positive, and no
// allocation attributed to the //repro:noalloc cores (the same invariant
// the hotalloc gate enforces).
func TestAnalyzeKernels(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("..", "..", "internal", "kernels"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(dir)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", dir, err)
	}
	for file, allocs := range rep.ByFile {
		if !filepath.IsAbs(file) {
			t.Errorf("report key %q is not absolute", file)
		}
		for _, a := range allocs {
			if a.Line <= 0 || a.File != file {
				t.Errorf("malformed alloc record %+v under %s", a, file)
			}
		}
	}
}
