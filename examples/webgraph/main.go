// Webgraph: the paper's motivating scenario — a hyperlink-style matrix
// combining community structure with power-law hubs (like pld-arc), where
// plain community reordering leaves performance on the table and RABBIT++'s
// insular/hub grouping recovers it.
//
// The example sweeps every reordering technique in the repository over the
// same web-crawl-like matrix and reports simulated traffic, projected run
// time, L2 hit rate, and dead-line waste, then breaks down *why* RABBIT++
// wins using the community-quality metrics of Section V.
package main

import (
	"fmt"
	"os"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/quality"
	"repro/internal/reorder"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	m := gen.HubbyCommunities{
		Nodes:       32768,
		Communities: 128,
		AvgDegree:   12,
		Mu:          0.25,
		Hubs:        256,
		HubDegree:   96,
	}.Generate(2023)

	device := gpumodel.SimDeviceSmall()
	kernel := gpumodel.Kernel{Kind: gpumodel.SpMVCSR}
	n, nnz := int64(m.NumRows), int64(m.NNZ())
	fmt.Printf("web-crawl-like matrix: %d rows, %d nnz, skew(top10%%)=%.1f%%\n\n",
		n, nnz, 100*quality.DegreeSkew(m))

	tb := report.New(fmt.Sprintf("SpMV on %s (L2 %d KB)", device.Name, device.L2.CapacityBytes>>10),
		"technique", "traffic/ideal", "runtime/ideal", "hit-rate", "dead-lines")
	for _, tech := range reorder.All() {
		pm := m.PermuteSymmetric(tech.Order(m))
		s := cachesim.SimulateLRU(device.L2, trace.SpMVCSR(pm, device.L2.LineBytes))
		tb.Add(tech.Name(),
			report.X(gpumodel.NormalizedTraffic(s, kernel, n, nnz)),
			report.X(gpumodel.NormalizedRuntime(device, s, kernel, n, nnz)),
			report.Pct(s.HitRate()),
			report.Pct(s.DeadLineFraction()))
	}
	if err := tb.Render(os.Stdout); err != nil {
		panic(err)
	}

	// Why RABBIT++ helps here: the Section V diagnosis.
	rr := core.Rabbit(m)
	cs := core.Analyze(m, rr.Communities)
	fmt.Printf("\ncommunity diagnosis: %d communities, insularity %.3f (< %.2f: hub-depressed), "+
		"insular nodes %.1f%%, modularity %.3f\n",
		cs.Communities, cs.Insularity, 0.95, 100*cs.InsularNodeFraction, cs.Modularity)
	fmt.Println("RABBIT++ groups the insular share for perfect locality and packs the hubs")
	fmt.Println("into few cache lines while keeping RABBIT's relative hub order (Figure 5).")
}
