// Pagerank: matrix reordering is a pre-processing optimization, so its
// cost amortizes across every later iteration — the Section VI-C argument.
// PageRank's power iteration is SpMV in a loop, which makes it the perfect
// demonstration: this example runs PageRank on a web-crawl-like graph in
// ORIGINAL and RABBIT++ order, checks that both converge to the same
// ranking, and reports the per-iteration simulated DRAM traffic plus how
// many iterations the reordering needs to pay for itself.
package main

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/kernels"
	"repro/internal/reorder"
	"repro/internal/sparse"
	"repro/internal/trace"
)

const (
	damping   = 0.85
	tolerance = 1e-6
	maxIters  = 100
)

// pagerank runs power iteration on the column-stochastic transition matrix
// derived from adjacency matrix m, returning the rank vector and the
// iteration count.
func pagerank(m *sparse.CSR) ([]float32, int) {
	n := m.NumRows
	// Build P^T in CSR so rank updates are SpMV: new = d*P^T*old + (1-d)/n.
	// P[j][i] = 1/outdeg(j) for each edge j->i; P^T rows are in-edges.
	outDeg := m.Degrees()
	tr := m.Transpose()
	pt := tr.Clone()
	for r := int32(0); r < pt.NumRows; r++ {
		cols, vals := pt.Row(r)
		for k, c := range cols {
			vals[k] = 1 / float32(outDeg[c])
		}
	}
	rank := make([]float32, n)
	next := make([]float32, n)
	for i := range rank {
		rank[i] = 1 / float32(n)
	}
	base := (1 - float32(damping)) / float32(n)
	for iter := 1; iter <= maxIters; iter++ {
		if err := kernels.SpMVCSR(pt, rank, next); err != nil {
			panic(err)
		}
		var delta float64
		for i := range next {
			next[i] = base + damping*next[i]
			delta += math.Abs(float64(next[i] - rank[i]))
		}
		rank, next = next, rank
		if delta < tolerance {
			return rank, iter
		}
	}
	return rank, maxIters
}

func main() {
	m := gen.HubbyCommunities{
		Nodes: 32768, Communities: 128, AvgDegree: 12, Mu: 0.25, Hubs: 256, HubDegree: 64,
	}.Generate(11)
	device := gpumodel.SimDeviceSmall()
	kernel := gpumodel.Kernel{Kind: gpumodel.SpMVCSR}
	n, nnz := int64(m.NumRows), int64(m.NNZ())
	fmt.Printf("graph: %d nodes, %d edges\n\n", n, nnz)

	// Reorder once; run PageRank in both orders.
	start := time.Now()
	p := reorder.RabbitPP{}.Order(m)
	reorderTime := time.Since(start)
	pm := m.PermuteSymmetric(p)

	origRank, origIters := pagerank(m)
	reordRank, reordIters := pagerank(pm)

	// Same ranking? Compare the top-10 nodes (mapped back to old IDs).
	inv := p.Inverse()
	top := func(rank []float32, mapBack bool) []int32 {
		ids := make([]int32, len(rank))
		for i := range ids {
			ids[i] = int32(i)
		}
		sort.SliceStable(ids, func(a, b int) bool { return rank[ids[a]] > rank[ids[b]] })
		out := ids[:10]
		if mapBack {
			mapped := make([]int32, 10)
			for i, v := range out {
				mapped[i] = inv[v]
			}
			return mapped
		}
		return out
	}
	a, b := top(origRank, false), top(reordRank, true)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	fmt.Printf("converged in %d (original) vs %d (reordered) iterations; top-10 ranking identical: %v\n",
		origIters, reordIters, same)

	// Per-iteration simulated traffic (the transition matrix has the same
	// pattern as the transposed adjacency; SpMV traffic is pattern-driven).
	simTraffic := func(mat *sparse.CSR) cachesim.Stats {
		return cachesim.SimulateLRU(device.L2, trace.SpMVCSR(mat.Transpose(), device.L2.LineBytes))
	}
	so, sr := simTraffic(m), simTraffic(pm)
	to := gpumodel.ProjectTime(device, so)
	tr := gpumodel.ProjectTime(device, sr)
	fmt.Printf("\nper-iteration simulated SpMV: original %.2fx ideal, RABBIT++ %.2fx ideal\n",
		gpumodel.NormalizedRuntime(device, so, kernel, n, nnz),
		gpumodel.NormalizedRuntime(device, sr, kernel, n, nnz))
	if saved := to - tr; saved > 0 {
		fmt.Printf("reordering took %v and pays for itself after ~%.0f PageRank iterations on the modeled device\n",
			reorderTime.Round(time.Millisecond), reorderTime.Seconds()/saved)
	}
	fmt.Printf("(a full PageRank to convergence runs %d iterations; rankings and results are unchanged)\n", reordIters)
}
