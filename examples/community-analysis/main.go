// Community-analysis: reproduce the paper's Section V methodology on a
// handful of structurally different matrices — measure RABBIT's community
// quality (insularity, modularity, community sizes, insular nodes, degree
// skew) and show how those metrics predict reordering effectiveness,
// including the mawi anomaly where high insularity is meaningless because
// one community swallows the matrix.
package main

import (
	"fmt"
	"os"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/reorder"
	"repro/internal/report"
	"repro/internal/sparse"
	"repro/internal/trace"
)

func main() {
	device := gpumodel.SimDeviceSmall()
	kernel := gpumodel.Kernel{Kind: gpumodel.SpMVCSR}

	cases := []struct {
		name string
		gen  gen.Generator
		seed uint64
	}{
		{"tight-communities", gen.PlantedPartition{Nodes: 16384, Communities: 128, AvgDegree: 16, Mu: 0.05}, 1},
		{"loose-communities", gen.PlantedPartition{Nodes: 16384, Communities: 128, AvgDegree: 16, Mu: 0.45}, 2},
		{"power-law", gen.RMAT{LogNodes: 14, AvgDegree: 16, A: 0.57, B: 0.19, C: 0.19, Symmetric: true}, 3},
		{"mesh", gen.Mesh2D{Width: 128, Height: 128}, 4},
		{"mawi-like-star", gen.HubStar{Nodes: 16384, Hubs: 1, HubConn: 0.9, Background: 256}, 5},
		{"pref-attach", gen.BarabasiAlbert{Nodes: 16384, M: 8}, 6},
		{"forest-fire", gen.ForestFire{Nodes: 16384, BurnProb: 0.35}, 7},
	}

	tb := report.New("RABBIT community quality vs achieved locality (Section V)",
		"matrix", "insularity", "modularity", "insular-nodes", "skew",
		"largest-comm", "avg-comm/N", "traffic/ideal")
	for _, c := range cases {
		m := c.gen.Generate(c.seed)
		rr := core.Rabbit(m)
		cs := core.Analyze(m, rr.Communities)
		pm := m.PermuteSymmetric(rr.Perm)
		s := cachesim.SimulateLRU(device.L2, trace.SpMVCSR(pm, device.L2.LineBytes))
		nt := gpumodel.NormalizedTraffic(s, kernel, int64(m.NumRows), int64(m.NNZ()))
		tb.Add(c.name,
			report.F(cs.Insularity), report.F(cs.Modularity),
			report.Pct(cs.InsularNodeFraction), report.Pct(cs.Skew),
			report.Pct(cs.LargestCommunityFraction), report.F(cs.AvgCommunitySizeNorm),
			report.X(nt))
	}
	tb.Note("high insularity with small communities -> near-ideal traffic")
	tb.Note("mawi anomaly: insularity is high but one community holds nearly the whole matrix, so traffic stays poor")
	tb.Note("power-law skew depresses insularity (the paper's Pearson -0.72 link)")
	if err := tb.Render(os.Stdout); err != nil {
		panic(err)
	}

	// The RABBIT++ fix on the skewed case: insular grouping + hub grouping.
	m := cases[2].gen.Generate(cases[2].seed)
	fmt.Printf("\npower-law case, RABBIT vs RABBIT++ traffic: %.2fx -> %.2fx\n",
		normTraffic(device, kernel, m, reorder.Rabbit{}),
		normTraffic(device, kernel, m, reorder.RabbitPP{}))
}

func normTraffic(d gpumodel.Device, k gpumodel.Kernel, m *sparse.CSR, t reorder.Technique) float64 {
	pm := m.PermuteSymmetric(t.Order(m))
	s := cachesim.SimulateLRU(d.L2, trace.SpMVCSR(pm, d.L2.LineBytes))
	return gpumodel.NormalizedTraffic(s, k, int64(m.NumRows), int64(m.NNZ()))
}
