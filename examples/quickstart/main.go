// Quickstart: generate a community-structured sparse matrix, reorder it
// with RABBIT++, and measure what the reordering buys — simulated DRAM
// traffic against the hardware limit, and a real SpMV run proving the
// kernel's results are unchanged.
package main

import (
	"fmt"
	"math"

	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/kernels"
	"repro/internal/reorder"
	"repro/internal/trace"
)

func main() {
	// A 16K-node social-network-like matrix with planted communities,
	// published in scrambled order (as real datasets usually are).
	m := gen.PlantedPartition{
		Nodes:       16384,
		Communities: 128,
		AvgDegree:   16,
		Mu:          0.15,
	}.Generate(42)
	fmt.Printf("matrix: %d rows, %d nonzeros\n", m.NumRows, m.NNZ())

	// The evaluation device: an A6000 scaled so this matrix's input-vector
	// footprint exceeds the L2, the regime where reordering matters.
	device := gpumodel.SimDeviceSmall()
	kernel := gpumodel.Kernel{Kind: gpumodel.SpMVCSR}
	n, nnz := int64(m.NumRows), int64(m.NNZ())

	fmt.Printf("device: %s (L2 %d KB)\n\n", device.Name, device.L2.CapacityBytes>>10)
	fmt.Printf("%-10s %-22s %-22s\n", "ordering", "DRAM traffic/ideal", "run time/ideal")
	for _, tech := range []reorder.Technique{
		reorder.Original{},
		reorder.Random{Seed: 7},
		reorder.Rabbit{},
		reorder.RabbitPP{},
	} {
		pm := m.PermuteSymmetric(tech.Order(m))
		stats := cachesim.SimulateLRU(device.L2, trace.SpMVCSR(pm, device.L2.LineBytes))
		fmt.Printf("%-10s %-22.2f %-22.2f\n",
			tech.Name(),
			gpumodel.NormalizedTraffic(stats, kernel, n, nnz),
			gpumodel.NormalizedRuntime(device, stats, kernel, n, nnz))
	}

	// Reordering is semantics-preserving: SpMV(P·A·Pᵀ, P·x) == P·SpMV(A, x).
	rng := gen.NewRNG(1)
	x := make([]float32, m.NumCols)
	for i := range x {
		x[i] = rng.Float32()
	}
	base := kernels.DenseSpMVReference(m, x)
	p := reorder.RabbitPP{}.Order(m)
	pm := m.PermuteSymmetric(p)
	px := p.PermuteVector(x)
	py := make([]float32, pm.NumRows)
	if err := kernels.SpMVCSR(pm, px, py); err != nil {
		panic(err)
	}
	want := p.PermuteVector(base)
	var maxErr float64
	for i := range py {
		if d := math.Abs(float64(py[i] - want[i])); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("\nsemantics check: max |SpMV(PAPᵀ,Px) - P·SpMV(A,x)| = %.3g\n", maxErr)
}
