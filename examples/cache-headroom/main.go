// Cache-headroom: reproduce the Figure 8 methodology on one matrix — how
// much DRAM traffic does each reordering leave on the table relative to an
// idealized L2 with Belady's optimal replacement? A small LRU-to-Belady gap
// means the ordering has already extracted nearly all achievable locality,
// which is the paper's closing argument for RABBIT++.
package main

import (
	"fmt"
	"os"

	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/reorder"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	m := gen.HubbyCommunities{
		Nodes:       16384,
		Communities: 96,
		AvgDegree:   12,
		Mu:          0.3,
		Hubs:        192,
		HubDegree:   64,
	}.Generate(7)
	device := gpumodel.SimDeviceSmall()
	kernel := gpumodel.Kernel{Kind: gpumodel.SpMVCSR}
	n, nnz := int64(m.NumRows), int64(m.NNZ())
	fmt.Printf("matrix: %d rows, %d nnz; L2 %d KB\n\n", n, nnz, device.L2.CapacityBytes>>10)

	tb := report.New("SpMV DRAM traffic: realistic LRU L2 vs Belady-optimal L2 (normalized to compulsory)",
		"technique", "LRU", "Belady", "headroom")
	for _, tech := range []reorder.Technique{
		reorder.Random{Seed: 1},
		reorder.Original{},
		reorder.DegSort{},
		reorder.DBG{},
		reorder.Gorder{Window: 5},
		reorder.Rabbit{},
		reorder.RabbitPP{},
	} {
		pm := m.PermuteSymmetric(tech.Order(m))
		mkTrace := func() func(func(int64)) { return trace.SpMVCSR(pm, device.L2.LineBytes) }
		lru := cachesim.SimulateLRU(device.L2, mkTrace())
		opt := cachesim.SimulateBelady(device.L2, cachesim.RecordTrace(mkTrace()))
		lt := gpumodel.NormalizedTraffic(lru, kernel, n, nnz)
		ot := gpumodel.NormalizedTraffic(opt, kernel, n, nnz)
		tb.Add(tech.Name(), report.X(lt), report.X(ot), report.Pct(lt/ot-1))
	}
	tb.Note("Belady bounds any replacement policy; finding the optimal *ordering* is NP-hard (Section VI-B)")
	if err := tb.Render(os.Stdout); err != nil {
		panic(err)
	}
}
