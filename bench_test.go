// Package repro's root benchmark harness: one benchmark per paper table
// and figure, each regenerating its result end to end (corpus generation,
// reordering, cache simulation, reporting) on a small, structurally
// diverse corpus slice. Run everything with:
//
//	go test -bench=. -benchmem
//
// The full-corpus reproduction is cmd/experiments; these benchmarks keep
// the per-experiment pipelines exercised and timed.
package main

import (
	"io"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/kernels"
	"repro/internal/reorder"
	"repro/internal/trace"
)

// benchSubset is the corpus slice used by the per-figure benchmarks: one
// high-insularity matrix, one mesh, one hub-heavy web graph, and one
// unstructured control.
var benchSubset = []string{"soc-tight-2", "cfd-2d-5pt", "pld-arc-like", "er-deg16"}

func benchRunner(names ...string) *experiments.Runner {
	cfg := experiments.SmallConfig()
	if names == nil {
		names = benchSubset
	}
	cfg.Matrices = names
	return experiments.NewRunner(cfg)
}

// benchExperiment regenerates one registered experiment per iteration,
// including all of its matrix generation, reordering, and simulation work.
func benchExperiment(b *testing.B, id string, names ...string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := benchRunner(names...)
		tb, err := e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if err := tb.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSuite regenerates the entire registered suite (every paper table
// and figure) per iteration on a fresh runner with the given worker-pool
// width. Serial vs parallel is the scheduler's headline speedup;
// scripts/bench.sh turns the pair into BENCH_experiments.json.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	cfg := experiments.SmallConfig()
	cfg.Matrices = benchSubset
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(cfg)
		if err := experiments.RunAll(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteSerial(b *testing.B)   { benchSuite(b, 1) }
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 4) }

func BenchmarkTableIDeviceSpec(b *testing.B)  { benchExperiment(b, "device") }
func BenchmarkFig2Traffic(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3Insularity(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkCorrelations(b *testing.B)      { benchExperiment(b, "corr") }
func BenchmarkFig4InsularNodes(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig6InsularSubmat(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkTableIIDesignSpace(b *testing.B) {
	benchExperiment(b, "table2")
}
func BenchmarkFig7TrafficReduction(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkTableIIIDeadLines(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkFig8BeladyHeadroom(b *testing.B) {
	benchExperiment(b, "fig8", "soc-tight-2", "pld-arc-like")
}
func BenchmarkFig9ReorderingCost(b *testing.B) {
	benchExperiment(b, "fig9", "soc-tight-2")
}
func BenchmarkTableIVOtherKernels(b *testing.B) {
	benchExperiment(b, "table4", "soc-tight-2", "pld-arc-like")
}

// --- Component micro-benchmarks ---

var benchMat = gen.PlantedPartition{Nodes: 16384, Communities: 128, AvgDegree: 16, Mu: 0.2}.Generate(1)

func BenchmarkRabbitOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = reorder.Rabbit{}.Order(benchMat)
	}
}

func BenchmarkRabbitPPOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = reorder.RabbitPP{}.Order(benchMat)
	}
}

func BenchmarkGorderOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = reorder.Gorder{Window: 5}.Order(benchMat)
	}
}

func BenchmarkDBGOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = reorder.DBG{}.Order(benchMat)
	}
}

func BenchmarkSpMVKernel(b *testing.B) {
	x := make([]float32, benchMat.NumCols)
	y := make([]float32, benchMat.NumRows)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(int64(benchMat.NNZ() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kernels.SpMVCSR(benchMat, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLRUSimulation(b *testing.B) {
	d := gpumodel.SimDeviceSmall()
	for i := 0; i < b.N; i++ {
		_ = cachesim.SimulateLRU(d.L2, trace.SpMVCSR(benchMat, d.L2.LineBytes))
	}
}

func BenchmarkBeladySimulation(b *testing.B) {
	d := gpumodel.SimDeviceSmall()
	recorded := cachesim.RecordTrace(trace.SpMVCSR(benchMat, d.L2.LineBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cachesim.SimulateBelady(d.L2, recorded)
	}
}
