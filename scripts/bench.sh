#!/bin/sh
# Perf trajectory harness: time the full experiment suite serial vs
# parallel (4 workers) and record the speedup as BENCH_experiments.json.
# Run from the repository root: ./scripts/bench.sh [count]
#
# count (default 1) is the -benchtime=<count>x iteration count; raise it
# on noisy machines.
set -eu

count="${1:-1}"

echo "==> go test -bench 'BenchmarkSuite(Serial|Parallel)' -benchtime=${count}x ."
out=$(go test -run='^$' -bench='^BenchmarkSuite(Serial|Parallel)$' \
	-benchtime="${count}x" -timeout 60m .)
echo "$out"

serial=$(echo "$out" | awk '$1 ~ /^BenchmarkSuiteSerial/ {print $3}')
parallel=$(echo "$out" | awk '$1 ~ /^BenchmarkSuiteParallel/ {print $3}')
if [ -z "$serial" ] || [ -z "$parallel" ]; then
	echo "bench.sh: could not parse benchmark output" >&2
	exit 1
fi
speedup=$(awk "BEGIN{printf \"%.2f\", $serial/$parallel}")
cpus=$(nproc 2>/dev/null || echo 1)

# The speedup is wall-clock, so it is bounded by the host's core count:
# a single-core box cannot show parallel gain (only the interleaving
# overhead), which the recorded host_logical_cpus makes explicit.
cat > BENCH_experiments.json <<EOF
{
  "benchmark": "experiments suite (Small corpus subset: ${count}x, all registered figures and tables)",
  "serial_ns_per_op": $serial,
  "parallel_workers": 4,
  "parallel_ns_per_op": $parallel,
  "speedup": $speedup,
  "host_logical_cpus": $cpus
}
EOF

echo "==> BENCH_experiments.json (speedup ${speedup}x at 4 workers on ${cpus} CPUs)"
