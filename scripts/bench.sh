#!/bin/sh
# Perf trajectory harness: time the full experiment suite serial vs
# parallel (4 workers) and record the speedup as BENCH_experiments.json,
# then time the cache simulator's fast path against the reference
# implementation and record that as BENCH_cachesim.json.
# Run from the repository root: ./scripts/bench.sh [count]
#
# count (default 1) is the -benchtime=<count>x iteration count for the
# suite benchmark; raise it on noisy machines.
set -eu

count="${1:-1}"

echo "==> go test -bench 'BenchmarkSuite(Serial|Parallel)' -benchtime=${count}x ."
out=$(go test -run='^$' -bench='^BenchmarkSuite(Serial|Parallel)$' \
	-benchtime="${count}x" -timeout 60m .)
echo "$out"

serial=$(echo "$out" | awk '$1 ~ /^BenchmarkSuiteSerial/ {print $3}')
parallel=$(echo "$out" | awk '$1 ~ /^BenchmarkSuiteParallel/ {print $3}')
if [ -z "$serial" ] || [ -z "$parallel" ]; then
	echo "bench.sh: could not parse benchmark output" >&2
	exit 1
fi
speedup=$(awk "BEGIN{printf \"%.2f\", $serial/$parallel}")
cpus=$(nproc 2>/dev/null || echo 1)

echo "==> go test -bench BenchmarkSerialPathOverhead ./internal/experiments"
ovout=$(go test -run='^$' -bench='^BenchmarkSerialPathOverhead$' \
	-timeout 30m ./internal/experiments)
echo "$ovout"

ov_bare=$(echo "$ovout" | awk '$1 ~ /^BenchmarkSerialPathOverhead\/bare/ {print $3}')
ov_prefetch=$(echo "$ovout" | awk '$1 ~ /^BenchmarkSerialPathOverhead\/prefetch/ {print $3}')
if [ -z "$ov_bare" ] || [ -z "$ov_prefetch" ]; then
	echo "bench.sh: could not parse serial-overhead benchmark output" >&2
	exit 1
fi
# Dispatch overhead of Prefetch's workers=1 inline bypass over a bare
# loop, with all caches warm so only the scheduler itself is timed. The
# budget is <5%; breach is a warning, not a failure, because at the
# nanosecond scale a loaded host can exceed it on noise alone.
overhead=$(awk "BEGIN{printf \"%.2f\", ($ov_prefetch/$ov_bare - 1) * 100}")
if awk "BEGIN{exit !($overhead >= 5)}"; then
	echo "bench.sh: WARNING serial-path overhead ${overhead}% exceeds the 5% budget" >&2
fi

# The speedup is wall-clock, so it is bounded by the host's core count:
# a single-core box cannot show parallel gain (only the interleaving
# overhead), which the recorded host_logical_cpus makes explicit.
cat > BENCH_experiments.json <<EOF
{
  "benchmark": "experiments suite (Small corpus subset: ${count}x, all registered figures and tables)",
  "serial_ns_per_op": $serial,
  "parallel_workers": 4,
  "parallel_ns_per_op": $parallel,
  "speedup": $speedup,
  "serial_path_bare_ns_per_op": $ov_bare,
  "serial_path_prefetch_ns_per_op": $ov_prefetch,
  "serial_path_overhead_pct": $overhead,
  "host_logical_cpus": $cpus
}
EOF

echo "==> BENCH_experiments.json (speedup ${speedup}x at 4 workers on ${cpus} CPUs, serial-path overhead ${overhead}%)"

echo "==> go test -bench 'BenchmarkLRUAccess|BenchmarkBelady' ./internal/cachesim"
simout=$(go test -run='^$' -bench='^(BenchmarkLRUAccess|BenchmarkBelady)$' \
	-benchmem -timeout 30m ./internal/cachesim)
echo "$simout"

# go test -benchmem rows: name iters ns/op B/op allocs/op.
lru_fast=$(echo "$simout" | awk '$1 ~ /^BenchmarkLRUAccess\/fast/ {print $3}')
lru_fast_allocs=$(echo "$simout" | awk '$1 ~ /^BenchmarkLRUAccess\/fast/ {print $7}')
lru_ref=$(echo "$simout" | awk '$1 ~ /^BenchmarkLRUAccess\/reference/ {print $3}')
bel_fast=$(echo "$simout" | awk '$1 ~ /^BenchmarkBelady\/fast/ {print $3}')
bel_fast_bytes=$(echo "$simout" | awk '$1 ~ /^BenchmarkBelady\/fast/ {print $5}')
bel_ref=$(echo "$simout" | awk '$1 ~ /^BenchmarkBelady\/reference/ {print $3}')
bel_ref_bytes=$(echo "$simout" | awk '$1 ~ /^BenchmarkBelady\/reference/ {print $5}')
if [ -z "$lru_fast" ] || [ -z "$lru_ref" ] || [ -z "$bel_fast" ] || [ -z "$bel_ref" ]; then
	echo "bench.sh: could not parse cachesim benchmark output" >&2
	exit 1
fi
lru_speedup=$(awk "BEGIN{printf \"%.2f\", $lru_ref/$lru_fast}")
bel_speedup=$(awk "BEGIN{printf \"%.2f\", $bel_ref/$bel_fast}")

cat > BENCH_cachesim.json <<EOF
{
  "benchmark": "cache simulator fast path vs reference (32KB 16-way L2, mixed Zipf+streaming trace)",
  "lru_access_fast_ns_per_op": $lru_fast,
  "lru_access_fast_allocs_per_op": $lru_fast_allocs,
  "lru_access_reference_ns_per_op": $lru_ref,
  "lru_access_speedup": $lru_speedup,
  "belady_fast_ns_per_op": $bel_fast,
  "belady_fast_bytes_per_op": $bel_fast_bytes,
  "belady_reference_ns_per_op": $bel_ref,
  "belady_reference_bytes_per_op": $bel_ref_bytes,
  "belady_speedup": $bel_speedup,
  "host_logical_cpus": $cpus
}
EOF

echo "==> BENCH_cachesim.json (LRU ${lru_speedup}x, Belady ${bel_speedup}x vs reference)"

echo "==> go test -bench BenchmarkFeatures ./internal/advisor"
advout=$(go test -run='^$' -bench='^BenchmarkFeatures$' \
	-benchmem -timeout 30m ./internal/advisor)
echo "$advout"

feat_ns=$(echo "$advout" | awk '$1 ~ /^BenchmarkFeatures/ {print $3}')
feat_bytes=$(echo "$advout" | awk '$1 ~ /^BenchmarkFeatures/ {print $5}')
feat_allocs=$(echo "$advout" | awk '$1 ~ /^BenchmarkFeatures/ {print $7}')
if [ -z "$feat_ns" ]; then
	echo "bench.sh: could not parse advisor benchmark output" >&2
	exit 1
fi

cat > BENCH_advisor.json <<EOF
{
  "benchmark": "advisor feature extraction (RMAT 2^14 nodes, avg degree 16)",
  "features_ns_per_op": $feat_ns,
  "features_bytes_per_op": $feat_bytes,
  "features_allocs_per_op": $feat_allocs,
  "host_logical_cpus": $cpus
}
EOF

echo "==> BENCH_advisor.json (feature extraction ${feat_ns} ns/op)"

echo "==> go test -bench BenchmarkSpGEMM ./internal/kernels"
spout=$(go test -run='^$' -bench='^BenchmarkSpGEMM$' \
	-benchmem -timeout 30m ./internal/kernels)
echo "$spout"

# Rows: BenchmarkSpGEMM/<mode>[-<procs>] iters N ns/op N ns/flop N B/op
# N allocs/op (the -procs suffix is omitted at GOMAXPROCS=1). Pick values
# by their unit token so metric order changes can't silently shift a
# column.
spgemm_metric() {
	echo "$spout" | awk -v mode="$1" -v unit="$2" \
		'$1 ~ "^BenchmarkSpGEMM/" mode "(-[0-9]+)?$" { for (i = 2; i <= NF; i++) if ($i == unit) print $(i-1) }'
}
spgemm_rows=""
for mode in dense merge cluster; do
	ns=$(spgemm_metric "$mode" "ns/op")
	nsflop=$(spgemm_metric "$mode" "ns/flop")
	allocs=$(spgemm_metric "$mode" "allocs/op")
	if [ -z "$ns" ] || [ -z "$nsflop" ] || [ -z "$allocs" ]; then
		echo "bench.sh: could not parse SpGEMM benchmark output for mode $mode" >&2
		exit 1
	fi
	spgemm_rows="$spgemm_rows    {\"mode\": \"$mode\", \"ns_per_op\": $ns, \"ns_per_flop\": $nsflop, \"allocs_per_op\": $allocs},
"
done
spgemm_rows=$(printf '%s' "$spgemm_rows" | sed '$ s/,$//')

cat > BENCH_spgemm.json <<EOF
{
  "benchmark": "SpGEMM C = A.A (symmetric random graph, 4096 nodes, avg degree 16) per execution mode",
  "modes": [
$spgemm_rows
  ],
  "host_logical_cpus": $cpus
}
EOF

echo "==> BENCH_spgemm.json ($(echo "$spgemm_rows" | wc -l | tr -d ' ') execution-mode rows)"

echo "==> go test -bench BenchmarkReorder ./internal/reorder"
rout=$(go test -run='^$' -bench='^BenchmarkReorder$' \
	-timeout 30m ./internal/reorder)
echo "$rout"

# Rows: BenchmarkReorder/<TECH>/w=<N>-<procs> iters ns/op "ns/op" ns/nnz
# "ns/nnz". Emit one JSON entry per technique × worker count; on a
# single-CPU host only w=1 exists (the benchmark dedups 1 and NumCPU).
reorder_rows=$(echo "$rout" | awk '$1 ~ /^BenchmarkReorder\// && $6 == "ns/nnz" {
	split($1, parts, "/");
	tech = parts[2];
	w = parts[3]; sub(/-[0-9]+$/, "", w); sub(/^w=/, "", w);
	printf "    {\"technique\": \"%s\", \"workers\": %s, \"ns_per_op\": %s, \"ns_per_nnz\": %s},\n", tech, w, $3, $5
}')
if [ -z "$reorder_rows" ]; then
	echo "bench.sh: could not parse reorder benchmark output" >&2
	exit 1
fi
reorder_rows=$(printf '%s' "$reorder_rows" | sed '$ s/,$//')

cat > BENCH_reorder.json <<EOF
{
  "benchmark": "reordering preprocessing cost (planted partition, 16384 nodes, avg degree 16) at workers=1 and workers=NumCPU",
  "techniques": [
$reorder_rows
  ],
  "host_logical_cpus": $cpus
}
EOF

echo "==> BENCH_reorder.json ($(echo "$reorder_rows" | wc -l | tr -d ' ') technique/worker rows)"

echo "==> go test -bench BenchmarkMultiDev ./internal/multidev"
mdout=$(go test -run='^$' -bench='^BenchmarkMultiDev$' \
	-timeout 30m ./internal/multidev)
echo "$mdout"

# Rows: BenchmarkMultiDev/<sub>[-<procs>] iters N ns/op N ns/access; pick
# ns/access by its unit token like the SpGEMM parser does.
md_metric() {
	echo "$mdout" | awk -v sub_="$1" \
		'$1 ~ "^BenchmarkMultiDev/" sub_ "(-[0-9]+)?$" { for (i = 2; i <= NF; i++) if ($i == "ns/access") print $(i-1) }'
}
md_flat=$(md_metric flat)
md_k4=$(md_metric "devices-4")
md_k16=$(md_metric "devices-16")
if [ -z "$md_flat" ] || [ -z "$md_k4" ] || [ -z "$md_k16" ]; then
	echo "bench.sh: could not parse multidev benchmark output" >&2
	exit 1
fi
md_k4_ratio=$(awk "BEGIN{printf \"%.2f\", $md_k4/$md_flat}")
md_k16_ratio=$(awk "BEGIN{printf \"%.2f\", $md_k16/$md_flat}")

cat > BENCH_multidev.json <<EOF
{
  "benchmark": "multi-device simulation cost vs flat L2 (SpMV, planted partition, 16384 nodes, avg degree 16, 512KB L2)",
  "flat_ns_per_access": $md_flat,
  "devices_4_ns_per_access": $md_k4,
  "devices_4_vs_flat": $md_k4_ratio,
  "devices_16_ns_per_access": $md_k16,
  "devices_16_vs_flat": $md_k16_ratio,
  "host_logical_cpus": $cpus
}
EOF

echo "==> BENCH_multidev.json (K=4 ${md_k4_ratio}x, K=16 ${md_k16_ratio}x flat per-access cost)"

echo "==> cmd/loadgen serving benchmark (async job API, 1-peer vs 3-peer ring)"
go run ./cmd/loadgen -peers 1,3 -requests 96 -clients 4 -matrices 8 \
	-nodes 256 -check -out BENCH_serve.json
echo "==> BENCH_serve.json (latency/hit-ratio/forwarding curves + binary-vs-MM wire comparison)"
