#!/bin/sh
# Pre-merge gate: build, vet, repo-specific lint, tests (with race
# detector and with assertions enabled), and short fuzz smokes.
# Run from the repository root: ./scripts/check.sh
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/lint ./..."
go run ./cmd/lint ./...

echo "==> hotalloc escape gate (//repro:noalloc kernels and simulator fast paths)"
go run ./cmd/lint -run hotalloc ./internal/kernels ./internal/cachesim

# The experiment smoke sweeps every registered technique through Table IV
# and the multi-device identity matrix; under -race on a small host that
# legitimately exceeds go test's default 600s per-package timeout, so give
# the hang detector explicit headroom. (The heaviest golden, the multidev
# registry sweep, skips itself under -race — see golden_test.go — and is
# gated by the non-race TestGolden step below.)
echo "==> go test -race ./..."
go test -race -timeout 2700s ./...

echo "==> go test -tags check ./internal/..."
go test -tags check -timeout 1800s ./internal/...

echo "==> worker-count determinism matrix under -race (parallel reordering tier)"
go test -race -run 'TestWorkerCountDeterminismMatrix' -count=1 ./internal/reorder

echo "==> registry coverage gate: every registered technique has Table IV rows"
go test -run 'TestTableIVCoversRegistry' -count=1 ./internal/experiments

echo "==> golden-file regression (serial and parallel must match the goldens)"
go test -run 'TestGolden' -count=1 ./internal/experiments

echo "==> simulator differential: fast vs reference, full corpus x all kernels"
go test -run 'TestDifferential|TestRunnerImplReference' -count=1 ./internal/experiments

echo "==> multi-device differential: K=1 bit-identical to the flat L2 path"
go test -run 'TestMultiDevFlatIdentity|TestOwnedMatchesUnowned' -count=1 ./internal/experiments ./internal/trace

echo "==> SpGEMM differential gate: all execution modes vs the dense int64 oracle"
go test -run 'TestSpGEMMDifferentialOracle|TestSpGEMMRelabelingInvariance|TestSpGEMMStrategiesBitIdentical' -count=1 ./internal/kernels

echo "==> parallel suite smoke: cmd/experiments -workers=4"
go run ./cmd/experiments -corpus small -matrices soc-tight-2,er-deg16 -workers 4 -run fig2,obs,table3 >/dev/null

echo "==> cachesim multi-device CLI smoke (-devices 4, community split)"
tmpmtx=$(mktemp -d)
go run ./cmd/mtxgen -out "$tmpmtx" -matrices er-deg16 >/dev/null
go run ./cmd/cachesim -in "$tmpmtx/er-deg16.mtx" -devices 4 -partition community -techniques RANDOM,RABBIT >/dev/null
rm -rf "$tmpmtx"

echo "==> lint: internal/serve + internal/sparse (contract surface must be suppression-free)"
go run ./cmd/lint ./internal/serve ./internal/sparse

echo "==> reorderd service smoke (in-process HTTP round trip, sync + async job API)"
go run ./cmd/reorderd -smoke

echo "==> binary CSR wire-format gate (golden bytes, round trips, truncation corpus)"
go test -race -run 'TestBinaryCSR' -count=1 ./internal/sparse

echo "==> async job + ring gates under -race (lifecycle, long-poll, store hit, 3-peer forwarding determinism)"
go test -race -run 'TestJob|TestRing|TestThreePeerForwardingDeterminism|TestReorderBinaryUpload' -count=1 ./internal/serve

echo "==> loadgen smoke: 1-peer and 3-peer in-process rings (asserts store hits + cross-peer forwards)"
go run ./cmd/loadgen -peers 1,3 -requests 32 -clients 4 -matrices 6 -nodes 128 -check >/dev/null

echo "==> fuzz smoke: FuzzValidCSR / FuzzValidPermutation (internal/check)"
go test -run=NONE -fuzz=FuzzValidCSR -fuzztime=5s ./internal/check
go test -run=NONE -fuzz=FuzzValidPermutation -fuzztime=5s ./internal/check

echo "==> fuzz smoke: FuzzRabbitRoundTrip (internal/core)"
go test -run=NONE -fuzz=FuzzRabbitRoundTrip -fuzztime=5s ./internal/core

echo "==> fuzz smoke: FuzzReorderHandler (internal/serve)"
go test -run=NONE -fuzz=FuzzReorderHandler -fuzztime=5s ./internal/serve

echo "==> fuzz smoke: FuzzBinaryCSRRoundTrip (internal/sparse wire format)"
go test -run=NONE -fuzz=FuzzBinaryCSRRoundTrip -fuzztime=5s ./internal/sparse

echo "==> fuzz smoke: FuzzBobaValidPermutation / FuzzRCMPPValidPermutation (internal/reorder)"
go test -run=NONE -fuzz=FuzzBobaValidPermutation -fuzztime=5s ./internal/reorder
go test -run=NONE -fuzz=FuzzRCMPPValidPermutation -fuzztime=5s ./internal/reorder

echo "==> fuzz smoke: FuzzSpGEMMValidCSR (internal/kernels)"
go test -run=NONE -fuzz=FuzzSpGEMMValidCSR -fuzztime=5s ./internal/kernels

echo "==> fuzz smoke: FuzzLRUFastVsReference (internal/cachesim differential)"
go test -run=NONE -fuzz=FuzzLRUFastVsReference -fuzztime=5s ./internal/cachesim

echo "==> fuzz smoke: FuzzPartition (internal/partition label + permutation invariants)"
go test -run=NONE -fuzz=FuzzPartition -fuzztime=5s ./internal/partition

echo "==> fuzz smoke: FuzzFeatures (internal/advisor)"
go test -run=NONE -fuzz=FuzzFeatures -fuzztime=5s ./internal/advisor

echo "==> advisor eval smoke (committed model on the test subset)"
go run ./cmd/advisor eval -corpus small -matrices soc-tight-2,cfd-2d-5pt,pld-arc-like,er-deg16,mawi-like,wiki-talk-like >/dev/null

echo "All checks passed."
