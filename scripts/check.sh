#!/bin/sh
# Pre-merge gate: build, vet, repo-specific lint, tests (with race
# detector and with assertions enabled), and short fuzz smokes.
# Run from the repository root: ./scripts/check.sh
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/lint ./..."
go run ./cmd/lint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -tags check ./internal/..."
go test -tags check ./internal/...

echo "==> fuzz smoke: FuzzValidCSR / FuzzValidPermutation (internal/check)"
go test -run=NONE -fuzz=FuzzValidCSR -fuzztime=5s ./internal/check
go test -run=NONE -fuzz=FuzzValidPermutation -fuzztime=5s ./internal/check

echo "==> fuzz smoke: FuzzRabbitRoundTrip (internal/core)"
go test -run=NONE -fuzz=FuzzRabbitRoundTrip -fuzztime=5s ./internal/core

echo "All checks passed."
