package gen

import (
	"testing"

	"repro/internal/quality"
)

func TestBarabasiAlbertProperties(t *testing.T) {
	m := BarabasiAlbert{Nodes: 4000, M: 4}.Generate(1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsPatternSymmetric() {
		t.Fatal("BA graph must be symmetric")
	}
	// Preferential attachment yields strong degree skew: top 10% of rows
	// hold far more than 10% of nonzeros.
	if skew := quality.DegreeSkew(m); skew < 0.25 {
		t.Fatalf("BA skew = %.3f, want heavy tail", skew)
	}
	// Average degree ~2M.
	if avg := m.AverageDegree(); avg < 5 || avg > 11 {
		t.Fatalf("BA average degree = %.1f, want near 2M = 8", avg)
	}
	if !m.Equal(BarabasiAlbert{Nodes: 4000, M: 4}.Generate(1)) {
		t.Fatal("BA generator not deterministic")
	}
}

func TestBarabasiAlbertTinyGraphs(t *testing.T) {
	for _, n := range []int32{1, 2, 3, 5} {
		m := BarabasiAlbert{Nodes: n, M: 3}.Generate(2)
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestForestFireProperties(t *testing.T) {
	m := ForestFire{Nodes: 3000, BurnProb: 0.35}.Generate(3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsPatternSymmetric() {
		t.Fatal("forest-fire graph must be symmetric")
	}
	if m.NNZ() < int(m.NumRows) {
		t.Fatalf("forest fire produced only %d nonzeros for %d nodes", m.NNZ(), m.NumRows)
	}
	if !m.Equal(ForestFire{Nodes: 3000, BurnProb: 0.35}.Generate(3)) {
		t.Fatal("forest-fire generator not deterministic")
	}
}

func TestForestFireBurnProbDensifies(t *testing.T) {
	lo := ForestFire{Nodes: 2000, BurnProb: 0.15}.Generate(4)
	hi := ForestFire{Nodes: 2000, BurnProb: 0.5}.Generate(4)
	if hi.NNZ() <= lo.NNZ() {
		t.Fatalf("higher burn probability should densify: %d vs %d nonzeros", hi.NNZ(), lo.NNZ())
	}
}

func TestForestFireDefaultBurnProb(t *testing.T) {
	m := ForestFire{Nodes: 500}.Generate(5) // BurnProb 0 -> default
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() == 0 {
		t.Fatal("default burn probability produced an empty graph")
	}
}
