package gen

import (
	"repro/internal/check"
	"repro/internal/sparse"
)

// Generators in this file all produce square matrices. Unless noted
// otherwise the output pattern is symmetric (the matrix is an undirected
// graph), values are pseudo-random in (0.1, 1.1], and self-loops are
// avoided. Each generator is deterministic in (params, seed).

func value(r *RNG) float32 { return r.Float32() + 0.1 }

// PlantedPartition generates a graph with k planted communities and a
// tunable mixing parameter mu: each endpoint of an edge escapes its
// community with probability mu. Community sizes follow a mild power law so
// the corpus contains both balanced and unbalanced community structure.
// Low mu yields high insularity; high mu approaches an unstructured graph.
type PlantedPartition struct {
	Nodes       int32
	Communities int32
	AvgDegree   int32
	Mu          float64 // inter-community edge probability per endpoint
	SizeSkew    float64 // Zipf exponent over community sizes; 0 = balanced
}

// Generate builds the matrix. Node IDs are scrambled so the raw ordering
// carries no community information (the corpus curator decides whether to
// present a "publisher reordered" variant).
func (g PlantedPartition) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n, k := g.Nodes, g.Communities
	// Assign nodes to communities.
	commOf := make([]int32, n)
	members := make([][]int32, k)
	if g.SizeSkew <= 0 {
		for i := int32(0); i < n; i++ {
			c := i % k
			commOf[i] = c
		}
	} else {
		for i := int32(0); i < n; i++ {
			c := r.Zipf(k, g.SizeSkew)
			commOf[i] = c
		}
	}
	for i := int32(0); i < n; i++ {
		members[commOf[i]] = append(members[commOf[i]], i)
	}
	coo := sparse.NewCOO(n, n, int(n)*int(g.AvgDegree))
	half := int64(n) * int64(g.AvgDegree) / 2
	for e := int64(0); e < half; e++ {
		u := r.Intn(n)
		var v int32
		if r.Float64() >= g.Mu && len(members[commOf[u]]) > 1 {
			m := members[commOf[u]]
			v = m[r.Intn(check.SafeInt32(len(m)))]
		} else {
			v = r.Intn(n)
		}
		if u == v {
			continue
		}
		coo.AddSym(u, v, value(r))
	}
	return scramble(coo.ToCSR(), r)
}

// Hierarchical generates a graph with nested community structure, the
// regime RABBIT was designed for (Section V-A): tightly knit inner
// communities inside looser outer ones. The node ID space is split into a
// balanced tree of Levels levels with Fanout children each; an edge's
// endpoint is drawn by walking down the tree and escaping to a sibling
// subtree with probability Escape at each level.
type Hierarchical struct {
	Nodes     int32
	Levels    int
	Fanout    int32
	AvgDegree int32
	Escape    float64
}

// Generate builds the matrix with scrambled IDs.
func (g Hierarchical) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Nodes
	coo := sparse.NewCOO(n, n, int(n)*int(g.AvgDegree))
	half := int64(n) * int64(g.AvgDegree) / 2
	for e := int64(0); e < half; e++ {
		u := r.Intn(n)
		// Walk down the implicit tree around u.
		lo, hi := int32(0), n
		for l := 0; l < g.Levels && hi-lo > g.Fanout; l++ {
			if r.Float64() < g.Escape {
				break
			}
			span := (hi - lo + g.Fanout - 1) / g.Fanout
			child := (u - lo) / span
			lo = lo + child*span
			if lo+span < hi {
				hi = lo + span
			}
		}
		v := lo + r.Intn(hi-lo)
		if u == v {
			continue
		}
		coo.AddSym(u, v, value(r))
	}
	return scramble(coo.ToCSR(), r)
}

// RMAT generates a recursive-matrix (Kronecker-like) power-law graph, the
// standard model for social-network and web-graph degree skew. A, B, C are
// the quadrant probabilities (D = 1-A-B-C). Larger A concentrates edges on
// low IDs, producing hub vertices.
type RMAT struct {
	LogNodes  int   // number of nodes = 1 << LogNodes
	AvgDegree int32 // expected nonzeros per row
	A, B, C   float64
	Symmetric bool
}

// Generate builds the matrix with scrambled IDs so RANDOM/ORIGINAL differ
// only by the curator's choice.
func (g RMAT) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := int32(1) << g.LogNodes
	edges := int64(n) * int64(g.AvgDegree)
	if g.Symmetric {
		edges /= 2
	}
	coo := sparse.NewCOO(n, n, int(edges))
	for e := int64(0); e < edges; e++ {
		var u, v int32
		for bit := g.LogNodes - 1; bit >= 0; bit-- {
			p := r.Float64()
			switch {
			case p < g.A:
				// both high bits zero
			case p < g.A+g.B:
				v |= 1 << uint(bit)
			case p < g.A+g.B+g.C:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u == v {
			continue
		}
		if g.Symmetric {
			coo.AddSym(u, v, value(r))
		} else {
			coo.Add(u, v, value(r))
		}
	}
	return scramble(coo.ToCSR(), r)
}

// Mesh2D generates a 2-dimensional grid with a 5-point (or 9-point) stencil,
// the structure of discretized PDE and CFD matrices. The natural row-major
// ordering already has excellent locality, which is exactly how such
// matrices arrive from mesh generators.
type Mesh2D struct {
	Width, Height int32
	NinePoint     bool
}

// Generate builds the matrix in natural row-major node order.
func (g Mesh2D) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Width * g.Height
	deg := 5
	if g.NinePoint {
		deg = 9
	}
	coo := sparse.NewCOO(n, n, int(n)*deg)
	id := func(x, y int32) int32 { return y*g.Width + x }
	for y := int32(0); y < g.Height; y++ {
		for x := int32(0); x < g.Width; x++ {
			u := id(x, y)
			coo.Add(u, u, value(r))
			if x+1 < g.Width {
				coo.AddSym(u, id(x+1, y), value(r))
			}
			if y+1 < g.Height {
				coo.AddSym(u, id(x, y+1), value(r))
			}
			if g.NinePoint {
				if x+1 < g.Width && y+1 < g.Height {
					coo.AddSym(u, id(x+1, y+1), value(r))
				}
				if x > 0 && y+1 < g.Height {
					coo.AddSym(u, id(x-1, y+1), value(r))
				}
			}
		}
	}
	return coo.ToCSR()
}

// Mesh3D generates a 3-dimensional grid with a 7-point stencil
// (electromagnetics / DNA-electrophoresis style problems).
type Mesh3D struct {
	X, Y, Z int32
}

// Generate builds the matrix in natural lexicographic node order.
func (g Mesh3D) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.X * g.Y * g.Z
	coo := sparse.NewCOO(n, n, int(n)*7)
	id := func(x, y, z int32) int32 { return (z*g.Y+y)*g.X + x }
	for z := int32(0); z < g.Z; z++ {
		for y := int32(0); y < g.Y; y++ {
			for x := int32(0); x < g.X; x++ {
				u := id(x, y, z)
				coo.Add(u, u, value(r))
				if x+1 < g.X {
					coo.AddSym(u, id(x+1, y, z), value(r))
				}
				if y+1 < g.Y {
					coo.AddSym(u, id(x, y+1, z), value(r))
				}
				if z+1 < g.Z {
					coo.AddSym(u, id(x, y, z+1), value(r))
				}
			}
		}
	}
	return coo.ToCSR()
}

// RoadGrid generates a road-network-like graph: a sparse 2D grid where a
// fraction of the lattice edges are deleted and a few long-range shortcuts
// (highways) are added. Average degree stays very low (~2-3), matching
// road matrices in the paper's corpus.
type RoadGrid struct {
	Width, Height int32
	DropProb      float64 // probability a lattice edge is removed
	Shortcuts     int32   // number of random long-range edges
}

// Generate builds the matrix in natural order with scrambling left to the
// curator; real road networks are published in quasi-geographic order, so
// the natural order is retained.
func (g RoadGrid) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Width * g.Height
	coo := sparse.NewCOO(n, n, int(n)*3)
	id := func(x, y int32) int32 { return y*g.Width + x }
	for y := int32(0); y < g.Height; y++ {
		for x := int32(0); x < g.Width; x++ {
			u := id(x, y)
			if x+1 < g.Width && r.Float64() >= g.DropProb {
				coo.AddSym(u, id(x+1, y), value(r))
			}
			if y+1 < g.Height && r.Float64() >= g.DropProb {
				coo.AddSym(u, id(x, y+1), value(r))
			}
		}
	}
	for s := int32(0); s < g.Shortcuts; s++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			coo.AddSym(u, v, value(r))
		}
	}
	return coo.ToCSR()
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// node connects to K nearest neighbors and each edge is rewired to a random
// target with probability Beta.
type WattsStrogatz struct {
	Nodes int32
	K     int32 // neighbors per side on the ring
	Beta  float64
}

// Generate builds the matrix in ring order.
func (g WattsStrogatz) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Nodes
	coo := sparse.NewCOO(n, n, int(n)*int(g.K)*2)
	for u := int32(0); u < n; u++ {
		for j := int32(1); j <= g.K; j++ {
			v := (u + j) % n
			if r.Float64() < g.Beta {
				v = r.Intn(n)
			}
			if u != v {
				coo.AddSym(u, v, value(r))
			}
		}
	}
	return coo.ToCSR()
}

// ErdosRenyi generates a uniformly random graph with no structure at all —
// the control case where no reordering technique can help.
type ErdosRenyi struct {
	Nodes     int32
	AvgDegree int32
}

// Generate builds the matrix.
func (g ErdosRenyi) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Nodes
	half := int64(n) * int64(g.AvgDegree) / 2
	coo := sparse.NewCOO(n, n, int(half)*2)
	for e := int64(0); e < half; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			coo.AddSym(u, v, value(r))
		}
	}
	return coo.ToCSR()
}

// Banded generates a banded matrix with optional random fill outside the
// band — the shape of circuit-simulation and nonlinear-optimization
// matrices.
type Banded struct {
	Nodes     int32
	Band      int32   // half bandwidth
	Density   float64 // probability of each in-band entry
	OffBand   int32   // random entries outside the band
	Symmetric bool
}

// Generate builds the matrix in natural order.
func (g Banded) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Nodes
	coo := sparse.NewCOO(n, n, int(float64(n)*float64(g.Band)*g.Density))
	for u := int32(0); u < n; u++ {
		coo.Add(u, u, value(r))
		for d := int32(1); d <= g.Band; d++ {
			if u+d < n && r.Float64() < g.Density {
				if g.Symmetric {
					coo.AddSym(u, u+d, value(r))
				} else {
					coo.Add(u, u+d, value(r))
				}
			}
		}
	}
	for s := int32(0); s < g.OffBand; s++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			coo.AddSym(u, v, value(r))
		}
	}
	return coo.ToCSR()
}

// KmerChain generates a protein-k-mer-like graph: many long chains (paths)
// with occasional branches, yielding a very low average degree and strong
// but trivially linear community structure.
type KmerChain struct {
	Nodes      int32
	ChainLen   int32
	BranchProb float64
}

// Generate builds the matrix with scrambled IDs (k-mer datasets arrive in
// hash order, which destroys chain locality).
func (g KmerChain) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Nodes
	coo := sparse.NewCOO(n, n, int(n)*2)
	for start := int32(0); start < n; start += g.ChainLen {
		end := start + g.ChainLen
		if end > n {
			end = n
		}
		for u := start; u+1 < end; u++ {
			coo.AddSym(u, u+1, value(r))
			if r.Float64() < g.BranchProb {
				v := start + r.Intn(end-start)
				if v != u {
					coo.AddSym(u, v, value(r))
				}
			}
		}
	}
	return scramble(coo.ToCSR(), r)
}

// HubStar generates a "mawi-like" matrix: a handful of gigantic hubs
// connected to nearly every node, plus a sparse random background. Its
// community structure degenerates — community detection merges almost the
// whole graph into one community, so insularity is high while locality
// benefit is nil. This reproduces the paper's mawi anomaly (Section V-B).
type HubStar struct {
	Nodes      int32
	Hubs       int32
	HubConn    float64 // fraction of nodes each hub connects to
	Background int32   // random background edges
}

// Generate builds the matrix with scrambled IDs.
func (g HubStar) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Nodes
	coo := sparse.NewCOO(n, n, int(float64(n)*g.HubConn*float64(g.Hubs)))
	for h := int32(0); h < g.Hubs; h++ {
		hub := r.Intn(n)
		for v := int32(0); v < n; v++ {
			if v != hub && r.Float64() < g.HubConn {
				coo.AddSym(hub, v, value(r))
			}
		}
	}
	for e := int32(0); e < g.Background; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			coo.AddSym(u, v, value(r))
		}
	}
	return scramble(coo.ToCSR(), r)
}

// EmptyRowHeavy generates a "wiki-Talk-like" directed matrix where only a
// small fraction of rows have out-edges (most users never write) while
// in-edges follow a power law. The paper's footnote 2 uses wiki-Talk to
// show the analytic ideal-traffic formula overestimates when most rows are
// empty, letting measured traffic drop below "ideal".
type EmptyRowHeavy struct {
	Nodes      int32
	ActiveFrac float64 // fraction of rows with out-edges
	AvgDegree  int32   // average out-degree of active rows
	TargetSkew float64 // Zipf exponent over targets
}

// Generate builds the (asymmetric) matrix with scrambled IDs.
func (g EmptyRowHeavy) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Nodes
	active := int32(float64(n) * g.ActiveFrac)
	if active < 1 {
		active = 1
	}
	coo := sparse.NewCOO(n, n, int(active)*int(g.AvgDegree))
	actors := r.Perm(n)[:active]
	for _, u := range actors {
		deg := 1 + r.Intn(2*g.AvgDegree)
		for d := int32(0); d < deg; d++ {
			v := r.Zipf(n, g.TargetSkew)
			if v != u {
				coo.Add(u, v, value(r))
			}
		}
	}
	return scramble(coo.ToCSR(), r)
}

// HubbyCommunities overlays planted community structure with power-law hub
// vertices — the "pld-arc-like" hyperlink regime where community structure
// exists but hubs depress insularity. This family is where RABBIT++'s
// insular/hub grouping earns its keep.
type HubbyCommunities struct {
	Nodes       int32
	Communities int32
	AvgDegree   int32
	Mu          float64
	Hubs        int32
	HubDegree   int32
}

// Generate builds the matrix with scrambled IDs.
func (g HubbyCommunities) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Nodes
	commOf := make([]int32, n)
	members := make([][]int32, g.Communities)
	for i := int32(0); i < n; i++ {
		c := i % g.Communities
		commOf[i] = c
		members[c] = append(members[c], i)
	}
	coo := sparse.NewCOO(n, n, int(n)*int(g.AvgDegree)+int(g.Hubs)*int(g.HubDegree))
	half := int64(n) * int64(g.AvgDegree) / 2
	for e := int64(0); e < half; e++ {
		u := r.Intn(n)
		var v int32
		if r.Float64() >= g.Mu {
			m := members[commOf[u]]
			v = m[r.Intn(check.SafeInt32(len(m)))]
		} else {
			v = r.Intn(n)
		}
		if u != v {
			coo.AddSym(u, v, value(r))
		}
	}
	for h := int32(0); h < g.Hubs; h++ {
		hub := r.Intn(n)
		for d := int32(0); d < g.HubDegree; d++ {
			v := r.Intn(n)
			if v != hub {
				coo.AddSym(hub, v, value(r))
			}
		}
	}
	return scramble(coo.ToCSR(), r)
}

// scramble applies a random symmetric permutation so the emitted ID order
// carries no information about how the matrix was generated. Matrices from
// social-network and crawl sources arrive in effectively arbitrary order;
// the corpus curator layers "publisher ordering" choices on top.
func scramble(m *sparse.CSR, r *RNG) *sparse.CSR {
	return m.PermuteSymmetric(sparse.Permutation(r.Perm(m.NumRows)))
}
