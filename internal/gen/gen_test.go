package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/quality"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d identical draws of 1000", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const buckets = 16
	counts := make([]int, buckets)
	const draws = 160000
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d has %d draws, want about %d", b, c, want)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsValid(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(500)
	seen := make([]bool, 500)
	for _, v := range p {
		if v < 0 || v >= 500 || seen[v] {
			t.Fatalf("Perm produced invalid permutation at value %d", v)
		}
		seen[v] = true
	}
}

func TestZipfSkewsLow(t *testing.T) {
	r := NewRNG(11)
	const n = 1000
	var lowHalf, draws int
	for i := 0; i < 20000; i++ {
		v := r.Zipf(n, 1.0)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		if v < n/2 {
			lowHalf++
		}
		draws++
	}
	if frac := float64(lowHalf) / float64(draws); frac < 0.80 {
		t.Fatalf("Zipf(s=1) put only %.2f of mass in the low half; expected heavy skew", frac)
	}
}

func TestGeneratorsProduceValidMatrices(t *testing.T) {
	gens := map[string]Generator{
		"planted":   PlantedPartition{Nodes: 2000, Communities: 20, AvgDegree: 8, Mu: 0.2},
		"plantedZ":  PlantedPartition{Nodes: 2000, Communities: 20, AvgDegree: 8, Mu: 0.2, SizeSkew: 1.2},
		"hier":      Hierarchical{Nodes: 2048, Levels: 4, Fanout: 4, AvgDegree: 8, Escape: 0.2},
		"rmat":      RMAT{LogNodes: 11, AvgDegree: 8, A: 0.55, B: 0.18, C: 0.18, Symmetric: true},
		"rmatAsym":  RMAT{LogNodes: 11, AvgDegree: 8, A: 0.55, B: 0.18, C: 0.18},
		"mesh2":     Mesh2D{Width: 45, Height: 45},
		"mesh2x9":   Mesh2D{Width: 45, Height: 45, NinePoint: true},
		"mesh3":     Mesh3D{X: 13, Y: 13, Z: 13},
		"road":      RoadGrid{Width: 50, Height: 40, DropProb: 0.25, Shortcuts: 20},
		"ws":        WattsStrogatz{Nodes: 2000, K: 4, Beta: 0.1},
		"er":        ErdosRenyi{Nodes: 2000, AvgDegree: 8},
		"banded":    Banded{Nodes: 2000, Band: 8, Density: 0.5, OffBand: 50, Symmetric: true},
		"kmer":      KmerChain{Nodes: 2000, ChainLen: 100, BranchProb: 0.1},
		"hubstar":   HubStar{Nodes: 2000, Hubs: 2, HubConn: 0.3, Background: 200},
		"emptyrows": EmptyRowHeavy{Nodes: 2000, ActiveFrac: 0.1, AvgDegree: 15, TargetSkew: 1.1},
		"hubby":     HubbyCommunities{Nodes: 2000, Communities: 20, AvgDegree: 8, Mu: 0.2, Hubs: 30, HubDegree: 40},
	}
	for name, g := range gens {
		t.Run(name, func(t *testing.T) {
			m := g.Generate(1)
			if err := m.Validate(); err != nil {
				t.Fatalf("invalid matrix: %v", err)
			}
			if !m.IsSquare() {
				t.Fatalf("matrix is %dx%d, want square", m.NumRows, m.NumCols)
			}
			if m.NNZ() == 0 {
				t.Fatal("generator produced an empty matrix")
			}
			// Determinism: same seed, same matrix.
			if !m.Equal(g.Generate(1)) {
				t.Fatal("generator is not deterministic in its seed")
			}
		})
	}
}

func TestSymmetricGeneratorsAreSymmetric(t *testing.T) {
	gens := map[string]Generator{
		"planted": PlantedPartition{Nodes: 1000, Communities: 10, AvgDegree: 6, Mu: 0.3},
		"mesh2":   Mesh2D{Width: 30, Height: 30},
		"mesh3":   Mesh3D{X: 10, Y: 10, Z: 10},
		"ws":      WattsStrogatz{Nodes: 1000, K: 4, Beta: 0.1},
		"er":      ErdosRenyi{Nodes: 1000, AvgDegree: 6},
		"hubstar": HubStar{Nodes: 1000, Hubs: 2, HubConn: 0.2, Background: 100},
	}
	for name, g := range gens {
		t.Run(name, func(t *testing.T) {
			if !g.Generate(2).IsPatternSymmetric() {
				t.Fatal("expected a symmetric pattern")
			}
		})
	}
}

func TestEmptyRowHeavyHasManyEmptyRows(t *testing.T) {
	m := EmptyRowHeavy{Nodes: 5000, ActiveFrac: 0.07, AvgDegree: 20, TargetSkew: 1.2}.Generate(3)
	frac := float64(m.EmptyRows()) / float64(m.NumRows)
	if frac < 0.80 {
		t.Fatalf("only %.2f of rows are empty; wiki-Talk-like matrices need most rows empty", frac)
	}
}

func TestHubStarIsHubDominated(t *testing.T) {
	m := HubStar{Nodes: 4000, Hubs: 3, HubConn: 0.3, Background: 500}.Generate(4)
	// Symmetric storage mirrors each hub edge into a random row, so the hub
	// rows themselves hold about half of all nonzeros.
	if skew := quality.DegreeSkewFrac(m, 0.01); skew < 0.40 {
		t.Fatalf("top 1%% of rows hold only %.2f of nonzeros; hub-star must be hub dominated", skew)
	}
}

func TestRMATSkewGrowsWithA(t *testing.T) {
	lo := RMAT{LogNodes: 13, AvgDegree: 8, A: 0.30, B: 0.25, C: 0.25, Symmetric: true}.Generate(5)
	hi := RMAT{LogNodes: 13, AvgDegree: 8, A: 0.60, B: 0.17, C: 0.17, Symmetric: true}.Generate(5)
	if quality.DegreeSkew(lo) >= quality.DegreeSkew(hi) {
		t.Fatalf("skew(lo-A)=%.3f >= skew(hi-A)=%.3f; R-MAT skew should grow with A",
			quality.DegreeSkew(lo), quality.DegreeSkew(hi))
	}
}

func TestCorpusShape(t *testing.T) {
	c := Corpus()
	if len(c) != 50 {
		t.Fatalf("corpus has %d entries, want 50", len(c))
	}
	seen := map[string]bool{}
	families := map[string]int{}
	for _, e := range c {
		if seen[e.Name] {
			t.Fatalf("duplicate corpus name %q", e.Name)
		}
		seen[e.Name] = true
		families[e.Family]++
	}
	if len(families) < 8 {
		t.Fatalf("corpus spans only %d families; the selection process requires diversity", len(families))
	}
}

func TestCorpusSeedsDiffer(t *testing.T) {
	seeds := map[uint64]string{}
	for _, e := range Corpus() {
		if prev, dup := seeds[e.Seed]; dup {
			t.Fatalf("entries %q and %q share seed %d", prev, e.Name, e.Seed)
		}
		seeds[e.Seed] = e.Name
	}
}

func TestByName(t *testing.T) {
	e, err := ByName("mawi-like")
	if err != nil {
		t.Fatal(err)
	}
	if e.Family != "traffic" {
		t.Fatalf("mawi-like family = %q", e.Family)
	}
	if _, err := ByName("no-such-matrix"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestCorpusEntriesGenerateSmall(t *testing.T) {
	// Generating every entry at Small preset is the expensive integration
	// gate for the corpus: every matrix must be valid, square, nonempty,
	// and pass the Section III selection rule against the small-device L2.
	const smallL2 = 32 * 1024 / 4 // see gpumodel.SimDeviceSmall; rows*4B > 32KB
	for _, e := range Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			m := e.Generate(Small)
			if err := m.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if err := CheckSelection(m, smallL2*4); err != nil {
				t.Fatalf("selection rule: %v", err)
			}
			if m.NNZ() < 1000 {
				t.Fatalf("suspiciously sparse: %d nonzeros", m.NNZ())
			}
		})
	}
}

func TestCheckSelection(t *testing.T) {
	m := Mesh2D{Width: 10, Height: 10}.Generate(1)
	if err := CheckSelection(m, 32*1024); err == nil {
		t.Fatal("tiny matrix passed the footprint rule against a 32KB cache")
	}
	if err := CheckSelection(m, 100); err != nil {
		t.Fatalf("matrix with footprint 400B should pass against 100B cache: %v", err)
	}
}

func TestBFSOrderIsValidPermutation(t *testing.T) {
	m := ErdosRenyi{Nodes: 500, AvgDegree: 4}.Generate(8)
	p := bfsOrder(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIntRoots(t *testing.T) {
	cases := []struct{ n, sqrt, cbrt int32 }{
		{0, 0, 0}, {1, 1, 1}, {8, 2, 2}, {9, 3, 2}, {26, 5, 2}, {27, 5, 3}, {1000000, 1000, 100},
	}
	for _, tc := range cases {
		if got := isqrt(tc.n); got != tc.sqrt {
			t.Errorf("isqrt(%d) = %d, want %d", tc.n, got, tc.sqrt)
		}
		if got := icbrt(tc.n); got != tc.cbrt {
			t.Errorf("icbrt(%d) = %d, want %d", tc.n, got, tc.cbrt)
		}
	}
}
