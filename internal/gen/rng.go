// Package gen synthesizes sparse matrices with controlled structural
// properties and curates the 50-matrix evaluation corpus.
//
// The paper draws 50 real matrices from SuiteSparse, Konect, and Web Data
// Commons. Those datasets are not available here, so this package provides
// the closest synthetic equivalents: one generator per structural family the
// paper's corpus spans (community-structured social networks, power-law
// web/social graphs, meshes, road networks, small-world graphs, banded
// circuit matrices, k-mer chains, and the corner cases mawi and wiki-Talk).
// The corpus curator applies the same style of selection rule as the paper's
// Section III (the input-vector cache footprint must exceed the simulated L2
// capacity).
package gen

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**, seeded via splitmix64). Experiments must be reproducible
// run-to-run and machine-to-machine, so nothing in this repository uses
// math/rand's global state.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int32) int32 {
	if n <= 0 {
		panic("gen: Intn with non-positive bound")
	}
	return int32(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("gen: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n) as a shuffled slice.
func (r *RNG) Perm(n int32) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := int32(n - 1); i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws a value in [0, n) from an approximate Zipf distribution with
// exponent s using inverse-transform sampling on the continuous bounded
// Pareto density. Larger s concentrates more mass on small indices; s
// around 1 matches typical power-law degree sequences.
func (r *RNG) Zipf(n int32, s float64) int32 {
	if n <= 1 {
		return 0
	}
	u := r.Float64()
	// Inverse CDF of p(x) ∝ x^(-s) on [1, n].
	var x float64
	if s == 1 {
		x = math.Pow(float64(n), u)
	} else {
		hi := math.Pow(float64(n), 1-s)
		x = math.Pow(u*(hi-1)+1, 1/(1-s))
	}
	v := int32(x) - 1
	if v < 0 {
		v = 0
	}
	if v >= n {
		v = n - 1
	}
	return v
}
