package gen

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// Preset selects the corpus scale. The paper's matrices span 1.5M–226M rows
// against a 6 MB L2; running that on one CPU core is infeasible, so the
// corpus is scaled down while the experiments scale the simulated L2 by the
// same factor (see internal/gpumodel). What matters for every reported
// metric is the ratio of the input-vector footprint to cache capacity, which
// both presets preserve.
type Preset int

const (
	// Small is used by tests and benchmarks: 4K–64K rows against a 32 KB L2.
	Small Preset = iota
	// Full is used by cmd/experiments: 32K–512K rows against a 256 KB L2.
	Full
)

// String returns the preset name.
func (p Preset) String() string {
	switch p {
	case Small:
		return "small"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Preset(%d)", int(p))
	}
}

// Generator produces a matrix from a seed.
type Generator interface {
	Generate(seed uint64) *sparse.CSR
}

// Entry is one curated corpus matrix: a named, seeded generator
// configuration plus provenance metadata mirroring the paper's Section III
// bookkeeping (source repository and whether the "publisher" applied a
// locality-aware reordering before release — the paper's Observation 3).
type Entry struct {
	Name   string
	Family string // structural family: social, web, mesh, road, ...
	Source string // analog of SuiteSparse / Konect / WebDataCommons
	// PublisherBFS marks entries whose dataset publisher applied a
	// sophisticated ordering before release (like sk-2005's layered label
	// propagation); we model that with a BFS ordering.
	PublisherBFS bool
	Seed         uint64
	build        func(Preset) Generator
}

// Generate materializes the matrix at the given preset scale.
func (e Entry) Generate(p Preset) *sparse.CSR {
	m := e.build(p).Generate(e.Seed)
	if e.PublisherBFS {
		m = m.PermuteSymmetric(bfsOrder(m))
	}
	return m
}

// sn scales a Full-preset node count down for the Small preset.
func sn(p Preset, full int32) int32 {
	if p == Full {
		return full
	}
	n := full / 8
	if n < 4096 {
		n = 4096
	}
	return n
}

// sc scales a Full-preset count (communities, hubs) without sn's node-count
// floor, so per-community sizes stay proportional at every preset.
func sc(p Preset, full int32) int32 {
	if p == Full {
		return full
	}
	n := full / 8
	if n < 1 {
		n = 1
	}
	return n
}

// sl scales a Full-preset log2 node count for RMAT.
func sl(p Preset, full int) int {
	if p == Full {
		return full
	}
	return full - 3
}

// Corpus returns the 50-entry curated dataset. The list is fixed and
// deterministic; the preset only scales matrix sizes. Families and counts
// are chosen to mirror the diversity the paper reports (social networks,
// hyperlink graphs, circuit simulation, nonlinear optimization, CFD, road
// networks, protein k-mers, knowledge/communication graphs,
// electromagnetics, and the mawi / wiki-Talk corner cases).
func Corpus() []Entry {
	var c []Entry
	add := func(name, family, source string, pubBFS bool, build func(Preset) Generator) {
		c = append(c, Entry{
			Name:         name,
			Family:       family,
			Source:       source,
			PublisherBFS: pubBFS,
			Seed:         uint64(len(c))*0x9e3779b97f4a7c15 + 12345,
			build:        build,
		})
	}

	// --- Social networks with planted community structure (10) ---
	pp := func(nodes, comms, deg int32, mu, skew float64) func(Preset) Generator {
		return func(p Preset) Generator {
			return PlantedPartition{Nodes: sn(p, nodes), Communities: sc(p, comms), AvgDegree: deg, Mu: mu, SizeSkew: skew}
		}
	}
	add("soc-tight-1", "social", "suitesparse-like", false, pp(262144, 2048, 16, 0.05, 0))
	add("soc-tight-2", "social", "suitesparse-like", false, pp(131072, 1024, 24, 0.10, 0))
	add("soc-mid-1", "social", "konect-like", false, pp(262144, 1024, 12, 0.20, 0))
	add("soc-mid-2", "social", "suitesparse-like", false, pp(196608, 512, 16, 0.30, 0))
	add("soc-loose-1", "social", "konect-like", false, pp(262144, 768, 14, 0.40, 0))
	add("soc-loose-2", "social", "suitesparse-like", false, pp(131072, 512, 20, 0.50, 0))
	add("soc-skewed-1", "social", "konect-like", false, pp(262144, 1536, 16, 0.15, 1.1))
	add("soc-skewed-2", "social", "suitesparse-like", false, pp(196608, 1024, 18, 0.30, 1.3))
	add("com-lj-like", "social", "suitesparse-like", false, pp(524288, 2048, 16, 0.35, 1.0))
	add("com-orkut-like", "social", "suitesparse-like", false, pp(262144, 512, 32, 0.45, 0.8))

	// --- Hierarchical web crawls (5) ---
	hier := func(nodes int32, levels int, fanout, deg int32, escape float64) func(Preset) Generator {
		return func(p Preset) Generator {
			return Hierarchical{Nodes: sn(p, nodes), Levels: levels, Fanout: fanout, AvgDegree: deg, Escape: escape}
		}
	}
	// sk-2005's publisher applied layered label propagation before release;
	// we model that with PublisherBFS.
	add("sk-2005-like", "web", "suitesparse-like", true, hier(524288, 6, 8, 20, 0.15))
	add("web-hier-mid", "web", "wdc-like", false, hier(262144, 5, 8, 16, 0.25))
	add("web-deep", "web", "wdc-like", false, hier(262144, 8, 4, 12, 0.10))
	add("web-shallow", "web", "konect-like", false, hier(131072, 3, 32, 18, 0.20))
	add("wdc-host-like", "web", "wdc-like", false, hier(393216, 6, 6, 14, 0.18))

	// --- R-MAT power-law graphs (5) ---
	rmat := func(logN int, deg int32, a, b, cq float64, sym bool) func(Preset) Generator {
		return func(p Preset) Generator {
			return RMAT{LogNodes: sl(p, logN), AvgDegree: deg, A: a, B: b, C: cq, Symmetric: sym}
		}
	}
	add("rmat-skew-lo", "powerlaw", "suitesparse-like", false, rmat(18, 16, 0.45, 0.22, 0.22, true))
	add("rmat-skew-mid", "powerlaw", "suitesparse-like", false, rmat(17, 16, 0.50, 0.20, 0.20, true))
	add("rmat-skew-hi", "powerlaw", "konect-like", false, rmat(18, 16, 0.57, 0.19, 0.19, true))
	add("twitter-like", "powerlaw", "konect-like", false, rmat(17, 24, 0.60, 0.17, 0.17, false))
	add("kron-dense", "powerlaw", "suitesparse-like", false, rmat(17, 32, 0.55, 0.18, 0.18, true))

	// --- Community + hub hyperlink mixtures (4) ---
	hubby := func(nodes, comms, deg int32, mu float64, hubs, hubDeg int32) func(Preset) Generator {
		return func(p Preset) Generator {
			return HubbyCommunities{Nodes: sn(p, nodes), Communities: sc(p, comms), AvgDegree: deg, Mu: mu,
				Hubs: sc(p, hubs), HubDegree: hubDeg}
		}
	}
	add("pld-arc-like", "web", "wdc-like", false, hubby(262144, 1024, 12, 0.25, 2048, 96))
	add("sx-stackoverflow-like", "social", "suitesparse-like", false, hubby(262144, 2048, 10, 0.15, 4096, 64))
	add("wiki-topcats-like", "web", "suitesparse-like", false, hubby(131072, 512, 14, 0.30, 1024, 128))
	add("hollywood-like", "social", "suitesparse-like", false, hubby(196608, 768, 24, 0.20, 1536, 80))

	// --- Meshes: CFD / electromagnetics / thermal (6) ---
	mesh2 := func(full int32, nine bool) func(Preset) Generator {
		return func(p Preset) Generator {
			side := isqrt(sn(p, full*full))
			return Mesh2D{Width: side, Height: side, NinePoint: nine}
		}
	}
	mesh3 := func(full int32) func(Preset) Generator {
		return func(p Preset) Generator {
			side := icbrt(sn(p, full*full*full))
			return Mesh3D{X: side, Y: side, Z: side}
		}
	}
	add("cfd-2d-5pt", "mesh", "suitesparse-like", false, mesh2(512, false))
	add("cfd-2d-9pt", "mesh", "suitesparse-like", false, mesh2(448, true))
	add("em-3d-64", "mesh", "suitesparse-like", false, mesh3(64))
	add("em-3d-48", "mesh", "suitesparse-like", false, mesh3(48))
	add("thermal-2d", "mesh", "suitesparse-like", false, mesh2(576, true))
	add("dna-3d-56", "mesh", "suitesparse-like", false, mesh3(56))

	// --- Road networks (3) ---
	road := func(w, h int32, drop float64, scDiv int32) func(Preset) Generator {
		return func(p Preset) Generator {
			n := sn(p, w*h)
			width := isqrt(n * w / h)
			if width < 2 {
				width = 2
			}
			height := n / width
			return RoadGrid{Width: width, Height: height, DropProb: drop, Shortcuts: n / scDiv}
		}
	}
	add("road-usa-like", "road", "suitesparse-like", false, road(768, 512, 0.25, 128))
	add("road-eu-like", "road", "suitesparse-like", false, road(512, 512, 0.30, 96))
	add("road-dense", "road", "konect-like", false, road(512, 384, 0.10, 256))

	// --- Small-world graphs (3) ---
	ws := func(nodes, k int32, beta float64) func(Preset) Generator {
		return func(p Preset) Generator {
			return WattsStrogatz{Nodes: sn(p, nodes), K: k, Beta: beta}
		}
	}
	add("ws-k8-b01", "smallworld", "konect-like", false, ws(262144, 8, 0.01))
	add("ws-k16-b05", "smallworld", "konect-like", false, ws(131072, 16, 0.05))
	add("ws-k4-b20", "smallworld", "suitesparse-like", false, ws(262144, 4, 0.20))

	// --- Uniform random graphs (3) ---
	er := func(nodes, deg int32) func(Preset) Generator {
		return func(p Preset) Generator { return ErdosRenyi{Nodes: sn(p, nodes), AvgDegree: deg} }
	}
	add("er-deg8", "random", "suitesparse-like", false, er(262144, 8))
	add("er-deg16", "random", "konect-like", false, er(131072, 16))
	add("er-deg32", "random", "suitesparse-like", false, er(131072, 32))

	// --- Banded circuit / optimization matrices (4) ---
	banded := func(nodes, band int32, density float64, offDiv int32) func(Preset) Generator {
		return func(p Preset) Generator {
			n := sn(p, nodes)
			off := int32(0)
			if offDiv > 0 {
				off = n / offDiv
			}
			return Banded{Nodes: n, Band: band, Density: density, OffBand: off, Symmetric: true}
		}
	}
	add("circuit-like", "circuit", "suitesparse-like", false, banded(262144, 16, 0.50, 64))
	add("opt-like", "optimization", "suitesparse-like", false, banded(131072, 64, 0.15, 0))
	add("band-narrow", "circuit", "suitesparse-like", false, banded(524288, 4, 0.90, 0))
	add("freescale-like", "circuit", "suitesparse-like", false, banded(262144, 32, 0.25, 32))

	// --- Protein k-mer chains (3) ---
	kmer := func(nodes, chain int32, branch float64) func(Preset) Generator {
		return func(p Preset) Generator {
			return KmerChain{Nodes: sn(p, nodes), ChainLen: chain, BranchProb: branch}
		}
	}
	add("kmer-v1r-like", "kmer", "suitesparse-like", false, kmer(524288, 1024, 0.05))
	add("kmer-short", "kmer", "suitesparse-like", false, kmer(262144, 128, 0.05))
	add("kmer-branchy", "kmer", "suitesparse-like", false, kmer(262144, 512, 0.20))

	// --- Giant-hub corner cases, mawi-like (2) ---
	// A single dominant hub (a traffic-monitoring point) makes incremental
	// aggregation fold nearly the whole graph into one community: high
	// insularity, no locality benefit — the paper's mawi anomaly.
	add("mawi-like", "traffic", "suitesparse-like", false, func(p Preset) Generator {
		return HubStar{Nodes: sn(p, 262144), Hubs: 1, HubConn: 0.95, Background: sn(p, 262144) / 64}
	})
	add("star-dense", "traffic", "konect-like", false, func(p Preset) Generator {
		return HubStar{Nodes: sn(p, 131072), Hubs: 8, HubConn: 0.10, Background: sn(p, 131072) / 2}
	})

	// --- Empty-row-heavy, wiki-Talk-like (2) ---
	add("wiki-talk-like", "communication", "suitesparse-like", false, func(p Preset) Generator {
		return EmptyRowHeavy{Nodes: sn(p, 262144), ActiveFrac: 0.07, AvgDegree: 30, TargetSkew: 1.2}
	})
	add("email-like", "communication", "konect-like", false, func(p Preset) Generator {
		return EmptyRowHeavy{Nodes: sn(p, 131072), ActiveFrac: 0.15, AvgDegree: 20, TargetSkew: 1.0}
	})

	if len(c) != 50 {
		panic(fmt.Sprintf("gen: corpus has %d entries, want 50", len(c)))
	}
	return c
}

// ByName returns the corpus entry with the given name.
func ByName(name string) (Entry, error) {
	for _, e := range Corpus() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("gen: no corpus entry named %q", name)
}

// Names returns the sorted corpus entry names.
func Names() []string {
	var out []string
	for _, e := range Corpus() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// CheckSelection applies the paper's Section III selection rule to a
// generated matrix: the matrix must be square and the worst-case input
// vector footprint (rows × 4 bytes) must exceed the simulated L2 capacity,
// otherwise reuse trivially fits in cache and the matrix cannot
// discriminate between orderings.
func CheckSelection(m *sparse.CSR, l2Bytes int64) error {
	if !m.IsSquare() {
		return fmt.Errorf("gen: selection requires square matrices, got %dx%d", m.NumRows, m.NumCols)
	}
	footprint := int64(m.NumRows) * 4
	if footprint <= l2Bytes {
		return fmt.Errorf("gen: input-vector footprint %dB does not exceed L2 capacity %dB", footprint, l2Bytes)
	}
	return nil
}

// bfsOrder computes a breadth-first ordering (old ID listing) from node 0,
// visiting neighbors in ascending ID order, and returns the corresponding
// permutation. Unreached vertices are appended in ID order. This stands in
// for the locality-aware orderings some dataset publishers apply before
// release.
func bfsOrder(m *sparse.CSR) sparse.Permutation {
	n := m.NumRows
	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for start := int32(0); start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		order = append(order, start)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			cols, _ := m.Row(u)
			for _, v := range cols {
				if !visited[v] {
					visited[v] = true
					order = append(order, v)
					queue = append(queue, v)
				}
			}
		}
	}
	return sparse.FromNewOrder(order)
}

// isqrt returns the integer square root of n.
func isqrt(n int32) int32 {
	if n < 0 {
		return 0
	}
	x := int32(1)
	for x*x <= n {
		x++
	}
	return x - 1
}

// icbrt returns the integer cube root of n.
func icbrt(n int32) int32 {
	if n < 0 {
		return 0
	}
	x := int32(1)
	for x*x*x <= n {
		x++
	}
	return x - 1
}
