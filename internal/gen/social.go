package gen

import (
	"repro/internal/check"
	"repro/internal/sparse"
)

// BarabasiAlbert generates a scale-free graph by preferential attachment:
// each new vertex attaches M edges to existing vertices with probability
// proportional to their degree. Compared to R-MAT it produces a cleaner
// power law with organically grown hubs, matching citation and social
// datasets.
type BarabasiAlbert struct {
	Nodes int32
	M     int32 // edges added per new vertex
}

// Generate builds the matrix with scrambled IDs (growth order is a strong
// locality hint real datasets do not ship with).
func (g BarabasiAlbert) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Nodes
	m := g.M
	if m < 1 {
		m = 1
	}
	coo := sparse.NewCOO(n, n, int(n)*int(m)*2)
	// targets repeats each vertex once per incident edge endpoint, so a
	// uniform draw implements preferential attachment.
	targets := make([]int32, 0, int(n)*int(m)*2)
	start := m + 1
	if start > n {
		start = n
	}
	// Seed clique over the first m+1 vertices.
	for i := int32(0); i < start; i++ {
		for j := i + 1; j < start; j++ {
			coo.AddSym(i, j, value(r))
			targets = append(targets, i, j)
		}
	}
	for v := start; v < n; v++ {
		for e := int32(0); e < m; e++ {
			var u int32
			if len(targets) == 0 {
				u = r.Intn(v)
			} else {
				u = targets[r.Intn(check.SafeInt32(len(targets)))]
			}
			if u == v {
				continue
			}
			coo.AddSym(v, u, value(r))
			targets = append(targets, v, u)
		}
	}
	return scramble(coo.ToCSR(), r)
}

// ForestFire generates a graph by the forest-fire model (Leskovec et al.):
// each new vertex picks an ambassador and recursively "burns" through a
// geometric number of its neighbors, linking to every burned vertex. The
// model produces communities, heavy tails, and densification — the
// combination the paper's hyperlink matrices exhibit.
type ForestFire struct {
	Nodes int32
	// BurnProb is the forward-burning probability in (0, 1); higher values
	// burn larger neighborhoods and densify the graph.
	BurnProb float64
}

// Generate builds the matrix with scrambled IDs.
func (g ForestFire) Generate(seed uint64) *sparse.CSR {
	r := NewRNG(seed)
	n := g.Nodes
	p := g.BurnProb
	if p <= 0 || p >= 1 {
		p = 0.35
	}
	adj := make([][]int32, n)
	link := func(a, b int32) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	burned := make(map[int32]bool, 64)
	var frontier, next, burnedList []int32
	for v := int32(1); v < n; v++ {
		ambassador := r.Intn(v)
		clear(burned)
		burned[ambassador] = true
		burnedList = append(burnedList[:0], ambassador)
		frontier = append(frontier[:0], ambassador)
		// Bound total burn size to keep degree growth sane.
		budget := 64
		for len(frontier) > 0 && budget > 0 {
			next = next[:0]
			for _, u := range frontier {
				// Geometric number of neighbors to burn forward.
				for _, w := range adj[u] {
					if budget <= 0 {
						break
					}
					if burned[w] || r.Float64() >= p {
						continue
					}
					burned[w] = true
					burnedList = append(burnedList, w)
					next = append(next, w)
					budget--
				}
			}
			frontier = append(frontier[:0], next...)
		}
		// Link in burn order: map iteration order would make the generator
		// nondeterministic.
		for _, u := range burnedList {
			link(v, u)
		}
	}
	coo := sparse.NewCOO(n, n, int(n)*4)
	for v := int32(0); v < n; v++ {
		for _, u := range adj[v] {
			if u > v {
				coo.AddSym(v, u, value(r))
			}
		}
	}
	return scramble(coo.ToCSR(), r)
}
