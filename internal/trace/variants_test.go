package trace

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/gen"
)

func TestInterleavedSameFootprint(t *testing.T) {
	// Interleaving reorders the stream but touches exactly the same lines.
	m := gen.PlantedPartition{Nodes: 2000, Communities: 20, AvgDegree: 8, Mu: 0.2}.Generate(1)
	serial := distinct(collect(SpMVCSR(m, 128)))
	for _, groups := range []int32{1, 4, 32} {
		inter := distinct(collect(SpMVCSRInterleaved(m, 128, groups)))
		if len(inter) != len(serial) {
			t.Fatalf("groups=%d: footprint %d lines vs serial %d", groups, len(inter), len(serial))
		}
		for l := range serial {
			if !inter[l] {
				t.Fatalf("groups=%d: line %d missing from interleaved trace", groups, l)
			}
		}
	}
}

func TestInterleavedOneGroupMatchesSerialMisses(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 1500, AvgDegree: 6}.Generate(2)
	cfg := cachesim.Config{CapacityBytes: 32 << 10, LineBytes: 128, Ways: 16}
	serial := cachesim.SimulateLRU(cfg, SpMVCSR(m, 128))
	one := cachesim.SimulateLRU(cfg, SpMVCSRInterleaved(m, 128, 1))
	if serial.Misses != one.Misses || serial.Accesses != one.Accesses {
		t.Fatalf("1-group interleaved (%d misses/%d accesses) differs from serial (%d/%d)",
			one.Misses, one.Accesses, serial.Misses, serial.Accesses)
	}
}

func TestInterleavedPreservesOrderingAdvantage(t *testing.T) {
	// The paper's conclusion must be robust to interleaving: a community
	// ordering still beats a scrambled one under a 32-group mixed stream.
	m := gen.PlantedPartition{Nodes: 8192, Communities: 64, AvgDegree: 12, Mu: 0.1}.Generate(3)
	cfg := cachesim.Config{CapacityBytes: 32 << 10, LineBytes: 128, Ways: 16}
	// m is generated scrambled; a BFS-ish cluster order is approximated by
	// sorting via community detection is out of scope here — instead
	// compare the scrambled matrix against itself with more cache: the
	// ordering-level check lives in the experiments tests. Here we check
	// monotonicity: more groups must not change the footprint, and misses
	// stay within sane bounds.
	s1 := cachesim.SimulateLRU(cfg, SpMVCSRInterleaved(m, 128, 1))
	s32 := cachesim.SimulateLRU(cfg, SpMVCSRInterleaved(m, 128, 32))
	if s32.Compulsory != s1.Compulsory {
		t.Fatalf("compulsory misses changed with interleaving: %d vs %d", s32.Compulsory, s1.Compulsory)
	}
	if s32.Misses < s32.Compulsory {
		t.Fatal("misses below compulsory")
	}
}

func TestTiledBoundsIrregularFootprint(t *testing.T) {
	// With tiles no wider than the cache, the irregular accesses of each
	// pass fit; tiled traffic on a scrambled matrix must be well below the
	// untiled traffic, at the cost of more accesses.
	m := gen.ErdosRenyi{Nodes: 16384, AvgDegree: 8}.Generate(4)
	cfg := cachesim.Config{CapacityBytes: 32 << 10, LineBytes: 128, Ways: 16}
	untiled := cachesim.SimulateLRU(cfg, SpMVCSR(m, 128))
	tiled := cachesim.SimulateLRU(cfg, SpMVCSRTiled(m, 128, 4096)) // 16KB tile slice
	if tiled.Misses >= untiled.Misses {
		t.Fatalf("tiled misses %d not below untiled %d on a scrambled matrix", tiled.Misses, untiled.Misses)
	}
}

func TestTiledSingleTileMatchesUntiledFootprint(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 1000, AvgDegree: 5}.Generate(5)
	whole := distinct(collect(SpMVCSRTiled(m, 128, m.NumCols)))
	serial := distinct(collect(SpMVCSR(m, 128)))
	// A single tile covering all columns touches the same X/Y/coords/vals
	// lines (rowOffsets lines may differ slightly for all-empty tails).
	for l := range serial {
		if !whole[l] {
			t.Fatalf("line %d missing from single-tile trace", l)
		}
	}
}

func TestTiledHandlesDegenerate(t *testing.T) {
	empty := &gen.Mesh2D{Width: 2, Height: 2}
	m := empty.Generate(6)
	if got := collect(SpMVCSRTiled(m, 128, 0)); len(got) == 0 {
		t.Fatal("tileCols=0 should default to full width, not empty trace")
	}
}

func TestSpMVCSCIrregularYAccesses(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 300, AvgDegree: 5}.Generate(7)
	lines := collect(SpMVCSC(m, 128))
	if len(lines) == 0 {
		t.Fatal("empty CSC trace")
	}
	// One irregular Y access per nonzero: Y occupies the first region of
	// the layout.
	tr := m.Transpose()
	l := NewLayout(int64(tr.NumRows), int64(tr.NNZ()), 1, 128)
	var yAccesses int
	for _, ln := range lines {
		if ln >= l.Y/128 && ln < l.RowOff/128 {
			yAccesses++
		}
	}
	if yAccesses != m.NNZ() {
		t.Fatalf("Y accesses = %d, want one per nonzero = %d", yAccesses, m.NNZ())
	}
}

func TestSpMVCSCSameCompulsoryAsCSR(t *testing.T) {
	// Push and pull SpMV move the same arrays once at minimum: the
	// distinct-line footprints are equal up to alignment effects on
	// fully-referenced matrices.
	m := gen.PlantedPartition{Nodes: 1000, Communities: 10, AvgDegree: 8, Mu: 0.2}.Generate(8)
	csr := len(distinct(collect(SpMVCSR(m, 128))))
	csc := len(distinct(collect(SpMVCSC(m, 128))))
	diff := csr - csc
	if diff < 0 {
		diff = -diff
	}
	if diff > csr/10 {
		t.Fatalf("CSC footprint %d far from CSR footprint %d", csc, csr)
	}
}

func TestInterleavedDeterminism(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 800, AvgDegree: 5}.Generate(9)
	a := collect(SpMVCSRInterleaved(m, 128, 16))
	b := collect(SpMVCSRInterleaved(m, 128, 16))
	if len(a) != len(b) {
		t.Fatal("interleaved trace length nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaved trace diverges at %d", i)
		}
	}
}
