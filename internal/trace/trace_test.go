package trace

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/sparse"
)

func collect(t func(emit func(int64))) []int64 {
	var out []int64
	t(func(l int64) { out = append(out, l) })
	return out
}

func distinct(lines []int64) map[int64]bool {
	d := map[int64]bool{}
	for _, l := range lines {
		d[l] = true
	}
	return d
}

func TestLayoutNonOverlapping(t *testing.T) {
	l := NewLayout(1000, 5000, 1, 128)
	bounds := []int64{l.Y, l.RowOff, l.Col, l.Val, l.X, l.End}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("layout regions not strictly increasing: %+v", l)
		}
		if bounds[i]%128 != 0 {
			t.Fatalf("region base %d not line aligned", bounds[i])
		}
	}
	// Region sizes must fit their arrays.
	if l.RowOff-l.Y < 1000*ElemBytes {
		t.Fatal("Y region too small")
	}
	if l.Col-l.RowOff < 1001*ElemBytes {
		t.Fatal("rowOffsets region too small")
	}
	if l.X-l.Val < 5000*ElemBytes {
		t.Fatal("values region too small")
	}
}

func TestLayoutDenseK(t *testing.T) {
	l := NewLayout(100, 500, 256, 128)
	if l.RowOff-l.Y < 100*256*ElemBytes {
		t.Fatal("dense C region too small for k=256")
	}
	if l.End-l.X < 100*256*ElemBytes {
		t.Fatal("dense B region too small for k=256")
	}
}

func TestSpMVCSRTraceTouchesAllOperands(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 300, AvgDegree: 6}.Generate(1)
	const line = 128
	lines := collect(SpMVCSR(m, line))
	if len(lines) == 0 {
		t.Fatal("empty trace")
	}
	l := NewLayout(int64(m.NumRows), int64(m.NNZ()), 1, line)
	d := distinct(lines)
	// Every line of the streaming arrays must appear exactly as many lines
	// as the arrays span.
	countIn := func(lo, hi int64) int {
		n := 0
		for ln := range d {
			if ln >= lo/line && ln < (hi+line-1)/line {
				n++
			}
		}
		return n
	}
	wantRowOff := int((int64(m.NumRows+1)*ElemBytes + line - 1) / line)
	if got := countIn(l.RowOff, l.RowOff+int64(m.NumRows+1)*ElemBytes); got != wantRowOff {
		t.Fatalf("rowOffsets lines touched = %d, want %d", got, wantRowOff)
	}
	wantCol := int((int64(m.NNZ())*ElemBytes + line - 1) / line)
	if got := countIn(l.Col, l.Col+int64(m.NNZ())*ElemBytes); got != wantCol {
		t.Fatalf("coords lines touched = %d, want %d", got, wantCol)
	}
	// X lines touched = lines containing at least one referenced column.
	xLines := map[int64]bool{}
	for _, c := range m.ColIndices {
		xLines[(l.X+int64(c)*ElemBytes)/line] = true
	}
	if got := countIn(l.X, l.X+int64(m.NumCols)*ElemBytes); got != len(xLines) {
		t.Fatalf("X lines touched = %d, want %d", got, len(xLines))
	}
}

func TestSpMVCSRTraceIrregularAccessCount(t *testing.T) {
	// The trace must contain exactly one X access per nonzero (the
	// irregular dereference of Algorithm 1 line 6).
	m := gen.ErdosRenyi{Nodes: 200, AvgDegree: 5}.Generate(2)
	const line = 128
	l := NewLayout(int64(m.NumRows), int64(m.NNZ()), 1, line)
	xLo, xHi := l.X/line, l.End/line
	var xAccesses int
	for _, ln := range collect(SpMVCSR(m, line)) {
		if ln >= xLo && ln < xHi {
			xAccesses++
		}
	}
	if xAccesses != m.NNZ() {
		t.Fatalf("X accesses = %d, want one per nonzero = %d", xAccesses, m.NNZ())
	}
}

func TestSpMVTraceCompulsoryMatchesFootprint(t *testing.T) {
	// Running the trace through an infinite cache yields exactly the
	// distinct-line footprint as compulsory misses.
	m := gen.PlantedPartition{Nodes: 400, Communities: 8, AvgDegree: 6, Mu: 0.2}.Generate(3)
	lines := collect(SpMVCSR(m, 128))
	cfg := cachesim.Config{CapacityBytes: 1 << 26, LineBytes: 128, Ways: 16}
	s := cachesim.SimulateLRU(cfg, SpMVCSR(m, 128))
	if s.Misses != int64(len(distinct(lines))) {
		t.Fatalf("infinite-cache misses %d != distinct lines %d", s.Misses, len(distinct(lines)))
	}
}

func TestSpMVCOOTrace(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 200, AvgDegree: 5}.Generate(4)
	coo := sparse.CSRToCOO(m)
	lines := collect(SpMVCOO(coo, 128))
	if len(lines) == 0 {
		t.Fatal("empty COO trace")
	}
	// COO streams three triplet arrays instead of one offsets array, so
	// its distinct-line footprint exceeds CSR's for the same matrix.
	csrFootprint := len(distinct(collect(SpMVCSR(m, 128))))
	cooFootprint := len(distinct(lines))
	if cooFootprint <= csrFootprint {
		t.Fatalf("COO footprint %d not larger than CSR %d", cooFootprint, csrFootprint)
	}
}

func TestSpMMTraceScalesWithK(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 300, AvgDegree: 6}.Generate(5)
	len4 := len(collect(SpMMCSR(m, 4, 128)))
	len256 := len(collect(SpMMCSR(m, 256, 128)))
	if len256 <= len4*4 {
		t.Fatalf("SpMM k=256 trace (%d) should be much longer than k=4 (%d)", len256, len4)
	}
	// k=256 rows span 1024 bytes = 8 lines of 128B; every nonzero must
	// touch 8 or 9 B-lines.
	l := NewLayout(int64(m.NumRows), int64(m.NNZ()), 256, 128)
	bLo := l.X / 128
	var bAccesses int
	for _, ln := range collect(SpMMCSR(m, 256, 128)) {
		if ln >= bLo && ln < l.End/128 {
			bAccesses++
		}
	}
	if bAccesses != m.NNZ()*8 {
		t.Fatalf("B accesses = %d, want %d (8 lines per nonzero)", bAccesses, m.NNZ()*8)
	}
}

func TestSpMMPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SpMM with k=0 did not panic")
		}
	}()
	m := gen.ErdosRenyi{Nodes: 10, AvgDegree: 2}.Generate(6)
	SpMMCSR(m, 0, 128)
}

func TestStreamCoalescing(t *testing.T) {
	var got []int64
	s := newStream(func(l int64) { got = append(got, l) })
	for _, l := range []int64{5, 5, 5, 6, 6, 5} {
		s.access(l)
	}
	// Each new line is emitted twice (sector-read approximation); repeats
	// of the current line are coalesced away.
	want := []int64{5, 5, 6, 6, 5, 5}
	if len(got) != len(want) {
		t.Fatalf("coalesced = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coalesced = %v, want %v", got, want)
		}
	}
}

func TestTraceDeterminism(t *testing.T) {
	m := gen.RMAT{LogNodes: 9, AvgDegree: 6, A: 0.5, B: 0.2, C: 0.2, Symmetric: true}.Generate(7)
	a := collect(SpMVCSR(m, 128))
	b := collect(SpMVCSR(m, 128))
	if len(a) != len(b) {
		t.Fatal("trace length nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at access %d", i)
		}
	}
}

func TestEmptyRowsStillStreamY(t *testing.T) {
	// A matrix with all-empty rows still streams Y and rowOffsets.
	m := &sparse.CSR{NumRows: 100, NumCols: 100, RowOffsets: make([]int32, 101)}
	lines := collect(SpMVCSR(m, 128))
	if len(lines) == 0 {
		t.Fatal("empty matrix trace is empty; Y and rowOffsets must still stream")
	}
}
