// Device-attributed reference streams for the multi-device cache model
// (internal/multidev): each kernel's trace is re-emitted as (device, line)
// pairs, where the device is the compute tile that executes the access —
// the owner of the outer-loop row driving it — alongside a line→home map
// classifying which device each cache line's data is homed on. The line
// sequence of every owned generator is bit-identical to its unowned
// counterpart (pinned by TestOwnedMatchesUnowned and the corpus-scale
// K=1 differential in internal/experiments), so a single-device owned
// simulation reproduces the flat path exactly.
package trace

import (
	"fmt"

	"repro/internal/sparse"
)

// OwnedTrace bundles a device-attributed reference stream with the home
// map of its address space.
type OwnedTrace struct {
	// Trace emits (device, line) pairs in program order. The line
	// sequence is bit-identical to the unowned generator over the same
	// operands; the device tag is the owner of the row (or nonzero, for
	// COO) whose execution issues the access.
	Trace func(emit func(dev int32, line int64))
	// Home maps every line ID of the layout (index = line ID, length =
	// footprint in lines) to the device the line's data is homed on:
	// the owner of the line's first element. Operand arrays are
	// distributed row-wise by the same owner labels that attribute the
	// stream, so X[v] and Y[v] live with vertex v's owner and a row's
	// CSR slices live with that row's owner.
	Home []int32
}

// ownedStream coalesces sequential accesses to one array exactly like
// stream (same emit-twice discipline, same per-stream last-line state)
// while tagging each emission with the executing device.
type ownedStream struct {
	last int64
	emit func(int32, int64)
}

func newOwnedStream(emit func(int32, int64)) *ownedStream {
	return &ownedStream{last: -1, emit: emit}
}

func (s *ownedStream) access(dev int32, line int64) {
	if line != s.last {
		s.last = line
		s.emit(dev, line)
		s.emit(dev, line)
	}
}

// homeBuilder fills a line→device table region by region. Claims must be
// issued in ascending address order; the first element touching a line
// decides its home (later claims of an already-claimed line are ignored),
// which makes the map deterministic and independent of how many elements
// share a line.
type homeBuilder struct {
	lineBytes int64
	next      int64 // first unclaimed line
	home      []int32
}

func newHomeBuilder(end, lineBytes int64) *homeBuilder {
	return &homeBuilder{lineBytes: lineBytes, home: make([]int32, end/lineBytes)}
}

// claim assigns dev to the not-yet-claimed lines covering the byte range
// [addr, addr+bytes).
func (h *homeBuilder) claim(addr, bytes int64, dev int32) {
	if bytes <= 0 {
		return
	}
	lo := addr / h.lineBytes
	hi := (addr + bytes - 1) / h.lineBytes
	if lo < h.next {
		lo = h.next
	}
	for ln := lo; ln <= hi; ln++ {
		h.home[ln] = dev
	}
	if hi+1 > h.next {
		h.next = hi + 1
	}
}

// checkOwner validates an owner vector against the expected vertex count.
func checkOwner(owner []int32, n int32, kernel string) {
	if len(owner) != int(n) {
		panic(fmt.Sprintf("trace: %s with %d owner labels for %d rows", kernel, len(owner), n))
	}
}

// SpMVCSROwned returns the device-attributed CSR SpMV reference stream:
// the same line sequence as SpMVCSR, with every access of row r's work
// tagged owner[r], plus the layout's home map (Y[r], the row-offset
// entry, and row r's coords/values slices are homed on owner[r]; X[v] on
// owner[v]). owner must hold one device label per row.
func SpMVCSROwned(m *sparse.CSR, owner []int32, lineBytes int64) OwnedTrace {
	checkOwner(owner, m.NumRows, "SpMVCSROwned")
	n, nnz := int64(m.NumRows), int64(m.NNZ())
	l := NewLayout(n, nnz, 1, lineBytes)
	h := newHomeBuilder(l.End, lineBytes)
	for r := int64(0); r < n; r++ {
		h.claim(l.Y+r*ElemBytes, ElemBytes, owner[r])
	}
	for r := int64(0); r < n; r++ {
		h.claim(l.RowOff+r*ElemBytes, ElemBytes, owner[r])
	}
	if n > 0 {
		h.claim(l.RowOff+n*ElemBytes, ElemBytes, owner[n-1])
	}
	for _, base := range []int64{l.Col, l.Val} {
		for r := int64(0); r < n; r++ {
			lo, hi := int64(m.RowOffsets[r]), int64(m.RowOffsets[r+1])
			h.claim(base+lo*ElemBytes, (hi-lo)*ElemBytes, owner[r])
		}
	}
	for v := int64(0); v < n; v++ {
		h.claim(l.X+v*ElemBytes, ElemBytes, owner[v])
	}
	return OwnedTrace{
		Home: h.home,
		Trace: func(emit func(int32, int64)) {
			roS := newOwnedStream(emit)
			colS := newOwnedStream(emit)
			valS := newOwnedStream(emit)
			yS := newOwnedStream(emit)
			for row := int64(0); row < n; row++ {
				dev := owner[row]
				roS.access(dev, l.line(l.RowOff+row*ElemBytes))
				roS.access(dev, l.line(l.RowOff+(row+1)*ElemBytes))
				start, end := int64(m.RowOffsets[row]), int64(m.RowOffsets[row+1])
				for i := start; i < end; i++ {
					colS.access(dev, l.line(l.Col+i*ElemBytes))
					valS.access(dev, l.line(l.Val+i*ElemBytes))
					emit(dev, l.line(l.X+int64(m.ColIndices[i])*ElemBytes))
				}
				yS.access(dev, l.line(l.Y+row*ElemBytes))
			}
		},
	}
}

// SpMVCOOOwned returns the device-attributed COO SpMV reference stream:
// the same line sequence as SpMVCOO, with nonzero k's accesses tagged
// owner[RowIdx[k]]. The triplet arrays are homed per entry with the
// entry's row owner; X and Y per vertex. owner must hold one device
// label per row.
func SpMVCOOOwned(c *sparse.COO, owner []int32, lineBytes int64) OwnedTrace {
	checkOwner(owner, c.NumRows, "SpMVCOOOwned")
	n, nnz := int64(c.NumRows), int64(c.NNZ())
	l := NewLayoutCOO(n, nnz, lineBytes)
	h := newHomeBuilder(l.End, lineBytes)
	for r := int64(0); r < n; r++ {
		h.claim(l.Y+r*ElemBytes, ElemBytes, owner[r])
	}
	for _, base := range []int64{l.RowOff, l.Col, l.Val} {
		for k := int64(0); k < nnz; k++ {
			h.claim(base+k*ElemBytes, ElemBytes, owner[c.RowIdx[k]])
		}
	}
	for v := int64(0); v < n; v++ {
		h.claim(l.X+v*ElemBytes, ElemBytes, owner[v])
	}
	return OwnedTrace{
		Home: h.home,
		Trace: func(emit func(int32, int64)) {
			rowS := newOwnedStream(emit)
			colS := newOwnedStream(emit)
			valS := newOwnedStream(emit)
			yS := newOwnedStream(emit)
			for k := range c.RowIdx {
				i := int64(k)
				dev := owner[c.RowIdx[k]]
				rowS.access(dev, l.line(l.RowOff+i*ElemBytes))
				colS.access(dev, l.line(l.Col+i*ElemBytes))
				valS.access(dev, l.line(l.Val+i*ElemBytes))
				emit(dev, l.line(l.X+int64(c.ColIdx[k])*ElemBytes))
				yS.access(dev, l.line(l.Y+int64(c.RowIdx[k])*ElemBytes))
			}
		},
	}
}

// SpMMCSROwned returns the device-attributed SpMM reference stream: the
// same line sequence as SpMMCSR with row r's work tagged owner[r]. The
// dense C and B rows are homed with their matrix row's owner. owner must
// hold one device label per row.
func SpMMCSROwned(m *sparse.CSR, k int64, owner []int32, lineBytes int64) OwnedTrace {
	checkOwner(owner, m.NumRows, "SpMMCSROwned")
	if k < 1 {
		panic(fmt.Sprintf("trace: SpMM with k = %d", k))
	}
	n, nnz := int64(m.NumRows), int64(m.NNZ())
	l := NewLayout(n, nnz, k, lineBytes)
	rowBytes := k * ElemBytes
	h := newHomeBuilder(l.End, lineBytes)
	for r := int64(0); r < n; r++ {
		h.claim(l.Y+r*rowBytes, rowBytes, owner[r])
	}
	for r := int64(0); r < n; r++ {
		h.claim(l.RowOff+r*ElemBytes, ElemBytes, owner[r])
	}
	if n > 0 {
		h.claim(l.RowOff+n*ElemBytes, ElemBytes, owner[n-1])
	}
	for _, base := range []int64{l.Col, l.Val} {
		for r := int64(0); r < n; r++ {
			lo, hi := int64(m.RowOffsets[r]), int64(m.RowOffsets[r+1])
			h.claim(base+lo*ElemBytes, (hi-lo)*ElemBytes, owner[r])
		}
	}
	for v := int64(0); v < n; v++ {
		h.claim(l.X+v*rowBytes, rowBytes, owner[v])
	}
	return OwnedTrace{
		Home: h.home,
		Trace: func(emit func(int32, int64)) {
			roS := newOwnedStream(emit)
			colS := newOwnedStream(emit)
			valS := newOwnedStream(emit)
			cS := newOwnedStream(emit)
			for row := int64(0); row < n; row++ {
				dev := owner[row]
				roS.access(dev, l.line(l.RowOff+row*ElemBytes))
				roS.access(dev, l.line(l.RowOff+(row+1)*ElemBytes))
				start, end := int64(m.RowOffsets[row]), int64(m.RowOffsets[row+1])
				for i := start; i < end; i++ {
					colS.access(dev, l.line(l.Col+i*ElemBytes))
					valS.access(dev, l.line(l.Val+i*ElemBytes))
					bAddr := l.X + int64(m.ColIndices[i])*rowBytes
					for ln, last := l.line(bAddr), l.line(bAddr+rowBytes-1); ln <= last; ln++ {
						emit(dev, ln)
					}
				}
				cBase := l.Y + row*rowBytes
				for ln, last := l.line(cBase), l.line(cBase+rowBytes-1); ln <= last; ln++ {
					cS.access(dev, ln)
				}
			}
		},
	}
}

// SpGEMMOwned returns the device-attributed row-wise Gustavson SpGEMM
// reference stream of C = A·B: the same line sequence as SpGEMM, with A
// row r's work — including its B-row dereferences — tagged owner[r].
// A's and C's row slices are homed with owner[row]; B's row-offset entry
// and row slices with owner[k] of the B row they store, so a cross-device
// A-nonzero turns its B-row fetch into inter-device traffic exactly as a
// partitioned SpGEMM would. Requires a.NumRows == b.NumRows (the square
// C = A·A products the experiments run); owner holds one label per row.
func SpGEMMOwned(a, b *sparse.CSR, cRowNNZ []int32, owner []int32, lineBytes int64) OwnedTrace {
	checkOwner(owner, a.NumRows, "SpGEMMOwned")
	if a.NumRows != b.NumRows {
		panic(fmt.Sprintf("trace: SpGEMMOwned with %d A rows but %d B rows", a.NumRows, b.NumRows))
	}
	if len(cRowNNZ) != int(a.NumRows) {
		panic(fmt.Sprintf("trace: SpGEMM with %d C row sizes for %d rows", len(cRowNNZ), a.NumRows))
	}
	cOff := make([]int64, int(a.NumRows)+1)
	for i, nnz := range cRowNNZ {
		cOff[i+1] = cOff[i] + int64(nnz)
	}
	an, bn := int64(a.NumRows), int64(b.NumRows)
	l := NewSpGEMMLayout(an, int64(a.NNZ()), bn, int64(b.NNZ()), cOff[a.NumRows], lineBytes)
	h := newHomeBuilder(l.End, lineBytes)
	claimCSR := func(roBase, colBase, valBase int64, m *sparse.CSR) {
		n := int64(m.NumRows)
		for r := int64(0); r < n; r++ {
			h.claim(roBase+r*ElemBytes, ElemBytes, owner[r])
		}
		if n > 0 {
			h.claim(roBase+n*ElemBytes, ElemBytes, owner[n-1])
		}
		for _, base := range []int64{colBase, valBase} {
			for r := int64(0); r < n; r++ {
				lo, hi := int64(m.RowOffsets[r]), int64(m.RowOffsets[r+1])
				h.claim(base+lo*ElemBytes, (hi-lo)*ElemBytes, owner[r])
			}
		}
	}
	claimCSR(l.ARowOff, l.ACol, l.AVal, a)
	claimCSR(l.BRowOff, l.BCol, l.BVal, b)
	for r := int64(0); r < an; r++ {
		h.claim(l.CRowOff+r*ElemBytes, ElemBytes, owner[r])
	}
	if an > 0 {
		h.claim(l.CRowOff+an*ElemBytes, ElemBytes, owner[an-1])
	}
	for _, base := range []int64{l.CCol, l.CVal} {
		for r := int64(0); r < an; r++ {
			h.claim(base+cOff[r]*ElemBytes, (cOff[r+1]-cOff[r])*ElemBytes, owner[r])
		}
	}
	return OwnedTrace{
		Home: h.home,
		Trace: func(emit func(int32, int64)) {
			aRoS := newOwnedStream(emit)
			aColS := newOwnedStream(emit)
			aValS := newOwnedStream(emit)
			cRoS := newOwnedStream(emit)
			cColS := newOwnedStream(emit)
			cValS := newOwnedStream(emit)
			for row := int32(0); row < a.NumRows; row++ {
				dev := owner[row]
				aRoS.access(dev, l.line(l.ARowOff+int64(row)*ElemBytes))
				aRoS.access(dev, l.line(l.ARowOff+int64(row+1)*ElemBytes))
				start, end := int64(a.RowOffsets[row]), int64(a.RowOffsets[row+1])
				for i := start; i < end; i++ {
					aColS.access(dev, l.line(l.ACol+i*ElemBytes))
					aValS.access(dev, l.line(l.AVal+i*ElemBytes))
					k := int64(a.ColIndices[i])
					emit(dev, l.line(l.BRowOff+k*ElemBytes))
					emit(dev, l.line(l.BRowOff+(k+1)*ElemBytes))
					bs, be := int64(b.RowOffsets[k]), int64(b.RowOffsets[k+1])
					if be == bs {
						continue
					}
					for ln, last := l.line(l.BCol+bs*ElemBytes), l.line(l.BCol+be*ElemBytes-1); ln <= last; ln++ {
						emit(dev, ln)
					}
					for ln, last := l.line(l.BVal+bs*ElemBytes), l.line(l.BVal+be*ElemBytes-1); ln <= last; ln++ {
						emit(dev, ln)
					}
				}
				cRoS.access(dev, l.line(l.CRowOff+int64(row)*ElemBytes))
				cRoS.access(dev, l.line(l.CRowOff+int64(row+1)*ElemBytes))
				for i := cOff[row]; i < cOff[row+1]; i++ {
					cColS.access(dev, l.line(l.CCol+i*ElemBytes))
					cValS.access(dev, l.line(l.CVal+i*ElemBytes))
				}
			}
		},
	}
}
