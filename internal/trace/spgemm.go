package trace

import (
	"fmt"

	"repro/internal/community"
	"repro/internal/sparse"
)

// SpGEMMLayout assigns non-overlapping, line-aligned base addresses to the
// nine operand arrays of C = A·B over CSR: row offsets, column indices,
// and values for each of A, B, and C.
type SpGEMMLayout struct {
	// LineBytes is the cache-line size; every base below is a multiple.
	LineBytes int64
	// ARowOff, ACol, AVal are the CSR arrays of the A operand.
	ARowOff, ACol, AVal int64
	// BRowOff, BCol, BVal are the CSR arrays of the B operand.
	BRowOff, BCol, BVal int64
	// CRowOff, CCol, CVal are the CSR arrays of the output C.
	CRowOff, CCol, CVal int64
	// End is the first byte past the last operand — the total footprint.
	End int64
}

// NewSpGEMMLayout lays the three CSR matrices out back to back with line
// alignment: A's arrays, then B's, then C's. cNNZ comes from the symbolic
// phase (kernels.SpGEMMSymbolic) — C's extent is data-dependent.
func NewSpGEMMLayout(aRows, aNNZ, bRows, bNNZ, cNNZ, lineBytes int64) SpGEMMLayout {
	align := func(x int64) int64 { return (x + lineBytes - 1) / lineBytes * lineBytes }
	l := SpGEMMLayout{LineBytes: lineBytes}
	cursor := int64(0)
	next := func(entries int64) int64 {
		base := cursor
		cursor = align(cursor + entries*ElemBytes)
		return base
	}
	l.ARowOff = next(aRows + 1)
	l.ACol = next(aNNZ)
	l.AVal = next(aNNZ)
	l.BRowOff = next(bRows + 1)
	l.BCol = next(bNNZ)
	l.BVal = next(bNNZ)
	l.CRowOff = next(aRows + 1)
	l.CCol = next(cNNZ)
	l.CVal = next(cNNZ)
	l.End = cursor
	return l
}

// line converts a byte address to a cache-line ID.
func (l SpGEMMLayout) line(addr int64) int64 { return addr / l.LineBytes }

// SpGEMM returns the row-wise Gustavson reference stream of C = A·B:
// A's arrays and C's arrays stream sequentially, while every A-nonzero
// dereferences one row of B — two row-offset entries plus the row's
// column/value segments — making B the irregular operand whose locality
// community reordering improves. cRowNNZ is the symbolic per-row output
// size (kernels.SpGEMMSymbolic's RowNNZ), needed to lay out and stream
// the data-dependent C arrays.
func SpGEMM(a, b *sparse.CSR, cRowNNZ []int32, lineBytes int64) func(emit func(int64)) {
	return spgemmStream(a, b, cRowNNZ, nil, lineBytes)
}

// SpGEMMCluster returns the cluster-wise reference stream of C = A·B: the
// Gustavson outer loop is tiled by the given contiguous row blocks, each
// distinct B row is referenced once per tile (the tile's accumulator and
// already-loaded B rows are modeled as cache-resident for the tile's
// duration), and the tile's C rows spill — stream out — at tile end. The
// row-wise stream is the degenerate case of one-row tiles.
func SpGEMMCluster(a, b *sparse.CSR, cRowNNZ []int32, tiles []community.Shard, lineBytes int64) func(emit func(int64)) {
	if tiles == nil {
		tiles = community.Shards(a.NumRows)
	}
	return spgemmStream(a, b, cRowNNZ, tiles, lineBytes)
}

// spgemmStream is the shared generator: nil tiles means row-wise
// (every row its own tile, with no dedup state needed because a CSR row's
// column indices are already distinct).
func spgemmStream(a, b *sparse.CSR, cRowNNZ []int32, tiles []community.Shard, lineBytes int64) func(emit func(int64)) {
	if len(cRowNNZ) != int(a.NumRows) {
		panic(fmt.Sprintf("trace: SpGEMM with %d C row sizes for %d rows", len(cRowNNZ), a.NumRows))
	}
	cOff := make([]int64, int(a.NumRows)+1)
	for i, nnz := range cRowNNZ {
		cOff[i+1] = cOff[i] + int64(nnz)
	}
	l := NewSpGEMMLayout(int64(a.NumRows), int64(a.NNZ()), int64(b.NumRows), int64(b.NNZ()), cOff[a.NumRows], lineBytes)
	return func(emit func(int64)) {
		aRoS := newStream(emit)
		aColS := newStream(emit)
		aValS := newStream(emit)
		cRoS := newStream(emit)
		cColS := newStream(emit)
		cValS := newStream(emit)
		// seen[k] == gen marks B row k as already loaded this tile.
		var seen []int64
		if tiles != nil {
			seen = make([]int64, b.NumRows)
		}
		tile := func(lo, hi int32, gen int64) {
			for row := lo; row < hi; row++ {
				aRoS.access(l.line(l.ARowOff + int64(row)*ElemBytes))
				aRoS.access(l.line(l.ARowOff + int64(row+1)*ElemBytes))
				start, end := int64(a.RowOffsets[row]), int64(a.RowOffsets[row+1])
				for i := start; i < end; i++ {
					aColS.access(l.line(l.ACol + i*ElemBytes))
					aValS.access(l.line(l.AVal + i*ElemBytes))
					k := int64(a.ColIndices[i])
					// The B row dereference: two offset entries, then the
					// row's column/value segments if not tile-resident.
					emit(l.line(l.BRowOff + k*ElemBytes))
					emit(l.line(l.BRowOff + (k+1)*ElemBytes))
					if seen != nil {
						if seen[k] == gen {
							continue
						}
						seen[k] = gen
					}
					bs, be := int64(b.RowOffsets[k]), int64(b.RowOffsets[k+1])
					if be == bs {
						continue
					}
					for ln, last := l.line(l.BCol+bs*ElemBytes), l.line(l.BCol+be*ElemBytes-1); ln <= last; ln++ {
						emit(ln)
					}
					for ln, last := l.line(l.BVal+bs*ElemBytes), l.line(l.BVal+be*ElemBytes-1); ln <= last; ln++ {
						emit(ln)
					}
				}
			}
			// Tile accumulators spill: the tile's C rows stream out.
			for row := lo; row < hi; row++ {
				cRoS.access(l.line(l.CRowOff + int64(row)*ElemBytes))
				cRoS.access(l.line(l.CRowOff + int64(row+1)*ElemBytes))
				for i := cOff[row]; i < cOff[row+1]; i++ {
					cColS.access(l.line(l.CCol + i*ElemBytes))
					cValS.access(l.line(l.CVal + i*ElemBytes))
				}
			}
		}
		if tiles == nil {
			for row := int32(0); row < a.NumRows; row++ {
				tile(row, row+1, 0)
			}
			return
		}
		for t, tl := range tiles {
			tile(tl.Lo, tl.Hi, int64(t)+1)
		}
	}
}
