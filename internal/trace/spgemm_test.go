package trace

import (
	"math/rand"
	"testing"

	"repro/internal/community"
	"repro/internal/gpumodel"
	"repro/internal/kernels"
	"repro/internal/sparse"
)

func spgemmTestMatrix(t *testing.T, n int32, deg int) *sparse.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	coo := sparse.NewCOO(n, n, int(n)*deg)
	for r := int32(0); r < n; r++ {
		for d := 0; d < deg; d++ {
			coo.AddSym(r, rng.Int31n(n), 1)
		}
	}
	return coo.ToCSR()
}

// TestSpGEMMLayoutDisjoint checks the nine operand arrays get
// non-overlapping line-aligned extents in declaration order.
func TestSpGEMMLayoutDisjoint(t *testing.T) {
	l := NewSpGEMMLayout(100, 700, 90, 650, 4321, 128)
	bases := []int64{l.ARowOff, l.ACol, l.AVal, l.BRowOff, l.BCol, l.BVal, l.CRowOff, l.CCol, l.CVal, l.End}
	for i := 1; i < len(bases); i++ {
		if bases[i] <= bases[i-1] {
			t.Fatalf("layout bases not strictly increasing at %d: %v", i, bases)
		}
		if bases[i]%128 != 0 {
			t.Fatalf("base %d = %d not line aligned", i, bases[i])
		}
	}
}

// TestSpGEMMClusterReducesAccesses pins the point of cluster-wise
// execution at the trace level: tiling the outer loop can only remove
// B-row reloads, so the cluster stream is never longer than the row-wise
// stream, and on a community-ordered matrix it must be strictly shorter.
func TestSpGEMMClusterReducesAccesses(t *testing.T) {
	m := spgemmTestMatrix(t, 600, 5)
	info, err := kernels.SpGEMMSymbolic(m, m)
	if err != nil {
		t.Fatal(err)
	}
	const line = 128
	row := collect(SpGEMM(m, m, info.RowNNZ, line))
	cluster := collect(SpGEMMCluster(m, m, info.RowNNZ, nil, line))
	if len(cluster) > len(row) {
		t.Fatalf("cluster-wise trace has %d accesses, row-wise only %d", len(cluster), len(row))
	}
	if len(cluster) == len(row) {
		t.Fatalf("cluster-wise trace captured no B-row reuse (%d accesses)", len(row))
	}
	// One-row tiles are exactly the row-wise schedule.
	singles := make([]community.Shard, m.NumRows)
	for i := range singles {
		singles[i] = community.Shard{Lo: int32(i), Hi: int32(i) + 1}
	}
	perRow := collect(SpGEMMCluster(m, m, info.RowNNZ, singles, line))
	if len(perRow) != len(row) {
		t.Fatalf("singleton tiles emit %d accesses, row-wise %d", len(perRow), len(row))
	}
	for i := range row {
		if perRow[i] != row[i] {
			t.Fatalf("singleton-tile stream diverges from row-wise at %d", i)
		}
	}
}

// TestSpGEMMTraceDeterministic checks two generations emit identical
// streams — the property every cache-simulation cache key relies on.
func TestSpGEMMTraceDeterministic(t *testing.T) {
	m := spgemmTestMatrix(t, 300, 4)
	info, err := kernels.SpGEMMSymbolic(m, m)
	if err != nil {
		t.Fatal(err)
	}
	for name, tr := range map[string]func(func(int64)){
		"row":     SpGEMM(m, m, info.RowNNZ, 128),
		"cluster": SpGEMMCluster(m, m, info.RowNNZ, nil, 128),
	} {
		a, b := collect(tr), collect(tr)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: streams diverge at %d", name, i)
			}
		}
	}
}

// TestSpGEMMTraceHintBound checks the gpumodel upper bound against actual
// emit counts for both kinds across degenerate and regular matrices — the
// guarantee that RecordTraceSized's capacity hint never undershoots.
func TestSpGEMMTraceHintBound(t *testing.T) {
	matrices := []*sparse.CSR{
		spgemmTestMatrix(t, 40, 3),
		spgemmTestMatrix(t, 600, 5),
		sparse.NewCOO(0, 0, 0).ToCSR(),
		sparse.NewCOO(5, 5, 0).ToCSR(), // all rows empty
	}
	const line = 128
	for _, m := range matrices {
		info, err := kernels.SpGEMMSymbolic(m, m)
		if err != nil {
			t.Fatal(err)
		}
		work := gpumodel.SpGEMMWork{Flops: info.Flops, NNZB: int64(m.NNZ()), NNZC: info.NNZC}
		for kind, tr := range map[gpumodel.Kind]func(func(int64)){
			gpumodel.SpGEMMCSR:        SpGEMM(m, m, info.RowNNZ, line),
			gpumodel.SpGEMMCSRCluster: SpGEMMCluster(m, m, info.RowNNZ, nil, line),
		} {
			k := gpumodel.Kernel{Kind: kind, Work: work}
			bound := k.TraceAccessUpperBound(int64(m.NumRows), int64(m.NNZ()), line)
			got := int64(len(collect(tr)))
			if got > bound {
				t.Fatalf("%s on %dx%d: %d accesses exceed bound %d", k.String(), m.NumRows, m.NumCols, got, bound)
			}
		}
	}
}

// TestSpGEMMTraceRowSizeMismatch pins the defensive panic on a C row-size
// slice that does not match the operand.
func TestSpGEMMTraceRowSizeMismatch(t *testing.T) {
	m := spgemmTestMatrix(t, 10, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched cRowNNZ accepted")
		}
	}()
	SpGEMM(m, m, make([]int32, 3), 128)
}
