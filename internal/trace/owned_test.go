package trace

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/kernels"
	"repro/internal/sparse"
)

// collectOwned drains an owned trace into parallel device/line slices.
func collectOwned(ot OwnedTrace) (devs []int32, lines []int64) {
	ot.Trace(func(dev int32, line int64) {
		devs = append(devs, dev)
		lines = append(lines, line)
	})
	return devs, lines
}

// blockOwner is a test-local contiguous equal split of n rows over k devices.
func blockOwner(n int32, k int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(int64(i) * int64(k) / int64(n))
	}
	return out
}

// ownedCases pairs every owned generator with its unowned counterpart over
// one matrix.
func ownedCases(t *testing.T, m *sparse.CSR, owner []int32, line int64) map[string]struct {
	flat  func(emit func(int64))
	owned OwnedTrace
} {
	t.Helper()
	coo := sparse.CSRToCOO(m)
	info, err := kernels.SpGEMMSymbolic(m, m)
	if err != nil {
		t.Fatalf("symbolic: %v", err)
	}
	return map[string]struct {
		flat  func(emit func(int64))
		owned OwnedTrace
	}{
		"spmv-csr": {SpMVCSR(m, line), SpMVCSROwned(m, owner, line)},
		"spmv-coo": {SpMVCOO(coo, line), SpMVCOOOwned(coo, owner, line)},
		"spmm-4":   {SpMMCSR(m, 4, line), SpMMCSROwned(m, 4, owner, line)},
		"spmm-97":  {SpMMCSR(m, 97, line), SpMMCSROwned(m, 97, owner, line)},
		"spgemm":   {SpGEMM(m, m, info.RowNNZ, line), SpGEMMOwned(m, m, info.RowNNZ, owner, line)},
	}
}

// TestOwnedMatchesUnowned pins the bit-identity contract: the owned
// generators must emit exactly the line sequence of their unowned
// counterparts, for a trivial single-device owner and for a nontrivial
// split (ownership may never perturb the trace, only annotate it).
func TestOwnedMatchesUnowned(t *testing.T) {
	const line = 128
	matrices := map[string]*sparse.CSR{
		"er":      gen.ErdosRenyi{Nodes: 257, AvgDegree: 6}.Generate(1),
		"planted": gen.PlantedPartition{Nodes: 300, Communities: 10, AvgDegree: 8, Mu: 0.3}.Generate(2),
	}
	for mName, m := range matrices {
		for _, k := range []int32{1, 4} {
			owner := blockOwner(m.NumRows, k)
			for name, c := range ownedCases(t, m, owner, line) {
				want := collect(c.flat)
				devs, got := collectOwned(c.owned)
				if len(got) != len(want) {
					t.Fatalf("%s/%s K=%d: owned emitted %d lines, unowned %d", mName, name, k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s K=%d: line %d is %d, want %d", mName, name, k, i, got[i], want[i])
					}
				}
				for i, d := range devs {
					if d < 0 || d >= k {
						t.Fatalf("%s/%s K=%d: access %d attributed to device %d", mName, name, k, i, d)
					}
				}
			}
		}
	}
}

// TestOwnedHomeMap checks the home map covers the whole footprint, stays in
// device range, and homes every emitted line.
func TestOwnedHomeMap(t *testing.T) {
	const line = 128
	m := gen.PlantedPartition{Nodes: 300, Communities: 10, AvgDegree: 8, Mu: 0.3}.Generate(3)
	const k = 4
	owner := blockOwner(m.NumRows, k)
	for name, c := range ownedCases(t, m, owner, line) {
		if len(c.owned.Home) == 0 {
			t.Fatalf("%s: empty home map", name)
		}
		for ln, dev := range c.owned.Home {
			if dev < 0 || dev >= k {
				t.Fatalf("%s: line %d homed on device %d", name, ln, dev)
			}
		}
		_, lines := collectOwned(c.owned)
		for i, ln := range lines {
			if ln < 0 || ln >= int64(len(c.owned.Home)) {
				t.Fatalf("%s: access %d to line %d outside home map of %d lines", name, i, ln, len(c.owned.Home))
			}
		}
	}
}

// TestOwnedRowAttribution spot-checks the attribution rule on a hand-built
// matrix: every access issued while processing row r is tagged owner[r].
func TestOwnedRowAttribution(t *testing.T) {
	// 4 rows, 2 devices: rows 0-1 on device 0, rows 2-3 on device 1.
	// Row 2 reads X[0], a remote dereference executed by device 1.
	coo := sparse.NewCOO(4, 4, 4)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(2, 0, 1)
	coo.Add(3, 3, 1)
	m := coo.ToCSR()
	owner := []int32{0, 0, 1, 1}
	ot := SpMVCSROwned(m, owner, 128)
	devs, _ := collectOwned(ot)
	// The trace is row-major, so device tags must be non-decreasing for a
	// block owner: once row 2 starts, everything is device 1.
	for i := 1; i < len(devs); i++ {
		if devs[i] < devs[i-1] {
			t.Fatalf("device tags not row-monotonic: %v", devs)
		}
	}
	if devs[0] != 0 || devs[len(devs)-1] != 1 {
		t.Fatalf("expected device 0 first and device 1 last, got %v", devs)
	}
	// X is homed per vertex: X[0] with device 0, X[3] with device 1.
	l := NewLayout(4, 4, 1, 128)
	if got := ot.Home[l.line(l.X)]; got != 0 {
		t.Fatalf("X[0] line homed on device %d, want 0", got)
	}
	if got := ot.Home[l.line(l.Y)]; got != 0 {
		t.Fatalf("Y[0] line homed on device %d, want 0", got)
	}
}

// TestOwnedValidation pins the panics on mismatched owner vectors and
// rectangular SpGEMM operands.
func TestOwnedValidation(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 16, AvgDegree: 3}.Generate(4)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("short owner", func() { SpMVCSROwned(m, make([]int32, 3), 128) })
	mustPanic("spmm owner", func() { SpMMCSROwned(m, 4, nil, 128) })
	info, err := kernels.SpGEMMSymbolic(m, m)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic("bad cRowNNZ", func() { SpGEMMOwned(m, m, info.RowNNZ[:4], make([]int32, 16), 128) })
}
