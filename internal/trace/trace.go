// Package trace generates the line-granular memory reference streams of the
// sparse kernels the paper studies: SpMV over CSR (Algorithm 1), SpMV over
// COO, and SpMM over CSR with a dense right-hand side (Section VI-D).
//
// The reference stream is what the paper's L2 model consumes: streaming
// operands (the output vector, the CSR arrays, the dense result) appear
// once per touched cache line in program order, while the irregular input
// vector (or dense B rows for SpMM) is referenced on every nonzero — the
// access pattern whose locality matrix reordering improves.
package trace

import (
	"fmt"

	"repro/internal/sparse"
)

// ElemBytes is the size of every matrix element, index, and vector entry,
// matching the paper's 4-byte compulsory-traffic model (Section IV-B).
const ElemBytes = 4

// Layout assigns non-overlapping, line-aligned base addresses to the
// operand arrays of a kernel over an n×n matrix with nnz nonzeros and an
// optional dense operand of k columns.
type Layout struct {
	// LineBytes is the cache-line size; every base below is a multiple.
	LineBytes int64
	Y         int64 // output vector / dense C
	RowOff    int64 // CSR row offsets (or COO row indices)
	Col       int64 // column indices
	Val       int64 // values
	X         int64 // input vector / dense B
	// End is the first byte past the last operand — the total footprint.
	End int64
}

// NewLayout lays the operands out back to back with line alignment:
// Y, rowOffsets, coords, values, X. For SpMM, Y and X stand for the dense
// C and B arrays (k columns each).
func NewLayout(n, nnz int64, k int64, lineBytes int64) Layout {
	return newLayout(n, nnz, k, n+1, lineBytes)
}

// NewLayoutCOO lays out the COO kernel's operands: the row-index array has
// one entry per nonzero rather than n+1 offsets.
func NewLayoutCOO(n, nnz int64, lineBytes int64) Layout {
	return newLayout(n, nnz, 1, nnz, lineBytes)
}

func newLayout(n, nnz, k, rowEntries, lineBytes int64) Layout {
	if k < 1 {
		k = 1
	}
	align := func(x int64) int64 { return (x + lineBytes - 1) / lineBytes * lineBytes }
	l := Layout{LineBytes: lineBytes}
	cursor := int64(0)
	l.Y = cursor
	cursor = align(cursor + n*k*ElemBytes)
	l.RowOff = cursor
	cursor = align(cursor + rowEntries*ElemBytes)
	l.Col = cursor
	cursor = align(cursor + nnz*ElemBytes)
	l.Val = cursor
	cursor = align(cursor + nnz*ElemBytes)
	l.X = cursor
	cursor = align(cursor + n*k*ElemBytes)
	l.End = cursor
	return l
}

// line converts a byte address to a cache-line ID.
func (l Layout) line(addr int64) int64 { return addr / l.LineBytes }

// stream coalesces sequential accesses to one array: it emits when the
// line differs from the previous line of the same stream. Each new line is
// emitted twice, approximating the multiple 32-byte sector reads a GPU
// issues against a 128-byte line: a streamed line is filled once and then
// hit by its remaining sectors, so fully-consumed streaming fills are
// correctly not counted as dead lines (Table III's metric).
type stream struct {
	last int64
	emit func(int64)
}

func newStream(emit func(int64)) *stream { return &stream{last: -1, emit: emit} }

func (s *stream) access(line int64) {
	if line != s.last {
		s.last = line
		s.emit(line)
		s.emit(line)
	}
}

// SpMVCSR returns the reference stream of Algorithm 1 over the matrix:
// rowOffsets, coords, values, and Y stream sequentially; X is dereferenced
// per nonzero through the column index.
func SpMVCSR(m *sparse.CSR, lineBytes int64) func(emit func(int64)) {
	l := NewLayout(int64(m.NumRows), int64(m.NNZ()), 1, lineBytes)
	return func(emit func(int64)) {
		roS := newStream(emit)
		colS := newStream(emit)
		valS := newStream(emit)
		yS := newStream(emit)
		for row := int64(0); row < int64(m.NumRows); row++ {
			roS.access(l.line(l.RowOff + row*ElemBytes))
			roS.access(l.line(l.RowOff + (row+1)*ElemBytes))
			start, end := int64(m.RowOffsets[row]), int64(m.RowOffsets[row+1])
			for i := start; i < end; i++ {
				colS.access(l.line(l.Col + i*ElemBytes))
				valS.access(l.line(l.Val + i*ElemBytes))
				emit(l.line(l.X + int64(m.ColIndices[i])*ElemBytes))
			}
			yS.access(l.line(l.Y + row*ElemBytes))
		}
	}
}

// SpMVCOO returns the reference stream of the COO SpMV kernel: the three
// triplet arrays stream; X is irregular per entry; Y follows the row index
// (streaming when the COO is row-sorted, irregular otherwise).
func SpMVCOO(c *sparse.COO, lineBytes int64) func(emit func(int64)) {
	l := NewLayoutCOO(int64(c.NumRows), int64(c.NNZ()), lineBytes)
	return func(emit func(int64)) {
		rowS := newStream(emit)
		colS := newStream(emit)
		valS := newStream(emit)
		yS := newStream(emit)
		for k := range c.RowIdx {
			i := int64(k)
			rowS.access(l.line(l.RowOff + i*ElemBytes))
			colS.access(l.line(l.Col + i*ElemBytes))
			valS.access(l.line(l.Val + i*ElemBytes))
			emit(l.line(l.X + int64(c.ColIdx[k])*ElemBytes))
			yS.access(l.line(l.Y + int64(c.RowIdx[k])*ElemBytes))
		}
	}
}

// SpMMCSR returns the reference stream of the SpMM kernel C = A·B with a
// dense |N|×k B: the CSR arrays and C stream; every nonzero dereferences
// the full k-element row of B (k·4 bytes, possibly spanning several
// lines) — the irregular traffic that scales with k (Table IV).
func SpMMCSR(m *sparse.CSR, k int64, lineBytes int64) func(emit func(int64)) {
	if k < 1 {
		panic(fmt.Sprintf("trace: SpMM with k = %d", k))
	}
	l := NewLayout(int64(m.NumRows), int64(m.NNZ()), k, lineBytes)
	rowBytes := k * ElemBytes
	return func(emit func(int64)) {
		roS := newStream(emit)
		colS := newStream(emit)
		valS := newStream(emit)
		cS := newStream(emit)
		for row := int64(0); row < int64(m.NumRows); row++ {
			roS.access(l.line(l.RowOff + row*ElemBytes))
			roS.access(l.line(l.RowOff + (row+1)*ElemBytes))
			start, end := int64(m.RowOffsets[row]), int64(m.RowOffsets[row+1])
			for i := start; i < end; i++ {
				colS.access(l.line(l.Col + i*ElemBytes))
				valS.access(l.line(l.Val + i*ElemBytes))
				// Touch every line spanned by B's k-element row.
				bAddr := l.X + int64(m.ColIndices[i])*rowBytes
				for ln, last := l.line(bAddr), l.line(bAddr+rowBytes-1); ln <= last; ln++ {
					emit(ln)
				}
			}
			// C row write streams across its spanned lines.
			cBase := l.Y + row*rowBytes
			for ln, last := l.line(cBase), l.line(cBase+rowBytes-1); ln <= last; ln++ {
				cS.access(ln)
			}
		}
	}
}
