package trace

import (
	"repro/internal/sparse"
)

// SpMVCSRInterleaved models the GPU's concurrent execution more closely
// than the serial row-order trace: the rows are partitioned round-robin
// into `groups` thread groups (CTAs), and the reference stream interleaves
// one row from each group in turn. The L2 of a real GPU observes exactly
// this kind of mixed stream from thousands of concurrent threads. The
// ablation experiment uses it to show the paper's conclusions are robust
// to the interleaving assumption.
func SpMVCSRInterleaved(m *sparse.CSR, lineBytes int64, groups int32) func(emit func(int64)) {
	if groups < 1 {
		groups = 1
	}
	l := NewLayout(int64(m.NumRows), int64(m.NNZ()), 1, lineBytes)
	return func(emit func(int64)) {
		// Per-group streams: each group walks its own row subsequence, so
		// streaming coalescing happens per group, as it would per SM.
		type cursor struct {
			row  int64
			roS  *stream
			colS *stream
			valS *stream
			yS   *stream
		}
		cursors := make([]cursor, groups)
		for g := int32(0); g < groups; g++ {
			cursors[g] = cursor{
				row:  int64(g),
				roS:  newStream(emit),
				colS: newStream(emit),
				valS: newStream(emit),
				yS:   newStream(emit),
			}
		}
		n := int64(m.NumRows)
		remaining := n
		for remaining > 0 {
			for g := range cursors {
				cu := &cursors[g]
				if cu.row >= n {
					continue
				}
				row := cu.row
				cu.row += int64(groups)
				remaining--
				cu.roS.access(l.line(l.RowOff + row*ElemBytes))
				cu.roS.access(l.line(l.RowOff + (row+1)*ElemBytes))
				start, end := int64(m.RowOffsets[row]), int64(m.RowOffsets[row+1])
				for i := start; i < end; i++ {
					cu.colS.access(l.line(l.Col + i*ElemBytes))
					cu.valS.access(l.line(l.Val + i*ElemBytes))
					emit(l.line(l.X + int64(m.ColIndices[i])*ElemBytes))
				}
				cu.yS.access(l.line(l.Y + row*ElemBytes))
			}
		}
	}
}

// SpMVCSRTiled models the 1-D tiled SpMV the paper's related work
// discusses (and its conclusion flags as future work for RABBIT++): the
// column space is split into tiles of `tileCols` columns, and the kernel
// makes one pass over the matrix per tile touching only the nonzeros whose
// column falls in the tile. Irregular accesses then stay within one tile's
// slice of the input vector, trading extra streaming passes of the CSR
// arrays for a bounded irregular footprint.
func SpMVCSRTiled(m *sparse.CSR, lineBytes int64, tileCols int32) func(emit func(int64)) {
	if tileCols <= 0 {
		tileCols = m.NumCols
	}
	l := NewLayout(int64(m.NumRows), int64(m.NNZ()), 1, lineBytes)
	return func(emit func(int64)) {
		for tileLo := int32(0); tileLo < m.NumCols || tileLo == 0; tileLo += tileCols {
			tileHi := tileLo + tileCols
			roS := newStream(emit)
			colS := newStream(emit)
			valS := newStream(emit)
			yS := newStream(emit)
			for row := int64(0); row < int64(m.NumRows); row++ {
				roS.access(l.line(l.RowOff + row*ElemBytes))
				roS.access(l.line(l.RowOff + (row+1)*ElemBytes))
				start, end := int64(m.RowOffsets[row]), int64(m.RowOffsets[row+1])
				touched := false
				for i := start; i < end; i++ {
					c := m.ColIndices[i]
					if c < tileLo || c >= tileHi {
						continue
					}
					// The tile pass still streams over the coords to find
					// its nonzeros (as compressed tiled formats do per
					// tile after preprocessing, we charge only the
					// touched entries).
					colS.access(l.line(l.Col + i*ElemBytes))
					valS.access(l.line(l.Val + i*ElemBytes))
					emit(l.line(l.X + int64(c)*ElemBytes))
					touched = true
				}
				if touched {
					yS.access(l.line(l.Y + row*ElemBytes))
				}
			}
			if m.NumCols == 0 {
				break
			}
		}
	}
}

// SpMVCSC returns the reference stream of the pull-style CSC SpMV kernel:
// colOffsets, row indices, values, and X stream sequentially (one X element
// per column), while the *output* vector Y is scattered through the row
// index of every nonzero — the mirror image of the CSR kernel's input
// irregularity. Reordering helps both identically because the symmetric
// permutation localizes rows and columns together.
func SpMVCSC(m *sparse.CSR, lineBytes int64) func(emit func(int64)) {
	// The CSC of m has the same array shapes as the CSR of mᵀ.
	t := m.Transpose()
	l := NewLayout(int64(t.NumRows), int64(t.NNZ()), 1, lineBytes)
	return func(emit func(int64)) {
		coS := newStream(emit)
		rowS := newStream(emit)
		valS := newStream(emit)
		xS := newStream(emit)
		for col := int64(0); col < int64(t.NumRows); col++ {
			coS.access(l.line(l.RowOff + col*ElemBytes))
			coS.access(l.line(l.RowOff + (col+1)*ElemBytes))
			xS.access(l.line(l.X + col*ElemBytes))
			start, end := int64(t.RowOffsets[col]), int64(t.RowOffsets[col+1])
			for i := start; i < end; i++ {
				rowS.access(l.line(l.Col + i*ElemBytes))
				valS.access(l.line(l.Val + i*ElemBytes))
				emit(l.line(l.Y + int64(t.ColIndices[i])*ElemBytes))
			}
		}
	}
}
