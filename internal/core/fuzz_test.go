package core

import (
	"testing"

	"repro/internal/check"
	"repro/internal/sparse"
)

// fuzzMatrix decodes a byte string into a small square CSR: the first byte
// picks the dimension, the rest is consumed pairwise as edges.
func fuzzMatrix(data []byte) *sparse.CSR {
	if len(data) == 0 {
		return sparse.NewCOO(0, 0, 0).ToCSR()
	}
	n := int32(data[0]%48) + 1
	data = data[1:]
	coo := sparse.NewCOO(n, n, len(data)/2)
	for len(data) >= 2 {
		r := int32(data[0]) % n
		c := int32(data[1]) % n
		data = data[2:]
		coo.Add(r, c, 1)
	}
	return coo.ToCSR()
}

// FuzzRabbitRoundTrip drives the full reordering pipeline on arbitrary small
// graphs: RABBIT and RABBIT++ must produce valid bijections, the permuted
// matrix must stay structurally valid, applying the inverse permutation must
// reproduce the original matrix exactly, and two runs must agree bit for bit
// (determinism).
func FuzzRabbitRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{16, 0, 1, 1, 0, 5, 6, 6, 5, 2, 2, 9, 9})
	f.Add([]byte{48, 7, 7, 7, 8, 8, 7, 1, 2, 3, 4, 5, 6, 40, 41, 41, 40})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		m := fuzzMatrix(data)
		for _, run := range []struct {
			name string
			perm func() sparse.Permutation
		}{
			{"RABBIT", func() sparse.Permutation { return Rabbit(m).Perm }},
			{"RABBIT++", func() sparse.Permutation { return RabbitPlusPlus(m).Perm }},
		} {
			p := run.perm()
			if err := check.ValidPermutation(p); err != nil {
				t.Fatalf("%s: invalid permutation: %v", run.name, err)
			}
			if len(p) != int(m.NumRows) {
				t.Fatalf("%s: permutation size %d for %d rows", run.name, len(p), m.NumRows)
			}
			pm := m.PermuteSymmetric(p)
			if err := check.ValidCSR(pm); err != nil {
				t.Fatalf("%s: permuted matrix invalid: %v", run.name, err)
			}
			back := pm.PermuteSymmetric(p.Inverse())
			if !back.Equal(m) {
				t.Fatalf("%s: inverse permutation does not round-trip", run.name)
			}
			again := run.perm()
			for i := range p {
				if p[i] != again[i] {
					t.Fatalf("%s: nondeterministic permutation at %d: %d vs %d", run.name, i, p[i], again[i])
				}
			}
		}
	})
}
