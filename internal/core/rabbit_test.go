package core

import (
	"testing"
	"testing/quick"

	"repro/internal/community"
	"repro/internal/gen"
	"repro/internal/sparse"
)

// twoCliques builds two k-cliques joined by one bridge edge.
func twoCliques(k int32) *sparse.CSR {
	coo := sparse.NewCOO(2*k, 2*k, int(4*k*k))
	for i := int32(0); i < k; i++ {
		for j := i + 1; j < k; j++ {
			coo.AddSym(i, j, 1)
			coo.AddSym(k+i, k+j, 1)
		}
	}
	coo.AddSym(0, k, 1)
	return coo.ToCSR()
}

func TestRabbitValidPermutation(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 1500, Communities: 15, AvgDegree: 10, Mu: 0.2}.Generate(1)
	rr := Rabbit(m)
	if err := rr.Perm.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := rr.Communities.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRabbitDetectsCliques(t *testing.T) {
	k := int32(12)
	m := twoCliques(k)
	rr := Rabbit(m)
	// Each clique must be a single community.
	for i := int32(1); i < k; i++ {
		if rr.Communities.Of[i] != rr.Communities.Of[0] {
			t.Fatal("Rabbit split clique A")
		}
		if rr.Communities.Of[k+i] != rr.Communities.Of[k] {
			t.Fatal("Rabbit split clique B")
		}
	}
	// Communities receive contiguous new IDs: the set of new IDs of clique
	// A members must be a contiguous range.
	checkContiguous := func(members []int32) {
		t.Helper()
		min, max := int32(1<<30), int32(-1)
		for _, v := range members {
			id := rr.Perm[v]
			if id < min {
				min = id
			}
			if id > max {
				max = id
			}
		}
		if max-min+1 != int32(len(members)) {
			t.Fatalf("community new IDs span [%d,%d] for %d members; not contiguous", min, max, len(members))
		}
	}
	var a, b []int32
	for v := int32(0); v < 2*k; v++ {
		if rr.Communities.Of[v] == rr.Communities.Of[0] {
			a = append(a, v)
		} else {
			b = append(b, v)
		}
	}
	if rr.Communities.Of[0] != rr.Communities.Of[k] {
		checkContiguous(a)
		checkContiguous(b)
	}
}

func TestRabbitCommunitiesAreContiguousInNewOrder(t *testing.T) {
	// General property: after RABBIT, every community occupies a contiguous
	// ID range (that is what dendrogram DFS guarantees).
	m := gen.PlantedPartition{Nodes: 2000, Communities: 20, AvgDegree: 12, Mu: 0.15}.Generate(2)
	rr := Rabbit(m)
	inv := rr.Perm.Inverse()
	changes := 0
	for newID := 1; newID < len(inv); newID++ {
		if rr.Communities.Of[inv[newID]] != rr.Communities.Of[inv[newID-1]] {
			changes++
		}
	}
	if int32(changes) != rr.Communities.Count-1 {
		t.Fatalf("community labels change %d times along the new order; want %d (contiguous blocks)",
			changes, rr.Communities.Count-1)
	}
}

func TestRabbitHighInsularityOnPlanted(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 3000, Communities: 30, AvgDegree: 16, Mu: 0.05}.Generate(3)
	rr := Rabbit(m)
	ins := community.Insularity(m, rr.Communities)
	if ins < 0.8 {
		t.Fatalf("Rabbit insularity %.3f on mu=0.05 planted partition, want >= 0.8", ins)
	}
	q := community.Modularity(m, rr.Communities)
	if q < 0.5 {
		t.Fatalf("Rabbit modularity %.3f, want >= 0.5", q)
	}
}

func TestRabbitMawiAnomaly(t *testing.T) {
	// Giant-hub graphs force incremental aggregation to merge nearly
	// everything into one community: high insularity, no locality benefit —
	// the paper's mawi case (Section V-B).
	m := gen.HubStar{Nodes: 4000, Hubs: 1, HubConn: 0.95, Background: 80}.Generate(4)
	rr := Rabbit(m)
	stats := Analyze(m, rr.Communities)
	if stats.LargestCommunityFraction < 0.80 {
		t.Fatalf("largest community holds %.2f of a hub-star graph; expected near-total merge",
			stats.LargestCommunityFraction)
	}
	if stats.Insularity < 0.90 {
		t.Fatalf("hub-star insularity %.3f; expected high insularity despite useless communities",
			stats.Insularity)
	}
}

func TestRabbitDeterminism(t *testing.T) {
	m := gen.RMAT{LogNodes: 10, AvgDegree: 8, A: 0.55, B: 0.18, C: 0.18, Symmetric: true}.Generate(5)
	a, b := Rabbit(m), Rabbit(m)
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			t.Fatalf("Rabbit is nondeterministic at vertex %d", i)
		}
	}
}

func TestRabbitEmptyAndSingleton(t *testing.T) {
	empty := &sparse.CSR{NumRows: 5, NumCols: 5, RowOffsets: make([]int32, 6)}
	rr := Rabbit(empty)
	if err := rr.Perm.Validate(); err != nil {
		t.Fatal(err)
	}
	if rr.Communities.Count != 5 {
		t.Fatalf("empty matrix should stay as %d singleton communities, got %d", 5, rr.Communities.Count)
	}
	one := &sparse.CSR{NumRows: 1, NumCols: 1, RowOffsets: []int32{0, 1}, ColIndices: []int32{0}, Values: []float32{1}}
	rr = Rabbit(one)
	if len(rr.Perm) != 1 || rr.Perm[0] != 0 {
		t.Fatalf("singleton perm = %v", rr.Perm)
	}
}

func TestReorderDesignSpaceValidity(t *testing.T) {
	m := gen.HubbyCommunities{Nodes: 1200, Communities: 12, AvgDegree: 8, Mu: 0.25, Hubs: 40, HubDegree: 30}.Generate(6)
	rr := Rabbit(m)
	for _, groupIns := range []bool{false, true} {
		for _, hub := range []HubMode{HubNone, HubSort, HubGroup} {
			res := ModifyRabbit(m, rr, Options{GroupInsular: groupIns, Hub: hub})
			if err := res.Perm.Validate(); err != nil {
				t.Fatalf("insular=%v hub=%v: %v", groupIns, hub, err)
			}
			// Reordering preserves the nonzero count and structure validity.
			pm := m.PermuteSymmetric(res.Perm)
			if pm.NNZ() != m.NNZ() {
				t.Fatalf("insular=%v hub=%v: nnz changed", groupIns, hub)
			}
			if err := pm.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestGroupInsularPutsInsularFirst(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 1000, Communities: 10, AvgDegree: 8, Mu: 0.3}.Generate(7)
	res := Reorder(m, Options{GroupInsular: true})
	// After grouping, all insular nodes must have smaller new IDs than all
	// non-insular nodes.
	var maxInsular, minNonInsular int32 = -1, 1 << 30
	nonInsularExists := false
	for v := int32(0); v < m.NumRows; v++ {
		id := res.Perm[v]
		if res.Insular[v] {
			if id > maxInsular {
				maxInsular = id
			}
		} else {
			nonInsularExists = true
			if id < minNonInsular {
				minNonInsular = id
			}
		}
	}
	if nonInsularExists && maxInsular > minNonInsular {
		t.Fatalf("insular nodes extend to ID %d but non-insular start at %d", maxInsular, minNonInsular)
	}
}

func TestHubGroupPutsHubsFirstKeepingOrder(t *testing.T) {
	m := gen.HubbyCommunities{Nodes: 1000, Communities: 10, AvgDegree: 8, Mu: 0.25, Hubs: 30, HubDegree: 40}.Generate(8)
	rr := Rabbit(m)
	grouped := ModifyRabbit(m, rr, Options{Hub: HubGroup})
	var hubIDs, rabbitHubIDs []int32
	for v := int32(0); v < m.NumRows; v++ {
		if grouped.Hub[v] {
			hubIDs = append(hubIDs, v)
		}
	}
	if len(hubIDs) == 0 {
		t.Fatal("no hubs detected in a hub-heavy graph")
	}
	// Hubs occupy the first len(hubIDs) new IDs.
	for _, v := range hubIDs {
		if int(grouped.Perm[v]) >= len(hubIDs) {
			t.Fatalf("hub %d has new ID %d beyond the hub prefix of %d", v, grouped.Perm[v], len(hubIDs))
		}
	}
	// Relative order among hubs matches RABBIT's. Sort hubs by their new
	// IDs in both orderings and compare sequences.
	rabbitHubIDs = append(rabbitHubIDs, hubIDs...)
	sortByPerm(hubIDs, grouped.Perm)
	sortByPerm(rabbitHubIDs, rr.Perm)
	for i := range hubIDs {
		if hubIDs[i] != rabbitHubIDs[i] {
			t.Fatal("HUBGROUP changed the relative order among hubs")
		}
	}
}

func TestHubSortOrdersByInDegree(t *testing.T) {
	m := gen.HubbyCommunities{Nodes: 1000, Communities: 10, AvgDegree: 8, Mu: 0.25, Hubs: 30, HubDegree: 40}.Generate(9)
	res := Reorder(m, Options{Hub: HubSort})
	inDeg := m.InDegrees()
	var hubs []int32
	for v := int32(0); v < m.NumRows; v++ {
		if res.Hub[v] {
			hubs = append(hubs, v)
		}
	}
	sortByPerm(hubs, res.Perm)
	for i := 1; i < len(hubs); i++ {
		if inDeg[hubs[i-1]] < inDeg[hubs[i]] {
			t.Fatalf("HUBSORT hub %d (deg %d) precedes hub %d (deg %d)",
				hubs[i-1], inDeg[hubs[i-1]], hubs[i], inDeg[hubs[i]])
		}
	}
}

func TestHubNodesThreshold(t *testing.T) {
	// Star: node 0 has in-degree 4, others 1; average degree = 8/5.
	coo := sparse.NewCOO(5, 5, 8)
	for v := int32(1); v < 5; v++ {
		coo.AddSym(0, v, 1)
	}
	m := coo.ToCSR()
	hub := HubNodes(m)
	if !hub[0] {
		t.Fatal("center of a star must be a hub")
	}
	for v := 1; v < 5; v++ {
		if hub[v] {
			t.Fatalf("leaf %d flagged as hub", v)
		}
	}
}

func TestQuickReorderPreservesSemantics(t *testing.T) {
	// SpMV semantics: y' = P·A·Pᵀ applied to P·x equals P·(A·x). Here we
	// check the pattern-level equivalent: the permuted matrix relates
	// entries exactly as the original (spot-check via round trip).
	f := func(seed uint64, modeRaw uint8) bool {
		m := gen.ErdosRenyi{Nodes: 300, AvgDegree: 6}.Generate(seed)
		opts := Options{GroupInsular: modeRaw&1 == 1, Hub: HubMode(modeRaw % 3)}
		res := Reorder(m, opts)
		if !res.Perm.IsValid() {
			return false
		}
		back := m.PermuteSymmetric(res.Perm).PermuteSymmetric(res.Perm.Inverse())
		return back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRanges(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 800, Communities: 8, AvgDegree: 8, Mu: 0.2}.Generate(10)
	rr := Rabbit(m)
	s := Analyze(m, rr.Communities)
	if s.Insularity < 0 || s.Insularity > 1 {
		t.Fatalf("Insularity out of range: %v", s.Insularity)
	}
	if s.InsularNodeFraction < 0 || s.InsularNodeFraction > 1 {
		t.Fatalf("InsularNodeFraction out of range: %v", s.InsularNodeFraction)
	}
	if s.Skew < 0 || s.Skew > 1 {
		t.Fatalf("Skew out of range: %v", s.Skew)
	}
	if s.LargestCommunityFraction <= 0 || s.LargestCommunityFraction > 1 {
		t.Fatalf("LargestCommunityFraction out of range: %v", s.LargestCommunityFraction)
	}
	if s.Communities <= 0 || s.Communities > m.NumRows {
		t.Fatalf("Communities out of range: %v", s.Communities)
	}
}

// sortByPerm sorts vertices by their new IDs under p.
func sortByPerm(vs []int32, p sparse.Permutation) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && p[vs[j-1]] > p[vs[j]]; j-- {
			vs[j-1], vs[j] = vs[j], vs[j-1]
		}
	}
}

func TestRabbitResolutionControlsCommunityCount(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 2000, Communities: 20, AvgDegree: 12, Mu: 0.2}.Generate(12)
	coarse := RabbitResolution(m, 0.25)
	standard := RabbitResolution(m, 1.0)
	fine := RabbitResolution(m, 4.0)
	for _, rr := range []*RabbitResult{coarse, standard, fine} {
		if err := rr.Perm.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if coarse.Communities.Count > fine.Communities.Count {
		t.Fatalf("gamma=0.25 found %d communities, gamma=4 found %d; higher resolution must not merge more",
			coarse.Communities.Count, fine.Communities.Count)
	}
	if standard.Communities.Count != Rabbit(m).Communities.Count {
		t.Fatal("RabbitResolution(m, 1) must match Rabbit(m)")
	}
}

func TestDendrogramDepthAndSubtrees(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 1000, Communities: 10, AvgDegree: 10, Mu: 0.1}.Generate(13)
	rr := Rabbit(m)
	depth := rr.DendrogramDepth()
	if depth <= 0 {
		t.Fatalf("dendrogram depth = %d on a clustered graph, want > 0", depth)
	}
	sizes := rr.SubtreeSizes()
	// Root subtree sizes must equal community sizes.
	commSizes := rr.Communities.Sizes()
	rootTotal := int32(0)
	for v := int32(0); v < m.NumRows; v++ {
		if rr.Parent[v] == -1 {
			rootTotal += sizes[v]
			if sizes[v] != commSizes[rr.Communities.Of[v]] {
				t.Fatalf("root %d subtree %d != community size %d", v, sizes[v], commSizes[rr.Communities.Of[v]])
			}
		}
	}
	if rootTotal != m.NumRows {
		t.Fatalf("root subtrees cover %d of %d vertices", rootTotal, m.NumRows)
	}
}

func TestDendrogramDepthSingletons(t *testing.T) {
	empty := &sparse.CSR{NumRows: 6, NumCols: 6, RowOffsets: make([]int32, 7)}
	rr := Rabbit(empty)
	if rr.DendrogramDepth() != 0 {
		t.Fatalf("singleton forest depth = %d, want 0", rr.DendrogramDepth())
	}
}
