package core

import (
	"context"
	"sort"
	"sync"

	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/sparse"
)

// RabbitSharded is the parallel tier of the RABBIT aggregation: community
// detection runs independently on stable contiguous vertex shards
// (community.Shards), and the shard-local dendrograms are then joined by a
// sequential coarse merge pass over the surviving community roots.
//
// Determinism is by construction, not by luck: shard boundaries are a pure
// function of the vertex count, workers only decide which goroutine
// processes which shard (every per-shard result lands in its own slot),
// and the coarse merge visits roots in a canonical order (ascending
// aggregated strength, ties by vertex ID) with the same gainEps
// tie-breaking as the sequential merge loop. The permutation is therefore
// byte-identical at every worker count — the property the worker-count
// determinism matrix pins.
func RabbitSharded(m *sparse.CSR, workers int) *RabbitResult {
	// A background context never cancels, so the error path is unreachable.
	rr, _ := RabbitShardedCtx(context.Background(), m, workers)
	return rr
}

// shardLocal is the phase-1 outcome of one shard: the intra-shard merges
// in the order they happened (replayed into the global union-find in shard
// order) and the cancellation error, if any. Each shard writes only its
// own slot, so the fan-in is ordered regardless of goroutine scheduling.
type shardLocal struct {
	merges [][2]int32 // {target u, source v} in merge order
	err    error
}

// RabbitShardedCtx is RabbitSharded with cooperative cancellation: both
// the shard-local loops and the coarse merge check ctx every cancelStride
// vertices. A nil error guarantees a result identical to RabbitSharded's.
func RabbitShardedCtx(ctx context.Context, m *sparse.CSR, workers int) (*RabbitResult, error) {
	if !m.IsSquare() {
		panic("core: RabbitSharded requires a square matrix")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sym := m.Symmetrize()
	n := sym.NumRows

	strength := make([]float64, n)
	var m2 float64
	for v := int32(0); v < n; v++ {
		cols, _ := sym.Row(v)
		for _, c := range cols {
			if c != v {
				strength[v]++
			}
		}
		m2 += strength[v]
	}

	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	children := make([][]int32, n)

	shards := community.Shards(n)
	if workers < 1 {
		workers = 1
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	// Phase 1: shard-local aggregation. Shard i is handled by worker
	// i%workers; all shared writes (parent, children, strength, locals[i])
	// are at shard-owned indices, so no ordering between goroutines can
	// become visible in the result.
	locals := make([]shardLocal, len(shards))
	if m2 > 0 {
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				for si := wi; si < len(shards); si += workers {
					locals[si] = shardAggregate(ctx, sym, shards[si], strength, m2, parent, children)
				}
			}(wi)
		}
		wg.Wait()
	}
	for _, lr := range locals {
		if lr.err != nil {
			return nil, lr.err
		}
	}

	// Replay the shard merges into one union-find, in shard order, so the
	// global community structure is independent of goroutine scheduling.
	uf := community.NewUnionFind(n)
	for _, lr := range locals {
		for _, pair := range lr.merges {
			uf.UnionInto(pair[0], pair[1])
		}
	}

	// Phase 2: sequential coarse merge over the shard-local roots, using
	// the cross-root edges phase 1 ignored (cut edges plus intra-shard
	// edges between different local communities).
	if m2 > 0 {
		if err := coarseMerge(ctx, sym, uf, strength, m2, parent, children); err != nil {
			return nil, err
		}
	}

	return &RabbitResult{
		Perm:        check.Perm(sparse.FromNewOrder(dendrogramOrder(n, parent, children))),
		Communities: community.FromLabels(uf.Labels()),
		Parent:      parent,
		Children:    children,
	}, nil
}

// shardAggregate runs the RABBIT merge loop restricted to one shard: only
// edges with both endpoints inside [sh.Lo, sh.Hi) participate, vertices
// are visited by increasing initial strength (ties by ID), and merges use
// the full-graph m2 so gains are comparable across shards. It mutates
// parent/children/strength only at in-shard indices.
func shardAggregate(ctx context.Context, sym *sparse.CSR, sh community.Shard, strength []float64, m2 float64, parent []int32, children [][]int32) shardLocal {
	size := sh.Len()
	if size == 0 {
		return shardLocal{}
	}
	// Local adjacency over shard-relative indices, intra-shard edges only.
	adj := make([][]edge, size)
	for v := sh.Lo; v < sh.Hi; v++ {
		cols, _ := sym.Row(v)
		a := make([]edge, 0, len(cols))
		for _, c := range cols {
			if c != v && c >= sh.Lo && c < sh.Hi {
				a = append(a, edge{to: c - sh.Lo, w: 1})
			}
		}
		adj[v-sh.Lo] = a
	}

	uf := community.NewUnionFind(size)
	order := make([]int32, size)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return strength[sh.Lo+order[a]] < strength[sh.Lo+order[b]]
	})

	weightTo := make([]float64, size)
	stamp := make([]int64, size)
	var epoch int64
	touched := make([]int32, 0, 64)
	var out shardLocal

	for i, v := range order {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				out.err = err
				return out
			}
		}
		epoch++
		touched = touched[:0]
		for _, e := range adj[v] {
			r := uf.Find(e.to)
			if r == v {
				continue
			}
			if stamp[r] != epoch {
				stamp[r] = epoch
				weightTo[r] = 0
				touched = append(touched, r)
			}
			weightTo[r] += e.w
		}
		adj[v] = adj[v][:0]
		for _, r := range touched {
			adj[v] = append(adj[v], edge{to: r, w: weightTo[r]})
		}

		var best int32 = -1
		bestGain := 0.0
		for _, r := range touched {
			gain := 2 * (weightTo[r]/m2 - (strength[sh.Lo+v]/m2)*(strength[sh.Lo+r]/m2))
			d := gain - bestGain
			if d > gainEps || (d > -gainEps && gain > gainEps && best >= 0 && r < best) {
				bestGain = gain
				best = r
			}
		}
		if best < 0 || bestGain <= 0 {
			continue
		}
		u := best
		uf.UnionInto(u, v)
		strength[sh.Lo+u] += strength[sh.Lo+v]
		parent[sh.Lo+v] = sh.Lo + u
		children[sh.Lo+u] = append(children[sh.Lo+u], sh.Lo+v)
		out.merges = append(out.merges, [2]int32{sh.Lo + u, sh.Lo + v})
		for _, e := range adj[v] {
			if e.to != u {
				adj[u] = append(adj[u], e)
			}
		}
		adj[v] = nil
	}
	return out
}

// coarseMerge is phase 2: one more RABBIT merge pass over the current
// community roots, fed by every edge whose endpoints resolved to different
// roots. Roots are visited by increasing aggregated strength (ties by ID)
// and merges extend the same vertex-level dendrogram, so the final DFS
// needs no special casing for the two levels.
func coarseMerge(ctx context.Context, sym *sparse.CSR, uf *community.UnionFind, strength []float64, m2 float64, parent []int32, children [][]int32) error {
	n := sym.NumRows
	adj := make([][]edge, n)
	var roots []int32
	for v := int32(0); v < n; v++ {
		if parent[v] == -1 {
			roots = append(roots, v)
		}
	}
	for v := int32(0); v < n; v++ {
		rv := uf.Find(v)
		cols, _ := sym.Row(v)
		for _, c := range cols {
			if c == v {
				continue
			}
			if rc := uf.Find(c); rc != rv {
				adj[rv] = append(adj[rv], edge{to: rc, w: 1})
			}
		}
	}

	order := make([]int32, len(roots))
	copy(order, roots)
	sort.SliceStable(order, func(a, b int) bool {
		return strength[order[a]] < strength[order[b]]
	})

	weightTo := make([]float64, n)
	stamp := make([]int64, n)
	var epoch int64
	touched := make([]int32, 0, 64)

	for i, v := range order {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		epoch++
		touched = touched[:0]
		for _, e := range adj[v] {
			r := uf.Find(e.to)
			if r == v {
				continue
			}
			if stamp[r] != epoch {
				stamp[r] = epoch
				weightTo[r] = 0
				touched = append(touched, r)
			}
			weightTo[r] += e.w
		}
		adj[v] = adj[v][:0]
		for _, r := range touched {
			adj[v] = append(adj[v], edge{to: r, w: weightTo[r]})
		}

		var best int32 = -1
		bestGain := 0.0
		for _, r := range touched {
			gain := 2 * (weightTo[r]/m2 - (strength[v]/m2)*(strength[r]/m2))
			d := gain - bestGain
			if d > gainEps || (d > -gainEps && gain > gainEps && best >= 0 && r < best) {
				bestGain = gain
				best = r
			}
		}
		if best < 0 || bestGain <= 0 {
			continue
		}
		u := best
		uf.UnionInto(u, v)
		strength[u] += strength[v]
		parent[v] = u
		children[u] = append(children[u], v)
		for _, e := range adj[v] {
			if e.to != u {
				adj[u] = append(adj[u], e)
			}
		}
		adj[v] = nil
	}
	return nil
}

// dendrogramOrder lists vertices in new-ID order by depth-first traversal
// of the merge forest: roots in ascending ID order, children in merge
// order. Shared by the sequential and sharded RABBIT paths.
func dendrogramOrder(n int32, parent []int32, children [][]int32) []int32 {
	newOrder := make([]int32, 0, n)
	stack := make([]int32, 0, 64)
	for v := int32(0); v < n; v++ {
		if parent[v] != -1 {
			continue
		}
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			newOrder = append(newOrder, x)
			kids := children[x]
			for i := len(kids) - 1; i >= 0; i-- {
				stack = append(stack, kids[i])
			}
		}
	}
	return newOrder
}
