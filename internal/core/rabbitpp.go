package core

import (
	"context"
	"sort"

	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/sparse"
)

// HubMode selects how hub nodes (in-degree above the average degree) are
// placed after RABBIT ordering — the second modification of Figure 5.
type HubMode int

const (
	// HubNone leaves hub placement to RABBIT.
	HubNone HubMode = iota
	// HubSort packs hubs first, in decreasing order of in-degree
	// (RABBIT+HUBSORT in Table II). The paper finds this consistently
	// *hurts* because it destroys the community structure RABBIT found
	// among the hubs.
	HubSort
	// HubGroup packs hubs first while preserving RABBIT's relative order
	// among them (RABBIT+HUBGROUP), which keeps hub community structure
	// intact and is the winning design point.
	HubGroup
)

// String returns the mode name as used in Table II.
func (h HubMode) String() string {
	switch h {
	case HubNone:
		return "RABBIT"
	case HubSort:
		return "RABBIT+HUBSORT"
	case HubGroup:
		return "RABBIT+HUBGROUP"
	default:
		return "HubMode(?)"
	}
}

// Options spans the design space of RABBIT modifications evaluated in
// Table II: whether to group insular nodes ahead of non-insular ones
// (modification 1 of Figure 5) and how to place hub nodes (modification 2).
type Options struct {
	GroupInsular bool
	Hub          HubMode
}

// PlusPlusOptions is the winning design point, RABBIT++: group insular
// nodes first, then group (not sort) hubs.
func PlusPlusOptions() Options { return Options{GroupInsular: true, Hub: HubGroup} }

// Result is the outcome of a (possibly modified) RABBIT reordering.
type Result struct {
	Perm        sparse.Permutation
	Communities community.Assignment
	// Insular flags nodes whose every incident nonzero stays inside their
	// community.
	Insular []bool
	// Hub flags nodes whose in-degree exceeds the matrix's average degree.
	Hub []bool
	// Rabbit is the underlying unmodified RABBIT result.
	Rabbit *RabbitResult
}

// Reorder runs RABBIT and applies the requested modifications. With the
// zero Options it returns plain RABBIT's ordering.
func Reorder(m *sparse.CSR, opts Options) *Result {
	rr := Rabbit(m)
	return ModifyRabbit(m, rr, opts)
}

// ReorderCtx is Reorder with cooperative cancellation: the underlying
// RABBIT detection checks ctx throughout its merge loop, and the Figure 5
// modifications (which are cheap relative to detection) check once before
// running. A nil error guarantees a result identical to Reorder's.
func ReorderCtx(ctx context.Context, m *sparse.CSR, opts Options) (*Result, error) {
	rr, err := RabbitCtx(ctx, m)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ModifyRabbit(m, rr, opts), nil
}

// RabbitPlusPlus runs the full RABBIT++ pipeline: RABBIT, then insular-node
// grouping, then hub grouping.
func RabbitPlusPlus(m *sparse.CSR) *Result {
	return Reorder(m, PlusPlusOptions())
}

// ModifyRabbit applies the Figure 5 modifications to an existing RABBIT
// result, allowing the expensive community detection to be shared across
// the Table II design-space sweep.
func ModifyRabbit(m *sparse.CSR, rr *RabbitResult, opts Options) *Result {
	res := &Result{
		Communities: rr.Communities,
		Insular:     community.InsularNodes(m, rr.Communities),
		Hub:         HubNodes(m),
		Rabbit:      rr,
	}

	// Current ordering as a listing of old IDs in new-ID order.
	order := make([]int32, len(rr.Perm))
	for old, new := range rr.Perm {
		order[new] = int32(old)
	}

	// Modification 1: stable-partition insular nodes ahead of non-insular
	// nodes, each side keeping RABBIT's relative order.
	if opts.GroupInsular {
		order = stablePartition(order, func(v int32) bool { return res.Insular[v] })
	}

	// Modification 2: pack hub nodes first. HUBGROUP keeps the current
	// relative order among hubs; HUBSORT reorders them by decreasing
	// in-degree.
	switch opts.Hub {
	case HubNone:
	case HubGroup:
		order = stablePartition(order, func(v int32) bool { return res.Hub[v] })
	case HubSort:
		order = stablePartition(order, func(v int32) bool { return res.Hub[v] })
		inDeg := m.InDegrees()
		nHubs := 0
		for _, h := range res.Hub {
			if h {
				nHubs++
			}
		}
		hubs := order[:nHubs]
		sort.SliceStable(hubs, func(a, b int) bool { return inDeg[hubs[a]] > inDeg[hubs[b]] })
	}

	res.Perm = check.Perm(sparse.FromNewOrder(order))
	return res
}

// HubNodes flags every node whose in-degree exceeds the average degree of
// the matrix, the hub definition the paper takes from prior degree-based
// reordering work (Section VI-A).
func HubNodes(m *sparse.CSR) []bool {
	avg := m.AverageDegree()
	inDeg := m.InDegrees()
	hub := make([]bool, m.NumRows)
	for i, d := range inDeg {
		hub[i] = float64(d) > avg
	}
	return hub
}

// stablePartition returns the elements satisfying pred first, then the
// rest, each group in original order.
func stablePartition(s []int32, pred func(int32) bool) []int32 {
	out := make([]int32, 0, len(s))
	for _, v := range s {
		if pred(v) {
			out = append(out, v)
		}
	}
	for _, v := range s {
		if !pred(v) {
			out = append(out, v)
		}
	}
	return out
}
