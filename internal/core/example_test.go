package core_test

import (
	"fmt"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/sparse"
)

// twoTriangles builds two triangles joined by one edge: the textbook
// two-community graph.
func twoTriangles() *sparse.CSR {
	coo := sparse.NewCOO(6, 6, 14)
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}, {2, 3}} {
		coo.AddSym(e[0], e[1], 1)
	}
	return coo.ToCSR()
}

// ExampleRabbit shows the core pipeline: detect communities, read the
// quality metrics, and apply the ordering.
func ExampleRabbit() {
	m := twoTriangles()
	rr := core.Rabbit(m)
	fmt.Println("communities:", rr.Communities.Count)
	fmt.Printf("insularity: %.2f\n", community.Insularity(m, rr.Communities))
	fmt.Println("valid permutation:", rr.Perm.IsValid())
	// Output:
	// communities: 2
	// insularity: 0.86
	// valid permutation: true
}

// ExampleRabbitPlusPlus shows the paper's enhanced ordering and its
// diagnostic outputs.
func ExampleRabbitPlusPlus() {
	m := twoTriangles()
	res := core.RabbitPlusPlus(m)
	insular := 0
	for _, b := range res.Insular {
		if b {
			insular++
		}
	}
	fmt.Println("insular nodes:", insular)
	fmt.Println("reordered nnz unchanged:", m.PermuteSymmetric(res.Perm).NNZ() == m.NNZ())
	// Output:
	// insular nodes: 4
	// reordered nnz unchanged: true
}
