package core

import (
	"repro/internal/community"
	"repro/internal/quality"
	"repro/internal/sparse"
)

// CommunityStats summarizes the community-quality metrics the paper uses in
// Section V to explain when RABBIT succeeds.
type CommunityStats struct {
	// Insularity is the fraction of nonzeros whose endpoints share a
	// community.
	Insularity float64
	// Modularity is the Newman–Girvan modularity of the detected
	// communities.
	Modularity float64
	// InsularNodeFraction is the fraction of nodes with no
	// inter-community edges (Figure 4).
	InsularNodeFraction float64
	// AvgCommunitySizeNorm is the mean community size divided by the node
	// count; the paper correlates this with insularity (Pearson ≈ −0.47).
	AvgCommunitySizeNorm float64
	// LargestCommunityFraction is the largest community's share of all
	// nodes; ~0.98 for mawi, diagnosing its anomaly.
	LargestCommunityFraction float64
	// Skew is the fraction of nonzeros owned by the top 10% most
	// connected rows (Section V-B).
	Skew float64
	// Communities is the number of detected communities.
	Communities int32
}

// Analyze computes the community-quality statistics of a detection result
// over the matrix it was detected on.
func Analyze(m *sparse.CSR, a community.Assignment) CommunityStats {
	return CommunityStats{
		Insularity:               community.Insularity(m, a),
		Modularity:               community.Modularity(m, a),
		InsularNodeFraction:      community.InsularFraction(m, a),
		AvgCommunitySizeNorm:     a.AverageSize() / float64(m.NumRows),
		LargestCommunityFraction: a.LargestFraction(),
		Skew:                     quality.DegreeSkew(m),
		Communities:              a.Count,
	}
}

// DendrogramDepth returns the maximum merge-tree depth of the RABBIT
// result. RABBIT was designed to map hierarchical communities onto
// hierarchical caches (Section V-A); the dendrogram depth measures how
// much hierarchy the detection actually found: 0 for all-singleton
// detection, deeper trees for nested community structure.
func (rr *RabbitResult) DendrogramDepth() int {
	depth := make([]int, len(rr.Parent))
	for i := range depth {
		depth[i] = -1
	}
	var depthOf func(v int32) int
	depthOf = func(v int32) int {
		if depth[v] >= 0 {
			return depth[v]
		}
		if rr.Parent[v] == -1 {
			depth[v] = 0
		} else {
			depth[v] = depthOf(rr.Parent[v]) + 1
		}
		return depth[v]
	}
	max := 0
	for v := range rr.Parent {
		if d := depthOf(int32(v)); d > max {
			max = d
		}
	}
	return max
}

// SubtreeSizes returns, for every vertex, the number of vertices in its
// dendrogram subtree (itself included). Roots carry their community sizes;
// inner values expose the nested sub-community structure RABBIT's DFS
// ordering lays out contiguously.
func (rr *RabbitResult) SubtreeSizes() []int32 {
	n := len(rr.Parent)
	sizes := make([]int32, n)
	for i := range sizes {
		sizes[i] = 1
	}
	// Children are recorded in merge order; accumulate bottom-up by
	// processing vertices in reverse topological order. Parents always
	// have a dendrogram path to a root, so repeated passes are unneeded:
	// children were merged strictly before their parents grew, and the
	// DFS order in Perm is a valid topological order (parents precede
	// children). Walk it backwards.
	order := make([]int32, n)
	for old, new := range rr.Perm {
		order[new] = int32(old)
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		if p := rr.Parent[v]; p != -1 {
			sizes[p] += sizes[v]
		}
	}
	return sizes
}
