// Package core implements the paper's primary contribution: the RABBIT
// community-based matrix reordering (Arai et al., IPDPS'16, reimplemented
// from scratch) and the paper's enhanced RABBIT++ variant, which
// additionally groups insular nodes and hub nodes (Section VI).
//
//repro:deterministic
package core

import (
	"context"
	"sort"

	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/sparse"
)

// cancelStride is how many merge-loop iterations run between cooperative
// cancellation checks. Each iteration touches one vertex's aggregated
// adjacency, so the stride bounds post-cancellation latency to a few
// hundred adjacency scans.
const cancelStride = 256

// gainEps is the tolerance for modularity-gain ties. Gains are sums of
// O(n) float64 terms, so exact equality between two candidates is
// evaluation-order luck; anything within gainEps is treated as a tie and
// broken deterministically by community ID.
const gainEps = 1e-12

// RabbitResult carries everything RABBIT produces: the new ordering, the
// detected community assignment, and the dendrogram (merge forest) that the
// ordering is a DFS of.
type RabbitResult struct {
	Perm        sparse.Permutation
	Communities community.Assignment
	// Parent[v] is the vertex v's community was merged into, or -1 for
	// community roots.
	Parent []int32
	// Children[u] lists the vertices merged into u, in merge order.
	Children [][]int32
}

// edge is one aggregated adjacency entry of a community representative.
// The target may go stale as roots merge; it is re-resolved (and the list
// compacted) whenever the representative is processed.
type edge struct {
	to int32
	w  float64
}

// Rabbit performs community detection by incremental aggregation and
// derives a vertex ordering from the resulting dendrogram.
//
// The algorithm visits vertices in increasing order of degree. Each visited
// vertex (together with the community it currently represents) merges into
// the neighboring community that maximizes the modularity gain
//
//	ΔQ(u, v) = 2·( w_uv/(2m) − (d_u/(2m))·(d_v/(2m)) )
//
// provided the best gain is positive. Merges are recorded as dendrogram
// edges; the final ordering assigns consecutive new IDs by depth-first
// traversal of each community's dendrogram, which lays every community (and
// recursively every sub-community) out contiguously — the property that
// maps hierarchical community structure onto the cache hierarchy.
func Rabbit(m *sparse.CSR) *RabbitResult {
	return RabbitResolution(m, 1.0)
}

// RabbitCtx is Rabbit with cooperative cancellation: the merge loop checks
// ctx every cancelStride vertices and returns ctx.Err() if the context is
// done. A nil error guarantees a result identical to Rabbit's.
func RabbitCtx(ctx context.Context, m *sparse.CSR) (*RabbitResult, error) {
	return RabbitResolutionCtx(ctx, m, 1.0)
}

// RabbitResolution runs RABBIT with a resolution multiplier γ on the null
// model term: merges require w_uv/(2m) > γ·(d_u d_v)/(2m)². γ = 1 is
// standard modularity; γ > 1 favors more, smaller communities and γ < 1
// fewer, larger ones (the resolution-limit knob, probed by the
// abl-resolution experiment).
func RabbitResolution(m *sparse.CSR, gamma float64) *RabbitResult {
	// A background context never cancels, so the error path is unreachable.
	rr, _ := RabbitResolutionCtx(context.Background(), m, gamma)
	return rr
}

// RabbitResolutionCtx is RabbitResolution with cooperative cancellation.
// The visit loop checks ctx every cancelStride vertices; on cancellation it
// abandons the partial dendrogram and returns (nil, ctx.Err()).
func RabbitResolutionCtx(ctx context.Context, m *sparse.CSR, gamma float64) (*RabbitResult, error) {
	if !m.IsSquare() {
		panic("core: Rabbit requires a square matrix")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sym := m.Symmetrize()
	n := sym.NumRows

	// Strength (total degree) per community representative, self-loops
	// excluded; 2m is the sum of strengths.
	strength := make([]float64, n)
	var m2 float64
	for v := int32(0); v < n; v++ {
		cols, _ := sym.Row(v)
		for _, c := range cols {
			if c != v {
				strength[v]++
			}
		}
		m2 += strength[v]
	}

	// Per-representative aggregated adjacency as slices. Map-free: stale
	// and duplicate targets are tolerated and compacted on processing via
	// the epoch-stamped accumulator below.
	adj := make([][]edge, n)
	for v := int32(0); v < n; v++ {
		cols, _ := sym.Row(v)
		a := make([]edge, 0, len(cols))
		for _, c := range cols {
			if c != v {
				a = append(a, edge{to: c, w: 1})
			}
		}
		adj[v] = a
	}

	uf := community.NewUnionFind(n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	children := make([][]int32, n)

	// Visit vertices by increasing original degree, ties by ID.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return strength[order[a]] < strength[order[b]]
	})

	// Epoch-stamped accumulator: weightTo[r] is valid iff stamp[r] equals
	// the current epoch; touched lists the valid roots in first-touch
	// order, keeping everything deterministic.
	weightTo := make([]float64, n)
	stamp := make([]int64, n)
	var epoch int64
	touched := make([]int32, 0, 64)

	for i, v := range order {
		if m2 == 0 {
			break
		}
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// v is always a root here: merge sources are processed once and
		// merge targets remain roots.
		epoch++
		touched = touched[:0]
		for _, e := range adj[v] {
			r := uf.Find(e.to)
			if r == v {
				continue
			}
			if stamp[r] != epoch {
				stamp[r] = epoch
				weightTo[r] = 0
				touched = append(touched, r)
			}
			weightTo[r] += e.w
		}
		// Compact v's adjacency to the resolved roots so stale entries
		// cannot accumulate across merge generations.
		adj[v] = adj[v][:0]
		for _, r := range touched {
			adj[v] = append(adj[v], edge{to: r, w: weightTo[r]})
		}

		var best int32 = -1
		bestGain := 0.0
		for _, r := range touched {
			gain := 2 * (weightTo[r]/m2 - gamma*(strength[v]/m2)*(strength[r]/m2))
			d := gain - bestGain
			if d > gainEps || (d > -gainEps && gain > gainEps && best >= 0 && r < best) {
				bestGain = gain
				best = r
			}
		}
		if best < 0 || bestGain <= 0 {
			continue
		}
		u := best
		uf.UnionInto(u, v)
		strength[u] += strength[v]
		parent[v] = u
		children[u] = append(children[u], v)
		// Append v's compacted edges (minus the now-internal ones) to u.
		for _, e := range adj[v] {
			if e.to != u {
				adj[u] = append(adj[u], e)
			}
		}
		adj[v] = nil
	}

	return &RabbitResult{
		Perm:        check.Perm(sparse.FromNewOrder(dendrogramOrder(n, parent, children))),
		Communities: community.FromLabels(uf.Labels()),
		Parent:      parent,
		Children:    children,
	}, nil
}
