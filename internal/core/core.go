package core
