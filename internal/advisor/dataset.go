package advisor

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one training/evaluation row: a matrix's features paired with
// the measured SpMV LRU miss rate of each candidate technique, produced by
// the experiment harness (experiments.AdvisorSamples) or read back from a
// dataset TSV.
type Sample struct {
	// Matrix is the corpus entry name the sample came from.
	Matrix string `json:"matrix"`
	// Features is the extracted feature vector.
	Features Features `json:"features"`
	// MissRates maps technique name to its measured miss rate on this
	// matrix; techniques may be absent for partially simulated datasets.
	MissRates map[string]float64 `json:"miss_rates"`
}

// Oracle returns the technique with the lowest measured miss rate among
// the Candidates present in the sample (ties broken by Candidates order)
// and that rate. It returns "" when the sample carries no candidate rates.
func (s Sample) Oracle() (string, float64) {
	best, bestRate := "", 0.0
	for _, t := range Candidates() {
		r, ok := s.MissRates[t]
		if !ok {
			continue
		}
		if best == "" || r < bestRate {
			best, bestRate = t, r
		}
	}
	return best, bestRate
}

// datasetFeatureCols are the per-feature TSV columns, in Features field
// order; setFeature's cases must stay aligned with this list.
var datasetFeatureCols = []string{
	"rows", "nnz", "density", "avg_degree", "empty_row_frac", "degree_skew",
	"row_len_cov", "bandwidth_frac", "profile_frac", "symmetry_est",
	"insularity_est",
}

// featureValues returns the raw field values in datasetFeatureCols order.
func featureValues(f Features) []float64 {
	return []float64{
		float64(f.Rows), float64(f.NNZ), f.Density, f.AvgDegree,
		f.EmptyRowFrac, f.DegreeSkew, f.RowLenCoV, f.BandwidthFrac,
		f.ProfileFrac, f.SymmetryEst, f.InsularityEst,
	}
}

// setFeature assigns the datasetFeatureCols[i]-th field from a TSV value.
func setFeature(f *Features, i int, v float64) {
	switch i {
	case 0:
		f.Rows = int64(v)
	case 1:
		f.NNZ = int64(v)
	case 2:
		f.Density = v
	case 3:
		f.AvgDegree = v
	case 4:
		f.EmptyRowFrac = v
	case 5:
		f.DegreeSkew = v
	case 6:
		f.RowLenCoV = v
	case 7:
		f.BandwidthFrac = v
	case 8:
		f.ProfileFrac = v
	case 9:
		f.SymmetryEst = v
	case 10:
		f.InsularityEst = v
	}
}

// missRateCol is the TSV column prefix for per-technique miss rates.
const missRateCol = "miss:"

// WriteDataset renders samples as a TSV with one header line: "matrix",
// the feature columns, then one "miss:<technique>" column per candidate.
// Absent miss rates render as "-". The output is deterministic for a
// given sample slice, so datasets diff cleanly.
func WriteDataset(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	cols := append([]string{"matrix"}, datasetFeatureCols...)
	for _, t := range Candidates() {
		cols = append(cols, missRateCol+t)
	}
	fmt.Fprintln(bw, strings.Join(cols, "\t"))
	for _, s := range samples {
		fields := make([]string, 0, len(cols))
		fields = append(fields, s.Matrix)
		for _, v := range featureValues(s.Features) {
			fields = append(fields, formatTSV(v))
		}
		for _, t := range Candidates() {
			if r, ok := s.MissRates[t]; ok {
				fields = append(fields, formatTSV(r))
			} else {
				fields = append(fields, "-")
			}
		}
		fmt.Fprintln(bw, strings.Join(fields, "\t"))
	}
	return bw.Flush()
}

// formatTSV renders a float compactly but losslessly for TSV cells.
func formatTSV(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 17, 64)
}

// ReadDataset parses a TSV produced by WriteDataset. It is
// header-driven: feature and miss-rate columns are matched by name, so
// datasets survive column reordering and technique-set changes.
func ReadDataset(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("advisor: empty dataset")
	}
	header := strings.Split(strings.TrimRight(sc.Text(), "\n"), "\t")
	if len(header) == 0 || header[0] != "matrix" {
		return nil, fmt.Errorf("advisor: dataset header must start with %q", "matrix")
	}
	featIdx := make(map[string]int, len(datasetFeatureCols))
	for i, name := range datasetFeatureCols {
		featIdx[name] = i
	}
	var samples []Sample
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("advisor: dataset line %d has %d fields, header has %d", line, len(fields), len(header))
		}
		s := Sample{Matrix: fields[0], MissRates: make(map[string]float64)}
		for col := 1; col < len(header); col++ {
			cell := fields[col]
			if cell == "-" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("advisor: dataset line %d column %q: %w", line, header[col], err)
			}
			if i, ok := featIdx[header[col]]; ok {
				setFeature(&s.Features, i, v)
			} else if t, ok := strings.CutPrefix(header[col], missRateCol); ok {
				s.MissRates[t] = v
			} else {
				return nil, fmt.Errorf("advisor: dataset line %d: unknown column %q", line, header[col])
			}
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}
