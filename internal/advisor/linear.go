package advisor

import (
	"encoding/json"
	"fmt"
	"sort"
)

// LinearModelVersion is the artifact version ParseLinearModel accepts. It
// changes whenever the Features.Vector encoding changes, invalidating
// stale trained artifacts instead of silently misreading them.
const LinearModelVersion = 1

// ridgeLambda is the L2 regularization strength Train applies; it only
// needs to keep the normal equations well-conditioned, the inputs being
// pre-squashed to O(1) scales by Features.Vector.
const ridgeLambda = 1e-6

// LinearModel predicts each candidate technique's SpMV LRU miss rate as an
// affine function of the feature vector and ranks candidates by ascending
// prediction. Train fits it from the experiment harness's per-technique
// miss rates; the committed artifact under testdata/ is the default model.
type LinearModel struct {
	// Version is the artifact format version (LinearModelVersion).
	Version int `json:"version"`
	// FeatureNames records the Vector dimensions the weights pair with,
	// as a self-describing check against encoder drift.
	FeatureNames []string `json:"feature_names"`
	// Weights maps technique name to [bias, w_1, ..., w_d]: the predicted
	// miss rate is bias + w·vector.
	Weights map[string][]float64 `json:"weights"`
}

// Name implements Model.
func (*LinearModel) Name() string { return "linear" }

// Predict returns the model's miss-rate prediction for one technique;
// unknown techniques predict +1 (worse than any real miss rate).
func (m *LinearModel) Predict(tech string, f Features) float64 {
	w, ok := m.Weights[tech]
	if !ok {
		return 1
	}
	v := f.Vector()
	y := w[0]
	for i, x := range v {
		y += w[i+1] * x
	}
	return y
}

// Rank implements Model: candidates ascending by predicted miss rate,
// ties broken by Candidates order (the order techniques appear in).
func (m *LinearModel) Rank(f Features) []Scored {
	ranked := make([]Scored, 0, len(m.Weights))
	for _, t := range Candidates() {
		if _, ok := m.Weights[t]; ok {
			ranked = append(ranked, Scored{Technique: t, Score: m.Predict(t, f)})
		}
	}
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].Score < ranked[b].Score })
	return ranked
}

// Validate checks the artifact's version and weight shapes.
func (m *LinearModel) Validate() error {
	if m.Version != LinearModelVersion {
		return fmt.Errorf("advisor: model version %d, want %d (retrain with `advisor train`)",
			m.Version, LinearModelVersion)
	}
	want := len(FeatureNames())
	if len(m.FeatureNames) != want {
		return fmt.Errorf("advisor: model has %d feature names, encoder has %d", len(m.FeatureNames), want)
	}
	for i, n := range FeatureNames() {
		if m.FeatureNames[i] != n {
			return fmt.Errorf("advisor: model feature %d is %q, encoder says %q", i, m.FeatureNames[i], n)
		}
	}
	if len(m.Weights) == 0 {
		return fmt.Errorf("advisor: model has no technique weights")
	}
	// Sorted iteration so a model with several malformed entries reports
	// the same technique on every run.
	techs := make([]string, 0, len(m.Weights))
	for t := range m.Weights {
		techs = append(techs, t)
	}
	sort.Strings(techs)
	for _, t := range techs {
		if w := m.Weights[t]; len(w) != want+1 {
			return fmt.Errorf("advisor: technique %q has %d weights, want %d", t, len(w), want+1)
		}
	}
	return nil
}

// ParseLinearModel decodes and validates a JSON artifact.
func ParseLinearModel(data []byte) (*LinearModel, error) {
	var m LinearModel
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("advisor: parsing model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// MarshalIndent renders the artifact in the committed-file form:
// deterministic key order (encoding/json sorts map keys) and indented for
// reviewable diffs.
func (m *LinearModel) MarshalIndent() ([]byte, error) {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Train fits one ridge least-squares predictor per technique observed in
// the samples: X is the bias-augmented feature matrix, y the technique's
// miss rates, and the weights solve (XᵀX + λI)w = Xᵀy. Techniques missing
// from a sample's MissRates are skipped for that sample, so partially
// simulated datasets still train.
func Train(samples []Sample) (*LinearModel, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("advisor: no training samples")
	}
	dim := len(FeatureNames()) + 1
	model := &LinearModel{
		Version:      LinearModelVersion,
		FeatureNames: FeatureNames(),
		Weights:      make(map[string][]float64),
	}
	for _, tech := range Candidates() {
		// Normal equations accumulated sample by sample.
		xtx := make([][]float64, dim)
		for i := range xtx {
			xtx[i] = make([]float64, dim)
		}
		xty := make([]float64, dim)
		seen := 0
		for _, s := range samples {
			y, ok := s.MissRates[tech]
			if !ok {
				continue
			}
			seen++
			row := append([]float64{1}, s.Features.Vector()...)
			for i := 0; i < dim; i++ {
				for j := 0; j < dim; j++ {
					xtx[i][j] += row[i] * row[j]
				}
				xty[i] += row[i] * y
			}
		}
		if seen == 0 {
			continue
		}
		for i := 0; i < dim; i++ {
			xtx[i][i] += ridgeLambda
		}
		w, err := solve(xtx, xty)
		if err != nil {
			return nil, fmt.Errorf("advisor: training %s: %w", tech, err)
		}
		model.Weights[tech] = w
	}
	if len(model.Weights) == 0 {
		return nil, fmt.Errorf("advisor: samples carry no candidate miss rates")
	}
	return model, nil
}

// solve performs Gaussian elimination with partial pivoting on the dense
// symmetric positive-definite system a·x = b, consuming its inputs.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) == 0 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			b[r] -= factor * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
