// Package advisor predicts the best reordering technique for a matrix from
// cheap structural features, closing the selection loop the paper's
// Section V analysis opens: insularity and degree skew *predict* whether
// community ordering (RABBIT) lands near the ideal run time, and RABBIT++
// exists precisely because skewed matrices defeat plain community
// ordering. Instead of paying for a full per-technique simulation sweep,
// the advisor extracts an O(nnz) feature vector (degree skew, row-length
// variation, bandwidth/profile, density, symmetry estimate, and a sampled
// one-level Louvain insularity estimate) and routes the matrix through
// either the paper's published thresholds (RuleModel) or a least-squares
// per-technique miss-rate scorer trained offline from the experiment
// harness (LinearModel).
package advisor

import (
	"context"
	"math"
	"sort"

	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/quality"
	"repro/internal/sparse"
)

// cancelStride is how many rows each extraction pass scans between
// cooperative cancellation checks.
const cancelStride = 4096

// symmetrySampleBudget bounds how many stored nonzeros the symmetry
// estimate probes for a mirrored entry.
const symmetrySampleBudget = 2048

// insularitySampleNodes bounds the induced-subgraph size of the sampled
// one-level Louvain insularity estimate.
const insularitySampleNodes = 2048

// insularitySweeps bounds the local-moving sweeps of the one-level Louvain
// estimate; the estimate trades detection quality for bounded work.
const insularitySweeps = 4

// Features is the structural description of a matrix the advisor's models
// consume. Every field is computable in O(nnz + n) time and deterministic:
// repeated extraction of the same matrix yields bit-identical values.
//
// DegreeSkew, RowLenCoV, Density, AvgDegree, EmptyRowFrac, and SymmetryEst
// are invariant under symmetric relabeling of the matrix. BandwidthFrac,
// ProfileFrac, and InsularityEst intentionally are not: they describe the
// matrix *as published* (the ordering an incoming request actually carries),
// which is exactly what the advisor must judge.
type Features struct {
	// Rows is the matrix dimension (square matrices only reach the advisor).
	Rows int64 `json:"rows"`
	// NNZ is the stored nonzero count.
	NNZ int64 `json:"nnz"`
	// Density is NNZ / Rows², 0 for an empty matrix.
	Density float64 `json:"density"`
	// AvgDegree is NNZ / Rows, the mean row length.
	AvgDegree float64 `json:"avg_degree"`
	// EmptyRowFrac is the fraction of rows with no stored nonzeros.
	EmptyRowFrac float64 `json:"empty_row_frac"`
	// DegreeSkew is the top-10% in-degree mass (quality.DegreeSkew), the
	// paper's Section V-B skew statistic.
	DegreeSkew float64 `json:"degree_skew"`
	// RowLenCoV is the coefficient of variation (stddev/mean) of row
	// lengths; high values indicate power-law row structure.
	RowLenCoV float64 `json:"row_len_cov"`
	// BandwidthFrac is the matrix bandwidth divided by the longest
	// dimension minus 1 (0 for 1x1): how far the farthest nonzero strays
	// from the diagonal.
	BandwidthFrac float64 `json:"bandwidth_frac"`
	// ProfileFrac is the mean |i-j| over stored nonzeros divided by the
	// longest dimension minus 1: the average diagonal distance, a smoother
	// locality signal than the max-based BandwidthFrac.
	ProfileFrac float64 `json:"profile_frac"`
	// SymmetryEst estimates the fraction of stored nonzeros whose mirror
	// entry is also stored, probed on a deterministic stride sample of at
	// most symmetrySampleBudget nonzeros. 1 for an empty matrix.
	SymmetryEst float64 `json:"symmetry_est"`
	// InsularityEst is a bounded-work estimate of community insularity: a
	// deterministic stride sample of at most insularitySampleNodes nodes
	// induces a subgraph on which one level of Louvain local moving runs;
	// the estimate is the insularity of that assignment. 1 for an edgeless
	// sample, by the same convention as community.Insularity.
	InsularityEst float64 `json:"insularity_est"`
}

// FeatureNames lists the model-input dimensions in Vector order.
func FeatureNames() []string {
	return []string{
		"log_rows", "log_nnz", "log_avg_degree", "empty_row_frac",
		"degree_skew", "row_len_cov", "bandwidth_frac", "profile_frac",
		"symmetry_est", "insularity_est",
	}
}

// Vector returns the model-input encoding of the features: the raw fields
// with the unbounded ones squashed to comparable O(1) scales (logs for
// counts, a soft cap for the CoV), in FeatureNames order. The encoding is
// versioned through LinearModel.Version: changing it invalidates trained
// artifacts.
func (f Features) Vector() []float64 {
	return []float64{
		math.Log2(1+float64(f.Rows)) / 32,
		math.Log2(1+float64(f.NNZ)) / 40,
		math.Log2(1+f.AvgDegree) / 12,
		f.EmptyRowFrac,
		f.DegreeSkew,
		math.Min(f.RowLenCoV, 8) / 8,
		f.BandwidthFrac,
		f.ProfileFrac,
		f.SymmetryEst,
		f.InsularityEst,
	}
}

// ExtractFeatures computes the feature vector of a square matrix. It is
// FeaturesCtx under a background context; the error path is unreachable.
func ExtractFeatures(m *sparse.CSR) Features {
	f, _ := FeaturesCtx(context.Background(), m)
	return f
}

// FeaturesCtx is the cancellable feature extractor: every O(nnz) pass
// checks ctx each cancelStride rows and the sampled Louvain estimate runs
// under ctx, returning ctx.Err() promptly after cancellation. A nil error
// guarantees features identical to ExtractFeatures' — cancellation
// checkpoints never influence the computed values.
func FeaturesCtx(ctx context.Context, m *sparse.CSR) (Features, error) {
	if err := ctx.Err(); err != nil {
		return Features{}, err
	}
	n := m.NumRows
	f := Features{Rows: int64(n), NNZ: int64(m.NNZ())}
	if n == 0 {
		f.SymmetryEst = 1
		f.InsularityEst = 1
		return f, nil
	}
	f.Density = float64(f.NNZ) / (float64(n) * float64(n))
	f.AvgDegree = float64(f.NNZ) / float64(n)

	// One pass over the row structure: empty rows, row-length moments,
	// bandwidth, and profile.
	var empty int64
	var sumSq float64
	var bw int64
	var profile float64
	for r := int32(0); r < n; r++ {
		if r%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return Features{}, err
			}
		}
		l := int64(m.RowLen(r))
		if l == 0 {
			empty++
		}
		sumSq += float64(l) * float64(l)
		cols, _ := m.Row(r)
		for _, c := range cols {
			d := int64(c) - int64(r)
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
			profile += float64(d)
		}
	}
	f.EmptyRowFrac = float64(empty) / float64(n)
	if f.AvgDegree > 0 {
		variance := sumSq/float64(n) - f.AvgDegree*f.AvgDegree
		if variance < 0 {
			variance = 0
		}
		f.RowLenCoV = math.Sqrt(variance) / f.AvgDegree
	}
	dim := n
	if m.NumCols > dim {
		dim = m.NumCols
	}
	if dim > 1 {
		f.BandwidthFrac = float64(bw) / float64(dim-1)
		if f.NNZ > 0 {
			f.ProfileFrac = profile / float64(f.NNZ) / float64(dim-1)
		}
	}

	f.DegreeSkew = quality.DegreeSkew(m)

	var err error
	if f.SymmetryEst, err = symmetryEstimate(ctx, m); err != nil {
		return Features{}, err
	}
	if f.InsularityEst, err = insularityEstimate(ctx, m); err != nil {
		return Features{}, err
	}
	return f, nil
}

// symmetryEstimate probes a deterministic stride sample of stored nonzeros
// for their mirrored entry, using the CSR invariant that rows are strictly
// sorted for a binary search per probe.
func symmetryEstimate(ctx context.Context, m *sparse.CSR) (float64, error) {
	nnz := m.NNZ()
	if nnz == 0 {
		return 1, nil
	}
	stride := nnz / symmetrySampleBudget
	if stride < 1 {
		stride = 1
	}
	var probed, mirrored int64
	// Walk rows, sampling positions k = 0, stride, 2*stride, ... in the
	// flat nonzero index space.
	next := 0
	for r := int32(0); r < m.NumRows; r++ {
		if r%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		// Row nonzero ranges are contiguous, so next always lands inside
		// the current row's [lo, hi) once it passes lo.
		hi := int(m.RowOffsets[r+1])
		for next < hi {
			c := m.ColIndices[next]
			probed++
			if hasEntry(m, c, r) {
				mirrored++
			}
			next += stride
		}
	}
	if probed == 0 {
		return 1, nil
	}
	return float64(mirrored) / float64(probed), nil
}

// hasEntry reports whether (r, c) is stored, by binary search over the
// sorted row. Out-of-range rows (rectangular probes) report false.
func hasEntry(m *sparse.CSR, r, c int32) bool {
	if r < 0 || r >= m.NumRows {
		return false
	}
	cols, _ := m.Row(r)
	i := sort.Search(len(cols), func(i int) bool { return cols[i] >= c })
	return i < len(cols) && cols[i] == c
}

// insularityEstimate runs one level of Louvain local moving on a
// deterministic stride sample of at most insularitySampleNodes nodes and
// returns the insularity of the induced subgraph under that assignment.
// The sample is seed-free: node IDs 0, s, 2s, ... for the smallest stride
// s that fits the budget, so the estimate is a pure function of the
// matrix.
func insularityEstimate(ctx context.Context, m *sparse.CSR) (float64, error) {
	n := m.NumRows
	stride := int32(1)
	if n > insularitySampleNodes {
		stride = (n + insularitySampleNodes - 1) / insularitySampleNodes
	}
	// local[v] is the sampled node's index in the subgraph, -1 otherwise.
	local := make([]int32, n)
	for i := range local {
		local[i] = -1
	}
	var k int32
	for v := int32(0); v < n; v += stride {
		local[v] = k
		k++
	}
	// Build the induced subgraph in CSR form directly: sampled rows are
	// visited in increasing ID order and columns within a row are sorted,
	// so the output rows inherit both invariants.
	sub := &sparse.CSR{NumRows: k, NumCols: k, RowOffsets: make([]int32, k+1)}
	for v := int32(0); v < n; v += stride {
		if local[v]%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		cols, _ := m.Row(v)
		for _, c := range cols {
			// Guard rectangular inputs (the fuzz target feeds them): only
			// columns that are also sampled rows join the subgraph.
			if int(c) < len(local) && local[c] >= 0 {
				sub.ColIndices = append(sub.ColIndices, local[c])
				sub.Values = append(sub.Values, 1)
			}
		}
		sub.RowOffsets[local[v]+1] = check.SafeInt32(len(sub.ColIndices))
	}
	if len(sub.ColIndices) == 0 {
		return 1, nil
	}
	a, err := community.LouvainCtx(ctx, sub.Symmetrize(), community.LouvainOptions{
		MaxSweeps: insularitySweeps,
		MaxLevels: 1,
	})
	if err != nil {
		return 0, err
	}
	return community.Insularity(sub, a), nil
}
