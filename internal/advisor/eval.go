package advisor

import (
	"fmt"
	"sort"
	"strings"
)

// evalTieEps absorbs float noise when deciding whether a predicted
// technique ties the oracle's miss rate.
const evalTieEps = 1e-12

// MatrixEval is one matrix's row in an evaluation report.
type MatrixEval struct {
	// Matrix is the corpus entry name.
	Matrix string `json:"matrix"`
	// Predicted is the model's top-1 technique.
	Predicted string `json:"predicted"`
	// Oracle is the measured-best technique (Candidates-order tie-break).
	Oracle string `json:"oracle"`
	// PredictedRate and OracleRate are the measured miss rates of the two
	// picks; Regret is their difference (always >= 0).
	PredictedRate float64 `json:"predicted_rate"`
	// OracleRate is the measured miss rate of the oracle technique.
	OracleRate float64 `json:"oracle_rate"`
	// Regret is PredictedRate - OracleRate.
	Regret float64 `json:"regret"`
	// Correct reports whether the prediction matched the oracle's miss
	// rate within evalTieEps (equal-quality ties count as correct).
	Correct bool `json:"correct"`
}

// EvalReport aggregates a model's performance over a sample set.
type EvalReport struct {
	// Model names the evaluated model.
	Model string `json:"model"`
	// Samples is the number of matrices evaluated.
	Samples int `json:"samples"`
	// Top1Accuracy is the fraction of matrices where the model's pick
	// matches the oracle's miss rate within evalTieEps.
	Top1Accuracy float64 `json:"top1_accuracy"`
	// MeanRegret is the mean PredictedRate - OracleRate over the samples.
	MeanRegret float64 `json:"mean_regret"`
	// MaxRegret is the worst single-matrix regret.
	MaxRegret float64 `json:"max_regret"`
	// PerMatrix holds the individual rows, in input order.
	PerMatrix []MatrixEval `json:"per_matrix"`
}

// Evaluate scores a model against measured miss rates: for every sample
// carrying at least one candidate rate, the model's top-ranked technique
// with a measured rate is compared to the oracle pick. A prediction whose
// technique lacks a measured rate falls through to the next ranked
// candidate, so partially simulated datasets still evaluate.
func Evaluate(model Model, samples []Sample) EvalReport {
	rep := EvalReport{Model: model.Name()}
	for _, s := range samples {
		oracle, oracleRate := s.Oracle()
		if oracle == "" {
			continue
		}
		pred, predRate := "", 0.0
		for _, cand := range model.Rank(s.Features) {
			if r, ok := s.MissRates[cand.Technique]; ok {
				pred, predRate = cand.Technique, r
				break
			}
		}
		if pred == "" {
			continue
		}
		row := MatrixEval{
			Matrix:        s.Matrix,
			Predicted:     pred,
			Oracle:        oracle,
			PredictedRate: predRate,
			OracleRate:    oracleRate,
			Regret:        predRate - oracleRate,
			Correct:       predRate <= oracleRate+evalTieEps,
		}
		rep.PerMatrix = append(rep.PerMatrix, row)
		rep.Samples++
		if row.Correct {
			rep.Top1Accuracy++
		}
		rep.MeanRegret += row.Regret
		if row.Regret > rep.MaxRegret {
			rep.MaxRegret = row.Regret
		}
	}
	if rep.Samples > 0 {
		rep.Top1Accuracy /= float64(rep.Samples)
		rep.MeanRegret /= float64(rep.Samples)
	}
	return rep
}

// Summary renders the report's aggregate line, e.g. for CLI output.
func (r EvalReport) Summary() string {
	return fmt.Sprintf("model=%s samples=%d top1=%.3f mean_regret=%.5f max_regret=%.5f",
		r.Model, r.Samples, r.Top1Accuracy, r.MeanRegret, r.MaxRegret)
}

// Mistakes returns the per-matrix rows where the model missed the oracle,
// worst regret first, for error analysis in CLI output.
func (r EvalReport) Mistakes() []MatrixEval {
	var out []MatrixEval
	for _, row := range r.PerMatrix {
		if !row.Correct {
			out = append(out, row)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Regret > out[b].Regret })
	return out
}

// CompareBaselines evaluates the model alongside every always-X baseline
// and the rule model on the same samples, returning reports keyed by model
// name in a deterministic order (model, rule, then fixed baselines in
// Candidates order).
func CompareBaselines(model Model, samples []Sample) []EvalReport {
	reports := []EvalReport{Evaluate(model, samples)}
	if !strings.HasPrefix(model.Name(), "rule") {
		reports = append(reports, Evaluate(RuleModel{}, samples))
	}
	for _, t := range Candidates() {
		reports = append(reports, Evaluate(FixedModel{Technique: t}, samples))
	}
	return reports
}
