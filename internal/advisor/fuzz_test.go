package advisor_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/advisor"
	"repro/internal/sparse"
)

// fuzzMatrix decodes a byte string into a small CSR: the first two bytes
// pick the (possibly rectangular) dimensions, the rest is consumed
// pairwise as entries.
func fuzzMatrix(data []byte) *sparse.CSR {
	if len(data) < 2 {
		return sparse.NewCOO(0, 0, 0).ToCSR()
	}
	rows := int32(data[0]%64) + 1
	cols := int32(data[1]%64) + 1
	data = data[2:]
	coo := sparse.NewCOO(rows, cols, len(data)/2)
	for len(data) >= 2 {
		coo.Add(int32(data[0])%rows, int32(data[1])%cols, 1)
		data = data[2:]
	}
	return coo.ToCSR()
}

// FuzzFeatures drives the extractor over arbitrary small matrices,
// including rectangular ones: it must never panic, every field must be
// finite with fractions in [0, 1], and extraction must be deterministic.
func FuzzFeatures(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 4, 0, 1, 1, 0, 2, 3})
	f.Add([]byte{63, 63, 0, 0, 1, 1, 2, 2, 3, 3})
	f.Add([]byte{8, 3, 7, 2, 0, 0})
	f.Add([]byte{1, 63, 0, 62, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		m := fuzzMatrix(data)
		got := advisor.ExtractFeatures(m)
		if again := advisor.ExtractFeatures(m); again != got {
			t.Fatalf("nondeterministic extraction:\n%+v\n%+v", got, again)
		}
		fracs := []struct {
			name string
			v    float64
		}{
			{"EmptyRowFrac", got.EmptyRowFrac},
			{"DegreeSkew", got.DegreeSkew},
			{"BandwidthFrac", got.BandwidthFrac},
			{"ProfileFrac", got.ProfileFrac},
			{"SymmetryEst", got.SymmetryEst},
			{"InsularityEst", got.InsularityEst},
		}
		for _, fr := range fracs {
			if math.IsNaN(fr.v) || fr.v < 0 || fr.v > 1+1e-9 {
				t.Fatalf("%s = %v out of [0,1] for %dx%d nnz=%d", fr.name, fr.v, m.NumRows, m.NumCols, m.NNZ())
			}
		}
		for _, v := range []float64{got.Density, got.AvgDegree, got.RowLenCoV} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("non-finite feature in %+v", got)
			}
		}
		if ctxF, err := advisor.FeaturesCtx(context.Background(), m); err != nil || ctxF != got {
			t.Fatalf("FeaturesCtx mismatch: %v / %+v vs %+v", err, ctxF, got)
		}
		// The model layer must accept whatever the extractor produces.
		rec := advisor.Advise(m)
		if rec.Best() == "" || len(rec.Ranked) == 0 {
			t.Fatalf("empty recommendation for %dx%d", m.NumRows, m.NumCols)
		}
	})
}
