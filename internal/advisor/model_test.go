package advisor_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/advisor"
)

func TestRuleModelBranches(t *testing.T) {
	cases := []struct {
		name string
		f    advisor.Features
		want string
	}{
		{"skewed", advisor.Features{DegreeSkew: 0.8, InsularityEst: 0.99}, "RABBIT++"},
		{"insular", advisor.Features{DegreeSkew: 0.2, InsularityEst: 0.99}, "RABBIT"},
		{"neither", advisor.Features{DegreeSkew: 0.2, InsularityEst: 0.5}, "DBG"},
	}
	for _, tc := range cases {
		rec := advisor.Recommend(advisor.RuleModel{}, tc.f)
		if rec.Best() != tc.want {
			t.Errorf("%s: best = %s, want %s", tc.name, rec.Best(), tc.want)
		}
		if len(rec.Ranked) != len(advisor.Candidates()) {
			t.Errorf("%s: ranked %d of %d candidates", tc.name, len(rec.Ranked), len(advisor.Candidates()))
		}
		if rec.Confidence < 0 || rec.Confidence > 1 {
			t.Errorf("%s: confidence %v out of [0,1]", tc.name, rec.Confidence)
		}
	}
	// Custom thresholds move the branch points.
	m := advisor.RuleModel{SkewThreshold: 0.9, InsularityThreshold: 0.5}
	if best := m.Rank(advisor.Features{DegreeSkew: 0.8, InsularityEst: 0.6})[0].Technique; best != "RABBIT" {
		t.Fatalf("custom thresholds: best = %s, want RABBIT", best)
	}
}

func TestFixedModel(t *testing.T) {
	m := advisor.FixedModel{Technique: "RABBIT"}
	ranked := m.Rank(advisor.Features{})
	if ranked[0].Technique != "RABBIT" {
		t.Fatalf("fixed model best = %s", ranked[0].Technique)
	}
	if m.Name() != "fixed:RABBIT" {
		t.Fatalf("fixed model name = %s", m.Name())
	}
}

func TestDefaultModelIsTrainedArtifact(t *testing.T) {
	m := advisor.DefaultModel()
	if m.Name() != "linear" {
		t.Fatalf("default model is %q; the committed artifact failed to parse", m.Name())
	}
	ranked := m.Rank(advisor.Features{Rows: 1000, NNZ: 10000, AvgDegree: 10})
	if len(ranked) != len(advisor.Candidates()) {
		t.Fatalf("default model ranks %d of %d candidates", len(ranked), len(advisor.Candidates()))
	}
}

// synthSamples builds samples whose miss rates are exact linear functions
// of the feature vector, so ridge training must recover them.
func synthSamples(n int) []advisor.Sample {
	samples := make([]advisor.Sample, n)
	for i := range samples {
		f := advisor.Features{
			Rows:          int64(1000 + 37*i),
			NNZ:           int64(10000 + 997*i),
			AvgDegree:     4 + float64(i%7),
			EmptyRowFrac:  float64(i%5) / 10,
			DegreeSkew:    float64(i%11) / 11,
			RowLenCoV:     float64(i%13) / 3,
			BandwidthFrac: float64(i%17) / 17,
			ProfileFrac:   float64(i%19) / 38,
			SymmetryEst:   float64(i%3) / 2,
			InsularityEst: float64(i%23) / 23,
		}
		v := f.Vector()
		rates := make(map[string]float64)
		for ti, tech := range advisor.Candidates() {
			y := 0.1 * float64(ti+1)
			for vi, x := range v {
				y += float64(ti-2) * 0.01 * float64(vi+1) * x
			}
			rates[tech] = y
		}
		samples[i] = advisor.Sample{Matrix: "synth", Features: f, MissRates: rates}
	}
	return samples
}

func TestTrainRecoversLinearTargets(t *testing.T) {
	samples := synthSamples(200)
	model, err := advisor.Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[:20] {
		for _, tech := range advisor.Candidates() {
			got := model.Predict(tech, s.Features)
			if want := s.MissRates[tech]; math.Abs(got-want) > 1e-4 {
				t.Fatalf("%s: predicted %v, want %v", tech, got, want)
			}
		}
	}
	// Perfect predictions mean a perfect oracle match.
	rep := advisor.Evaluate(model, samples)
	if rep.Top1Accuracy != 1 || rep.MeanRegret > 1e-9 {
		t.Fatalf("evaluation on recoverable data: %s", rep.Summary())
	}
}

func TestLinearModelRoundTrip(t *testing.T) {
	model, err := advisor.Train(synthSamples(50))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := model.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := advisor.ParseLinearModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(model, back) {
		t.Fatal("marshal/parse round trip changed the model")
	}
}

func TestParseLinearModelRejectsBadArtifacts(t *testing.T) {
	good, err := os.ReadFile(filepath.Join("testdata", "linear_model.json"))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		[]byte("{"),
		[]byte(`{"version": 99}`),
		bytes.Replace(good, []byte(`"log_rows"`), []byte(`"log_rowz"`), 1),
		[]byte(`{"version": 1, "feature_names": [], "weights": {}}`),
		[]byte(`{"version": 1, "feature_names": ["log_rows","log_nnz","log_avg_degree","empty_row_frac","degree_skew","row_len_cov","bandwidth_frac","profile_frac","symmetry_est","insularity_est"], "weights": {"RABBIT": [1, 2]}}`),
	}
	for i, b := range bad {
		if _, err := advisor.ParseLinearModel(b); err == nil {
			t.Errorf("bad artifact %d parsed without error", i)
		}
	}
	if _, err := advisor.ParseLinearModel(good); err != nil {
		t.Errorf("committed artifact rejected: %v", err)
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := advisor.Train(nil); err == nil {
		t.Fatal("Train(nil) succeeded")
	}
	noRates := []advisor.Sample{{Matrix: "x", MissRates: map[string]float64{"NOPE": 1}}}
	if _, err := advisor.Train(noRates); err == nil {
		t.Fatal("Train with no candidate rates succeeded")
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	samples := synthSamples(10)
	// Exercise the absent-rate path too.
	delete(samples[3].MissRates, "RABBIT")
	var buf bytes.Buffer
	if err := advisor.WriteDataset(&buf, samples); err != nil {
		t.Fatal(err)
	}
	back, err := advisor.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(samples, back) {
		t.Fatalf("dataset round trip changed the samples:\n%+v\n%+v", samples[:2], back[:2])
	}
}

func TestEvaluateRegretAndTies(t *testing.T) {
	f := advisor.Features{DegreeSkew: 0.9}
	samples := []advisor.Sample{
		// RuleModel picks RABBIT++ under high skew: regret 0 here...
		{Matrix: "a", Features: f, MissRates: map[string]float64{"RABBIT++": 0.1, "DBG": 0.3}},
		// ...and 0.2 here, where DBG is the oracle.
		{Matrix: "b", Features: f, MissRates: map[string]float64{"RABBIT++": 0.3, "DBG": 0.1}},
		// No candidate rates: skipped entirely.
		{Matrix: "c", Features: f, MissRates: nil},
	}
	rep := advisor.Evaluate(advisor.RuleModel{}, samples)
	if rep.Samples != 2 {
		t.Fatalf("evaluated %d samples, want 2", rep.Samples)
	}
	if rep.Top1Accuracy != 0.5 {
		t.Fatalf("top1 = %v, want 0.5", rep.Top1Accuracy)
	}
	if math.Abs(rep.MeanRegret-0.1) > 1e-12 || math.Abs(rep.MaxRegret-0.2) > 1e-12 {
		t.Fatalf("regret mean/max = %v/%v, want 0.1/0.2", rep.MeanRegret, rep.MaxRegret)
	}
	if n := len(rep.Mistakes()); n != 1 {
		t.Fatalf("mistakes = %d, want 1", n)
	}
}

// TestCommittedModelBeatsAlwaysRabbit pins the acceptance bar: on the
// committed small-corpus dataset, the trained artifact's mean regret must
// strictly beat the always-RABBIT baseline.
func TestCommittedModelBeatsAlwaysRabbit(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "dataset_small.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := advisor.ReadDataset(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 40 {
		t.Fatalf("committed dataset has only %d samples", len(samples))
	}
	linear := advisor.Evaluate(advisor.DefaultModel(), samples)
	rabbit := advisor.Evaluate(advisor.FixedModel{Technique: "RABBIT"}, samples)
	if linear.MeanRegret >= rabbit.MeanRegret {
		t.Fatalf("trained model regret %v does not beat always-RABBIT %v (retrain the artifact)",
			linear.MeanRegret, rabbit.MeanRegret)
	}
	if linear.Top1Accuracy <= 0 {
		t.Fatalf("trained model never matches the oracle: %s", linear.Summary())
	}
}
