package advisor

import (
	"context"
	_ "embed"
	"math"
	"sync"

	"repro/internal/sparse"
)

// Candidates returns the technique names the advisor chooses among, in the
// tie-break order used everywhere (oracle computation, rule ranking):
// the two cheap degree passes, plain community ordering, the two hub
// treatments the paper evaluates in Table II, and the parallel tier
// (BOBA's sort-free first-touch pass and the bi-criteria RCM++).
func Candidates() []string {
	return []string{"DEGSORT", "DBG", "RABBIT", "RABBIT++", "HUBGROUP", "BOBA", "RCM++"}
}

// Model ranks candidate techniques for a feature vector.
type Model interface {
	// Name identifies the model in reports and responses.
	Name() string
	// Rank returns every candidate best-first with its score. Lower
	// scores are better; for LinearModel the score is the predicted SpMV
	// LRU miss rate, for RuleModel it is the rule's preference rank.
	Rank(f Features) []Scored
}

// Scored is one ranked candidate.
type Scored struct {
	// Technique is the candidate's reorder.Technique display name.
	Technique string `json:"technique"`
	// Score is the model's value for the candidate; lower is better.
	Score float64 `json:"score"`
}

// Recommendation is the advisor's full answer for one matrix.
type Recommendation struct {
	// Model names the model that produced the ranking.
	Model string `json:"model"`
	// Features is the extracted feature vector the ranking was based on.
	Features Features `json:"features"`
	// Ranked lists every candidate best-first.
	Ranked []Scored `json:"ranked"`
	// Confidence is the normalized margin between the top two candidates
	// in [0, 1]: 0 means a coin flip, larger means the model clearly
	// separates the winner.
	Confidence float64 `json:"confidence"`
}

// Best returns the top-ranked technique name.
func (r Recommendation) Best() string { return r.Ranked[0].Technique }

// Advise extracts features and ranks the candidates with the default
// model (the committed LinearModel artifact).
func Advise(m *sparse.CSR) Recommendation {
	rec, _ := AdviseCtx(context.Background(), DefaultModel(), m)
	return rec
}

// AdviseCtx is Advise with an explicit model and cooperative cancellation
// of the feature extraction.
func AdviseCtx(ctx context.Context, model Model, m *sparse.CSR) (Recommendation, error) {
	f, err := FeaturesCtx(ctx, m)
	if err != nil {
		return Recommendation{}, err
	}
	return Recommend(model, f), nil
}

// Recommend ranks the candidates for an already-extracted feature vector.
func Recommend(model Model, f Features) Recommendation {
	ranked := model.Rank(f)
	return Recommendation{
		Model:      model.Name(),
		Features:   f,
		Ranked:     ranked,
		Confidence: confidence(ranked),
	}
}

// confidence maps the top-two score margin to [0, 1]. Scores are
// model-specific, so the margin is normalized by the ranking's score
// spread; a single-candidate ranking is fully confident.
func confidence(ranked []Scored) float64 {
	if len(ranked) < 2 {
		return 1
	}
	spread := ranked[len(ranked)-1].Score - ranked[0].Score
	if spread <= 0 {
		return 0
	}
	return math.Min(1, (ranked[1].Score-ranked[0].Score)/spread*float64(len(ranked)-1))
}

// RuleModel encodes the paper's published selection thresholds: high
// degree skew defeats plain community ordering, so hub-aware variants
// (RABBIT++, HUBGROUP) lead; high estimated insularity means RABBIT
// reaches near-ideal run time (Figure 3); when neither holds, community
// structure is weak and the cheap degree passes (DBG, DEGSORT) are the
// safe fallback. The zero value uses the paper's thresholds.
type RuleModel struct {
	// SkewThreshold splits skewed from unskewed matrices; 0 means the
	// default 0.5 (Section V-B's skew statistic on power-law matrices).
	SkewThreshold float64
	// InsularityThreshold splits the Figure 3 classes; 0 means the
	// paper's 0.95.
	InsularityThreshold float64
}

// Name implements Model.
func (RuleModel) Name() string { return "rule" }

// Rank implements Model: the preference order selected by the thresholds,
// with the rule's position as the score (0 = best).
func (r RuleModel) Rank(f Features) []Scored {
	skewT, insT := r.SkewThreshold, r.InsularityThreshold
	if skewT == 0 {
		skewT = 0.5
	}
	if insT == 0 {
		insT = 0.95
	}
	// The parallel-tier techniques trail each branch: BOBA is a locality
	// pass without hub or community awareness, and RCM++ optimizes
	// bandwidth rather than the reuse distance the rule targets, so the
	// rule never prefers them — they earn their place via the trained
	// model when the measured miss rate says so.
	var order []string
	switch {
	case f.DegreeSkew >= skewT:
		order = []string{"RABBIT++", "HUBGROUP", "RABBIT", "DBG", "DEGSORT", "BOBA", "RCM++"}
	case f.InsularityEst >= insT:
		order = []string{"RABBIT", "RABBIT++", "HUBGROUP", "DBG", "DEGSORT", "BOBA", "RCM++"}
	default:
		order = []string{"DBG", "DEGSORT", "RABBIT++", "RABBIT", "HUBGROUP", "BOBA", "RCM++"}
	}
	ranked := make([]Scored, len(order))
	for i, t := range order {
		ranked[i] = Scored{Technique: t, Score: float64(i)}
	}
	return ranked
}

// FixedModel always recommends one technique; the evaluation harness uses
// it as the always-RABBIT baseline the trained model must beat.
type FixedModel struct {
	// Technique is the candidate this model always puts first.
	Technique string
}

// Name implements Model.
func (m FixedModel) Name() string { return "fixed:" + m.Technique }

// Rank implements Model: the fixed pick first, remaining candidates in
// Candidates order.
func (m FixedModel) Rank(Features) []Scored {
	ranked := []Scored{{Technique: m.Technique, Score: 0}}
	for _, t := range Candidates() {
		if t != m.Technique {
			ranked = append(ranked, Scored{Technique: t, Score: 1})
		}
	}
	return ranked
}

//go:embed testdata/linear_model.json
var embeddedModel []byte

var (
	defaultOnce  sync.Once
	defaultModel Model
)

// DefaultModel returns the committed LinearModel artifact
// (testdata/linear_model.json, trained by `advisor train`), falling back
// to the RuleModel if the artifact ever fails to parse.
func DefaultModel() Model {
	defaultOnce.Do(func() {
		lm, err := ParseLinearModel(embeddedModel)
		if err != nil {
			defaultModel = RuleModel{}
			return
		}
		defaultModel = lm
	})
	return defaultModel
}
