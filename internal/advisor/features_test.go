package advisor_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/advisor"
	"repro/internal/gen"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

// chain returns an n-node symmetric path graph.
func chain(n int32) *sparse.CSR {
	coo := sparse.NewCOO(n, n, int(2*n))
	for i := int32(0); i+1 < n; i++ {
		coo.AddSym(i, i+1, 1)
	}
	return coo.ToCSR()
}

func TestFeaturesChainKnownValues(t *testing.T) {
	m := chain(64)
	f := advisor.ExtractFeatures(m)
	if f.Rows != 64 || f.NNZ != int64(m.NNZ()) {
		t.Fatalf("shape: %+v", f)
	}
	if f.EmptyRowFrac != 0 {
		t.Fatalf("EmptyRowFrac = %v, want 0", f.EmptyRowFrac)
	}
	// Every nonzero of a path sits one off the diagonal.
	if want := 1.0 / 63.0; f.BandwidthFrac != want || f.ProfileFrac != want {
		t.Fatalf("bandwidth/profile = %v/%v, want %v", f.BandwidthFrac, f.ProfileFrac, want)
	}
	// The path is exactly symmetric and small enough to probe fully.
	if f.SymmetryEst != 1 {
		t.Fatalf("SymmetryEst = %v, want 1", f.SymmetryEst)
	}
	if f.InsularityEst < 0 || f.InsularityEst > 1 {
		t.Fatalf("InsularityEst = %v out of [0,1]", f.InsularityEst)
	}
	if f.AvgDegree != float64(m.NNZ())/64 {
		t.Fatalf("AvgDegree = %v", f.AvgDegree)
	}
}

func TestFeaturesEmptyMatrix(t *testing.T) {
	f := advisor.ExtractFeatures(&sparse.CSR{RowOffsets: []int32{0}})
	if f.SymmetryEst != 1 || f.InsularityEst != 1 {
		t.Fatalf("empty matrix estimates = %v/%v, want 1/1", f.SymmetryEst, f.InsularityEst)
	}
	if f.Rows != 0 || f.NNZ != 0 || f.Density != 0 {
		t.Fatalf("empty matrix features: %+v", f)
	}
	// All-empty rows but nonzero dimension.
	f = advisor.ExtractFeatures(&sparse.CSR{NumRows: 5, NumCols: 5, RowOffsets: make([]int32, 6)})
	if f.EmptyRowFrac != 1 {
		t.Fatalf("EmptyRowFrac = %v, want 1", f.EmptyRowFrac)
	}
}

func TestFeaturesAsymmetricEstimate(t *testing.T) {
	// Strictly upper-triangular chain: no stored entry has its mirror.
	coo := sparse.NewCOO(32, 32, 31)
	for i := int32(0); i+1 < 32; i++ {
		coo.Add(i, i+1, 1)
	}
	f := advisor.ExtractFeatures(coo.ToCSR())
	if f.SymmetryEst != 0 {
		t.Fatalf("SymmetryEst = %v, want 0 for a triangular pattern", f.SymmetryEst)
	}
}

// TestFeaturesDeterminism extracts the same matrices repeatedly, serially
// and from concurrent goroutines: every extraction must be bit-identical.
func TestFeaturesDeterminism(t *testing.T) {
	mats := []*sparse.CSR{
		gen.ErdosRenyi{Nodes: 3000, AvgDegree: 8}.Generate(1),
		gen.RMAT{LogNodes: 12, AvgDegree: 8, A: 0.57, B: 0.19, C: 0.19}.Generate(2),
		gen.PlantedPartition{Nodes: 4000, Communities: 16, AvgDegree: 10, Mu: 0.1}.Generate(3),
	}
	for _, m := range mats {
		want := advisor.ExtractFeatures(m)
		if got := advisor.ExtractFeatures(m); got != want {
			t.Fatalf("serial re-extraction differs:\n%+v\n%+v", got, want)
		}
		var wg sync.WaitGroup
		results := make([]advisor.Features, 8)
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = advisor.ExtractFeatures(m)
			}(i)
		}
		wg.Wait()
		for i, got := range results {
			if got != want {
				t.Fatalf("concurrent extraction %d differs:\n%+v\n%+v", i, got, want)
			}
		}
	}
}

// TestFeaturesRelabelInvariance is the metamorphic test: symmetric
// relabeling must not change the ordering-independent features. The
// matrices are small enough that the symmetry probe covers every nonzero,
// making SymmetryEst exact (and hence invariant) too. BandwidthFrac,
// ProfileFrac, and InsularityEst describe the matrix as laid out and are
// deliberately excluded.
func TestFeaturesRelabelInvariance(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		m := gen.ErdosRenyi{Nodes: 400, AvgDegree: 4}.Generate(seed)
		if int64(m.NNZ()) > 2048 {
			t.Fatalf("seed %d: %d nnz exceeds the symmetry probe budget; shrink the generator", seed, m.NNZ())
		}
		base := advisor.ExtractFeatures(m)
		perm := reorder.Random{Seed: seed + 100}.Order(m)
		rel := advisor.ExtractFeatures(m.PermuteSymmetric(perm))
		pairs := []struct {
			name string
			a, b float64
		}{
			{"Density", base.Density, rel.Density},
			{"AvgDegree", base.AvgDegree, rel.AvgDegree},
			{"EmptyRowFrac", base.EmptyRowFrac, rel.EmptyRowFrac},
			{"DegreeSkew", base.DegreeSkew, rel.DegreeSkew},
			{"RowLenCoV", base.RowLenCoV, rel.RowLenCoV},
			{"SymmetryEst", base.SymmetryEst, rel.SymmetryEst},
		}
		for _, p := range pairs {
			if math.Abs(p.a-p.b) > 1e-12 {
				t.Errorf("seed %d: %s changed under relabeling: %v -> %v", seed, p.name, p.a, p.b)
			}
		}
	}
}

func TestFeaturesCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := advisor.FeaturesCtx(ctx, chain(64)); err != context.Canceled {
		t.Fatalf("pre-cancelled FeaturesCtx error = %v, want context.Canceled", err)
	}
}

func TestFeaturesCtxMatchesExtract(t *testing.T) {
	m := gen.RMAT{LogNodes: 11, AvgDegree: 6, A: 0.5, B: 0.2, C: 0.2}.Generate(7)
	f, err := advisor.FeaturesCtx(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if f != advisor.ExtractFeatures(m) {
		t.Fatal("FeaturesCtx under background context differs from ExtractFeatures")
	}
}

func TestFeatureVectorShape(t *testing.T) {
	names := advisor.FeatureNames()
	m := gen.PlantedPartition{Nodes: 2000, Communities: 8, AvgDegree: 12, Mu: 0.05}.Generate(4)
	v := advisor.ExtractFeatures(m).Vector()
	if len(v) != len(names) {
		t.Fatalf("Vector has %d entries, FeatureNames %d", len(v), len(names))
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 || x > 1+1e-9 {
			t.Fatalf("vector[%d] (%s) = %v out of [0,1]", i, names[i], x)
		}
	}
}

func BenchmarkFeatures(b *testing.B) {
	m := gen.RMAT{LogNodes: 14, AvgDegree: 16, A: 0.57, B: 0.19, C: 0.19}.Generate(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		advisor.ExtractFeatures(m)
	}
}
