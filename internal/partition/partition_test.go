package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestPartitionLabelsInRange(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 2000, Communities: 16, AvgDegree: 8, Mu: 0.2}.Generate(1)
	part := Partition(m, Options{Parts: 8})
	if len(part) != int(m.NumRows) {
		t.Fatalf("%d labels for %d rows", len(part), m.NumRows)
	}
	for v, p := range part {
		if p < 0 || p >= 8 {
			t.Fatalf("vertex %d has part %d outside [0,8)", v, p)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	m := gen.Mesh2D{Width: 50, Height: 50}.Generate(2)
	const parts = 4
	part := Partition(m, Options{Parts: parts})
	counts := make([]int, parts)
	for _, p := range part {
		counts[p]++
	}
	ideal := int(m.NumRows) / parts
	for p, c := range counts {
		if c < ideal/3 || c > ideal*3 {
			t.Fatalf("part %d has %d vertices, ideal %d; partition is badly unbalanced (%v)", p, c, ideal, counts)
		}
	}
}

func TestPartitionCutBeatsRandomOnMesh(t *testing.T) {
	m := gen.Mesh2D{Width: 48, Height: 48}.Generate(3)
	part := Partition(m, Options{Parts: 8})
	cut := CutEdges(m, part)
	// Random 8-way assignment cuts ~7/8 of all edges.
	r := gen.NewRNG(4)
	random := make([]int32, m.NumRows)
	for i := range random {
		random[i] = r.Intn(8)
	}
	randomCut := CutEdges(m, random)
	if cut*4 > randomCut {
		t.Fatalf("multilevel cut %d vs random cut %d; want at least 4x better on a mesh", cut, randomCut)
	}
}

func TestPartitionRecoverscommunities(t *testing.T) {
	// On two bridged cliques, a 2-way partition must recover the cliques.
	k := int32(24)
	coo := sparse.NewCOO(2*k, 2*k, int(4*k*k))
	for i := int32(0); i < k; i++ {
		for j := i + 1; j < k; j++ {
			coo.AddSym(i, j, 1)
			coo.AddSym(k+i, k+j, 1)
		}
	}
	coo.AddSym(0, k, 1)
	m := coo.ToCSR()
	part := Partition(m, Options{Parts: 2, CoarsestSize: 8})
	if CutEdges(m, part) > 2 {
		t.Fatalf("cut %d edges of two bridged cliques; the bridge alone should be cut", CutEdges(m, part))
	}
}

func TestOrderIsValidPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		m := gen.ErdosRenyi{Nodes: 300, AvgDegree: 5}.Generate(seed)
		part := Partition(m, Options{Parts: 4, CoarsestSize: 32})
		return Order(part, 4).IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderGroupsParts(t *testing.T) {
	part := []int32{1, 0, 1, 0, 2}
	perm := Order(part, 3)
	// Part 0 = vertices 1,3 -> IDs 0,1; part 1 = 0,2 -> 2,3; part 2 = 4 -> 4.
	want := sparse.Permutation{2, 0, 3, 1, 4}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("Order = %v, want %v", perm, want)
		}
	}
}

func TestPartitionDeterminism(t *testing.T) {
	m := gen.RMAT{LogNodes: 10, AvgDegree: 6, A: 0.5, B: 0.2, C: 0.2, Symmetric: true}.Generate(5)
	a := Partition(m, Options{Parts: 8})
	b := Partition(m, Options{Parts: 8})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at vertex %d", i)
		}
	}
}

func TestPartitionHandlesEdgeCases(t *testing.T) {
	empty := &sparse.CSR{NumRows: 10, NumCols: 10, RowOffsets: make([]int32, 11)}
	part := Partition(empty, Options{Parts: 4})
	for _, p := range part {
		if p < 0 || p >= 4 {
			t.Fatalf("empty-graph part %d out of range", p)
		}
	}
	one := &sparse.CSR{NumRows: 1, NumCols: 1, RowOffsets: []int32{0, 0}}
	if got := Partition(one, Options{Parts: 2}); len(got) != 1 {
		t.Fatalf("singleton partition = %v", got)
	}
}

func TestCutEdgesCounts(t *testing.T) {
	coo := sparse.NewCOO(4, 4, 3)
	coo.Add(0, 1, 1)
	coo.Add(1, 2, 1)
	coo.Add(2, 3, 1)
	m := coo.ToCSR()
	part := []int32{0, 0, 1, 1}
	if got := CutEdges(m, part); got != 1 {
		t.Fatalf("CutEdges = %d, want 1 (only the 1-2 edge crosses)", got)
	}
}
