package partition

import (
	"fmt"
	"sort"

	"repro/internal/community"
)

// RowBlocks returns the contiguous equal split of n rows into parts
// blocks: one label per row, labels in [0, parts), block sizes differing
// by at most one (leading blocks take the remainder). This is the
// schedule a work-stealing-free multi-device runtime would use on an
// already-reordered matrix — device d owns a contiguous stripe of rows —
// and the baseline the smarter partitioners are compared against.
// parts must be positive.
func RowBlocks(n, parts int32) []int32 {
	if parts <= 0 {
		panic(fmt.Sprintf("partition: RowBlocks with %d parts", parts))
	}
	out := make([]int32, n)
	if n == 0 {
		return out
	}
	base, extra := n/parts, n%parts
	row := int32(0)
	for p := int32(0); p < parts; p++ {
		size := base
		if p < extra {
			size++
		}
		for i := int32(0); i < size; i++ {
			out[row] = p
			row++
		}
	}
	return out
}

// FromCommunities assigns whole communities to parts so a device split can
// follow RABBIT clusters instead of cutting through them: communities are
// packed by greedy longest-processing-time bin packing — descending size,
// ties by lower community ID, each placed on the currently lightest part,
// ties by lower part ID — which is deterministic and keeps the heaviest
// parts within 4/3 of optimal. Returns one part label per vertex in
// [0, parts). Communities are never split, so a single community larger
// than n/parts yields a proportionally imbalanced split — that imbalance
// is part of what the multi-device experiments measure. parts must be
// positive.
func FromCommunities(comm community.Assignment, parts int32) []int32 {
	if parts <= 0 {
		panic(fmt.Sprintf("partition: FromCommunities with %d parts", parts))
	}
	sizes := comm.Sizes()
	order := make([]int32, comm.Count)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := sizes[order[a]], sizes[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	load := make([]int64, parts)
	partOf := make([]int32, comm.Count)
	for _, c := range order {
		best := int32(0)
		for p := int32(1); p < parts; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		partOf[c] = best
		load[best] += int64(sizes[c])
	}
	out := make([]int32, len(comm.Of))
	for v, c := range comm.Of {
		out[v] = partOf[c]
	}
	return out
}
