package partition

import (
	"testing"

	"repro/internal/community"
	"repro/internal/gen"
)

func TestRowBlocksShape(t *testing.T) {
	for _, tc := range []struct{ n, parts int32 }{
		{10, 4}, {16, 4}, {7, 7}, {3, 8}, {0, 4}, {100, 1},
	} {
		labels := RowBlocks(tc.n, tc.parts)
		if len(labels) != int(tc.n) {
			t.Fatalf("RowBlocks(%d,%d): %d labels", tc.n, tc.parts, len(labels))
		}
		counts := make([]int32, tc.parts)
		prev := int32(0)
		for r, p := range labels {
			if p < 0 || p >= tc.parts {
				t.Fatalf("RowBlocks(%d,%d): row %d labeled %d", tc.n, tc.parts, r, p)
			}
			if p < prev {
				t.Fatalf("RowBlocks(%d,%d): labels not non-decreasing at row %d", tc.n, tc.parts, r)
			}
			prev = p
			counts[p]++
		}
		var lo, hi int32 = 1 << 30, 0
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if tc.n >= tc.parts && hi-lo > 1 {
			t.Fatalf("RowBlocks(%d,%d): block sizes %v differ by more than one", tc.n, tc.parts, counts)
		}
	}
}

func TestRowBlocksPanicsOnZeroParts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for parts=0")
		}
	}()
	RowBlocks(10, 0)
}

func TestFromCommunitiesKeepsCommunitiesWhole(t *testing.T) {
	// 6 communities of very different sizes over 20 vertices.
	labels := []int32{0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 3, 3, 4, 5, 5}
	comm := community.FromLabels(labels)
	part := FromCommunities(comm, 3)
	if len(part) != len(labels) {
		t.Fatalf("%d labels for %d vertices", len(part), len(labels))
	}
	byComm := map[int32]int32{}
	for v, p := range part {
		if p < 0 || p >= 3 {
			t.Fatalf("vertex %d assigned part %d outside [0,3)", v, p)
		}
		c := comm.Of[v]
		if prev, ok := byComm[c]; ok && prev != p {
			t.Fatalf("community %d split across parts %d and %d", c, prev, p)
		}
		byComm[c] = p
	}
	// LPT with 6 communities over 3 parts must populate every part.
	used := map[int32]bool{}
	for _, p := range part {
		used[p] = true
	}
	if len(used) != 3 {
		t.Fatalf("only %d of 3 parts used", len(used))
	}
	// The size-8 giant community must sit alone on its part: the other
	// two parts already balance better without it.
	giant := byComm[0]
	for c, p := range byComm {
		if c != 0 && p == giant {
			t.Fatalf("community %d packed with the giant community on part %d", c, p)
		}
	}
}

func TestFromCommunitiesDeterministic(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 500, Communities: 12, AvgDegree: 8, Mu: 0.2}.Generate(7)
	comm := community.Louvain(m, community.LouvainOptions{})
	a := FromCommunities(comm, 4)
	b := FromCommunities(comm, 4)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("nondeterministic at vertex %d: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestFromCommunitiesBalance(t *testing.T) {
	// 16 equal communities over 4 parts: LPT packs them 4-4-4-4.
	m := gen.PlantedPartition{Nodes: 1600, Communities: 16, AvgDegree: 8, Mu: 0.1}.Generate(3)
	comm := community.FromLabels(RowBlocks(m.NumRows, 16))
	part := FromCommunities(comm, 4)
	counts := make([]int32, 4)
	for _, p := range part {
		counts[p]++
	}
	for p, c := range counts {
		if c != 400 {
			t.Fatalf("part %d has %d vertices, want 400 (%v)", p, c, counts)
		}
	}
}
