// Package partition implements a multilevel graph partitioner in the
// style of METIS (Karypis & Kumar), which the paper lists among the
// techniques RABBIT was shown to match or exceed and whose
// partitioning-based orderings its insights should extend to
// (Section VII). The classic three phases are all here:
//
//  1. Coarsening by heavy-edge matching until the graph is small,
//  2. Initial bisection by greedy BFS region growing on the coarsest
//     graph,
//  3. Uncoarsening with boundary Kernighan–Lin-style refinement.
//
// Recursive bisection yields a k-way partition; ordering partitions
// contiguously produces a locality-oriented matrix reordering
// (reorder.Partition adapts it as a Technique).
package partition

import (
	"sort"

	"repro/internal/check"
	"repro/internal/sparse"
)

// Options controls the multilevel process.
type Options struct {
	// Parts is the number of partitions (rounded up to a power of two by
	// recursive bisection). 0 defaults to 64.
	Parts int32
	// CoarsestSize stops coarsening when the graph has at most this many
	// vertices. 0 defaults to 256.
	CoarsestSize int32
	// RefinePasses bounds boundary refinement sweeps per level. 0
	// defaults to 4.
	RefinePasses int
}

func (o Options) withDefaults() Options {
	if o.Parts <= 0 {
		o.Parts = 64
	}
	if o.CoarsestSize <= 0 {
		o.CoarsestSize = 256
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 4
	}
	return o
}

// graph is a weighted undirected adjacency structure used across levels.
type graph struct {
	n       int32
	offsets []int32
	nbr     []int32
	w       []int32 // edge weights
	vw      []int32 // vertex weights (coarse vertices aggregate)
}

func fromCSR(m *sparse.CSR) *graph {
	sym := m.Symmetrize()
	g := &graph{
		n:       sym.NumRows,
		offsets: make([]int32, sym.NumRows+1),
		vw:      make([]int32, sym.NumRows),
	}
	for r := int32(0); r < sym.NumRows; r++ {
		g.vw[r] = 1
		cols, _ := sym.Row(r)
		for _, c := range cols {
			if c != r {
				g.offsets[r+1]++
			}
		}
	}
	for i := int32(0); i < g.n; i++ {
		g.offsets[i+1] += g.offsets[i]
	}
	g.nbr = make([]int32, g.offsets[g.n])
	g.w = make([]int32, g.offsets[g.n])
	cursor := make([]int32, g.n)
	for r := int32(0); r < sym.NumRows; r++ {
		cols, _ := sym.Row(r)
		for _, c := range cols {
			if c == r {
				continue
			}
			dst := g.offsets[r] + cursor[r]
			cursor[r]++
			g.nbr[dst] = c
			g.w[dst] = 1
		}
	}
	return g
}

// Partition computes a k-way partition of the matrix's symmetrized graph
// and returns one part label per vertex in [0, parts).
func Partition(m *sparse.CSR, opts Options) []int32 {
	opts = opts.withDefaults()
	g := fromCSR(m)
	part := make([]int32, g.n)
	bisect(g, allVertices(g.n), 0, opts.Parts, part, opts)
	return part
}

func allVertices(n int32) []int32 {
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i)
	}
	return vs
}

// bisect recursively splits the vertex subset, assigning final part labels
// in [base, base+parts).
func bisect(g *graph, subset []int32, base, parts int32, part []int32, opts Options) {
	if parts <= 1 || len(subset) <= 1 {
		for _, v := range subset {
			part[v] = base
		}
		return
	}
	side := bipartition(g, subset, opts)
	var left, right []int32
	for i, v := range subset {
		if side[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	half := parts / 2
	bisect(g, left, base, half, part, opts)
	bisect(g, right, base+half, parts-half, part, opts)
}

// bipartition splits one subset into two balanced halves using the
// multilevel scheme; it returns a 0/1 side per subset position.
func bipartition(g *graph, subset []int32, opts Options) []byte {
	sub := induce(g, subset)
	levels := []*coarseLevel{}
	cur := sub
	for cur.n > opts.CoarsestSize {
		lvl := coarsen(cur)
		// Stop when matching stalls (< 10% shrink). Without this guard a
		// level that collapses only a handful of pairs — isolated vertices,
		// or adversarial structures two-hop matching cannot pair — would
		// add O(n) levels and turn coarsening quadratic.
		if int64(lvl.coarse.n)*10 > int64(cur.n)*9 {
			break
		}
		levels = append(levels, lvl)
		cur = lvl.coarse
	}
	side := growBisection(cur)
	refine(cur, side, opts.RefinePasses)
	for i := len(levels) - 1; i >= 0; i-- {
		side = project(levels[i], side)
		refine(levels[i].fine, side, opts.RefinePasses)
	}
	return side
}

// induce extracts the subgraph over the subset with renumbered vertices.
func induce(g *graph, subset []int32) *graph {
	remap := make(map[int32]int32, len(subset))
	for i, v := range subset {
		remap[v] = int32(i)
	}
	out := &graph{
		n:       check.SafeInt32(len(subset)),
		offsets: make([]int32, len(subset)+1),
		vw:      make([]int32, len(subset)),
	}
	for i, v := range subset {
		out.vw[i] = g.vw[v]
		for e := g.offsets[v]; e < g.offsets[v+1]; e++ {
			if _, ok := remap[g.nbr[e]]; ok {
				out.offsets[i+1]++
			}
		}
	}
	for i := int32(0); i < out.n; i++ {
		out.offsets[i+1] += out.offsets[i]
	}
	out.nbr = make([]int32, out.offsets[out.n])
	out.w = make([]int32, out.offsets[out.n])
	cursor := make([]int32, out.n)
	for i, v := range subset {
		for e := g.offsets[v]; e < g.offsets[v+1]; e++ {
			if u, ok := remap[g.nbr[e]]; ok {
				dst := out.offsets[i] + cursor[i]
				cursor[i]++
				out.nbr[dst] = u
				out.w[dst] = g.w[e]
			}
		}
	}
	return out
}

// coarseLevel links a fine graph to its coarsened version.
type coarseLevel struct {
	fine   *graph
	coarse *graph
	// coarseOf maps fine vertices to coarse vertices.
	coarseOf []int32
}

// coarsen collapses matched vertex pairs into coarse vertices. Matching
// runs in two phases: heavy-edge matching (each unmatched vertex pairs
// with its heaviest-edge unmatched neighbor), then a two-hop pass that
// pairs leftover vertices sharing a neighbor. The second phase is what
// keeps hub-heavy graphs coarsening: on a star, HEM matches the hub with
// one leaf and strands every other leaf as a singleton, shrinking the
// graph by ~1 vertex per level — O(n) levels instead of O(log n). Pairing
// leaves through their shared hub restores the ~n/2 shrink.
func coarsen(g *graph) *coarseLevel {
	match := make([]int32, g.n)
	for i := range match {
		match[i] = -1
	}
	// Visit in increasing degree order so low-degree vertices match first
	// (the standard HEM heuristic for better matchings).
	order := make([]int32, g.n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := g.offsets[order[a]+1] - g.offsets[order[a]]
		db := g.offsets[order[b]+1] - g.offsets[order[b]]
		return da < db
	})
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		var best int32 = -1
		var bestW int32 = -1
		for e := g.offsets[v]; e < g.offsets[v+1]; e++ {
			u := g.nbr[e]
			if u != v && match[u] == -1 && g.w[e] > bestW {
				bestW = g.w[e]
				best = u
			}
		}
		if best != -1 {
			match[v] = best
			match[best] = v
		}
	}
	// Two-hop matching over the leftovers: slot[u] remembers the last
	// still-unmatched vertex seen adjacent to u; the next unmatched vertex
	// that reaches u pairs with it. One O(E) sweep, deterministic because
	// it follows the same degree order.
	slot := make([]int32, g.n)
	for i := range slot {
		slot[i] = -1
	}
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		for e := g.offsets[v]; e < g.offsets[v+1]; e++ {
			u := g.nbr[e]
			if w := slot[u]; w != -1 && w != v && match[w] == -1 {
				match[v] = w
				match[w] = v
				slot[u] = -1
				break
			}
			slot[u] = v
		}
	}
	// Assign coarse IDs in visit order; anything still unmatched collapses
	// to a singleton.
	coarseOf := make([]int32, g.n)
	for i := range coarseOf {
		coarseOf[i] = -1
	}
	var nc int32
	for _, v := range order {
		if coarseOf[v] != -1 {
			continue
		}
		if match[v] == -1 {
			match[v] = v
		}
		coarseOf[v] = nc
		coarseOf[match[v]] = nc
		nc++
	}
	// Build the coarse graph by aggregating edges.
	coarse := &graph{
		n:       nc,
		offsets: make([]int32, nc+1),
		vw:      make([]int32, nc),
	}
	for v := int32(0); v < g.n; v++ {
		coarse.vw[coarseOf[v]] += g.vw[v]
	}
	maps := make([]map[int32]int32, nc)
	for v := int32(0); v < g.n; v++ {
		cv := coarseOf[v]
		if maps[cv] == nil {
			maps[cv] = make(map[int32]int32, 4)
		}
		for e := g.offsets[v]; e < g.offsets[v+1]; e++ {
			cu := coarseOf[g.nbr[e]]
			if cu != cv {
				maps[cv][cu] += g.w[e]
			}
		}
	}
	for c := int32(0); c < nc; c++ {
		coarse.offsets[c+1] = coarse.offsets[c] + check.SafeInt32(len(maps[c]))
	}
	coarse.nbr = make([]int32, coarse.offsets[nc])
	coarse.w = make([]int32, coarse.offsets[nc])
	for c := int32(0); c < nc; c++ {
		keys := make([]int32, 0, len(maps[c]))
		for u := range maps[c] {
			keys = append(keys, u)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		i := coarse.offsets[c]
		for _, u := range keys {
			coarse.nbr[i] = u
			coarse.w[i] = maps[c][u]
			i++
		}
	}
	return &coarseLevel{fine: g, coarse: coarse, coarseOf: coarseOf}
}

// growBisection seeds a BFS from vertex 0 of the coarsest graph and grows
// side 0 until it holds half the total vertex weight.
func growBisection(g *graph) []byte {
	side := make([]byte, g.n)
	for i := range side {
		side[i] = 1
	}
	var total int64
	for _, w := range g.vw {
		total += int64(w)
	}
	var grown int64
	queue := make([]int32, 0, g.n)
	visited := make([]bool, g.n)
	for start := int32(0); start < g.n && grown*2 < total; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for head := 0; head < len(queue) && grown*2 < total; head++ {
			v := queue[head]
			side[v] = 0
			grown += int64(g.vw[v])
			for e := g.offsets[v]; e < g.offsets[v+1]; e++ {
				u := g.nbr[e]
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return side
}

// project carries a coarse-side assignment back to the fine graph.
func project(lvl *coarseLevel, coarseSide []byte) []byte {
	side := make([]byte, lvl.fine.n)
	for v := int32(0); v < lvl.fine.n; v++ {
		side[v] = coarseSide[lvl.coarseOf[v]]
	}
	return side
}

// refine runs boundary Kernighan–Lin-style passes: vertices whose move to
// the other side strictly reduces the cut (without unbalancing beyond 55%)
// are moved greedily; a pass with no moves terminates early.
func refine(g *graph, side []byte, passes int) {
	var weight [2]int64
	for v := int32(0); v < g.n; v++ {
		weight[side[v]] += int64(g.vw[v])
	}
	total := weight[0] + weight[1]
	maxSide := total*55/100 + 1
	for pass := 0; pass < passes; pass++ {
		moves := 0
		for v := int32(0); v < g.n; v++ {
			var internal, external int32
			for e := g.offsets[v]; e < g.offsets[v+1]; e++ {
				if side[g.nbr[e]] == side[v] {
					internal += g.w[e]
				} else {
					external += g.w[e]
				}
			}
			gain := external - internal
			other := 1 - side[v]
			if gain > 0 && weight[other]+int64(g.vw[v]) <= maxSide {
				weight[side[v]] -= int64(g.vw[v])
				weight[other] += int64(g.vw[v])
				side[v] = other
				moves++
			}
		}
		if moves == 0 {
			break
		}
	}
}

// CutEdges counts the stored nonzeros of the matrix whose endpoints lie in
// different parts — the partition quality metric.
func CutEdges(m *sparse.CSR, part []int32) int64 {
	var cut int64
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		for _, c := range cols {
			if part[r] != part[c] {
				cut++
			}
		}
	}
	return cut
}

// Order converts a partition into a matrix ordering: parts occupy
// consecutive ID ranges in part order, with the original relative order
// inside each part.
func Order(part []int32, parts int32) sparse.Permutation {
	counts := make([]int32, parts+1)
	for _, p := range part {
		counts[p+1]++
	}
	for i := int32(0); i < parts; i++ {
		counts[i+1] += counts[i]
	}
	perm := make(sparse.Permutation, len(part))
	cursor := make([]int32, parts)
	for v, p := range part {
		perm[v] = counts[p] + cursor[p]
		cursor[p]++
	}
	return check.Perm(perm)
}
