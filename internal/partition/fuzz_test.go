package partition

import (
	"testing"

	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/sparse"
)

// FuzzPartition hammers the partitioner invariants on arbitrary small
// graphs: every vertex gets a label in [0, parts), Order turns any label
// vector into a valid bijection, CutEdges is invariant under a bijective
// relabeling of the parts, and the split helpers (RowBlocks,
// FromCommunities) obey the same label-range contract.
func FuzzPartition(f *testing.F) {
	f.Add([]byte{}, uint8(2))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(4))
	f.Add([]byte{0xff, 0x00, 0x7f, 0x33, 0x21, 0x40, 0x41}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, rawParts uint8) {
		n := int32(len(data)%24) + 1
		parts := int32(rawParts%8) + 1
		coo := sparse.NewCOO(n, n, len(data))
		for i := 0; i+1 < len(data); i += 2 {
			coo.AddSym(int32(data[i])%n, int32(data[i+1])%n, 1)
		}
		m := coo.ToCSR()
		part := Partition(m, Options{Parts: parts, CoarsestSize: 8})
		if len(part) != int(n) {
			t.Fatalf("%d labels for %d vertices", len(part), n)
		}
		for v, p := range part {
			if p < 0 || p >= parts {
				t.Fatalf("vertex %d labeled %d outside [0,%d)", v, p, parts)
			}
		}
		perm := Order(part, parts)
		if err := check.ValidPermutation(perm); err != nil {
			t.Fatalf("Order produced invalid permutation: %v", err)
		}
		// CutEdges counts labels only by equality, so any bijective
		// relabeling of the parts must preserve it.
		relabeled := make([]int32, len(part))
		for v, p := range part {
			relabeled[v] = parts - 1 - p
		}
		if a, b := CutEdges(m, part), CutEdges(m, relabeled); a != b {
			t.Fatalf("CutEdges not relabeling-invariant: %d vs %d", a, b)
		}
		for v, p := range RowBlocks(n, parts) {
			if p < 0 || p >= parts {
				t.Fatalf("RowBlocks labeled row %d as %d outside [0,%d)", v, p, parts)
			}
		}
		cp := FromCommunities(community.FromLabels(part), parts)
		for v, p := range cp {
			if p < 0 || p >= parts {
				t.Fatalf("FromCommunities labeled vertex %d as %d outside [0,%d)", v, p, parts)
			}
		}
	})
}
