// Package quality provides ordering-quality metrics independent of any
// cache model, in the spirit of the reordering analyses the paper cites as
// complementary (Barik et al.'s gap measures, Esfahani et al.'s locality
// analysis): edge-distance statistics, gap profiles, cache-line packing,
// and a windowed working-set estimate that formalizes the Figure 1
// intuition (a community-ordered matrix needs few input-vector elements
// cached at any point of the execution).
package quality

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/sparse"
)

// SkewTopFraction is the paper's skew cut: "the percentage of non-zeros
// connected to the top 10% most connected rows" (Section V-B).
const SkewTopFraction = 0.10

// DegreeSkew returns the fraction of nonzeros belonging to the top 10%
// most connected rows by in-degree (matching the paper's use of in-degrees
// for push-style kernels). High skew indicates strong power-law behaviour
// and predicts that plain community ordering struggles (Section V-B), the
// motivation for RABBIT++'s hub grouping. This is the one shared
// implementation used by the community-stats analysis, the advisor's
// feature extractor, and the CLI/report surfaces.
func DegreeSkew(m *sparse.CSR) float64 {
	return TopFracMass(m.InDegrees(), int64(m.NNZ()), SkewTopFraction)
}

// DegreeSkewFrac generalizes DegreeSkew to an arbitrary top fraction; the
// tests use it to check corner cases away from the paper's 0.10 cut.
func DegreeSkewFrac(m *sparse.CSR, frac float64) float64 {
	return TopFracMass(m.InDegrees(), int64(m.NNZ()), frac)
}

// TopFracMass returns the share of `total` mass owned by the top `frac`
// fraction of entries in deg (at least one entry is always counted). It is
// the kernel of the degree-skew metric, split out so callers with a
// precomputed degree array (e.g. hub detection working from in-degrees)
// avoid recomputing it.
func TopFracMass(deg []int32, total int64, frac float64) float64 {
	if total == 0 || len(deg) == 0 {
		return 0
	}
	sorted := make([]int32, len(deg))
	copy(sorted, deg)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	k := int(float64(len(sorted)) * frac)
	if k < 1 {
		k = 1
	}
	var top int64
	for _, d := range sorted[:k] {
		top += int64(d)
	}
	return float64(top) / float64(total)
}

// AverageEdgeDistance returns the mean |p(u) − p(v)| over stored nonzeros
// under the given ordering. Smaller distances mean irregular accesses land
// closer to the streaming frontier.
func AverageEdgeDistance(m *sparse.CSR, p sparse.Permutation) float64 {
	if m.NNZ() == 0 {
		return 0
	}
	var total float64
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		pr := int64(p[r])
		for _, c := range cols {
			d := pr - int64(p[c])
			if d < 0 {
				d = -d
			}
			total += float64(d)
		}
	}
	return total / float64(m.NNZ())
}

// GapProfile returns a histogram of log2(1+|p(u)−p(v)|) over stored
// nonzeros: bucket i counts gaps in [2^(i-1), 2^i). Mass in low buckets
// indicates locality-friendly orderings (Barik et al.'s "gap" measures).
func GapProfile(m *sparse.CSR, p sparse.Permutation) []int64 {
	profile := make([]int64, 34)
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		pr := int64(p[r])
		for _, c := range cols {
			d := pr - int64(p[c])
			if d < 0 {
				d = -d
			}
			profile[bits.Len64(uint64(d))]++
		}
	}
	return profile
}

// MeanLog2Gap summarizes a gap profile as the average bucket index — an
// ordering scores well when most gaps are small powers of two.
func MeanLog2Gap(profile []int64) float64 {
	var total, weighted int64
	for b, c := range profile {
		total += c
		weighted += int64(b) * c
	}
	if total == 0 {
		return 0
	}
	return float64(weighted) / float64(total)
}

// LinePacking measures how efficiently the ordering packs each row's
// irregular references into cache lines: the total minimal line count
// (ceil(rowLen/elemsPerLine)) divided by the distinct lines actually
// touched per row. 1.0 is perfect packing; values approach
// min(1, elemsPerLine/rowLen-ish) for scattered orderings.
func LinePacking(m *sparse.CSR, p sparse.Permutation, lineBytes int64) float64 {
	elems := lineBytes / 4
	if elems < 1 {
		elems = 1
	}
	var minimal, touched int64
	seen := make(map[int64]struct{}, 64)
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		if len(cols) == 0 {
			continue
		}
		clear(seen)
		for _, c := range cols {
			seen[int64(p[c])/elems] = struct{}{}
		}
		minimal += (int64(len(cols)) + elems - 1) / elems
		touched += int64(len(seen))
	}
	if touched == 0 {
		return 1
	}
	return float64(minimal) / float64(touched)
}

// WindowedWorkingSet estimates the input-vector working set: the average
// number of distinct referenced columns over sliding windows of `window`
// consecutive rows in the new order. Multiplying by the element size gives
// the cache footprint the window needs to avoid capacity misses — the
// quantity Figure 1 illustrates (9 elements randomly ordered vs 4
// community-ordered).
func WindowedWorkingSet(m *sparse.CSR, p sparse.Permutation, window int32) float64 {
	if window <= 0 || m.NumRows == 0 {
		return 0
	}
	inv := p.Inverse()
	var totalDistinct float64
	var windows int
	distinct := make(map[int32]struct{}, 256)
	for start := int32(0); start < m.NumRows; start += window {
		end := start + window
		if end > m.NumRows {
			end = m.NumRows
		}
		clear(distinct)
		for newID := start; newID < end; newID++ {
			cols, _ := m.Row(inv[newID])
			for _, c := range cols {
				distinct[p[c]] = struct{}{}
			}
		}
		totalDistinct += float64(len(distinct))
		windows++
	}
	return totalDistinct / float64(windows)
}

// Summary bundles the quality metrics of one ordering.
type Summary struct {
	AvgEdgeDistance float64
	MeanLog2Gap     float64
	LinePacking     float64
	WorkingSet      float64
	Bandwidth       int32
}

// Measure computes all quality metrics of an ordering in one pass set.
func Measure(m *sparse.CSR, p sparse.Permutation, lineBytes int64, window int32) Summary {
	pm := m.PermuteSymmetric(p)
	return Summary{
		AvgEdgeDistance: AverageEdgeDistance(m, p),
		MeanLog2Gap:     MeanLog2Gap(GapProfile(m, p)),
		LinePacking:     LinePacking(m, p, lineBytes),
		WorkingSet:      WindowedWorkingSet(m, p, window),
		Bandwidth:       pm.Bandwidth(),
	}
}

// Normalized returns the working set as a fraction of the matrix dimension
// (1.0 means every window touches the whole input vector).
func (s Summary) NormalizedWorkingSet(n int32) float64 {
	if n == 0 {
		return 0
	}
	v := s.WorkingSet / float64(n)
	return math.Min(v, 1)
}
