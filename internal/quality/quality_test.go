package quality_test

import (
	"testing"

	"math"

	"repro/internal/gen"
	"repro/internal/quality"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

func chain(n int32) *sparse.CSR {
	coo := sparse.NewCOO(n, n, int(2*n))
	for i := int32(0); i+1 < n; i++ {
		coo.AddSym(i, i+1, 1)
	}
	return coo.ToCSR()
}

func TestAverageEdgeDistanceChain(t *testing.T) {
	m := chain(100)
	id := sparse.Identity(100)
	if got := quality.AverageEdgeDistance(m, id); got != 1 {
		t.Fatalf("chain identity distance = %v, want 1", got)
	}
	// Reversal preserves adjacency distances exactly.
	rev := make(sparse.Permutation, 100)
	for i := range rev {
		rev[i] = int32(99 - i)
	}
	if got := quality.AverageEdgeDistance(m, rev); got != 1 {
		t.Fatalf("chain reversed distance = %v, want 1", got)
	}
	// A random order scatters edges widely.
	rnd := reorder.Random{Seed: 1}.Order(m)
	if got := quality.AverageEdgeDistance(m, rnd); got < 10 {
		t.Fatalf("chain random distance = %v, want large", got)
	}
}

func TestGapProfileAndMean(t *testing.T) {
	m := chain(64)
	prof := quality.GapProfile(m, sparse.Identity(64))
	// All gaps are exactly 1 -> bucket Len64(1)=1.
	var total int64
	for b, c := range prof {
		total += c
		if c > 0 && b != 1 {
			t.Fatalf("gap mass in bucket %d, want all in bucket 1", b)
		}
	}
	if total != int64(m.NNZ()) {
		t.Fatalf("profile covers %d of %d nonzeros", total, m.NNZ())
	}
	if got := quality.MeanLog2Gap(prof); got != 1 {
		t.Fatalf("MeanLog2Gap = %v, want 1", got)
	}
	if quality.MeanLog2Gap(make([]int64, 34)) != 0 {
		t.Fatal("empty profile mean should be 0")
	}
}

func TestLinePackingPerfectAndScattered(t *testing.T) {
	// Star: one row references the line-aligned columns 0..31. With 128B
	// lines (32 elements) identity packs them into exactly 1 line; with
	// 32B lines (8 elements) into exactly 4.
	coo := sparse.NewCOO(64, 64, 32)
	for c := int32(0); c < 32; c++ {
		coo.Add(33, c, 1)
	}
	m := coo.ToCSR()
	if got := quality.LinePacking(m, sparse.Identity(64), 128); got != 1 {
		t.Fatalf("contiguous star packing at 128B = %v, want 1", got)
	}
	if got := quality.LinePacking(m, sparse.Identity(64), 32); got != 1 {
		t.Fatalf("contiguous star packing at 32B = %v, want 1", got)
	}
	// Stride the 32 referenced columns to every other slot: they then span
	// all 8 of the 8-element lines, exactly 2x the minimal 4.
	spread := make(sparse.Permutation, 64)
	for i := int32(0); i < 32; i++ {
		spread[i] = 2 * i
	}
	for i := int32(32); i < 64; i++ {
		spread[i] = 2*(i-32) + 1
	}
	if err := spread.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := quality.LinePacking(m, spread, 32); got != 0.5 {
		t.Fatalf("strided packing at 32B = %v, want 0.5", got)
	}
	rnd := reorder.Random{Seed: 3}.Order(m)
	if got := quality.LinePacking(m, rnd, 32); got >= 1 {
		t.Fatalf("scattered packing = %v, want < 1", got)
	}
}

func TestWindowedWorkingSetCommunityVsRandom(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 2048, Communities: 32, AvgDegree: 10, Mu: 0.05}.Generate(1)
	rabbit := reorder.Rabbit{}.Order(m)
	random := reorder.Random{Seed: 2}.Order(m)
	wr := quality.WindowedWorkingSet(m, rabbit, 64)
	wrnd := quality.WindowedWorkingSet(m, random, 64)
	if wr*2 > wrnd {
		t.Fatalf("rabbit working set %v vs random %v; community ordering must shrink the window footprint", wr, wrnd)
	}
}

func TestMeasureSummary(t *testing.T) {
	m := gen.Mesh2D{Width: 30, Height: 30}.Generate(2)
	s := quality.Measure(m, sparse.Identity(m.NumRows), 128, 32)
	if s.AvgEdgeDistance <= 0 || s.LinePacking <= 0 || s.WorkingSet <= 0 {
		t.Fatalf("summary has non-positive fields: %+v", s)
	}
	if s.LinePacking > 1.000001 {
		t.Fatalf("packing %v exceeds 1", s.LinePacking)
	}
	if nw := s.NormalizedWorkingSet(m.NumRows); nw <= 0 || nw > 1 {
		t.Fatalf("normalized working set %v out of (0,1]", nw)
	}
	if s.NormalizedWorkingSet(0) != 0 {
		t.Fatal("zero-dimension normalization should be 0")
	}
}

func TestEmptyMatrixMetrics(t *testing.T) {
	m := &sparse.CSR{NumRows: 4, NumCols: 4, RowOffsets: make([]int32, 5)}
	id := sparse.Identity(4)
	if quality.AverageEdgeDistance(m, id) != 0 {
		t.Fatal("empty distance != 0")
	}
	if quality.LinePacking(m, id, 128) != 1 {
		t.Fatal("empty packing != 1")
	}
}

func TestQuickPackingAndGapBounds(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		m := gen.ErdosRenyi{Nodes: 300, AvgDegree: 5}.Generate(seed)
		p := reorder.Random{Seed: seed}.Order(m)
		if pk := quality.LinePacking(m, p, 128); pk <= 0 || pk > 1+1e-9 {
			t.Fatalf("seed %d: LinePacking = %v out of (0,1]", seed, pk)
		}
		prof := quality.GapProfile(m, p)
		var total int64
		for _, c := range prof {
			total += c
		}
		if total != int64(m.NNZ()) {
			t.Fatalf("seed %d: gap profile covers %d of %d nonzeros", seed, total, m.NNZ())
		}
		if g := quality.MeanLog2Gap(prof); g < 0 || g > 34 {
			t.Fatalf("seed %d: MeanLog2Gap = %v", seed, g)
		}
	}
}

func TestWorkingSetBounds(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 500, Communities: 5, AvgDegree: 6, Mu: 0.2}.Generate(9)
	id := sparse.Identity(m.NumRows)
	ws := quality.WindowedWorkingSet(m, id, 50)
	if ws <= 0 || ws > float64(m.NumRows) {
		t.Fatalf("working set %v out of (0, N]", ws)
	}
	// Window of the whole matrix = total distinct referenced columns.
	whole := quality.WindowedWorkingSet(m, id, m.NumRows)
	distinct := map[int32]bool{}
	for _, c := range m.ColIndices {
		distinct[c] = true
	}
	if whole != float64(len(distinct)) {
		t.Fatalf("whole-matrix working set %v != distinct columns %d", whole, len(distinct))
	}
}

// star returns an n-node star: every node connects to node 0 (both ways),
// giving node 0 an in-degree of n-1.
func star(n int32) *sparse.CSR {
	coo := sparse.NewCOO(n, n, int(2*n))
	for i := int32(1); i < n; i++ {
		coo.AddSym(0, i, 1)
	}
	return coo.ToCSR()
}

func TestDegreeSkewStar(t *testing.T) {
	m := star(20)
	// Top 10% of 20 nodes = 2 nodes: the hub (in-degree 19) plus one leaf
	// (in-degree 1) own 20 of the 38 nonzeros.
	want := 20.0 / 38.0
	if got := quality.DegreeSkew(m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("quality.DegreeSkew(star) = %v, want %v", got, want)
	}
}

func TestDegreeSkewFracColumnHeavy(t *testing.T) {
	// 4x4 with column 0 holding 4 of 6 nonzeros: the top 25% (1 column)
	// owns 4/6.
	coo := sparse.NewCOO(4, 4, 8)
	for i := int32(0); i < 4; i++ {
		coo.Add(i, 0, 1)
	}
	coo.Add(0, 1, 1)
	coo.Add(1, 2, 1)
	m := coo.ToCSR()
	if skew := quality.DegreeSkewFrac(m, 0.25); skew < 0.66 || skew > 0.67 {
		t.Fatalf("quality.DegreeSkewFrac(0.25) = %v, want 4/6", skew)
	}
}

func TestDegreeSkewBoundsAndEmpty(t *testing.T) {
	if s := quality.DegreeSkew(&sparse.CSR{RowOffsets: []int32{0}}); s != 0 {
		t.Fatalf("quality.DegreeSkew(empty) = %v, want 0", s)
	}
	for seed := uint64(0); seed < 10; seed++ {
		m := gen.RMAT{LogNodes: 7, AvgDegree: 5, A: 0.5, B: 0.2, C: 0.2}.Generate(seed)
		s := quality.DegreeSkew(m)
		if s < 0 || s > 1 {
			t.Fatalf("seed %d: DegreeSkew = %v out of [0,1]", seed, s)
		}
	}
}

func TestTopFracMassDegenerate(t *testing.T) {
	if v := quality.TopFracMass(nil, 0, 0.1); v != 0 {
		t.Fatalf("quality.TopFracMass(nil) = %v, want 0", v)
	}
	// One entry always counts even when frac*len < 1.
	if v := quality.TopFracMass([]int32{3, 1}, 4, 0.1); v != 0.75 {
		t.Fatalf("TopFracMass = %v, want 0.75", v)
	}
}
