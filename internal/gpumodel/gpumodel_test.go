package gpumodel

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/trace"
)

func TestDeviceSpecs(t *testing.T) {
	d := A6000()
	if d.L2.CapacityBytes != 6<<20 {
		t.Fatalf("A6000 L2 = %d, want 6 MB", d.L2.CapacityBytes)
	}
	if err := d.L2.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.PeakBandwidth != 768e9 {
		t.Fatalf("A6000 peak BW = %v", d.PeakBandwidth)
	}
	// Paper: A6000 needs arithmetic intensity >= ~50 to be compute bound.
	ai := d.ComputeBoundIntensity()
	if ai < 45 || ai > 55 {
		t.Fatalf("compute-bound intensity = %v, want ~50", ai)
	}
}

func TestScaledDevicesPreserveRatios(t *testing.T) {
	a := A6000()
	for _, d := range []Device{SimDevice(), SimDeviceSmall()} {
		if err := d.L2.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		// Scaling must preserve the compute-bound intensity (we scale
		// bandwidth and compute together).
		if got, want := d.ComputeBoundIntensity(), a.ComputeBoundIntensity(); got < want*0.99 || got > want*1.01 {
			t.Fatalf("%s: compute-bound intensity %v, want %v", d.Name, got, want)
		}
		if d.L2.LineBytes != a.L2.LineBytes || d.L2.Ways != a.L2.Ways {
			t.Fatalf("%s: line/ways changed", d.Name)
		}
	}
}

func TestCompulsoryBytesFormulas(t *testing.T) {
	const n, nnz = 1000, 5000
	// SpMV-CSR: (2N + (N+1) + 2NZ) * 4 (Section IV-B).
	if got, want := (Kernel{Kind: SpMVCSR}).CompulsoryBytes(n, nnz), int64((2*n+(n+1)+2*nnz)*4); got != want {
		t.Fatalf("SpMV-CSR compulsory = %d, want %d", got, want)
	}
	if got, want := (Kernel{Kind: SpMVCOO}).CompulsoryBytes(n, nnz), int64((2*n+3*nnz)*4); got != want {
		t.Fatalf("SpMV-COO compulsory = %d, want %d", got, want)
	}
	if got, want := (Kernel{Kind: SpMMCSR, K: 4}).CompulsoryBytes(n, nnz), int64((2*n*4+(n+1)+2*nnz)*4); got != want {
		t.Fatalf("SpMM-4 compulsory = %d, want %d", got, want)
	}
}

func TestArithmeticIntensityBound(t *testing.T) {
	// Paper: the theoretical upper bound on SpMV arithmetic intensity is
	// 0.25 FLOP/byte.
	ai := (Kernel{Kind: SpMVCSR}).ArithmeticIntensity(1000, 1_000_000)
	if ai <= 0 || ai > 0.25 {
		t.Fatalf("SpMV arithmetic intensity = %v, want in (0, 0.25]", ai)
	}
	// SpMV is far below the compute-bound threshold on every device.
	if ai >= A6000().ComputeBoundIntensity() {
		t.Fatal("SpMV should be memory bound on the A6000")
	}
}

func TestKernelNames(t *testing.T) {
	cases := map[string]Kernel{
		"SpMV-CSR":     {Kind: SpMVCSR},
		"SpMV-COO":     {Kind: SpMVCOO},
		"SpMM-CSR-4":   {Kind: SpMMCSR, K: 4},
		"SpMM-CSR-256": {Kind: SpMMCSR, K: 256},
	}
	for want, k := range cases {
		if got := k.String(); got != want {
			t.Fatalf("Kernel.String() = %q, want %q", got, want)
		}
	}
}

func TestIdealTimePositiveAndLinear(t *testing.T) {
	d := A6000()
	k := Kernel{Kind: SpMVCSR}
	t1 := IdealTime(d, k, 1_000_000, 10_000_000)
	t2 := IdealTime(d, k, 2_000_000, 20_000_000)
	if t1 <= 0 {
		t.Fatal("ideal time must be positive")
	}
	if t2 < t1*1.9 || t2 > t1*2.1 {
		t.Fatalf("ideal time should scale linearly: %v vs %v", t1, t2)
	}
}

func TestProjectTimePenalizesMisses(t *testing.T) {
	d := A6000()
	lowMiss := cachesim.Stats{Accesses: 1000, Misses: 10, LineBytes: 128}
	highMiss := cachesim.Stats{Accesses: 1000, Misses: 900, LineBytes: 128}
	tl := ProjectTime(d, lowMiss)
	th := ProjectTime(d, highMiss)
	if th <= tl {
		t.Fatal("more misses must project a longer run time")
	}
	// With equal traffic, higher miss fraction means more time.
	sameTrafficLow := cachesim.Stats{Accesses: 100000, Misses: 900, LineBytes: 128}
	if ProjectTime(d, sameTrafficLow) >= th {
		t.Fatal("same traffic at lower miss fraction must be faster")
	}
}

// TestNormalizedTrafficNearOneForStreaming is an end-to-end sanity check
// of the whole model stack: a matrix whose working set fits in L2 should
// incur almost exactly compulsory traffic, so normalized traffic ≈ 1.
func TestNormalizedTrafficNearOneForStreaming(t *testing.T) {
	m := gen.Mesh2D{Width: 60, Height: 60}.Generate(1)
	d := A6000() // 6 MB dwarfs this matrix
	s := cachesim.SimulateLRU(d.L2, trace.SpMVCSR(m, d.L2.LineBytes))
	k := Kernel{Kind: SpMVCSR}
	nt := NormalizedTraffic(s, k, int64(m.NumRows), int64(m.NNZ()))
	if nt < 0.8 || nt > 1.3 {
		t.Fatalf("normalized traffic = %v for an in-cache matrix, want ~1 (line rounding aside)", nt)
	}
	nr := NormalizedRuntime(d, s, k, int64(m.NumRows), int64(m.NNZ()))
	if nr < nt {
		t.Fatalf("normalized runtime %v below normalized traffic %v", nr, nt)
	}
}

func TestRandomOrderingInflatesTraffic(t *testing.T) {
	// A scrambled community graph against a small L2 must show traffic
	// well above compulsory — the Figure 2 RANDOM regime.
	m := gen.PlantedPartition{Nodes: 20000, Communities: 100, AvgDegree: 10, Mu: 0.1}.Generate(2)
	d := SimDeviceSmall()
	s := cachesim.SimulateLRU(d.L2, trace.SpMVCSR(m, d.L2.LineBytes))
	k := Kernel{Kind: SpMVCSR}
	nt := NormalizedTraffic(s, k, int64(m.NumRows), int64(m.NNZ()))
	if nt < 1.5 {
		t.Fatalf("scrambled graph normalized traffic = %v, want well above 1", nt)
	}
}

func TestCSCKernelModel(t *testing.T) {
	k := Kernel{Kind: SpMVCSC}
	if k.String() != "SpMV-CSC" {
		t.Fatalf("name = %q", k.String())
	}
	// Pull SpMV moves the same operand arrays as push.
	if k.CompulsoryBytes(100, 500) != (Kernel{Kind: SpMVCSR}).CompulsoryBytes(100, 500) {
		t.Fatal("CSC compulsory traffic must equal CSR's")
	}
	if k.Flops(500) != 1000 {
		t.Fatalf("Flops = %d, want 2 per nonzero", k.Flops(500))
	}
}

func TestHostDeviceAndRoofline(t *testing.T) {
	l2 := cachesim.Config{CapacityBytes: 1 << 20, LineBytes: 64, Ways: 16}
	d := HostDevice("host", 10e9, l2)
	if err := d.L2.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.ComputeBoundIntensity(); got != 50 {
		t.Fatalf("compute-bound intensity = %v, want 50", got)
	}
	k := Kernel{Kind: SpMVCSR}
	// Memory-bound: roofline equals traffic/bandwidth.
	if got, want := RooflineTime(d, k, 1000, 10e9), 1.0; got != want {
		t.Fatalf("roofline = %v, want %v", got, want)
	}
	// Compute term dominates only with absurd traffic=0 cases.
	if RooflineTime(d, k, 1_000_000, 0) <= 0 {
		t.Fatal("compute term must keep roofline positive at zero traffic")
	}
}
