// Package gpumodel holds the performance model of the evaluation platform:
// device specifications (Table I), the analytic compulsory-traffic and
// ideal-run-time formulas of Section IV-B, and the projection from
// simulated cache statistics to kernel run time.
//
// The paper measures on an NVIDIA A6000 and validates an L2 cache simulator
// against it (within 4%, Section VI-B); all of this repository's
// experiments run on that simulator path. A6000() carries the real
// device's numbers; SimDevice()/SimDeviceSmall() are proportionally scaled
// variants matched to the scaled corpus (see internal/gen), preserving the
// footprint-to-capacity ratios that every reported metric depends on.
package gpumodel

import (
	"fmt"
	"math"

	"repro/internal/cachesim"
)

// Device describes an evaluation platform.
type Device struct {
	// Name labels the platform in reports.
	Name string
	// PeakBandwidth is the theoretical DRAM bandwidth in bytes/second
	// (768 GB/s for the A6000).
	PeakBandwidth float64
	// EffectiveBandwidth is the achievable bandwidth in bytes/second as a
	// BabelStream-style microbenchmark measures it (672 GB/s on the
	// A6000); ideal run time divides compulsory traffic by this.
	EffectiveBandwidth float64
	// PeakFlops is single-precision peak compute in FLOP/s.
	PeakFlops float64
	// L2 is the last-level cache geometry.
	L2 cachesim.Config
	// MemoryBytes is main-memory capacity (the Section III selection rule
	// caps nonzero counts against it).
	MemoryBytes int64
	// FineGrainPenalty scales the run-time cost of irregular misses: see
	// ProjectTime. Calibrated so the run-time/traffic relationship matches
	// the spread the paper reports in Figure 2's caption (traffic 3.36× →
	// run time 6.21× for RANDOM; 1.27× → 1.54× for RABBIT).
	FineGrainPenalty float64
	// Devices is the number of compute tiles the device is modeled as: 1
	// is the paper's flat single-L2 platform; K > 1 splits the L2 into K
	// private caches (PerDeviceL2) joined by an interconnect, the shape
	// multi-CU accelerator models (e.g. akkalat's 4/16/64-CU GPUs) take.
	// internal/multidev consumes this; every flat-path formula in this
	// package ignores it. Zero means 1.
	Devices int
	// RemotePenalty is the interconnect cost multiplier of a remote line:
	// a miss on a line homed on another device moves across the
	// inter-device fabric at 1/RemotePenalty of DRAM transfer speed, so
	// multidev.ProjectTime charges it RemotePenalty× the bytes. 4 models
	// a mesh hop costing a few times a local DRAM access; 1 models a free
	// interconnect (traffic-only accounting). Ignored when Devices <= 1.
	RemotePenalty float64
}

const gb = 1e9

// A6000 returns the paper's evaluation platform (Table I): 768 GB/s peak
// DRAM bandwidth (672 GB/s achievable per BabelStream), 38.7 TFLOPS
// single-precision, 6 MB 16-way L2 with 128-byte lines, 48 GB of memory.
func A6000() Device {
	return Device{
		Name:               "NVIDIA A6000",
		PeakBandwidth:      768 * gb,
		EffectiveBandwidth: 672 * gb,
		PeakFlops:          38.7e12,
		L2:                 cachesim.Config{CapacityBytes: 6 << 20, LineBytes: 128, Ways: 16},
		MemoryBytes:        48 << 30,
		FineGrainPenalty:   1.0,
		Devices:            1,
		RemotePenalty:      4.0,
	}
}

// WithDevices returns a copy of the device remodeled as k compute tiles:
// Devices is set to k while every aggregate resource (total L2 capacity,
// bandwidths, compute, memory) is unchanged, so K-device and flat runs
// compare at constant silicon. Per-tile geometry comes from PerDeviceL2.
// k must be positive.
func (d Device) WithDevices(k int) Device {
	if k <= 0 {
		panic(fmt.Sprintf("gpumodel: WithDevices(%d)", k))
	}
	d.Devices = k
	return d
}

// NumDevices returns the modeled tile count, treating the zero value as
// the flat single-device platform.
func (d Device) NumDevices() int {
	if d.Devices <= 0 {
		return 1
	}
	return d.Devices
}

// PerDeviceL2 returns the private L2 geometry of one tile: the total L2
// capacity split evenly across Devices (cachesim.Config.Split). For
// Devices <= 1 it is the flat L2 unchanged.
func (d Device) PerDeviceL2() cachesim.Config {
	return d.L2.Split(d.NumDevices())
}

// SimDevice returns the A6000 scaled 24× down in cache capacity (256 KB
// L2) with bandwidths scaled by the same factor, matched to the Full
// corpus preset (32K–512K rows).
func SimDevice() Device {
	d := A6000()
	d.Name = "SimA6000/24 (full corpus)"
	d.L2.CapacityBytes = 256 << 10
	d.PeakBandwidth /= 24
	d.EffectiveBandwidth /= 24
	d.PeakFlops /= 24
	d.MemoryBytes /= 24
	return d
}

// SimDeviceSmall returns the variant matched to the Small corpus preset
// (4K–64K rows): a 32 KB L2.
func SimDeviceSmall() Device {
	d := A6000()
	d.Name = "SimA6000/192 (small corpus)"
	d.L2.CapacityBytes = 32 << 10
	d.PeakBandwidth /= 192
	d.EffectiveBandwidth /= 192
	d.PeakFlops /= 192
	d.MemoryBytes /= 192
	return d
}

// ComputeBoundIntensity returns the arithmetic intensity (FLOP/byte) above
// which kernels on this device become compute bound: PeakFlops divided by
// peak bandwidth (≈50 for the A6000, Section IV-B).
func (d Device) ComputeBoundIntensity() float64 {
	return d.PeakFlops / d.PeakBandwidth
}

// Kind identifies a sparse kernel.
type Kind int

const (
	// SpMVCSR is Algorithm 1: sparse matrix (CSR) times dense vector.
	SpMVCSR Kind = iota
	// SpMVCOO is the coordinate-format SpMV (Table IV).
	SpMVCOO
	// SpMMCSR multiplies a CSR matrix by a dense |N|×K matrix (Table IV).
	SpMMCSR
	// SpMVCSC is the pull-style SpMV over Compressed Sparse Column
	// storage: the output vector becomes the irregular operand.
	SpMVCSC
	// SpGEMMCSR is Gustavson sparse×sparse C = A·B with row-wise
	// execution: every A-nonzero dereferences one B row.
	SpGEMMCSR
	// SpGEMMCSRCluster is SpGEMM with cluster-wise execution: the outer
	// loop is tiled by community row blocks, each distinct B row is
	// loaded once per tile, and tile accumulators spill to C at tile end.
	SpGEMMCSRCluster
)

// SpGEMMWork carries the data-dependent work terms of an SpGEMM kernel,
// which — unlike every (n, nnz)-parameterized kernel above — cannot be
// derived from the operand shape alone. Populate it from
// kernels.SpGEMMSymbolic on the same operands the trace was generated
// from; all three counts are invariant under symmetric relabeling, so one
// symbolic pass covers every reordering of a matrix.
type SpGEMMWork struct {
	// Flops is the multiply–add pair count Σ over nonzeros a_ik of
	// nnz(B row k).
	Flops int64
	// NNZB is the nonzero count of the B operand.
	NNZB int64
	// NNZC is the nonzero count of the output C.
	NNZC int64
}

// Kernel is a kernel kind plus its dense width (K is meaningful only for
// SpMMCSR) and, for the SpGEMM kinds, the symbolic work terms.
type Kernel struct {
	// Kind selects the memory-access pattern the traffic model and trace
	// generators reproduce.
	Kind Kind
	// K is the dense right-hand-side width of SpMMCSR; ignored otherwise.
	K int64
	// Work parameterizes the SpGEMM kinds; zero (and ignored) for all
	// others. String() deliberately excludes it so simulation-cache keys
	// built from the kernel name stay stable whether or not a caller
	// bothered to attach Work.
	Work SpGEMMWork
}

// String names the kernel as the paper's tables do.
func (k Kernel) String() string {
	switch k.Kind {
	case SpMVCSR:
		return "SpMV-CSR"
	case SpMVCOO:
		return "SpMV-COO"
	case SpMMCSR:
		return fmt.Sprintf("SpMM-CSR-%d", k.K)
	case SpMVCSC:
		return "SpMV-CSC"
	case SpGEMMCSR:
		return "SpGEMM-CSR"
	case SpGEMMCSRCluster:
		return "SpGEMM-CSR-cluster"
	default:
		return "Kernel(?)"
	}
}

// CompulsoryBytes returns the minimum DRAM traffic for the kernel on an
// n×n matrix with nnz nonzeros, assuming 4-byte elements: every operand
// array crosses DRAM exactly once (Section IV-B). For CSR SpMV this is
// (2·N + (N+1) + 2·NZ)·4 — the X and Y vectors plus rowOffsets, coords,
// and values.
func (k Kernel) CompulsoryBytes(n, nnz int64) int64 {
	const e = 4
	switch k.Kind {
	case SpMVCSR, SpMVCSC:
		// CSC moves the same five arrays: X, Y, offsets, indices, values.
		return (2*n + (n + 1) + 2*nnz) * e
	case SpMVCOO:
		return (2*n + 3*nnz) * e
	case SpMMCSR:
		return (2*n*k.K + (n + 1) + 2*nnz) * e
	case SpGEMMCSR, SpGEMMCSRCluster:
		// Three CSR matrices cross DRAM once each: A (the n/nnz
		// arguments), B (Work.NNZB), and the output C (Work.NNZC). B and C
		// are modeled with n rows apiece — exact for the square C = A·A
		// products the experiments run.
		return (3*(n+1) + 2*(nnz+k.Work.NNZB+k.Work.NNZC)) * e
	default:
		panic("gpumodel: unknown kernel kind")
	}
}

// Flops returns the floating-point work of the kernel: one multiply-add
// per nonzero (per dense column for SpMM).
func (k Kernel) Flops(nnz int64) int64 {
	switch k.Kind {
	case SpMMCSR:
		return 2 * nnz * k.K
	case SpGEMMCSR, SpGEMMCSRCluster:
		return 2 * k.Work.Flops
	default:
		return 2 * nnz
	}
}

// ArithmeticIntensity returns FLOPs per compulsory byte; for SpMV the
// upper bound is 0.25 (Section IV-B).
func (k Kernel) ArithmeticIntensity(n, nnz int64) float64 {
	return float64(k.Flops(nnz)) / float64(k.CompulsoryBytes(n, nnz))
}

// IdealTime returns the minimum execution time in seconds on the device:
// compulsory traffic moved at the achievable bandwidth, per the roofline
// model with the kernel far below the compute-bound intensity.
func IdealTime(d Device, k Kernel, n, nnz int64) float64 {
	return float64(k.CompulsoryBytes(n, nnz)) / d.EffectiveBandwidth
}

// ProjectTime converts simulated L2 statistics into a projected kernel run
// time. DRAM traffic moves at the achievable bandwidth, derated by the
// fraction of L2 accesses that miss: fine-grained irregular misses achieve
// lower effective DRAM utilization than streaming fills (poor row-buffer
// locality and memory-level parallelism), which is why the paper's
// run-time ratios exceed its traffic ratios (Figure 2's caption).
//
//	time = traffic / bandwidth · (1 + penalty · missFraction)
func ProjectTime(d Device, s cachesim.Stats) float64 {
	base := float64(s.TrafficBytes()) / d.EffectiveBandwidth
	if s.Accesses == 0 {
		return base
	}
	missFraction := float64(s.Misses) / float64(s.Accesses)
	return base * (1 + d.FineGrainPenalty*missFraction)
}

// NormalizedTraffic returns simulated DRAM traffic divided by the
// analytic compulsory traffic — the y-axis of Figure 2. Values below 1.0
// are possible when the analytic formula overestimates (e.g. matrices
// whose empty rows mean parts of X are never referenced; footnote 2).
func NormalizedTraffic(s cachesim.Stats, k Kernel, n, nnz int64) float64 {
	return float64(s.TrafficBytes()) / float64(k.CompulsoryBytes(n, nnz))
}

// NormalizedRuntime returns projected run time divided by ideal run time —
// the metric of Figure 3 and Tables II and IV.
func NormalizedRuntime(d Device, s cachesim.Stats, k Kernel, n, nnz int64) float64 {
	return ProjectTime(d, s) / IdealTime(d, k, n, nnz)
}

// HostDevice builds a Device from a measured host bandwidth (bytes/second,
// e.g. from kernels.MeasureStreamBandwidth) and a last-level cache
// geometry, so host-side runs can be normalized against their own ideal
// exactly as the paper normalizes GPU runs against the A6000's.
func HostDevice(name string, achievableBW float64, l2 cachesim.Config) Device {
	return Device{
		Name:               name,
		PeakBandwidth:      achievableBW,
		EffectiveBandwidth: achievableBW,
		// Compute throughput is irrelevant for the memory-bound kernels
		// studied here; set it so the compute-bound intensity matches the
		// A6000's ~50 FLOP/B.
		PeakFlops:        achievableBW * 50,
		L2:               l2,
		MemoryBytes:      1 << 34,
		FineGrainPenalty: 1.0,
		Devices:          1,
		RemotePenalty:    4.0,
	}
}

// RooflineTime returns the roofline execution time for moving the given
// DRAM traffic and executing the kernel's FLOPs: the maximum of the memory
// time and the compute time. For every kernel in this repository the
// memory term dominates (SpMV's arithmetic intensity tops out at 0.25
// FLOP/B, Section IV-B).
func RooflineTime(d Device, k Kernel, nnz int64, trafficBytes int64) float64 {
	mem := float64(trafficBytes) / d.EffectiveBandwidth
	compute := float64(k.Flops(nnz)) / d.PeakFlops
	if compute > mem {
		return compute
	}
	return mem
}

// TraceAccessUpperBound returns a safe upper bound on the number of
// line-granular accesses the kernel's reference stream (package trace)
// emits over an n-row matrix with nnz nonzeros, in units of emitted line
// IDs. Trace recorders use it as a capacity hint so the recording never
// grows by append doubling. The arithmetic saturates at math.MaxInt64
// instead of wrapping (the recorders clamp the hint anyway), and negative
// or degenerate inputs yield 0, never a panic.
func (k Kernel) TraceAccessUpperBound(n, nnz, lineBytes int64) int64 {
	if n < 0 || nnz < 0 || lineBytes <= 0 {
		return 0
	}
	switch k.Kind {
	case SpMVCSR, SpMVCSC:
		// Per row: two row-offset stream touches (≤2 emits each) plus one
		// Y/X stream touch (≤2). Per nonzero: column + value stream
		// touches (≤2 each) plus one irregular dereference.
		return satAdd(satMul(6, n), satMul(5, nnz))
	case SpMVCOO:
		// Per nonzero: three triplet stream touches, one irregular X
		// dereference, one Y stream touch.
		return satMul(9, nnz)
	case SpMMCSR:
		// Dense rows of K 4-byte elements may straddle lines: a row spans
		// at most K*4/lineBytes + 1 lines. Per matrix row the C write
		// streams one dense row (≤2 emits per spanned line) after two
		// row-offset touches; per nonzero the B read touches one dense
		// row after the column/value stream touches.
		span := satAdd(satMul(k.K, 4)/lineBytes, 1)
		perRow := satAdd(4, satMul(2, span))
		perNNZ := satAdd(4, span)
		return satAdd(satMul(perRow, n), satMul(perNNZ, nnz))
	case SpGEMMCSR, SpGEMMCSRCluster:
		// Output-growing kernel: the emit count depends on nnz(C) and the
		// flop count, neither derivable from (n, nnz). The symbolic pass
		// (kernels.SpGEMMSymbolic → Kernel.Work) supplies both; the naive
		// shape-only bound (nnz·n) would saturate the recorders' hint
		// clamp and allocate gigabytes. Per A row: ≤4 row-offset emits
		// plus ≤4 C row-offset emits. Per A nonzero: ≤4 column/value
		// stream emits, 2 B-row-offset emits, and ≤2 segment-boundary
		// lines per B-row visit. Each flop contributes ≤2 B data lines
		// (column + value); each C nonzero ≤4 streamed write emits.
		// Cluster-wise execution only dedups B-row visits, so the
		// row-wise bound covers both kinds.
		return satAdd(
			satAdd(satMul(8, n), satMul(8, nnz)),
			satAdd(satMul(2, k.Work.Flops), satMul(4, k.Work.NNZC)),
		)
	default:
		panic("gpumodel: unknown kernel kind")
	}
}

// satMul multiplies non-negative int64s, saturating at math.MaxInt64.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// satAdd adds non-negative int64s, saturating at math.MaxInt64.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}
