package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("Mean([1,2,3,4]) != 2.5")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatal("GeoMean([1,4]) != 2")
	}
	if !almost(GeoMean([]float64{8}), 8) {
		t.Fatal("GeoMean([8]) != 8")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean of non-positive did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanLeqMean(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) + 1
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Fatalf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty Max/Min != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("percentile endpoints wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("P50 = %v, want 3", Percentile(xs, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile != 0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if !almost(Pearson(xs, ys), 1) {
		t.Fatalf("perfect positive correlation = %v", Pearson(xs, ys))
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !almost(Pearson(xs, neg), -1) {
		t.Fatalf("perfect negative correlation = %v", Pearson(xs, neg))
	}
	if Pearson(xs, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Fatal("zero-variance correlation != 0")
	}
	if Pearson(xs, ys[:3]) != 0 {
		t.Fatal("length mismatch should return 0")
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		for i, r := range raw {
			xs[i] = float64(r) + next()
			ys[i] = next() * 100
		}
		p := Pearson(xs, ys)
		return p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
