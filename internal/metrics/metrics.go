// Package metrics provides the small statistics toolkit the experiments
// report with: means, geometric means, percentiles, and the Pearson
// correlations of Section V-B.
package metrics

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values, or 0 for an empty
// slice. It panics on non-positive inputs, which are always measurement
// bugs for the ratios this repository reports.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic("metrics: GeoMean of non-positive value")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples, or 0 when either side has no variance or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
