package community

import "repro/internal/check"

// Shard is one contiguous vertex range [Lo, Hi) of a stable graph
// decomposition. Shards exist so parallel detection phases can split work
// without making the split visible in results: boundaries depend only on
// the vertex count, never on the worker count, so any per-shard
// computation merged in shard order is byte-identical at every
// parallelism level.
type Shard struct {
	// Lo is the first vertex of the shard.
	Lo int32
	// Hi is one past the last vertex of the shard.
	Hi int32
}

// Len returns the number of vertices in the shard.
func (s Shard) Len() int32 { return s.Hi - s.Lo }

const (
	// shardMinRows is the smallest shard worth splitting off: below this,
	// per-shard bookkeeping costs more than the parallelism recovers.
	shardMinRows = 256
	// shardMaxCount caps the decomposition so the sequential merge phase
	// (quadratic in the shard count at worst) stays negligible.
	shardMaxCount = 64
)

// TilesFromCommunities converts a per-row community assignment into
// contiguous row tiles for cluster-wise kernel execution: consecutive rows
// sharing a community label form one tile, and tiles longer than maxRows
// (when maxRows > 0) are split so accumulator footprints stay bounded. The
// assignment is read positionally — callers pass labels already in the
// matrix's current row order, so after a community reordering each tile is
// one community block. Rows are never regrouped across a label change;
// like Shards, the result exactly partitions [0, len(comm)) in order.
func TilesFromCommunities(comm []int32, maxRows int32) []Shard {
	if len(comm) == 0 {
		return nil
	}
	var tiles []Shard
	var lo int32
	n := check.SafeInt32(len(comm))
	for i := int32(1); i <= n; i++ {
		if i == n || comm[i] != comm[lo] || (maxRows > 0 && i-lo >= maxRows) {
			tiles = append(tiles, Shard{Lo: lo, Hi: i})
			lo = i
		}
	}
	return tiles
}

// Shards decomposes n vertices into contiguous ranges with stable
// boundaries: the decomposition is a pure function of n. Small inputs get
// a single shard; large inputs get at most shardMaxCount shards of at
// least shardMinRows vertices each, the remainder spread one vertex at a
// time over the leading shards so sizes differ by at most one.
func Shards(n int32) []Shard {
	if n <= 0 {
		return nil
	}
	count := n / shardMinRows
	if count > shardMaxCount {
		count = shardMaxCount
	}
	if count < 1 {
		count = 1
	}
	base := n / count
	extra := n % count
	shards := make([]Shard, count)
	var lo int32
	for i := int32(0); i < count; i++ {
		size := base
		if i < extra {
			size++
		}
		shards[i] = Shard{Lo: lo, Hi: lo + size}
		lo += size
	}
	return shards
}
