package community

import (
	"fmt"

	"repro/internal/sparse"
)

// Assignment maps every node to a community with dense labels in
// [0, Count).
type Assignment struct {
	Of    []int32
	Count int32
}

// FromLabels builds an Assignment from arbitrary non-negative labels,
// renumbering them densely in first-appearance order.
func FromLabels(labels []int32) Assignment {
	of := make([]int32, len(labels))
	remap := make(map[int32]int32)
	var next int32
	for i, l := range labels {
		d, ok := remap[l]
		if !ok {
			d = next
			remap[l] = d
			next++
		}
		of[i] = d
	}
	return Assignment{Of: of, Count: next}
}

// Singletons returns the assignment where every node is its own community.
func Singletons(n int32) Assignment {
	of := make([]int32, n)
	for i := range of {
		of[i] = int32(i)
	}
	return Assignment{Of: of, Count: n}
}

// Validate checks that labels are dense in [0, Count).
func (a Assignment) Validate() error {
	seen := make([]bool, a.Count)
	for i, c := range a.Of {
		if c < 0 || c >= a.Count {
			return fmt.Errorf("community: node %d has label %d outside [0,%d)", i, c, a.Count)
		}
		seen[c] = true
	}
	for c, s := range seen {
		if !s {
			return fmt.Errorf("community: label %d is unused", c)
		}
	}
	return nil
}

// Sizes returns the number of members of each community.
func (a Assignment) Sizes() []int32 {
	s := make([]int32, a.Count)
	for _, c := range a.Of {
		s[c]++
	}
	return s
}

// AverageSize returns the mean community size.
func (a Assignment) AverageSize() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(len(a.Of)) / float64(a.Count)
}

// LargestFraction returns the size of the largest community divided by the
// number of nodes. The paper uses this to diagnose the mawi anomaly, where
// the largest detected community holds ~98% of the matrix (Section V-B).
func (a Assignment) LargestFraction() float64 {
	if len(a.Of) == 0 {
		return 0
	}
	var max int32
	for _, s := range a.Sizes() {
		if s > max {
			max = s
		}
	}
	return float64(max) / float64(len(a.Of))
}

// Insularity returns the fraction of stored nonzeros whose endpoints share
// a community (Section V-A): intra-community edges divided by all edges.
// It ranges over [0, 1]; high insularity means most irregular accesses stay
// within one community. An empty matrix has insularity 1 by convention.
func Insularity(m *sparse.CSR, a Assignment) float64 {
	if m.NNZ() == 0 {
		return 1
	}
	var intra int64
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		cr := a.Of[r]
		for _, c := range cols {
			if a.Of[c] == cr {
				intra++
			}
		}
	}
	return float64(intra) / float64(m.NNZ())
}

// InsularNodes returns, for every node, whether it is insular: all of its
// incident nonzeros (in both row and column direction) connect it only to
// members of its own community (Section VI-A). Nodes with no incident
// nonzeros are vacuously insular.
func InsularNodes(m *sparse.CSR, a Assignment) []bool {
	insular := make([]bool, m.NumRows)
	for i := range insular {
		insular[i] = true
	}
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		cr := a.Of[r]
		for _, c := range cols {
			if a.Of[c] != cr {
				insular[r] = false
				insular[c] = false
			}
		}
	}
	return insular
}

// InsularFraction returns the fraction of nodes that are insular
// (Figure 4).
func InsularFraction(m *sparse.CSR, a Assignment) float64 {
	if m.NumRows == 0 {
		return 0
	}
	var n int
	for _, b := range InsularNodes(m, a) {
		if b {
			n++
		}
	}
	return float64(n) / float64(m.NumRows)
}

// Modularity returns Newman–Girvan modularity of the assignment over the
// matrix interpreted as a directed graph with unit edge weights:
//
//	Q = Σ_c [ e_c/E − (dout_c/E)·(din_c/E) ]
//
// where e_c counts intra-community nonzeros and dout/din are community
// degree sums. For symmetric patterns this coincides with the undirected
// definition. Q lies in [-0.5, 1).
func Modularity(m *sparse.CSR, a Assignment) float64 {
	e := float64(m.NNZ())
	if e == 0 {
		return 0
	}
	intra := make([]int64, a.Count)
	dout := make([]int64, a.Count)
	din := make([]int64, a.Count)
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		cr := a.Of[r]
		dout[cr] += int64(len(cols))
		for _, c := range cols {
			din[a.Of[c]]++
			if a.Of[c] == cr {
				intra[cr]++
			}
		}
	}
	var q float64
	for c := int32(0); c < a.Count; c++ {
		q += float64(intra[c])/e - (float64(dout[c])/e)*(float64(din[c])/e)
	}
	return q
}
