package community

import "testing"

// TestShardsPartition verifies the decomposition invariants the parallel
// tier leans on: shards exactly tile [0, n) in order, sizes differ by at
// most one, and the boundaries are a pure function of n (two calls agree).
func TestShardsPartition(t *testing.T) {
	for _, n := range []int32{0, 1, 2, 255, 256, 257, 1200, 16384, 100000} {
		shards := Shards(n)
		if n <= 0 {
			if shards != nil {
				t.Fatalf("Shards(%d) = %v, want nil", n, shards)
			}
			continue
		}
		var lo int32
		minSize, maxSize := n, int32(0)
		for i, s := range shards {
			if s.Lo != lo {
				t.Fatalf("Shards(%d)[%d].Lo = %d, want %d", n, i, s.Lo, lo)
			}
			if s.Len() <= 0 {
				t.Fatalf("Shards(%d)[%d] is empty", n, i)
			}
			if s.Len() < minSize {
				minSize = s.Len()
			}
			if s.Len() > maxSize {
				maxSize = s.Len()
			}
			lo = s.Hi
		}
		if lo != n {
			t.Fatalf("Shards(%d) covers [0,%d), want [0,%d)", n, lo, n)
		}
		if maxSize-minSize > 1 {
			t.Fatalf("Shards(%d): sizes range %d..%d, want spread <= 1", n, minSize, maxSize)
		}
		if len(shards) > shardMaxCount {
			t.Fatalf("Shards(%d) = %d shards, cap is %d", n, len(shards), shardMaxCount)
		}
		again := Shards(n)
		for i := range shards {
			if shards[i] != again[i] {
				t.Fatalf("Shards(%d) not stable across calls at shard %d", n, i)
			}
		}
	}
}

// TestTilesFromCommunities is the table-driven edge-case sweep for the
// SpGEMM tiler: single-community matrices, all-singleton communities,
// label changes landing on empty-row boundaries, and the maxRows split.
// Run with -race: the function must be safely callable from concurrent
// kernel executions (it is pure, but the test keeps that honest).
func TestTilesFromCommunities(t *testing.T) {
	seq := func(n int32, f func(int32) int32) []int32 {
		out := make([]int32, n)
		for i := range out {
			out[i] = f(int32(i))
		}
		return out
	}
	cases := []struct {
		name    string
		comm    []int32
		maxRows int32
		want    []Shard
	}{
		{name: "empty", comm: nil, maxRows: 0, want: nil},
		{name: "single-community", comm: seq(6, func(int32) int32 { return 7 }), maxRows: 0,
			want: []Shard{{0, 6}}},
		{name: "single-community-split", comm: seq(7, func(int32) int32 { return 7 }), maxRows: 3,
			want: []Shard{{0, 3}, {3, 6}, {6, 7}}},
		{name: "all-singletons", comm: seq(5, func(i int32) int32 { return i }), maxRows: 0,
			want: []Shard{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}},
		{name: "all-singletons-capped", comm: seq(3, func(i int32) int32 { return i }), maxRows: 1,
			want: []Shard{{0, 1}, {1, 2}, {2, 3}}},
		{name: "two-runs", comm: []int32{4, 4, 4, 9, 9}, maxRows: 0,
			want: []Shard{{0, 3}, {3, 5}}},
		// Empty rows carry community labels like any other row; a label
		// change on an empty-row boundary must still cut a tile there,
		// and a reused label after a gap must NOT merge across the run.
		{name: "label-reused-after-gap", comm: []int32{1, 1, 2, 1, 1}, maxRows: 0,
			want: []Shard{{0, 2}, {2, 3}, {3, 5}}},
		{name: "boundary-at-row-0", comm: []int32{3, 5, 5, 5}, maxRows: 0,
			want: []Shard{{0, 1}, {1, 4}}},
		{name: "split-then-boundary", comm: []int32{0, 0, 0, 0, 1}, maxRows: 2,
			want: []Shard{{0, 2}, {2, 4}, {4, 5}}},
		{name: "negative-labels", comm: []int32{-1, -1, -2}, maxRows: 0,
			want: []Shard{{0, 2}, {2, 3}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := TilesFromCommunities(tc.comm, tc.maxRows)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("tile %d = %v, want %v (full: %v)", i, got[i], tc.want[i], got)
				}
			}
		})
	}
}

// TestTilesFromCommunitiesPartition checks the structural contract the
// cluster-wise kernel validates: tiles exactly cover [0, n) in ascending
// contiguous order, never exceed maxRows, and never span a label change.
func TestTilesFromCommunitiesPartition(t *testing.T) {
	comm := make([]int32, 1000)
	for i := range comm {
		comm[i] = int32(i / 37)
	}
	for _, maxRows := range []int32{0, 1, 5, 36, 37, 38, 1000} {
		tiles := TilesFromCommunities(comm, maxRows)
		var lo int32
		for i, tl := range tiles {
			if tl.Lo != lo || tl.Len() <= 0 {
				t.Fatalf("maxRows=%d: tile %d = %v, want contiguous from %d", maxRows, i, tl, lo)
			}
			if maxRows > 0 && tl.Len() > maxRows {
				t.Fatalf("maxRows=%d: tile %d has %d rows", maxRows, i, tl.Len())
			}
			for r := tl.Lo + 1; r < tl.Hi; r++ {
				if comm[r] != comm[tl.Lo] {
					t.Fatalf("maxRows=%d: tile %d spans a label change at row %d", maxRows, i, r)
				}
			}
			lo = tl.Hi
		}
		if lo != int32(len(comm)) {
			t.Fatalf("maxRows=%d: tiles cover [0,%d), want [0,%d)", maxRows, lo, len(comm))
		}
	}
}

// TestShardsSplitLargeInputs pins that inputs past the split threshold
// actually decompose — the parallel tier is pointless on one shard.
func TestShardsSplitLargeInputs(t *testing.T) {
	if got := len(Shards(1200)); got < 2 {
		t.Fatalf("Shards(1200) = %d shards, want several", got)
	}
	if got := len(Shards(200)); got != 1 {
		t.Fatalf("Shards(200) = %d shards, want 1", got)
	}
}
