package community

import "testing"

// TestShardsPartition verifies the decomposition invariants the parallel
// tier leans on: shards exactly tile [0, n) in order, sizes differ by at
// most one, and the boundaries are a pure function of n (two calls agree).
func TestShardsPartition(t *testing.T) {
	for _, n := range []int32{0, 1, 2, 255, 256, 257, 1200, 16384, 100000} {
		shards := Shards(n)
		if n <= 0 {
			if shards != nil {
				t.Fatalf("Shards(%d) = %v, want nil", n, shards)
			}
			continue
		}
		var lo int32
		minSize, maxSize := n, int32(0)
		for i, s := range shards {
			if s.Lo != lo {
				t.Fatalf("Shards(%d)[%d].Lo = %d, want %d", n, i, s.Lo, lo)
			}
			if s.Len() <= 0 {
				t.Fatalf("Shards(%d)[%d] is empty", n, i)
			}
			if s.Len() < minSize {
				minSize = s.Len()
			}
			if s.Len() > maxSize {
				maxSize = s.Len()
			}
			lo = s.Hi
		}
		if lo != n {
			t.Fatalf("Shards(%d) covers [0,%d), want [0,%d)", n, lo, n)
		}
		if maxSize-minSize > 1 {
			t.Fatalf("Shards(%d): sizes range %d..%d, want spread <= 1", n, minSize, maxSize)
		}
		if len(shards) > shardMaxCount {
			t.Fatalf("Shards(%d) = %d shards, cap is %d", n, len(shards), shardMaxCount)
		}
		again := Shards(n)
		for i := range shards {
			if shards[i] != again[i] {
				t.Fatalf("Shards(%d) not stable across calls at shard %d", n, i)
			}
		}
	}
}

// TestShardsSplitLargeInputs pins that inputs past the split threshold
// actually decompose — the parallel tier is pointless on one shard.
func TestShardsSplitLargeInputs(t *testing.T) {
	if got := len(Shards(1200)); got < 2 {
		t.Fatalf("Shards(1200) = %d shards, want several", got)
	}
	if got := len(Shards(200)); got != 1 {
		t.Fatalf("Shards(200) = %d shards, want 1", got)
	}
}
