package community

import (
	"context"
	"sort"

	"repro/internal/check"
	"repro/internal/sparse"
)

// louvainCancelStride is how many local-move node visits run between
// cooperative cancellation checks inside one sweep.
const louvainCancelStride = 4096

// LouvainOptions tunes the multi-level Louvain detector.
type LouvainOptions struct {
	// MaxSweeps bounds local-moving sweeps per level (default 16).
	MaxSweeps int
	// MinGain stops a level when a full sweep improves modularity by less
	// than this amount (default 1e-6).
	MinGain float64
	// MaxLevels bounds the aggregation depth (default 32).
	MaxLevels int
}

func (o LouvainOptions) withDefaults() LouvainOptions {
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 16
	}
	if o.MinGain == 0 {
		o.MinGain = 1e-6
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 32
	}
	return o
}

// Louvain runs multi-level modularity maximization (Blondel et al.) on the
// matrix interpreted as an undirected unit-weight graph. The pattern should
// be symmetric; callers with directed matrices should Symmetrize first.
// It returns the final flat assignment.
//
// Louvain serves two roles here: an alternative community detector to
// RABBIT's incremental aggregation, and a reference point for community
// quality in tests.
func Louvain(m *sparse.CSR, opts LouvainOptions) Assignment {
	// A background context never cancels, so the error path is unreachable.
	a, _ := LouvainCtx(context.Background(), m, opts)
	return a
}

// LouvainCtx is Louvain with cooperative cancellation: the local-moving
// sweeps check ctx every louvainCancelStride node visits and between
// levels, returning ctx.Err() when the context is done. A nil error
// guarantees an assignment identical to Louvain's.
func LouvainCtx(ctx context.Context, m *sparse.CSR, opts LouvainOptions) (Assignment, error) {
	opts = opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return Assignment{}, err
	}
	// current graph, as adjacency with weights
	g := fromCSR(m)
	// nodeComm[level] maps each node of level-graph to its community.
	assignment := make([]int32, m.NumRows)
	for i := range assignment {
		assignment[i] = int32(i)
	}
	for level := 0; level < opts.MaxLevels; level++ {
		comm, improved, err := localMove(ctx, g, opts)
		if err != nil {
			return Assignment{}, err
		}
		if !improved {
			break
		}
		dense := FromLabels(comm)
		// Flatten into the original-node assignment.
		for i := range assignment {
			assignment[i] = dense.Of[assignment[i]]
		}
		if dense.Count == int32(g.n) {
			break // no aggregation happened
		}
		if err := ctx.Err(); err != nil {
			return Assignment{}, err
		}
		g = g.aggregate(dense)
	}
	return FromLabels(assignment), nil
}

// weightedGraph is the internal adjacency representation used across
// Louvain levels: CSR-like with float64 weights plus per-node self-loop
// weight.
type weightedGraph struct {
	n       int32
	offsets []int32
	nbr     []int32
	w       []float64
	selfW   []float64
	total   float64 // 2m: sum of all degrees including self-loops twice
}

func fromCSR(m *sparse.CSR) *weightedGraph {
	g := &weightedGraph{
		n:       m.NumRows,
		offsets: make([]int32, m.NumRows+1),
		selfW:   make([]float64, m.NumRows),
	}
	// Count non-self entries.
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		for _, c := range cols {
			if c == r {
				g.selfW[r] += 2 // undirected self-loop counts twice in degree
			} else {
				g.offsets[r+1]++
			}
		}
	}
	for i := int32(0); i < g.n; i++ {
		g.offsets[i+1] += g.offsets[i]
	}
	g.nbr = make([]int32, g.offsets[g.n])
	g.w = make([]float64, g.offsets[g.n])
	cursor := make([]int32, g.n)
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		for _, c := range cols {
			if c == r {
				continue
			}
			dst := g.offsets[r] + cursor[r]
			cursor[r]++
			g.nbr[dst] = c
			g.w[dst] = 1
		}
	}
	for i := int32(0); i < g.n; i++ {
		g.total += g.selfW[i]
		for k := g.offsets[i]; k < g.offsets[i+1]; k++ {
			g.total += g.w[k]
		}
	}
	return g
}

func (g *weightedGraph) degree(u int32) float64 {
	d := g.selfW[u]
	for k := g.offsets[u]; k < g.offsets[u+1]; k++ {
		d += g.w[k]
	}
	return d
}

// localMove runs the Louvain local-moving phase and returns the community
// of each node plus whether any move happened. It checks ctx periodically
// and abandons the sweep with ctx.Err() on cancellation.
func localMove(ctx context.Context, g *weightedGraph, opts LouvainOptions) ([]int32, bool, error) {
	comm := make([]int32, g.n)
	commTot := make([]float64, g.n) // total degree per community
	deg := make([]float64, g.n)
	for i := int32(0); i < g.n; i++ {
		comm[i] = i
		deg[i] = g.degree(i)
		commTot[i] = deg[i]
	}
	if g.total == 0 {
		return comm, false, nil
	}
	m2 := g.total
	anyMove := false
	// neighWeight[c] accumulates edge weight from u to community c.
	neighWeight := make([]float64, g.n)
	var touched []int32
	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		gain := 0.0
		moves := 0
		for u := int32(0); u < g.n; u++ {
			if u%louvainCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, false, err
				}
			}
			cu := comm[u]
			touched = touched[:0]
			for k := g.offsets[u]; k < g.offsets[u+1]; k++ {
				c := comm[g.nbr[k]]
				if neighWeight[c] == 0 {
					touched = append(touched, c)
				}
				neighWeight[c] += g.w[k]
			}
			// Remove u from its community for the gain computation.
			commTot[cu] -= deg[u]
			best := cu
			bestGain := neighWeight[cu] - commTot[cu]*deg[u]/m2
			for _, c := range touched {
				if c == cu {
					continue
				}
				gainC := neighWeight[c] - commTot[c]*deg[u]/m2
				if gainC > bestGain {
					bestGain = gainC
					best = c
				}
			}
			if best != cu {
				delta := bestGain - (neighWeight[cu] - commTot[cu]*deg[u]/m2)
				gain += 2 * delta / m2
				moves++
				anyMove = true
			}
			comm[u] = best
			commTot[best] += deg[u]
			for _, c := range touched {
				neighWeight[c] = 0
			}
		}
		if moves == 0 || gain < opts.MinGain {
			break
		}
	}
	return comm, anyMove, nil
}

// aggregate contracts each community to a single node.
func (g *weightedGraph) aggregate(a Assignment) *weightedGraph {
	k := a.Count
	agg := &weightedGraph{
		n:       k,
		offsets: make([]int32, k+1),
		selfW:   make([]float64, k),
	}
	// Accumulate inter-community weights in per-community maps.
	maps := make([]map[int32]float64, k)
	for i := range maps {
		maps[i] = make(map[int32]float64)
	}
	for u := int32(0); u < g.n; u++ {
		cu := a.Of[u]
		agg.selfW[cu] += g.selfW[u]
		for e := g.offsets[u]; e < g.offsets[u+1]; e++ {
			cv := a.Of[g.nbr[e]]
			if cv == cu {
				agg.selfW[cu] += g.w[e]
			} else {
				maps[cu][cv] += g.w[e]
			}
		}
	}
	for c := int32(0); c < k; c++ {
		agg.offsets[c+1] = agg.offsets[c] + check.SafeInt32(len(maps[c]))
	}
	agg.nbr = make([]int32, agg.offsets[k])
	agg.w = make([]float64, agg.offsets[k])
	for c := int32(0); c < k; c++ {
		// Sort neighbors so aggregation (and therefore the whole detector)
		// is deterministic despite the map accumulation.
		keys := make([]int32, 0, len(maps[c]))
		for v := range maps[c] {
			keys = append(keys, v)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		i := agg.offsets[c]
		for _, v := range keys {
			agg.nbr[i] = v
			agg.w[i] = maps[c][v]
			i++
		}
	}
	agg.total = 0
	for c := int32(0); c < k; c++ {
		agg.total += agg.selfW[c]
		for e := agg.offsets[c]; e < agg.offsets[c+1]; e++ {
			agg.total += agg.w[e]
		}
	}
	return agg
}
