// Package community provides community detection (Louvain) and the
// community-quality metrics the paper uses to explain reordering
// effectiveness: modularity, insularity, insular-node identification, and
// community size statistics (Section V).
//
//repro:deterministic
package community

// UnionFind is a disjoint-set forest with path halving and union by size.
type UnionFind struct {
	parent []int32
	size   []int32
	sets   int32
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int32) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		size:   make([]int32, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing a and b and returns the surviving root.
// When the sets differ in size the larger root survives; this keeps
// small-to-large merging cheap for callers that attach data to roots.
func (uf *UnionFind) Union(a, b int32) int32 {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return ra
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	uf.sets--
	return ra
}

// UnionInto merges b's set into a's set keeping a's root as the survivor
// regardless of size. Rabbit's dendrogram requires the merge target to stay
// the representative.
func (uf *UnionFind) UnionInto(a, b int32) int32 {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	uf.sets--
	return ra
}

// SetSize returns the size of x's set.
func (uf *UnionFind) SetSize(x int32) int32 { return uf.size[uf.Find(x)] }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int32 { return uf.sets }

// Labels returns a dense community labelling: one label in [0, Sets()) per
// element, with elements in the same set sharing a label.
func (uf *UnionFind) Labels() []int32 {
	labels := make([]int32, len(uf.parent))
	next := int32(0)
	rootLabel := make(map[int32]int32, uf.sets)
	for i := range uf.parent {
		r := uf.Find(int32(i))
		l, ok := rootLabel[r]
		if !ok {
			l = next
			rootLabel[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}
