package community

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Sets() != 6 {
		t.Fatalf("Sets = %d, want 6", uf.Sets())
	}
	uf.Union(0, 1)
	uf.Union(2, 3)
	uf.Union(0, 2)
	if uf.Find(1) != uf.Find(3) {
		t.Fatal("0-1-2-3 should be one set")
	}
	if uf.Find(4) == uf.Find(0) {
		t.Fatal("4 should be separate")
	}
	if uf.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", uf.Sets())
	}
	if uf.SetSize(3) != 4 {
		t.Fatalf("SetSize = %d, want 4", uf.SetSize(3))
	}
	labels := uf.Labels()
	if labels[0] != labels[3] || labels[0] == labels[4] || labels[4] == labels[5] {
		t.Fatalf("Labels = %v", labels)
	}
}

func TestUnionIntoKeepsTarget(t *testing.T) {
	uf := NewUnionFind(4)
	// Grow 1's set so it is larger, then force-merge into 0.
	uf.UnionInto(1, 2)
	uf.UnionInto(1, 3)
	root := uf.UnionInto(0, 1)
	if root != 0 || uf.Find(3) != 0 {
		t.Fatalf("UnionInto must keep the first argument as root; got root %d, Find(3)=%d", root, uf.Find(3))
	}
}

func TestQuickUnionFindTransitivity(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 64
		uf := NewUnionFind(n)
		for _, p := range pairs {
			uf.Union(int32(p%n), int32((p>>8)%n))
		}
		// Roots must be consistent: Find(Find(x)) == Find(x).
		for x := int32(0); x < n; x++ {
			if uf.Find(uf.Find(x)) != uf.Find(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// twoCliques builds two disjoint k-cliques joined by a single bridge edge.
func twoCliques(k int32) *sparse.CSR {
	coo := sparse.NewCOO(2*k, 2*k, int(4*k*k))
	for i := int32(0); i < k; i++ {
		for j := i + 1; j < k; j++ {
			coo.AddSym(i, j, 1)
			coo.AddSym(k+i, k+j, 1)
		}
	}
	coo.AddSym(0, k, 1)
	return coo.ToCSR()
}

func cliqueAssignment(k int32) Assignment {
	labels := make([]int32, 2*k)
	for i := int32(k); i < 2*k; i++ {
		labels[i] = 1
	}
	return FromLabels(labels)
}

func TestInsularityTwoCliques(t *testing.T) {
	k := int32(10)
	m := twoCliques(k)
	a := cliqueAssignment(k)
	// Each clique has k(k-1) stored nonzeros; the bridge adds 2.
	want := float64(2*k*(k-1)) / float64(2*k*(k-1)+2)
	got := Insularity(m, a)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Insularity = %v, want %v", got, want)
	}
}

func TestInsularityPaperExample(t *testing.T) {
	// Figure 1's reordered example has insularity 20/24: 24 stored nonzeros
	// of which 4 cross community boundaries. Reconstruct an equivalent
	// setup: 10 intra edges and 2 inter edges, stored symmetrically.
	coo := sparse.NewCOO(10, 10, 48)
	pairs := [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, {0, 9}, {1, 9}, // community A = {0,1,2,9}
		{3, 4}, {3, 5}, {4, 5}, // community B
		{6, 7}, {6, 8}, // community C (path)
	}
	for _, p := range pairs {
		coo.AddSym(p[0], p[1], 1)
	}
	coo.AddSym(2, 3, 1) // inter A-B
	coo.AddSym(5, 6, 1) // inter B-C
	m := coo.ToCSR()
	a := FromLabels([]int32{0, 0, 0, 1, 1, 1, 2, 2, 2, 0})
	want := 20.0 / 24.0
	if got := Insularity(m, a); got != want {
		t.Fatalf("Insularity = %v, want %v (Figure 1)", got, want)
	}
}

func TestInsularNodes(t *testing.T) {
	k := int32(5)
	m := twoCliques(k)
	a := cliqueAssignment(k)
	ins := InsularNodes(m, a)
	// Nodes 0 and k touch the bridge; all others are insular.
	for i := int32(0); i < 2*k; i++ {
		wantInsular := i != 0 && i != k
		if ins[i] != wantInsular {
			t.Fatalf("node %d insular = %v, want %v", i, ins[i], wantInsular)
		}
	}
	frac := InsularFraction(m, a)
	want := float64(2*k-2) / float64(2*k)
	if frac != want {
		t.Fatalf("InsularFraction = %v, want %v", frac, want)
	}
}

func TestModularityBounds(t *testing.T) {
	k := int32(8)
	m := twoCliques(k)
	good := Modularity(m, cliqueAssignment(k))
	if good <= 0 || good >= 1 {
		t.Fatalf("clique-split modularity = %v, want in (0,1)", good)
	}
	// Everything in one community: Q = 1 - 1 = 0 for a single community.
	all := FromLabels(make([]int32, 2*k))
	if q := Modularity(m, all); q > 1e-12 || q < -1e-12 {
		t.Fatalf("single-community modularity = %v, want 0", q)
	}
	// The planted split must beat singletons and the one-community split.
	single := Modularity(m, Singletons(2*k))
	if good <= single {
		t.Fatalf("clique split Q=%v should beat singletons Q=%v", good, single)
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := FromLabels([]int32{5, 5, 9, 5, 9, 7})
	if a.Count != 3 {
		t.Fatalf("Count = %d, want 3", a.Count)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes()
	if sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("Sizes = %v", sizes)
	}
	if a.AverageSize() != 2 {
		t.Fatalf("AverageSize = %v, want 2", a.AverageSize())
	}
	if a.LargestFraction() != 0.5 {
		t.Fatalf("LargestFraction = %v, want 0.5", a.LargestFraction())
	}
	bad := Assignment{Of: []int32{0, 2}, Count: 2}
	if bad.Validate() == nil {
		t.Fatal("out-of-range label accepted")
	}
	sparseLabels := Assignment{Of: []int32{0, 0}, Count: 2}
	if sparseLabels.Validate() == nil {
		t.Fatal("unused label accepted")
	}
}

func TestLouvainRecoversCliques(t *testing.T) {
	k := int32(12)
	m := twoCliques(k)
	a := Louvain(m, LouvainOptions{})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Count != 2 {
		t.Fatalf("Louvain found %d communities in two bridged cliques, want 2", a.Count)
	}
	// All members of each clique share a community.
	for i := int32(1); i < k; i++ {
		if a.Of[i] != a.Of[0] || a.Of[k+i] != a.Of[k] {
			t.Fatal("Louvain split a clique")
		}
	}
	if a.Of[0] == a.Of[k] {
		t.Fatal("Louvain merged the two cliques")
	}
}

func TestLouvainOnPlantedPartition(t *testing.T) {
	g := gen.PlantedPartition{Nodes: 3000, Communities: 30, AvgDegree: 16, Mu: 0.1}
	m := g.Generate(17)
	a := Louvain(m, LouvainOptions{})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	q := Modularity(m, a)
	if q < 0.5 {
		t.Fatalf("Louvain modularity %v on a strongly clustered graph, want >= 0.5", q)
	}
	ins := Insularity(m, a)
	if ins < 0.7 {
		t.Fatalf("Louvain insularity %v on mu=0.1 planted partition, want >= 0.7", ins)
	}
}

func TestLouvainDeterminism(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 1000, Communities: 10, AvgDegree: 10, Mu: 0.2}.Generate(3)
	a := Louvain(m, LouvainOptions{})
	b := Louvain(m, LouvainOptions{})
	if a.Count != b.Count {
		t.Fatalf("Louvain nondeterministic: %d vs %d communities", a.Count, b.Count)
	}
	for i := range a.Of {
		if a.Of[i] != b.Of[i] {
			t.Fatalf("Louvain nondeterministic at node %d", i)
		}
	}
}

func TestLouvainEmptyAndTrivial(t *testing.T) {
	empty := &sparse.CSR{NumRows: 4, NumCols: 4, RowOffsets: make([]int32, 5)}
	a := Louvain(empty, LouvainOptions{})
	if len(a.Of) != 4 {
		t.Fatalf("assignment covers %d of 4 nodes", len(a.Of))
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInsularityBounds(t *testing.T) {
	f := func(seed uint64) bool {
		m := gen.ErdosRenyi{Nodes: 200, AvgDegree: 5}.Generate(seed)
		a := Louvain(m, LouvainOptions{})
		ins := Insularity(m, a)
		q := Modularity(m, a)
		return ins >= 0 && ins <= 1 && q >= -0.5 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestInsularNodesOnlyIntraEdges(t *testing.T) {
	// Property: masking a matrix to the rows/cols of insular nodes keeps
	// only intra-community nonzeros.
	m := gen.PlantedPartition{Nodes: 800, Communities: 8, AvgDegree: 8, Mu: 0.3}.Generate(5)
	a := Louvain(m, LouvainOptions{})
	ins := InsularNodes(m, a)
	for r := int32(0); r < m.NumRows; r++ {
		if !ins[r] {
			continue
		}
		cols, _ := m.Row(r)
		for _, c := range cols {
			if a.Of[c] != a.Of[r] {
				t.Fatalf("insular node %d has an inter-community edge to %d", r, c)
			}
		}
	}
}
