package serve

import (
	"errors"
	"sync"
)

// ErrSaturated is returned by trySubmit when the job queue is full — the
// service's queue-depth load-shedding signal, mapped to HTTP 429.
var ErrSaturated = errors.New("serve: job queue saturated")

// ErrShuttingDown is returned by trySubmit once the pool is draining —
// mapped to HTTP 503.
var ErrShuttingDown = errors.New("serve: shutting down")

// workerPool runs submitted jobs on a fixed set of worker goroutines with
// a bounded wait queue. Admission is non-blocking: when the queue is full
// the submission fails immediately with ErrSaturated, which keeps the
// HTTP handlers from accumulating unbounded blocked requests under
// overload (admission control per Asudeh et al.'s preprocessing-latency
// concern).
type workerPool struct {
	mu     sync.Mutex
	queue  chan func()
	wg     sync.WaitGroup
	closed bool
}

// newWorkerPool starts workers goroutines draining a queue of depth slots.
func newWorkerPool(workers, depth int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &workerPool{queue: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.queue {
				job()
			}
		}()
	}
	return p
}

// trySubmit enqueues the job without blocking. It fails with ErrSaturated
// when the queue is full and ErrShuttingDown once close has begun.
func (p *workerPool) trySubmit(job func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrShuttingDown
	}
	select {
	case p.queue <- job:
		return nil
	default:
		return ErrSaturated
	}
}

// depth returns the number of queued (not yet running) jobs.
func (p *workerPool) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// close stops admission, drains already-queued jobs, and waits for every
// worker to finish — the graceful-shutdown path. Safe to call twice.
func (p *workerPool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
