package serve

import (
	"container/list"
	"sync"
	"time"
)

// Job lifecycle states reported by the job API. A job moves strictly
// queued → running → done|failed; completed jobs stay resident in the
// store (the content-addressed result persistence layer) until evicted by
// capacity pressure, so a resubmitted matrix is a store hit, not a
// recompute.
const (
	jobQueued  = "queued"
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// storedJob is one entry of the job store. Identity fields (id, key,
// digest, technique, quality, done, submitted) are immutable after
// creation; lifecycle fields (status, res, errMsg, completedMS) are
// written only by jobStore methods holding the store mutex, and readers
// take a snapshot under the same mutex.
type storedJob struct {
	id        string
	key       string // cache key: digest|technique(|noq)
	digest    string
	technique string
	quality   bool
	done      chan struct{} // closed exactly once, on completion
	submitted time.Time

	status      string
	res         *reorderResult
	errMsg      string
	completedMS float64 // wall time from submit to completion
}

// jobSnapshot is an immutable copy of a job's state, safe to use without
// holding the store lock.
type jobSnapshot struct {
	ID          string
	Digest      string
	Technique   string
	Status      string
	Res         *reorderResult
	ErrMsg      string
	CompletedMS float64
}

// jobStore is the content-addressed job index: job IDs are derived from
// the matrix digest and technique, so identical submissions collapse onto
// one entry regardless of which client (or forwarding peer) sent them.
// Completed jobs are retained LRU-bounded by capacity; queued and running
// jobs are never evicted (the worker queue depth bounds how many can
// exist).
type jobStore struct {
	mu       sync.Mutex
	capacity int
	byID     map[string]*list.Element
	order    *list.List // front = most recently touched; stores *storedJob
}

// newJobStore returns an empty store retaining up to capacity jobs.
func newJobStore(capacity int) *jobStore {
	if capacity < 1 {
		capacity = 1
	}
	return &jobStore{
		capacity: capacity,
		byID:     make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// getOrCreate returns the job for id, creating it in the queued state when
// absent. The returned bool reports whether the job already existed — the
// store-hit signal.
func (st *jobStore) getOrCreate(id, key, digest, technique string, quality bool) (*storedJob, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.byID[id]; ok {
		st.order.MoveToFront(el)
		return el.Value.(*storedJob), true
	}
	j := &storedJob{
		id:        id,
		key:       key,
		digest:    digest,
		technique: technique,
		quality:   quality,
		done:      make(chan struct{}),
		submitted: time.Now(),
		status:    jobQueued,
	}
	st.byID[id] = st.order.PushFront(j)
	st.evictLocked()
	return j, false
}

// get returns the job for id, refreshing its recency, or nil.
func (st *jobStore) get(id string) *storedJob {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if !ok {
		return nil
	}
	st.order.MoveToFront(el)
	return el.Value.(*storedJob)
}

// remove drops a job that never started (queue saturation rollback) so a
// later resubmission is not stuck observing a job nobody will run.
func (st *jobStore) remove(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.byID[id]; ok {
		st.order.Remove(el)
		delete(st.byID, id)
	}
}

// setRunning transitions the job to running.
func (st *jobStore) setRunning(j *storedJob) {
	st.mu.Lock()
	j.status = jobRunning
	st.mu.Unlock()
}

// complete finishes the job with a result or an error, records the wall
// time since submission, and wakes every long-poll waiter by closing done.
func (st *jobStore) complete(j *storedJob, res *reorderResult, err error) {
	st.mu.Lock()
	if err != nil {
		j.status = jobFailed
		j.errMsg = err.Error()
	} else {
		j.status = jobDone
		j.res = res
	}
	j.completedMS = float64(time.Since(j.submitted)) / float64(time.Millisecond)
	st.mu.Unlock()
	close(j.done)
}

// snapshot copies the job's current state under the store lock.
func (st *jobStore) snapshot(j *storedJob) jobSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	return jobSnapshot{
		ID:          j.id,
		Digest:      j.digest,
		Technique:   j.technique,
		Status:      j.status,
		Res:         j.res,
		ErrMsg:      j.errMsg,
		CompletedMS: j.completedMS,
	}
}

// len returns the number of resident jobs (all states).
func (st *jobStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.order.Len()
}

// evictLocked removes least-recently-touched completed jobs until the
// store fits its capacity. Incomplete jobs are skipped: their done channel
// is the long-poll wakeup and their entry is the dedup point, so dropping
// one would orphan waiters and re-run work.
func (st *jobStore) evictLocked() {
	for st.order.Len() > st.capacity {
		evicted := false
		for el := st.order.Back(); el != nil; el = el.Prev() {
			j := el.Value.(*storedJob)
			if j.status == jobDone || j.status == jobFailed {
				st.order.Remove(el)
				delete(st.byID, j.id)
				evicted = true
				break
			}
		}
		if !evicted {
			return // nothing evictable; allow transient overshoot
		}
	}
}
