package serve

import (
	"fmt"
	"testing"
)

// TestRingOrderIndependence: every peer must compute the same owner for
// every key regardless of the order its -peers flag listed them, or
// forwarding would loop between peers with different views.
func TestRingOrderIndependence(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	orders := [][]string{
		{peers[0], peers[1], peers[2]},
		{peers[2], peers[0], peers[1]},
		{peers[1], peers[2], peers[0], peers[0]}, // duplicate must collapse
	}
	rings := make([]*ring, len(orders))
	for i, o := range orders {
		rings[i] = newRing(peers[0], o)
	}
	for k := 0; k < 512; k++ {
		key := fmt.Sprintf("key-%04d", k)
		want := rings[0].owner(key)
		for i := 1; i < len(rings); i++ {
			if got := rings[i].owner(key); got != want {
				t.Fatalf("peer-list order %d disagrees on owner(%q): %s vs %s", i, key, got, want)
			}
		}
	}
}

// TestRingBalance: with 64 vnodes per peer, a 3-peer ring should spread
// keys within a loose factor of the ideal 1/3 share — not a tight bound,
// just a guard against a broken hash collapsing everything onto one peer.
func TestRingBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := newRing(peers[0], peers)
	counts := map[string]int{}
	const keys = 3000
	for k := 0; k < keys; k++ {
		counts[r.owner(fmt.Sprintf("digest-%05d", k))]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / keys
		if share < 0.15 || share > 0.55 {
			t.Fatalf("peer %s owns %.0f%% of keys; ring is badly unbalanced: %v", p, share*100, counts)
		}
	}
}

// TestRingStability: adding a peer moves only a minority of keys — the
// property that preserves each surviving peer's digest-keyed caches.
func TestRingStability(t *testing.T) {
	base := []string{"http://a:1", "http://b:2", "http://c:3"}
	grown := append(append([]string{}, base...), "http://d:4")
	r3, r4 := newRing(base[0], base), newRing(base[0], grown)
	moved := 0
	const keys = 3000
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("digest-%05d", k)
		if r3.owner(key) != r4.owner(key) {
			moved++
		}
	}
	if frac := float64(moved) / keys; frac > 0.5 {
		t.Fatalf("adding one peer to three moved %.0f%% of keys; expected roughly 1/4", frac*100)
	}
}

// TestRingNilSingleNode: a nil ring (single-node deployment) owns every
// key, so no request is ever forwarded.
func TestRingNilSingleNode(t *testing.T) {
	var r *ring
	if !r.isSelf("anything") {
		t.Fatal("nil ring must own every key")
	}
	if r.owner("anything") != "" {
		t.Fatal("nil ring owner should be empty")
	}
}
