package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/check"
	"repro/internal/reorder"
)

// TestTechniquesEndpointMatchesRegistry pins that /techniques reports
// exactly the reorder registry: the service derives its list from
// reorder.All(), so a registered technique can never be missing from the
// service surface.
func TestTechniquesEndpointMatchesRegistry(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := ts.Client().Get(ts.URL + "/techniques")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply struct {
		Techniques []string `json:"techniques"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	all := reorder.All()
	if len(reply.Techniques) != len(all) {
		t.Fatalf("/techniques lists %d techniques, registry has %d", len(reply.Techniques), len(all))
	}
	for i, tech := range all {
		if reply.Techniques[i] != tech.Name() {
			t.Errorf("/techniques[%d] = %s, registry says %s", i, reply.Techniques[i], tech.Name())
		}
	}
}

// TestRegistrySweepThroughService runs every registered technique through
// the full service path — the list comes from the registry, not a
// hardcoded set, so new techniques are exercised here automatically — and
// asserts each returns a valid permutation that is byte-identical between
// an OrderWorkers=1 server and an OrderWorkers=4 server (the service-level
// face of the worker-count determinism matrix; it also proves the result
// cache can stay oblivious to OrderWorkers).
func TestRegistrySweepThroughService(t *testing.T) {
	checkGoroutines(t)
	m := testMatrix(0)
	body := mmBody(t, m)
	_, seq := newTestServer(t, Config{Workers: 1, OrderWorkers: 1})
	_, par := newTestServer(t, Config{Workers: 1, OrderWorkers: 4})
	for _, tech := range reorder.All() {
		name := tech.Name()
		u := reorderURL(seq.URL, map[string]string{"technique": name, "quality": "off"})
		status, ref, raw := doReorder(t, seq.Client(), u, body)
		if status != http.StatusOK {
			t.Fatalf("%s: sequential server status %d: %s", name, status, raw)
		}
		if err := check.ValidPermutation(ref.Permutation); err != nil {
			t.Fatalf("%s: invalid permutation: %v", name, err)
		}
		if len(ref.Permutation) != int(m.NumRows) {
			t.Fatalf("%s: permutation length %d, want %d", name, len(ref.Permutation), m.NumRows)
		}
		u = reorderURL(par.URL, map[string]string{"technique": name, "quality": "off"})
		status, out, raw := doReorder(t, par.Client(), u, body)
		if status != http.StatusOK {
			t.Fatalf("%s: parallel server status %d: %s", name, status, raw)
		}
		for i := range out.Permutation {
			if out.Permutation[i] != ref.Permutation[i] {
				t.Fatalf("%s: OrderWorkers=4 diverges from OrderWorkers=1 at vertex %d", name, i)
			}
		}
	}
}
