package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/reorder"
	"repro/internal/sparse"
)

// forwardHeader marks a request already routed by a peer. A forwarded
// request is always served locally — even if the receiving peer's ring
// disagrees about ownership (a transient of inconsistent peer lists) — so
// a request can hop at most once and routing bugs degrade to an extra
// local computation, never a forwarding loop.
const forwardHeader = "X-Reorderd-Forwarded"

// maxLongPoll caps GET /jobs/{id}?wait= blocking time. Clients needing
// longer simply poll again; the cap keeps forwarded long-polls well inside
// any sane proxy or client timeout.
const maxLongPoll = 30 * time.Second

// jobID derives the content address of a job: the matrix digest hex
// (which alone determines the owning peer, so all techniques for one
// matrix land on the same peer and share its matrix-level caches)
// followed by a short hash of the technique and quality flag. Identical
// submissions — from any client, via any peer — produce identical IDs.
func jobID(digestHex, technique string, quality bool) string {
	suffix := technique
	if !quality {
		suffix += "|noq"
	}
	h := sha256.Sum256([]byte(suffix))
	return digestHex + "." + hex.EncodeToString(h[:8])
}

// jobDigestHex extracts and validates the digest-hex prefix of a job ID,
// the part that routes the job on the consistent-hash ring.
func jobDigestHex(id string) (string, bool) {
	dot := strings.IndexByte(id, '.')
	if dot != 64 || len(id) != 64+1+16 {
		return "", false
	}
	for _, c := range id {
		if c == '.' {
			continue
		}
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", false
		}
	}
	return id[:dot], true
}

// jobResponse is the JSON body of both job endpoints. Result is present
// only once Status is "done"; Error only once it is "failed".
type jobResponse struct {
	JobID       string           `json:"job_id"`
	Status      string           `json:"status"`
	Technique   string           `json:"technique"`
	Digest      string           `json:"digest"`
	Owner       string           `json:"owner,omitempty"`
	StoreHit    bool             `json:"store_hit,omitempty"`
	CompletedMS float64          `json:"completed_ms,omitempty"`
	Error       string           `json:"error,omitempty"`
	Result      *reorderResponse `json:"result,omitempty"`
}

// handleJobs serves POST /jobs: parse and digest the matrix, route to the
// owning peer, and either return the existing job (store hit) or admit a
// new one to the worker pool, responding immediately with the job ID.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST a matrix to /jobs; poll GET /jobs/{id}"))
		return
	}
	if s.closed.Load() {
		s.writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	q := r.URL.Query()
	techName := q.Get("technique")
	if techName == "" {
		techName = "RABBIT++"
	}
	auto := strings.EqualFold(techName, "auto")
	var tech reorder.OrdererCtx
	if !auto {
		var err error
		tech, err = s.cfg.Resolver(techName)
		if err != nil && strings.Contains(techName, " ") {
			// Tolerate an unencoded '+' (decoded to space), as /reorder does.
			fixed := strings.ReplaceAll(techName, " ", "+")
			if t2, err2 := s.cfg.Resolver(fixed); err2 == nil {
				tech, err, techName = t2, nil, fixed
			}
		}
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}

	m, _, raw, err := s.requestMatrix(w, r)
	if err != nil {
		status := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		switch {
		case errors.As(err, &maxErr), errors.Is(err, sparse.ErrTooLarge):
			status = http.StatusRequestEntityTooLarge
			s.metrics.sizeShed()
		case errors.Is(err, errUnknownMatrix):
			status = http.StatusNotFound
		}
		s.writeError(w, status, err)
		return
	}
	if !m.IsSquare() {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: reordering requires a square matrix, got %dx%d", m.NumRows, m.NumCols))
		return
	}

	digest := m.Digest()
	digestHex := strings.TrimPrefix(digest, "sha256:")
	if !s.ring.isSelf(digestHex) && r.Header.Get(forwardHeader) == "" {
		s.forward(w, r, s.ring.owner(digestHex), raw)
		return
	}

	if auto {
		// The owner (not the entry peer) runs the advisor so the
		// digest-keyed feature cache accumulates where the matrix lives.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.MaxJobTime)
		rec, err := s.advise(ctx, m)
		cancel()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		techName = rec.Best()
		if tech, err = s.cfg.Resolver(techName); err != nil {
			s.writeError(w, http.StatusInternalServerError,
				fmt.Errorf("serve: advisor chose unresolvable technique %q: %w", techName, err))
			return
		}
		s.metrics.advisorRecommended(techName)
	}

	wantQuality := true
	switch q.Get("quality") {
	case "0", "false", "off", "none":
		wantQuality = false
	}
	key := digest + "|" + techName
	if !wantQuality {
		key += "|noq"
	}

	s.metrics.jobSubmitted()
	j, existed := s.store.getOrCreate(jobID(digestHex, techName, wantQuality), key, digest, techName, wantQuality)
	if existed {
		s.metrics.storeHit()
		s.writeJob(w, http.StatusOK, j, true)
		return
	}
	// A brand-new job whose result is already resident in the LRU (e.g.
	// computed by the synchronous path) completes without touching a worker.
	if v, ok := s.cache.get(key); ok {
		s.metrics.cacheHit()
		s.store.complete(j, v.(*reorderResult), nil)
		s.writeJob(w, http.StatusOK, j, false)
		return
	}
	s.metrics.cacheMissed()
	if err := s.pool.trySubmit(func() { s.runStoredJob(j, tech, m) }); err != nil {
		s.store.remove(j.id)
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrSaturated):
			status = http.StatusTooManyRequests
			s.metrics.queueShed()
		case errors.Is(err, ErrShuttingDown):
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJob(w, http.StatusAccepted, j, false)
}

// runStoredJob executes one async job on a pool worker. The context is
// detached from any request — the job ID has already been handed to the
// client, so the work must finish (bounded by MaxJobTime) even if every
// poller disconnects.
func (s *Server) runStoredJob(j *storedJob, tech reorder.OrdererCtx, m *sparse.CSR) {
	//lint:allow ctxflow async jobs outlive the submitting request by design; MaxJobTime bounds them
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaxJobTime)
	defer cancel()
	s.store.setRunning(j)
	res, err := s.runJob(ctx, tech, m, j.quality)
	if err == nil {
		s.cache.put(j.key, res)
	}
	s.store.complete(j, res, err)
}

// handleJobGet serves GET /jobs/{id}, optionally long-polling: ?wait=MS
// blocks until the job completes, the wait elapses (capped at 30s), or
// the client disconnects, then reports the state observed at that moment.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("serve: GET /jobs/{id}"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	digestHex, ok := jobDigestHex(id)
	if !ok {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: malformed job ID %q", id))
		return
	}
	if !s.ring.isSelf(digestHex) && r.Header.Get(forwardHeader) == "" {
		s.forward(w, r, s.ring.owner(digestHex), nil)
		return
	}
	j := s.store.get(id)
	if j == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q (completed jobs are evicted under store pressure)", id))
		return
	}
	if raw := r.URL.Query().Get("wait"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad wait %q", raw))
			return
		}
		wait := time.Duration(ms) * time.Millisecond
		if wait > maxLongPoll {
			wait = maxLongPoll
		}
		select {
		case <-j.done:
		default:
			if wait > 0 {
				s.metrics.longPollWait()
				timer := time.NewTimer(wait)
				select {
				case <-j.done:
				case <-timer.C:
				case <-r.Context().Done():
				}
				timer.Stop()
			}
		}
	}
	s.writeJob(w, http.StatusOK, j, false)
}

// handleRing serves GET /ring: the peer topology this instance routes by,
// so operators and load generators can see the shard layout.
func (s *Server) handleRing(w http.ResponseWriter, _ *http.Request) {
	peers := []string{s.cfg.Self}
	if s.ring != nil {
		peers = s.ring.peers
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"self":            s.cfg.Self,
		"peers":           peers,
		"vnodes_per_peer": ringReplicas,
		"store_entries":   s.store.len(),
	})
}

// writeJob renders a job's current state. storeHit marks a POST that
// found the job already resident.
func (s *Server) writeJob(w http.ResponseWriter, status int, j *storedJob, storeHit bool) {
	snap := s.store.snapshot(j)
	resp := jobResponse{
		JobID:       snap.ID,
		Status:      snap.Status,
		Technique:   snap.Technique,
		Digest:      snap.Digest,
		Owner:       s.cfg.Self,
		StoreHit:    storeHit,
		CompletedMS: snap.CompletedMS,
		Error:       snap.ErrMsg,
	}
	if snap.Status == jobDone && snap.Res != nil {
		resp.Result = &reorderResponse{
			Technique:   snap.Technique,
			Rows:        snap.Res.Rows,
			Cols:        snap.Res.Cols,
			NNZ:         snap.Res.NNZ,
			Digest:      snap.Res.Digest,
			Cached:      true,
			ComputeMS:   snap.Res.ComputeMS,
			Permutation: snap.Res.Perm,
			Quality:     snap.Res.Quality,
		}
	}
	if status == http.StatusAccepted {
		w.Header().Set("Location", "/jobs/"+snap.ID)
	}
	s.writeJSON(w, status, resp)
}

// forward proxies the request to the owning peer, marking it with
// forwardHeader so it cannot hop twice, and relays the peer's response
// verbatim. body is the already-read upload (nil for GETs and corpus
// references, whose routing information travels in the query string).
func (s *Server) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte) {
	u := owner + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		s.metrics.forwardFailed()
		s.writeError(w, http.StatusBadGateway, fmt.Errorf("serve: building forward to %s: %w", owner, err))
		return
	}
	req.Header.Set(forwardHeader, s.cfg.Self)
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := s.cfg.ForwardClient.Do(req)
	if err != nil {
		s.metrics.forwardFailed()
		s.writeError(w, http.StatusBadGateway, fmt.Errorf("serve: forwarding to %s: %w", owner, err))
		return
	}
	defer resp.Body.Close()
	s.metrics.forwarded()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Reorderd-Owner", owner)
	w.WriteHeader(resp.StatusCode)
	// A relay error past the header is connection-level; nothing useful
	// remains to send either side.
	_, _ = io.Copy(w, resp.Body)
}
