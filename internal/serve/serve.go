// Package serve implements reorderd, the long-lived matrix-reordering
// service. The paper's Figure 9 shows reordering cost is amortized only
// when a permutation is computed once and reused across many SpMV/SpMM
// invocations; this service is that amortization made operational: a
// bounded worker pool computes permutations under per-request deadlines,
// a keyed LRU cache (matrix digest × technique) with singleflight dedup
// makes every repeat request a cache hit, and queue-depth / request-size
// load shedding keeps preprocessing latency under control (the concern
// Asudeh et al. and the BOBA line of work raise about reordering in
// production).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

// Config tunes the service. The zero value is usable: every field
// defaults to a production-reasonable setting in withDefaults.
type Config struct {
	// Workers is the reordering worker-pool size (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running; submissions
	// beyond it are shed with 429 (default 64).
	QueueDepth int
	// CacheEntries bounds the (digest × technique) result LRU (default 256).
	CacheEntries int
	// MatrixCacheEntries bounds the generated-corpus matrix LRU (default 8).
	MatrixCacheEntries int
	// MaxBodyBytes bounds uploaded MatrixMarket bodies; larger uploads are
	// shed with 413 (default 64 MiB).
	MaxBodyBytes int64
	// MaxRows bounds the declared row count of uploaded matrices, applied
	// before any dimension-proportional allocation (default 1<<22).
	MaxRows int32
	// MaxEntries likewise bounds the declared entry count (default 1<<26).
	MaxEntries int
	// MaxJobTime caps both the client-requested deadline and the compute
	// budget of a job once all its waiters are gone (default 2m).
	MaxJobTime time.Duration
	// Preset selects the scale of corpus-referenced matrices (default Small).
	Preset gen.Preset
	// Resolver maps technique names to cancellable orderers (default
	// reorder.ByNameCtx). Tests inject synthetic techniques through it.
	Resolver func(name string) (reorder.OrdererCtx, error)
	// OrderWorkers is the intra-job parallelism handed to techniques that
	// implement reorder.ParallelOrderer (default 1, the sequential path).
	// It is independent of Workers, which bounds concurrent jobs; results
	// are byte-identical at any OrderWorkers value, so the cache never
	// keys on it.
	OrderWorkers int
	// Self is this peer's advertised base URL (e.g. "http://10.0.0.1:8377"),
	// required for sharding: peers compare ring owners against it and stamp
	// it into job responses. Empty disables sharding (single-node mode).
	Self string
	// Peers is the static full peer list for consistent-hash job sharding,
	// Self included (it is appended when missing). Order is irrelevant —
	// every peer sorts the list before building its ring, so all peers
	// agree on ownership. Empty (or Self empty) means single-node.
	Peers []string
	// StoreEntries bounds completed jobs retained by the content-addressed
	// job store (default 1024). Queued/running jobs are never evicted.
	StoreEntries int
	// ForwardClient issues cross-peer forwards (default: a dedicated
	// http.Client; per-request deadlines come from the inbound request
	// context). Tests inject instrumented clients through it.
	ForwardClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MatrixCacheEntries <= 0 {
		c.MatrixCacheEntries = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 1 << 22
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1 << 26
	}
	if c.MaxJobTime <= 0 {
		c.MaxJobTime = 2 * time.Minute
	}
	if c.Resolver == nil {
		c.Resolver = reorder.ByNameCtx
	}
	if c.OrderWorkers < 1 {
		c.OrderWorkers = 1
	}
	if c.StoreEntries <= 0 {
		c.StoreEntries = 1024
	}
	if c.ForwardClient == nil {
		c.ForwardClient = &http.Client{}
	}
	c.Self = strings.TrimSuffix(c.Self, "/")
	if c.Self == "" {
		// Sharding needs a self identity to compare ring owners against;
		// without one the peer list cannot be used.
		c.Peers = nil
	}
	if len(c.Peers) > 0 {
		peers := make([]string, 0, len(c.Peers)+1)
		selfListed := false
		for _, p := range c.Peers {
			p = strings.TrimSuffix(p, "/")
			if p == "" {
				continue
			}
			if p == c.Self {
				selfListed = true
			}
			peers = append(peers, p)
		}
		if !selfListed {
			peers = append(peers, c.Self)
		}
		c.Peers = peers
	}
	return c
}

// Server is the reorderd HTTP service. Create with New, mount Handler,
// and Close on shutdown to drain in-flight jobs.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	pool     *workerPool
	cache    *lruCache // digest|technique → *reorderResult
	quality  *lruCache // digest → *qualityStats
	features *lruCache // digest → advisor.Features (technique=auto)
	matrices *matrixCache
	metrics  *metrics
	store    *jobStore
	ring     *ring // nil in single-node mode (every key is self-owned)

	flightMu sync.Mutex
	flights  map[string]*flight

	closed atomic.Bool
}

// flight is one in-progress (digest × technique) computation. Followers
// piggyback by incrementing waiters; when the last waiter abandons (its
// request context fired), the job context is cancelled so the worker stops
// burning CPU on a result nobody wants.
type flight struct {
	done    chan struct{}
	res     *reorderResult
	err     error
	waiters int
	cancel  context.CancelFunc
}

// reorderResult is the cached outcome of one job.
type reorderResult struct {
	Perm      sparse.Permutation
	Rows      int32
	Cols      int32
	NNZ       int
	Digest    string
	ComputeMS float64
	Quality   *qualityStats
}

// qualityStats is the community-quality summary returned with every
// permutation: the Section V metrics that predict whether the reordering
// will pay off.
type qualityStats struct {
	Insularity  float64 `json:"insularity"`
	Modularity  float64 `json:"modularity"`
	DegreeSkew  float64 `json:"degree_skew"`
	Communities int32   `json:"communities"`
}

// advisorInfo is the technique=auto block of the /reorder response: how
// the advisor arrived at the technique the response carries.
type advisorInfo struct {
	Model      string           `json:"model"`
	Confidence float64          `json:"confidence"`
	Ranked     []advisor.Scored `json:"ranked"`
}

// reorderResponse is the /reorder JSON body.
type reorderResponse struct {
	Technique   string             `json:"technique"`
	Matrix      string             `json:"matrix,omitempty"`
	Rows        int32              `json:"rows"`
	Cols        int32              `json:"cols"`
	NNZ         int                `json:"nnz"`
	Digest      string             `json:"digest"`
	Cached      bool               `json:"cached"`
	ElapsedMS   float64            `json:"elapsed_ms"`
	ComputeMS   float64            `json:"compute_ms"`
	Permutation sparse.Permutation `json:"permutation"`
	Quality     *qualityStats      `json:"quality,omitempty"`
	Advisor     *advisorInfo       `json:"advisor,omitempty"`
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		pool:     newWorkerPool(cfg.Workers, cfg.QueueDepth),
		cache:    newLRUCache(cfg.CacheEntries),
		quality:  newLRUCache(cfg.CacheEntries),
		features: newLRUCache(cfg.CacheEntries),
		matrices: newMatrixCache(cfg.MatrixCacheEntries),
		metrics:  newMetrics(),
		store:    newJobStore(cfg.StoreEntries),
		flights:  make(map[string]*flight),
	}
	if len(cfg.Peers) > 1 {
		s.ring = newRing(cfg.Self, cfg.Peers)
	}
	s.mux.HandleFunc("/reorder", s.handleReorder)
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/jobs/", s.handleJobGet)
	s.mux.HandleFunc("/ring", s.handleRing)
	s.mux.HandleFunc("/techniques", s.handleTechniques)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler with request accounting.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requestStarted(r.URL.Path)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() { s.metrics.requestFinished(rec.status) }()
		s.mux.ServeHTTP(rec, r)
	})
}

// Close stops admission and drains: queued and running jobs finish, their
// waiters get responses, then Close returns. Safe to call more than once.
func (s *Server) Close() {
	s.closed.Store(true)
	s.pool.close()
}

// Metrics exposes counters for tests and the smoke harness.
func (s *Server) Metrics() (cacheHits, cacheMisses int64) {
	return s.metrics.snapshotCounters()
}

type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.closed.Load() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.render(w, s.pool.depth(), s.cache.len(), s.store.len())
}

func (s *Server) handleTechniques(w http.ResponseWriter, _ *http.Request) {
	names := make([]string, 0, 16)
	for _, t := range reorder.All() {
		names = append(names, t.Name())
	}
	// "auto" is a pseudo-technique: the advisor picks a concrete one per
	// matrix, so it is reported separately from the real orderings.
	s.writeJSON(w, http.StatusOK, map[string]any{"techniques": names, "pseudo": []string{"auto"}})
}

// handleReorder is the main endpoint: resolve the technique, obtain the
// matrix (uploaded MatrixMarket body or corpus reference), then serve the
// permutation from cache or compute it on the worker pool under the
// request deadline.
func (s *Server) handleReorder(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if s.closed.Load() {
		s.writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
		return
	}
	q := r.URL.Query()

	techName := q.Get("technique")
	if techName == "" {
		techName = "RABBIT++"
	}
	// technique=auto defers resolution until the matrix is loaded: the
	// advisor picks the concrete technique from the matrix's features.
	auto := strings.EqualFold(techName, "auto")
	var tech reorder.OrdererCtx
	if !auto {
		var err error
		tech, err = s.cfg.Resolver(techName)
		if err != nil && strings.Contains(techName, " ") {
			// "+" in a query string decodes to a space and technique names
			// never contain spaces, so undo the damage for clients that send
			// technique=RABBIT++ without percent-encoding.
			fixed := strings.ReplaceAll(techName, " ", "+")
			if t2, err2 := s.cfg.Resolver(fixed); err2 == nil {
				tech, err, techName = t2, nil, fixed
			}
		}
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}

	ctx := r.Context()
	timeout := s.cfg.MaxJobTime
	if raw := q.Get("timeout_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad timeout_ms %q", raw))
			return
		}
		if d := time.Duration(ms) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	m, matrixName, _, err := s.requestMatrix(w, r)
	if err != nil {
		status := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		switch {
		case errors.As(err, &maxErr), errors.Is(err, sparse.ErrTooLarge):
			status = http.StatusRequestEntityTooLarge
			s.metrics.sizeShed()
		case errors.Is(err, errUnknownMatrix):
			status = http.StatusNotFound
		}
		s.writeError(w, status, err)
		return
	}
	if !m.IsSquare() {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: reordering requires a square matrix, got %dx%d", m.NumRows, m.NumCols))
		return
	}

	var adv *advisorInfo
	if auto {
		rec, err := s.advise(ctx, m)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				status = http.StatusGatewayTimeout
			case errors.Is(err, context.Canceled):
				status = http.StatusServiceUnavailable
			}
			s.writeError(w, status, err)
			return
		}
		techName = rec.Best()
		if tech, err = s.cfg.Resolver(techName); err != nil {
			s.writeError(w, http.StatusInternalServerError,
				fmt.Errorf("serve: advisor chose unresolvable technique %q: %w", techName, err))
			return
		}
		s.metrics.advisorRecommended(techName)
		adv = &advisorInfo{Model: rec.Model, Confidence: rec.Confidence, Ranked: rec.Ranked}
	}

	wantQuality := true
	switch q.Get("quality") {
	case "0", "false", "off", "none":
		wantQuality = false
	}

	key := m.Digest() + "|" + techName
	if !wantQuality {
		key += "|noq"
	}
	res, cached, err := s.compute(ctx, key, tech, m, wantQuality)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrSaturated):
			status = http.StatusTooManyRequests
			s.metrics.queueShed()
		case errors.Is(err, ErrShuttingDown):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, status, err)
		return
	}

	s.writeJSON(w, http.StatusOK, reorderResponse{
		Technique:   techName,
		Matrix:      matrixName,
		Rows:        res.Rows,
		Cols:        res.Cols,
		NNZ:         res.NNZ,
		Digest:      res.Digest,
		Cached:      cached,
		ElapsedMS:   float64(time.Since(started)) / float64(time.Millisecond),
		ComputeMS:   res.ComputeMS,
		Permutation: res.Perm,
		Quality:     res.Quality,
		Advisor:     adv,
	})
}

// advise returns the advisor's recommendation for the matrix, serving the
// feature vector from the digest-keyed cache when the matrix has been
// profiled before (the extraction, not the model, is the expensive part).
func (s *Server) advise(ctx context.Context, m *sparse.CSR) (advisor.Recommendation, error) {
	digest := m.Digest()
	if v, ok := s.features.get(digest); ok {
		return advisor.Recommend(advisor.DefaultModel(), v.(advisor.Features)), nil
	}
	start := time.Now()
	f, err := advisor.FeaturesCtx(ctx, m)
	if err != nil {
		return advisor.Recommendation{}, err
	}
	s.metrics.observeFeatures(time.Since(start))
	s.features.put(digest, f)
	return advisor.Recommend(advisor.DefaultModel(), f), nil
}

// errUnknownMatrix marks corpus references that do not resolve, mapped to
// 404 rather than 400.
var errUnknownMatrix = errors.New("serve: unknown corpus matrix")

// requestMatrix produces the request's matrix: a corpus reference via
// ?matrix=<name>, or an uploaded body bounded by the configured byte and
// dimension limits. The upload format is negotiated by Content-Type —
// sparse.BinaryCSRContentType selects the binary CSR codec, anything else
// parses as MatrixMarket text. The raw upload bytes are returned alongside
// so the sharding layer can forward a request without re-encoding.
func (s *Server) requestMatrix(w http.ResponseWriter, r *http.Request) (*sparse.CSR, string, []byte, error) {
	if name := r.URL.Query().Get("matrix"); name != "" {
		preset := s.cfg.Preset
		switch p := r.URL.Query().Get("preset"); p {
		case "", preset.String():
		case gen.Small.String():
			preset = gen.Small
		case gen.Full.String():
			preset = gen.Full
		default:
			return nil, "", nil, fmt.Errorf("serve: unknown preset %q", p)
		}
		m, err := s.matrices.get(name, preset)
		if err != nil {
			return nil, "", nil, fmt.Errorf("%w: %q", errUnknownMatrix, name)
		}
		return m, name, nil, nil
	}
	if r.Body == nil || r.Method == http.MethodGet {
		return nil, "", nil, errors.New("serve: POST a matrix body or pass ?matrix=<corpus name>")
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	defer body.Close()
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, "", nil, err
	}
	limits := sparse.MMLimits{
		MaxRows:    s.cfg.MaxRows,
		MaxCols:    s.cfg.MaxRows,
		MaxEntries: s.cfg.MaxEntries,
	}
	var m *sparse.CSR
	if uploadIsBinary(r.Header.Get("Content-Type")) {
		m, err = sparse.ReadBinaryCSRLimited(bytes.NewReader(raw), limits)
	} else {
		m, err = sparse.ReadMatrixMarketLimited(bytes.NewReader(raw), limits)
	}
	if err != nil {
		return nil, "", nil, err
	}
	return m, "", raw, nil
}

// uploadIsBinary reports whether the Content-Type selects the binary CSR
// codec. Parameters (charset etc.) are ignored; only the media type counts.
func uploadIsBinary(contentType string) bool {
	mt := contentType
	if i := strings.IndexByte(mt, ';'); i >= 0 {
		mt = mt[:i]
	}
	return strings.EqualFold(strings.TrimSpace(mt), sparse.BinaryCSRContentType)
}

// compute serves the keyed result: LRU hit, singleflight piggyback on an
// identical in-flight computation, or a fresh job on the worker pool. The
// returned bool reports whether the result came from the cache.
func (s *Server) compute(ctx context.Context, key string, tech reorder.OrdererCtx, m *sparse.CSR, wantQuality bool) (*reorderResult, bool, error) {
	if v, ok := s.cache.get(key); ok {
		s.metrics.cacheHit()
		return v.(*reorderResult), true, nil
	}
	s.metrics.cacheMissed()

	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		f.waiters++
		s.flightMu.Unlock()
		s.metrics.dedupWait()
		return s.await(ctx, f)
	}
	// The job context is detached from any single request: the job keeps
	// running while at least one waiter remains interested, and is
	// cancelled when the last one leaves or the compute budget expires.
	//lint:allow ctxflow the job deliberately outlives the submitting request; refcounted cancel below
	jobCtx, jobCancel := context.WithTimeout(context.Background(), s.cfg.MaxJobTime)
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: jobCancel}
	s.flights[key] = f
	s.flightMu.Unlock()

	err := s.pool.trySubmit(func() {
		defer jobCancel()
		res, jobErr := s.runJob(jobCtx, tech, m, wantQuality)
		if jobErr == nil {
			s.cache.put(key, res)
		}
		s.flightMu.Lock()
		f.res, f.err = res, jobErr
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
	})
	if err != nil {
		// Shed: fail this flight so any follower that joined between the
		// map insert and this failure observes the same error.
		s.flightMu.Lock()
		f.err = err
		delete(s.flights, key)
		s.flightMu.Unlock()
		jobCancel()
		close(f.done)
		return nil, false, err
	}
	return s.await(ctx, f)
}

// await blocks until the flight completes or the request context fires,
// detaching (and cancelling the job when it was the last waiter) in the
// latter case.
func (s *Server) await(ctx context.Context, f *flight) (*reorderResult, bool, error) {
	select {
	case <-f.done:
		return f.res, false, f.err
	case <-ctx.Done():
		s.flightMu.Lock()
		f.waiters--
		if f.waiters == 0 {
			f.cancel()
		}
		s.flightMu.Unlock()
		return nil, false, ctx.Err()
	}
}

// runJob executes one reordering on a pool worker: the technique's
// cancellable ordering, then (unless disabled) the community-quality
// metrics, which are cached per matrix digest so a technique sweep over
// one matrix detects communities once.
func (s *Server) runJob(ctx context.Context, tech reorder.OrdererCtx, m *sparse.CSR, wantQuality bool) (*reorderResult, error) {
	start := time.Now()
	var p sparse.Permutation
	var err error
	if po, ok := tech.(reorder.ParallelOrderer); ok {
		p, err = po.OrderParallelCtx(ctx, m, reorder.Options{Workers: s.cfg.OrderWorkers})
	} else {
		p, err = tech.OrderCtx(ctx, m)
	}
	s.metrics.observeJob(tech.Name(), time.Since(start), err != nil)
	if err != nil {
		return nil, err
	}
	res := &reorderResult{
		Perm:      p,
		Rows:      m.NumRows,
		Cols:      m.NumCols,
		NNZ:       m.NNZ(),
		Digest:    m.Digest(),
		ComputeMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	if wantQuality {
		qs, err := s.qualityFor(ctx, res.Digest, m)
		if err != nil {
			return nil, err
		}
		res.Quality = qs
	}
	return res, nil
}

// qualityFor returns the digest's community-quality stats, computing and
// caching them on first use.
func (s *Server) qualityFor(ctx context.Context, digest string, m *sparse.CSR) (*qualityStats, error) {
	if v, ok := s.quality.get(digest); ok {
		return v.(*qualityStats), nil
	}
	rr, err := core.RabbitCtx(ctx, m)
	if err != nil {
		return nil, err
	}
	cs := core.Analyze(m, rr.Communities)
	qs := &qualityStats{
		Insularity:  cs.Insularity,
		Modularity:  cs.Modularity,
		DegreeSkew:  cs.Skew,
		Communities: cs.Communities,
	}
	s.quality.put(digest, qs)
	return qs, nil
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding errors past the header are connection-level; nothing
	// useful remains to send the client.
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}
