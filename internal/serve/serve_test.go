package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

// checkGoroutines registers a teardown that fails the test if goroutines
// leaked relative to the count at call time. Brief transients (HTTP
// keep-alive reapers, exiting workers) get a grace period to wind down.
func checkGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if n > base {
			t.Errorf("goroutine leak: %d at teardown, %d at start", n, base)
		}
	})
}

// testMatrix builds a small two-clique community matrix; salt perturbs one
// value so different salts produce different digests (defeating the cache
// and the singleflight when a test needs distinct jobs).
func testMatrix(salt float32) *sparse.CSR {
	coo := sparse.NewCOO(8, 8, 64)
	for _, block := range [][2]int32{{0, 4}, {4, 8}} {
		for i := block[0]; i < block[1]; i++ {
			for j := i + 1; j < block[1]; j++ {
				coo.AddSym(i, j, 1)
			}
		}
	}
	coo.AddSym(3, 4, 1+salt)
	return coo.ToCSR()
}

func mmBody(t *testing.T, m *sparse.CSR) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func reorderURL(base string, params map[string]string) string {
	v := url.Values{}
	for k, val := range params {
		v.Set(k, val)
	}
	return base + "/reorder?" + v.Encode()
}

func doReorder(t *testing.T, client *http.Client, u string, body []byte) (int, reorderResponse, string) {
	t.Helper()
	var resp *http.Response
	var err error
	if body != nil {
		resp, err = client.Post(u, "text/plain", bytes.NewReader(body))
	} else {
		resp, err = client.Get(u)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out reorderResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad response JSON %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out, string(raw)
}

func TestReorderHappyPathAndCacheHit(t *testing.T) {
	checkGoroutines(t)
	s, ts := newTestServer(t, Config{Workers: 2})
	body := mmBody(t, testMatrix(0))

	status, first, raw := doReorder(t, ts.Client(), reorderURL(ts.URL, map[string]string{"technique": "RABBIT"}), body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if first.Cached {
		t.Fatal("cold request reported cached=true")
	}
	if err := check.ValidPermutation(first.Permutation); err != nil {
		t.Fatal(err)
	}
	if len(first.Permutation) != 8 {
		t.Fatalf("permutation length %d", len(first.Permutation))
	}
	if first.Quality == nil {
		t.Fatal("missing quality metrics")
	}
	if first.Quality.Communities < 2 {
		t.Fatalf("expected >=2 communities, got %d", first.Quality.Communities)
	}
	if !strings.HasPrefix(first.Digest, "sha256:") {
		t.Fatalf("bad digest %q", first.Digest)
	}

	status, second, raw := doReorder(t, ts.Client(), reorderURL(ts.URL, map[string]string{"technique": "RABBIT"}), body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !second.Cached {
		t.Fatal("identical request missed the cache")
	}
	if fmt.Sprint(first.Permutation) != fmt.Sprint(second.Permutation) {
		t.Fatal("cache hit returned a different permutation")
	}
	hits, misses := s.Metrics()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", hits, misses)
	}

	// The exposition surface reflects the same counters.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"reorderd_cache_hits_total 1",
		"reorderd_cache_misses_total 1",
		`reorderd_jobs_total{technique="RABBIT"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestReorderPlusInTechniqueName: an unencoded technique=RABBIT++ query
// (where + decodes to space) still resolves.
func TestReorderPlusInTechniqueName(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	status, out, raw := doReorder(t, ts.Client(), ts.URL+"/reorder?technique=RABBIT++", mmBody(t, testMatrix(0)))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if out.Technique != "RABBIT++" {
		t.Fatalf("technique %q", out.Technique)
	}
}

// TestDeterminismAcrossWorkersAndCacheState: the permutation for a (digest,
// technique) pair is byte-identical whether computed cold, served hot, or
// computed by pools of different sizes.
func TestDeterminismAcrossWorkersAndCacheState(t *testing.T) {
	checkGoroutines(t)
	body := mmBody(t, testMatrix(0))
	var perms []string
	for _, workers := range []int{1, 4} {
		_, ts := newTestServer(t, Config{Workers: workers})
		for pass := 0; pass < 2; pass++ {
			status, out, raw := doReorder(t, ts.Client(),
				reorderURL(ts.URL, map[string]string{"technique": "RABBIT++"}), body)
			if status != http.StatusOK {
				t.Fatalf("workers=%d pass=%d status %d: %s", workers, pass, status, raw)
			}
			if wantCached := pass == 1; out.Cached != wantCached {
				t.Fatalf("workers=%d pass=%d cached=%v", workers, pass, out.Cached)
			}
			perms = append(perms, fmt.Sprint(out.Permutation))
		}
	}
	for i := 1; i < len(perms); i++ {
		if perms[i] != perms[0] {
			t.Fatalf("permutation %d diverged:\n%s\nvs\n%s", i, perms[i], perms[0])
		}
	}
}

// TestDeadlineCancelsMidRabbit: a 10ms-deadline request against a RABBIT
// job on a large corpus matrix must come back with a deadline error fast —
// the job's merge loop observes cancellation — rather than blocking until
// the reordering finishes.
func TestDeadlineCancelsMidRabbit(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{Workers: 1})

	// Warm the generated matrix (and nothing else: ORIGINAL is trivial and
	// quality=off skips community detection) so the timed request below
	// measures reordering, not corpus generation.
	status, _, raw := doReorder(t, ts.Client(), reorderURL(ts.URL, map[string]string{
		"matrix": "soc-tight-1", "technique": "ORIGINAL", "quality": "off",
	}), nil)
	if status != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", status, raw)
	}

	start := time.Now()
	status, _, raw = doReorder(t, ts.Client(), reorderURL(ts.URL, map[string]string{
		"matrix": "soc-tight-1", "technique": "RABBIT", "quality": "off", "timeout_ms": "10",
	}), nil)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (elapsed %v): %s", status, elapsed, raw)
	}
	if !strings.Contains(raw, context.DeadlineExceeded.Error()) {
		t.Fatalf("error body %q does not mention the deadline", raw)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("deadline response took %v, want <500ms", elapsed)
	}
}

func TestOversizedRequests(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 1024, MaxRows: 64})

	// Body larger than MaxBodyBytes: 413 from the byte limit.
	big := make([]byte, 4096)
	for i := range big {
		big[i] = 'x'
	}
	status, _, raw := doReorder(t, ts.Client(), reorderURL(ts.URL, nil), big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d: %s", status, raw)
	}

	// Small body declaring absurd dimensions: 413 from the declared-size
	// limit, before any dimension-proportional allocation.
	huge := []byte("%%MatrixMarket matrix coordinate real general\n2000000000 2000000000 0\n")
	status, _, raw = doReorder(t, ts.Client(), reorderURL(ts.URL, nil), huge)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("huge declared size: status %d: %s", status, raw)
	}
}

// blockingOrderer parks in OrderCtx until released or cancelled, reporting
// each entry on started. It lets tests hold a worker and the queue in a
// known state.
type blockingOrderer struct {
	started chan struct{}
	release chan struct{}
}

func (b *blockingOrderer) Name() string { return "BLOCK" }

func (b *blockingOrderer) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	select {
	case <-b.release:
		return sparse.Identity(m.NumRows), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func blockingResolver(b *blockingOrderer) func(string) (reorder.OrdererCtx, error) {
	return func(name string) (reorder.OrdererCtx, error) {
		if name == "BLOCK" {
			return b, nil
		}
		return reorder.ByNameCtx(name)
	}
}

// TestQueueSaturationSheds: with one worker and a one-slot queue, a third
// concurrent job is shed with 429 while the first two eventually succeed.
func TestQueueSaturationSheds(t *testing.T) {
	checkGoroutines(t)
	blk := &blockingOrderer{started: make(chan struct{}, 8), release: make(chan struct{})}
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 1, Resolver: blockingResolver(blk),
	})

	req := func(salt float32) (int, string) {
		status, _, raw := doReorder(t, ts.Client(),
			reorderURL(ts.URL, map[string]string{"technique": "BLOCK", "quality": "off"}),
			mmBody(t, testMatrix(salt)))
		return status, raw
	}

	var wg sync.WaitGroup
	results := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, raw := req(float32(i+1) / 16)
			results[i] = status
			if status != http.StatusOK {
				t.Errorf("held request %d: status %d: %s", i, status, raw)
			}
		}()
	}

	// Wait until the first job occupies the worker, then until the second
	// sits in the queue.
	<-blk.started
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(text), "reorderd_queue_depth 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second job never queued:\n%s", text)
		}
		time.Sleep(5 * time.Millisecond)
	}

	status, raw := req(0.75)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d: %s", status, raw)
	}

	close(blk.release)
	wg.Wait()
}

// TestGracefulShutdownDrains: Close while a job is running must reject new
// work with 503, let the in-flight job finish and its client get a full
// response, and return only after the pool is idle.
func TestGracefulShutdownDrains(t *testing.T) {
	checkGoroutines(t)
	blk := &blockingOrderer{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := New(Config{Workers: 1, Resolver: blockingResolver(blk)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inFlight := make(chan int, 1)
	go func() {
		status, _, _ := doReorder(t, ts.Client(),
			reorderURL(ts.URL, map[string]string{"technique": "BLOCK", "quality": "off"}),
			mmBody(t, testMatrix(0)))
		inFlight <- status
	}()
	<-blk.started

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()

	// Close must be draining, not done, while the job is held.
	select {
	case <-closed:
		t.Fatal("Close returned while a job was still running")
	case <-time.After(50 * time.Millisecond):
	}

	// New work is rejected immediately during the drain.
	status, _, raw := doReorder(t, ts.Client(),
		reorderURL(ts.URL, map[string]string{"technique": "BLOCK", "quality": "off"}),
		mmBody(t, testMatrix(0.5)))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d: %s", status, raw)
	}

	close(blk.release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the job was released")
	}
	if got := <-inFlight; got != http.StatusOK {
		t.Fatalf("in-flight request finished with status %d", got)
	}
}

// TestDedupSingleflight: two concurrent identical cold requests run one
// job; the second piggybacks and both get the same permutation.
func TestDedupSingleflight(t *testing.T) {
	checkGoroutines(t)
	blk := &blockingOrderer{started: make(chan struct{}, 8), release: make(chan struct{})}
	s, ts := newTestServer(t, Config{Workers: 2, Resolver: blockingResolver(blk)})
	body := mmBody(t, testMatrix(0))
	u := reorderURL(ts.URL, map[string]string{"technique": "BLOCK", "quality": "off"})

	var wg sync.WaitGroup
	perms := make([]string, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, out, raw := doReorder(t, ts.Client(), u, body)
			if status != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, status, raw)
				return
			}
			perms[i] = fmt.Sprint(out.Permutation)
		}()
	}

	<-blk.started // one job is running
	// Wait for the second request to register as a dedup waiter, then
	// release; exactly one BLOCK job must have started.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(text), "reorderd_dedup_waits_total 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second request never deduped:\n%s", text)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(blk.release)
	wg.Wait()

	select {
	case <-blk.started:
		t.Fatal("dedup failed: a second job entered OrderCtx")
	default:
	}
	if perms[0] != perms[1] {
		t.Fatalf("deduped requests got different permutations: %s vs %s", perms[0], perms[1])
	}
	if hits, misses := s.Metrics(); misses != 2 || hits != 0 {
		t.Fatalf("cache counters hits=%d misses=%d, want 0/2", hits, misses)
	}
}

func TestErrorStatuses(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name   string
		params map[string]string
		body   []byte
		want   int
	}{
		{"unknown technique", map[string]string{"technique": "NOPE"}, mmBody(t, testMatrix(0)), http.StatusBadRequest},
		{"unknown corpus matrix", map[string]string{"matrix": "no-such-matrix"}, nil, http.StatusNotFound},
		{"no body no matrix", nil, nil, http.StatusBadRequest},
		{"garbage body", nil, []byte("this is not matrixmarket"), http.StatusBadRequest},
		{"non-square", nil, []byte("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n"), http.StatusBadRequest},
		{"bad timeout", map[string]string{"timeout_ms": "potato"}, mmBody(t, testMatrix(0)), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, raw := doReorder(t, ts.Client(), reorderURL(ts.URL, tc.params), tc.body)
			if status != tc.want {
				t.Fatalf("status %d, want %d: %s", status, tc.want, raw)
			}
		})
	}
}

func TestHealthz(t *testing.T) {
	checkGoroutines(t)
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	s.Close()
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: %d", resp.StatusCode)
	}
}
