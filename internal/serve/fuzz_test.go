package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzReorderHandler feeds arbitrary bytes through the full HTTP handler as
// MatrixMarket uploads. The invariant is purely defensive: the handler
// never panics and always produces a well-formed HTTP status, no matter how
// mangled the upload. Limits are tiny so declared-size shedding (not
// timeouts) bounds the work per input.
func FuzzReorderHandler(f *testing.F) {
	seeds := [][]byte{
		// Valid minimal matrix.
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 1.0\n"),
		// Truncated: header only, size line only, missing entries.
		[]byte("%%MatrixMarket"),
		[]byte("%%MatrixMarket matrix coordinate real general\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"),
		// Malformed size and entry lines.
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 x\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n2 2 1\n9 9 1.0\n"),
		[]byte("%%MatrixMarket matrix coordinate real general\n-1 -1 -1\n"),
		// Declared size far past the limits.
		[]byte("%%MatrixMarket matrix coordinate real general\n2000000000 2000000000 0\n"),
		// Wrong banner, empty input, binary noise.
		[]byte("%%MatrixMarket matrix array real general\n2 2\n1.0\n"),
		[]byte(""),
		{0x00, 0xff, 0x7f, 0x0a, 0x25, 0x25},
		// Symmetric and pattern variants, including a diagonal entry.
		[]byte("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n"),
		[]byte("%%MatrixMarket matrix coordinate integer symmetric\n2 2 1\n2 1 5\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	s := New(Config{
		Workers:      2,
		QueueDepth:   8,
		MaxBodyBytes: 1 << 16,
		MaxRows:      256,
		MaxEntries:   4096,
	})
	handler := s.Handler()
	f.Cleanup(s.Close)

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost,
			"/reorder?technique=RABBIT&quality=off", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests, http.StatusGatewayTimeout:
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, body)
		}
		if rec.Body.Len() == 0 {
			t.Fatalf("empty response body for status %d", rec.Code)
		}
	})
}
