package serve

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringReplicas is the number of virtual nodes each peer contributes to the
// consistent-hash ring. 64 vnodes keep the ownership share of N peers
// within a few percent of 1/N while the ring stays small enough that an
// owner lookup is a binary search over N*64 entries.
const ringReplicas = 64

// ring maps content keys (matrix digest hex) to owning peers by
// consistent hashing. Every peer builds the same ring from the same peer
// list — the peer set is sorted before vnode placement, so list order
// does not matter — which lets any peer compute any key's owner locally
// and forward without coordination. Adding or removing one peer moves
// only ~1/N of the key space, preserving the digest×technique caches on
// the surviving peers.
type ring struct {
	self   string
	peers  []string // sorted, deduplicated
	vnodes []vnode  // sorted by hash
}

// vnode is one virtual node: a point on the hash circle owned by a peer.
type vnode struct {
	hash uint64
	peer string
}

// newRing builds the ring for the sorted, deduplicated peer list. self
// must be one of the peers (Config normalization guarantees it).
func newRing(self string, peers []string) *ring {
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	sort.Strings(uniq)
	r := &ring{self: self, peers: uniq}
	r.vnodes = make([]vnode, 0, len(uniq)*ringReplicas)
	for _, p := range uniq {
		for i := 0; i < ringReplicas; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: ringHash(p + "#" + strconv.Itoa(i)), peer: p})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		// Hash collisions between vnodes are broken by peer name so every
		// ring instance agrees on the owner.
		return r.vnodes[a].peer < r.vnodes[b].peer
	})
	return r
}

// owner returns the peer owning the key: the first vnode clockwise from
// the key's hash (wrapping at the top of the circle).
func (r *ring) owner(key string) string {
	if r == nil || len(r.vnodes) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.vnodes[i].peer
}

// isSelf reports whether this peer owns the key. A nil ring (single-node
// deployment) owns everything.
func (r *ring) isSelf(key string) bool {
	return r == nil || r.owner(key) == r.self
}

// ringHash is the ring's hash function: FNV-1a 64 run through a
// splitmix64-style finalizer. FNV alone clusters badly on the short,
// similar vnode labels (peer URLs differing in one port digit), skewing
// ownership; the avalanche step spreads those clusters over the circle.
// Only uniform dispersion matters, not cryptographic strength — ownership
// is a performance routing decision, never a security boundary.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
