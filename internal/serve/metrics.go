package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets is the number of power-of-two millisecond histogram
// buckets: bucket i counts jobs with latency < 2^i ms, the last bucket is
// the overflow (+Inf).
const latencyBuckets = 18

// techStats aggregates per-technique job outcomes.
type techStats struct {
	jobs    int64
	errors  int64
	totalNs int64
	// buckets[i] counts jobs with elapsed < 2^i milliseconds; the final
	// bucket counts everything slower.
	buckets [latencyBuckets]int64
}

// metrics is the service's instrumentation surface, rendered by /metrics
// in a Prometheus-style text format with deterministic line order.
type metrics struct {
	mu         sync.Mutex
	requests   map[string]int64 // by path
	statuses   map[int]int64    // by HTTP status
	cacheHits  int64
	cacheMiss  int64
	dedupWaits int64 // requests that piggybacked on an in-flight computation
	shedQueue  int64 // 429s from queue saturation
	shedSize   int64 // 413s from body or dimension limits
	inFlight   int64 // HTTP requests currently being handled
	perTech    map[string]*techStats

	jobsSubmitted int64 // POST /jobs accepted submissions (including store hits)
	storeHits     int64 // job submissions answered from the job store
	forwards      int64 // requests forwarded to their ring owner
	forwardErrors int64 // forwards that failed at the transport level
	longPolls     int64 // GET /jobs/{id}?wait= requests that blocked

	advisorRecs map[string]int64 // technique=auto recommendations by chosen technique
	featCount   int64            // feature extractions actually performed (cache misses)
	featTotalNs int64
	// featBuckets[i] counts extractions with elapsed < 2^i ms, like the
	// per-technique job histogram; the final bucket is the overflow.
	featBuckets [latencyBuckets]int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:    make(map[string]int64),
		statuses:    make(map[int]int64),
		perTech:     make(map[string]*techStats),
		advisorRecs: make(map[string]int64),
	}
}

func (m *metrics) requestStarted(path string) {
	m.mu.Lock()
	m.requests[path]++
	m.inFlight++
	m.mu.Unlock()
}

func (m *metrics) requestFinished(status int) {
	m.mu.Lock()
	m.statuses[status]++
	m.inFlight--
	m.mu.Unlock()
}

func (m *metrics) cacheHit()    { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *metrics) cacheMissed() { m.mu.Lock(); m.cacheMiss++; m.mu.Unlock() }
func (m *metrics) dedupWait()   { m.mu.Lock(); m.dedupWaits++; m.mu.Unlock() }
func (m *metrics) queueShed()   { m.mu.Lock(); m.shedQueue++; m.mu.Unlock() }
func (m *metrics) sizeShed()    { m.mu.Lock(); m.shedSize++; m.mu.Unlock() }

func (m *metrics) jobSubmitted()  { m.mu.Lock(); m.jobsSubmitted++; m.mu.Unlock() }
func (m *metrics) storeHit()      { m.mu.Lock(); m.storeHits++; m.mu.Unlock() }
func (m *metrics) forwarded()     { m.mu.Lock(); m.forwards++; m.mu.Unlock() }
func (m *metrics) forwardFailed() { m.mu.Lock(); m.forwardErrors++; m.mu.Unlock() }
func (m *metrics) longPollWait()  { m.mu.Lock(); m.longPolls++; m.mu.Unlock() }

// observeJob records one completed reordering job for the technique.
func (m *metrics) observeJob(technique string, elapsed time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.perTech[technique]
	if ts == nil {
		ts = &techStats{}
		m.perTech[technique] = ts
	}
	ts.jobs++
	if failed {
		ts.errors++
	}
	ts.totalNs += elapsed.Nanoseconds()
	ms := elapsed.Milliseconds()
	b := 0
	for b < latencyBuckets-1 && ms >= 1<<b {
		b++
	}
	ts.buckets[b]++
}

// advisorRecommended records one technique=auto request resolving to the
// chosen technique.
func (m *metrics) advisorRecommended(technique string) {
	m.mu.Lock()
	m.advisorRecs[technique]++
	m.mu.Unlock()
}

// observeFeatures records one advisor feature extraction (cache misses
// only; digest-cache hits skip the extraction entirely).
func (m *metrics) observeFeatures(elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.featCount++
	m.featTotalNs += elapsed.Nanoseconds()
	ms := elapsed.Milliseconds()
	b := 0
	for b < latencyBuckets-1 && ms >= 1<<b {
		b++
	}
	m.featBuckets[b]++
}

// snapshotCounters returns (hits, misses) for tests and the amortization
// report.
func (m *metrics) snapshotCounters() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cacheHits, m.cacheMiss
}

// render writes the exposition text. queueDepth, cacheLen, and storeLen
// are sampled by the caller at render time (they live in the pool, cache,
// and job store, not here).
func (m *metrics) render(w io.Writer, queueDepth, cacheLen, storeLen int) {
	m.mu.Lock()
	defer m.mu.Unlock()

	paths := make([]string, 0, len(m.requests))
	for p := range m.requests {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(w, "reorderd_requests_total{path=%q} %d\n", p, m.requests[p])
	}

	codes := make([]int, 0, len(m.statuses))
	for c := range m.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "reorderd_responses_total{status=\"%d\"} %d\n", c, m.statuses[c])
	}

	fmt.Fprintf(w, "reorderd_in_flight %d\n", m.inFlight)
	fmt.Fprintf(w, "reorderd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "reorderd_cache_entries %d\n", cacheLen)
	fmt.Fprintf(w, "reorderd_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintf(w, "reorderd_cache_misses_total %d\n", m.cacheMiss)
	ratio := 0.0
	if lookups := m.cacheHits + m.cacheMiss; lookups > 0 {
		ratio = float64(m.cacheHits) / float64(lookups)
	}
	fmt.Fprintf(w, "reorderd_cache_hit_ratio %.6f\n", ratio)
	fmt.Fprintf(w, "reorderd_dedup_waits_total %d\n", m.dedupWaits)
	fmt.Fprintf(w, "reorderd_shed_queue_total %d\n", m.shedQueue)
	fmt.Fprintf(w, "reorderd_shed_size_total %d\n", m.shedSize)
	fmt.Fprintf(w, "reorderd_jobs_submitted_total %d\n", m.jobsSubmitted)
	fmt.Fprintf(w, "reorderd_job_store_hits_total %d\n", m.storeHits)
	fmt.Fprintf(w, "reorderd_job_store_entries %d\n", storeLen)
	fmt.Fprintf(w, "reorderd_forwards_total %d\n", m.forwards)
	fmt.Fprintf(w, "reorderd_forward_errors_total %d\n", m.forwardErrors)
	fmt.Fprintf(w, "reorderd_longpoll_waits_total %d\n", m.longPolls)

	recs := make([]string, 0, len(m.advisorRecs))
	for name := range m.advisorRecs {
		recs = append(recs, name)
	}
	sort.Strings(recs)
	for _, name := range recs {
		fmt.Fprintf(w, "reorderd_advisor_recommendations_total{technique=%q} %d\n", name, m.advisorRecs[name])
	}
	fmt.Fprintf(w, "reorderd_advisor_features_total %d\n", m.featCount)
	fmt.Fprintf(w, "reorderd_advisor_features_seconds_sum %.6f\n", float64(m.featTotalNs)/1e9)
	if m.featCount > 0 {
		cum := int64(0)
		for b := 0; b < latencyBuckets; b++ {
			cum += m.featBuckets[b]
			le := fmt.Sprintf("%d", int64(1)<<b)
			if b == latencyBuckets-1 {
				le = "+Inf"
			}
			fmt.Fprintf(w, "reorderd_advisor_features_ms_bucket{le=%q} %d\n", le, cum)
		}
	}

	techs := make([]string, 0, len(m.perTech))
	for name := range m.perTech {
		techs = append(techs, name)
	}
	sort.Strings(techs)
	for _, name := range techs {
		ts := m.perTech[name]
		fmt.Fprintf(w, "reorderd_jobs_total{technique=%q} %d\n", name, ts.jobs)
		fmt.Fprintf(w, "reorderd_job_errors_total{technique=%q} %d\n", name, ts.errors)
		fmt.Fprintf(w, "reorderd_job_seconds_sum{technique=%q} %.6f\n", name, float64(ts.totalNs)/1e9)
		cum := int64(0)
		for b := 0; b < latencyBuckets; b++ {
			cum += ts.buckets[b]
			le := fmt.Sprintf("%d", int64(1)<<b)
			if b == latencyBuckets-1 {
				le = "+Inf"
			}
			fmt.Fprintf(w, "reorderd_job_ms_bucket{technique=%q,le=%q} %d\n", name, le, cum)
		}
	}
}
