package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sparse"
)

// binBody encodes a matrix in the binary CSR wire format.
func binBody(t *testing.T, m *sparse.CSR) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sparse.WriteBinaryCSR(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postJob submits a matrix body to POST /jobs and parses the response.
func postJob(t *testing.T, client *http.Client, u string, body []byte, contentType string) (int, jobResponse, string) {
	t.Helper()
	resp, err := client.Post(u, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out jobResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad job JSON %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out, string(raw)
}

// getJob polls GET /jobs/{id} (with optional query) and parses the response.
func getJob(t *testing.T, client *http.Client, base, id, query string) (int, jobResponse, string) {
	t.Helper()
	u := base + "/jobs/" + id
	if query != "" {
		u += "?" + query
	}
	resp, err := client.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out jobResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("bad job JSON %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out, string(raw)
}

// awaitJob long-polls until the job leaves the queued/running states or the
// deadline passes.
func awaitJob(t *testing.T, client *http.Client, base, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		status, out, raw := getJob(t, client, base, id, "wait=500")
		if status != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, status, raw)
		}
		if out.Status == jobDone || out.Status == jobFailed {
			return out
		}
	}
	t.Fatalf("job %s did not complete in time", id)
	return jobResponse{}
}

// metricValue scrapes one series from /metrics.
func metricValue(t *testing.T, client *http.Client, base, series string) float64 {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, series+" "), "%g", &v); err != nil {
				t.Fatalf("bad metric line %q: %v", line, err)
			}
			return v
		}
	}
	return -1
}

// TestJobLifecycle: a binary-CSR submission is accepted with 202 and a
// pollable Location, completes asynchronously, and returns the same
// permutation the synchronous /reorder path computes for the same bytes.
func TestJobLifecycle(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	m := testMatrix(0)

	status, job, raw := postJob(t, ts.Client(), ts.URL+"/jobs?technique=RABBIT%2B%2B", binBody(t, m), sparse.BinaryCSRContentType)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, raw)
	}
	if job.Status != jobQueued && job.Status != jobRunning {
		t.Fatalf("fresh job status = %q", job.Status)
	}
	if len(job.JobID) != 64+1+16 {
		t.Fatalf("job ID %q has unexpected shape", job.JobID)
	}
	if want := strings.TrimPrefix(m.Digest(), "sha256:"); !strings.HasPrefix(job.JobID, want+".") {
		t.Fatalf("job ID %q does not start with the matrix digest %s", job.JobID, want)
	}

	done := awaitJob(t, ts.Client(), ts.URL, job.JobID)
	if done.Status != jobDone || done.Result == nil {
		t.Fatalf("completed job: %+v", done)
	}
	if done.CompletedMS <= 0 {
		t.Fatalf("completed job reports no wall time: %+v", done)
	}

	syncStatus, syncOut, syncRaw := doReorder(t, ts.Client(), ts.URL+"/reorder?technique=RABBIT%2B%2B", mmBody(t, m))
	if syncStatus != http.StatusOK {
		t.Fatalf("sync reorder: %d %s", syncStatus, syncRaw)
	}
	if len(syncOut.Permutation) != len(done.Result.Permutation) {
		t.Fatalf("async and sync permutation lengths differ: %d vs %d", len(done.Result.Permutation), len(syncOut.Permutation))
	}
	for i := range syncOut.Permutation {
		if syncOut.Permutation[i] != done.Result.Permutation[i] {
			t.Fatalf("async and sync permutations diverge at %d", i)
		}
	}
}

// TestJobStoreHitOnResubmit: resubmitting the same matrix and technique
// returns the stored job with 200 and the store-hit marker — the
// content-addressed persistence property.
func TestJobStoreHitOnResubmit(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{Workers: 2})
	body := binBody(t, testMatrix(0))

	status, first, raw := postJob(t, ts.Client(), ts.URL+"/jobs", body, sparse.BinaryCSRContentType)
	if status != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", status, raw)
	}
	awaitJob(t, ts.Client(), ts.URL, first.JobID)

	status, second, raw := postJob(t, ts.Client(), ts.URL+"/jobs", body, sparse.BinaryCSRContentType)
	if status != http.StatusOK {
		t.Fatalf("resubmit: %d %s", status, raw)
	}
	if !second.StoreHit || second.JobID != first.JobID || second.Status != jobDone || second.Result == nil {
		t.Fatalf("resubmit did not hit the store: %+v", second)
	}
	if hits := metricValue(t, ts.Client(), ts.URL, "reorderd_job_store_hits_total"); hits != 1 {
		t.Fatalf("reorderd_job_store_hits_total = %v, want 1", hits)
	}

	// The MatrixMarket encoding of the same matrix has the same digest, so
	// it is a store hit too — format never splits the content address.
	status, third, raw := postJob(t, ts.Client(), ts.URL+"/jobs", mmBody(t, testMatrix(0)), "text/plain")
	if status != http.StatusOK || !third.StoreHit {
		t.Fatalf("MM resubmit missed the store: %d %s", status, raw)
	}
}

// TestJobLongPollWakeup: a GET with ?wait= parked on an in-flight job wakes
// promptly when the job completes, rather than sleeping out its budget.
func TestJobLongPollWakeup(t *testing.T) {
	checkGoroutines(t)
	blk := &blockingOrderer{started: make(chan struct{}, 8), release: make(chan struct{})}
	_, ts := newTestServer(t, Config{Workers: 1, Resolver: blockingResolver(blk)})

	status, job, raw := postJob(t, ts.Client(), ts.URL+"/jobs?technique=BLOCK&quality=0", binBody(t, testMatrix(0)), sparse.BinaryCSRContentType)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, raw)
	}
	<-blk.started

	type pollResult struct {
		out     jobResponse
		elapsed time.Duration
	}
	got := make(chan pollResult, 1)
	go func() {
		start := time.Now()
		_, out, _ := getJob(t, ts.Client(), ts.URL, job.JobID, "wait=20000")
		got <- pollResult{out, time.Since(start)}
	}()

	// Give the poller time to park, then complete the job.
	time.Sleep(50 * time.Millisecond)
	close(blk.release)

	res := <-got
	if res.out.Status != jobDone {
		t.Fatalf("long-poll returned status %q", res.out.Status)
	}
	if res.elapsed > 10*time.Second {
		t.Fatalf("long-poll slept %v; wakeup on completion is broken", res.elapsed)
	}
	if waits := metricValue(t, ts.Client(), ts.URL, "reorderd_longpoll_waits_total"); waits < 1 {
		t.Fatalf("reorderd_longpoll_waits_total = %v, want >= 1", waits)
	}
}

// TestJobSaturationRollback: a submission shed with 429 leaves no orphaned
// store entry, so the same matrix resubmits cleanly once capacity frees up.
func TestJobSaturationRollback(t *testing.T) {
	checkGoroutines(t)
	blk := &blockingOrderer{started: make(chan struct{}, 8), release: make(chan struct{})}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Resolver: blockingResolver(blk)})

	if status, _, raw := postJob(t, ts.Client(), ts.URL+"/jobs?technique=BLOCK&quality=0", binBody(t, testMatrix(1)), sparse.BinaryCSRContentType); status != http.StatusAccepted {
		t.Fatalf("first: %d %s", status, raw)
	}
	<-blk.started
	if status, _, raw := postJob(t, ts.Client(), ts.URL+"/jobs?technique=BLOCK&quality=0", binBody(t, testMatrix(2)), sparse.BinaryCSRContentType); status != http.StatusAccepted {
		t.Fatalf("second: %d %s", status, raw)
	}
	shedBody := binBody(t, testMatrix(3))
	if status, _, raw := postJob(t, ts.Client(), ts.URL+"/jobs?technique=BLOCK&quality=0", shedBody, sparse.BinaryCSRContentType); status != http.StatusTooManyRequests {
		t.Fatalf("third: %d %s, want 429", status, raw)
	}

	close(blk.release)
	status, job, raw := postJob(t, ts.Client(), ts.URL+"/jobs?technique=BLOCK&quality=0", shedBody, sparse.BinaryCSRContentType)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit after shed: %d %s (a 200 here means the shed job leaked into the store)", status, raw)
	}
	if out := awaitJob(t, ts.Client(), ts.URL, job.JobID); out.Status != jobDone {
		t.Fatalf("resubmitted job: %+v", out)
	}
}

// TestJobErrors covers the job API's failure statuses.
func TestJobErrors(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	client := ts.Client()

	if resp, err := client.Get(ts.URL + "/jobs"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /jobs: %d, want 405", resp.StatusCode)
		}
	}
	if resp, err := client.Post(ts.URL+"/jobs/abc", "text/plain", strings.NewReader("x")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /jobs/{id}: %d, want 405", resp.StatusCode)
		}
	}
	if status, _, _ := getJob(t, client, ts.URL, "not-a-job-id", ""); status != http.StatusBadRequest {
		t.Fatalf("malformed ID: %d, want 400", status)
	}
	ghost := strings.Repeat("ab", 32) + "." + strings.Repeat("cd", 8)
	if status, _, _ := getJob(t, client, ts.URL, ghost, ""); status != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", status)
	}

	status, job, raw := postJob(t, client, ts.URL+"/jobs", binBody(t, testMatrix(0)), sparse.BinaryCSRContentType)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, raw)
	}
	if st, _, _ := getJob(t, client, ts.URL, job.JobID, "wait=banana"); st != http.StatusBadRequest {
		t.Fatalf("bad wait: %d, want 400", st)
	}

	rect := sparse.NewCOO(2, 3, 1)
	rect.Add(0, 2, 1)
	if st, _, raw := postJob(t, client, ts.URL+"/jobs", binBody(t, rect.ToCSR()), sparse.BinaryCSRContentType); st != http.StatusBadRequest {
		t.Fatalf("non-square: %d %s, want 400", st, raw)
	}
	if st, _, raw := postJob(t, client, ts.URL+"/jobs?technique=NOPE", binBody(t, testMatrix(0)), sparse.BinaryCSRContentType); st != http.StatusBadRequest {
		t.Fatalf("unknown technique: %d %s, want 400", st, raw)
	}
	if st, _, raw := postJob(t, client, ts.URL+"/jobs", []byte("CSRBgarbage"), sparse.BinaryCSRContentType); st != http.StatusBadRequest {
		t.Fatalf("corrupt binary body: %d %s, want 400", st, raw)
	}
}

// newPeerRing starts n in-process reorderd peers sharing one peer list.
// Listeners are bound first so every peer's URL is known before any server
// is constructed — the same two-phase bring-up a static -peers deployment
// uses.
func newPeerRing(t *testing.T, n int, cfg Config) []*httptest.Server {
	t.Helper()
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range tss {
		tss[i] = httptest.NewUnstartedServer(http.NotFoundHandler())
		urls[i] = "http://" + tss[i].Listener.Addr().String()
	}
	forward := &http.Client{}
	servers := make([]*Server, n)
	for i := range tss {
		c := cfg
		c.Self = urls[i]
		c.Peers = append([]string{}, urls...)
		c.ForwardClient = forward
		servers[i] = New(c)
		tss[i].Config.Handler = servers[i].Handler()
		tss[i].Start()
	}
	t.Cleanup(func() {
		forward.CloseIdleConnections()
		for i := range tss {
			tss[i].Close()
			servers[i].Close()
		}
	})
	return tss
}

// TestThreePeerForwardingDeterminism: in a 3-peer ring, a job submitted to
// a non-owner peer is transparently forwarded, completes on the owner, and
// yields a permutation identical to the one a single-node server computes
// for the same bytes.
func TestThreePeerForwardingDeterminism(t *testing.T) {
	checkGoroutines(t)
	tss := newPeerRing(t, 3, Config{Workers: 2})
	urls := make([]string, len(tss))
	for i, ts := range tss {
		urls[i] = ts.URL
	}
	r := newRing(urls[0], urls)

	// Find a matrix owned by a peer other than tss[0], so a submission to
	// tss[0] must hop.
	var m *sparse.CSR
	var owner string
	for salt := float32(0); salt < 64; salt++ {
		cand := testMatrix(salt)
		o := r.owner(strings.TrimPrefix(cand.Digest(), "sha256:"))
		if o != urls[0] {
			m, owner = cand, o
			break
		}
	}
	if m == nil {
		t.Fatal("no test matrix hashed off-peer; ring placement is suspicious")
	}

	client := tss[0].Client()
	resp, err := client.Post(tss[0].URL+"/jobs?technique=RABBIT%2B%2B", sparse.BinaryCSRContentType, bytes.NewReader(binBody(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded submit: %d %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Reorderd-Owner"); got != owner {
		t.Fatalf("X-Reorderd-Owner = %q, want %q", got, owner)
	}
	var job jobResponse
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatalf("bad forwarded JSON %q: %v", raw, err)
	}
	if job.Owner != owner {
		t.Fatalf("job owner = %q, want %q", job.Owner, owner)
	}

	// Poll through a third peer (neither owner nor the original entry
	// point) — GETs route by the digest embedded in the job ID.
	entry := tss[0].URL
	for _, u := range urls {
		if u != owner && u != tss[0].URL {
			entry = u
		}
	}
	done := awaitJob(t, client, entry, job.JobID)
	if done.Status != jobDone || done.Result == nil {
		t.Fatalf("forwarded job did not complete: %+v", done)
	}

	// Entry peer recorded the hop.
	if fwd := metricValue(t, client, tss[0].URL, "reorderd_forwards_total"); fwd < 1 {
		t.Fatalf("reorderd_forwards_total on entry peer = %v, want >= 1", fwd)
	}

	// A direct submission to the owner is a store hit on the same job.
	status, local, rawHit := postJob(t, client, owner+"/jobs?technique=RABBIT%2B%2B", binBody(t, m), sparse.BinaryCSRContentType)
	if status != http.StatusOK || !local.StoreHit {
		t.Fatalf("owner-local resubmit: %d %s", status, rawHit)
	}

	// And the permutation matches a single-node computation byte for byte.
	_, solo := newTestServer(t, Config{Workers: 2})
	soloStatus, soloOut, soloRaw := doReorder(t, solo.Client(), solo.URL+"/reorder?technique=RABBIT%2B%2B", mmBody(t, m))
	if soloStatus != http.StatusOK {
		t.Fatalf("single-node reorder: %d %s", soloStatus, soloRaw)
	}
	if len(soloOut.Permutation) != len(done.Result.Permutation) {
		t.Fatalf("permutation lengths differ: forwarded %d, single-node %d", len(done.Result.Permutation), len(soloOut.Permutation))
	}
	for i := range soloOut.Permutation {
		if soloOut.Permutation[i] != done.Result.Permutation[i] {
			t.Fatalf("forwarded and single-node permutations diverge at %d", i)
		}
	}
}

// TestRingEndpoint: /ring exposes the routing topology on both single-node
// and multi-peer deployments.
func TestRingEndpoint(t *testing.T) {
	checkGoroutines(t)
	_, solo := newTestServer(t, Config{Workers: 1})
	resp, err := solo.Client().Get(solo.URL + "/ring")
	if err != nil {
		t.Fatal(err)
	}
	var topo struct {
		Self         string   `json:"self"`
		Peers        []string `json:"peers"`
		VnodesPer    int      `json:"vnodes_per_peer"`
		StoreEntries int      `json:"store_entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(topo.Peers) != 1 {
		t.Fatalf("single-node /ring peers = %v", topo.Peers)
	}

	tss := newPeerRing(t, 3, Config{Workers: 1})
	resp, err = tss[1].Client().Get(tss[1].URL + "/ring")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(topo.Peers) != 3 || topo.Self != tss[1].URL || topo.VnodesPer != ringReplicas {
		t.Fatalf("3-peer /ring = %+v", topo)
	}
}

// TestReorderBinaryUpload: the synchronous /reorder path accepts the binary
// wire format via Content-Type and produces the same digest (and thus the
// same cache entry) as the MatrixMarket upload of the same matrix.
func TestReorderBinaryUpload(t *testing.T) {
	checkGoroutines(t)
	_, ts := newTestServer(t, Config{Workers: 1})
	m := testMatrix(0)

	resp, err := ts.Client().Post(ts.URL+"/reorder?technique=RCM", sparse.BinaryCSRContentType, bytes.NewReader(binBody(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary /reorder: %d %s", resp.StatusCode, raw)
	}
	var binOut reorderResponse
	if err := json.Unmarshal(raw, &binOut); err != nil {
		t.Fatal(err)
	}

	mmStatus, mmOut, mmRaw := doReorder(t, ts.Client(), ts.URL+"/reorder?technique=RCM", mmBody(t, m))
	if mmStatus != http.StatusOK {
		t.Fatalf("MM /reorder: %d %s", mmStatus, mmRaw)
	}
	if binOut.Digest != mmOut.Digest {
		t.Fatalf("digest differs by upload format: %s vs %s", binOut.Digest, mmOut.Digest)
	}
	if !mmOut.Cached {
		t.Fatal("MM upload after binary upload should hit the digest-keyed cache")
	}
}
