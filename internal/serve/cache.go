package serve

import (
	"container/list"
	"sync"

	"repro/internal/gen"
	"repro/internal/sparse"
)

// lruCache is a mutex-guarded LRU keyed by string. Values are opaque; the
// capacity counts entries, matching the paper's amortization model where
// what matters is whether a (matrix, technique) pair is resident, not its
// byte size.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; stores *lruEntry
	entries  map[string]*list.Element
}

type lruEntry struct {
	key   string
	value any
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value and refreshes its recency.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// put inserts or refreshes the key, evicting the least recently used entry
// beyond capacity.
func (c *lruCache) put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, value: value})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// len returns the resident entry count.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// matrixCache materializes generated corpus matrices at most once each and
// keeps a small LRU of them. Generation runs outside the cache lock; a
// per-entry sync.Once deduplicates concurrent generation of the same
// matrix without serializing different matrices.
type matrixCache struct {
	lru *lruCache
}

type matrixFuture struct {
	once sync.Once
	m    *sparse.CSR
	err  error
}

func newMatrixCache(capacity int) *matrixCache {
	return &matrixCache{lru: newLRUCache(capacity)}
}

// get returns the named corpus matrix at the given preset, generating it
// on first use.
func (mc *matrixCache) get(name string, preset gen.Preset) (*sparse.CSR, error) {
	key := preset.String() + "/" + name
	var fut *matrixFuture
	if v, ok := mc.lru.get(key); ok {
		fut = v.(*matrixFuture)
	} else {
		// Racing inserts are harmless: both futures generate the same
		// deterministic matrix, and the LRU keeps whichever landed last.
		fut = &matrixFuture{}
		mc.lru.put(key, fut)
	}
	fut.once.Do(func() {
		entry, err := gen.ByName(name)
		if err != nil {
			fut.err = err
			return
		}
		fut.m = entry.Generate(preset)
	})
	return fut.m, fut.err
}
