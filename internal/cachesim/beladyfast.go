package cachesim

import "math"

// This file is Belady's fast path. The reference SimulateBelady needs the
// whole trace as one contiguous []int64 plus a same-length next-use array
// and a Go map of last-seen indices — three allocations that each scale
// with the trace (an SpMM-256 stream is ~12 accesses per nonzero). The
// streaming path instead records the trace in fixed-size chunks, computes
// exact next-use information in one reverse pass with an open-addressed
// index table, and stores it as 4-byte forward distances: almost every
// next use is nearby, and everything at or beyond the end of the trace
// lands in one "never again" bucket (distNever). The forward simulation
// then replays the chunks with the reference victim-selection rule, so
// the resulting Stats are bit-identical to the reference oracle's.

// traceChunkBits sizes the recording chunks: 1<<16 line IDs (512 KB) per
// chunk keeps allocation incremental without measurable per-access cost.
const traceChunkBits = 16

const traceChunk = 1 << traceChunkBits

// Trace is a chunked, append-only recording of cache-line IDs — the
// streaming Belady input. Unlike RecordTrace's flat slice it never
// reallocates recorded data (chunks are fixed-size), so peak memory is the
// recording itself plus one chunk, not the 2× transient of append doubling.
type Trace struct {
	chunks [][]int64
	n      int64
}

// NewTrace returns an empty recording. sizeHint is the expected number of
// accesses (0 is always safe); it pre-sizes the chunk index only — chunk
// payloads are allocated as the recording grows, so over-estimates cost
// eight bytes per missing chunk, not a giant flat array.
func NewTrace(sizeHint int64) *Trace {
	t := &Trace{}
	if sizeHint > 0 {
		const maxHintChunks = 1 << 20 // index pre-size cap: 8 MB of pointers
		hintChunks := sizeHint>>traceChunkBits + 1
		if hintChunks > maxHintChunks {
			hintChunks = maxHintChunks
		}
		t.chunks = make([][]int64, 0, hintChunks)
	}
	return t
}

// Emit appends one line-granular access; it is the recording end of the
// trace-callback protocol (pass t.Emit as the emit function).
func (t *Trace) Emit(line int64) {
	i := int(t.n & (traceChunk - 1))
	if i == 0 {
		t.chunks = append(t.chunks, make([]int64, traceChunk))
	}
	t.chunks[len(t.chunks)-1][i] = line
	t.n++
}

// Len returns the number of recorded accesses.
func (t *Trace) Len() int64 { return t.n }

// At returns the i-th recorded line ID; i must be in [0, Len()).
//
//repro:noalloc
func (t *Trace) At(i int64) int64 {
	return t.chunks[i>>traceChunkBits][i&(traceChunk-1)]
}

// RecordTraceChunked drives the trace callback into a chunked recording
// sized by sizeHint (expected access count, 0 when unknown).
func RecordTraceChunked(trace func(emit func(line int64)), sizeHint int64) *Trace {
	t := NewTrace(sizeHint)
	trace(t.Emit)
	return t
}

// distNever is the "no next use before the end of the trace" bucket of the
// 4-byte distance encoding. Distances are exact for every trace shorter
// than 2^32-1 accesses; longer traces fall back to the reference oracle.
const distNever = ^uint32(0)

// idxTable is an open-addressed line → trace-index table used by the
// reverse next-use pass; after the pass completes each key holds the index
// of its line's first access, which the forward pass uses for
// compulsory-miss classification without a separate seen-set.
type idxTable struct {
	keys []int64
	vals []int64
	used int
	mask uint64
}

func newIdxTable(hint int64) idxTable {
	const maxHint = 1 << 26
	if hint > maxHint {
		hint = maxHint
	}
	size := 1024
	for int64(size)*3 < hint*4 {
		size <<= 1
	}
	t := idxTable{
		keys: make([]int64, size),
		vals: make([]int64, size),
		mask: uint64(size - 1),
	}
	for i := range t.keys {
		t.keys[i] = lineEmpty
	}
	return t
}

func (t *idxTable) hash(line int64) uint64 {
	return (uint64(line) * 0x9e3779b97f4a7c15) >> 32 & t.mask
}

// find returns the bucket for line, its value, and whether it was present.
//
//repro:noalloc
func (t *idxTable) find(line int64) (bucket int, val int64, found bool) {
	i := t.hash(line)
	for {
		k := t.keys[i]
		if k == line {
			return int(i), t.vals[i], true
		}
		if k == lineEmpty {
			return int(i), 0, false
		}
		i = (i + 1) & t.mask
	}
}

// insert adds a new key at find's bucket, growing first when needed.
func (t *idxTable) insert(bucket int, line, val int64) {
	if (t.used+1)*4 > len(t.keys)*3 {
		t.grow()
		bucket, _, _ = t.find(line)
	}
	t.keys[bucket] = line
	t.vals[bucket] = val
	t.used++
}

func (t *idxTable) grow() {
	old := *t
	size := len(old.keys) * 2
	t.keys = make([]int64, size)
	t.vals = make([]int64, size)
	t.mask = uint64(size - 1)
	for i := range t.keys {
		t.keys[i] = lineEmpty
	}
	for i, k := range old.keys {
		if k == lineEmpty {
			continue
		}
		j := t.hash(k)
		for t.keys[j] != lineEmpty {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = old.vals[i]
	}
}

// SimulateBeladyTrace runs a chunked recording through the streaming
// Belady-optimal simulator. The Stats are bit-identical to the reference
// SimulateBelady on the same access sequence (the differential suite
// enforces this); determinism follows from the exact next-use indices and
// the fixed way-scan victim rule. Traces of 2^32-1 accesses or more (an
// unreachable ~34 GB recording) delegate to the reference oracle, whose
// int64 next-use indices have no horizon.
func SimulateBeladyTrace(cfg Config, t *Trace) Stats {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if t.n >= math.MaxUint32 {
		flat := make([]int64, t.n)
		for i := int64(0); i < t.n; i++ {
			flat[i] = t.At(i)
		}
		return SimulateBelady(cfg, flat)
	}

	// Reverse pass: exact forward distance to each access's next use,
	// chunk by chunk, 4 bytes per access. The index table ends up holding
	// every line's first-access index.
	dist := make([][]uint32, len(t.chunks))
	idx := newIdxTable(int64(len(t.chunks)) * traceChunk / 8)
	for ci := len(t.chunks) - 1; ci >= 0; ci-- {
		chunk := t.chunks[ci]
		used := traceChunk
		if ci == len(t.chunks)-1 {
			used = int((t.n-1)&(traceChunk-1)) + 1
		}
		d := make([]uint32, used)
		base := int64(ci) << traceChunkBits
		for i := used - 1; i >= 0; i-- {
			line := chunk[i]
			if line < 0 {
				panic("cachesim: negative line ID")
			}
			abs := base + int64(i)
			bucket, later, found := idx.find(line)
			if found {
				d[i] = uint32(later - abs)
				idx.vals[bucket] = abs
			} else {
				d[i] = distNever
				idx.insert(bucket, line, abs)
			}
		}
		dist[ci] = d
	}

	// Forward pass: identical victim selection to the reference oracle —
	// scan ways in index order, prefer the first invalid way, otherwise
	// evict the strictly furthest next use.
	sets := cfg.Sets()
	setOf := cfg.setIndexer()
	ways := int64(cfg.Ways)
	const never = int64(1) << 62
	tags := make([]int64, sets*ways)
	next := make([]int64, sets*ways)
	reused := make([]bool, sets*ways)
	for i := range tags {
		tags[i] = -1
	}
	stats := Stats{LineBytes: cfg.LineBytes}

	for ci, chunk := range t.chunks {
		d := dist[ci]
		base := int64(ci) << traceChunkBits
		for i := range d {
			line := chunk[i]
			abs := base + int64(i)
			nextUse := never
			if d[i] != distNever {
				nextUse = abs + int64(d[i])
			}
			stats.Accesses++
			set := setOf(line)
			sb := set * ways
			hit := false
			var victim, victimNext int64 = sb, -1
			for w := int64(0); w < ways; w++ {
				k := sb + w
				if tags[k] == line {
					hit = true
					next[k] = nextUse
					reused[k] = true
					break
				}
				if tags[k] == -1 {
					if victimNext != never+1 {
						victim, victimNext = k, never+1
					}
					continue
				}
				if next[k] > victimNext {
					victim, victimNext = k, next[k]
				}
			}
			if hit {
				stats.Hits++
				continue
			}
			stats.Misses++
			if _, first, _ := idx.find(line); first == abs {
				stats.Compulsory++
			}
			if tags[victim] != -1 {
				stats.Evictions++
				if !reused[victim] {
					stats.DeadFills++
				}
			}
			tags[victim] = line
			next[victim] = nextUse
			reused[victim] = false
		}
	}
	for k, tag := range tags {
		if tag != -1 && !reused[k] {
			stats.DeadFills++
		}
	}
	assertCoherent(stats)
	return stats
}
