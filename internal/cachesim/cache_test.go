package cachesim

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func tinyCfg() Config {
	// 8 sets × 2 ways × 64B lines = 1 KB.
	return Config{CapacityBytes: 1024, LineBytes: 64, Ways: 2}
}

func TestConfigValidate(t *testing.T) {
	if err := tinyCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	// Non-power-of-two set counts are valid (the A6000 L2 has 3072 sets).
	if err := (Config{CapacityBytes: 64 * 2 * 3, LineBytes: 64, Ways: 2}).Validate(); err != nil {
		t.Fatalf("3-set geometry rejected: %v", err)
	}
	bad := []Config{
		{CapacityBytes: 0, LineBytes: 64, Ways: 2},
		{CapacityBytes: 1000, LineBytes: 64, Ways: 2}, // not divisible
		{CapacityBytes: 1024, LineBytes: -1, Ways: 2},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if got := tinyCfg().Sets(); got != 8 {
		t.Fatalf("Sets = %d, want 8", got)
	}
}

func TestLRUHitAndMiss(t *testing.T) {
	c := NewLRU(tinyCfg())
	if c.Access(0) {
		t.Fatal("first touch hit")
	}
	if !c.Access(0) {
		t.Fatal("immediate re-touch missed")
	}
	s := c.Finalize()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 || s.Compulsory != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TrafficBytes() != 64 {
		t.Fatalf("traffic = %d, want 64", s.TrafficBytes())
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", s.HitRate())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 2-way set: lines 0, 8, 16 all map to set 0 (8 sets). After touching
	// 0 then 8, touching 16 must evict 0 (the LRU way).
	c := NewLRU(tinyCfg())
	c.Access(0)
	c.Access(8)
	c.Access(16) // evicts 0
	if c.Access(8) != true {
		t.Fatal("line 8 should still be resident")
	}
	if c.Access(0) {
		t.Fatal("line 0 should have been evicted")
	}
}

func TestLRUConflictMissesNotCompulsory(t *testing.T) {
	c := NewLRU(tinyCfg())
	c.Access(0)
	c.Access(8)
	c.Access(16)
	c.Access(0) // conflict miss, not compulsory
	s := c.Finalize()
	if s.Compulsory != 3 {
		t.Fatalf("compulsory = %d, want 3", s.Compulsory)
	}
	if s.Misses != 4 {
		t.Fatalf("misses = %d, want 4", s.Misses)
	}
}

func TestDeadLineTracking(t *testing.T) {
	// Touch lines 0..23 once (24 fills in a 16-line cache), never reuse:
	// every fill is dead, whether evicted or still resident at the end.
	c := NewLRU(tinyCfg())
	for l := int64(0); l < 24; l++ {
		c.Access(l)
	}
	s := c.Finalize()
	if s.DeadFills != 24 {
		t.Fatalf("DeadFills = %d, want 24", s.DeadFills)
	}
	if s.DeadLineFraction() != 1.0 {
		t.Fatalf("DeadLineFraction = %v, want 1", s.DeadLineFraction())
	}
	// A fully reused run has no dead lines.
	c = NewLRU(tinyCfg())
	for rep := 0; rep < 2; rep++ {
		for l := int64(0); l < 8; l++ {
			c.Access(l)
		}
	}
	if s := c.Finalize(); s.DeadFills != 0 {
		t.Fatalf("fully reused run has %d dead fills", s.DeadFills)
	}
}

func TestBeladyKnownSchedule(t *testing.T) {
	// Direct-mapped-equivalent stress: 1 set, 2 ways, classic Belady
	// example. Trace: a b c a b c with 2 ways.
	// OPT: fill a, fill b; c evicts whichever of a/b is used later... all
	// reused equally; compute misses: a(m) b(m) c(m, evict b since b's next
	// use (4) is after a's (3)) a(h) b(m, evict ...) c(...).
	cfg := Config{CapacityBytes: 128, LineBytes: 64, Ways: 2} // 1 set
	trace := []int64{0, 1, 2, 0, 1, 2}
	s := SimulateBelady(cfg, trace)
	// Belady on cyclic 3-line trace with 2 ways: misses = 3 compulsory +
	// at most 1 more. LRU would miss all 6.
	lru := SimulateLRU(cfg, func(emit func(int64)) {
		for _, l := range trace {
			emit(l)
		}
	})
	if lru.Misses != 6 {
		t.Fatalf("LRU misses = %d, want 6 (cyclic thrash)", lru.Misses)
	}
	if s.Misses >= lru.Misses {
		t.Fatalf("Belady misses %d not better than LRU %d", s.Misses, lru.Misses)
	}
	if s.Misses < 3 {
		t.Fatalf("Belady misses %d below compulsory 3", s.Misses)
	}
}

func TestBeladyNeverWorseThanLRU(t *testing.T) {
	f := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		trace := make([]int64, 4000)
		for i := range trace {
			trace[i] = int64(r.Intn(200))
		}
		cfg := Config{CapacityBytes: 4096, LineBytes: 64, Ways: 4} // 16 sets
		lru := SimulateLRU(cfg, func(emit func(int64)) {
			for _, l := range trace {
				emit(l)
			}
		})
		opt := SimulateBelady(cfg, trace)
		return opt.Misses <= lru.Misses && opt.Misses >= opt.Compulsory &&
			lru.Compulsory == opt.Compulsory
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUMonotoneInCapacityFullyAssociative(t *testing.T) {
	// The LRU inclusion property: a larger fully-associative LRU cache
	// never misses more.
	r := gen.NewRNG(9)
	trace := make([]int64, 6000)
	for i := range trace {
		trace[i] = int64(r.Zipf(500, 0.8))
	}
	run := func(lines int64) int64 {
		cfg := Config{CapacityBytes: 64 * lines, LineBytes: 64, Ways: int32(lines)} // 1 set
		return SimulateLRU(cfg, func(emit func(int64)) {
			for _, l := range trace {
				emit(l)
			}
		}).Misses
	}
	prev := run(8)
	for _, lines := range []int64{16, 32, 64, 128} {
		cur := run(lines)
		if cur > prev {
			t.Fatalf("misses grew from %d to %d when capacity doubled to %d lines", prev, cur, lines)
		}
		prev = cur
	}
}

func TestCompulsoryEqualsDistinctLines(t *testing.T) {
	f := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		trace := make([]int64, 2000)
		distinct := map[int64]bool{}
		for i := range trace {
			trace[i] = int64(r.Intn(300))
			distinct[trace[i]] = true
		}
		cfg := Config{CapacityBytes: 2048, LineBytes: 64, Ways: 2}
		lru := SimulateLRU(cfg, func(emit func(int64)) {
			for _, l := range trace {
				emit(l)
			}
		})
		opt := SimulateBelady(cfg, trace)
		return lru.Compulsory == int64(len(distinct)) && opt.Compulsory == int64(len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestInfiniteCacheOnlyCompulsory(t *testing.T) {
	r := gen.NewRNG(3)
	cfg := Config{CapacityBytes: 64 * 1 << 20, LineBytes: 64, Ways: 16}
	c := NewLRU(cfg)
	for i := 0; i < 50000; i++ {
		c.Access(int64(r.Intn(5000)))
	}
	s := c.Finalize()
	if s.Misses != s.Compulsory {
		t.Fatalf("cache larger than footprint has %d misses but %d compulsory", s.Misses, s.Compulsory)
	}
}

func TestRecordTrace(t *testing.T) {
	got := RecordTrace(func(emit func(int64)) {
		emit(3)
		emit(1)
		emit(3)
	})
	want := []int64{3, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("RecordTrace = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RecordTrace = %v, want %v", got, want)
		}
	}
}

func TestBeladyEmptyTrace(t *testing.T) {
	s := SimulateBelady(tinyCfg(), nil)
	if s.Accesses != 0 || s.Misses != 0 {
		t.Fatalf("empty trace stats = %+v", s)
	}
}
