package cachesim

// SimulateBelady runs a recorded line-granular trace through a
// set-associative cache with Belady's optimal replacement policy: on a
// miss in a full set, the resident line whose next use is furthest in the
// future is evicted. Belady's policy is an oracle — it needs the whole
// trace up front — and bounds the DRAM traffic any real replacement policy
// could achieve (Figure 8).
//
// This is the reference implementation (a flat trace, a same-length
// next-use array, and a Go map of last-seen indices); the hot paths use
// the chunked streaming equivalent SimulateBeladyTrace, which produces
// bit-identical Stats. Deterministic: the victim scan is by way index with
// exact next-use comparison, so the same trace always yields the same
// Stats.
func SimulateBelady(cfg Config, trace []int64) Stats {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	setOf := cfg.setIndexer()
	ways := int64(cfg.Ways)

	// nextUse[i] is the index of the next access to trace[i]'s line, or
	// len(trace) when there is none. Built with a backward scan.
	const never = int64(1) << 62
	nextUse := make([]int64, len(trace))
	last := make(map[int64]int64, 1<<16)
	for i := len(trace) - 1; i >= 0; i-- {
		line := trace[i]
		if j, ok := last[line]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = never
		}
		last[line] = int64(i)
	}

	tags := make([]int64, sets*ways)
	next := make([]int64, sets*ways) // next use of the resident line
	reused := make([]bool, sets*ways)
	for i := range tags {
		tags[i] = -1
	}
	seen := make(map[int64]struct{}, len(last))
	stats := Stats{LineBytes: cfg.LineBytes}

	for i, line := range trace {
		if line < 0 {
			panic("cachesim: negative line ID")
		}
		stats.Accesses++
		set := setOf(line)
		base := set * ways
		hit := false
		var victim, victimNext int64 = base, -1
		for w := int64(0); w < ways; w++ {
			k := base + w
			if tags[k] == line {
				hit = true
				next[k] = nextUse[i]
				reused[k] = true
				break
			}
			if tags[k] == -1 {
				// Prefer filling an invalid way; mark it as the victim with
				// maximal priority.
				if victimNext != never+1 {
					victim, victimNext = k, never+1
				}
				continue
			}
			if next[k] > victimNext {
				victim, victimNext = k, next[k]
			}
		}
		if hit {
			stats.Hits++
			continue
		}
		stats.Misses++
		if _, ok := seen[line]; !ok {
			seen[line] = struct{}{}
			stats.Compulsory++
		}
		if tags[victim] != -1 {
			stats.Evictions++
			if !reused[victim] {
				stats.DeadFills++
			}
		}
		tags[victim] = line
		next[victim] = nextUse[i]
		reused[victim] = false
	}
	for k, tag := range tags {
		if tag != -1 && !reused[k] {
			stats.DeadFills++
		}
	}
	assertCoherent(stats)
	return stats
}

// RecordTrace materializes a streaming trace into a flat slice for the
// reference Belady simulation. Prefer RecordTraceSized when the caller can
// estimate the access count (e.g. from gpumodel.Kernel.TraceAccessUpperBound
// on CSR.NNZ()): without a hint the slice grows by append doubling, which
// transiently holds up to 2× the final recording.
func RecordTrace(trace func(emit func(line int64))) []int64 {
	return RecordTraceSized(trace, 0)
}

// RecordTraceSized is RecordTrace with a capacity hint (expected number of
// accesses). The hint is clamped to [0, 1<<27] entries (1 GB of int64s) so
// an overflowed or hostile estimate cannot demand an absurd up-front
// allocation; recordings beyond the clamp simply resume append growth.
func RecordTraceSized(trace func(emit func(line int64)), sizeHint int64) []int64 {
	const maxHint = 1 << 27
	if sizeHint < 0 {
		sizeHint = 0
	}
	if sizeHint > maxHint {
		sizeHint = maxHint
	}
	out := make([]int64, 0, sizeHint)
	trace(func(line int64) { out = append(out, line) })
	return out
}
