package cachesim

import (
	"testing"

	"repro/internal/gen"
)

// benchCfg is the Small-corpus device geometry (32 KB, 16-way, 128 B
// lines) the experiment suite simulates against.
var benchCfg = Config{CapacityBytes: 32 << 10, LineBytes: 128, Ways: 16}

// benchTrace mimics a kernel reference stream: streaming operand runs
// interleaved with Zipf-distributed irregular accesses over a footprint
// several times the cache.
func benchTrace(n int) ([]int64, int64) {
	r := gen.NewRNG(42)
	trace := make([]int64, n)
	distinct := make(map[int64]bool)
	seq := int64(1 << 20)
	for i := range trace {
		switch i % 4 {
		case 0, 1: // irregular X-vector style accesses
			trace[i] = int64(r.Zipf(8192, 0.8))
		case 2: // streaming run
			trace[i] = seq
			if i%8 == 0 {
				seq++
			}
		case 3:
			trace[i] = int64(2<<20) + int64(r.Intn(4096))
		}
		distinct[trace[i]] = true
	}
	return trace, int64(len(distinct))
}

// BenchmarkLRUAccess compares the per-access cost of the two LRU
// implementations on the same mixed stream. The fast path must report
// 0 allocs/op; scripts/bench.sh records the ratio in BENCH_cachesim.json.
func BenchmarkLRUAccess(b *testing.B) {
	trace, distinct := benchTrace(1 << 20)
	b.Run("fast", func(b *testing.B) {
		c := NewFastLRU(benchCfg, distinct)
		b.ReportAllocs()
		b.ResetTimer()
		j := 0
		for i := 0; i < b.N; i++ {
			c.Access(trace[j])
			if j++; j == len(trace) {
				j = 0
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		c := NewLRU(benchCfg)
		b.ReportAllocs()
		b.ResetTimer()
		j := 0
		for i := 0; i < b.N; i++ {
			c.Access(trace[j])
			if j++; j == len(trace) {
				j = 0
			}
		}
	})
}

// BenchmarkBelady compares the full Belady pipelines (record + next-use +
// forward simulation) per simulated access.
func BenchmarkBelady(b *testing.B) {
	trace, _ := benchTrace(1 << 18)
	replay := func(emit func(int64)) {
		for _, l := range trace {
			emit(l)
		}
	}
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SimulateBeladyTrace(benchCfg, RecordTraceChunked(replay, int64(len(trace))))
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SimulateBelady(benchCfg, RecordTrace(replay))
		}
	})
}
