package cachesim

import (
	"testing"

	"repro/internal/gen"
)

func zipfTrace(seed uint64, n, lines int32) []int64 {
	r := gen.NewRNG(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.Zipf(lines, 0.9))
	}
	return out
}

func runPolicy(cfg Config, p Policy, trace []int64) Stats {
	return Simulate(cfg, p, func(emit func(int64)) {
		for _, l := range trace {
			emit(l)
		}
	})
}

func TestPolicyNames(t *testing.T) {
	if PolicyLRU.String() != "LRU" || PolicyPLRU.String() != "PLRU" || PolicyRandom.String() != "RANDOM" {
		t.Fatal("policy names wrong")
	}
}

func TestCacheLRUMatchesLegacyLRU(t *testing.T) {
	cfg := Config{CapacityBytes: 8192, LineBytes: 64, Ways: 4}
	trace := zipfTrace(1, 20000, 500)
	a := runPolicy(cfg, PolicyLRU, trace)
	b := SimulateLRU(cfg, func(emit func(int64)) {
		for _, l := range trace {
			emit(l)
		}
	})
	if a.Misses != b.Misses || a.Hits != b.Hits || a.DeadFills != b.DeadFills {
		t.Fatalf("policy-engine LRU %+v differs from legacy LRU %+v", a, b)
	}
}

func TestPoliciesRespectBounds(t *testing.T) {
	cfg := Config{CapacityBytes: 8192, LineBytes: 64, Ways: 4}
	trace := zipfTrace(2, 30000, 800)
	opt := SimulateBelady(cfg, trace)
	for _, p := range []Policy{PolicyLRU, PolicyPLRU, PolicyRandom} {
		s := runPolicy(cfg, p, trace)
		if s.Misses < opt.Misses {
			t.Fatalf("%s misses %d below Belady %d", p, s.Misses, opt.Misses)
		}
		if s.Misses < s.Compulsory {
			t.Fatalf("%s misses below compulsory", p)
		}
		if s.Compulsory != opt.Compulsory {
			t.Fatalf("%s compulsory %d != %d", p, s.Compulsory, opt.Compulsory)
		}
	}
}

func TestPLRUApproximatesLRU(t *testing.T) {
	// On a reuse-friendly trace PLRU should land within a modest factor of
	// true LRU and far from the all-miss ceiling.
	cfg := Config{CapacityBytes: 64 * 256, LineBytes: 64, Ways: 8}
	trace := zipfTrace(3, 60000, 1000)
	lru := runPolicy(cfg, PolicyLRU, trace)
	plru := runPolicy(cfg, PolicyPLRU, trace)
	if plru.Misses > lru.Misses*3/2 {
		t.Fatalf("PLRU misses %d vs LRU %d; approximation too loose", plru.Misses, lru.Misses)
	}
}

func TestPLRUSingleWayAndFullTree(t *testing.T) {
	// Direct-mapped PLRU degenerates to direct-mapped behaviour.
	cfg := Config{CapacityBytes: 64 * 16, LineBytes: 64, Ways: 1}
	s := runPolicy(cfg, PolicyPLRU, []int64{0, 16, 0, 16})
	if s.Hits != 0 || s.Misses != 4 {
		t.Fatalf("direct-mapped conflict trace: %+v", s)
	}
	// 2-way PLRU is exactly LRU.
	cfg2 := Config{CapacityBytes: 64 * 2, LineBytes: 64, Ways: 2} // 1 set
	tr := zipfTrace(4, 5000, 6)
	if a, b := runPolicy(cfg2, PolicyPLRU, tr), runPolicy(cfg2, PolicyLRU, tr); a.Misses != b.Misses {
		t.Fatalf("2-way PLRU (%d misses) must equal LRU (%d)", a.Misses, b.Misses)
	}
}

func TestPLRURejectsNonPowerOfTwoWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PLRU with 3 ways accepted")
		}
	}()
	New(Config{CapacityBytes: 64 * 3, LineBytes: 64, Ways: 3}, PolicyPLRU)
}

func TestRandomPolicyDeterministic(t *testing.T) {
	cfg := Config{CapacityBytes: 4096, LineBytes: 64, Ways: 4}
	trace := zipfTrace(5, 20000, 400)
	a := runPolicy(cfg, PolicyRandom, trace)
	b := runPolicy(cfg, PolicyRandom, trace)
	if a != b {
		t.Fatal("random policy must be deterministic run to run (seeded)")
	}
}
