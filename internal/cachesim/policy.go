package cachesim

import "fmt"

// Policy selects the replacement strategy of a simulated cache. LRU models
// the A6000's L2 (the paper validates this within 4% of hardware); PLRU is
// the cheaper tree-based approximation real caches often implement; RANDOM
// is the classic lower bar. Belady-optimal replacement has its own entry
// point (SimulateBelady) because it needs the whole trace.
type Policy int

const (
	// PolicyLRU evicts the least-recently-used way.
	PolicyLRU Policy = iota
	// PolicyPLRU evicts along the tree-bit pseudo-LRU path.
	PolicyPLRU
	// PolicyRandom evicts a uniformly random way (deterministic seed).
	PolicyRandom
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "LRU"
	case PolicyPLRU:
		return "PLRU"
	case PolicyRandom:
		return "RANDOM"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Cache is a set-associative cache with a configurable replacement policy.
type Cache struct {
	cfg    Config
	policy Policy
	setOf  func(int64) int64
	ways   int32
	tags   []int64
	reused []bool
	// LRU state
	lastUse []uint64
	clock   uint64
	// PLRU state: one tree-bit vector per set (ways-1 bits packed in a
	// uint32; supports up to 32 ways).
	plru []uint32
	// Random state
	rng   uint64
	seen  map[int64]struct{}
	stats Stats
}

// New builds an empty cache with the given replacement policy. It panics
// on invalid geometry (static configuration is a programming error) and on
// PLRU with non-power-of-two associativity.
func New(cfg Config, policy Policy) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if policy == PolicyPLRU && (cfg.Ways&(cfg.Ways-1)) != 0 {
		panic("cachesim: PLRU requires power-of-two associativity")
	}
	total := cfg.Sets() * int64(cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		policy:  policy,
		setOf:   cfg.setIndexer(),
		ways:    cfg.Ways,
		tags:    make([]int64, total),
		reused:  make([]bool, total),
		lastUse: make([]uint64, total),
		plru:    make([]uint32, cfg.Sets()),
		rng:     0x9e3779b97f4a7c15,
		seen:    make(map[int64]struct{}, 1<<16),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	c.stats.LineBytes = cfg.LineBytes
	return c
}

// Access touches one cache line and reports whether it hit.
func (c *Cache) Access(line int64) bool {
	if line < 0 {
		panic("cachesim: negative line ID")
	}
	c.clock++
	c.stats.Accesses++
	set := c.setOf(line)
	base := set * int64(c.ways)
	for w := int64(0); w < int64(c.ways); w++ {
		i := base + w
		if c.tags[i] == line {
			c.stats.Hits++
			c.reused[i] = true
			c.touch(set, int32(w), i)
			return true
		}
	}
	c.stats.Misses++
	if _, ok := c.seen[line]; !ok {
		c.seen[line] = struct{}{}
		c.stats.Compulsory++
	}
	victim := c.victim(set, base)
	if c.tags[victim] != -1 {
		c.stats.Evictions++
		if !c.reused[victim] {
			c.stats.DeadFills++
		}
	}
	c.tags[victim] = line
	c.reused[victim] = false
	c.touch(set, int32(victim-base), victim)
	return false
}

// touch updates policy metadata on a hit or fill.
func (c *Cache) touch(set int64, way int32, idx int64) {
	switch c.policy {
	case PolicyLRU:
		c.lastUse[idx] = c.clock
	case PolicyPLRU:
		// Flip tree bits along the path to `way` so they point away.
		bits := c.plru[set]
		node := int32(1)
		for span := c.ways; span > 1; span /= 2 {
			half := span / 2
			goRight := way%span >= half
			if goRight {
				bits &^= 1 << uint(node-1) // point left
				node = 2*node + 1
			} else {
				bits |= 1 << uint(node-1) // point right
				node = 2 * node
			}
		}
		c.plru[set] = bits
	case PolicyRandom:
		// stateless
	}
}

// victim selects the way to evict in the set; invalid ways win first.
func (c *Cache) victim(set, base int64) int64 {
	for w := int64(0); w < int64(c.ways); w++ {
		if c.tags[base+w] == -1 {
			return base + w
		}
	}
	switch c.policy {
	case PolicyLRU:
		victim := base
		age := ^uint64(0)
		for w := int64(0); w < int64(c.ways); w++ {
			if c.lastUse[base+w] < age {
				age = c.lastUse[base+w]
				victim = base + w
			}
		}
		return victim
	case PolicyPLRU:
		bits := c.plru[set]
		node := int32(1)
		way := int32(0)
		for span := c.ways; span > 1; span /= 2 {
			half := span / 2
			if bits&(1<<uint(node-1)) != 0 { // points right
				way += half
				node = 2*node + 1
			} else {
				node = 2 * node
			}
		}
		return base + int64(way)
	case PolicyRandom:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return base + int64(c.rng%uint64(c.ways))
	default:
		return base
	}
}

// Finalize folds still-resident never-reused lines into DeadFills and
// returns the final statistics.
func (c *Cache) Finalize() Stats {
	s := c.stats
	for i, tag := range c.tags {
		if tag != -1 && !c.reused[i] {
			s.DeadFills++
		}
	}
	return s
}

// Simulate runs a complete trace through a fresh cache with the policy.
func Simulate(cfg Config, policy Policy, trace func(emit func(line int64))) Stats {
	c := New(cfg, policy)
	trace(func(line int64) { c.Access(line) })
	return c.Finalize()
}
