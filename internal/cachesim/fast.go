package cachesim

// This file is the simulator's fast path: an arena-backed LRU whose
// per-access work is one open-addressed hash probe plus an intrusive-list
// splice, with zero heap allocations per access. It replaces the reference
// implementation (cache.go) on every hot loop; the reference stays behind
// Impl selection (impl.go) as the differential-testing oracle. Both
// implementations produce bit-identical Stats for every trace: LRU
// replacement with strictly increasing access clocks is deterministic, and
// the fill order of invalid ways cannot affect any counted event.

// slot is one cache way in the arena. Slots live in a single flat slice
// indexed by set*ways+way; prev/next link the slot into its set's recency
// list (indices into the same slice, -1 = none), so a hit reorders the set
// with four pointer writes instead of a timestamp scan.
type slot struct {
	line int64 // resident line ID, -1 while the way is invalid
	prev int32 // neighbour toward MRU, -1 at the head
	next int32 // neighbour toward LRU, -1 at the tail
	set  int32 // owning set (precomputed: slots never change sets)
	// bucket memoizes the resident line's lineTable bucket so eviction
	// can invalidate the table entry without a second probe; growTable
	// rewrites the memos when buckets move.
	bucket int32
	// reused records whether the resident line hit at least once since it
	// was filled; cleared on every fill (Table III's dead-line metric).
	reused bool
}

// lineTable is an open-addressed hash table keyed by cache-line ID. It
// serves two roles at once: line → arena-slot residency lookup (value ≥ 0)
// and the "ever seen" set used for compulsory-miss classification (value
// lineEvicted after eviction). Entries are never deleted — an evicted
// line's value flips to lineEvicted but its key stays — so linear probing
// needs no tombstones and lookups stay one contiguous scan.
type lineTable struct {
	keys []int64 // line IDs; lineEmpty marks a free bucket
	vals []int32 // arena slot index, or lineEvicted when not resident
	used int     // occupied buckets
	mask uint64  // len(keys)-1; len is always a power of two
}

const (
	lineEmpty   = int64(-1) // free bucket (line IDs are non-negative)
	lineEvicted = int32(-1) // key known but line not resident
)

// newLineTable sizes the table for about `hint` distinct lines (0 picks a
// small default); capacity is the next power of two that keeps the load
// factor under 3/4. Hints are clamped so a wild estimate cannot demand an
// absurd up-front allocation — growth covers the remainder.
func newLineTable(hint int64) lineTable {
	const maxHint = 1 << 26 // 64M distinct lines ≈ 768 MB of buckets
	if hint > maxHint {
		hint = maxHint
	}
	size := 1024
	for int64(size)*3 < hint*4 {
		size <<= 1
	}
	t := lineTable{
		keys: make([]int64, size),
		vals: make([]int32, size),
		mask: uint64(size - 1),
	}
	for i := range t.keys {
		t.keys[i] = lineEmpty
	}
	return t
}

// hash spreads the line ID with a Fibonacci multiply; line IDs are dense
// and sequential per operand array, which this mixes well.
func (t *lineTable) hash(line int64) uint64 {
	return (uint64(line) * 0x9e3779b97f4a7c15) >> 32 & t.mask
}

// find probes for line and returns the bucket index, its value, and
// whether the key was present. When absent, the returned bucket is the
// insertion point (valid until the next grow).
//
//repro:noalloc
func (t *lineTable) find(line int64) (bucket int, val int32, found bool) {
	i := t.hash(line)
	for {
		k := t.keys[i]
		if k == line {
			return int(i), t.vals[i], true
		}
		if k == lineEmpty {
			return int(i), 0, false
		}
		i = (i + 1) & t.mask
	}
}

// FastLRU is the arena-backed fast path of the LRU model: identical
// replacement semantics and Stats to LRU (cache.go), with O(1) hits and
// misses and no per-access allocation. It is the default implementation
// behind SimulateLRU; construct it directly (or via NewSimulator) to
// stream accesses by hand.
//
// Determinism: given the same Config and access sequence, every counter in
// the final Stats is identical run to run and identical to the reference
// implementation's — the differential suite (differential fuzz target and
// corpus test) enforces this.
type FastLRU struct {
	cfg   Config
	sets  int64
	mask  int64 // sets-1 when the set count is a power of two, else -1
	ways  int32
	slots []slot
	head  []int32 // per-set MRU slot index, -1 while the set is empty
	tail  []int32 // per-set LRU slot index
	fill  []int32 // per-set count of valid ways (fills go to slot base+fill)
	tab   lineTable
	stats Stats
}

var _ Simulator = (*FastLRU)(nil)

// NewFastLRU builds an empty fast-path cache. sizeHint is the expected
// number of distinct lines the trace touches (0 is always safe — the
// line table grows as needed); passing the real footprint makes Access
// allocation-free from the first touch. Panics on an invalid geometry,
// which is always a programming error in this repository.
func NewFastLRU(cfg Config, sizeHint int64) *FastLRU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	total := sets * int64(cfg.Ways)
	c := &FastLRU{
		cfg:   cfg,
		sets:  sets,
		mask:  -1,
		ways:  cfg.Ways,
		slots: make([]slot, total),
		head:  make([]int32, sets),
		tail:  make([]int32, sets),
		fill:  make([]int32, sets),
		tab:   newLineTable(sizeHint),
	}
	if sets&(sets-1) == 0 {
		c.mask = sets - 1
	}
	for i := range c.slots {
		c.slots[i].line = -1
		c.slots[i].set = int32(int64(i) / int64(cfg.Ways))
	}
	for s := range c.head {
		c.head[s] = -1
		c.tail[s] = -1
	}
	c.stats.LineBytes = cfg.LineBytes
	return c
}

// setOf maps a line ID to its set: a mask for power-of-two set counts, a
// modulo otherwise (the A6000 L2 has 3072 sets).
//
//repro:noalloc
func (c *FastLRU) setOf(line int64) int64 {
	if c.mask >= 0 {
		return line & c.mask
	}
	return line % c.sets
}

// moveToFront splices an already-linked slot to the MRU end of its set.
//
//repro:noalloc
func (c *FastLRU) moveToFront(set int64, si int32) {
	if c.head[set] == si {
		return
	}
	s := &c.slots[si]
	// Unlink. s has a prev because it is not the head.
	c.slots[s.prev].next = s.next
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail[set] = s.prev
	}
	// Relink at the head.
	s.prev = -1
	s.next = c.head[set]
	c.slots[c.head[set]].prev = si
	c.head[set] = si
}

// insertLine adds a new key at the bucket returned by find, growing (and
// re-probing) first if the insert would push the load factor over 3/4,
// and returns the final bucket for the slot's memo. growTable caps the
// table below 2^31 buckets, so the int32 conversion cannot wrap.
func (c *FastLRU) insertLine(bucket int, line int64, val int32) int32 {
	t := &c.tab
	if (t.used+1)*4 > len(t.keys)*3 {
		c.growTable()
		bucket, _, _ = t.find(line)
	}
	t.keys[bucket] = line
	t.vals[bucket] = val
	t.used++
	return int32(bucket)
}

// growTable doubles the line table and rewrites the bucket memo of every
// resident slot whose entry moved. Growth stops at 2^30 buckets (a 12 GiB
// table tracking ≈800M distinct lines — far beyond any trace in this
// repository) so bucket indices always fit the slots' int32 memo field.
func (c *FastLRU) growTable() {
	t := &c.tab
	old := *t
	size := len(old.keys) * 2
	if size > 1<<30 {
		panic("cachesim: line table exceeds 2^30 buckets")
	}
	t.keys = make([]int64, size)
	t.vals = make([]int32, size)
	t.mask = uint64(size - 1)
	for i := range t.keys {
		t.keys[i] = lineEmpty
	}
	for i, k := range old.keys {
		if k == lineEmpty {
			continue
		}
		j := t.hash(k)
		for t.keys[j] != lineEmpty {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = old.vals[i]
		if old.vals[i] >= 0 {
			c.slots[old.vals[i]].bucket = int32(j)
		}
	}
}

// pushFront links a fresh (previously unlinked) slot at the MRU end.
//
//repro:noalloc
func (c *FastLRU) pushFront(set int64, si int32) {
	s := &c.slots[si]
	s.prev = -1
	s.next = c.head[set]
	if c.head[set] >= 0 {
		c.slots[c.head[set]].prev = si
	} else {
		c.tail[set] = si
	}
	c.head[set] = si
}

// Access touches one cache line (by line ID, i.e. address / LineBytes) and
// reports whether it hit. Line IDs must be non-negative; traces derived
// from trace.Layout always are, so a violation is a programming error.
// The fast path performs no heap allocation (the line table grows
// amortized only while new distinct lines keep appearing beyond the
// construction hint).
//
//repro:noalloc
func (c *FastLRU) Access(line int64) bool {
	if line < 0 {
		panic("cachesim: negative line ID")
	}
	c.stats.Accesses++
	bucket, si, known := c.tab.find(line)
	if known && si >= 0 {
		c.stats.Hits++
		s := &c.slots[si]
		s.reused = true
		c.moveToFront(int64(s.set), si)
		return true
	}
	c.stats.Misses++
	if !known {
		c.stats.Compulsory++
	}
	set := c.setOf(line)
	var dst int32
	if c.fill[set] < c.ways {
		// Fill an invalid way. The reference implementation fills ways in
		// ascending index order; mirroring it keeps the arenas comparable
		// in tests, though no Stats field can observe the choice.
		dst = int32(set*int64(c.ways)) + c.fill[set]
		c.fill[set]++
		c.pushFront(set, dst)
	} else {
		// Evict the set's LRU slot; its bucket memo invalidates the table
		// entry without a second probe.
		dst = c.tail[set]
		v := &c.slots[dst]
		c.stats.Evictions++
		if !v.reused {
			c.stats.DeadFills++
		}
		c.tab.vals[v.bucket] = lineEvicted
		c.moveToFront(set, dst)
	}
	s := &c.slots[dst]
	s.line = line
	s.reused = false
	if known {
		c.tab.vals[bucket] = dst
		s.bucket = int32(bucket)
	} else {
		s.bucket = c.insertLine(bucket, line, dst)
	}
	return false
}

// Finalize folds still-resident never-reused lines into DeadFills and
// returns the final statistics. The receiver can keep streaming accesses
// afterwards; Finalize is a pure read.
//
//repro:noalloc
func (c *FastLRU) Finalize() Stats {
	s := c.stats
	for i := range c.slots {
		if c.slots[i].line != -1 && !c.slots[i].reused {
			s.DeadFills++
		}
	}
	assertCoherent(s)
	return s
}
