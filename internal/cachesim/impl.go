package cachesim

import "fmt"

// Simulator is the streaming interface every replacement-policy simulator
// in this package satisfies: feed line-granular accesses in program order,
// then read the aggregate Stats. Implementations are deterministic — the
// same Config and access sequence always produce the same Stats.
type Simulator interface {
	// Access touches one cache line (line ID = byte address / LineBytes,
	// non-negative) and reports whether it hit.
	Access(line int64) bool
	// Finalize folds end-of-trace accounting (still-resident dead lines)
	// into the Stats and returns them.
	Finalize() Stats
}

var (
	_ Simulator = (*LRU)(nil)
	_ Simulator = (*Cache)(nil)
)

// Impl selects between the two LRU/Belady implementations: the fast path
// (arena LRU, streaming Belady — the default everywhere) and the seed
// reference implementation kept as the differential-testing oracle. The
// two produce bit-identical Stats on every trace.
type Impl int

const (
	// ImplFast is the arena/streaming fast path (fast.go, beladyfast.go).
	ImplFast Impl = iota
	// ImplReference is the seed implementation (cache.go, belady.go):
	// map-per-access LRU and materialized-trace Belady. Slower, simpler,
	// and the oracle the fast path is differentially tested against.
	ImplReference
)

// String names the implementation as accepted by ParseImpl.
func (i Impl) String() string {
	switch i {
	case ImplFast:
		return "fast"
	case ImplReference:
		return "reference"
	default:
		return fmt.Sprintf("Impl(%d)", int(i))
	}
}

// ParseImpl resolves the -impl flag values "fast" and "reference".
func ParseImpl(s string) (Impl, error) {
	switch s {
	case "fast":
		return ImplFast, nil
	case "reference":
		return ImplReference, nil
	default:
		return 0, fmt.Errorf("cachesim: unknown impl %q (want fast or reference)", s)
	}
}

// NewSimulator builds an empty LRU simulator of the chosen implementation.
// sizeHint is the expected number of distinct lines (used by the fast
// path's table pre-size; 0 is always safe).
func NewSimulator(cfg Config, impl Impl, sizeHint int64) Simulator {
	if impl == ImplReference {
		return NewLRU(cfg)
	}
	return NewFastLRU(cfg, sizeHint)
}

// SimulateLRU runs a complete trace through a fresh LRU cache on the fast
// path. The trace callback must invoke emit once per line-granular access,
// in program order. Stats are bit-identical to the reference
// implementation's (SimulateLRUWith with ImplReference).
func SimulateLRU(cfg Config, trace func(emit func(line int64))) Stats {
	return SimulateLRUWith(cfg, ImplFast, trace)
}

// SimulateLRUWith is SimulateLRU with an explicit implementation choice;
// the experiment drivers expose it as -impl for differential runs.
func SimulateLRUWith(cfg Config, impl Impl, trace func(emit func(line int64))) Stats {
	c := NewSimulator(cfg, impl, 0)
	trace(func(line int64) { c.Access(line) })
	return c.Finalize()
}

// SimulateBeladyFunc records the trace callback and simulates it under
// Belady-optimal replacement with the chosen implementation. sizeHint is
// the expected access count (see RecordTraceSized; 0 when unknown). The
// fast path records into fixed-size chunks and streams next-use distances
// (SimulateBeladyTrace); the reference path materializes a flat []int64
// and runs the seed oracle. Both return bit-identical Stats.
func SimulateBeladyFunc(cfg Config, impl Impl, trace func(emit func(line int64)), sizeHint int64) Stats {
	if impl == ImplReference {
		return SimulateBelady(cfg, RecordTraceSized(trace, sizeHint))
	}
	return SimulateBeladyTrace(cfg, RecordTraceChunked(trace, sizeHint))
}
