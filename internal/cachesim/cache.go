// Package cachesim models a set-associative last-level cache with LRU and
// Belady-optimal replacement. The paper builds exactly this tool
// (Section VI-B) to explain RABBIT++'s locality: a model of the A6000's
// 6 MB L2 validated to within 4% of hardware counters, plus an idealized
// Belady cache to bound the remaining headroom (Figure 8). It also tracks
// "dead lines" — lines filled but never reused (Table III).
//
//repro:deterministic
package cachesim

import (
	"fmt"

	"repro/internal/check"
)

// assertCoherent verifies the accounting identities every simulation must
// satisfy (active only under the check build tag).
func assertCoherent(s Stats) {
	check.Assert(s.Hits+s.Misses == s.Accesses,
		"cachesim: hits %d + misses %d != accesses %d", s.Hits, s.Misses, s.Accesses)
	check.Assert(s.Compulsory <= s.Misses,
		"cachesim: compulsory %d exceeds misses %d", s.Compulsory, s.Misses)
	check.Assert(s.Evictions <= s.Misses,
		"cachesim: evictions %d exceed misses %d", s.Evictions, s.Misses)
	check.Assert(s.DeadFills <= s.Misses,
		"cachesim: dead fills %d exceed misses %d", s.DeadFills, s.Misses)
}

// Config describes a cache geometry. CapacityBytes must be a multiple of
// LineBytes*Ways so the set count is integral; any positive set count is
// supported (the A6000 L2 has 3072 sets).
type Config struct {
	// CapacityBytes is the total cache capacity in bytes.
	CapacityBytes int64
	// LineBytes is the cache-line size in bytes; line IDs are
	// address/LineBytes.
	LineBytes int64
	// Ways is the associativity (lines per set).
	Ways int32
}

// Sets returns the number of sets.
func (c Config) Sets() int64 {
	return c.CapacityBytes / (c.LineBytes * int64(c.Ways))
}

// Split returns the private-cache geometry of one of k equal tiles of
// this cache: the capacity divided by k and rounded down to the nearest
// multiple of LineBytes*Ways so the set count stays integral, with a
// floor of one set. Split(1) returns the receiver unchanged, which is
// what makes the K=1 multi-device simulation bit-identical to the flat
// path. k must be positive.
func (c Config) Split(k int) Config {
	if k <= 0 {
		panic(fmt.Sprintf("cachesim: Config.Split(%d)", k))
	}
	if k == 1 {
		return c
	}
	setBytes := c.LineBytes * int64(c.Ways)
	capacity := c.CapacityBytes / int64(k) / setBytes * setBytes
	if capacity < setBytes {
		capacity = setBytes
	}
	out := c
	out.CapacityBytes = capacity
	return out
}

// Validate returns an error for inexpressible geometries.
func (c Config) Validate() error {
	if c.CapacityBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cachesim: non-positive geometry %+v", c)
	}
	if c.CapacityBytes%(c.LineBytes*int64(c.Ways)) != 0 {
		return fmt.Errorf("cachesim: capacity %d not divisible by line*ways = %d",
			c.CapacityBytes, c.LineBytes*int64(c.Ways))
	}
	return nil
}

// setIndexer returns a function mapping a line ID to a set index, using a
// mask when the set count is a power of two and modulo otherwise (the real
// A6000 L2 has 3072 sets).
func (c Config) setIndexer() func(int64) int64 {
	sets := c.Sets()
	if sets&(sets-1) == 0 {
		mask := sets - 1
		return func(line int64) int64 { return line & mask }
	}
	return func(line int64) int64 { return line % sets }
}

// Stats accumulates the outcome of a simulation.
type Stats struct {
	// Accesses counts line-granular cache lookups.
	Accesses int64
	// Hits counts accesses that found their line resident.
	Hits int64
	// Misses counts accesses that did not (Accesses = Hits + Misses).
	Misses int64
	// Compulsory counts first-touch misses: lines never seen before.
	Compulsory int64
	// Evictions counts resident lines displaced to make room for a fill.
	Evictions int64
	// DeadFills counts fills that were evicted (or still resident at
	// Finalize) without a single hit — wasted cache capacity.
	DeadFills int64
	// LineBytes echoes the geometry so traffic can be derived.
	LineBytes int64
}

// TrafficBytes returns the DRAM read traffic implied by the misses.
func (s Stats) TrafficBytes() int64 { return s.Misses * s.LineBytes }

// HitRate returns hits/accesses, or 0 for an empty run.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// DeadLineFraction returns the fraction of fills that were never reused
// (Table III's metric).
func (s Stats) DeadLineFraction() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.DeadFills) / float64(s.Misses)
}

// LRU is the reference implementation of the set-associative
// least-recently-used cache modeling the A6000's L2: a timestamp scan per
// access plus a Go map for compulsory classification. The hot paths use
// FastLRU instead (bit-identical Stats, no per-access allocation); LRU
// stays as the differential-testing oracle behind ImplReference. Access it
// line by line via Access and read the Stats after Finalize.
type LRU struct {
	cfg   Config
	setOf func(int64) int64
	ways  int32
	// Per-way state, set-major layout: index = set*ways + way.
	tags    []int64 // line ID, -1 when invalid
	lastUse []uint64
	reused  []bool
	seen    map[int64]struct{} // for compulsory classification
	clock   uint64
	stats   Stats
}

// NewLRU builds an empty cache; it panics on an invalid geometry, which is
// always a programming error in this repository (geometries are static).
func NewLRU(cfg Config) *LRU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	total := sets * int64(cfg.Ways)
	c := &LRU{
		cfg:     cfg,
		setOf:   cfg.setIndexer(),
		ways:    cfg.Ways,
		tags:    make([]int64, total),
		lastUse: make([]uint64, total),
		reused:  make([]bool, total),
		seen:    make(map[int64]struct{}, 1<<16),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	c.stats.LineBytes = cfg.LineBytes
	return c
}

// Access touches one cache line (by line ID, i.e. address / LineBytes) and
// reports whether it hit. Line IDs must be non-negative; traces derived
// from trace.Layout always are, so a violation is a programming error.
func (c *LRU) Access(line int64) bool {
	if line < 0 {
		panic("cachesim: negative line ID")
	}
	c.clock++
	c.stats.Accesses++
	set := c.setOf(line)
	base := set * int64(c.ways)
	var victim int64 = base
	var victimAge uint64 = ^uint64(0)
	for w := int64(0); w < int64(c.ways); w++ {
		i := base + w
		if c.tags[i] == line {
			c.stats.Hits++
			c.lastUse[i] = c.clock
			c.reused[i] = true
			return true
		}
		if c.lastUse[i] < victimAge {
			victimAge = c.lastUse[i]
			victim = i
		}
	}
	// Miss: classify, evict the LRU way, fill.
	c.stats.Misses++
	if _, ok := c.seen[line]; !ok {
		c.seen[line] = struct{}{}
		c.stats.Compulsory++
	}
	if c.tags[victim] != -1 {
		c.stats.Evictions++
		if !c.reused[victim] {
			c.stats.DeadFills++
		}
	}
	c.tags[victim] = line
	c.lastUse[victim] = c.clock
	c.reused[victim] = false
	return false
}

// Finalize folds still-resident never-reused lines into DeadFills and
// returns the final statistics.
func (c *LRU) Finalize() Stats {
	s := c.stats
	for i, tag := range c.tags {
		if tag != -1 && !c.reused[i] {
			s.DeadFills++
		}
	}
	assertCoherent(s)
	return s
}
