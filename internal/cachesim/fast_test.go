package cachesim

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

// diffCfgs are the geometries the differential tests sweep: power-of-two
// and non-power-of-two set counts, direct-mapped-ish through highly
// associative.
var diffCfgs = []Config{
	{CapacityBytes: 1024, LineBytes: 64, Ways: 2},         // 8 sets
	{CapacityBytes: 64 * 2 * 3, LineBytes: 64, Ways: 2},   // 3 sets (non-pow2)
	{CapacityBytes: 4096, LineBytes: 64, Ways: 4},         // 16 sets
	{CapacityBytes: 64 * 16 * 3, LineBytes: 64, Ways: 16}, // 3 sets, 16 ways
	{CapacityBytes: 128 * 1, LineBytes: 64, Ways: 2},      // 1 set
}

func replay(trace []int64) func(emit func(int64)) {
	return func(emit func(int64)) {
		for _, l := range trace {
			emit(l)
		}
	}
}

func TestFastLRUMatchesReferenceRandom(t *testing.T) {
	f := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		trace := make([]int64, 5000)
		for i := range trace {
			if r.Intn(2) == 0 {
				trace[i] = int64(r.Intn(64)) // hot working set
			} else {
				trace[i] = int64(r.Intn(4000))
			}
		}
		for _, cfg := range diffCfgs {
			ref := SimulateLRUWith(cfg, ImplReference, replay(trace))
			fast := SimulateLRUWith(cfg, ImplFast, replay(trace))
			if ref != fast {
				t.Logf("cfg %+v: reference %+v != fast %+v", cfg, ref, fast)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFastBeladyMatchesReferenceRandom(t *testing.T) {
	f := func(seed uint64) bool {
		r := gen.NewRNG(seed)
		trace := make([]int64, 5000)
		for i := range trace {
			trace[i] = int64(r.Zipf(1000, 0.7))
		}
		for _, cfg := range diffCfgs {
			ref := SimulateBelady(cfg, trace)
			fast := SimulateBeladyTrace(cfg, RecordTraceChunked(replay(trace), int64(len(trace))))
			if ref != fast {
				t.Logf("cfg %+v: reference %+v != fast %+v", cfg, ref, fast)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFastLRUZeroHintGrows(t *testing.T) {
	// Force several line-table growths past the initial capacity.
	c := NewFastLRU(Config{CapacityBytes: 64 * 16 * 64, LineBytes: 64, Ways: 16}, 0)
	ref := NewLRU(Config{CapacityBytes: 64 * 16 * 64, LineBytes: 64, Ways: 16})
	for l := int64(0); l < 20000; l++ {
		line := (l * 7) % 5000
		if c.Access(line) != ref.Access(line) {
			t.Fatalf("hit/miss diverged at access %d", l)
		}
	}
	if got, want := c.Finalize(), ref.Finalize(); got != want {
		t.Fatalf("stats diverged after growth: fast %+v reference %+v", got, want)
	}
}

func TestTraceChunkingBoundaries(t *testing.T) {
	// Exercise Len/At across a chunk boundary and exact-multiple lengths.
	for _, n := range []int64{0, 1, traceChunk - 1, traceChunk, traceChunk + 1, 2*traceChunk + 7} {
		tr := NewTrace(n)
		for i := int64(0); i < n; i++ {
			tr.Emit(i * 3)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for _, i := range []int64{0, n / 2, n - 1} {
			if n == 0 {
				break
			}
			if tr.At(i) != i*3 {
				t.Fatalf("At(%d) = %d, want %d", i, tr.At(i), i*3)
			}
		}
	}
}

func TestBeladyTraceChunkBoundaryDifferential(t *testing.T) {
	// A trace that straddles a chunk boundary with reuse across it: the
	// next-use distance of the final pre-boundary accesses points into the
	// next chunk, the cross-chunk bookkeeping most likely to break.
	r := gen.NewRNG(11)
	n := int64(traceChunk + traceChunk/2)
	flat := make([]int64, n)
	for i := range flat {
		flat[i] = int64(r.Intn(3000))
	}
	cfg := Config{CapacityBytes: 8192, LineBytes: 64, Ways: 4}
	ref := SimulateBelady(cfg, flat)
	fast := SimulateBeladyTrace(cfg, RecordTraceChunked(replay(flat), n))
	if ref != fast {
		t.Fatalf("cross-chunk stats diverged: reference %+v fast %+v", ref, fast)
	}
}

func TestSimulateBeladyFuncImpls(t *testing.T) {
	trace := replay([]int64{0, 1, 0, 2, 0, 1, 5, 9, 5, 0})
	cfg := Config{CapacityBytes: 128, LineBytes: 64, Ways: 2}
	ref := SimulateBeladyFunc(cfg, ImplReference, trace, 10)
	fast := SimulateBeladyFunc(cfg, ImplFast, trace, 10)
	if ref != fast {
		t.Fatalf("SimulateBeladyFunc impls diverged: %+v vs %+v", ref, fast)
	}
}

func TestParseImpl(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Impl
	}{{"fast", ImplFast}, {"reference", ImplReference}} {
		got, err := ParseImpl(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseImpl(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("Impl.String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseImpl("plru"); err == nil {
		t.Fatal("ParseImpl accepted an unknown impl")
	}
}

func TestRecordTraceSizedClamp(t *testing.T) {
	// Negative and absurd hints must not panic or over-allocate; the
	// recording itself must be unaffected.
	for _, hint := range []int64{-5, 0, 3, 1 << 40} {
		got := RecordTraceSized(replay([]int64{4, 2, 4}), hint)
		if len(got) != 3 || got[0] != 4 || got[1] != 2 || got[2] != 4 {
			t.Fatalf("hint %d: recording = %v", hint, got)
		}
	}
}

// FuzzLRUFastVsReference drives random geometry + random traces through
// both LRU implementations and the two Belady paths, asserting bit-equal
// Stats. The trace bytes decode two line-ID width classes so both dense
// hot sets and sparse scatter are explored.
func FuzzLRUFastVsReference(f *testing.F) {
	f.Add(uint8(2), uint8(3), []byte{0, 1, 2, 0, 1, 2, 9, 9})
	f.Add(uint8(4), uint8(16), []byte{7, 255, 1, 0, 44, 7, 7, 3, 250, 250})
	f.Add(uint8(1), uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, waysRaw, setsRaw uint8, data []byte) {
		ways := int32(waysRaw%8) + 1
		sets := int64(setsRaw%31) + 1 // non-power-of-two set counts included
		cfg := Config{CapacityBytes: 64 * int64(ways) * sets, LineBytes: 64, Ways: ways}
		if len(data) > 4096 {
			data = data[:4096]
		}
		trace := make([]int64, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			// Alternate a narrow and a wide universe to mix conflict and
			// compulsory behaviour.
			if data[i]&1 == 0 {
				trace = append(trace, int64(data[i+1]))
			} else {
				trace = append(trace, int64(data[i])<<8|int64(data[i+1]))
			}
		}
		ref := SimulateLRUWith(cfg, ImplReference, replay(trace))
		fast := SimulateLRUWith(cfg, ImplFast, replay(trace))
		if ref != fast {
			t.Fatalf("LRU stats diverged on cfg %+v:\nreference %+v\nfast      %+v", cfg, ref, fast)
		}
		bref := SimulateBelady(cfg, trace)
		bfast := SimulateBeladyTrace(cfg, RecordTraceChunked(replay(trace), int64(len(trace))))
		if bref != bfast {
			t.Fatalf("Belady stats diverged on cfg %+v:\nreference %+v\nfast      %+v", cfg, bref, bfast)
		}
	})
}
