package cachesim_test

import (
	"fmt"

	"repro/internal/cachesim"
)

// ExampleSimulateLRU walks a tiny trace through a 2-line direct-mapped-ish
// cache and reads the statistics the experiments are built on.
func ExampleSimulateLRU() {
	cfg := cachesim.Config{CapacityBytes: 128, LineBytes: 64, Ways: 2} // one 2-way set
	stats := cachesim.SimulateLRU(cfg, func(emit func(int64)) {
		for _, line := range []int64{0, 1, 0, 2, 0, 1} {
			emit(line)
		}
	})
	fmt.Println("accesses:", stats.Accesses)
	fmt.Println("misses:", stats.Misses)
	fmt.Println("compulsory:", stats.Compulsory)
	fmt.Println("traffic bytes:", stats.TrafficBytes())
	// Output:
	// accesses: 6
	// misses: 4
	// compulsory: 3
	// traffic bytes: 256
}

// ExampleSimulateBelady shows the oracle bound on the same trace: Belady
// keeps line 0 resident and misses only where unavoidable.
func ExampleSimulateBelady() {
	cfg := cachesim.Config{CapacityBytes: 128, LineBytes: 64, Ways: 2}
	stats := cachesim.SimulateBelady(cfg, []int64{0, 1, 0, 2, 0, 1})
	fmt.Println("misses:", stats.Misses)
	// Output:
	// misses: 4
}
