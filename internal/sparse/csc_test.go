package sparse

import (
	"math/rand"
	"testing"
)

func TestCSRToCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		m := randomCSR(t, rng, 60+rng.Int31n(40), 1+rng.Intn(5))
		csc := CSRToCSC(m)
		if err := csc.Validate(); err != nil {
			t.Fatal(err)
		}
		if csc.NNZ() != m.NNZ() {
			t.Fatalf("CSC nnz %d != CSR nnz %d", csc.NNZ(), m.NNZ())
		}
		back := csc.ToCSR()
		if !m.Equal(back) {
			t.Fatal("CSR -> CSC -> CSR round trip changed the matrix")
		}
	}
}

func TestCSCColumnAccess(t *testing.T) {
	coo := NewCOO(3, 4, 4)
	coo.Add(0, 1, 5)
	coo.Add(2, 1, 7)
	coo.Add(1, 3, 2)
	coo.Add(0, 0, 1)
	csc := CSRToCSC(coo.ToCSR())
	rows, vals := csc.Col(1)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 || vals[0] != 5 || vals[1] != 7 {
		t.Fatalf("Col(1) = %v/%v", rows, vals)
	}
	if rows, _ := csc.Col(2); len(rows) != 0 {
		t.Fatalf("empty column returned %v", rows)
	}
}

func TestCSCValidateCatchesCorruption(t *testing.T) {
	csc := CSRToCSC(randomCSR(t, rand.New(rand.NewSource(5)), 20, 3))
	csc.RowIndices[0] = 99
	if csc.Validate() == nil {
		t.Fatal("row index out of range accepted")
	}
}
