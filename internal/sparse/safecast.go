package sparse

import (
	"fmt"
	"math"
)

// mustInt32 converts an int to int32, panicking instead of silently wrapping
// when the value does not fit. Offset and index construction on nnz-sized
// quantities must use this guard: matrices near 2³¹ nonzeros would otherwise
// produce negative offsets with no error. (internal/check.SafeInt32 is the
// same guard for packages above this one; sparse cannot import check without
// a cycle.)
func mustInt32(v int) int32 {
	if v > math.MaxInt32 || v < math.MinInt32 {
		panic(fmt.Sprintf("sparse: value %d overflows int32", v))
	}
	return int32(v)
}
