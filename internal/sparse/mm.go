package sparse

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MatrixMarket I/O for the coordinate format, the lingua franca of the
// SuiteSparse collection the paper draws its corpus from. Supported headers:
//
//	%%MatrixMarket matrix coordinate {real|integer|pattern} {general|symmetric}
//
// Pattern files read with value 1.0; symmetric files are expanded to general
// storage on read (mirroring off-diagonal entries), which matches how the
// kernels and reordering techniques consume matrices.

// ErrTooLarge is wrapped by ReadMatrixMarketLimited when the declared
// matrix dimensions or entry count exceed the caller's limits. Servers use
// errors.Is(err, ErrTooLarge) to map the condition to a 413 response.
var ErrTooLarge = errors.New("sparse: matrix exceeds size limits")

// MMLimits bounds what ReadMatrixMarketLimited will accept. Zero fields
// mean unlimited. The limits are enforced against the declared size line
// before any dimension-proportional allocation happens, so an absurd
// header cannot force gigabytes of row-offset storage on a trusted-input
// code path.
type MMLimits struct {
	MaxRows    int32 // maximum declared rows; 0 = unlimited
	MaxCols    int32 // maximum declared columns; 0 = unlimited
	MaxEntries int   // maximum declared entries (pre-expansion); 0 = unlimited
}

// check returns an ErrTooLarge-wrapping error when the declared sizes
// exceed the limits.
func (l MMLimits) check(rows, cols int32, nnz int) error {
	if l.MaxRows > 0 && rows > l.MaxRows {
		return fmt.Errorf("%w: %d rows exceed limit %d", ErrTooLarge, rows, l.MaxRows)
	}
	if l.MaxCols > 0 && cols > l.MaxCols {
		return fmt.Errorf("%w: %d columns exceed limit %d", ErrTooLarge, cols, l.MaxCols)
	}
	if l.MaxEntries > 0 && nnz > l.MaxEntries {
		return fmt.Errorf("%w: %d entries exceed limit %d", ErrTooLarge, nnz, l.MaxEntries)
	}
	return nil
}

// ReadMatrixMarket parses a MatrixMarket coordinate stream into a CSR matrix.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	return ReadMatrixMarketLimited(r, MMLimits{})
}

// ReadMatrixMarketLimited is ReadMatrixMarket with declared-size limits,
// the variant network-facing callers must use.
func ReadMatrixMarketLimited(r io.Reader, limits MMLimits) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
	}
	fields := strings.Fields(strings.ToLower(header))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
		return nil, fmt.Errorf("sparse: malformed MatrixMarket header %q", header)
	}
	if fields[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket format %q (only coordinate)", fields[2])
	}
	valueType := fields[3]
	switch valueType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket value type %q", valueType)
	}
	symmetry := fields[4]
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var sizeLine string
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("sparse: reading MatrixMarket size line: %w", err)
		}
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	var rows, cols int32
	var nnz int
	if _, err := fmt.Sscan(sizeLine, &rows, &cols, &nnz); err != nil {
		return nil, fmt.Errorf("sparse: malformed MatrixMarket size line %q: %w", sizeLine, err)
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative MatrixMarket sizes %d %d %d", rows, cols, nnz)
	}
	if err := limits.check(rows, cols, nnz); err != nil {
		return nil, err
	}
	// The declared nonzero count is untrusted input: use it only as a
	// bounded capacity hint so absurd headers cannot force allocation.
	hint := nnz
	if hint > 1<<24 {
		hint = 1 << 24
	}
	coo := NewCOO(rows, cols, hint)
	for k := 0; k < nnz; {
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("sparse: MatrixMarket entry %d of %d: %w", k+1, nnz, err)
		}
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if valueType == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("sparse: malformed MatrixMarket entry %q", line)
		}
		i, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %w", f[0], err)
		}
		j, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q: %w", f[1], err)
		}
		v := 1.0
		if valueType != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %w", f[2], err)
			}
		}
		// MatrixMarket is 1-indexed.
		ri, ci := int32(i-1), int32(j-1)
		if symmetry == "symmetric" {
			coo.AddSym(ri, ci, float32(v))
		} else {
			coo.Add(ri, ci, float32(v))
		}
		k++
	}
	if err := coo.Validate(); err != nil {
		return nil, err
	}
	return coo.ToCSR(), nil
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil && (err != io.EOF || line == "") {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate real
// general format.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.NumRows, m.NumCols, m.NNZ()); err != nil {
		return err
	}
	for r := int32(0); r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", r+1, c+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
