package sparse

import (
	"fmt"
	"sort"
)

// COO is a sparse matrix in coordinate (triplet) format. Entries may be in
// any order and may contain duplicates until Compact is called; ToCSR
// compacts implicitly.
type COO struct {
	NumRows int32     // row count
	NumCols int32     // column count
	RowIdx  []int32   // row index per entry
	ColIdx  []int32   // column index per entry, parallel to RowIdx
	Values  []float32 // value per entry; duplicates sum on Compact
}

// NewCOO returns an empty COO matrix of the given shape with capacity for
// nnzHint entries.
func NewCOO(rows, cols int32, nnzHint int) *COO {
	return &COO{
		NumRows: rows,
		NumCols: cols,
		RowIdx:  make([]int32, 0, nnzHint),
		ColIdx:  make([]int32, 0, nnzHint),
		Values:  make([]float32, 0, nnzHint),
	}
}

// NNZ returns the number of stored entries, including any duplicates.
func (c *COO) NNZ() int { return len(c.RowIdx) }

// Add appends entry (r, c) = v.
func (c *COO) Add(r, col int32, v float32) {
	c.RowIdx = append(c.RowIdx, r)
	c.ColIdx = append(c.ColIdx, col)
	c.Values = append(c.Values, v)
}

// AddSym appends both (r, c) = v and (c, r) = v. Diagonal entries are added
// once.
func (c *COO) AddSym(r, col int32, v float32) {
	c.Add(r, col, v)
	if r != col {
		c.Add(col, r, v)
	}
}

// Validate checks that every entry is within the matrix bounds.
func (c *COO) Validate() error {
	if len(c.ColIdx) != len(c.RowIdx) || len(c.Values) != len(c.RowIdx) {
		return fmt.Errorf("sparse: COO slice lengths disagree: %d/%d/%d", len(c.RowIdx), len(c.ColIdx), len(c.Values))
	}
	for k := range c.RowIdx {
		if c.RowIdx[k] < 0 || c.RowIdx[k] >= c.NumRows {
			return fmt.Errorf("sparse: COO row index %d out of range at entry %d", c.RowIdx[k], k)
		}
		if c.ColIdx[k] < 0 || c.ColIdx[k] >= c.NumCols {
			return fmt.Errorf("sparse: COO column index %d out of range at entry %d", c.ColIdx[k], k)
		}
	}
	return nil
}

// Sort orders the entries by (row, column). It does not remove duplicates.
func (c *COO) Sort() {
	idx := make([]int, len(c.RowIdx))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if c.RowIdx[ia] != c.RowIdx[ib] {
			return c.RowIdx[ia] < c.RowIdx[ib]
		}
		return c.ColIdx[ia] < c.ColIdx[ib]
	})
	applyPermutationInt32(c.RowIdx, idx)
	applyPermutationInt32(c.ColIdx, idx)
	applyPermutationFloat32(c.Values, idx)
}

func applyPermutationInt32(s []int32, idx []int) {
	out := make([]int32, len(s))
	for i, j := range idx {
		out[i] = s[j]
	}
	copy(s, out)
}

func applyPermutationFloat32(s []float32, idx []int) {
	out := make([]float32, len(s))
	for i, j := range idx {
		out[i] = s[j]
	}
	copy(s, out)
}

// ToCSR converts the COO matrix to CSR. Duplicate entries are merged by
// summation, as is conventional for triplet assembly. The input is not
// modified.
func (c *COO) ToCSR() *CSR {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	n := int(c.NumRows)
	counts := make([]int32, n+1)
	for _, r := range c.RowIdx {
		counts[r+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	// Bucket entries by row, then sort and merge within each row.
	cursor := make([]int32, n)
	colBuf := make([]int32, len(c.ColIdx))
	valBuf := make([]float32, len(c.Values))
	for k, r := range c.RowIdx {
		dst := counts[r] + cursor[r]
		cursor[r]++
		colBuf[dst] = c.ColIdx[k]
		valBuf[dst] = c.Values[k]
	}
	out := &CSR{
		NumRows:    c.NumRows,
		NumCols:    c.NumCols,
		RowOffsets: make([]int32, n+1),
		ColIndices: make([]int32, 0, len(colBuf)),
		Values:     make([]float32, 0, len(valBuf)),
	}
	type colVal struct {
		c int32
		v float32
	}
	var scratch []colVal
	for r := 0; r < n; r++ {
		lo, hi := counts[r], counts[r+1]
		scratch = scratch[:0]
		for k := lo; k < hi; k++ {
			scratch = append(scratch, colVal{colBuf[k], valBuf[k]})
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].c < scratch[b].c })
		for i := 0; i < len(scratch); i++ {
			if n := len(out.ColIndices); n > int(out.RowOffsets[r]) && out.ColIndices[n-1] == scratch[i].c {
				out.Values[n-1] += scratch[i].v // merge duplicate
				continue
			}
			out.ColIndices = append(out.ColIndices, scratch[i].c)
			out.Values = append(out.Values, scratch[i].v)
		}
		out.RowOffsets[r+1] = mustInt32(len(out.ColIndices))
	}
	return out
}

// CSRToCOO converts a CSR matrix to coordinate format with entries in
// row-major order.
func CSRToCOO(m *CSR) *COO {
	out := NewCOO(m.NumRows, m.NumCols, m.NNZ())
	for r := int32(0); r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for k, c := range cols {
			out.Add(r, c, vals[k])
		}
	}
	return out
}
