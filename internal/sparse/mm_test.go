package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomCSR(t, rng, 60, 4)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.EqualPattern(back) {
		t.Fatal("MatrixMarket round trip changed the pattern")
	}
	for i := range m.Values {
		diff := m.Values[i] - back.Values[i]
		if diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("value %d drifted: %v -> %v", i, m.Values[i], back.Values[i])
		}
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 3 2
1 2
3 1
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", m.NNZ())
	}
	cols, vals := m.Row(0)
	if len(cols) != 1 || cols[0] != 1 || vals[0] != 1 {
		t.Fatalf("row 0 = %v/%v, want pattern entry (0,1)=1", cols, vals)
	}
}

func TestMatrixMarketSymmetricExpansion(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5.0
3 3 7.0
`
	m, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// (1,0) mirrors to (0,1); (2,2) is diagonal and stays single.
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3 after symmetric expansion", m.NNZ())
	}
	if !m.IsSymmetric() {
		t.Fatal("expanded symmetric matrix is not symmetric")
	}
}

func TestMatrixMarketRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"bad header":     "%%NotMatrixMarket\n1 1 0\n",
		"bad format":     "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"bad value type": "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"short entry":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"truncated":      "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n",
		"out of range":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
				t.Fatal("malformed input accepted")
			}
		})
	}
}
