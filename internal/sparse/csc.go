package sparse

// CSC is a sparse matrix in Compressed Sparse Column format: the exact
// transpose layout of CSR. Pull-style kernels (accumulating each output
// element from a column sweep) and column-slicing operations use it.
type CSC struct {
	NumRows    int32     // row count; every RowIndices entry is < NumRows
	NumCols    int32     // column count; ColOffsets has NumCols+1 entries
	ColOffsets []int32   // column c's entries span [ColOffsets[c], ColOffsets[c+1])
	RowIndices []int32   // row index per nonzero, sorted and unique within a column
	Values     []float32 // value per nonzero, parallel to RowIndices
}

// NNZ returns the number of stored nonzeros.
func (m *CSC) NNZ() int { return len(m.RowIndices) }

// Col returns the row indices and values of column c as storage
// sub-slices; the caller must not modify them.
func (m *CSC) Col(c int32) ([]int32, []float32) {
	lo, hi := m.ColOffsets[c], m.ColOffsets[c+1]
	return m.RowIndices[lo:hi], m.Values[lo:hi]
}

// CSRToCSC converts a CSR matrix to CSC. Row indices within each column
// come out sorted.
func CSRToCSC(m *CSR) *CSC {
	t := m.Transpose()
	return &CSC{
		NumRows:    m.NumRows,
		NumCols:    m.NumCols,
		ColOffsets: t.RowOffsets,
		RowIndices: t.ColIndices,
		Values:     t.Values,
	}
}

// ToCSR converts back to CSR.
func (m *CSC) ToCSR() *CSR {
	asCSR := &CSR{
		NumRows:    m.NumCols,
		NumCols:    m.NumRows,
		RowOffsets: m.ColOffsets,
		ColIndices: m.RowIndices,
		Values:     m.Values,
	}
	return asCSR.Transpose()
}

// Validate checks the structural invariants of the CSC format.
func (m *CSC) Validate() error {
	asCSR := &CSR{
		NumRows:    m.NumCols,
		NumCols:    m.NumRows,
		RowOffsets: m.ColOffsets,
		ColIndices: m.RowIndices,
		Values:     m.Values,
	}
	return asCSR.Validate()
}
