package sparse

// Degrees returns the out-degree (row length) of every row.
func (m *CSR) Degrees() []int32 {
	d := make([]int32, m.NumRows)
	for r := int32(0); r < m.NumRows; r++ {
		d[r] = m.RowLen(r)
	}
	return d
}

// InDegrees returns the in-degree (column count) of every column.
func (m *CSR) InDegrees() []int32 {
	d := make([]int32, m.NumCols)
	for _, c := range m.ColIndices {
		d[c]++
	}
	return d
}

// AverageDegree returns nnz / rows, the mean row length. It returns 0 for an
// empty matrix.
func (m *CSR) AverageDegree() float64 {
	if m.NumRows == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(m.NumRows)
}

// EmptyRows returns the number of rows with no nonzeros. The paper notes
// (footnote 2) that matrices like wiki-Talk with many empty rows cause the
// analytic compulsory-traffic formula to overestimate ideal traffic.
func (m *CSR) EmptyRows() int32 {
	var n int32
	for r := int32(0); r < m.NumRows; r++ {
		if m.RowLen(r) == 0 {
			n++
		}
	}
	return n
}

// Bandwidth returns the matrix bandwidth: the maximum |i-j| over stored
// entries. Bandwidth-reducing orderings such as RCM minimize this quantity.
func (m *CSR) Bandwidth() int32 {
	var bw int32
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		for _, c := range cols {
			d := c - r
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// DegreeSkew moved to internal/quality (quality.DegreeSkew /
// quality.TopFracMass): the top-10% skew statistic is an ordering-quality
// concern shared by the community-stats analysis and the advisor's feature
// extractor, and keeping one implementation there removes the duplicate
// this package used to carry.

// DegreeDistribution returns a histogram of row lengths: result[d] is the
// number of rows with exactly d nonzeros, up to the maximum degree.
func (m *CSR) DegreeDistribution() []int64 {
	var maxd int32
	for r := int32(0); r < m.NumRows; r++ {
		if l := m.RowLen(r); l > maxd {
			maxd = l
		}
	}
	h := make([]int64, maxd+1)
	for r := int32(0); r < m.NumRows; r++ {
		h[m.RowLen(r)]++
	}
	return h
}

// MaskRowsCols returns a copy of the matrix keeping only the nonzeros
// (i, j) for which keep(i) || keep(j) holds; every other entry is dropped.
// The matrix shape is unchanged. The paper uses this to evaluate the
// "insular sub-matrix" (Figure 6): all nonzeros that do not connect to
// insular nodes are masked out.
func (m *CSR) MaskRowsCols(keep []bool) *CSR {
	if len(keep) != int(m.NumRows) || !m.IsSquare() {
		panic("sparse: MaskRowsCols requires a square matrix and one flag per row")
	}
	out := &CSR{
		NumRows:    m.NumRows,
		NumCols:    m.NumCols,
		RowOffsets: make([]int32, int(m.NumRows)+1),
	}
	for r := int32(0); r < m.NumRows; r++ {
		cols, vals := m.Row(r)
		for k, c := range cols {
			if keep[r] || keep[c] {
				out.ColIndices = append(out.ColIndices, c)
				out.Values = append(out.Values, vals[k])
			}
		}
		out.RowOffsets[r+1] = mustInt32(len(out.ColIndices))
	}
	return out
}

// CompactEmpty returns a copy of the matrix with empty rows and the
// corresponding columns removed, along with the mapping from old to new IDs
// (-1 for removed IDs). Only rows that are empty in both the matrix and its
// transpose (no in- or out-edges) are removed, so square structure is
// preserved.
func (m *CSR) CompactEmpty() (*CSR, []int32) {
	if !m.IsSquare() {
		panic("sparse: CompactEmpty requires a square matrix")
	}
	in := m.InDegrees()
	remap := make([]int32, m.NumRows)
	var next int32
	for r := int32(0); r < m.NumRows; r++ {
		if m.RowLen(r) == 0 && in[r] == 0 {
			remap[r] = -1
			continue
		}
		remap[r] = next
		next++
	}
	out := &CSR{
		NumRows:    next,
		NumCols:    next,
		RowOffsets: make([]int32, int(next)+1),
		ColIndices: make([]int32, 0, m.NNZ()),
		Values:     make([]float32, 0, m.NNZ()),
	}
	var nr int32
	for r := int32(0); r < m.NumRows; r++ {
		if remap[r] < 0 {
			continue
		}
		cols, vals := m.Row(r)
		for k, c := range cols {
			out.ColIndices = append(out.ColIndices, remap[c])
			out.Values = append(out.Values, vals[k])
		}
		nr++
		out.RowOffsets[nr] = mustInt32(len(out.ColIndices))
	}
	return out, remap
}
