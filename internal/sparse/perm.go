package sparse

import "fmt"

// Permutation maps old vertex/row IDs to new IDs: p[old] = new. A valid
// permutation of size n is a bijection on [0, n).
type Permutation []int32

// Identity returns the identity permutation of size n.
func Identity(n int32) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = int32(i)
	}
	return p
}

// Validate returns an error unless p is a bijection on [0, len(p)).
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for i, v := range p {
		if v < 0 || int(v) >= len(p) {
			return fmt.Errorf("sparse: permutation entry %d = %d out of range [0,%d)", i, v, len(p))
		}
		if seen[v] {
			return fmt.Errorf("sparse: permutation value %d appears more than once", v)
		}
		seen[v] = true
	}
	return nil
}

// IsValid reports whether p is a bijection on [0, len(p)).
func (p Permutation) IsValid() bool { return p.Validate() == nil }

// Inverse returns the inverse permutation q with q[p[i]] = i.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for i, v := range p {
		q[v] = int32(i)
	}
	return q
}

// Compose returns the permutation that applies p first and then q:
// result[i] = q[p[i]].
func (p Permutation) Compose(q Permutation) Permutation {
	if len(p) != len(q) {
		panic(fmt.Sprintf("sparse: composing permutations of size %d and %d", len(p), len(q)))
	}
	r := make(Permutation, len(p))
	for i, v := range p {
		r[i] = q[v]
	}
	return r
}

// IsIdentity reports whether p maps every element to itself.
func (p Permutation) IsIdentity() bool {
	for i, v := range p {
		if int(v) != i {
			return false
		}
	}
	return true
}

// PermuteVector returns the vector x rearranged so that result[p[i]] = x[i].
// This is the companion of CSR.PermuteSymmetric: SpMV on the permuted matrix
// with the permuted input vector yields the permuted output vector.
func (p Permutation) PermuteVector(x []float32) []float32 {
	if len(p) != len(x) {
		panic(fmt.Sprintf("sparse: permutation size %d for vector of size %d", len(p), len(x)))
	}
	y := make([]float32, len(x))
	for i, v := range p {
		y[v] = x[i]
	}
	return y
}

// FromNewOrder builds a Permutation from a listing of old IDs in their new
// order: order[k] is the old ID that receives new ID k. This is the natural
// output shape of traversal-based reordering algorithms (BFS orders,
// dendrogram DFS orders), which emit vertices in their final sequence.
func FromNewOrder(order []int32) Permutation {
	p := make(Permutation, len(order))
	for newID, oldID := range order {
		p[oldID] = int32(newID)
	}
	return p
}
