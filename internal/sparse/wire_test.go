package sparse

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math"
	"strings"
	"testing"
)

// wireCorpus builds the pathological shape set the codec must survive:
// empty, empty-rows-only, single entry, rectangular, dense block, negative
// and non-finite values, and a duplicate-heavy COO assembly.
func wireCorpus() map[string]*CSR {
	dup := NewCOO(6, 6, 32)
	for i := 0; i < 4; i++ {
		dup.Add(1, 3, 0.25) // merges into one entry by summation
		dup.AddSym(2, int32(i), float32(i))
	}
	dense := NewCOO(5, 5, 25)
	for i := int32(0); i < 5; i++ {
		for j := int32(0); j < 5; j++ {
			dense.Add(i, j, float32(i*5+j)-12)
		}
	}
	specials := NewCOO(3, 3, 4)
	specials.Add(0, 0, float32(math.Inf(1)))
	specials.Add(1, 1, float32(math.NaN()))
	specials.Add(2, 0, -0.0)
	single := NewCOO(4, 7, 1)
	single.Add(2, 6, -1.5)
	return map[string]*CSR{
		"empty-0x0":    NewCOO(0, 0, 0).ToCSR(),
		"empty-rows":   NewCOO(9, 9, 0).ToCSR(),
		"single-entry": single.ToCSR(),
		"dense-5x5":    dense.ToCSR(),
		"dup-heavy":    dup.ToCSR(),
		"specials":     specials.ToCSR(),
	}
}

// TestBinaryCSRGoldenBytes pins the exact encoding of a tiny matrix so
// the wire format cannot drift silently: any byte-level change to the
// header or section layout breaks this test.
func TestBinaryCSRGoldenBytes(t *testing.T) {
	coo := NewCOO(2, 3, 3)
	coo.Add(0, 1, 1.5)
	coo.Add(1, 0, -2)
	coo.Add(1, 2, 0.5)
	m := coo.ToCSR()

	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, m); err != nil {
		t.Fatal(err)
	}
	golden := "" +
		"43535242" + // "CSRB"
		"0100" + "0000" + // version 1, flags 0
		"02000000" + "03000000" + // rows 2, cols 3
		"0300000000000000" + // nnz 3
		"00000000" + "01000000" + "03000000" + // row offsets 0,1,3
		"01000000" + "00000000" + "02000000" + // col indices 1,0,2
		"0000c03f" + "000000c0" + "0000003f" // 1.5, -2, 0.5
	if got := hex.EncodeToString(buf.Bytes()); got != golden {
		t.Fatalf("encoding drifted:\ngot  %s\nwant %s", got, golden)
	}
	if want := BinaryCSRSize(m); int64(buf.Len()) != want {
		t.Fatalf("BinaryCSRSize = %d, encoded %d bytes", want, buf.Len())
	}

	back, err := ReadBinaryCSR(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("golden bytes did not decode back to the source matrix")
	}
}

// TestBinaryCSRRoundTripCorpus: encode→decode is the identity (exact value
// bits, same digest) over the pathological corpus, and agrees with a
// MatrixMarket round trip of the same matrix where MM can represent it
// (finite values; MM text goes through float64 formatting, so the
// comparison is on the binary path's own invariants plus digest equality
// with the in-memory original).
func TestBinaryCSRRoundTripCorpus(t *testing.T) {
	for name, m := range wireCorpus() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteBinaryCSR(&buf, m); err != nil {
				t.Fatal(err)
			}
			if int64(buf.Len()) != BinaryCSRSize(m) {
				t.Fatalf("encoded %d bytes, BinaryCSRSize says %d", buf.Len(), BinaryCSRSize(m))
			}
			back, err := ReadBinaryCSR(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if back.NumRows != m.NumRows || back.NumCols != m.NumCols || !back.EqualPattern(m) {
				t.Fatal("round trip changed the pattern")
			}
			// NaN != NaN under Equal; compare value bits exactly instead.
			for i := range m.Values {
				if math.Float32bits(back.Values[i]) != math.Float32bits(m.Values[i]) {
					t.Fatalf("value %d bits changed: %x -> %x", i,
						math.Float32bits(m.Values[i]), math.Float32bits(back.Values[i]))
				}
			}
			if back.Digest() != m.Digest() {
				t.Fatal("round trip changed the content digest")
			}
		})
	}
}

// TestBinaryCSRMatrixMarketEquivalence: parsing the same matrix from
// MatrixMarket text and from binary CSR yields equal matrices and equal
// digests — the property that lets reorderd's digest-keyed caches treat
// the two upload formats interchangeably.
func TestBinaryCSRMatrixMarketEquivalence(t *testing.T) {
	for name, m := range wireCorpus() {
		if name == "specials" {
			continue // MatrixMarket text cannot carry NaN/Inf portably
		}
		t.Run(name, func(t *testing.T) {
			var mm, bin bytes.Buffer
			if err := WriteMatrixMarket(&mm, m); err != nil {
				t.Fatal(err)
			}
			if err := WriteBinaryCSR(&bin, m); err != nil {
				t.Fatal(err)
			}
			fromMM, err := ReadMatrixMarket(bytes.NewReader(mm.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			fromBin, err := ReadBinaryCSR(bytes.NewReader(bin.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !fromMM.Equal(fromBin) {
				t.Fatal("MatrixMarket and binary parses disagree")
			}
			if fromMM.Digest() != fromBin.Digest() {
				t.Fatal("digest differs across upload formats")
			}
		})
	}
}

// TestBinaryCSRTruncation: every proper prefix of a valid stream fails
// with ErrTruncated, never a panic or a silently short matrix.
func TestBinaryCSRTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, wireCorpus()["dense-5x5"]); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadBinaryCSR(bytes.NewReader(full[:cut])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrTruncated", cut, len(full), err)
		}
	}
}

// TestBinaryCSRCorruptHeader: the typed errors distinguish wrong magic,
// wrong version, reserved flags, and size-limit violations.
func TestBinaryCSRCorruptHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, wireCorpus()["dense-5x5"]); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	corrupt := func(off int, b byte) []byte {
		c := append([]byte(nil), full...)
		c[off] = b
		return c
	}

	if _, err := ReadBinaryCSR(bytes.NewReader(corrupt(0, 'X'))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	if _, err := ReadBinaryCSR(bytes.NewReader(corrupt(4, 9))); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v", err)
	}
	if _, err := ReadBinaryCSR(bytes.NewReader(corrupt(6, 1))); err == nil || !strings.Contains(err.Error(), "reserved flags") {
		t.Fatalf("nonzero flags: got %v", err)
	}
	if _, err := ReadBinaryCSRLimited(bytes.NewReader(full), MMLimits{MaxRows: 2}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("rows over limit: got %v", err)
	}
	if _, err := ReadBinaryCSRLimited(bytes.NewReader(full), MMLimits{MaxEntries: 3}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("entries over limit: got %v", err)
	}
	// Payload corruption (an out-of-range column index) is caught by
	// Validate, not trusted through.
	bad := append([]byte(nil), full...)
	bad[24+4*6] = 0xff // first column-index word -> 255, cols is 5
	if _, err := ReadBinaryCSR(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt column index decoded without error")
	}
}

// TestBinaryCSRLyingHeader: a header declaring a huge nnz over a tiny body
// fails with ErrTruncated without allocating nnz-proportional memory (the
// section readers grow with bytes actually read).
func TestBinaryCSRLyingHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, wireCorpus()["single-entry"]); err != nil {
		t.Fatal(err)
	}
	lie := buf.Bytes()[:binaryCSRHeaderSize]
	lie = append(append([]byte(nil), lie...), 0, 0, 0, 0)
	lie[16], lie[17], lie[18], lie[19] = 0xff, 0xff, 0xff, 0x7e // nnz just under MaxInt32
	if _, err := ReadBinaryCSR(bytes.NewReader(lie)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("lying header: got %v, want ErrTruncated", err)
	}
}

// FuzzBinaryCSRRoundTrip drives the decoder with arbitrary bytes (it must
// reject or produce a Validate-clean matrix, never panic) and, when the
// input does decode, re-encodes and checks the canonical-bytes property:
// decode(encode(decode(b))) is byte-identical to encode(decode(b)) and
// preserves the digest.
func FuzzBinaryCSRRoundTrip(f *testing.F) {
	for _, m := range wireCorpus() {
		var buf bytes.Buffer
		if err := WriteBinaryCSR(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("CSRB"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n"))
	f.Add([]byte{})

	limits := MMLimits{MaxRows: 512, MaxCols: 512, MaxEntries: 1 << 14}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinaryCSRLimited(bytes.NewReader(data), limits)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("decoder returned an invalid matrix: %v", verr)
		}
		var enc bytes.Buffer
		if err := WriteBinaryCSR(&enc, m); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadBinaryCSRLimited(bytes.NewReader(enc.Bytes()), limits)
		if err != nil {
			t.Fatalf("decode of canonical re-encoding failed: %v", err)
		}
		var enc2 bytes.Buffer
		if err := WriteBinaryCSR(&enc2, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
			t.Fatal("encoding is not canonical across a round trip")
		}
		if back.Digest() != m.Digest() {
			t.Fatal("round trip changed the digest")
		}
	})
}
