package sparse

import (
	"strings"
	"testing"
)

func digestFixture() *CSR {
	coo := NewCOO(8, 8, 16)
	for i := int32(0); i < 8; i++ {
		coo.Add(i, i, float32(i)+1)
		coo.Add(i, (i+3)%8, 0.5)
	}
	return coo.ToCSR()
}

func TestDigestDeterministic(t *testing.T) {
	a := digestFixture()
	b := digestFixture()
	da, db := a.Digest(), b.Digest()
	if da != db {
		t.Fatalf("identical matrices digest differently: %s vs %s", da, db)
	}
	if !strings.HasPrefix(da, "sha256:") || len(da) != len("sha256:")+64 {
		t.Fatalf("unexpected digest shape %q", da)
	}
	if a.Clone().Digest() != da {
		t.Fatal("clone digests differently")
	}
}

func TestDigestSensitivity(t *testing.T) {
	base := digestFixture()
	d := base.Digest()

	valueChanged := base.Clone()
	valueChanged.Values[0] += 1
	if valueChanged.Digest() == d {
		t.Fatal("value change not reflected in digest")
	}

	permuted := base.PermuteSymmetric(Permutation{1, 0, 2, 3, 4, 5, 6, 7})
	if permuted.Digest() == d {
		t.Fatal("permuted matrix digests identically")
	}

	// Same flat index streams, different row split: a 1x2 matrix with one
	// entry vs a 2x1 matrix with one entry have identical ColIndices and
	// Values; the shape header must separate them.
	a := &CSR{NumRows: 1, NumCols: 2, RowOffsets: []int32{0, 1}, ColIndices: []int32{0}, Values: []float32{1}}
	b := &CSR{NumRows: 2, NumCols: 1, RowOffsets: []int32{0, 1, 1}, ColIndices: []int32{0}, Values: []float32{1}}
	if a.Digest() == b.Digest() {
		t.Fatal("shape not reflected in digest")
	}
}

func TestDigestEmpty(t *testing.T) {
	empty := NewCOO(0, 0, 0).ToCSR()
	if empty.Digest() == "" {
		t.Fatal("empty matrix has empty digest")
	}
	oneEmptyRow := NewCOO(1, 1, 0).ToCSR()
	if empty.Digest() == oneEmptyRow.Digest() {
		t.Fatal("0x0 and 1x1-empty digest identically")
	}
}
