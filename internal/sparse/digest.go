package sparse

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Digest returns a stable content hash of the matrix: shape, row offsets,
// column indices, and values, encoded little-endian and hashed with
// SHA-256. Two matrices have equal digests iff Equal reports true (up to
// hash collisions), independent of how they were constructed, which makes
// the digest a safe cache key for (matrix × technique) reordering results:
// every technique in this repository is a deterministic function of the
// CSR content, so digest equality implies permutation equality.
func (m *CSR) Digest() string {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(m.NumRows))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.NumCols))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(m.ColIndices)))
	h.Write(hdr[:])

	// Encode slices through a reused chunk buffer so hashing a large
	// matrix does not allocate proportionally to nnz.
	const chunk = 16 * 1024
	buf := make([]byte, 0, 4*chunk)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	for _, v := range m.RowOffsets {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		if len(buf) >= 4*chunk {
			flush()
		}
	}
	flush()
	for _, v := range m.ColIndices {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		if len(buf) >= 4*chunk {
			flush()
		}
	}
	flush()
	for _, v := range m.Values {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		if len(buf) >= 4*chunk {
			flush()
		}
	}
	flush()
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}
