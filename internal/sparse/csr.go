// Package sparse provides compressed sparse matrix representations (CSR and
// COO), a permutation type, symmetric reordering, structural statistics, and
// MatrixMarket I/O. It is the substrate every other package in this
// repository builds on.
//
// Indices are int32 and values are float32 throughout. This matches the
// 4-byte elements assumed by the paper's compulsory-traffic model
// (Section IV-B): rowOffsets, coords, and values all move 4 bytes per entry.
package sparse

import (
	"errors"
	"fmt"
	"sort"
)

// CSR is a sparse matrix in Compressed Sparse Row format.
//
// RowOffsets has NumRows+1 entries; the column indices and values of row r
// live in ColIndices[RowOffsets[r]:RowOffsets[r+1]] (and the parallel slice
// of Values). Column indices within a row are kept sorted and unique by all
// constructors in this package.
type CSR struct {
	NumRows    int32     // row count; RowOffsets has NumRows+1 entries
	NumCols    int32     // column count; every ColIndices entry is < NumCols
	RowOffsets []int32   // row r's entries span [RowOffsets[r], RowOffsets[r+1])
	ColIndices []int32   // column index per nonzero, sorted and unique within a row
	Values     []float32 // value per nonzero, parallel to ColIndices
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.ColIndices) }

// IsSquare reports whether the matrix has as many rows as columns.
func (m *CSR) IsSquare() bool { return m.NumRows == m.NumCols }

// Row returns the column indices and values of row r as sub-slices of the
// matrix storage. The caller must not modify them.
func (m *CSR) Row(r int32) ([]int32, []float32) {
	lo, hi := m.RowOffsets[r], m.RowOffsets[r+1]
	return m.ColIndices[lo:hi], m.Values[lo:hi]
}

// RowLen returns the number of nonzeros in row r.
func (m *CSR) RowLen(r int32) int32 { return m.RowOffsets[r+1] - m.RowOffsets[r] }

// Validate checks the structural invariants of the CSR format: offset
// monotonicity, index bounds, sorted and duplicate-free rows, and slice
// length consistency. It returns a descriptive error for the first violation
// found.
func (m *CSR) Validate() error {
	if m.NumRows < 0 || m.NumCols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", m.NumRows, m.NumCols)
	}
	if len(m.RowOffsets) != int(m.NumRows)+1 {
		return fmt.Errorf("sparse: RowOffsets has %d entries, want %d", len(m.RowOffsets), m.NumRows+1)
	}
	if m.RowOffsets[0] != 0 {
		return fmt.Errorf("sparse: RowOffsets[0] = %d, want 0", m.RowOffsets[0])
	}
	if len(m.Values) != len(m.ColIndices) {
		return fmt.Errorf("sparse: %d values for %d column indices", len(m.Values), len(m.ColIndices))
	}
	if int(m.RowOffsets[m.NumRows]) != len(m.ColIndices) {
		return fmt.Errorf("sparse: RowOffsets[last] = %d, want nnz = %d", m.RowOffsets[m.NumRows], len(m.ColIndices))
	}
	for r := int32(0); r < m.NumRows; r++ {
		if m.RowOffsets[r] > m.RowOffsets[r+1] {
			return fmt.Errorf("sparse: RowOffsets not monotone at row %d", r)
		}
		// Bounds must hold before Row may slice: a locally monotone prefix
		// can still point past nnz when a later offset decreases.
		if int(m.RowOffsets[r+1]) > len(m.ColIndices) {
			return fmt.Errorf("sparse: RowOffsets[%d] = %d exceeds nnz %d", r+1, m.RowOffsets[r+1], len(m.ColIndices))
		}
		cols, _ := m.Row(r)
		for k, c := range cols {
			if c < 0 || c >= m.NumCols {
				return fmt.Errorf("sparse: column index %d out of range in row %d", c, r)
			}
			if k > 0 && cols[k-1] >= c {
				return fmt.Errorf("sparse: row %d not strictly sorted at position %d", r, k)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		NumRows:    m.NumRows,
		NumCols:    m.NumCols,
		RowOffsets: make([]int32, len(m.RowOffsets)),
		ColIndices: make([]int32, len(m.ColIndices)),
		Values:     make([]float32, len(m.Values)),
	}
	copy(c.RowOffsets, m.RowOffsets)
	copy(c.ColIndices, m.ColIndices)
	copy(c.Values, m.Values)
	return c
}

// Equal reports whether the two matrices have identical shape, pattern, and
// values.
func (m *CSR) Equal(o *CSR) bool {
	if !m.EqualPattern(o) {
		return false
	}
	for i, v := range m.Values {
		if o.Values[i] != v {
			return false
		}
	}
	return true
}

// EqualPattern reports whether the two matrices have identical shape and
// nonzero structure, ignoring values.
func (m *CSR) EqualPattern(o *CSR) bool {
	if m.NumRows != o.NumRows || m.NumCols != o.NumCols || len(m.ColIndices) != len(o.ColIndices) {
		return false
	}
	for i, v := range m.RowOffsets {
		if o.RowOffsets[i] != v {
			return false
		}
	}
	for i, v := range m.ColIndices {
		if o.ColIndices[i] != v {
			return false
		}
	}
	return true
}

// Transpose returns the transpose of the matrix as a new CSR. Rows of the
// result are sorted because the counting transpose visits source rows in
// order.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		NumRows:    m.NumCols,
		NumCols:    m.NumRows,
		RowOffsets: make([]int32, int(m.NumCols)+1),
		ColIndices: make([]int32, len(m.ColIndices)),
		Values:     make([]float32, len(m.Values)),
	}
	for _, c := range m.ColIndices {
		t.RowOffsets[c+1]++
	}
	for i := int32(0); i < m.NumCols; i++ {
		t.RowOffsets[i+1] += t.RowOffsets[i]
	}
	cursor := make([]int32, m.NumCols)
	copy(cursor, t.RowOffsets[:m.NumCols])
	for r := int32(0); r < m.NumRows; r++ {
		lo, hi := m.RowOffsets[r], m.RowOffsets[r+1]
		for k := lo; k < hi; k++ {
			c := m.ColIndices[k]
			dst := cursor[c]
			cursor[c]++
			t.ColIndices[dst] = r
			t.Values[dst] = m.Values[k]
		}
	}
	return t
}

// IsSymmetric reports whether the matrix pattern and values are symmetric.
// It requires a square matrix and runs in O(nnz) time and space.
func (m *CSR) IsSymmetric() bool {
	if !m.IsSquare() {
		return false
	}
	return m.Equal(m.Transpose())
}

// IsPatternSymmetric reports whether the nonzero pattern is symmetric,
// ignoring values.
func (m *CSR) IsPatternSymmetric() bool {
	if !m.IsSquare() {
		return false
	}
	return m.EqualPattern(m.Transpose())
}

// Symmetrize returns A ∪ Aᵀ as a new matrix: the pattern is the union of the
// pattern and its transpose, and coincident entries keep the value from A
// (transposed-only entries take the transposed value). Matrix reordering
// techniques that perform community detection treat the matrix as an
// undirected graph, which is exactly the symmetrized pattern.
func (m *CSR) Symmetrize() *CSR {
	if !m.IsSquare() {
		panic("sparse: Symmetrize requires a square matrix")
	}
	t := m.Transpose()
	out := &CSR{
		NumRows:    m.NumRows,
		NumCols:    m.NumCols,
		RowOffsets: make([]int32, int(m.NumRows)+1),
	}
	// Merge the sorted rows of m and t.
	est := len(m.ColIndices) + len(t.ColIndices)
	out.ColIndices = make([]int32, 0, est)
	out.Values = make([]float32, 0, est)
	for r := int32(0); r < m.NumRows; r++ {
		ac, av := m.Row(r)
		bc, bv := t.Row(r)
		i, j := 0, 0
		for i < len(ac) || j < len(bc) {
			switch {
			case j >= len(bc) || (i < len(ac) && ac[i] < bc[j]):
				out.ColIndices = append(out.ColIndices, ac[i])
				out.Values = append(out.Values, av[i])
				i++
			case i >= len(ac) || bc[j] < ac[i]:
				out.ColIndices = append(out.ColIndices, bc[j])
				out.Values = append(out.Values, bv[j])
				j++
			default: // equal: keep A's value
				out.ColIndices = append(out.ColIndices, ac[i])
				out.Values = append(out.Values, av[i])
				i++
				j++
			}
		}
		out.RowOffsets[r+1] = mustInt32(len(out.ColIndices))
	}
	return out
}

// PermuteSymmetric applies the symmetric permutation P·A·Pᵀ: entry (i, j)
// of the input appears at (p[i], p[j]) in the result. The permutation maps
// old IDs to new IDs, which is the convention used by every reordering
// technique in this repository.
func (m *CSR) PermuteSymmetric(p Permutation) *CSR {
	if !m.IsSquare() {
		panic("sparse: PermuteSymmetric requires a square matrix")
	}
	if len(p) != int(m.NumRows) {
		panic(fmt.Sprintf("sparse: permutation length %d for %d rows", len(p), m.NumRows))
	}
	inv := p.Inverse()
	out := &CSR{
		NumRows:    m.NumRows,
		NumCols:    m.NumCols,
		RowOffsets: make([]int32, int(m.NumRows)+1),
		ColIndices: make([]int32, len(m.ColIndices)),
		Values:     make([]float32, len(m.Values)),
	}
	// New row r holds old row inv[r].
	for newR := int32(0); newR < m.NumRows; newR++ {
		oldR := inv[newR]
		out.RowOffsets[newR+1] = out.RowOffsets[newR] + m.RowLen(oldR)
	}
	type colVal struct {
		c int32
		v float32
	}
	var scratch []colVal
	for newR := int32(0); newR < m.NumRows; newR++ {
		oldR := inv[newR]
		cols, vals := m.Row(oldR)
		scratch = scratch[:0]
		for k, c := range cols {
			scratch = append(scratch, colVal{p[c], vals[k]})
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].c < scratch[b].c })
		base := out.RowOffsets[newR]
		for k, cv := range scratch {
			out.ColIndices[base+int32(k)] = cv.c
			out.Values[base+int32(k)] = cv.v
		}
	}
	return out
}

// ErrNotSquare is returned by operations that require square matrices.
var ErrNotSquare = errors.New("sparse: matrix is not square")
