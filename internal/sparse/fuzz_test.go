package sparse

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestReadMatrixMarketNeverPanics feeds the reader adversarial inputs: it
// must return errors, never panic, and never return an invalid matrix.
func TestReadMatrixMarketNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		m, err := ReadMatrixMarket(strings.NewReader(string(junk)))
		if err != nil {
			return true
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadMatrixMarketHeaderPrefixAttacks(t *testing.T) {
	// Valid-looking prefixes followed by garbage bodies.
	prefixes := []string{
		"%%MatrixMarket matrix coordinate real general\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n",
	}
	bodies := []string{
		"", "x y z\n", "-1 -1 -1\n", "1\n", "999999999999999999999 1 1\n1 1 1\n",
		"2 2 1\n1 1 not-a-number\n", "2 2 2\n1 1 1\n", "0 0 1\n1 1 1\n",
	}
	for _, p := range prefixes {
		for _, b := range bodies {
			m, err := ReadMatrixMarket(strings.NewReader(p + b))
			if err == nil && m.Validate() != nil {
				t.Fatalf("input %q produced an invalid matrix without error", p+b)
			}
		}
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	src := "%%MatrixMarket matrix coordinate real general\n-3 -3 1\n1 1 1.0\n"
	if m, err := ReadMatrixMarket(strings.NewReader(src)); err == nil {
		if err := m.Validate(); err == nil && m.NumRows < 0 {
			t.Fatal("negative-dimension matrix accepted as valid")
		}
	}
}
