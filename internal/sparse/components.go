package sparse

// ConnectedComponents labels the weakly connected components of the
// matrix's pattern (edges are treated as undirected). It returns one label
// per row in [0, count) and the component count. Isolated vertices get
// their own components.
func (m *CSR) ConnectedComponents() ([]int32, int32) {
	if !m.IsSquare() {
		panic("sparse: ConnectedComponents requires a square matrix")
	}
	n := m.NumRows
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	// Weak connectivity needs both directions; build the transpose once.
	t := m.Transpose()
	var count int32
	queue := make([]int32, 0, 1024)
	for start := int32(0); start < n; start++ {
		if label[start] != -1 {
			continue
		}
		label[start] = count
		queue = append(queue[:0], start)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			cols, _ := m.Row(u)
			for _, v := range cols {
				if label[v] == -1 {
					label[v] = count
					queue = append(queue, v)
				}
			}
			ins, _ := t.Row(u)
			for _, v := range ins {
				if label[v] == -1 {
					label[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return label, count
}

// LargestComponentFraction returns the share of rows in the largest weakly
// connected component.
func (m *CSR) LargestComponentFraction() float64 {
	if m.NumRows == 0 {
		return 0
	}
	label, count := m.ConnectedComponents()
	sizes := make([]int32, count)
	for _, l := range label {
		sizes[l]++
	}
	var max int32
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) / float64(m.NumRows)
}
