package sparse

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary CSR wire format ("CSRB"), the upload format reorderd negotiates
// via Content-Type to kill the MatrixMarket text-parsing tax: a fixed
// 24-byte header followed by the three CSR sections verbatim,
// little-endian throughout.
//
//	offset  size            field
//	0       4               magic "CSRB" (0x43 0x53 0x52 0x42)
//	4       2               version, currently 1 (uint16)
//	6       2               flags, must be 0 (reserved)
//	8       4               rows (int32, >= 0)
//	12      4               cols (int32, >= 0)
//	16      8               nnz (uint64)
//	24      4*(rows+1)      row offsets (int32 each)
//	...     4*nnz           column indices (int32 each)
//	...     4*nnz           values (IEEE-754 float32 bits each)
//
// The payload is exactly the CSR arrays Digest hashes, so a matrix
// round-tripped through this format keeps its content digest — the
// property that makes the binary upload path share reorderd's
// digest-keyed caches with the MatrixMarket path. ReadBinaryCSR
// validates the decoded matrix with Validate, so malformed offsets,
// out-of-range columns, or unsorted rows are rejected, not propagated.

// BinaryCSRContentType is the media type reorderd accepts for binary CSR
// uploads; any other Content-Type falls back to MatrixMarket text.
const BinaryCSRContentType = "application/x-binary-csr"

// BinaryCSRVersion is the format version this package reads and writes.
const BinaryCSRVersion = 1

// binaryCSRMagic is the 4-byte file signature.
const binaryCSRMagic = "CSRB"

// binaryCSRHeaderSize is the fixed byte length of the header.
const binaryCSRHeaderSize = 24

// Typed decode errors. ErrTruncated wraps every short read so callers can
// distinguish "cut off mid-stream" from structural corruption.
var (
	// ErrBadMagic is returned when the stream does not start with the
	// "CSRB" signature — the body is not binary CSR at all.
	ErrBadMagic = errors.New("sparse: not a binary CSR stream (bad magic)")
	// ErrBadVersion is returned for a version other than BinaryCSRVersion.
	ErrBadVersion = errors.New("sparse: unsupported binary CSR version")
	// ErrTruncated is returned when the stream ends before the
	// header-declared section lengths are satisfied.
	ErrTruncated = errors.New("sparse: truncated binary CSR stream")
)

// BinaryCSRSize returns the exact encoded length of the matrix in bytes:
// the header plus 4 bytes per row offset, column index, and value. Clients
// use it for Content-Length and for wire-cost accounting.
func BinaryCSRSize(m *CSR) int64 {
	return binaryCSRHeaderSize + 4*int64(len(m.RowOffsets)) + 8*int64(len(m.ColIndices))
}

// WriteBinaryCSR encodes the matrix in the binary CSR wire format. The
// encoding is canonical: one matrix has exactly one byte representation,
// so equal matrices produce equal streams.
func WriteBinaryCSR(w io.Writer, m *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [binaryCSRHeaderSize]byte
	copy(hdr[0:4], binaryCSRMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], BinaryCSRVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], 0)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(m.NumRows))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(m.NumCols))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(m.ColIndices)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [4]byte
	for _, v := range m.RowOffsets {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for _, v := range m.ColIndices {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for _, v := range m.Values {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinaryCSR decodes a binary CSR stream without size limits; see
// ReadBinaryCSRLimited for the variant network-facing callers must use.
// The decoded matrix is validated (Validate), so the result upholds every
// CSR invariant or an error is returned.
func ReadBinaryCSR(r io.Reader) (*CSR, error) {
	return ReadBinaryCSRLimited(r, MMLimits{})
}

// ReadBinaryCSRLimited decodes a binary CSR stream, rejecting
// header-declared sizes beyond the limits with an ErrTooLarge-wrapping
// error before any dimension-proportional allocation — the same contract
// as ReadMatrixMarketLimited. Short streams fail with ErrTruncated;
// allocation tracks bytes actually read, so an absurd declared size in a
// tiny body cannot force a large allocation even with zero limits.
func ReadBinaryCSRLimited(r io.Reader, limits MMLimits) (*CSR, error) {
	var hdr [binaryCSRHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	if string(hdr[0:4]) != binaryCSRMagic {
		return nil, fmt.Errorf("%w: got % x", ErrBadMagic, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != BinaryCSRVersion {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, v, BinaryCSRVersion)
	}
	if f := binary.LittleEndian.Uint16(hdr[6:8]); f != 0 {
		return nil, fmt.Errorf("sparse: binary CSR reserved flags 0x%04x must be 0", f)
	}
	rows := int32(binary.LittleEndian.Uint32(hdr[8:12]))
	cols := int32(binary.LittleEndian.Uint32(hdr[12:16]))
	nnz64 := binary.LittleEndian.Uint64(hdr[16:24])
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("sparse: binary CSR negative dimensions %dx%d", rows, cols)
	}
	if nnz64 > math.MaxInt32 {
		return nil, fmt.Errorf("sparse: binary CSR nnz %d overflows int32 indexing", nnz64)
	}
	nnz := int(nnz64)
	if err := limits.check(rows, cols, nnz); err != nil {
		return nil, err
	}

	buf := make([]byte, 1<<16)
	rowOffsets, err := readInt32Section(r, buf, int(rows)+1, "row offsets")
	if err != nil {
		return nil, err
	}
	colIndices, err := readInt32Section(r, buf, nnz, "column indices")
	if err != nil {
		return nil, err
	}
	values, err := readFloat32Section(r, buf, nnz, "values")
	if err != nil {
		return nil, err
	}
	m := &CSR{
		NumRows:    rows,
		NumCols:    cols,
		RowOffsets: rowOffsets,
		ColIndices: colIndices,
		Values:     values,
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("sparse: binary CSR payload invalid: %w", err)
	}
	return m, nil
}

// readInt32Section decodes n little-endian int32 words through buf,
// growing the output only as bytes actually arrive so a lying header
// cannot force an n-proportional allocation from a short stream.
func readInt32Section(r io.Reader, buf []byte, n int, section string) ([]int32, error) {
	out := make([]int32, 0, min(n, 1<<20))
	for len(out) < n {
		want := min((n-len(out))*4, len(buf))
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, fmt.Errorf("%w: %s at word %d of %d: %v", ErrTruncated, section, len(out), n, err)
		}
		for i := 0; i < want; i += 4 {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[i:])))
		}
	}
	return out, nil
}

// readFloat32Section is readInt32Section for IEEE-754 float32 words.
func readFloat32Section(r io.Reader, buf []byte, n int, section string) ([]float32, error) {
	out := make([]float32, 0, min(n, 1<<20))
	for len(out) < n {
		want := min((n-len(out))*4, len(buf))
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, fmt.Errorf("%w: %s at word %d of %d: %v", ErrTruncated, section, len(out), n, err)
		}
		for i := 0; i < want; i += 4 {
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(buf[i:])))
		}
	}
	return out, nil
}
