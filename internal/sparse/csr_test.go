package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCSR builds a random square matrix with the given size and expected
// nonzeros per row, using the supplied source for determinism.
func randomCSR(t testing.TB, rng *rand.Rand, n int32, avgDeg int) *CSR {
	t.Helper()
	coo := NewCOO(n, n, int(n)*avgDeg)
	for k := 0; k < int(n)*avgDeg; k++ {
		coo.Add(rng.Int31n(n), rng.Int31n(n), rng.Float32()+0.1)
	}
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatalf("randomCSR produced invalid matrix: %v", err)
	}
	return m
}

func randomPerm(rng *rand.Rand, n int32) Permutation {
	p := Identity(n)
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	base := func() *CSR {
		return &CSR{
			NumRows:    3,
			NumCols:    3,
			RowOffsets: []int32{0, 2, 2, 4},
			ColIndices: []int32{0, 2, 1, 2},
			Values:     []float32{1, 2, 3, 4},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*CSR)
	}{
		{"bad first offset", func(m *CSR) { m.RowOffsets[0] = 1 }},
		{"non-monotone offsets", func(m *CSR) { m.RowOffsets[1] = 3; m.RowOffsets[2] = 2 }},
		{"offset overflow", func(m *CSR) { m.RowOffsets[3] = 5 }},
		{"column out of range", func(m *CSR) { m.ColIndices[0] = 3 }},
		{"negative column", func(m *CSR) { m.ColIndices[0] = -1 }},
		{"unsorted row", func(m *CSR) { m.ColIndices[0], m.ColIndices[1] = 2, 0 }},
		{"duplicate column", func(m *CSR) { m.ColIndices[1] = 0 }},
		{"value length mismatch", func(m *CSR) { m.Values = m.Values[:3] }},
		{"offsets length mismatch", func(m *CSR) { m.RowOffsets = m.RowOffsets[:3] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base()
			tc.mutate(m)
			if err := m.Validate(); err == nil {
				t.Fatal("corrupted matrix passed Validate")
			}
		})
	}
}

func TestCOOToCSRMergesDuplicates(t *testing.T) {
	coo := NewCOO(2, 2, 4)
	coo.Add(0, 1, 1.5)
	coo.Add(0, 1, 2.5)
	coo.Add(1, 0, 3)
	coo.Add(0, 0, 1)
	m := coo.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("got %d nonzeros, want 3 after duplicate merge", m.NNZ())
	}
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 {
		t.Fatalf("row 0 columns = %v, want [0 1]", cols)
	}
	if vals[1] != 4.0 {
		t.Fatalf("duplicate (0,1) merged to %v, want 4.0", vals[1])
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m := randomCSR(t, rng, 40+rng.Int31n(60), 1+rng.Intn(6))
		tt := m.Transpose().Transpose()
		if !m.Equal(tt) {
			t.Fatalf("trial %d: transpose twice does not restore matrix", trial)
		}
	}
}

func TestTransposeEntries(t *testing.T) {
	coo := NewCOO(3, 4, 3)
	coo.Add(0, 3, 7)
	coo.Add(2, 1, 5)
	coo.Add(1, 0, 2)
	m := coo.ToCSR()
	tr := m.Transpose()
	if tr.NumRows != 4 || tr.NumCols != 3 {
		t.Fatalf("transpose shape = %dx%d, want 4x3", tr.NumRows, tr.NumCols)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cols, vals := tr.Row(3)
	if len(cols) != 1 || cols[0] != 0 || vals[0] != 7 {
		t.Fatalf("transposed entry (3,0) missing: cols=%v vals=%v", cols, vals)
	}
}

func TestSymmetrizeProducesSymmetricPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		m := randomCSR(t, rng, 60, 3)
		s := m.Symmetrize()
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if !s.IsPatternSymmetric() {
			t.Fatalf("trial %d: symmetrized matrix has asymmetric pattern", trial)
		}
		// Every original entry must survive.
		for r := int32(0); r < m.NumRows; r++ {
			cols, _ := m.Row(r)
			scols, _ := s.Row(r)
			for _, c := range cols {
				if !containsInt32(scols, c) {
					t.Fatalf("entry (%d,%d) lost in symmetrization", r, c)
				}
			}
		}
	}
}

func containsInt32(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestPermuteSymmetricMovesEntries(t *testing.T) {
	// 3x3 with entry (0,1)=5; permute 0->2, 1->0, 2->1: entry lands at (2,0).
	coo := NewCOO(3, 3, 1)
	coo.Add(0, 1, 5)
	m := coo.ToCSR()
	p := Permutation{2, 0, 1}
	out := m.PermuteSymmetric(p)
	cols, vals := out.Row(2)
	if len(cols) != 1 || cols[0] != 0 || vals[0] != 5 {
		t.Fatalf("permuted entry = row2 cols=%v vals=%v, want (2,0)=5", cols, vals)
	}
}

func TestPermuteSymmetricRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m := randomCSR(t, rng, 50+rng.Int31n(50), 1+rng.Intn(5))
		p := randomPerm(rng, m.NumRows)
		back := m.PermuteSymmetric(p).PermuteSymmetric(p.Inverse())
		if !m.Equal(back) {
			t.Fatalf("trial %d: permute then inverse-permute does not restore matrix", trial)
		}
	}
}

func TestPermuteSymmetricPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomCSR(t, rng, 80, 4)
	p := randomPerm(rng, m.NumRows)
	out := m.PermuteSymmetric(p)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NNZ() != m.NNZ() {
		t.Fatalf("nnz changed: %d -> %d", m.NNZ(), out.NNZ())
	}
	// Degree multiset is preserved under symmetric permutation.
	dm := m.DegreeDistribution()
	do := out.DegreeDistribution()
	if len(dm) != len(do) {
		t.Fatalf("degree histogram length changed: %d -> %d", len(dm), len(do))
	}
	for d := range dm {
		if dm[d] != do[d] {
			t.Fatalf("count of degree-%d rows changed: %d -> %d", d, dm[d], do[d])
		}
	}
}

func TestPermutationBasics(t *testing.T) {
	id := Identity(5)
	if !id.IsIdentity() || !id.IsValid() {
		t.Fatal("Identity(5) is not a valid identity permutation")
	}
	p := Permutation{2, 0, 1}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	inv := p.Inverse()
	if got := p.Compose(inv); !got.IsIdentity() {
		t.Fatalf("p ∘ p⁻¹ = %v, want identity", got)
	}
	bad := Permutation{0, 0, 2}
	if bad.IsValid() {
		t.Fatal("duplicate-valued permutation passed validation")
	}
	oob := Permutation{0, 3, 1}
	if oob.IsValid() {
		t.Fatal("out-of-range permutation passed validation")
	}
}

func TestFromNewOrder(t *testing.T) {
	// order lists old IDs in new order: new ID 0 is old 2, etc.
	order := []int32{2, 0, 1}
	p := FromNewOrder(order)
	want := Permutation{1, 2, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("FromNewOrder = %v, want %v", p, want)
		}
	}
}

func TestPermuteVector(t *testing.T) {
	p := Permutation{2, 0, 1}
	x := []float32{10, 20, 30}
	y := p.PermuteVector(x)
	want := []float32{20, 30, 10}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("PermuteVector = %v, want %v", y, want)
		}
	}
}

func TestQuickPermutationInverse(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int32(nRaw%100) + 1
		rng := rand.New(rand.NewSource(seed))
		p := randomPerm(rng, n)
		inv := p.Inverse()
		return p.Compose(inv).IsIdentity() && inv.Compose(p).IsIdentity()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPermuteRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, degRaw uint8) bool {
		n := int32(nRaw%60) + 2
		deg := int(degRaw%5) + 1
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(&testing.T{}, rng, n, deg)
		p := randomPerm(rng, n)
		return m.PermuteSymmetric(p).PermuteSymmetric(p.Inverse()).Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskRowsCols(t *testing.T) {
	coo := NewCOO(4, 4, 5)
	coo.Add(0, 1, 1)
	coo.Add(1, 2, 1)
	coo.Add(2, 3, 1)
	coo.Add(3, 0, 1)
	coo.Add(2, 2, 1)
	m := coo.ToCSR()
	keep := []bool{true, false, false, false}
	out := m.MaskRowsCols(keep)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Surviving entries touch node 0: (0,1) and (3,0).
	if out.NNZ() != 2 {
		t.Fatalf("masked nnz = %d, want 2", out.NNZ())
	}
	if out.NumRows != m.NumRows {
		t.Fatal("masking must not change the matrix shape")
	}
}

func TestCompactEmpty(t *testing.T) {
	coo := NewCOO(5, 5, 2)
	coo.Add(0, 4, 1)
	coo.Add(4, 0, 2)
	m := coo.ToCSR() // rows 1..3 are fully disconnected
	out, remap := m.CompactEmpty()
	if out.NumRows != 2 {
		t.Fatalf("compacted to %d rows, want 2", out.NumRows)
	}
	if remap[0] != 0 || remap[4] != 1 || remap[2] != -1 {
		t.Fatalf("remap = %v", remap)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NNZ() != 2 {
		t.Fatalf("compacted nnz = %d, want 2", out.NNZ())
	}
}

func TestStats(t *testing.T) {
	coo := NewCOO(4, 4, 6)
	coo.Add(0, 0, 1)
	coo.Add(0, 1, 1)
	coo.Add(0, 2, 1)
	coo.Add(1, 0, 1)
	coo.Add(2, 0, 1)
	coo.Add(3, 0, 1)
	m := coo.ToCSR()
	if d := m.Degrees(); d[0] != 3 || d[3] != 1 {
		t.Fatalf("Degrees = %v", d)
	}
	if d := m.InDegrees(); d[0] != 4 || d[3] != 0 {
		t.Fatalf("InDegrees = %v", d)
	}
	if m.EmptyRows() != 0 {
		t.Fatalf("EmptyRows = %d, want 0", m.EmptyRows())
	}
	if got := m.AverageDegree(); got != 1.5 {
		t.Fatalf("AverageDegree = %v, want 1.5", got)
	}
	if bw := m.Bandwidth(); bw != 3 {
		t.Fatalf("Bandwidth = %d, want 3", bw)
	}
	// DegreeSkew assertions live in internal/quality, where the shared
	// implementation moved.
}

func TestCSRToCOORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomCSR(t, rng, 70, 3)
	back := CSRToCOO(m).ToCSR()
	if !m.Equal(back) {
		t.Fatal("CSR -> COO -> CSR round trip changed the matrix")
	}
}

func TestConnectedComponents(t *testing.T) {
	// 0-1-2 chain, 3-4 pair (directed edge only), 5 isolated.
	coo := NewCOO(6, 6, 3)
	coo.Add(0, 1, 1)
	coo.Add(2, 1, 1) // weak connectivity joins 2 via in-edge of 1
	coo.Add(3, 4, 1)
	m := coo.ToCSR()
	label, count := m.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatalf("chain not one component: %v", label)
	}
	if label[3] != label[4] || label[3] == label[0] {
		t.Fatalf("pair mislabeled: %v", label)
	}
	if label[5] == label[0] || label[5] == label[3] {
		t.Fatalf("isolated vertex joined a component: %v", label)
	}
	want := 3.0 / 6.0
	if got := m.LargestComponentFraction(); got != want {
		t.Fatalf("LargestComponentFraction = %v, want %v", got, want)
	}
}

func TestQuickComponentsConsistentWithEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(&testing.T{}, rng, 80, 2)
		label, _ := m.ConnectedComponents()
		for r := int32(0); r < m.NumRows; r++ {
			cols, _ := m.Row(r)
			for _, c := range cols {
				if label[r] != label[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
