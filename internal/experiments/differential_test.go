package experiments

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/gpumodel"
	"repro/internal/reorder"
)

// diffKernels is every kernel the paper evaluates (Table IV's set).
var diffKernels = []gpumodel.Kernel{
	{Kind: gpumodel.SpMVCSR},
	{Kind: gpumodel.SpMVCOO},
	{Kind: gpumodel.SpMMCSR, K: 4},
	{Kind: gpumodel.SpMMCSR, K: 256},
}

// TestDifferentialFastVsReference is the corpus-scale differential check:
// on every generated corpus matrix × every kernel, the fast simulator path
// (arena LRU, streaming Belady) must produce bit-identical Stats to the
// seed reference implementation, for both LRU and Belady-optimal
// replacement. This is the proof that switching the experiment suite's
// default to the fast path changed no reported number; scripts/check.sh
// runs it as the pre-merge differential gate.
func TestDifferentialFastVsReference(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full corpus four ways; skipped in -short")
	}
	if raceDetectorEnabled {
		t.Skip("single-goroutine bulk simulation; race instrumentation only risks the timeout")
	}
	r := NewRunner(SmallConfig())
	l2 := r.Config().Device.L2
	for _, e := range r.Entries() {
		md, err := r.Matrix(e.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range diffKernels {
			tr := r.traceFor(md, reorder.Original{}, k)
			hint := k.TraceAccessUpperBound(md.N, md.NNZ, l2.LineBytes)

			lruRef := cachesim.SimulateLRUWith(l2, cachesim.ImplReference, tr)
			lruFast := cachesim.SimulateLRUWith(l2, cachesim.ImplFast, tr)
			if lruRef != lruFast {
				t.Errorf("%s %s LRU diverged:\nreference %+v\nfast      %+v",
					e.Name, k.String(), lruRef, lruFast)
			}

			optRef := cachesim.SimulateBeladyFunc(l2, cachesim.ImplReference, tr, hint)
			optFast := cachesim.SimulateBeladyFunc(l2, cachesim.ImplFast, tr, hint)
			if optRef != optFast {
				t.Errorf("%s %s Belady diverged:\nreference %+v\nfast      %+v",
					e.Name, k.String(), optRef, optFast)
			}
		}
	}
}

// TestDifferentialReorderedTraces covers the reordered access patterns the
// corpus test's ORIGINAL ordering cannot: RABBIT and RANDOM permutations
// concentrate and scatter the irregular operand respectively, stressing
// set-conflict behaviour from both directions. The structurally diverse
// test subset keeps this cheap.
func TestDifferentialReorderedTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	r := testRunner(t)
	l2 := r.Config().Device.L2
	k := SpMV
	for _, name := range subset {
		md, err := r.Matrix(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range []reorder.Technique{reorder.Rabbit{}, reorder.Random{}} {
			tr := r.traceFor(md, tech, k)
			hint := k.TraceAccessUpperBound(md.N, md.NNZ, l2.LineBytes)
			lruRef := cachesim.SimulateLRUWith(l2, cachesim.ImplReference, tr)
			lruFast := cachesim.SimulateLRUWith(l2, cachesim.ImplFast, tr)
			if lruRef != lruFast {
				t.Errorf("%s %s LRU diverged under %s:\nreference %+v\nfast      %+v",
					name, k.String(), tech.Name(), lruRef, lruFast)
			}
			optRef := cachesim.SimulateBeladyFunc(l2, cachesim.ImplReference, tr, hint)
			optFast := cachesim.SimulateBeladyFunc(l2, cachesim.ImplFast, tr, hint)
			if optRef != optFast {
				t.Errorf("%s %s Belady diverged under %s:\nreference %+v\nfast      %+v",
					name, k.String(), tech.Name(), optRef, optFast)
			}
		}
	}
}

// TestRunnerImplReferenceMatchesFast runs one figure's worth of cached
// simulations through two Runners differing only in Config.Impl and
// asserts identical normalized traffic — the end-to-end guarantee behind
// cmd/experiments -impl=reference.
func TestRunnerImplReferenceMatchesFast(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	names := []string{"soc-tight-2", "er-deg16"}
	mk := func(impl cachesim.Impl) *Runner {
		cfg := SmallConfig()
		cfg.Matrices = names
		cfg.Impl = impl
		return NewRunner(cfg)
	}
	fast, ref := mk(cachesim.ImplFast), mk(cachesim.ImplReference)
	for _, name := range names {
		mdF, err := fast.Matrix(name)
		if err != nil {
			t.Fatal(err)
		}
		mdR, err := ref.Matrix(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range []reorder.Technique{reorder.Original{}, reorder.Rabbit{}} {
			if f, r := fast.SimLRU(mdF, tech, SpMV), ref.SimLRU(mdR, tech, SpMV); f != r {
				t.Errorf("%s %s SimLRU: fast %+v != reference %+v", name, tech.Name(), f, r)
			}
			if f, r := fast.SimBelady(mdF, tech, SpMV), ref.SimBelady(mdR, tech, SpMV); f != r {
				t.Errorf("%s %s SimBelady: fast %+v != reference %+v", name, tech.Name(), f, r)
			}
		}
	}
}
