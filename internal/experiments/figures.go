package experiments

import (
	"sort"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/gpumodel"
	"repro/internal/metrics"
	"repro/internal/reorder"
	"repro/internal/report"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Fig2 reproduces Figure 2: SpMV DRAM traffic (normalized to compulsory
// traffic) for every matrix under the six orderings, with the caption's
// mean traffic and mean run-time rows.
func Fig2(r *Runner) (*report.Table, error) {
	techs := reorder.Figure2()
	if err := r.Prefetch(SimUnits(r.Entries(), techs, SpMV)); err != nil {
		return nil, err
	}
	cols := []string{"matrix", "insularity"}
	for _, t := range techs {
		cols = append(cols, t.Name())
	}
	tb := report.New("Figure 2: SpMV DRAM traffic normalized to compulsory traffic", cols...)

	traffic := make(map[string][]float64)
	runtime := make(map[string][]float64)
	for _, e := range r.Entries() {
		md, err := r.Matrix(e.Name)
		if err != nil {
			return nil, err
		}
		row := []string{e.Name, report.F(md.Stats().Insularity)}
		for _, t := range techs {
			nt := r.NormTraffic(md, t, SpMV)
			nr := r.NormRuntime(md, t, SpMV)
			traffic[t.Name()] = append(traffic[t.Name()], nt)
			runtime[t.Name()] = append(runtime[t.Name()], nr)
			row = append(row, report.X(nt))
		}
		tb.Add(row...)
	}
	meanRow := []string{"MEAN-TRAFFIC", ""}
	runtimeRow := []string{"MEAN-RUNTIME", ""}
	for _, t := range techs {
		meanRow = append(meanRow, report.X(metrics.Mean(traffic[t.Name()])))
		runtimeRow = append(runtimeRow, report.X(metrics.Mean(runtime[t.Name()])))
	}
	tb.Add(meanRow...)
	tb.Add(runtimeRow...)
	tb.Note("paper means: traffic RANDOM 3.36x ORIGINAL 1.54x DEGSORT 1.61x DBG 1.48x GORDER 1.29x RABBIT 1.27x")
	tb.Note("paper means: run time RANDOM 6.21x ORIGINAL 1.96x DEGSORT 2.17x DBG 1.94x GORDER 1.56x RABBIT 1.54x")
	return tb, nil
}

// Fig3 reproduces Figure 3: RABBIT's SpMV run time normalized to ideal,
// with matrices in increasing insularity order, plus the two class means.
func Fig3(r *Runner) (*report.Table, error) {
	type row struct {
		name       string
		insularity float64
		runtime    float64
		commNorm   float64
	}
	rows, err := forEntries(r, func(md *MatrixData) (row, error) {
		return row{
			name:       md.Entry.Name,
			insularity: md.Stats().Insularity,
			runtime:    r.NormRuntime(md, reorder.Rabbit{}, SpMV),
			commNorm:   md.Stats().AvgCommunitySizeNorm,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].insularity < rows[b].insularity })

	tb := report.New("Figure 3: RABBIT SpMV run time normalized to ideal (by increasing insularity)",
		"matrix", "insularity", "runtime", "avg-comm-size/N")
	var lo, hi []float64
	for _, rw := range rows {
		tb.Add(rw.name, report.F(rw.insularity), report.X(rw.runtime), report.F(rw.commNorm))
		if rw.insularity >= InsularityThreshold {
			hi = append(hi, rw.runtime)
		} else {
			lo = append(lo, rw.runtime)
		}
	}
	tb.Add("MEAN-INS<0.95", "", report.X(metrics.Mean(lo)), "")
	tb.Add("MEAN-INS>=0.95", "", report.X(metrics.Mean(hi)), "")
	tb.Note("paper: insularity >= 0.95 within 26%% of ideal (1.26x); below, mean 1.81x")
	return tb, nil
}

// Correlations reproduces the Section V-B analysis: Pearson correlation of
// insularity with normalized community size (excluding the mawi anomaly)
// and with degree skew, plus the class mean skews.
func Correlations(r *Runner) (*report.Table, error) {
	if err := r.Prefetch(StatsUnits(r.Entries())); err != nil {
		return nil, err
	}
	var ins, commSize, skew []float64
	var insNoMawi, commSizeNoMawi []float64
	var skewLo, skewHi []float64
	for _, e := range r.Entries() {
		md, err := r.Matrix(e.Name)
		if err != nil {
			return nil, err
		}
		s := md.Stats()
		ins = append(ins, s.Insularity)
		commSize = append(commSize, s.AvgCommunitySizeNorm)
		skew = append(skew, s.Skew)
		// The paper excludes mawi from the size correlation: its giant
		// single community maximizes insularity without locality meaning.
		if s.LargestCommunityFraction < 0.90 {
			insNoMawi = append(insNoMawi, s.Insularity)
			commSizeNoMawi = append(commSizeNoMawi, s.AvgCommunitySizeNorm)
		}
		if s.Insularity >= InsularityThreshold {
			skewHi = append(skewHi, s.Skew)
		} else {
			skewLo = append(skewLo, s.Skew)
		}
	}
	tb := report.New("Section V-B: community-quality correlations", "statistic", "value", "paper")
	tb.Add("Pearson(insularity, avg community size/N) excl. giant-community matrices",
		report.F(metrics.Pearson(insNoMawi, commSizeNoMawi)), "-0.472")
	tb.Add("Pearson(insularity, skew)", report.F(metrics.Pearson(ins, skew)), "-0.721")
	tb.Add("mean skew, insularity >= 0.95", report.Pct(metrics.Mean(skewHi)), "16.37%")
	tb.Add("mean skew, insularity < 0.95", report.Pct(metrics.Mean(skewLo)), "41.74%")
	return tb, nil
}

// Fig4 reproduces Figure 4: the percentage of insular nodes per matrix, in
// increasing insularity order.
func Fig4(r *Runner) (*report.Table, error) {
	type row struct {
		name         string
		insularity   float64
		insularNodes float64
	}
	rows, err := forEntries(r, func(md *MatrixData) (row, error) {
		return row{md.Entry.Name, md.Stats().Insularity, md.Stats().InsularNodeFraction}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].insularity < rows[b].insularity })
	tb := report.New("Figure 4: percentage of insular nodes (by increasing insularity)",
		"matrix", "insularity", "insular-nodes")
	var lo []float64
	for _, rw := range rows {
		tb.Add(rw.name, report.F(rw.insularity), report.Pct(rw.insularNodes))
		if rw.insularity < InsularityThreshold {
			lo = append(lo, rw.insularNodes)
		}
	}
	tb.Note("mean insular-node share of the insularity<0.95 class: %s", report.Pct(metrics.Mean(lo)))
	tb.Note("paper: even low-insularity matrices keep a substantial insular share")
	return tb, nil
}

// Fig6 reproduces Figure 6: the DRAM traffic of the insular sub-matrix
// (all nonzeros not touching insular nodes masked away) under the
// insular-grouped RABBIT ordering, normalized to the sub-matrix's
// compulsory traffic. Matrices whose empty rows dominate can fall below
// 1.0 (the paper's wiki-Talk footnote).
func Fig6(r *Runner) (*report.Table, error) {
	tb := report.New("Figure 6: insular sub-matrix traffic normalized to its compulsory traffic",
		"matrix", "insular-nodes", "traffic")
	variant := reorder.RabbitVariant{Opts: core.Options{GroupInsular: true}}
	type row struct {
		insularFrac float64
		traffic     float64
		hasNNZ      bool
	}
	rows, err := forEntries(r, func(md *MatrixData) (row, error) {
		insular := r.InsularMask(md)
		masked := md.M.MaskRowsCols(insular)
		if masked.NNZ() == 0 {
			return row{}, nil
		}
		p := r.Perm(md, variant)
		pm := masked.PermuteSymmetric(p)
		s := simCSR(r, pm)
		nt := gpumodel.NormalizedTraffic(s, SpMV, int64(pm.NumRows), int64(pm.NNZ()))
		return row{insularFrac: md.Stats().InsularNodeFraction, traffic: nt, hasNNZ: true}, nil
	})
	if err != nil {
		return nil, err
	}
	var vals []float64
	for i, e := range r.Entries() {
		rw := rows[i]
		if !rw.hasNNZ {
			tb.Add(e.Name, report.Pct(0), "n/a")
			continue
		}
		vals = append(vals, rw.traffic)
		tb.Add(e.Name, report.Pct(rw.insularFrac), report.X(rw.traffic))
	}
	tb.Note("mean %s; paper: the insular portion achieves ideal traffic (wiki-Talk below 1.0 via empty rows)",
		report.X(metrics.Mean(vals)))
	return tb, nil
}

// Fig7 reproduces Figure 7: the reduction in SpMV DRAM traffic of RABBIT++
// over RABBIT for the low-insularity matrices (the high-insularity class
// changes by under ~1%).
func Fig7(r *Runner) (*report.Table, error) {
	tb := report.New("Figure 7: RABBIT++ DRAM traffic reduction over RABBIT (insularity < 0.95)",
		"matrix", "insularity", "RABBIT", "RABBIT++", "reduction")
	if err := r.Prefetch(SimUnits(r.Entries(),
		[]reorder.Technique{reorder.Rabbit{}, reorder.RabbitPP{}}, SpMV)); err != nil {
		return nil, err
	}
	var reductions, all, allHi []float64
	for _, e := range r.Entries() {
		md, err := r.Matrix(e.Name)
		if err != nil {
			return nil, err
		}
		rab := r.NormTraffic(md, reorder.Rabbit{}, SpMV)
		rpp := r.NormTraffic(md, reorder.RabbitPP{}, SpMV)
		red := rab / rpp
		all = append(all, red)
		if md.HighInsularity() {
			allHi = append(allHi, red)
			continue
		}
		reductions = append(reductions, red)
		tb.Add(e.Name, report.F(md.Stats().Insularity), report.X(rab), report.X(rpp), report.X(red))
	}
	tb.Note("max reduction %s, mean (ins<0.95) %s, mean (all) %s; paper: max 1.56x, mean 7.7%% / 4.1%%",
		report.X(metrics.Max(reductions)), report.X(metrics.GeoMean(reductions)), report.X(metrics.GeoMean(all)))
	if len(allHi) > 0 {
		tb.Note("high-insularity class mean %s (paper: within 1%% of RABBIT)", report.X(metrics.GeoMean(allHi)))
	}
	return tb, nil
}

// simCSR runs a bare CSR SpMV LRU simulation outside the per-technique
// cache (used for derived matrices like the insular sub-matrix).
func simCSR(r *Runner, m *sparse.CSR) cachesim.Stats {
	return cachesim.SimulateLRU(r.cfg.Device.L2, trace.SpMVCSR(m, r.cfg.Device.L2.LineBytes))
}
