//go:build !race

package experiments

// raceDetectorEnabled mirrors race_on_test.go for non-race builds.
const raceDetectorEnabled = false
