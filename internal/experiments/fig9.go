package experiments

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/metrics"
	"repro/internal/reorder"
	"repro/internal/report"
	"repro/internal/sparse"
)

// Fig9 reproduces Figure 9 and the Section VI-C amortization analysis:
// wall-clock reordering time for GORDER, RABBIT, and RABBIT++ as the
// matrix size grows, plus the number of SpMV iterations each technique
// needs to amortize its preprocessing cost (preprocessing time divided by
// the per-iteration time saved relative to a RANDOM starting order).
//
// Reordering runs on the host CPU while kernel time comes from the scaled
// device model, so the absolute iteration counts are not comparable to the
// paper's (which measured a real CPU against a real A6000); their ordering
// — GORDER needing an order of magnitude more iterations than RABBIT, and
// RABBIT++ adding modest overhead over RABBIT — is the reproduced result.
//
//lint:allow detsource Figure 9 measures real reordering wall time; the timing column is nondeterministic by design
func Fig9(r *Runner) (*report.Table, error) {
	sizes := []int32{8192, 16384, 32768, 65536}
	if r.cfg.Preset == gen.Full {
		sizes = []int32{32768, 65536, 131072, 262144}
	}
	techs := []reorder.Technique{
		reorder.Gorder{Window: 5},
		reorder.Rabbit{},
		reorder.RabbitPP{},
	}
	tb := report.New("Figure 9: matrix reordering time vs matrix size",
		"nodes", "nnz", "GORDER", "RABBIT", "RABBIT++")
	amortized := map[string][]float64{}
	for _, n := range sizes {
		g := gen.PlantedPartition{Nodes: n, Communities: n / 128, AvgDegree: 12, Mu: 0.2}
		m := g.Generate(99)
		row := []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", m.NNZ())}
		// Per-iteration SpMV time for RANDOM vs each technique, from the
		// device model.
		randPerm := reorder.Random{Seed: 0xC0FFEE}.Order(m)
		randTime := projectedSpMVTime(r, m.PermuteSymmetric(randPerm))
		for _, t := range techs {
			start := time.Now()
			p := t.Order(m)
			elapsed := time.Since(start).Seconds()
			row = append(row, fmt.Sprintf("%.3fs", elapsed))
			techTime := projectedSpMVTime(r, m.PermuteSymmetric(p))
			if saved := randTime - techTime; saved > 0 {
				amortized[t.Name()] = append(amortized[t.Name()], elapsed/saved)
			}
			r.progress("reorder   n=%-8d %-16s %.3fs", n, t.Name(), elapsed)
		}
		tb.Add(row...)
	}
	for _, t := range techs {
		if xs := amortized[t.Name()]; len(xs) > 0 {
			tb.Note("%s amortizes preprocessing in ~%.0f SpMV iterations (mean over sizes)",
				t.Name(), metrics.Mean(xs))
		}
	}
	tb.Note("paper (real A6000 vs host CPU): GORDER 7467, RABBIT 741, RABBIT++ 1047 iterations")
	return tb, nil
}

// projectedSpMVTime returns the device-model run time of one SpMV
// iteration over the given (already reordered) matrix.
func projectedSpMVTime(r *Runner, m *sparse.CSR) float64 {
	return gpumodel.ProjectTime(r.cfg.Device, simCSR(r, m))
}
