package experiments

import (
	"fmt"
	"time"

	"repro/internal/cachesim"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/gpumodel"
	"repro/internal/quality"
	"repro/internal/reorder"
	"repro/internal/report"
	"repro/internal/trace"
)

// Ablation experiments go beyond the paper's tables: they probe the design
// choices DESIGN.md calls out (cache geometry, GORDER's window, the
// community detector, the serial-trace assumption, and the tiling
// interaction the paper leaves as future work).
//
// Each ablation computes its per-matrix rows through the scheduler
// (forNames fans the matrices across the worker pool) and appends them in
// pick order, so the rendered tables are independent of completion order.

// pickEntries returns up to k structurally spread corpus entries from the
// runner's configured subset.
func pickEntries(r *Runner, k int) []string {
	preferred := []string{"soc-tight-2", "cfd-2d-5pt", "pld-arc-like", "er-deg16", "rmat-skew-hi", "road-usa-like"}
	have := map[string]bool{}
	for _, e := range r.Entries() {
		have[e.Name] = true
	}
	var out []string
	for _, name := range preferred {
		if have[name] && len(out) < k {
			out = append(out, name)
		}
	}
	for _, e := range r.Entries() {
		if len(out) >= k {
			break
		}
		dup := false
		for _, o := range out {
			if o == e.Name {
				dup = true
			}
		}
		if !dup {
			out = append(out, e.Name)
		}
	}
	return out
}

// ablate runs perMatrix over the picked entries on the worker pool and
// appends each matrix's rows to the table in pick order.
func ablate(r *Runner, tb *report.Table, names []string, perMatrix func(md *MatrixData) ([][]string, error)) error {
	rows, err := forNames(r, names, perMatrix)
	if err != nil {
		return err
	}
	for _, rs := range rows {
		for _, row := range rs {
			tb.Add(row...)
		}
	}
	return nil
}

// AblCacheSweep sweeps the L2 capacity and reports SpMV traffic for
// RANDOM, RABBIT, and RABBIT++ — the working-set view behind the paper's
// Observation 2 (reaching ideal is about structure, not size, once the
// footprint exceeds the cache).
func AblCacheSweep(r *Runner) (*report.Table, error) {
	techs := []reorder.Technique{
		reorder.Random{Seed: 0xC0FFEE},
		reorder.Rabbit{},
		reorder.RabbitPP{},
	}
	base := r.cfg.Device.L2
	capacities := []int64{base.CapacityBytes / 4, base.CapacityBytes / 2, base.CapacityBytes,
		base.CapacityBytes * 2, base.CapacityBytes * 4}
	cols := []string{"matrix", "technique"}
	for _, c := range capacities {
		cols = append(cols, fmt.Sprintf("%dKB", c>>10))
	}
	tb := report.New("Ablation: SpMV traffic vs L2 capacity (normalized to compulsory)", cols...)
	err := ablate(r, tb, pickEntries(r, 3), func(md *MatrixData) ([][]string, error) {
		var out [][]string
		for _, t := range techs {
			pm := md.M.PermuteSymmetric(r.Perm(md, t))
			row := []string{md.Entry.Name, t.Name()}
			for _, c := range capacities {
				cfg := cachesim.Config{CapacityBytes: c, LineBytes: base.LineBytes, Ways: base.Ways}
				s := cachesim.SimulateLRU(cfg, trace.SpMVCSR(pm, base.LineBytes))
				row = append(row, report.X(gpumodel.NormalizedTraffic(s, SpMV, md.N, md.NNZ)))
			}
			out = append(out, row)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("good orderings shrink the working set, flattening the capacity curve early")
	return tb, nil
}

// AblGorderWindow sweeps GORDER's window width, reporting traffic quality
// against preprocessing cost — the knob behind Figure 9's cost story.
//
//lint:allow detsource the reorder-time column measures real wall time, nondeterministic by design
func AblGorderWindow(r *Runner) (*report.Table, error) {
	tb := report.New("Ablation: GORDER window width (traffic and preprocessing time)",
		"matrix", "window", "traffic", "reorder-time")
	err := ablate(r, tb, pickEntries(r, 2), func(md *MatrixData) ([][]string, error) {
		var out [][]string
		for _, w := range []int{2, 5, 10, 20} {
			g := reorder.Gorder{Window: w}
			start := time.Now()
			p := g.Order(md.M)
			elapsed := time.Since(start)
			pm := md.M.PermuteSymmetric(p)
			s := cachesim.SimulateLRU(r.cfg.Device.L2, trace.SpMVCSR(pm, r.cfg.Device.L2.LineBytes))
			out = append(out, []string{md.Entry.Name, fmt.Sprintf("%d", w),
				report.X(gpumodel.NormalizedTraffic(s, SpMV, md.N, md.NNZ)),
				fmt.Sprintf("%.3fs", elapsed.Seconds())})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("wider windows buy little locality for sharply growing cost (the paper uses w=5)")
	return tb, nil
}

// AblDetector compares community detectors as reordering engines: RABBIT's
// incremental aggregation vs Louvain vs multilevel partitioning, on
// community quality and achieved traffic.
//
//lint:allow detsource the detect-time column measures real wall time, nondeterministic by design
func AblDetector(r *Runner) (*report.Table, error) {
	techs := []reorder.Technique{
		reorder.Rabbit{},
		reorder.LouvainOrder{},
		reorder.PartitionOrder{},
	}
	tb := report.New("Ablation: community detector choice",
		"matrix", "technique", "traffic", "runtime", "reorder-time")
	err := ablate(r, tb, pickEntries(r, 3), func(md *MatrixData) ([][]string, error) {
		var out [][]string
		for _, t := range techs {
			start := time.Now()
			p := t.Order(md.M)
			elapsed := time.Since(start)
			pm := md.M.PermuteSymmetric(p)
			s := cachesim.SimulateLRU(r.cfg.Device.L2, trace.SpMVCSR(pm, r.cfg.Device.L2.LineBytes))
			out = append(out, []string{md.Entry.Name, t.Name(),
				report.X(gpumodel.NormalizedTraffic(s, SpMV, md.N, md.NNZ)),
				report.X(gpumodel.NormalizedRuntime(r.cfg.Device, s, SpMV, md.N, md.NNZ)),
				fmt.Sprintf("%.3fs", elapsed.Seconds())})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("the paper picks RABBIT for quality at low preprocessing cost; this table quantifies both")
	return tb, nil
}

// AblInterleave checks the serial-trace assumption: traffic under the
// row-serial reference stream vs GPU-style interleaved streams of 8 and 64
// concurrent groups. The ordering ranking must be stable across
// interleavings for the paper's methodology to transfer.
func AblInterleave(r *Runner) (*report.Table, error) {
	techs := []reorder.Technique{
		reorder.Random{Seed: 0xC0FFEE},
		reorder.Rabbit{},
		reorder.RabbitPP{},
	}
	tb := report.New("Ablation: trace interleaving (SpMV traffic normalized to compulsory)",
		"matrix", "technique", "serial", "8 groups", "64 groups")
	line := r.cfg.Device.L2.LineBytes
	err := ablate(r, tb, pickEntries(r, 3), func(md *MatrixData) ([][]string, error) {
		var out [][]string
		for _, t := range techs {
			pm := md.M.PermuteSymmetric(r.Perm(md, t))
			row := []string{md.Entry.Name, t.Name()}
			for _, groups := range []int32{1, 8, 64} {
				s := cachesim.SimulateLRU(r.cfg.Device.L2, trace.SpMVCSRInterleaved(pm, line, groups))
				row = append(row, report.X(gpumodel.NormalizedTraffic(s, SpMV, md.N, md.NNZ)))
			}
			out = append(out, row)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("the technique ranking should be invariant to interleaving; absolute traffic may drift")
	return tb, nil
}

// AblTiled explores the paper's future-work question (Section VII): does
// RABBIT++ still help when the kernel itself is tiled? It reports traffic
// for {untiled, tiled} × {RANDOM, RABBIT++}.
func AblTiled(r *Runner) (*report.Table, error) {
	tb := report.New("Ablation: interaction with 1-D tiling (SpMV traffic normalized to compulsory)",
		"matrix", "technique", "untiled", "tiled")
	line := r.cfg.Device.L2.LineBytes
	tile := int32(r.cfg.Device.L2.CapacityBytes / 8) // tile X-slice = half the L2 in elements
	err := ablate(r, tb, pickEntries(r, 3), func(md *MatrixData) ([][]string, error) {
		var out [][]string
		for _, t := range []reorder.Technique{reorder.Random{Seed: 0xC0FFEE}, reorder.RabbitPP{}} {
			pm := md.M.PermuteSymmetric(r.Perm(md, t))
			un := cachesim.SimulateLRU(r.cfg.Device.L2, trace.SpMVCSR(pm, line))
			ti := cachesim.SimulateLRU(r.cfg.Device.L2, trace.SpMVCSRTiled(pm, line, tile))
			out = append(out, []string{md.Entry.Name, t.Name(),
				report.X(gpumodel.NormalizedTraffic(un, SpMV, md.N, md.NNZ)),
				report.X(gpumodel.NormalizedTraffic(ti, SpMV, md.N, md.NNZ))})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("tiling bounds the irregular footprint for bad orderings; reordering reduces the need to tile")
	return tb, nil
}

// AblQuality reports the cache-model-independent ordering-quality metrics
// (internal/quality) per technique — the Barik/Esfahani-style analysis the
// paper cites as complementary.
func AblQuality(r *Runner) (*report.Table, error) {
	techs := append(reorder.Figure2(), reorder.RabbitPP{})
	tb := report.New("Ablation: ordering-quality metrics (cache-model independent)",
		"matrix", "technique", "avg-edge-dist", "mean-log2-gap", "line-packing", "workset/N")
	line := r.cfg.Device.L2.LineBytes
	err := ablate(r, tb, pickEntries(r, 2), func(md *MatrixData) ([][]string, error) {
		var out [][]string
		for _, t := range techs {
			p := r.Perm(md, t)
			s := quality.Measure(md.M, p, line, 256)
			out = append(out, []string{md.Entry.Name, t.Name(),
				fmt.Sprintf("%.0f", s.AvgEdgeDistance),
				report.F(s.MeanLog2Gap),
				report.F(s.LinePacking),
				report.F(s.NormalizedWorkingSet(md.M.NumRows))})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("lower distance/gap/working-set and higher packing predict lower simulated traffic")
	return tb, nil
}

// CorpusTable prints the Section III corpus inventory with the structural
// statistics the selection process controls for.
func CorpusTable(r *Runner) (*report.Table, error) {
	tb := report.New("Corpus: the 50-matrix evaluation dataset (Section III analog)",
		"matrix", "family", "source", "rows", "nnz", "avg-deg", "skew", "empty-rows", "insularity")
	rows, err := forEntries(r, func(md *MatrixData) ([]string, error) {
		return []string{md.Entry.Name, md.Entry.Family, md.Entry.Source,
			fmt.Sprintf("%d", md.N), fmt.Sprintf("%d", md.NNZ),
			fmt.Sprintf("%.1f", md.M.AverageDegree()),
			report.Pct(quality.DegreeSkew(md.M)),
			report.Pct(float64(md.M.EmptyRows()) / float64(md.N)),
			report.F(md.Stats().Insularity)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.Add(row...)
	}
	tb.Note("selection rule: square, input-vector footprint > L2 capacity, one matrix per publisher group")
	return tb, nil
}

// AblDetectorQuality compares detector community quality head to head.
func AblDetectorQuality(r *Runner) (*report.Table, error) {
	tb := report.New("Ablation: detector community quality",
		"matrix", "detector", "communities", "insularity", "modularity")
	err := ablate(r, tb, pickEntries(r, 3), func(md *MatrixData) ([][]string, error) {
		rb := md.Rabbit()
		lv := community.Louvain(md.M.Symmetrize(), community.LouvainOptions{})
		return [][]string{
			{md.Entry.Name, "RABBIT", fmt.Sprintf("%d", rb.Communities.Count),
				report.F(community.Insularity(md.M, rb.Communities)),
				report.F(community.Modularity(md.M, rb.Communities))},
			{md.Entry.Name, "LOUVAIN", fmt.Sprintf("%d", lv.Count),
				report.F(community.Insularity(md.M, lv)),
				report.F(community.Modularity(md.M, lv))},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return tb, nil
}

// Ablations lists the beyond-the-paper experiments.
func Ablations() []Experiment {
	return []Experiment{
		{ID: "corpus", Paper: "Corpus inventory (Section III analog)", Run: CorpusTable},
		{ID: "abl-cache", Paper: "Ablation: L2 capacity sweep", Run: AblCacheSweep},
		{ID: "abl-window", Paper: "Ablation: GORDER window width", Run: AblGorderWindow},
		{ID: "abl-detector", Paper: "Ablation: community detector choice", Run: AblDetector},
		{ID: "abl-detq", Paper: "Ablation: detector community quality", Run: AblDetectorQuality},
		{ID: "abl-interleave", Paper: "Ablation: trace interleaving robustness", Run: AblInterleave},
		{ID: "abl-tiled", Paper: "Ablation: tiling interaction (paper future work)", Run: AblTiled},
		{ID: "abl-quality", Paper: "Ablation: ordering-quality metrics", Run: AblQuality},
		{ID: "abl-resolution", Paper: "Ablation: RABBIT resolution parameter", Run: AblResolution},
		{ID: "abl-policy", Paper: "Ablation: replacement policy", Run: AblPolicy},
		{ID: "abl-pushpull", Paper: "Ablation: push vs pull SpMV", Run: AblPushPull},
		{ID: "spgemm", Paper: "SpGEMM generality across techniques (arXiv 2507.21253 extension)", Run: SpGEMMTable},
		{ID: "abl-spgemm", Paper: "Ablation: SpGEMM cluster-wise vs row-wise execution", Run: AblSpGEMMCluster},
		{ID: "multidev", Paper: "Multi-device: run time vs device count (K private L2s)", Run: MultiDevTable},
		{ID: "abl-multidev", Paper: "Ablation: multi-device partition interaction (help or hurt)", Run: AblMultiDev},
		{ID: "advisor", Paper: "Advisor: feature-based technique selection", Run: AdvisorEval},
	}
}

// AblResolution sweeps RABBIT's resolution parameter γ: higher γ yields
// more, smaller communities. The default γ=1 (standard modularity) should
// sit at or near the traffic minimum, which is why the paper can use
// off-the-shelf modularity maximization.
func AblResolution(r *Runner) (*report.Table, error) {
	tb := report.New("Ablation: RABBIT resolution parameter",
		"matrix", "gamma", "communities", "avg-size", "insularity", "traffic")
	line := r.cfg.Device.L2.LineBytes
	err := ablate(r, tb, pickEntries(r, 2), func(md *MatrixData) ([][]string, error) {
		var out [][]string
		for _, gamma := range []float64{0.25, 0.5, 1.0, 2.0, 4.0} {
			rr := core.RabbitResolution(md.M, gamma)
			pm := md.M.PermuteSymmetric(rr.Perm)
			s := cachesim.SimulateLRU(r.cfg.Device.L2, trace.SpMVCSR(pm, line))
			out = append(out, []string{md.Entry.Name, fmt.Sprintf("%.2f", gamma),
				fmt.Sprintf("%d", rr.Communities.Count),
				fmt.Sprintf("%.1f", rr.Communities.AverageSize()),
				report.F(community.Insularity(md.M, rr.Communities)),
				report.X(gpumodel.NormalizedTraffic(s, SpMV, md.N, md.NNZ))})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("gamma=1 is standard modularity; the sweep shows the default is a sound choice")
	return tb, nil
}

// AblPolicy compares replacement policies on the same reference streams:
// the modeled LRU, the cheaper PLRU hardware approximation, RANDOM
// replacement, and the Belady-optimal bound. The LRU-vs-PLRU gap checks
// that the paper's conclusions do not hinge on the exact policy the real
// L2 implements.
func AblPolicy(r *Runner) (*report.Table, error) {
	tb := report.New("Ablation: replacement policy (SpMV traffic normalized to compulsory)",
		"matrix", "technique", "LRU", "PLRU", "RANDOM-repl", "Belady")
	line := r.cfg.Device.L2.LineBytes
	err := ablate(r, tb, pickEntries(r, 2), func(md *MatrixData) ([][]string, error) {
		var out [][]string
		for _, t := range []reorder.Technique{reorder.Random{Seed: 0xC0FFEE}, reorder.RabbitPP{}} {
			pm := md.M.PermuteSymmetric(r.Perm(md, t))
			row := []string{md.Entry.Name, t.Name()}
			for _, p := range []cachesim.Policy{cachesim.PolicyLRU, cachesim.PolicyPLRU, cachesim.PolicyRandom} {
				s := cachesim.Simulate(r.cfg.Device.L2, p, trace.SpMVCSR(pm, line))
				row = append(row, report.X(gpumodel.NormalizedTraffic(s, SpMV, md.N, md.NNZ)))
			}
			bs := r.SimBelady(md, t, SpMV)
			row = append(row, report.X(gpumodel.NormalizedTraffic(bs, SpMV, md.N, md.NNZ)))
			out = append(out, row)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("technique rankings should be policy-invariant; PLRU tracks LRU closely")
	return tb, nil
}

// AblPushPull compares push-style (CSR, irregular input vector) against
// pull-style (CSC, irregular output vector) SpMV across orderings. With a
// symmetric permutation both directions localize together, so reordering
// gains should transfer — evidence for the paper's claim that its insights
// generalize across kernels and access directions.
func AblPushPull(r *Runner) (*report.Table, error) {
	push := gpumodel.Kernel{Kind: gpumodel.SpMVCSR}
	pull := gpumodel.Kernel{Kind: gpumodel.SpMVCSC}
	tb := report.New("Ablation: push (CSR) vs pull (CSC) SpMV traffic (normalized to compulsory)",
		"matrix", "technique", "push", "pull")
	err := ablate(r, tb, pickEntries(r, 3), func(md *MatrixData) ([][]string, error) {
		var out [][]string
		for _, t := range []reorder.Technique{reorder.Random{Seed: 0xC0FFEE}, reorder.Rabbit{}, reorder.RabbitPP{}} {
			out = append(out, []string{md.Entry.Name, t.Name(),
				report.X(r.NormTraffic(md, t, push)),
				report.X(r.NormTraffic(md, t, pull))})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("symmetric permutations localize rows and columns together, so gains transfer across directions")
	return tb, nil
}
