package experiments

import (
	"repro/internal/gpumodel"
	"repro/internal/metrics"
	"repro/internal/reorder"
	"repro/internal/report"
)

// Fig8 reproduces Figure 8: SpMV DRAM traffic under the realistic LRU L2
// versus an idealized L2 with Belady's optimal replacement, per reordering
// technique. The headroom (LRU over Belady) is smallest for RABBIT++,
// indicating it already extracts most of the achievable locality.
func Fig8(r *Runner) (*report.Table, error) {
	techs := append(reorder.Figure2(), reorder.RabbitPP{})
	tb := report.New("Figure 8: LRU vs Belady-optimal L2 traffic (normalized to compulsory)",
		"technique", "LRU", "Belady", "headroom")
	units := SimUnits(r.Entries(), techs, SpMV)
	units = append(units, BeladyUnits(r.Entries(), techs, SpMV)...)
	if err := r.Prefetch(units); err != nil {
		return nil, err
	}
	for _, t := range techs {
		var lru, opt []float64
		for _, e := range r.Entries() {
			md, err := r.Matrix(e.Name)
			if err != nil {
				return nil, err
			}
			lru = append(lru, r.NormTraffic(md, t, SpMV))
			bs := r.SimBelady(md, t, SpMV)
			opt = append(opt, gpumodel.NormalizedTraffic(bs, SpMV, md.N, md.NNZ))
		}
		ml, mo := metrics.Mean(lru), metrics.Mean(opt)
		tb.Add(t.Name(), report.X(ml), report.X(mo), report.Pct(ml/mo-1))
	}
	tb.Note("paper: the LRU-over-Belady gap is smallest for RABBIT++ (7.6%%)")
	return tb, nil
}
