package experiments

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/reorder"
)

// TestRunnerConcurrentAccess drives the Runner's caches from many
// goroutines at once: concurrent Matrix lookups of the same name,
// concurrent Perm computations for several techniques, and concurrent
// traffic queries. Under -race this exercises the mutex discipline around
// MatrixData.perms/sims and the once-guarded RABBIT result.
func TestRunnerConcurrentAccess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs cache simulations; skipped in -short")
	}
	r := testRunner(t, "er-deg16")
	techs := []reorder.Technique{
		reorder.Original{},
		reorder.DegSort{},
		reorder.Rabbit{},
		reorder.RabbitPP{},
	}

	const callers = 6
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			md, err := r.Matrix("er-deg16")
			if err != nil {
				errs[c] = err
				return
			}
			tech := techs[c%len(techs)]
			p := r.Perm(md, tech)
			if len(p) != int(md.M.NumRows) {
				errs[c] = fmt.Errorf("permutation has %d entries for %d rows", len(p), md.M.NumRows)
				return
			}
			_ = r.NormTraffic(md, tech, SpMV)
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", c, err)
		}
	}
}
