//go:build race

package experiments

// raceEnabled reports whether this binary was built with the race
// detector; see race_off.go. TestGolden uses it to skip the heaviest
// golden sweep, whose ~5x race slowdown would blow the suite's timeout.
const raceEnabled = true
