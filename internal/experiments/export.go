package experiments

import (
	"fmt"
	"os"
	"path/filepath"
)

// Export runs the given experiments and writes each result as
// <outdir>/<id>.csv, one file per table, creating outdir if needed. The
// CSV files are the plotting-ready form of the paper's figures.
func Export(set []Experiment, r *Runner, outdir string) error {
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	for _, e := range set {
		tb, err := e.Run(r)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		path := filepath.Join(outdir, e.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tb.RenderCSV(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
