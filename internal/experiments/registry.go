package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/report"
)

// Experiment is one regenerable paper result.
type Experiment struct {
	// ID is the short handle used by cmd/experiments -run.
	ID string
	// Paper names the table/figure being reproduced.
	Paper string
	// Run executes the experiment against a runner.
	Run func(*Runner) (*report.Table, error)
}

// Registry lists every reproducible table and figure, in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "device", Paper: "Table I (platform specification)", Run: TableI},
		{ID: "fig2", Paper: "Figure 2 (traffic across orderings)", Run: Fig2},
		{ID: "obs", Paper: "Section IV-C observation statistics", Run: Observations},
		{ID: "fig3", Paper: "Figure 3 (RABBIT run time vs insularity)", Run: Fig3},
		{ID: "corr", Paper: "Section V-B (insularity correlations)", Run: Correlations},
		{ID: "fig4", Paper: "Figure 4 (insular node percentage)", Run: Fig4},
		{ID: "fig6", Paper: "Figure 6 (insular sub-matrix traffic)", Run: Fig6},
		{ID: "table2", Paper: "Table II (RABBIT modification design space)", Run: TableII},
		{ID: "fig7", Paper: "Figure 7 (RABBIT++ traffic reduction)", Run: Fig7},
		{ID: "table3", Paper: "Table III (dead cache lines)", Run: TableIII},
		{ID: "fig8", Paper: "Figure 8 (Belady headroom)", Run: Fig8},
		{ID: "fig9", Paper: "Figure 9 (reordering cost)", Run: Fig9},
		{ID: "table4", Paper: "Table IV (other kernels)", Run: TableIV},
	}
}

// ByID resolves an experiment from the paper registry or the ablation set.
func ByID(id string) (Experiment, error) {
	all := append(Registry(), Ablations()...)
	for _, e := range all {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range all {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// RunAll executes every registered paper experiment against one shared
// runner, rendering each table to w as it completes.
func RunAll(r *Runner, w io.Writer) error {
	return runSet(Registry(), r, w)
}

// RunAblations executes the beyond-the-paper ablation experiments.
func RunAblations(r *Runner, w io.Writer) error {
	return runSet(Ablations(), r, w)
}

func runSet(set []Experiment, r *Runner, w io.Writer) error {
	for _, e := range set {
		fmt.Fprintf(w, "\n# %s [%s]\n", e.Paper, e.ID)
		tb, err := e.Run(r)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := tb.Render(w); err != nil {
			return err
		}
	}
	return nil
}
