package experiments

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
)

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite on subset takes a few seconds; skipped in -short")
	}
	r := testRunner(t)
	for _, e := range Ablations() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(r)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("ablation produced no rows")
			}
			var buf bytes.Buffer
			if err := tb.Render(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAblationIDsResolvable(t *testing.T) {
	for _, e := range Ablations() {
		got, err := ByID(e.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Paper != e.Paper {
			t.Fatalf("ByID(%q) resolved to %q", e.ID, got.Paper)
		}
	}
}

func TestPickEntriesrespectsSubset(t *testing.T) {
	r := testRunner(t, "er-deg16", "mawi-like")
	picked := pickEntries(r, 5)
	if len(picked) != 2 {
		t.Fatalf("picked %v from a 2-matrix subset", picked)
	}
	for _, name := range picked {
		if name != "er-deg16" && name != "mawi-like" {
			t.Fatalf("picked %q outside the subset", name)
		}
	}
}

func TestCacheSweepMonotone(t *testing.T) {
	// Traffic in the capacity-sweep table must be non-increasing left to
	// right for each row (bigger cache never hurts at fixed geometry in
	// these configurations).
	r := testRunner(t, "er-deg16")
	tb, err := AblCacheSweep(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		prev := 1e18
		for _, cell := range row[2:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
			if err != nil {
				t.Fatalf("unparsable cell %q", cell)
			}
			// Allow tiny non-monotonicity from set-count changes.
			if v > prev*1.05 {
				t.Fatalf("traffic grew with capacity in row %v", row)
			}
			prev = v
		}
	}
}

func TestInterleaveRankingStable(t *testing.T) {
	// The ordering ranking (RANDOM worst, RABBIT best or tied) must hold
	// in every interleaving column.
	r := testRunner(t, "soc-tight-2")
	tb, err := AblInterleave(r)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
		if err != nil {
			t.Fatalf("unparsable cell %q", cell)
		}
		return v
	}
	// Rows come in groups of 3 per matrix: RANDOM, RABBIT, RABBIT++.
	for col := 2; col <= 4; col++ {
		random := parse(tb.Rows[0][col])
		rabbit := parse(tb.Rows[1][col])
		if rabbit >= random {
			t.Fatalf("column %d: RABBIT %.2f not below RANDOM %.2f", col, rabbit, random)
		}
	}
}

func TestExportWritesCSVs(t *testing.T) {
	r := testRunner(t, "er-deg16")
	dir := t.TempDir()
	set := []Experiment{{ID: "device", Paper: "Table I", Run: TableI}}
	if err := Export(set, r, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/device.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "spec,") {
		t.Fatalf("device.csv = %q", data)
	}
}
