package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpumodel"
	"repro/internal/metrics"
	"repro/internal/reorder"
	"repro/internal/report"
)

// classMeans averages a per-matrix metric over all matrices and over the
// two insularity classes.
func classMeans(r *Runner, metric func(md *MatrixData) (float64, error)) (all, lo, hi float64, err error) {
	var as, ls, hs []float64
	for _, e := range r.Entries() {
		md, err := r.Matrix(e.Name)
		if err != nil {
			return 0, 0, 0, err
		}
		v, err := metric(md)
		if err != nil {
			return 0, 0, 0, err
		}
		as = append(as, v)
		if md.HighInsularity() {
			hs = append(hs, v)
		} else {
			ls = append(ls, v)
		}
	}
	return metrics.Mean(as), metrics.Mean(ls), metrics.Mean(hs), nil
}

// TableII reproduces the design-space study: SpMV run time (normalized to
// ideal) for every combination of {± insular grouping} × {RABBIT,
// RABBIT+HUBSORT, RABBIT+HUBGROUP}, split by insularity class.
func TableII(r *Runner) (*report.Table, error) {
	tb := report.New("Table II: design space of RABBIT modifications (SpMV run time / ideal)",
		"variant", "ALL", "INS<0.95", "INS>=0.95")
	hubModes := []core.HubMode{core.HubNone, core.HubSort, core.HubGroup}
	var variants []reorder.Technique
	var labels []string
	for _, grouped := range []bool{false, true} {
		for _, hub := range hubModes {
			variants = append(variants, reorder.RabbitVariant{Opts: core.Options{GroupInsular: grouped, Hub: hub}})
			label := hub.String()
			if grouped {
				label += " +insular-grouped"
			}
			labels = append(labels, label)
		}
	}
	if err := r.Prefetch(SimUnits(r.Entries(), variants, SpMV)); err != nil {
		return nil, err
	}
	for i, variant := range variants {
		variant := variant
		all, lo, hi, err := classMeans(r, func(md *MatrixData) (float64, error) {
			return r.NormRuntime(md, variant, SpMV), nil
		})
		if err != nil {
			return nil, err
		}
		tb.Add(labels[i], report.X(all), report.X(lo), report.X(hi))
	}
	tb.Note("paper row RABBIT: 1.54/1.81/1.25 without grouping, 1.49/1.70/1.25 with")
	tb.Note("paper: HUBSORT hurts RABBIT; insular grouping + HUBGROUP (= RABBIT++) wins")
	return tb, nil
}

// TableIII reproduces the dead-line study: the average percentage of cache
// lines filled but never reused, per reordering technique.
func TableIII(r *Runner) (*report.Table, error) {
	techs := append(reorder.Figure2(), reorder.RabbitPP{})
	if err := r.Prefetch(SimUnits(r.Entries(), techs, SpMV)); err != nil {
		return nil, err
	}
	tb := report.New("Table III: average % of dead lines inserted into the cache (SpMV)",
		"technique", "dead-lines", "paper")
	paper := map[string]string{
		"RANDOM": "63.31%", "ORIGINAL": "25.08%", "DEGSORT": "26.88%",
		"DBG": "25.23%", "GORDER": "17.73%", "RABBIT": "22.25%", "RABBIT++": "16.37%",
	}
	for _, t := range techs {
		all, _, _, err := classMeans(r, func(md *MatrixData) (float64, error) {
			return r.SimLRU(md, t, SpMV).DeadLineFraction(), nil
		})
		if err != nil {
			return nil, err
		}
		tb.Add(t.Name(), report.Pct(all), paper[t.Name()])
	}
	return tb, nil
}

// TableIVTechniques returns the techniques Table IV sweeps: the full
// reorder registry, so every registered technique — including newly added
// ones — shows up in the kernel-generality study. A check.sh gate
// (TestTableIVCoversRegistry) fails if the two ever drift apart.
func TableIVTechniques() []reorder.Technique {
	return reorder.All()
}

// TableIV reproduces the kernel-generality study: run time normalized to
// ideal for SpMV-COO, SpMM-CSR-4, and SpMM-CSR-256 across every
// registered reordering technique, split by insularity class. The paper's
// table shows RANDOM/ORIGINAL/RABBIT/RABBIT++; the remaining rows extend
// it to the baselines and the parallel tier this repository adds.
func TableIV(r *Runner) (*report.Table, error) {
	kernels := []gpumodel.Kernel{
		{Kind: gpumodel.SpMVCOO},
		{Kind: gpumodel.SpMMCSR, K: 4},
		{Kind: gpumodel.SpMMCSR, K: 256},
	}
	techs := TableIVTechniques()
	cols := []string{"technique"}
	for _, k := range kernels {
		cols = append(cols, k.String()+" ALL", k.String()+" I<0.95", k.String()+" I>=0.95")
	}
	if err := r.Prefetch(SimUnits(r.Entries(), techs, kernels...)); err != nil {
		return nil, err
	}
	tb := report.New("Table IV: run time normalized to ideal across cuSPARSE-equivalent kernels", cols...)
	for _, t := range techs {
		row := []string{t.Name()}
		for _, k := range kernels {
			all, lo, hi, err := classMeans(r, func(md *MatrixData) (float64, error) {
				return r.NormRuntime(md, t, k), nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, report.X(all), report.X(lo), report.X(hi))
		}
		tb.Add(row...)
	}
	tb.Note("paper: RABBIT++ beats RABBIT on every kernel and class; RANDOM explodes on SpMM-256 (139x)")
	return tb, nil
}

// TableI prints the evaluation platform specification (the paper's
// Table I) next to the scaled simulation device in use.
func TableI(r *Runner) (*report.Table, error) {
	a := gpumodel.A6000()
	d := r.cfg.Device
	tb := report.New("Table I: evaluation platforms", "spec", a.Name, d.Name)
	row := func(label string, f func(gpumodel.Device) string) {
		tb.Add(label, f(a), f(d))
	}
	row("Peak compute (SP)", func(x gpumodel.Device) string { return fmt.Sprintf("%.1f TFLOPS", x.PeakFlops/1e12) })
	row("Peak DRAM bandwidth", func(x gpumodel.Device) string { return fmt.Sprintf("%.1f GB/s", x.PeakBandwidth/1e9) })
	row("Achievable bandwidth", func(x gpumodel.Device) string { return fmt.Sprintf("%.1f GB/s", x.EffectiveBandwidth/1e9) })
	row("L2 capacity", func(x gpumodel.Device) string { return fmt.Sprintf("%d KB", x.L2.CapacityBytes>>10) })
	row("L2 line / ways", func(x gpumodel.Device) string { return fmt.Sprintf("%dB / %d-way", x.L2.LineBytes, x.L2.Ways) })
	row("Memory capacity", func(x gpumodel.Device) string { return fmt.Sprintf("%d MB", x.MemoryBytes>>20) })
	tb.Note("the simulation device scales the A6000 so the scaled corpus keeps the paper's footprint/capacity ratios")
	return tb, nil
}
