// Package experiments regenerates every table and figure of the paper's
// evaluation: Figure 2 (traffic across orderings), Figure 3 (run time vs
// insularity), the Section V-B correlations, Figure 4 (insular nodes),
// Figure 6 (insular sub-matrix traffic), Table II (design space), Figure 7
// (RABBIT++ traffic reduction), Table III (dead lines), Figure 8 (Belady
// headroom), Figure 9 (reordering cost), and Table IV (other kernels).
//
// A Runner lazily generates each corpus matrix once and caches the
// expensive intermediates (RABBIT's detection, permutations, cache
// simulations) so the full suite shares work across experiments.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/cachesim"
	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/reorder"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Config selects the corpus scale, the simulated device, and an optional
// matrix subset.
type Config struct {
	Preset gen.Preset
	Device gpumodel.Device
	// Matrices restricts the corpus to the named entries; nil runs all 50.
	Matrices []string
	// Progress, when non-nil, receives one line per completed unit of
	// work.
	Progress io.Writer
}

// SmallConfig pairs the Small corpus preset with the matching scaled
// device; tests and benchmarks use it.
func SmallConfig() Config {
	return Config{Preset: gen.Small, Device: gpumodel.SimDeviceSmall()}
}

// FullConfig pairs the Full corpus preset with the matching device;
// cmd/experiments uses it.
func FullConfig() Config {
	return Config{Preset: gen.Full, Device: gpumodel.SimDevice()}
}

// InsularityThreshold splits the corpus into the paper's two classes:
// RABBIT reaches near-ideal performance above it (Figure 3).
const InsularityThreshold = 0.95

// MatrixData bundles one corpus matrix with its cached intermediates.
type MatrixData struct {
	Entry gen.Entry
	M     *sparse.CSR
	N     int64
	NNZ   int64

	once   sync.Once
	rabbit *core.RabbitResult
	stats  core.CommunityStats

	mu    sync.Mutex
	perms map[string]sparse.Permutation
	sims  map[string]cachesim.Stats
}

// Rabbit returns the cached RABBIT detection result.
func (md *MatrixData) Rabbit() *core.RabbitResult {
	md.once.Do(func() {
		md.rabbit = core.Rabbit(md.M)
		md.stats = core.Analyze(md.M, md.rabbit.Communities)
	})
	return md.rabbit
}

// Stats returns the community-quality statistics of the RABBIT detection.
func (md *MatrixData) Stats() core.CommunityStats {
	md.Rabbit()
	return md.stats
}

// HighInsularity reports whether the matrix falls in the paper's
// insularity ≥ 0.95 class.
func (md *MatrixData) HighInsularity() bool {
	return md.Stats().Insularity >= InsularityThreshold
}

// Runner owns the corpus and its caches.
type Runner struct {
	cfg  Config
	mu   sync.Mutex
	data map[string]*MatrixData
}

// NewRunner builds a Runner over the configured corpus subset.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg, data: make(map[string]*MatrixData)}
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// Entries returns the corpus entries this runner covers, in corpus order.
func (r *Runner) Entries() []gen.Entry {
	all := gen.Corpus()
	if r.cfg.Matrices == nil {
		return all
	}
	want := make(map[string]bool, len(r.cfg.Matrices))
	for _, n := range r.cfg.Matrices {
		want[n] = true
	}
	var out []gen.Entry
	for _, e := range all {
		if want[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

// Matrix returns (generating on first use) the named corpus matrix.
func (r *Runner) Matrix(name string) (*MatrixData, error) {
	r.mu.Lock()
	md, ok := r.data[name]
	r.mu.Unlock()
	if ok {
		return md, nil
	}
	entry, err := gen.ByName(name)
	if err != nil {
		return nil, err
	}
	m := entry.Generate(r.cfg.Preset)
	md = &MatrixData{
		Entry: entry,
		M:     m,
		N:     int64(m.NumRows),
		NNZ:   int64(m.NNZ()),
		perms: make(map[string]sparse.Permutation),
		sims:  make(map[string]cachesim.Stats),
	}
	r.mu.Lock()
	if prior, ok := r.data[name]; ok {
		md = prior // another caller won the race
	} else {
		r.data[name] = md
	}
	r.mu.Unlock()
	r.progress("generated %-24s %8d rows %10d nnz", name, md.N, md.NNZ)
	return md, nil
}

func (r *Runner) progress(format string, args ...interface{}) {
	if r.cfg.Progress != nil {
		fmt.Fprintf(r.cfg.Progress, format+"\n", args...)
	}
}

// Perm returns the cached permutation of the technique on the matrix.
// RABBIT-derived techniques share the underlying community detection.
func (r *Runner) Perm(md *MatrixData, tech reorder.Technique) sparse.Permutation {
	md.mu.Lock()
	p, ok := md.perms[tech.Name()]
	md.mu.Unlock()
	if ok {
		return p
	}
	switch t := tech.(type) {
	case reorder.Rabbit:
		p = md.Rabbit().Perm
	case reorder.RabbitPP:
		p = core.ModifyRabbit(md.M, md.Rabbit(), core.PlusPlusOptions()).Perm
	case reorder.RabbitVariant:
		p = core.ModifyRabbit(md.M, md.Rabbit(), t.Opts).Perm
	default:
		p = tech.Order(md.M)
	}
	check.AssertPermutation(p)
	md.mu.Lock()
	md.perms[tech.Name()] = p
	md.mu.Unlock()
	r.progress("ordered   %-24s %s", md.Entry.Name, tech.Name())
	return p
}

// SimLRU simulates the kernel on the reordered matrix through the device
// L2 with LRU replacement, caching by (technique, kernel).
func (r *Runner) SimLRU(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel) cachesim.Stats {
	key := tech.Name() + "|" + k.String()
	md.mu.Lock()
	s, ok := md.sims[key]
	md.mu.Unlock()
	if ok {
		return s
	}
	s = cachesim.SimulateLRU(r.cfg.Device.L2, r.traceFor(md, tech, k))
	md.mu.Lock()
	md.sims[key] = s
	md.mu.Unlock()
	r.progress("simulated %-24s %-16s %-12s traffic=%.2fx", md.Entry.Name, tech.Name(), k.String(),
		gpumodel.NormalizedTraffic(s, k, md.N, md.NNZ))
	return s
}

// SimBelady simulates the kernel under Belady-optimal replacement (no
// caching: Figure 8 visits each combination once).
func (r *Runner) SimBelady(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel) cachesim.Stats {
	recorded := cachesim.RecordTrace(r.traceFor(md, tech, k))
	return cachesim.SimulateBelady(r.cfg.Device.L2, recorded)
}

// traceFor builds the reference stream of the kernel over the reordered
// matrix.
func (r *Runner) traceFor(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel) func(func(int64)) {
	pm := md.M.PermuteSymmetric(r.Perm(md, tech))
	line := r.cfg.Device.L2.LineBytes
	switch k.Kind {
	case gpumodel.SpMVCSR:
		return trace.SpMVCSR(pm, line)
	case gpumodel.SpMVCOO:
		return trace.SpMVCOO(sparse.CSRToCOO(pm), line)
	case gpumodel.SpMMCSR:
		return trace.SpMMCSR(pm, k.K, line)
	case gpumodel.SpMVCSC:
		return trace.SpMVCSC(pm, line)
	default:
		panic("experiments: unknown kernel")
	}
}

// NormTraffic returns the kernel's simulated traffic normalized to
// compulsory traffic for the technique on the matrix.
func (r *Runner) NormTraffic(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel) float64 {
	return gpumodel.NormalizedTraffic(r.SimLRU(md, tech, k), k, md.N, md.NNZ)
}

// NormRuntime returns the kernel's projected run time normalized to the
// ideal run time for the technique on the matrix.
func (r *Runner) NormRuntime(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel) float64 {
	return gpumodel.NormalizedRuntime(r.cfg.Device, r.SimLRU(md, tech, k), k, md.N, md.NNZ)
}

// InsularMask returns the insular-node flags of the RABBIT communities.
func (r *Runner) InsularMask(md *MatrixData) []bool {
	return community.InsularNodes(md.M, md.Rabbit().Communities)
}

// SpMV is the default kernel of Figures 2-8.
var SpMV = gpumodel.Kernel{Kind: gpumodel.SpMVCSR}
