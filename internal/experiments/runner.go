// Package experiments regenerates every table and figure of the paper's
// evaluation: Figure 2 (traffic across orderings), Figure 3 (run time vs
// insularity), the Section V-B correlations, Figure 4 (insular nodes),
// Figure 6 (insular sub-matrix traffic), Table II (design space), Figure 7
// (RABBIT++ traffic reduction), Table III (dead lines), Figure 8 (Belady
// headroom), Figure 9 (reordering cost), and Table IV (other kernels).
//
// A Runner lazily generates each corpus matrix once and caches the
// expensive intermediates (RABBIT's detection, permutations, cache
// simulations) so the full suite shares work across experiments. The
// scheduler (scheduler.go) fans the (matrix × technique × kernel) units
// each figure needs across a bounded worker pool; every cache is guarded
// by per-key in-flight dedup, so the units execute exactly once no matter
// how many figures request them concurrently, and each figure aggregates
// its table serially in corpus order from the warm caches.
//
//repro:deterministic
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/cachesim"
	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/kernels"
	"repro/internal/multidev"
	"repro/internal/reorder"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Config selects the corpus scale, the simulated device, and an optional
// matrix subset.
type Config struct {
	// Preset selects the synthetic corpus scale (gen.Small or gen.Full).
	Preset gen.Preset
	// Device is the simulated accelerator whose cache geometry and
	// bandwidth model the experiments target.
	Device gpumodel.Device
	// Matrices restricts the corpus to the named entries; nil runs all 50.
	Matrices []string
	// Progress, when non-nil, receives one line per completed unit of
	// work. Writes are serialized by the Runner.
	Progress io.Writer
	// Workers bounds how many scheduler units run concurrently.
	// 0 means runtime.NumCPU(); 1 reproduces the serial behaviour.
	Workers int
	// Impl selects the cache-simulator implementation. The zero value is
	// the fast path (arena LRU, streaming Belady); ImplReference runs the
	// seed implementation for differential checks (cmd/experiments
	// -impl=reference). Both produce bit-identical Stats.
	Impl cachesim.Impl
}

// SmallConfig pairs the Small corpus preset with the matching scaled
// device; tests and benchmarks use it.
func SmallConfig() Config {
	return Config{Preset: gen.Small, Device: gpumodel.SimDeviceSmall()}
}

// FullConfig pairs the Full corpus preset with the matching device;
// cmd/experiments uses it.
func FullConfig() Config {
	return Config{Preset: gen.Full, Device: gpumodel.SimDevice()}
}

// InsularityThreshold splits the corpus into the paper's two classes:
// RABBIT reaches near-ideal performance above it (Figure 3).
const InsularityThreshold = 0.95

// MatrixData bundles one corpus matrix with its cached intermediates.
type MatrixData struct {
	// Entry is the corpus entry this matrix was generated from.
	Entry gen.Entry
	// M is the generated matrix in CSR form.
	M *sparse.CSR
	// N is the matrix dimension (square, so rows == cols).
	N int64
	// NNZ is the number of stored nonzeros.
	NNZ int64

	once   sync.Once
	rabbit *core.RabbitResult
	stats  core.CommunityStats

	// spgemmOnce guards the symbolic SpGEMM analysis of M·M; see
	// SpGEMMInfo in spgemm.go.
	spgemmOnce sync.Once
	spgemm     kernels.SpGEMMInfo

	// mu guards the cache maps only; it is never held across a
	// reordering or simulation — the Runner's flightGroup provides the
	// per-key in-flight exclusion instead.
	mu      sync.Mutex
	perms   map[string]sparse.Permutation
	sims    map[string]cachesim.Stats
	beladys map[string]cachesim.Stats
	mdsims  map[string]multidev.Stats
}

// Rabbit returns the cached RABBIT detection result.
func (md *MatrixData) Rabbit() *core.RabbitResult {
	md.once.Do(func() {
		md.rabbit = core.Rabbit(md.M)
		md.stats = core.Analyze(md.M, md.rabbit.Communities)
	})
	return md.rabbit
}

// Stats returns the community-quality statistics of the RABBIT detection.
func (md *MatrixData) Stats() core.CommunityStats {
	md.Rabbit()
	return md.stats
}

// HighInsularity reports whether the matrix falls in the paper's
// insularity ≥ 0.95 class.
func (md *MatrixData) HighInsularity() bool {
	return md.Stats().Insularity >= InsularityThreshold
}

// Runner owns the corpus, its caches, and the worker pool.
type Runner struct {
	cfg Config
	// sem is the bounded worker pool: every scheduler unit holds one
	// slot while it runs. Unit bodies never re-acquire, so the pool
	// cannot deadlock on itself.
	sem chan struct{}
	// flight dedupes in-flight cache fills per key, so concurrent
	// figures requesting the same unit wait for one execution instead
	// of redoing it.
	flight flightGroup

	mu   sync.Mutex
	data map[string]*MatrixData

	progressMu sync.Mutex

	countMu    sync.Mutex
	unitCounts map[string]int
}

// NewRunner builds a Runner over the configured corpus subset.
func NewRunner(cfg Config) *Runner {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Runner{
		cfg:        cfg,
		sem:        make(chan struct{}, workers),
		data:       make(map[string]*MatrixData),
		unitCounts: make(map[string]int),
	}
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// Workers returns the size of the runner's worker pool.
func (r *Runner) Workers() int { return cap(r.sem) }

// Entries returns the corpus entries this runner covers, in corpus order.
func (r *Runner) Entries() []gen.Entry {
	all := gen.Corpus()
	if r.cfg.Matrices == nil {
		return all
	}
	want := make(map[string]bool, len(r.cfg.Matrices))
	for _, n := range r.cfg.Matrices {
		want[n] = true
	}
	var out []gen.Entry
	for _, e := range all {
		if want[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

// Matrix returns (generating on first use) the named corpus matrix.
// Concurrent callers of the same name share one generation.
func (r *Runner) Matrix(name string) (*MatrixData, error) {
	r.mu.Lock()
	md, ok := r.data[name]
	r.mu.Unlock()
	if ok {
		return md, nil
	}
	entry, err := gen.ByName(name)
	if err != nil {
		return nil, err
	}
	r.flight.do("matrix|"+name, func() {
		r.mu.Lock()
		_, done := r.data[name]
		r.mu.Unlock()
		if done {
			return
		}
		m := entry.Generate(r.cfg.Preset)
		d := &MatrixData{
			Entry:   entry,
			M:       m,
			N:       int64(m.NumRows),
			NNZ:     int64(m.NNZ()),
			perms:   make(map[string]sparse.Permutation),
			sims:    make(map[string]cachesim.Stats),
			beladys: make(map[string]cachesim.Stats),
			mdsims:  make(map[string]multidev.Stats),
		}
		r.countUnit("matrix|" + name)
		r.mu.Lock()
		r.data[name] = d
		r.mu.Unlock()
		r.progress("generated %-24s %8d rows %10d nnz", name, d.N, d.NNZ)
	})
	r.mu.Lock()
	md = r.data[name]
	r.mu.Unlock()
	return md, nil
}

func (r *Runner) progress(format string, args ...interface{}) {
	if r.cfg.Progress == nil {
		return
	}
	r.progressMu.Lock()
	fmt.Fprintf(r.cfg.Progress, format+"\n", args...)
	r.progressMu.Unlock()
}

// countUnit records one actual execution of an expensive unit; the
// scheduler's dedup guarantees each key counts exactly once per Runner.
func (r *Runner) countUnit(key string) {
	r.countMu.Lock()
	r.unitCounts[key]++
	r.countMu.Unlock()
}

// UnitCounts returns a snapshot of how many times each expensive unit
// (generation, permutation, simulation) actually executed. The stress
// tests assert every count is exactly 1 under concurrent figures.
func (r *Runner) UnitCounts() map[string]int {
	r.countMu.Lock()
	defer r.countMu.Unlock()
	out := make(map[string]int, len(r.unitCounts))
	for k, v := range r.unitCounts {
		out[k] = v
	}
	return out
}

// Perm returns the cached permutation of the technique on the matrix.
// RABBIT-derived techniques share the underlying community detection.
func (r *Runner) Perm(md *MatrixData, tech reorder.Technique) sparse.Permutation {
	name := tech.Name()
	md.mu.Lock()
	p, ok := md.perms[name]
	md.mu.Unlock()
	if ok {
		return p
	}
	r.flight.do(md.Entry.Name+"|perm|"+name, func() {
		md.mu.Lock()
		_, done := md.perms[name]
		md.mu.Unlock()
		if done {
			return
		}
		var p sparse.Permutation
		switch t := tech.(type) {
		case reorder.Rabbit:
			p = md.Rabbit().Perm
		case reorder.RabbitPP:
			p = core.ModifyRabbit(md.M, md.Rabbit(), core.PlusPlusOptions()).Perm
		case reorder.RabbitVariant:
			p = core.ModifyRabbit(md.M, md.Rabbit(), t.Opts).Perm
		default:
			p = tech.Order(md.M)
		}
		check.AssertPermutation(p)
		r.countUnit("perm|" + md.Entry.Name + "|" + name)
		md.mu.Lock()
		md.perms[name] = p
		md.mu.Unlock()
		r.progress("ordered   %-24s %s", md.Entry.Name, name)
	})
	md.mu.Lock()
	p = md.perms[name]
	md.mu.Unlock()
	return p
}

// SimLRU simulates the kernel on the reordered matrix through the device
// L2 with LRU replacement, caching by (technique, kernel).
func (r *Runner) SimLRU(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel) cachesim.Stats {
	key := tech.Name() + "|" + k.String()
	md.mu.Lock()
	s, ok := md.sims[key]
	md.mu.Unlock()
	if ok {
		return s
	}
	r.flight.do(md.Entry.Name+"|lru|"+key, func() {
		md.mu.Lock()
		_, done := md.sims[key]
		md.mu.Unlock()
		if done {
			return
		}
		s := cachesim.SimulateLRUWith(r.cfg.Device.L2, r.cfg.Impl, r.traceFor(md, tech, k))
		r.countUnit("lru|" + md.Entry.Name + "|" + key)
		md.mu.Lock()
		md.sims[key] = s
		md.mu.Unlock()
		r.progress("simulated %-24s %-16s %-12s traffic=%.2fx", md.Entry.Name, tech.Name(), k.String(),
			gpumodel.NormalizedTraffic(s, k, md.N, md.NNZ))
	})
	md.mu.Lock()
	s = md.sims[key]
	md.mu.Unlock()
	return s
}

// SimBelady simulates the kernel under Belady-optimal replacement,
// caching by (technique, kernel) exactly like SimLRU, so concurrent
// figures share one trace recording and one simulation per combination.
func (r *Runner) SimBelady(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel) cachesim.Stats {
	key := tech.Name() + "|" + k.String()
	md.mu.Lock()
	s, ok := md.beladys[key]
	md.mu.Unlock()
	if ok {
		return s
	}
	r.flight.do(md.Entry.Name+"|belady|"+key, func() {
		md.mu.Lock()
		_, done := md.beladys[key]
		md.mu.Unlock()
		if done {
			return
		}
		hint := k.TraceAccessUpperBound(md.N, md.NNZ, r.cfg.Device.L2.LineBytes)
		s := cachesim.SimulateBeladyFunc(r.cfg.Device.L2, r.cfg.Impl, r.traceFor(md, tech, k), hint)
		r.countUnit("belady|" + md.Entry.Name + "|" + key)
		md.mu.Lock()
		md.beladys[key] = s
		md.mu.Unlock()
		r.progress("belady    %-24s %-16s %-12s traffic=%.2fx", md.Entry.Name, tech.Name(), k.String(),
			gpumodel.NormalizedTraffic(s, k, md.N, md.NNZ))
	})
	md.mu.Lock()
	s = md.beladys[key]
	md.mu.Unlock()
	return s
}

// traceFor builds the reference stream of the kernel over the reordered
// matrix.
func (r *Runner) traceFor(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel) func(func(int64)) {
	pm := md.M.PermuteSymmetric(r.Perm(md, tech))
	line := r.cfg.Device.L2.LineBytes
	switch k.Kind {
	case gpumodel.SpMVCSR:
		return trace.SpMVCSR(pm, line)
	case gpumodel.SpMVCOO:
		return trace.SpMVCOO(sparse.CSRToCOO(pm), line)
	case gpumodel.SpMMCSR:
		return trace.SpMMCSR(pm, k.K, line)
	case gpumodel.SpMVCSC:
		return trace.SpMVCSC(pm, line)
	case gpumodel.SpGEMMCSR:
		return trace.SpGEMM(pm, pm, permuteRowNNZ(md.SpGEMMInfo().RowNNZ, r.Perm(md, tech)), line)
	case gpumodel.SpGEMMCSRCluster:
		return trace.SpGEMMCluster(pm, pm, permuteRowNNZ(md.SpGEMMInfo().RowNNZ, r.Perm(md, tech)), nil, line)
	default:
		panic("experiments: unknown kernel")
	}
}

// NormTraffic returns the kernel's simulated traffic normalized to
// compulsory traffic for the technique on the matrix.
func (r *Runner) NormTraffic(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel) float64 {
	return gpumodel.NormalizedTraffic(r.SimLRU(md, tech, k), k, md.N, md.NNZ)
}

// NormRuntime returns the kernel's projected run time normalized to the
// ideal run time for the technique on the matrix.
func (r *Runner) NormRuntime(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel) float64 {
	return gpumodel.NormalizedRuntime(r.cfg.Device, r.SimLRU(md, tech, k), k, md.N, md.NNZ)
}

// InsularMask returns the insular-node flags of the RABBIT communities.
func (r *Runner) InsularMask(md *MatrixData) []bool {
	return community.InsularNodes(md.M, md.Rabbit().Communities)
}

// SpMV is the default kernel of Figures 2-8.
var SpMV = gpumodel.Kernel{Kind: gpumodel.SpMVCSR}
