//go:build race

package experiments

// raceDetectorEnabled lets single-goroutine bulk tests (the corpus-scale
// simulator differential) skip under -race, where the instrumentation
// overhead risks the package test timeout without exercising any
// concurrency.
const raceDetectorEnabled = true
