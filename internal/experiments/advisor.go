package experiments

import (
	"fmt"

	"repro/internal/advisor"
	"repro/internal/reorder"
	"repro/internal/report"
)

// AdvisorTechniques resolves the advisor's candidate set to concrete
// reorder techniques, in advisor.Candidates order.
func AdvisorTechniques() ([]reorder.Technique, error) {
	names := advisor.Candidates()
	techs := make([]reorder.Technique, len(names))
	for i, n := range names {
		t, err := reorder.ByName(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: advisor candidate: %w", err)
		}
		techs[i] = t
	}
	return techs, nil
}

// AdvisorSamples builds the advisor dataset over the runner's corpus
// subset: each matrix's features paired with the measured SpMV LRU miss
// rate of every candidate technique. The simulations are prefetched
// through the scheduler, so the sweep shares cached work with any other
// figure on the same runner.
func AdvisorSamples(r *Runner) ([]advisor.Sample, error) {
	techs, err := AdvisorTechniques()
	if err != nil {
		return nil, err
	}
	if err := r.Prefetch(SimUnits(r.Entries(), techs, SpMV)); err != nil {
		return nil, err
	}
	return forEntries(r, func(md *MatrixData) (advisor.Sample, error) {
		s := advisor.Sample{
			Matrix:    md.Entry.Name,
			Features:  advisor.ExtractFeatures(md.M),
			MissRates: make(map[string]float64, len(techs)),
		}
		for _, t := range techs {
			stats := r.SimLRU(md, t, SpMV)
			if stats.Accesses > 0 {
				s.MissRates[t.Name()] = float64(stats.Misses) / float64(stats.Accesses)
			}
		}
		return s, nil
	})
}

// AdvisorEval is the "advisor" experiment: it scores the default model
// (the committed LinearModel artifact) against the measured per-technique
// miss rates, with one row per matrix (oracle vs predicted technique and
// the miss-rate regret) followed by summary rows for the default model,
// the rule model, and every always-X baseline. The golden render pins the
// committed artifact's behaviour on the test subset.
func AdvisorEval(r *Runner) (*report.Table, error) {
	samples, err := AdvisorSamples(r)
	if err != nil {
		return nil, err
	}
	model := advisor.DefaultModel()
	rep := advisor.Evaluate(model, samples)
	tb := report.New("Advisor: technique selection vs measured-best oracle",
		"matrix", "oracle", "predicted", "oracle_miss", "predicted_miss", "regret", "correct")
	for _, row := range rep.PerMatrix {
		tb.Add(row.Matrix, row.Oracle, row.Predicted,
			report.F(row.OracleRate), report.F(row.PredictedRate),
			report.F(row.Regret), fmt.Sprintf("%v", row.Correct))
	}
	for _, br := range advisor.CompareBaselines(model, samples) {
		tb.Add("SUMMARY:"+br.Model, "", "",
			"", "", report.F(br.MeanRegret),
			fmt.Sprintf("top1=%.3f", br.Top1Accuracy))
	}
	tb.Note("oracle = measured-best candidate per matrix; regret = predicted miss rate - oracle miss rate")
	return tb, nil
}
