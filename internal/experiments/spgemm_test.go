package experiments

import (
	"strings"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/gpumodel"
	"repro/internal/reorder"
)

// spgemmSubset is the cheap slice of the corpus the SpGEMM tests sweep:
// a mesh, a sparse hub graph, and a mid-density random graph. mawi-like
// is included where the flop budget's exclusion behaviour is the thing
// under test.
var spgemmSubset = []string{"cfd-2d-5pt", "wiki-talk-like", "er-deg16"}

func TestSpGEMMInfoCachedAndPlausible(t *testing.T) {
	r := testRunner(t, "er-deg16")
	md, err := r.Matrix("er-deg16")
	if err != nil {
		t.Fatal(err)
	}
	info := md.SpGEMMInfo()
	if info.Flops < md.NNZ || info.NNZC <= 0 || int64(len(info.RowNNZ)) != md.N {
		t.Fatalf("implausible symbolic info: %+v", info)
	}
	again := md.SpGEMMInfo()
	if &info.RowNNZ[0] != &again.RowNNZ[0] {
		t.Fatal("SpGEMMInfo not cached")
	}
	k := md.SpGEMMKernel(false)
	if k.Kind != gpumodel.SpGEMMCSR || k.Work.Flops != info.Flops || k.Work.NNZC != info.NNZC || k.Work.NNZB != md.NNZ {
		t.Fatalf("SpGEMMKernel work mismatch: %+v", k)
	}
	if kc := md.SpGEMMKernel(true); kc.Kind != gpumodel.SpGEMMCSRCluster {
		t.Fatalf("cluster kernel kind = %v", kc.Kind)
	}
}

// TestSpGEMMTableSweepsRegistryAndBudget runs the generality sweep on a
// subset that includes the flop-pathological mawi-like: every registered
// technique must get a row, and the star graph must be excluded by the
// flop budget (its near-dense product would otherwise dominate the whole
// suite's run time).
func TestSpGEMMTableSweepsRegistryAndBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps the full registry; skipped in -short")
	}
	r := testRunner(t, "cfd-2d-5pt", "wiki-talk-like", "mawi-like")
	tb, err := SpGEMMTable(r)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(TableIVTechniques()); len(tb.Rows) != want {
		t.Fatalf("SpGEMM table has %d rows, want one per registered technique (%d)", len(tb.Rows), want)
	}
	var noted bool
	for _, n := range tb.Notes {
		if strings.Contains(n, "mawi-like") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("flop budget did not report skipping mawi-like; notes: %v", tb.Notes)
	}
	md, err := r.Matrix("mawi-like")
	if err != nil {
		t.Fatal(err)
	}
	if spgemmWithinBudget(md) {
		t.Fatal("mawi-like unexpectedly within the flop budget")
	}
}

// TestSpGEMMTraceHintNeverReallocates is the satellite gate for the
// output-growing-kernel pessimism fix: across corpus matrices, techniques,
// and both execution modes, the Work-based TraceAccessUpperBound must
// cover the actual emit count while staying under RecordTraceSized's
// clamp (1<<27 entries) — together those two facts mean the Belady
// recorder allocates once and never grows.
func TestSpGEMMTraceHintNeverReallocates(t *testing.T) {
	if testing.Short() {
		t.Skip("streams several SpGEMM traces; skipped in -short")
	}
	const recorderClamp = 1 << 27 // mirrors RecordTraceSized's maxHint
	r := testRunner(t, spgemmSubset...)
	line := r.Config().Device.L2.LineBytes
	for _, name := range spgemmSubset {
		md, err := r.Matrix(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range []reorder.Technique{reorder.Original{}, reorder.Rabbit{}} {
			for _, cluster := range []bool{false, true} {
				k := md.SpGEMMKernel(cluster)
				hint := k.TraceAccessUpperBound(md.N, md.NNZ, line)
				if hint >= recorderClamp {
					t.Fatalf("%s %s: hint %d would hit the recorder clamp", name, k.String(), hint)
				}
				var got int64
				r.traceFor(md, tech, k)(func(int64) { got++ })
				if got > hint {
					t.Fatalf("%s %s under %s: %d accesses exceed hint %d",
						name, k.String(), tech.Name(), got, hint)
				}
			}
		}
	}
}

// TestDifferentialSpGEMM extends the fast-vs-reference simulator gate to
// the SpGEMM reference streams: on each subset matrix and both execution
// modes, the fast LRU/Belady paths must produce bit-identical Stats to the
// seed implementations. scripts/check.sh runs this with the other
// differential gates.
func TestDifferentialSpGEMM(t *testing.T) {
	if testing.Short() {
		t.Skip("records full SpGEMM traces; skipped in -short")
	}
	if raceDetectorEnabled {
		t.Skip("single-goroutine bulk simulation; race instrumentation only risks the timeout")
	}
	r := testRunner(t, spgemmSubset...)
	l2 := r.Config().Device.L2
	for _, name := range spgemmSubset {
		md, err := r.Matrix(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cluster := range []bool{false, true} {
			k := md.SpGEMMKernel(cluster)
			tr := r.traceFor(md, reorder.Original{}, k)
			hint := k.TraceAccessUpperBound(md.N, md.NNZ, l2.LineBytes)

			lruRef := cachesim.SimulateLRUWith(l2, cachesim.ImplReference, tr)
			lruFast := cachesim.SimulateLRUWith(l2, cachesim.ImplFast, tr)
			if lruRef != lruFast {
				t.Errorf("%s %s LRU diverged:\nreference %+v\nfast      %+v", name, k.String(), lruRef, lruFast)
			}

			optRef := cachesim.SimulateBeladyFunc(l2, cachesim.ImplReference, tr, hint)
			optFast := cachesim.SimulateBeladyFunc(l2, cachesim.ImplFast, tr, hint)
			if optRef != optFast {
				t.Errorf("%s %s Belady diverged:\nreference %+v\nfast      %+v", name, k.String(), optRef, optFast)
			}
			if optRef.Misses > lruRef.Misses {
				t.Errorf("%s %s: Belady misses %d exceed LRU %d", name, k.String(), optRef.Misses, lruRef.Misses)
			}
		}
	}
}

// TestSpGEMMClusterBeatsRowWiseOnCommunityGraph is the end-to-end
// phenomenon check: on a community-structured graph under RABBIT ordering,
// cluster-wise execution must strictly reduce simulated traffic relative
// to row-wise — the cooperation between reordering and schedule the
// ablation quantifies.
func TestSpGEMMClusterBeatsRowWiseOnCommunityGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("two SpGEMM simulations; skipped in -short")
	}
	r := testRunner(t, "soc-tight-2")
	md, err := r.Matrix("soc-tight-2")
	if err != nil {
		t.Fatal(err)
	}
	row := r.SimLRU(md, reorder.Rabbit{}, gpumodel.Kernel{Kind: gpumodel.SpGEMMCSR})
	clu := r.SimLRU(md, reorder.Rabbit{}, gpumodel.Kernel{Kind: gpumodel.SpGEMMCSRCluster})
	if clu.TrafficBytes() >= row.TrafficBytes() {
		t.Fatalf("cluster-wise traffic %d not below row-wise %d", clu.TrafficBytes(), row.TrafficBytes())
	}
}
