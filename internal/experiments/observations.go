package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/reorder"
	"repro/internal/report"
)

// Observations reproduces the headline statistics of Section IV-C's five
// observations from the Figure 2 data:
//
//   - Observation 1: for how many matrices does the best reordering bring
//     SpMV traffic within 10% of ideal (paper: 22 of 50)?
//   - Observation 4: for how many matrices is RABBIT the single best
//     technique (paper: 26 of 50), and how far is it from the best
//     technique on the rest (paper: 11% on average)?
func Observations(r *Runner) (*report.Table, error) {
	techs := reorder.Figure2()
	if err := r.Prefetch(SimUnits(r.Entries(), techs, SpMV)); err != nil {
		return nil, err
	}
	within10 := 0
	rabbitBest := 0
	var rabbitGapWhenNotBest []float64
	total := 0
	for _, e := range r.Entries() {
		md, err := r.Matrix(e.Name)
		if err != nil {
			return nil, err
		}
		total++
		best := 1e18
		bestName := ""
		var rabbit float64
		for _, t := range techs {
			nt := r.NormTraffic(md, t, SpMV)
			if nt < best {
				best = nt
				bestName = t.Name()
			}
			if t.Name() == "RABBIT" {
				rabbit = nt
			}
		}
		if best <= 1.10 {
			within10++
		}
		if bestName == "RABBIT" {
			rabbitBest++
		} else {
			rabbitGapWhenNotBest = append(rabbitGapWhenNotBest, rabbit/best-1)
		}
	}
	tb := report.New("Section IV-C observations from the Figure 2 data", "statistic", "measured", "paper")
	tb.Add("matrices within 10% of ideal traffic (best technique)",
		fmt.Sprintf("%d of %d", within10, total), "22 of 50")
	tb.Add("matrices where RABBIT is the best technique",
		fmt.Sprintf("%d of %d", rabbitBest, total), "26 of 50")
	tb.Add("RABBIT's mean distance from the best technique elsewhere",
		report.Pct(metrics.Mean(rabbitGapWhenNotBest)), "11%")
	tb.Note("Observation 2 (size-independence) and 3 (ORIGINAL is ill-defined) are visible in the fig2 table itself")
	return tb, nil
}
