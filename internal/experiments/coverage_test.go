package experiments

import (
	"testing"

	"repro/internal/reorder"
)

// TestTableIVCoversRegistry is the registry-coverage gate wired into
// scripts/check.sh: every technique registered in reorder.All() must
// appear in the Table IV experiment corpus, so a newly added technique
// cannot ship without kernel-generality rows. It compares name sets (not
// just lengths) to catch renames and duplicates too.
func TestTableIVCoversRegistry(t *testing.T) {
	inTable := make(map[string]bool)
	for _, tech := range TableIVTechniques() {
		if inTable[tech.Name()] {
			t.Errorf("Table IV lists technique %s twice", tech.Name())
		}
		inTable[tech.Name()] = true
	}
	registered := make(map[string]bool)
	for _, tech := range reorder.All() {
		registered[tech.Name()] = true
		if !inTable[tech.Name()] {
			t.Errorf("registered technique %s missing from the Table IV corpus", tech.Name())
		}
	}
	for name := range inTable {
		if !registered[name] {
			t.Errorf("Table IV technique %s is not in the reorder registry", name)
		}
	}
}
