package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gpumodel"
	"repro/internal/reorder"
)

func TestUnitBuilders(t *testing.T) {
	r := testRunner(t, "er-deg16", "cfd-2d-5pt")
	entries := r.Entries()
	techs := []reorder.Technique{reorder.Original{}, reorder.Rabbit{}}
	kernels := []gpumodel.Kernel{SpMV, {Kind: gpumodel.SpMVCOO}}

	if got := len(StatsUnits(entries)); got != 2 {
		t.Fatalf("StatsUnits = %d units, want 2", got)
	}
	if got := len(PermUnits(entries, techs)); got != 4 {
		t.Fatalf("PermUnits = %d units, want 4", got)
	}
	if got := len(SimUnits(entries, techs, kernels...)); got != 8 {
		t.Fatalf("SimUnits = %d units, want 8", got)
	}
	if got := len(BeladyUnits(entries, techs, SpMV)); got != 4 {
		t.Fatalf("BeladyUnits = %d units, want 4", got)
	}
}

func TestPrefetchUnknownMatrix(t *testing.T) {
	r := testRunner(t, "er-deg16")
	err := r.Prefetch([]Unit{{Kind: UnitStats, Matrix: "no-such-matrix"}})
	if err == nil {
		t.Fatal("Prefetch accepted an unknown matrix")
	}
}

func TestWorkersDefaultAndOverride(t *testing.T) {
	cfg := SmallConfig()
	if w := NewRunner(cfg).Workers(); w < 1 {
		t.Fatalf("default Workers() = %d, want >= 1", w)
	}
	cfg.Workers = 3
	if w := NewRunner(cfg).Workers(); w != 3 {
		t.Fatalf("Workers() = %d, want 3", w)
	}
}

// TestSchedulerExactlyOnce is the scheduler stress test: it runs a set of
// figures — with heavily overlapping (matrix, technique, kernel) needs —
// concurrently from multiple goroutines, twice each, against one Runner,
// and then asserts via the Runner's instrumented execution counter that
// every generation, permutation, and simulation ran exactly once. Under
// -race this also exercises the per-key in-flight tracking and the cache
// mutex discipline end to end.
func TestSchedulerExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six experiments concurrently; skipped in -short")
	}
	cfg := SmallConfig()
	cfg.Matrices = []string{"er-deg16", "cfd-2d-5pt"}
	cfg.Workers = 4
	r := NewRunner(cfg)

	ids := []string{"fig2", "fig3", "fig7", "table2", "table3", "obs", "fig8"}
	const rounds = 2
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(ids))
	for round := 0; round < rounds; round++ {
		for _, id := range ids {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(e Experiment) {
				defer wg.Done()
				if _, err := e.Run(r); err != nil {
					errs <- err
				}
			}(e)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	counts := r.UnitCounts()
	var lru, belady, perms int
	for key, n := range counts {
		if n != 1 {
			t.Errorf("unit %s executed %d times, want exactly 1", key, n)
		}
		switch {
		case strings.HasPrefix(key, "lru|"):
			lru++
		case strings.HasPrefix(key, "belady|"):
			belady++
		case strings.HasPrefix(key, "perm|"):
			perms++
		}
	}
	// Sanity-check that the counter saw the real workload: 2 matrices × 6
	// Figure-2 techniques (+ RABBIT++ and the Table II variants) of LRU
	// work, and 2 × 7 Belady combinations from Figure 8.
	if lru < 2*7 {
		t.Errorf("only %d distinct LRU simulations recorded; dedup test is vacuous", lru)
	}
	if belady != 2*7 {
		t.Errorf("%d distinct Belady simulations recorded, want 14", belady)
	}
	if perms == 0 {
		t.Error("no permutations recorded")
	}
}

// TestPrefetchInlineBypass proves the workers=1 path never touches the
// worker pool: with the runner's only pool slot already held, the pool
// path would block forever, so completion within the timeout means the
// scheduler executed the units inline. It also checks the bypass keeps
// the deterministic first-error contract of the pool path.
func TestPrefetchInlineBypass(t *testing.T) {
	cfg := SmallConfig()
	cfg.Matrices = []string{"er-deg16"}
	cfg.Workers = 1
	r := NewRunner(cfg)
	r.sem <- struct{}{} // occupy the only slot; inline execution must not need it
	defer func() { <-r.sem }()

	done := make(chan error, 1)
	go func() {
		done <- r.Prefetch(StatsUnits(r.Entries()))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("inline Prefetch: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Prefetch blocked on the worker pool despite workers=1")
	}

	// First error in unit order, matching the pool path's contract.
	units := []Unit{
		{Kind: UnitStats, Matrix: "no-such-a"},
		{Kind: UnitStats, Matrix: "no-such-b"},
	}
	err := r.Prefetch(units)
	if err == nil || !strings.Contains(err.Error(), "no-such-a") {
		t.Fatalf("inline Prefetch error = %v, want the first unit's (no-such-a)", err)
	}

	// forNames shares the bypass; run it with the slot still held too.
	go func() {
		_, err := forNames(r, []string{"er-deg16"}, func(md *MatrixData) (int64, error) {
			return md.NNZ, nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("inline forNames: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("forNames blocked on the worker pool despite workers=1")
	}
}

// BenchmarkSerialPathOverhead isolates scheduler dispatch cost: with all
// caches warm, every unit is a pure lookup, so the gap between a bare
// loop over runUnit and Prefetch on a workers=1 runner is the bypass's
// own overhead. scripts/bench.sh records the ratio in
// BENCH_experiments.json; the budget is <5%.
func BenchmarkSerialPathOverhead(b *testing.B) {
	cfg := SmallConfig()
	cfg.Matrices = []string{"er-deg16", "cfd-2d-5pt"}
	cfg.Workers = 1
	r := NewRunner(cfg)
	techs := []reorder.Technique{reorder.Original{}, reorder.Rabbit{}}
	units := SimUnits(r.Entries(), techs, SpMV)
	if err := r.Prefetch(units); err != nil {
		b.Fatal(err)
	}
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, u := range units {
				if err := r.runUnit(u); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("prefetch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := r.Prefetch(units); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestParallelMatchesSerial recomputes one figure's numbers on two fresh
// runners — serial and maximally parallel — and requires cell-identical
// tables, the in-process counterpart of the golden-file checks.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs Fig2 twice; skipped in -short")
	}
	render := func(workers int) [][]string {
		cfg := SmallConfig()
		cfg.Matrices = []string{"er-deg16", "mawi-like"}
		cfg.Workers = workers
		tb, err := Fig2(NewRunner(cfg))
		if err != nil {
			t.Fatal(err)
		}
		return tb.Rows
	}
	serial, parallel := render(1), render(8)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if strings.Join(serial[i], "|") != strings.Join(parallel[i], "|") {
			t.Fatalf("row %d differs:\nserial:   %v\nparallel: %v", i, serial[i], parallel[i])
		}
	}
}
