package experiments

import (
	"testing"

	"repro/internal/gpumodel"
	"repro/internal/reorder"
)

// TestMultiDevFlatIdentity is the acceptance differential for the
// multi-device model: over the experiment corpus, the K=1 multi-device
// simulation must produce Stats bit-identical to the flat-L2 SimLRU path
// with zero remote classification. SpMV runs on every corpus entry; the
// other owned kernels are pinned on the test subset.
func TestMultiDevFlatIdentity(t *testing.T) {
	cfg := SmallConfig()
	cfg.Workers = 1
	if testing.Short() {
		cfg.Matrices = subset
	}
	r := NewRunner(cfg)
	techs := []reorder.Technique{reorder.Random{Seed: 0xC0FFEE}, reorder.Rabbit{}}
	check := func(t *testing.T, name string, tech reorder.Technique, k gpumodel.Kernel) {
		md, err := r.Matrix(name)
		if err != nil {
			t.Fatal(err)
		}
		flat := r.SimLRU(md, tech, k)
		mds := r.SimMultiDev(md, tech, k, 1, PartRowBlock)
		if len(mds.Devices) != 1 {
			t.Fatalf("%s/%s/%s: K=1 produced %d devices", name, tech.Name(), k.String(), len(mds.Devices))
		}
		if mds.Devices[0].Stats != flat {
			t.Fatalf("%s/%s/%s: K=1 multidev diverges from flat path\n got %+v\nwant %+v",
				name, tech.Name(), k.String(), mds.Devices[0].Stats, flat)
		}
		if mds.Devices[0].RemoteAccesses != 0 || mds.Devices[0].RemoteMisses != 0 {
			t.Fatalf("%s/%s/%s: K=1 classified remote traffic: %+v", name, tech.Name(), k.String(), mds.Devices[0])
		}
	}
	for _, e := range r.Entries() {
		for _, tech := range techs {
			check(t, e.Name, tech, SpMV)
		}
	}
	kernels := []gpumodel.Kernel{
		{Kind: gpumodel.SpMVCOO},
		{Kind: gpumodel.SpMMCSR, K: 4},
	}
	for _, name := range subset {
		md, err := r.Matrix(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range kernels {
			check(t, name, reorder.Rabbit{}, k)
		}
		if spgemmWithinBudget(md) {
			check(t, name, reorder.Rabbit{}, gpumodel.Kernel{Kind: gpumodel.SpGEMMCSR})
		}
	}
}

// TestMultiDevPartitioners smokes every partitioner through the Runner
// path at K=4 and checks the basic accounting holds.
func TestMultiDevPartitioners(t *testing.T) {
	cfg := SmallConfig()
	cfg.Matrices = subset[:2]
	cfg.Workers = 1
	r := NewRunner(cfg)
	for _, part := range []string{PartRowBlock, PartMetis, PartCommunity} {
		md, err := r.Matrix(subset[0])
		if err != nil {
			t.Fatal(err)
		}
		s := r.SimMultiDev(md, reorder.Rabbit{}, SpMV, 4, part)
		if len(s.Devices) != 4 {
			t.Fatalf("%s: %d devices", part, len(s.Devices))
		}
		flat := r.SimLRU(md, reorder.Rabbit{}, SpMV)
		if s.Flat().Accesses != flat.Accesses {
			t.Fatalf("%s: multi-device accesses %d != flat %d", part, s.Flat().Accesses, flat.Accesses)
		}
		if s.Imbalance() < 1 {
			t.Fatalf("%s: imbalance %f < 1", part, s.Imbalance())
		}
		if f := s.RemoteFraction(); f < 0 || f > 1 {
			t.Fatalf("%s: remote fraction %f", part, f)
		}
	}
}

// TestMultiDevCacheKey checks different (K, partitioner) points do not
// collide in the cache: K=4 and K=16 must generally differ.
func TestMultiDevCacheKey(t *testing.T) {
	cfg := SmallConfig()
	cfg.Matrices = subset[:1]
	cfg.Workers = 1
	r := NewRunner(cfg)
	md, err := r.Matrix(subset[0])
	if err != nil {
		t.Fatal(err)
	}
	s4 := r.SimMultiDev(md, reorder.Rabbit{}, SpMV, 4, PartRowBlock)
	s16 := r.SimMultiDev(md, reorder.Rabbit{}, SpMV, 16, PartRowBlock)
	if len(s4.Devices) != 4 || len(s16.Devices) != 16 {
		t.Fatalf("cache collision across K: %d and %d devices", len(s4.Devices), len(s16.Devices))
	}
}
