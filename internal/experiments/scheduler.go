package experiments

import (
	"sync"

	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/reorder"
)

// The scheduler turns each figure's nested matrix/technique/kernel loops
// into independent units executed by a bounded worker pool shared across
// the whole Runner. Units are deduplicated singleflight-style against the
// Runner's caches, so concurrent figures (or repeated prefetches) never
// redo a generation, reordering, or simulation; each figure then
// aggregates in corpus order against warm caches, keeping its table
// byte-identical to the serial run regardless of completion order.

// UnitKind selects how much of the pipeline a Unit warms.
type UnitKind int

const (
	// UnitStats generates the matrix and runs community detection.
	UnitStats UnitKind = iota
	// UnitPerm additionally computes the technique's permutation.
	UnitPerm
	// UnitSimLRU additionally simulates the kernel through the LRU L2.
	UnitSimLRU
	// UnitSimBelady simulates the kernel under Belady-optimal replacement.
	UnitSimBelady
	// UnitSimMulti simulates the kernel on Devices private caches split by
	// the Part partitioner (multidev.Simulate).
	UnitSimMulti
)

// Unit is one schedulable piece of work: a point in the
// (matrix × technique × kernel) space a figure needs.
type Unit struct {
	// Kind selects how deep the unit drives the pipeline.
	Kind UnitKind
	// Matrix names the corpus entry the unit operates on.
	Matrix string
	Tech   reorder.Technique // nil for UnitStats
	Kernel gpumodel.Kernel   // zero value for UnitStats/UnitPerm
	// Devices is the device count of a UnitSimMulti unit (zero for every
	// other kind).
	Devices int
	// Part names the UnitSimMulti partitioner (empty for every other kind).
	Part string
}

// StatsUnits covers matrix generation plus community detection for every
// entry — what the statistics-only figures (Correlations, Figure 4) need.
func StatsUnits(entries []gen.Entry) []Unit {
	units := make([]Unit, 0, len(entries))
	for _, e := range entries {
		units = append(units, Unit{Kind: UnitStats, Matrix: e.Name})
	}
	return units
}

// PermUnits crosses the entries with the techniques at permutation depth.
func PermUnits(entries []gen.Entry, techs []reorder.Technique) []Unit {
	units := make([]Unit, 0, len(entries)*len(techs))
	for _, e := range entries {
		for _, t := range techs {
			units = append(units, Unit{Kind: UnitPerm, Matrix: e.Name, Tech: t})
		}
	}
	return units
}

// SimUnits crosses the entries with the techniques and kernels at LRU
// simulation depth — the bulk of every figure's work.
func SimUnits(entries []gen.Entry, techs []reorder.Technique, kernels ...gpumodel.Kernel) []Unit {
	units := make([]Unit, 0, len(entries)*len(techs)*len(kernels))
	for _, e := range entries {
		for _, t := range techs {
			for _, k := range kernels {
				units = append(units, Unit{Kind: UnitSimLRU, Matrix: e.Name, Tech: t, Kernel: k})
			}
		}
	}
	return units
}

// BeladyUnits is SimUnits under Belady-optimal replacement (Figure 8).
func BeladyUnits(entries []gen.Entry, techs []reorder.Technique, kernels ...gpumodel.Kernel) []Unit {
	units := make([]Unit, 0, len(entries)*len(techs)*len(kernels))
	for _, e := range entries {
		for _, t := range techs {
			for _, k := range kernels {
				units = append(units, Unit{Kind: UnitSimBelady, Matrix: e.Name, Tech: t, Kernel: k})
			}
		}
	}
	return units
}

// MultiDevUnits crosses the entries with the techniques, device counts,
// and kernels at multi-device simulation depth, all split by the same
// partitioner.
func MultiDevUnits(entries []gen.Entry, techs []reorder.Technique, devices []int, part string, kernels ...gpumodel.Kernel) []Unit {
	units := make([]Unit, 0, len(entries)*len(techs)*len(devices)*len(kernels))
	for _, e := range entries {
		for _, t := range techs {
			for _, d := range devices {
				for _, k := range kernels {
					units = append(units, Unit{Kind: UnitSimMulti, Matrix: e.Name, Tech: t, Kernel: k, Devices: d, Part: part})
				}
			}
		}
	}
	return units
}

// Prefetch executes the units on the Runner's worker pool and blocks
// until all complete, returning the first error. Work already cached or
// in flight (submitted by a concurrent figure) is not redone. After a
// successful Prefetch, reading the same units through Matrix/Perm/
// SimLRU/SimBelady is a pure cache hit, so callers can aggregate serially
// in corpus order at no cost.
func (r *Runner) Prefetch(units []Unit) error {
	if r.Workers() == 1 {
		// Inline execution: one worker gains nothing from the pool, and on
		// a single-CPU host the goroutine + channel hops per unit cost real
		// time (BenchmarkSerialPathOverhead pins the bypass at <5% over a
		// bare loop). Every unit still runs — same warm-cache postcondition
		// as the pool path.
		var first error
		for _, u := range units {
			if err := r.runUnit(u); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var wg sync.WaitGroup
	errs := make([]error, len(units))
	for i, u := range units {
		i, u := i, u
		wg.Add(1)
		r.sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-r.sem }()
			errs[i] = r.runUnit(u)
		}()
	}
	wg.Wait()
	// First error in unit order, not completion order: the same failing
	// corpus reports the same error no matter how the pool interleaves.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runUnit drives one unit through the cache-backed accessors; dedup with
// concurrent identical units happens inside them.
func (r *Runner) runUnit(u Unit) error {
	md, err := r.Matrix(u.Matrix)
	if err != nil {
		return err
	}
	switch u.Kind {
	case UnitStats:
		md.Stats()
	case UnitPerm:
		r.Perm(md, u.Tech)
	case UnitSimLRU:
		r.SimLRU(md, u.Tech, u.Kernel)
	case UnitSimBelady:
		r.SimBelady(md, u.Tech, u.Kernel)
	case UnitSimMulti:
		r.SimMultiDev(md, u.Tech, u.Kernel, u.Devices, u.Part)
	}
	return nil
}

// forNames runs fn over the named matrices on the worker pool and returns
// the per-matrix results indexed in input order, regardless of completion
// order. fn may call any Runner accessor but must not call Prefetch,
// forNames, or forEntries (pool slots do not nest).
func forNames[T any](r *Runner, names []string, fn func(md *MatrixData) (T, error)) ([]T, error) {
	out := make([]T, len(names))
	errs := make([]error, len(names))
	if r.Workers() == 1 {
		// Same inline bypass as Prefetch: no goroutines when there is no
		// parallelism to buy.
		for i, name := range names {
			md, err := r.Matrix(name)
			if err != nil {
				errs[i] = err
				continue
			}
			out[i], errs[i] = fn(md)
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		r.sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-r.sem }()
			md, err := r.Matrix(name)
			if err != nil {
				errs[i] = err
				return
			}
			out[i], errs[i] = fn(md)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// forEntries is forNames over the runner's whole corpus subset, in corpus
// order.
func forEntries[T any](r *Runner, fn func(md *MatrixData) (T, error)) ([]T, error) {
	entries := r.Entries()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return forNames(r, names, fn)
}

// flightGroup deduplicates in-flight work by key: the first caller of a
// key runs fn while later callers of the same key block until it
// completes. Unlike a lock held across the computation, only callers of
// the same key wait; different keys proceed in parallel.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
}

// do runs fn under the key's flight. It returns true when this caller
// executed fn (the leader) and false when it waited for another caller's
// completed execution. fn must publish its result to the relevant cache
// before returning, so followers (and late arrivals) read it from there.
func (g *flightGroup) do(key string, fn func()) bool {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	fn()
	return true
}
