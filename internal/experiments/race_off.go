//go:build !race

package experiments

// raceEnabled reports whether this binary was built with the race
// detector; see race_on.go.
const raceEnabled = false
