package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/community"
	"repro/internal/gen"
	"repro/internal/gpumodel"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/reorder"
	"repro/internal/report"
	"repro/internal/sparse"
)

// SpGEMMMaxAmplification is the flop budget of the SpGEMM experiments:
// matrices whose symbolic flop count exceeds this multiple of nnz(A) are
// skipped and named in the table notes. Star-like graphs (a hub row times
// a hub column) amplify nnz(A) by thousands — mawi-like reaches 15000× on
// the Small corpus, with an output denser than the simulator's trace
// budget — while every community-structured matrix stays well under this
// cap, so the budget excludes exactly the degenerate products.
const SpGEMMMaxAmplification = 64

// SpGEMMInfo returns the cached symbolic analysis of the square product
// C = M·M: per-row output sizes, nnz(C), and the flop count. All three are
// invariant under symmetric relabeling, so one pass on the original
// ordering serves every technique.
func (md *MatrixData) SpGEMMInfo() kernels.SpGEMMInfo {
	md.spgemmOnce.Do(func() {
		info, err := kernels.SpGEMMSymbolic(md.M, md.M)
		if err != nil {
			// The corpus selection rule guarantees square matrices, so the
			// only shape error is a generator bug.
			panic(fmt.Sprintf("experiments: SpGEMM symbolic on %s: %v", md.Entry.Name, err))
		}
		md.spgemm = info
	})
	return md.spgemm
}

// SpGEMMKernel returns the kernel descriptor for C = M·M — row-wise or
// cluster-wise — with the symbolic Work terms attached, so normalization
// and trace-hint formulas have the data-dependent counts the SpGEMM kinds
// need. Kernel.String() excludes Work, so simulations keyed by a bare
// Kind-only kernel (scheduler prefetch units) share the cache with these.
func (md *MatrixData) SpGEMMKernel(cluster bool) gpumodel.Kernel {
	info := md.SpGEMMInfo()
	kind := gpumodel.SpGEMMCSR
	if cluster {
		kind = gpumodel.SpGEMMCSRCluster
	}
	return gpumodel.Kernel{Kind: kind, Work: gpumodel.SpGEMMWork{
		Flops: info.Flops,
		NNZB:  md.NNZ,
		NNZC:  info.NNZC,
	}}
}

// spgemmWithinBudget reports whether the matrix's product stays within the
// experiment flop budget.
func spgemmWithinBudget(md *MatrixData) bool {
	return md.SpGEMMInfo().Flops <= SpGEMMMaxAmplification*md.NNZ
}

// permuteRowNNZ carries per-row symbolic output sizes from the original
// ordering to the permuted one: row i moves to p[i].
func permuteRowNNZ(rowNNZ []int32, p sparse.Permutation) []int32 {
	out := make([]int32, len(rowNNZ))
	for i, v := range rowNNZ {
		out[p[i]] = v
	}
	return out
}

// spgemmEntries splits the runner's corpus subset into the entries within
// the flop budget and the skipped names, both in corpus order.
func spgemmEntries(r *Runner) (in []gen.Entry, skipped []string, err error) {
	for _, e := range r.Entries() {
		md, err := r.Matrix(e.Name)
		if err != nil {
			return nil, nil, err
		}
		if spgemmWithinBudget(md) {
			in = append(in, e)
		} else {
			skipped = append(skipped, e.Name)
		}
	}
	return in, skipped, nil
}

// SpGEMMTable extends the Table IV kernel-generality study to sparse ×
// sparse: C = A·A run time normalized to ideal under row-wise Gustavson
// execution, across every registered reordering technique, split by
// insularity class. Community reordering concentrates the B-row
// dereferences exactly as it concentrates SpMV's input-vector reads, so
// the technique ranking should transfer (arXiv 2507.21253).
func SpGEMMTable(r *Runner) (*report.Table, error) {
	techs := TableIVTechniques()
	included, skipped, err := spgemmEntries(r)
	if err != nil {
		return nil, err
	}
	if err := r.Prefetch(SimUnits(included, techs, gpumodel.Kernel{Kind: gpumodel.SpGEMMCSR})); err != nil {
		return nil, err
	}
	tb := report.New("SpGEMM generality: C = A·A run time normalized to ideal (row-wise Gustavson)",
		"technique", "ALL", "INS<0.95", "INS>=0.95")
	for _, t := range techs {
		var as, ls, hs []float64
		for _, e := range included {
			md, err := r.Matrix(e.Name)
			if err != nil {
				return nil, err
			}
			v := r.NormRuntime(md, t, md.SpGEMMKernel(false))
			as = append(as, v)
			if md.HighInsularity() {
				hs = append(hs, v)
			} else {
				ls = append(ls, v)
			}
		}
		tb.Add(t.Name(), report.X(metrics.Mean(as)), report.X(metrics.Mean(ls)), report.X(metrics.Mean(hs)))
	}
	if len(skipped) > 0 {
		tb.Note(fmt.Sprintf("flop budget: %d matrices with flops > %dx nnz(A) skipped: %s",
			len(skipped), SpGEMMMaxAmplification, strings.Join(skipped, ", ")))
	}
	tb.Note("the irregular operand is B's rows; community reordering should rank as it does for SpMV")
	return tb, nil
}

// AblSpGEMMCluster is the cluster-wise-vs-row-wise ablation: for each
// technique it compares simulated traffic and miss rate between row-wise
// Gustavson and cluster-wise execution tiled by community.Shards, and
// reports the matrix's compression ratio (flops per output nonzero)
// alongside the peak per-tile accumulator footprint — the on-chip state
// the cluster-wise schedule keeps resident between spills.
func AblSpGEMMCluster(r *Runner) (*report.Table, error) {
	techs := []reorder.Technique{
		reorder.Random{Seed: 0xC0FFEE},
		reorder.Original{},
		reorder.Rabbit{},
		reorder.RabbitPP{},
	}
	rowK := gpumodel.Kernel{Kind: gpumodel.SpGEMMCSR}
	cluK := gpumodel.Kernel{Kind: gpumodel.SpGEMMCSRCluster}
	tb := report.New("Ablation: SpGEMM cluster-wise vs row-wise execution (C = A·A traffic normalized to compulsory)",
		"matrix", "technique", "row-wise", "cluster-wise", "miss% row", "miss% cluster", "compress", "tile-acc-KB")
	missPct := func(s cachesim.Stats) string {
		if s.Accesses == 0 {
			return report.Pct(0)
		}
		return report.Pct(float64(s.Misses) / float64(s.Accesses))
	}
	err := ablate(r, tb, pickEntries(r, 3), func(md *MatrixData) ([][]string, error) {
		if !spgemmWithinBudget(md) {
			return nil, nil
		}
		info := md.SpGEMMInfo()
		kRow, kClu := md.SpGEMMKernel(false), md.SpGEMMKernel(true)
		var out [][]string
		for _, t := range techs {
			sRow := r.SimLRU(md, t, rowK)
			sClu := r.SimLRU(md, t, cluK)
			foot := kernels.SpGEMMTileFootprint(
				permuteRowNNZ(info.RowNNZ, r.Perm(md, t)),
				community.Shards(md.M.NumRows))
			out = append(out, []string{md.Entry.Name, t.Name(),
				report.X(gpumodel.NormalizedTraffic(sRow, kRow, md.N, md.NNZ)),
				report.X(gpumodel.NormalizedTraffic(sClu, kClu, md.N, md.NNZ)),
				missPct(sRow), missPct(sClu),
				report.F(info.CompressionRatio()),
				fmt.Sprintf("%.1f", float64(8*foot)/1024)})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("cluster-wise loads each B row once per community tile; the traffic gap is the captured reuse")
	tb.Note(fmt.Sprintf("flop budget: matrices with flops > %dx nnz(A) are omitted", SpGEMMMaxAmplification))
	return tb, nil
}
