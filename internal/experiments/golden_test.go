package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenExperiments are the suite members pinned by committed golden
// renders: the headline traffic figure, the design-space table, the
// observation statistics, and the advisor evaluation. Together they cover
// every SimLRU path, the class-mean aggregation, the argmax-style
// reductions, and the committed advisor model's behaviour — if the
// scheduler ever reordered an aggregation, dropped a unit, or the advisor
// artifact drifted from its features, at least one of these drifts.
var goldenExperiments = []string{"fig2", "table2", "obs", "advisor", "abl-spgemm", "multidev", "abl-multidev"}

// TestGolden regenerates each pinned experiment on the Small-corpus test
// subset at Workers=1 (the historical serial behaviour) and at
// Workers=NumCPU, and diffs both renders against testdata/golden/<id>.tsv
// — parallelization must provably change no numbers. Regenerate the
// goldens after an intentional modeling change with:
//
//	go test ./internal/experiments -run TestGolden -update
func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates three experiments twice; skipped in -short")
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := SmallConfig()
			cfg.Matrices = subset
			cfg.Workers = workers
			r := NewRunner(cfg)
			for _, id := range goldenExperiments {
				id := id
				t.Run(id, func(t *testing.T) {
					// The multidev sweep (full registry x K x SpMV+SpGEMM,
					// twice) is the one golden whose ~5x race slowdown blows
					// the -race suite's timeout. Its determinism is still
					// pinned by the non-race TestGolden gate in check.sh, and
					// the multidev code paths keep race coverage through
					// TestMultiDev* and the internal/multidev package tests.
					if raceEnabled && id == "multidev" {
						t.Skip("multidev golden is too slow under the race detector; gated non-race in check.sh")
					}
					e, err := ByID(id)
					if err != nil {
						t.Fatal(err)
					}
					tb, err := e.Run(r)
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := tb.RenderTSV(&buf); err != nil {
						t.Fatal(err)
					}
					path := filepath.Join("testdata", "golden", id+".tsv")
					if *update && workers == 1 {
						if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
							t.Fatal(err)
						}
						if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
							t.Fatal(err)
						}
						return
					}
					want, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("missing golden file (regenerate with -update): %v", err)
					}
					if !bytes.Equal(buf.Bytes(), want) {
						t.Fatalf("%s drifted from %s at workers=%d\n--- got ---\n%s--- want ---\n%s"+
							"regenerate after an intentional change with: go test ./internal/experiments -run TestGolden -update",
							id, path, workers, buf.String(), want)
					}
				})
			}
		})
	}
}
