package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gpumodel"
	"repro/internal/reorder"
)

// subset is a fast, structurally diverse corpus slice used by the tests:
// one high-insularity social graph, one mesh, one hubby web graph, one
// random graph, and the two corner cases.
var subset = []string{"soc-tight-2", "cfd-2d-5pt", "pld-arc-like", "er-deg16", "mawi-like", "wiki-talk-like"}

func testRunner(t testing.TB, names ...string) *Runner {
	t.Helper()
	cfg := SmallConfig()
	if names == nil {
		names = subset
	}
	cfg.Matrices = names
	return NewRunner(cfg)
}

func TestRunnerMatrixCaching(t *testing.T) {
	r := testRunner(t)
	a, err := r.Matrix("er-deg16")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Matrix("er-deg16")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Matrix() did not cache")
	}
	if _, err := r.Matrix("no-such"); err == nil {
		t.Fatal("unknown matrix accepted")
	}
}

func TestRunnerEntriesSubset(t *testing.T) {
	r := testRunner(t)
	entries := r.Entries()
	if len(entries) != len(subset) {
		t.Fatalf("Entries() = %d, want %d", len(entries), len(subset))
	}
	full := NewRunner(SmallConfig())
	if len(full.Entries()) != 50 {
		t.Fatalf("full corpus Entries() = %d, want 50", len(full.Entries()))
	}
}

func TestPermCachingSharesRabbit(t *testing.T) {
	r := testRunner(t)
	md, err := r.Matrix("er-deg16")
	if err != nil {
		t.Fatal(err)
	}
	p1 := r.Perm(md, reorder.Rabbit{})
	p2 := r.Perm(md, reorder.Rabbit{})
	if &p1[0] != &p2[0] {
		t.Fatal("Perm() did not cache")
	}
	// RabbitPP must reuse the cached detection, and its permutation must
	// differ in general but stay valid.
	pp := r.Perm(md, reorder.RabbitPP{})
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimLRUCaches(t *testing.T) {
	r := testRunner(t)
	md, err := r.Matrix("er-deg16")
	if err != nil {
		t.Fatal(err)
	}
	s1 := r.SimLRU(md, reorder.Original{}, SpMV)
	s2 := r.SimLRU(md, reorder.Original{}, SpMV)
	if s1 != s2 {
		t.Fatal("SimLRU not deterministic/cached")
	}
	if s1.Misses < s1.Compulsory || s1.Compulsory == 0 {
		t.Fatalf("implausible stats: %+v", s1)
	}
}

func TestOrderingQualityOnStructuredMatrix(t *testing.T) {
	// End-to-end phenomenon check on one community-structured matrix:
	// RANDOM must be worst, and RABBIT must beat it substantially.
	r := testRunner(t)
	md, err := r.Matrix("soc-tight-2")
	if err != nil {
		t.Fatal(err)
	}
	random := r.NormTraffic(md, reorder.Random{Seed: 1}, SpMV)
	rabbit := r.NormTraffic(md, reorder.Rabbit{}, SpMV)
	if rabbit*2 >= random {
		t.Fatalf("RABBIT traffic %.2f not far below RANDOM %.2f on a community graph", rabbit, random)
	}

	// A mesh (very high insularity after detection) must land near ideal.
	mesh, err := r.Matrix("cfd-2d-5pt")
	if err != nil {
		t.Fatal(err)
	}
	if nt := r.NormTraffic(mesh, reorder.Rabbit{}, SpMV); nt > 1.35 {
		t.Fatalf("RABBIT traffic %.2f on a mesh; expected near ideal", nt)
	}
}

func TestBeladyBelowLRU(t *testing.T) {
	r := testRunner(t)
	md, err := r.Matrix("er-deg16")
	if err != nil {
		t.Fatal(err)
	}
	lru := r.SimLRU(md, reorder.Original{}, SpMV)
	opt := r.SimBelady(md, reorder.Original{}, SpMV)
	if opt.Misses > lru.Misses {
		t.Fatalf("Belady misses %d exceed LRU %d", opt.Misses, lru.Misses)
	}
}

func TestExperimentsSmoke(t *testing.T) {
	// Run every registered experiment on the subset; each must produce a
	// non-empty table.
	if testing.Short() {
		t.Skip("experiment suite on subset is a few seconds; skipped in -short")
	}
	r := testRunner(t)
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(r)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			var buf bytes.Buffer
			if err := tb.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("empty render")
			}
		})
	}
}

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Paper != e.Paper {
			t.Fatalf("ByID(%q) resolved to %q", e.ID, got.Paper)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(func() string { _, err := ByID("nope"); return err.Error() }(), "fig2") {
		t.Fatal("error should list known ids")
	}
}

func TestKernelsOnRunner(t *testing.T) {
	// COO and SpMM simulations produce sane normalized traffic (>= ~1).
	r := testRunner(t)
	md, err := r.Matrix("er-deg16")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []gpumodel.Kernel{
		{Kind: gpumodel.SpMVCOO},
		{Kind: gpumodel.SpMMCSR, K: 4},
		{Kind: gpumodel.SpMMCSR, K: 256},
	} {
		nt := r.NormTraffic(md, reorder.Original{}, k)
		if nt < 0.5 || nt > 100 {
			t.Fatalf("%s normalized traffic = %v, implausible", k.String(), nt)
		}
	}
}

func TestWikiTalkBelowIdeal(t *testing.T) {
	// Footnote 2: matrices dominated by empty rows can measure below the
	// analytic "ideal" because the formula counts the whole input vector.
	r := testRunner(t)
	md, err := r.Matrix("wiki-talk-like")
	if err != nil {
		t.Fatal(err)
	}
	nt := r.NormTraffic(md, reorder.RabbitPP{}, SpMV)
	if nt >= 1.3 {
		t.Fatalf("wiki-talk-like normalized traffic %.2f; expected near or below 1 (formula overestimates)", nt)
	}
}

func TestFig2TableShape(t *testing.T) {
	r := testRunner(t, "er-deg16", "mawi-like")
	tb, err := Fig2(r)
	if err != nil {
		t.Fatal(err)
	}
	// One row per matrix plus the two mean rows; 2 label columns plus the
	// six Figure 2 techniques.
	if len(tb.Rows) != 4 {
		t.Fatalf("Fig2 rows = %d, want 4", len(tb.Rows))
	}
	if len(tb.Columns) != 8 {
		t.Fatalf("Fig2 columns = %d, want 8", len(tb.Columns))
	}
	if tb.Rows[2][0] != "MEAN-TRAFFIC" || tb.Rows[3][0] != "MEAN-RUNTIME" {
		t.Fatalf("mean rows misplaced: %v / %v", tb.Rows[2][0], tb.Rows[3][0])
	}
}

func TestObservationsShape(t *testing.T) {
	r := testRunner(t, "er-deg16", "cfd-2d-5pt")
	tb, err := Observations(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Observations rows = %d, want 3", len(tb.Rows))
	}
}
