package experiments

import (
	"fmt"
	"strings"

	"repro/internal/gpumodel"
	"repro/internal/metrics"
	"repro/internal/multidev"
	"repro/internal/partition"
	"repro/internal/reorder"
	"repro/internal/report"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Partitioner names accepted by the multi-device experiments and
// cmd/cachesim -partition.
const (
	// PartRowBlock splits the reordered matrix into contiguous equal row
	// blocks — the schedule a runtime applies after reordering, and the
	// split every registered technique is judged under in MultiDevTable.
	PartRowBlock = "rowblock"
	// PartMetis runs the multilevel partitioner on the reordered matrix.
	PartMetis = "metis"
	// PartCommunity packs whole RABBIT communities onto devices
	// (partition.FromCommunities), carried through the technique's
	// permutation.
	PartCommunity = "community"
)

// MultiDevKs is the device-count sweep of the multidev experiment family.
// K=1 doubles as the embedded flat baseline the differential test pins.
var MultiDevKs = []int{1, 4, 16}

// multiDevOwner computes the per-row device labels of the reordered
// matrix pm under the named partitioner. The labels index rows of pm
// (the permuted matrix), which is what the owned trace generators take.
func (r *Runner) multiDevOwner(md *MatrixData, tech reorder.Technique, pm *sparse.CSR, devices int, part string) []int32 {
	switch part {
	case PartRowBlock:
		return partition.RowBlocks(pm.NumRows, int32(devices))
	case PartMetis:
		return partition.Partition(pm, partition.Options{Parts: int32(devices)})
	case PartCommunity:
		labels := partition.FromCommunities(md.Rabbit().Communities, int32(devices))
		p := r.Perm(md, tech)
		out := make([]int32, len(labels))
		for v, l := range labels {
			out[p[v]] = l
		}
		return out
	default:
		// Partitioner names come from this package's constants or a CLI
		// that validates first, so an unknown name is a programming error.
		panic(fmt.Sprintf("experiments: unknown partitioner %q", part))
	}
}

// ownedTraceFor builds the device-attributed reference stream of the
// kernel over the reordered matrix. Only the kernels the multidev family
// sweeps have owned generators; the cluster and CSC variants do not.
func (r *Runner) ownedTraceFor(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel, owner []int32) trace.OwnedTrace {
	pm := md.M.PermuteSymmetric(r.Perm(md, tech))
	line := r.cfg.Device.L2.LineBytes
	switch k.Kind {
	case gpumodel.SpMVCSR:
		return trace.SpMVCSROwned(pm, owner, line)
	case gpumodel.SpMVCOO:
		return trace.SpMVCOOOwned(sparse.CSRToCOO(pm), owner, line)
	case gpumodel.SpMMCSR:
		return trace.SpMMCSROwned(pm, k.K, owner, line)
	case gpumodel.SpGEMMCSR:
		return trace.SpGEMMOwned(pm, pm, permuteRowNNZ(md.SpGEMMInfo().RowNNZ, r.Perm(md, tech)), owner, line)
	default:
		panic(fmt.Sprintf("experiments: kernel %s has no owned trace", k.String()))
	}
}

// SimMultiDev simulates the kernel on devices private caches with the
// named partitioner, caching by (technique, kernel, K, partitioner)
// exactly like SimLRU. The per-device geometry is the configured flat L2
// split K ways (constant silicon), so K=1 is the flat path bit for bit.
func (r *Runner) SimMultiDev(md *MatrixData, tech reorder.Technique, k gpumodel.Kernel, devices int, part string) multidev.Stats {
	key := fmt.Sprintf("%s|%s|K%d|%s", tech.Name(), k.String(), devices, part)
	md.mu.Lock()
	s, ok := md.mdsims[key]
	md.mu.Unlock()
	if ok {
		return s
	}
	r.flight.do(md.Entry.Name+"|mdev|"+key, func() {
		md.mu.Lock()
		_, done := md.mdsims[key]
		md.mu.Unlock()
		if done {
			return
		}
		pm := md.M.PermuteSymmetric(r.Perm(md, tech))
		owner := r.multiDevOwner(md, tech, pm, devices, part)
		cfg := multidev.Config{
			Devices: devices,
			L2:      r.cfg.Device.L2.Split(devices),
			Impl:    r.cfg.Impl,
		}
		s := multidev.Simulate(cfg, r.ownedTraceFor(md, tech, k, owner))
		r.countUnit("mdev|" + md.Entry.Name + "|" + key)
		md.mu.Lock()
		md.mdsims[key] = s
		md.mu.Unlock()
		r.progress("multidev  %-24s %-16s %-12s K=%-3d %s remote=%s", md.Entry.Name, tech.Name(), k.String(),
			devices, part, report.Pct(s.RemoteFraction()))
	})
	md.mu.Lock()
	s = md.mdsims[key]
	md.mu.Unlock()
	return s
}

// MultiDevTable sweeps the full reorder registry across device counts for
// SpMV and SpGEMM under the row-block split: projected multi-device run
// time (each device at 1/K bandwidth, remote lines charged the
// interconnect penalty, slowest device finishes last) normalized to the
// flat single-device ideal. The K=1 columns are the flat baseline; the
// K=4/K=16 columns answer whether a technique's single-cache gains
// survive partitioning.
func MultiDevTable(r *Runner) (*report.Table, error) {
	techs := TableIVTechniques()
	spmvK := gpumodel.Kernel{Kind: gpumodel.SpMVCSR}
	spgemmK := gpumodel.Kernel{Kind: gpumodel.SpGEMMCSR}
	included, skipped, err := spgemmEntries(r)
	if err != nil {
		return nil, err
	}
	units := MultiDevUnits(r.Entries(), techs, MultiDevKs, PartRowBlock, spmvK)
	units = append(units, MultiDevUnits(included, techs, MultiDevKs, PartRowBlock, spgemmK)...)
	if err := r.Prefetch(units); err != nil {
		return nil, err
	}
	cols := []string{"technique"}
	for _, k := range MultiDevKs {
		cols = append(cols, fmt.Sprintf("SpMV K=%d", k))
	}
	for _, k := range MultiDevKs {
		cols = append(cols, fmt.Sprintf("SpGEMM K=%d", k))
	}
	tb := report.New("Multi-device: run time vs device count (row-block split, normalized to flat ideal)", cols...)
	for _, t := range techs {
		row := []string{t.Name()}
		for _, devs := range MultiDevKs {
			d := r.cfg.Device.WithDevices(devs)
			var vs []float64
			for _, e := range r.Entries() {
				md, err := r.Matrix(e.Name)
				if err != nil {
					return nil, err
				}
				s := r.SimMultiDev(md, t, spmvK, devs, PartRowBlock)
				vs = append(vs, multidev.NormalizedRuntime(d, s, spmvK, md.N, md.NNZ))
			}
			row = append(row, report.X(metrics.Mean(vs)))
		}
		for _, devs := range MultiDevKs {
			d := r.cfg.Device.WithDevices(devs)
			var vs []float64
			for _, e := range included {
				md, err := r.Matrix(e.Name)
				if err != nil {
					return nil, err
				}
				s := r.SimMultiDev(md, t, spgemmK, devs, PartRowBlock)
				vs = append(vs, multidev.NormalizedRuntime(d, s, md.SpGEMMKernel(false), md.N, md.NNZ))
			}
			row = append(row, report.X(metrics.Mean(vs)))
		}
		tb.Add(row...)
	}
	if len(skipped) > 0 {
		tb.Note(fmt.Sprintf("SpGEMM flop budget: %d matrices skipped: %s", len(skipped), strings.Join(skipped, ", ")))
	}
	tb.Note(fmt.Sprintf("each of K devices owns 1/K of the L2 and 1/K of the bandwidth; remote lines cost %.0fx",
		r.cfg.Device.RemotePenalty))
	tb.Note("K=1 is the flat single-L2 path (bit-identical to the Table IV simulations)")
	return tb, nil
}

// AblMultiDev is the help-or-hurt ablation the ROADMAP asks for: RANDOM
// vs the community reorderings at K=4 and K=16, under both the
// community-oblivious row-block split and the community-aligned split,
// reporting per-device traffic, remote-traffic fraction, and load
// imbalance. If community reordering helps under partitioning, RABBIT's
// rows must show lower remote fractions than RANDOM's at equal K.
func AblMultiDev(r *Runner) (*report.Table, error) {
	techs := []reorder.Technique{
		reorder.Random{Seed: 0xC0FFEE},
		reorder.Rabbit{},
		reorder.RabbitPP{},
	}
	parts := []string{PartRowBlock, PartCommunity}
	ks := []int{4, 16}
	tb := report.New("Ablation: multi-device partition interaction (SpMV)",
		"matrix", "technique", "K", "partition", "traffic", "remote%", "imbalance", "max-dev", "mean-dev")
	err := ablate(r, tb, pickEntries(r, 3), func(md *MatrixData) ([][]string, error) {
		var out [][]string
		for _, t := range techs {
			for _, k := range ks {
				for _, part := range parts {
					s := r.SimMultiDev(md, t, SpMV, k, part)
					out = append(out, []string{md.Entry.Name, t.Name(), fmt.Sprintf("%d", k), part,
						report.X(gpumodel.NormalizedTraffic(s.Flat(), SpMV, md.N, md.NNZ)),
						report.Pct(s.RemoteFraction()),
						report.F(s.Imbalance()),
						report.Bytes(s.MaxDeviceTrafficBytes()),
						report.Bytes(int64(s.MeanDeviceTrafficBytes()))})
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	tb.Note("remote%% is the fraction of DRAM traffic crossing the interconnect; imbalance is max/mean device bytes")
	tb.Note("community packs whole RABBIT clusters per device; rowblock cuts the reordered matrix into equal stripes")
	return tb, nil
}
