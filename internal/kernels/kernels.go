// Package kernels provides executable sparse linear algebra kernels — SpMV
// over CSR and COO and SpMM over CSR — matching the kernels the paper
// evaluates with cuSPARSE (Algorithm 1 and Section VI-D). These run for
// real (they back the correctness tests and CPU benchmarks), while
// internal/trace generates the corresponding memory reference streams for
// cache simulation.
package kernels

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/check"
	"repro/internal/sparse"
)

// SpMVCSR computes y = A·x for a CSR matrix, the paper's Algorithm 1. The
// destination slice must have NumRows entries and is overwritten.
func SpMVCSR(a *sparse.CSR, x, y []float32) error {
	check.AssertCSR(a)
	if len(x) != int(a.NumCols) {
		return fmt.Errorf("kernels: x has %d entries for %d columns", len(x), a.NumCols)
	}
	if len(y) != int(a.NumRows) {
		return fmt.Errorf("kernels: y has %d entries for %d rows", len(y), a.NumRows)
	}
	spmvCSRRows(a, x, y, 0, a.NumRows)
	return nil
}

// spmvCSRRows accumulates rows [lo, hi) of y = A·x — the inner loop both
// the serial and the parallel CSR kernels share. Validation (and its
// escaping fmt.Errorf operands) stays in the exported wrappers so this
// body holds the zero-allocation contract.
//
//repro:noalloc
func spmvCSRRows(a *sparse.CSR, x, y []float32, lo, hi int32) {
	for row := lo; row < hi; row++ {
		start, end := a.RowOffsets[row], a.RowOffsets[row+1]
		var sum float32
		for i := start; i < end; i++ {
			sum += a.Values[i] * x[a.ColIndices[i]]
		}
		y[row] = sum
	}
}

// SpMVCSRParallel computes y = A·x using all available cores, partitioning
// rows into contiguous chunks. Results are bit-identical to SpMVCSR because
// each row is accumulated by exactly one goroutine in index order.
func SpMVCSRParallel(a *sparse.CSR, x, y []float32) error {
	check.AssertCSR(a)
	if len(x) != int(a.NumCols) {
		return fmt.Errorf("kernels: x has %d entries for %d columns", len(x), a.NumCols)
	}
	if len(y) != int(a.NumRows) {
		return fmt.Errorf("kernels: y has %d entries for %d rows", len(y), a.NumRows)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > int(a.NumRows) {
		workers = int(a.NumRows)
	}
	if workers <= 1 {
		return SpMVCSR(a, x, y)
	}
	var wg sync.WaitGroup
	chunk := (int(a.NumRows) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := int32(w * chunk)
		hi := lo + int32(chunk)
		if hi > a.NumRows {
			hi = a.NumRows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			spmvCSRRows(a, x, y, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// SpMVCOO computes y = A·x for a COO matrix. y must be zeroed by the
// caller or hold the accumulation base; entries are accumulated in storage
// order, matching the streaming access pattern of cuSPARSE's COO kernel.
func SpMVCOO(a *sparse.COO, x, y []float32) error {
	if len(x) != int(a.NumCols) {
		return fmt.Errorf("kernels: x has %d entries for %d columns", len(x), a.NumCols)
	}
	if len(y) != int(a.NumRows) {
		return fmt.Errorf("kernels: y has %d entries for %d rows", len(y), a.NumRows)
	}
	spmvCOOCore(a, x, y)
	return nil
}

// spmvCOOCore is the COO accumulation loop, kept allocation-free.
//
//repro:noalloc
func spmvCOOCore(a *sparse.COO, x, y []float32) {
	for k := range a.RowIdx {
		y[a.RowIdx[k]] += a.Values[k] * x[a.ColIdx[k]]
	}
}

// Dense is a row-major dense matrix used as the SpMM operand: the paper
// evaluates |N|×4 and |N|×256 dense right-hand sides (Table IV).
type Dense struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int32
	Data       []float32 // len Rows*Cols, row-major
}

// NewDense allocates a zeroed dense matrix.
func NewDense(rows, cols int32) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float32, int(rows)*int(cols))}
}

// At returns element (r, c).
func (d *Dense) At(r, c int32) float32 { return d.Data[int(r)*int(d.Cols)+int(c)] }

// Set stores element (r, c).
func (d *Dense) Set(r, c int32, v float32) { d.Data[int(r)*int(d.Cols)+int(c)] = v }

// Row returns row r as a sub-slice.
func (d *Dense) Row(r int32) []float32 {
	return d.Data[int(r)*int(d.Cols) : (int(r)+1)*int(d.Cols)]
}

// SpMMCSR computes C = A·B for CSR A and dense B, writing into dense C.
// B must have A.NumCols rows; C must be A.NumRows × B.Cols.
func SpMMCSR(a *sparse.CSR, b, c *Dense) error {
	check.AssertCSR(a)
	if b.Rows != a.NumCols {
		return fmt.Errorf("kernels: B has %d rows for %d matrix columns", b.Rows, a.NumCols)
	}
	if c.Rows != a.NumRows || c.Cols != b.Cols {
		return fmt.Errorf("kernels: C is %dx%d, want %dx%d", c.Rows, c.Cols, a.NumRows, b.Cols)
	}
	spmmCSRCore(a, b, c)
	return nil
}

// spmmCSRCore is the SpMM row loop; Row returns sub-slices of existing
// backing arrays, so the body allocates nothing.
//
//repro:noalloc
func spmmCSRCore(a *sparse.CSR, b, c *Dense) {
	for row := int32(0); row < a.NumRows; row++ {
		out := c.Row(row)
		for i := range out {
			out[i] = 0
		}
		start, end := a.RowOffsets[row], a.RowOffsets[row+1]
		for i := start; i < end; i++ {
			v := a.Values[i]
			in := b.Row(a.ColIndices[i])
			for k := range out {
				out[k] += v * in[k]
			}
		}
	}
}

// DenseSpMVReference computes y = A·x by materializing nothing: it walks
// all (row, col, val) triplets the slow way and is the oracle the fast
// kernels are checked against.
func DenseSpMVReference(a *sparse.CSR, x []float32) []float32 {
	y := make([]float32, a.NumRows)
	for r := int32(0); r < a.NumRows; r++ {
		cols, vals := a.Row(r)
		var sum float32
		for k, c := range cols {
			sum += vals[k] * x[c]
		}
		y[r] = sum
	}
	return y
}

// SpMVCSC computes y = A·x for a CSC matrix in pull style: each column j
// scatters x[j] into the rows of its nonzeros. y must be zeroed by the
// caller (or hold the accumulation base). The irregular operand is now the
// *output* vector, the mirror image of the CSR kernel's input-vector
// irregularity.
func SpMVCSC(a *sparse.CSC, x, y []float32) error {
	if len(x) != int(a.NumCols) {
		return fmt.Errorf("kernels: x has %d entries for %d columns", len(x), a.NumCols)
	}
	if len(y) != int(a.NumRows) {
		return fmt.Errorf("kernels: y has %d entries for %d rows", len(y), a.NumRows)
	}
	spmvCSCCore(a, x, y)
	return nil
}

// spmvCSCCore is the CSC scatter loop, kept allocation-free.
//
//repro:noalloc
func spmvCSCCore(a *sparse.CSC, x, y []float32) {
	for col := int32(0); col < a.NumCols; col++ {
		rows, vals := a.Col(col)
		xj := x[col]
		for k, r := range rows {
			y[r] += vals[k] * xj
		}
	}
}
