package kernels

import (
	"sync"
	"testing"

	"repro/internal/gen"
)

// TestSpMVCSRParallelConcurrentCallers hammers the parallel kernel from
// many goroutines sharing one matrix and one input vector. Each caller owns
// its output slice, so under -race this fails if the kernel's internal
// fan-out ever writes outside its caller's y or reads shared state
// unsafely.
func TestSpMVCSRParallelConcurrentCallers(t *testing.T) {
	m := gen.HubbyCommunities{
		Nodes: 2000, Communities: 10, AvgDegree: 12, Mu: 0.2, Hubs: 50, HubDegree: 40,
	}.Generate(7)
	x := randomVec(gen.NewRNG(11), m.NumCols)
	want := DenseSpMVReference(m, x)

	const callers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make([]error, callers)
	results := make([][]float32, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			y := make([]float32, m.NumRows)
			for r := 0; r < rounds; r++ {
				if err := SpMVCSRParallel(m, x, y); err != nil {
					errs[c] = err
					return
				}
			}
			results[c] = y
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if !approxEqual(results[c], want, 1e-4) {
			t.Fatalf("caller %d diverged from the dense reference", c)
		}
	}
}
