package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sparse"
)

func approxEqual(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > tol*(1+math.Abs(float64(a[i]))) {
			return false
		}
	}
	return true
}

func randomVec(r *gen.RNG, n int32) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = r.Float32()*2 - 1
	}
	return x
}

func TestSpMVCSRKnownValues(t *testing.T) {
	// [[2 0 1], [0 3 0], [4 0 5]] * [1 2 3] = [5 6 19]
	coo := sparse.NewCOO(3, 3, 5)
	coo.Add(0, 0, 2)
	coo.Add(0, 2, 1)
	coo.Add(1, 1, 3)
	coo.Add(2, 0, 4)
	coo.Add(2, 2, 5)
	m := coo.ToCSR()
	x := []float32{1, 2, 3}
	y := make([]float32, 3)
	if err := SpMVCSR(m, x, y); err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 6, 19}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestSpMVShapeErrors(t *testing.T) {
	m := &sparse.CSR{NumRows: 2, NumCols: 3, RowOffsets: []int32{0, 0, 0}}
	if err := SpMVCSR(m, make([]float32, 2), make([]float32, 2)); err == nil {
		t.Fatal("wrong x length accepted")
	}
	if err := SpMVCSR(m, make([]float32, 3), make([]float32, 3)); err == nil {
		t.Fatal("wrong y length accepted")
	}
	if err := SpMVCSRParallel(m, make([]float32, 2), make([]float32, 2)); err == nil {
		t.Fatal("parallel: wrong x length accepted")
	}
	coo := sparse.NewCOO(2, 3, 0)
	if err := SpMVCOO(coo, make([]float32, 2), make([]float32, 2)); err == nil {
		t.Fatal("COO: wrong x length accepted")
	}
}

func TestSpMVMatchesReference(t *testing.T) {
	r := gen.NewRNG(1)
	m := gen.ErdosRenyi{Nodes: 500, AvgDegree: 7}.Generate(2)
	x := randomVec(r, m.NumCols)
	want := DenseSpMVReference(m, x)

	y := make([]float32, m.NumRows)
	if err := SpMVCSR(m, x, y); err != nil {
		t.Fatal(err)
	}
	if !approxEqual(y, want, 1e-5) {
		t.Fatal("SpMVCSR disagrees with reference")
	}

	yp := make([]float32, m.NumRows)
	if err := SpMVCSRParallel(m, x, yp); err != nil {
		t.Fatal(err)
	}
	if !approxEqual(yp, want, 1e-5) {
		t.Fatal("SpMVCSRParallel disagrees with reference")
	}

	yc := make([]float32, m.NumRows)
	if err := SpMVCOO(sparse.CSRToCOO(m), x, yc); err != nil {
		t.Fatal(err)
	}
	if !approxEqual(yc, want, 1e-4) {
		t.Fatal("SpMVCOO disagrees with reference")
	}
}

func TestSpMMMatchesColumnwiseSpMV(t *testing.T) {
	r := gen.NewRNG(3)
	m := gen.ErdosRenyi{Nodes: 200, AvgDegree: 6}.Generate(4)
	const k = 5
	b := NewDense(m.NumCols, k)
	for i := range b.Data {
		b.Data[i] = r.Float32()
	}
	c := NewDense(m.NumRows, k)
	if err := SpMMCSR(m, b, c); err != nil {
		t.Fatal(err)
	}
	// Column j of C must equal SpMV with column j of B.
	for j := int32(0); j < k; j++ {
		x := make([]float32, m.NumCols)
		for i := int32(0); i < m.NumCols; i++ {
			x[i] = b.At(i, j)
		}
		want := DenseSpMVReference(m, x)
		got := make([]float32, m.NumRows)
		for i := int32(0); i < m.NumRows; i++ {
			got[i] = c.At(i, j)
		}
		if !approxEqual(got, want, 1e-5) {
			t.Fatalf("SpMM column %d disagrees with SpMV", j)
		}
	}
}

func TestSpMMShapeErrors(t *testing.T) {
	m := &sparse.CSR{NumRows: 2, NumCols: 3, RowOffsets: []int32{0, 0, 0}}
	if err := SpMMCSR(m, NewDense(2, 4), NewDense(2, 4)); err == nil {
		t.Fatal("B with wrong row count accepted")
	}
	if err := SpMMCSR(m, NewDense(3, 4), NewDense(3, 4)); err == nil {
		t.Fatal("C with wrong shape accepted")
	}
}

// TestReorderingPreservesSpMV is the paper's central correctness
// requirement: reordering is a pre-processing optimization that must not
// change kernel semantics. For any permutation P, SpMV(P·A·Pᵀ, P·x) must
// equal P·SpMV(A, x).
func TestReorderingPreservesSpMV(t *testing.T) {
	m := gen.HubbyCommunities{Nodes: 600, Communities: 6, AvgDegree: 8, Mu: 0.3, Hubs: 20, HubDegree: 25}.Generate(5)
	r := gen.NewRNG(6)
	x := randomVec(r, m.NumCols)
	base := DenseSpMVReference(m, x)

	perms := map[string]sparse.Permutation{
		"rabbit":   core.Rabbit(m).Perm,
		"rabbit++": core.RabbitPlusPlus(m).Perm,
		"random":   sparse.Permutation(gen.NewRNG(7).Perm(m.NumRows)),
		"identity": sparse.Identity(m.NumRows),
	}
	for name, p := range perms {
		t.Run(name, func(t *testing.T) {
			pm := m.PermuteSymmetric(p)
			px := p.PermuteVector(x)
			py := make([]float32, pm.NumRows)
			if err := SpMVCSR(pm, px, py); err != nil {
				t.Fatal(err)
			}
			want := p.PermuteVector(base)
			if !approxEqual(py, want, 1e-4) {
				t.Fatal("reordering changed SpMV results")
			}
		})
	}
}

func TestQuickSerialParallelAgree(t *testing.T) {
	f := func(seed uint64) bool {
		m := gen.ErdosRenyi{Nodes: 300, AvgDegree: 5}.Generate(seed)
		x := randomVec(gen.NewRNG(seed), m.NumCols)
		a := make([]float32, m.NumRows)
		b := make([]float32, m.NumRows)
		if SpMVCSR(m, x, a) != nil || SpMVCSRParallel(m, x, b) != nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseAccessors(t *testing.T) {
	d := NewDense(3, 4)
	d.Set(1, 2, 7)
	if d.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v", d.At(1, 2))
	}
	row := d.Row(1)
	if len(row) != 4 || row[2] != 7 {
		t.Fatalf("Row(1) = %v", row)
	}
}
