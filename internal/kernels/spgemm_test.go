package kernels

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/reorder"
	"repro/internal/sparse"
)

// spgemmPair is one (A, B) operand pair of the differential corpus.
type spgemmPair struct {
	name string
	a, b *sparse.CSR
}

// intCSR builds a random integer-valued CSR (values 1..8, exact in
// float32) with roughly deg nonzeros per row.
func intCSR(rng *rand.Rand, rows, cols int32, deg int) *sparse.CSR {
	coo := sparse.NewCOO(rows, cols, int(rows)*deg)
	for r := int32(0); r < rows; r++ {
		for d := 0; d < deg; d++ {
			coo.Add(r, rng.Int31n(cols), float32(1+rng.Intn(8)))
		}
	}
	return coo.ToCSR()
}

// spgemmCorpus is the pathological differential corpus: degenerate shapes,
// duplicate-heavy assemblies, rectangular chains, and random products. All
// values are small positive integers so the int64 dense oracle is exact.
func spgemmCorpus() []spgemmPair {
	rng := rand.New(rand.NewSource(0xD1FF))
	var out []spgemmPair
	add := func(name string, a, b *sparse.CSR) {
		out = append(out, spgemmPair{name: name, a: a, b: b})
	}

	empty := sparse.NewCOO(0, 0, 0).ToCSR()
	add("empty-0x0", empty, empty)

	// Zero-extent rectangles: a 3x0 times 0x4 product is an all-zero 3x4.
	add("rect-3x0-0x4", sparse.NewCOO(3, 0, 0).ToCSR(), sparse.NewCOO(0, 4, 0).ToCSR())

	single := sparse.NewCOO(1, 1, 1)
	single.Add(0, 0, 3)
	add("single-entry", single.ToCSR(), single.ToCSR())

	add("single-row-empty", sparse.NewCOO(1, 1, 0).ToCSR(), sparse.NewCOO(1, 1, 0).ToCSR())

	diag := sparse.NewCOO(17, 17, 17)
	for i := int32(0); i < 17; i++ {
		diag.Add(i, i, float32(1+i%7))
	}
	add("diagonal-only", diag.ToCSR(), diag.ToCSR())

	hub := sparse.NewCOO(24, 24, 48)
	for c := int32(1); c < 24; c++ {
		hub.AddSym(0, c, 2)
	}
	add("single-dense-row", hub.ToCSR(), hub.ToCSR())

	// Duplicate coordinates merged by summation: the kernels must see the
	// merged integer pattern (12 + 12 reps of 1 → value 12 per entry).
	dup := sparse.NewCOO(8, 8, 96)
	for rep := 0; rep < 12; rep++ {
		dup.AddSym(0, 1, 1)
		dup.AddSym(2, 3, 1)
		dup.Add(4, 4, 1)
		dup.AddSym(5, 6, 1)
	}
	add("duplicate-heavy", dup.ToCSR(), dup.ToCSR())

	disc := sparse.NewCOO(40, 40, 64)
	for _, base := range []int32{0, 15, 31} {
		for i := base; i < base+5; i++ {
			for j := i + 1; j < base+5; j++ {
				disc.AddSym(i, j, 1)
			}
		}
	}
	add("disconnected-components", disc.ToCSR(), disc.ToCSR())

	add("rect-2x3-3x4", intCSR(rng, 2, 3, 2), intCSR(rng, 3, 4, 3))
	add("rect-tall-50x7", intCSR(rng, 50, 7, 3), intCSR(rng, 7, 31, 4))
	add("rect-wide-5x90", intCSR(rng, 5, 90, 20), intCSR(rng, 90, 6, 2))
	add("random-64", intCSR(rng, 64, 64, 6), intCSR(rng, 64, 64, 6))
	add("random-257", intCSR(rng, 257, 257, 4), intCSR(rng, 257, 257, 4))

	dense := sparse.NewCOO(9, 9, 81)
	for i := int32(0); i < 9; i++ {
		for j := int32(0); j < 9; j++ {
			dense.Add(i, j, float32(1+(i+2*j)%5))
		}
	}
	add("dense-9x9", dense.ToCSR(), dense.ToCSR())

	return out
}

// spgemmTilings enumerates tile decompositions of the A operand's rows for
// the cluster-wise path: the default shards, one tile per row, one tile
// for everything, and community-run tiles with a split cap.
func spgemmTilings(n int32) map[string][]community.Shard {
	tilings := map[string][]community.Shard{"shards": nil}
	if n > 0 {
		singles := make([]community.Shard, n)
		for i := range singles {
			singles[i] = community.Shard{Lo: int32(i), Hi: int32(i) + 1}
		}
		tilings["singleton"] = singles
		tilings["whole"] = []community.Shard{{Lo: 0, Hi: n}}
		comm := make([]int32, n)
		for i := range comm {
			comm[i] = int32(i) / 5
		}
		tilings["comm-runs"] = community.TilesFromCommunities(comm, 3)
	}
	return tilings
}

// denseEqual compares two int64 grids, reporting the first mismatch.
func denseEqual(t *testing.T, label string, got, want [][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d has %d cols, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: C[%d][%d] = %d, want %d", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestSpGEMMDifferentialOracle is the differential gate: both row
// strategies and every cluster-wise tiling must match the naive dense
// int64 reference exactly on the whole pathological corpus, and every
// output must satisfy the independent CSR validator.
func TestSpGEMMDifferentialOracle(t *testing.T) {
	for _, pair := range spgemmCorpus() {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			want, err := SpGEMMReferenceInt64(pair.a, pair.b)
			if err != nil {
				t.Fatal(err)
			}
			for _, strat := range []SpGEMMStrategy{SpGEMMDenseAcc, SpGEMMSortedMerge} {
				c, err := SpGEMM(pair.a, pair.b, strat)
				if err != nil {
					t.Fatalf("%v: %v", strat, err)
				}
				if err := check.ValidCSR(c); err != nil {
					t.Fatalf("%v output invalid: %v", strat, err)
				}
				denseEqual(t, pair.name+"/"+strat.String(), CSRToDenseInt64(c), want)
			}
			for tname, tiles := range spgemmTilings(pair.a.NumRows) {
				c, stats, err := SpGEMMClusterWise(pair.a, pair.b, tiles)
				if err != nil {
					t.Fatalf("cluster/%s: %v", tname, err)
				}
				if err := check.ValidCSR(c); err != nil {
					t.Fatalf("cluster/%s output invalid: %v", tname, err)
				}
				denseEqual(t, pair.name+"/cluster-"+tname, CSRToDenseInt64(c), want)
				if stats.TotalAccEntries != int64(c.NNZ()) {
					t.Fatalf("cluster/%s: TotalAccEntries %d != nnz(C) %d", tname, stats.TotalAccEntries, c.NNZ())
				}
			}
		})
	}
}

// TestSpGEMMStrategiesBitIdentical pins the stronger-than-required
// invariant the test battery leans on: because every execution mode
// accumulates each output entry in ascending-k order, the float32 outputs
// are bit-identical across strategies even for non-integer values — which
// subsumes the nnz(C) and value-multiset invariances.
func TestSpGEMMStrategiesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	float := func(rows, cols int32, deg int) *sparse.CSR {
		coo := sparse.NewCOO(rows, cols, int(rows)*deg)
		for r := int32(0); r < rows; r++ {
			for d := 0; d < deg; d++ {
				coo.Add(r, rng.Int31n(cols), rng.Float32()+0.1)
			}
		}
		return coo.ToCSR()
	}
	a, b := float(120, 80, 5), float(80, 140, 6)
	dense, err := SpGEMM(a, b, SpGEMMDenseAcc)
	if err != nil {
		t.Fatal(err)
	}
	merge, err := SpGEMM(a, b, SpGEMMSortedMerge)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(merge) {
		t.Fatal("dense-accumulator and sorted-merge outputs differ bitwise")
	}
	for tname, tiles := range spgemmTilings(a.NumRows) {
		cluster, _, err := SpGEMMClusterWise(a, b, tiles)
		if err != nil {
			t.Fatalf("%s: %v", tname, err)
		}
		if !dense.Equal(cluster) {
			t.Fatalf("cluster-wise (%s) output differs bitwise from row-wise", tname)
		}
	}
	// The multiset invariance the issue names explicitly, kept as its own
	// assertion so a future strategy that only reorders rows still has a
	// gate to pass.
	multiset := func(m *sparse.CSR) []float32 {
		vs := append([]float32(nil), m.Values...)
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		return vs
	}
	dm, mm := multiset(dense), multiset(merge)
	for i := range dm {
		if dm[i] != mm[i] {
			t.Fatalf("value multiset diverges at %d: %v vs %v", i, dm[i], mm[i])
		}
	}
}

// TestSpGEMMRelabelingInvariance is the metamorphic sweep: for every
// registered reordering technique, (P·A·Pᵀ)·(P·A·Pᵀ) must equal
// P·(A·A)·Pᵀ exactly. Integer values keep float accumulation exact across
// the permuted summation orders, so the comparison is bitwise.
func TestSpGEMMRelabelingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBEEF))
	matrices := map[string]*sparse.CSR{
		"random-64": intCSR(rng, 64, 64, 6),
		"skewed-48": func() *sparse.CSR {
			coo := sparse.NewCOO(48, 48, 200)
			for c := int32(1); c < 48; c++ {
				coo.AddSym(0, c, 1)
			}
			for i := 0; i < 100; i++ {
				coo.Add(rng.Int31n(48), rng.Int31n(48), float32(1+rng.Intn(4)))
			}
			return coo.ToCSR()
		}(),
	}
	for mname, m := range matrices {
		base, err := SpGEMM(m, m, SpGEMMDenseAcc)
		if err != nil {
			t.Fatal(err)
		}
		for _, tech := range reorder.All() {
			tech := tech
			t.Run(mname+"/"+tech.Name(), func(t *testing.T) {
				p := tech.Order(m)
				if err := check.ValidPermutation(p); err != nil {
					t.Fatal(err)
				}
				pm := m.PermuteSymmetric(p)
				want := base.PermuteSymmetric(p)
				for _, strat := range []SpGEMMStrategy{SpGEMMDenseAcc, SpGEMMSortedMerge} {
					got, err := SpGEMM(pm, pm, strat)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Fatalf("%s: (PAP')² != P(A²)P' under %s", strat, tech.Name())
					}
				}
				got, _, err := SpGEMMClusterWise(pm, pm, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("cluster-wise: (PAP')² != P(A²)P' under %s", tech.Name())
				}
			})
		}
	}
}

// TestSpGEMMSymbolicMatchesExecution pins the symbolic pass against the
// numeric kernels: per-row sizes, total nonzeros, flop count, and the
// tile-footprint helper must agree with what execution actually produces.
func TestSpGEMMSymbolicMatchesExecution(t *testing.T) {
	for _, pair := range spgemmCorpus() {
		info, err := SpGEMMSymbolic(pair.a, pair.b)
		if err != nil {
			t.Fatal(err)
		}
		c, stats, err := SpGEMMClusterWise(pair.a, pair.b, nil)
		if err != nil {
			t.Fatal(err)
		}
		if info.NNZC != int64(c.NNZ()) {
			t.Fatalf("%s: symbolic NNZC %d != executed %d", pair.name, info.NNZC, c.NNZ())
		}
		if info.Flops != stats.Flops {
			t.Fatalf("%s: symbolic Flops %d != executed %d", pair.name, info.Flops, stats.Flops)
		}
		for r := int32(0); r < c.NumRows; r++ {
			if got := c.RowOffsets[r+1] - c.RowOffsets[r]; got != info.RowNNZ[r] {
				t.Fatalf("%s: row %d nnz %d != symbolic %d", pair.name, r, got, info.RowNNZ[r])
			}
		}
		tiles := community.Shards(pair.a.NumRows)
		if got, want := SpGEMMTileFootprint(info.RowNNZ, tiles), stats.MaxTileAccEntries; got != want {
			t.Fatalf("%s: symbolic tile footprint %d != executed %d", pair.name, got, want)
		}
		if stats.MaxTileAccBytes() != 8*stats.MaxTileAccEntries {
			t.Fatalf("%s: MaxTileAccBytes %d != 8*%d", pair.name, stats.MaxTileAccBytes(), stats.MaxTileAccEntries)
		}
	}
}

// TestSpGEMMClusterStats checks the reuse accounting: distinct B-row loads
// per tile can never exceed the row-wise count (one per A-nonzero) nor
// undercut the number of distinct columns A uses, and the whole-matrix
// tile must achieve exactly that minimum.
func TestSpGEMMClusterStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := intCSR(rng, 96, 96, 5)
	distinct := map[int32]bool{}
	for _, c := range a.ColIndices {
		distinct[c] = true
	}
	_, whole, err := SpGEMMClusterWise(a, a, []community.Shard{{Lo: 0, Hi: a.NumRows}})
	if err != nil {
		t.Fatal(err)
	}
	if whole.DistinctBRowLoads != int64(len(distinct)) {
		t.Fatalf("whole-matrix tile loads %d distinct B rows, want %d", whole.DistinctBRowLoads, len(distinct))
	}
	_, sharded, err := SpGEMMClusterWise(a, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.DistinctBRowLoads < whole.DistinctBRowLoads || sharded.DistinctBRowLoads > int64(a.NNZ()) {
		t.Fatalf("sharded B-row loads %d outside [%d, %d]", sharded.DistinctBRowLoads, whole.DistinctBRowLoads, a.NNZ())
	}
	if whole.Tiles != 1 || sharded.Tiles != len(community.Shards(a.NumRows)) {
		t.Fatalf("tile counts %d/%d unexpected", whole.Tiles, sharded.Tiles)
	}
}

// TestSpGEMMErrors covers the rejection paths: inner-dimension
// disagreement, unknown strategies, and malformed tilings.
func TestSpGEMMErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := intCSR(rng, 4, 5, 2)
	b := intCSR(rng, 6, 3, 2)
	if _, err := SpGEMM(a, b, SpGEMMDenseAcc); err == nil {
		t.Fatal("inner-dimension mismatch accepted")
	}
	if _, err := SpGEMMReferenceInt64(a, b); err == nil {
		t.Fatal("reference accepted mismatched shapes")
	}
	if _, err := SpGEMMSymbolic(a, b); err == nil {
		t.Fatal("symbolic accepted mismatched shapes")
	}
	if _, _, err := SpGEMMClusterWise(a, b, nil); err == nil {
		t.Fatal("cluster-wise accepted mismatched shapes")
	}
	sq := intCSR(rng, 8, 8, 2)
	if _, err := SpGEMM(sq, sq, SpGEMMStrategy(99)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for name, tiles := range map[string][]community.Shard{
		"gap":       {{Lo: 0, Hi: 3}, {Lo: 4, Hi: 8}},
		"short":     {{Lo: 0, Hi: 7}},
		"backwards": {{Lo: 0, Hi: 8}, {Lo: 8, Hi: 4}},
	} {
		if _, _, err := SpGEMMClusterWise(sq, sq, tiles); err == nil {
			t.Fatalf("tiling %q accepted", name)
		}
	}
	if _, err := ParseSpGEMMStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy name accepted")
	}
	for _, name := range []string{"dense", "merge"} {
		s, err := ParseSpGEMMStrategy(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.String() != name {
			t.Fatalf("round trip %q -> %v", name, s)
		}
	}
}

// TestSpGEMMKnownProduct checks one product against hand-computed values.
func TestSpGEMMKnownProduct(t *testing.T) {
	// A = [1 2; 0 3], B = [4 0; 5 6] -> C = [14 12; 15 18]
	a := sparse.NewCOO(2, 2, 3)
	a.Add(0, 0, 1)
	a.Add(0, 1, 2)
	a.Add(1, 1, 3)
	b := sparse.NewCOO(2, 2, 3)
	b.Add(0, 0, 4)
	b.Add(1, 0, 5)
	b.Add(1, 1, 6)
	c, err := SpGEMM(a.ToCSR(), b.ToCSR(), SpGEMMDenseAcc)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{14, 12}, {15, 18}}
	denseEqual(t, "known", CSRToDenseInt64(c), want)
}

// FuzzSpGEMMValidCSR builds two structurally valid integer CSR operands
// from fuzz bytes and asserts that every execution mode yields a CSR the
// independent validator accepts, that all modes agree bitwise, and that
// the dense int64 oracle matches — the fuzz face of the differential gate.
func FuzzSpGEMMValidCSR(f *testing.F) {
	f.Add([]byte{}, uint8(2), uint8(3), uint8(2))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(4), uint8(4), uint8(4))
	f.Add([]byte{0xff, 0x00, 0x7f, 0x33, 0x21}, uint8(1), uint8(7), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, rows, inner, cols uint8) {
		m, k, n := int32(rows%12), int32(inner%12), int32(cols%12)
		build := func(r, c int32, seed []byte) *sparse.CSR {
			coo := sparse.NewCOO(r, c, len(seed))
			if r > 0 && c > 0 {
				for i := 0; i+1 < len(seed); i += 2 {
					coo.Add(int32(seed[i])%r, int32(seed[i+1])%c, float32(1+int(seed[i])%5))
				}
			}
			return coo.ToCSR()
		}
		half := len(data) / 2
		a := build(m, k, data[:half])
		b := build(k, n, data[half:])
		want, err := SpGEMMReferenceInt64(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var outs []*sparse.CSR
		for _, strat := range []SpGEMMStrategy{SpGEMMDenseAcc, SpGEMMSortedMerge} {
			c, err := SpGEMM(a, b, strat)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, c)
		}
		cw, _, err := SpGEMMClusterWise(a, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, cw)
		for i, c := range outs {
			if err := check.ValidCSR(c); err != nil {
				t.Fatalf("output %d invalid: %v", i, err)
			}
			if !c.Equal(outs[0]) {
				t.Fatalf("output %d differs from strategy 0", i)
			}
			denseEqual(t, fmt.Sprintf("fuzz-output-%d", i), CSRToDenseInt64(c), want)
		}
	})
}
