package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// benchSpGEMMMatrix builds a symmetric random graph big enough that the
// product's flop count dominates setup cost but small enough that the
// dense accumulator's O(cols) workspace stays cache-resident.
func benchSpGEMMMatrix(n int32, deg int) *sparse.CSR {
	rng := rand.New(rand.NewSource(42))
	coo := sparse.NewCOO(n, n, int(n)*deg)
	for r := int32(0); r < n; r++ {
		for d := 0; d < deg; d++ {
			coo.AddSym(r, rng.Int31n(n), 1)
		}
	}
	return coo.ToCSR()
}

// BenchmarkSpGEMM times C = A·A for each execution mode and reports
// ns/flop (the scale-free figure scripts/bench.sh records) alongside the
// standard ns/op and allocation counters.
func BenchmarkSpGEMM(b *testing.B) {
	m := benchSpGEMMMatrix(1<<12, 8)
	info, err := SpGEMMSymbolic(m, m)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("n=%d nnz=%d nnzC=%d flops=%d compression=%.3f",
		m.NumRows, m.NNZ(), info.NNZC, info.Flops, info.CompressionRatio())

	run := func(name string, mult func() (*sparse.CSR, error)) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := mult()
				if err != nil {
					b.Fatal(err)
				}
				if int64(c.NNZ()) != info.NNZC {
					b.Fatalf("nnz(C) = %d, want %d", c.NNZ(), info.NNZC)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(info.Flops)*float64(b.N)), "ns/flop")
		})
	}
	run("dense", func() (*sparse.CSR, error) { return SpGEMM(m, m, SpGEMMDenseAcc) })
	run("merge", func() (*sparse.CSR, error) { return SpGEMM(m, m, SpGEMMSortedMerge) })
	run("cluster", func() (*sparse.CSR, error) {
		c, _, err := SpGEMMClusterWise(m, m, nil)
		return c, err
	})
}
