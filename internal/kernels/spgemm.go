package kernels

import (
	"fmt"
	"sort"

	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/sparse"
)

// SpGEMM computes the sparse–sparse product C = A·B over CSR using
// Gustavson's row-wise algorithm (arXiv 2507.21253's baseline): row i of C
// is the sum of B's rows selected and scaled by row i of A. The output is
// a fully valid CSR (sorted, duplicate-free rows); explicit zeros produced
// by cancellation are kept, matching standard SpGEMM semantics.
//
// Every strategy — and SpGEMMClusterWise — accumulates each output entry
// c_ij in ascending-k order (the order of A's sorted rows), so all three
// execution modes produce bit-identical values for any float32 input, not
// just for the exactly-representable integer matrices the differential
// tests sweep.

// SpGEMMStrategy selects how each output row is accumulated.
type SpGEMMStrategy int

const (
	// SpGEMMDenseAcc expands each row into a dense accumulator of
	// B.NumCols slots (generation-marked, so clearing is O(row nnz)) and
	// gathers the touched columns in sorted order. The classic fast path
	// when rows are dense relative to the accumulator.
	SpGEMMDenseAcc SpGEMMStrategy = iota
	// SpGEMMSortedMerge keeps the partial row as a sorted (column, value)
	// list and two-way merges each scaled B row into it. No O(NumCols)
	// state; the right shape when output rows are short.
	SpGEMMSortedMerge
)

// String names the strategy as cmd/spgemm's -strategy flag spells it.
func (s SpGEMMStrategy) String() string {
	switch s {
	case SpGEMMDenseAcc:
		return "dense"
	case SpGEMMSortedMerge:
		return "merge"
	default:
		return fmt.Sprintf("SpGEMMStrategy(%d)", int(s))
	}
}

// ParseSpGEMMStrategy resolves a -strategy flag value ("dense" or "merge").
func ParseSpGEMMStrategy(name string) (SpGEMMStrategy, error) {
	switch name {
	case "dense":
		return SpGEMMDenseAcc, nil
	case "merge":
		return SpGEMMSortedMerge, nil
	default:
		return 0, fmt.Errorf("kernels: unknown SpGEMM strategy %q (want dense or merge)", name)
	}
}

// spgemmShapeCheck validates the inner-dimension agreement of C = A·B.
func spgemmShapeCheck(a, b *sparse.CSR) error {
	if a.NumCols != b.NumRows {
		return fmt.Errorf("kernels: SpGEMM inner dimensions disagree: A is %dx%d, B is %dx%d",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols)
	}
	return nil
}

// SpGEMM computes C = A·B with the chosen row strategy. A must have as
// many columns as B has rows; the result is A.NumRows × B.NumCols.
func SpGEMM(a, b *sparse.CSR, strategy SpGEMMStrategy) (*sparse.CSR, error) {
	check.AssertCSR(a)
	check.AssertCSR(b)
	if err := spgemmShapeCheck(a, b); err != nil {
		return nil, err
	}
	switch strategy {
	case SpGEMMDenseAcc:
		return spgemmDense(a, b), nil
	case SpGEMMSortedMerge:
		return spgemmMerge(a, b), nil
	default:
		return nil, fmt.Errorf("kernels: unknown SpGEMM strategy %d", strategy)
	}
}

// spgemmDense is the dense-accumulator Gustavson loop.
func spgemmDense(a, b *sparse.CSR) *sparse.CSR {
	out := &sparse.CSR{
		NumRows:    a.NumRows,
		NumCols:    b.NumCols,
		RowOffsets: make([]int32, int(a.NumRows)+1),
	}
	acc := make([]float32, b.NumCols)
	// mark[j] == row+1 means column j is live in the current row's
	// accumulator; the +1 keeps the zero value distinct from row 0.
	mark := make([]int32, b.NumCols)
	var touched []int32
	for row := int32(0); row < a.NumRows; row++ {
		touched = touched[:0]
		cols, vals := a.Row(row)
		for k, ak := range cols {
			v := vals[k]
			bc, bv := b.Row(ak)
			for t, j := range bc {
				if mark[j] != row+1 {
					mark[j] = row + 1
					acc[j] = v * bv[t]
					touched = append(touched, j)
				} else {
					acc[j] += v * bv[t]
				}
			}
		}
		sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
		for _, j := range touched {
			out.ColIndices = append(out.ColIndices, j)
			out.Values = append(out.Values, acc[j])
		}
		out.RowOffsets[row+1] = check.SafeInt32(len(out.ColIndices))
	}
	return check.CSR(out)
}

// spgemmMerge is the sorted-merge Gustavson loop: the partial output row
// stays sorted and each scaled B row is two-way merged into it.
func spgemmMerge(a, b *sparse.CSR) *sparse.CSR {
	out := &sparse.CSR{
		NumRows:    a.NumRows,
		NumCols:    b.NumCols,
		RowOffsets: make([]int32, int(a.NumRows)+1),
	}
	type colVal struct {
		c int32
		v float32
	}
	var cur, next []colVal
	for row := int32(0); row < a.NumRows; row++ {
		cur = cur[:0]
		cols, vals := a.Row(row)
		for k, ak := range cols {
			v := vals[k]
			bc, bv := b.Row(ak)
			next = next[:0]
			i, j := 0, 0
			for i < len(cur) || j < len(bc) {
				switch {
				case j >= len(bc) || (i < len(cur) && cur[i].c < bc[j]):
					next = append(next, cur[i])
					i++
				case i >= len(cur) || bc[j] < cur[i].c:
					next = append(next, colVal{bc[j], v * bv[j]})
					j++
				default:
					next = append(next, colVal{cur[i].c, cur[i].v + v*bv[j]})
					i++
					j++
				}
			}
			cur, next = next, cur
		}
		for _, cv := range cur {
			out.ColIndices = append(out.ColIndices, cv.c)
			out.Values = append(out.Values, cv.v)
		}
		out.RowOffsets[row+1] = check.SafeInt32(len(out.ColIndices))
	}
	return check.CSR(out)
}

// SpGEMMInfo is the structure-only (symbolic) analysis of C = A·B: the
// work and output size Gustavson's numeric phase will incur, computed
// without touching values. Both counts are invariant under symmetric
// relabeling of the operands, so a bound derived from the original matrix
// stays valid for every reordering of it.
type SpGEMMInfo struct {
	// NNZC is the number of stored nonzeros of C (cancellation entries
	// included, matching the numeric kernels).
	NNZC int64
	// Flops is the number of multiply–add pairs: Σ over nonzeros a_ik of
	// nnz(B row k). The arithmetic work is 2·Flops FLOPs.
	Flops int64
	// RowNNZ is the per-row nonzero count of C (len A.NumRows).
	RowNNZ []int32
}

// CompressionRatio returns Flops/NNZC — how many intermediate products
// merge into each stored output entry, the locality headroom cluster-wise
// execution exploits. Zero-output products report 0.
func (i SpGEMMInfo) CompressionRatio() float64 {
	if i.NNZC == 0 {
		return 0
	}
	return float64(i.Flops) / float64(i.NNZC)
}

// SpGEMMSymbolic runs the symbolic phase of C = A·B: per-row output sizes,
// total nonzeros, and the exact flop count. O(Flops) time, O(B.NumCols)
// scratch.
func SpGEMMSymbolic(a, b *sparse.CSR) (SpGEMMInfo, error) {
	check.AssertCSR(a)
	check.AssertCSR(b)
	if err := spgemmShapeCheck(a, b); err != nil {
		return SpGEMMInfo{}, err
	}
	info := SpGEMMInfo{RowNNZ: make([]int32, a.NumRows)}
	mark := make([]int32, b.NumCols)
	for row := int32(0); row < a.NumRows; row++ {
		cols, _ := a.Row(row)
		var rowNNZ int32
		for _, ak := range cols {
			bc, _ := b.Row(ak)
			info.Flops += int64(len(bc))
			for _, j := range bc {
				if mark[j] != row+1 {
					mark[j] = row + 1
					rowNNZ++
				}
			}
		}
		info.RowNNZ[row] = rowNNZ
		info.NNZC += int64(rowNNZ)
	}
	return info, nil
}

// SpGEMMClusterStats reports the execution profile of one cluster-wise
// SpGEMM run: how large the per-tile accumulators grew and how much B-row
// reuse the tiling captured.
type SpGEMMClusterStats struct {
	// Tiles is the number of row tiles executed.
	Tiles int
	// MaxTileAccEntries is the largest number of accumulator entries
	// (output nonzeros) live in any one tile at spill time.
	MaxTileAccEntries int64
	// TotalAccEntries sums accumulator entries over all tiles — equal to
	// nnz(C), since every output entry is accumulated exactly once.
	TotalAccEntries int64
	// DistinctBRowLoads sums, over tiles, the number of distinct B rows
	// the tile references: the irregular loads cluster-wise execution
	// actually issues. Row-wise execution issues one per A-nonzero
	// (= nnz(A)); the gap is the reuse the schedule captured.
	DistinctBRowLoads int64
	// Flops is the multiply–add pair count, identical to the row-wise
	// schedule's.
	Flops int64
}

// MaxTileAccBytes returns the peak per-tile accumulator footprint in
// bytes: each live entry holds a 4-byte column index and a 4-byte value.
func (s SpGEMMClusterStats) MaxTileAccBytes() int64 { return 8 * s.MaxTileAccEntries }

// validTiles checks that tiles exactly partition [0, n) in ascending
// contiguous order — the contract SpGEMMClusterWise inherits from
// community.Shards.
func validTiles(tiles []community.Shard, n int32) error {
	var lo int32
	for i, t := range tiles {
		if t.Lo != lo || t.Hi < t.Lo {
			return fmt.Errorf("kernels: tile %d spans [%d,%d), want contiguous from %d", i, t.Lo, t.Hi, lo)
		}
		lo = t.Hi
	}
	if lo != n {
		return fmt.Errorf("kernels: tiles cover [0,%d), want [0,%d)", lo, n)
	}
	return nil
}

// SpGEMMClusterWise computes C = A·B with cluster-wise execution (arXiv
// 2507.21253): the Gustavson outer loop is tiled by the given contiguous
// row blocks — community.Shards(A.NumRows) when tiles is nil — and each
// tile runs a two-phase schedule. The symbolic phase sizes the tile's
// output rows; the numeric phase visits the tile's A-nonzeros grouped by
// column k (ascending), loading each distinct B row once per tile and
// scattering it into every output row of the tile that needs it. All
// accumulation for the tile stays resident until the tile spills to C.
//
// After a community reordering, rows in a tile share column structure, so
// the distinct-B-row loads per tile drop — the first place the reordering
// and the kernel schedule cooperate. Output values are bit-identical to
// both row-wise strategies because each c_ij still accumulates in
// ascending-k order.
func SpGEMMClusterWise(a, b *sparse.CSR, tiles []community.Shard) (*sparse.CSR, SpGEMMClusterStats, error) {
	check.AssertCSR(a)
	check.AssertCSR(b)
	var stats SpGEMMClusterStats
	if err := spgemmShapeCheck(a, b); err != nil {
		return nil, stats, err
	}
	if tiles == nil {
		tiles = community.Shards(a.NumRows)
	}
	if err := validTiles(tiles, a.NumRows); err != nil {
		return nil, stats, err
	}
	out := &sparse.CSR{
		NumRows:    a.NumRows,
		NumCols:    b.NumCols,
		RowOffsets: make([]int32, int(a.NumRows)+1),
	}
	mark := make([]int32, b.NumCols)
	var touched []int32
	type aEntry struct {
		k   int32 // column of A = row of B
		row int32 // output row
		v   float32
	}
	var entries []aEntry
	stats.Tiles = len(tiles)
	for _, tile := range tiles {
		// Symbolic phase: emit the tile's sorted output structure.
		tileBase := int64(len(out.ColIndices))
		for row := tile.Lo; row < tile.Hi; row++ {
			touched = touched[:0]
			cols, _ := a.Row(row)
			for _, ak := range cols {
				bc, _ := b.Row(ak)
				for _, j := range bc {
					if mark[j] != row+1 {
						mark[j] = row + 1
						touched = append(touched, j)
					}
				}
			}
			sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
			out.ColIndices = append(out.ColIndices, touched...)
			out.Values = append(out.Values, make([]float32, len(touched))...)
			out.RowOffsets[row+1] = check.SafeInt32(len(out.ColIndices))
		}
		accEntries := int64(len(out.ColIndices)) - tileBase
		stats.TotalAccEntries += accEntries
		if accEntries > stats.MaxTileAccEntries {
			stats.MaxTileAccEntries = accEntries
		}
		// Numeric phase, k-major: group the tile's A-nonzeros by B row.
		entries = entries[:0]
		for row := tile.Lo; row < tile.Hi; row++ {
			cols, vals := a.Row(row)
			for k, ak := range cols {
				entries = append(entries, aEntry{k: ak, row: row, v: vals[k]})
			}
		}
		// Ascending (k, row): each c_ij accumulates in ascending-k order
		// (one contribution per k since A's rows are duplicate-free), and
		// each distinct k's B row is loaded exactly once per tile.
		sort.Slice(entries, func(x, y int) bool {
			if entries[x].k != entries[y].k {
				return entries[x].k < entries[y].k
			}
			return entries[x].row < entries[y].row
		})
		for e := 0; e < len(entries); {
			k := entries[e].k
			bc, bv := b.Row(k)
			stats.DistinctBRowLoads++
			for ; e < len(entries) && entries[e].k == k; e++ {
				row, v := entries[e].row, entries[e].v
				stats.Flops += int64(len(bc))
				lo, hi := out.RowOffsets[row], out.RowOffsets[row+1]
				rowCols := out.ColIndices[lo:hi]
				for t, j := range bc {
					// The symbolic phase guarantees j is present.
					pos := int32(sort.Search(len(rowCols), func(x int) bool { return rowCols[x] >= j }))
					out.Values[lo+pos] += v * bv[t]
				}
			}
		}
	}
	return check.CSR(out), stats, nil
}

// SpGEMMTileFootprint returns the peak number of accumulator entries any
// single tile holds at spill time, computed from the symbolic per-row
// output sizes (SpGEMMInfo.RowNNZ, in the same row order as the tiles)
// without executing the kernel. Multiply by 8 for bytes: each live entry
// is a 4-byte column index plus a 4-byte value.
func SpGEMMTileFootprint(rowNNZ []int32, tiles []community.Shard) int64 {
	var peak int64
	for _, t := range tiles {
		var sum int64
		for r := t.Lo; r < t.Hi; r++ {
			sum += int64(rowNNZ[r])
		}
		if sum > peak {
			peak = sum
		}
	}
	return peak
}

// SpGEMMReferenceInt64 computes C = A·B by the naive dense triple loop in
// exact int64 arithmetic — the differential oracle the fast strategies are
// checked against. Operand values are truncated to int64, so it is only
// meaningful for integer-valued matrices (which the SpGEMM test corpus
// guarantees); within that domain the comparison is exact, immune to
// float accumulation-order effects.
func SpGEMMReferenceInt64(a, b *sparse.CSR) ([][]int64, error) {
	if err := spgemmShapeCheck(a, b); err != nil {
		return nil, err
	}
	dense := make([][]int64, a.NumRows)
	for i := range dense {
		dense[i] = make([]int64, b.NumCols)
	}
	for i := int32(0); i < a.NumRows; i++ {
		cols, vals := a.Row(i)
		for k, ak := range cols {
			v := int64(vals[k])
			bc, bv := b.Row(ak)
			for t, j := range bc {
				dense[i][j] += v * int64(bv[t])
			}
		}
	}
	return dense, nil
}

// CSRToDenseInt64 expands a CSR matrix into a dense int64 grid, truncating
// values; the companion of SpGEMMReferenceInt64 for exact comparison of
// integer-valued results (explicit zeros disappear, so cancellation cannot
// produce false pattern mismatches).
func CSRToDenseInt64(m *sparse.CSR) [][]int64 {
	dense := make([][]int64, m.NumRows)
	for i := range dense {
		dense[i] = make([]int64, m.NumCols)
	}
	for i := int32(0); i < m.NumRows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			dense[i][c] = int64(vals[k])
		}
	}
	return dense
}
