package kernels

import (
	"time"
)

// StreamResult reports a BabelStream-style bandwidth measurement. The
// paper uses BabelStream to find the A6000's achievable DRAM bandwidth
// (672 GB/s of the 768 GB/s peak) and divides compulsory traffic by it to
// obtain ideal run time (Section IV-B). MeasureStreamBandwidth applies the
// same methodology to the host this code runs on, so host-side ideal run
// times can be computed the same way.
type StreamResult struct {
	// CopyGBs is the copy kernel's sustained bandwidth in GB/s (best of
	// the timed repetitions), and likewise for the other three kernels.
	CopyGBs float64
	// MulGBs is the scale kernel's sustained bandwidth in GB/s.
	MulGBs float64
	// AddGBs is the add kernel's sustained bandwidth in GB/s.
	AddGBs float64
	// TriadGBs is the triad kernel's sustained bandwidth in GB/s.
	TriadGBs float64
}

// Best returns the highest sustained bandwidth across kernels, the number
// BabelStream-style methodology quotes as achievable.
func (r StreamResult) Best() float64 {
	best := r.CopyGBs
	for _, v := range []float64{r.MulGBs, r.AddGBs, r.TriadGBs} {
		if v > best {
			best = v
		}
	}
	return best
}

// MeasureStreamBandwidth runs the four STREAM kernels over float32 arrays
// of `elems` elements, `reps` times each, and reports the best sustained
// bandwidth per kernel. Arrays should comfortably exceed the last-level
// cache (64M elements = 256 MB is a safe default; pass 0 for it).
func MeasureStreamBandwidth(elems int, reps int) StreamResult {
	if elems <= 0 {
		elems = 64 << 20
	}
	if reps <= 0 {
		reps = 3
	}
	a := make([]float32, elems)
	b := make([]float32, elems)
	c := make([]float32, elems)
	for i := range a {
		a[i] = 1
		b[i] = 2
	}
	const scalar = float32(0.4)
	bytesMoved := func(arrays int) float64 { return float64(arrays) * float64(elems) * 4 }

	best := func(arrays int, kernel func()) float64 {
		var bw float64
		for r := 0; r < reps; r++ {
			start := time.Now()
			kernel()
			if s := time.Since(start).Seconds(); s > 0 {
				if v := bytesMoved(arrays) / s / 1e9; v > bw {
					bw = v
				}
			}
		}
		return bw
	}

	var res StreamResult
	res.CopyGBs = best(2, func() {
		copy(c, a)
	})
	res.MulGBs = best(2, func() {
		for i := range b {
			b[i] = scalar * c[i]
		}
	})
	res.AddGBs = best(3, func() {
		for i := range c {
			c[i] = a[i] + b[i]
		}
	})
	res.TriadGBs = best(3, func() {
		for i := range a {
			a[i] = b[i] + scalar*c[i]
		}
	})
	return res
}
