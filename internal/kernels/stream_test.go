package kernels

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestMeasureStreamBandwidthSane(t *testing.T) {
	// Tiny arrays keep the test fast; we only check plausibility, not the
	// actual machine bandwidth.
	r := MeasureStreamBandwidth(1<<20, 2)
	for name, v := range map[string]float64{
		"copy": r.CopyGBs, "mul": r.MulGBs, "add": r.AddGBs, "triad": r.TriadGBs,
	} {
		if v <= 0 || v > 10000 {
			t.Fatalf("%s bandwidth %v GB/s implausible", name, v)
		}
	}
	if r.Best() < r.CopyGBs || r.Best() < r.TriadGBs {
		t.Fatal("Best() below a component bandwidth")
	}
}

func TestSpMVCSCMatchesCSR(t *testing.T) {
	m := gen.ErdosRenyi{Nodes: 400, AvgDegree: 6}.Generate(9)
	r := gen.NewRNG(10)
	x := randomVec(r, m.NumCols)
	want := DenseSpMVReference(m, x)
	csc := sparse.CSRToCSC(m)
	y := make([]float32, m.NumRows)
	if err := SpMVCSC(csc, x, y); err != nil {
		t.Fatal(err)
	}
	if !approxEqual(y, want, 1e-4) {
		t.Fatal("CSC pull SpMV disagrees with reference")
	}
}

func TestSpMVCSCShapeErrors(t *testing.T) {
	csc := &sparse.CSC{NumRows: 2, NumCols: 3, ColOffsets: make([]int32, 4)}
	if err := SpMVCSC(csc, make([]float32, 2), make([]float32, 2)); err == nil {
		t.Fatal("wrong x length accepted")
	}
	if err := SpMVCSC(csc, make([]float32, 3), make([]float32, 3)); err == nil {
		t.Fatal("wrong y length accepted")
	}
}
