package reorder

import (
	"context"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/sparse"
)

// Options carries cross-cutting knobs for the parallel reordering tier.
type Options struct {
	// Workers is the number of goroutines a ParallelOrderer may use.
	// Values below 1 (including the zero value) mean 1, the sequential
	// path. Workers is strictly a speed knob: every technique in this
	// package produces a byte-identical permutation at any worker count,
	// a property the worker-count determinism matrix enforces for the
	// whole registry.
	Workers int
}

// workers normalizes the knob to at least one goroutine.
func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// ParallelOrderer is a technique whose ordering work can be split across
// opts.Workers goroutines. Implementations follow the OrdererCtx contract
// (nil error ⇒ valid permutation, cancellation returns ctx.Err() promptly)
// with one addition: the result must not depend on opts.Workers. The
// techniques here achieve that by splitting work along boundaries computed
// from the matrix alone and joining per-slot results in a canonical order.
type ParallelOrderer interface {
	OrdererCtx
	// OrderParallelCtx computes the old→new permutation using up to
	// opts.Workers goroutines.
	OrderParallelCtx(ctx context.Context, m *sparse.CSR, opts Options) (sparse.Permutation, error)
}

// OrderWith runs a technique with the given options: techniques that
// implement ParallelOrderer get the worker count, everything else falls
// back to the (single-threaded) cancellable path. This is the dispatch
// point shared by cmd/reorder and the reorderd service.
func OrderWith(ctx context.Context, t Technique, m *sparse.CSR, opts Options) (sparse.Permutation, error) {
	var p sparse.Permutation
	var err error
	if po, ok := t.(ParallelOrderer); ok {
		p, err = po.OrderParallelCtx(ctx, m, opts)
	} else {
		p, err = WithContext(t).OrderCtx(ctx, m)
	}
	if err != nil {
		return nil, err
	}
	return check.Perm(p), nil
}

// RabbitShard is the parallel RABBIT aggregation: per-shard community
// detection (stable shard boundaries from community.Shards) followed by a
// sequential coarse merge of the shard-local communities. At Workers=1 it
// still runs the two-level sharded algorithm — the permutation differs
// from plain RABBIT's single global merge loop, which is why it is a
// separate registered technique rather than a mode of Rabbit.
type RabbitShard struct{}

// Name implements Technique.
func (RabbitShard) Name() string { return "RABBIT-SHARD" }

// Order implements Technique (the Workers=1 path).
func (RabbitShard) Order(m *sparse.CSR) sparse.Permutation {
	return check.Perm(core.RabbitSharded(m, 1).Perm)
}

// OrderCtx implements OrdererCtx via core.RabbitShardedCtx's cancellable
// merge loops.
func (RabbitShard) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	rr, err := core.RabbitShardedCtx(ctx, m, 1)
	if err != nil {
		return nil, err
	}
	return check.Perm(rr.Perm), nil
}

// OrderParallelCtx implements ParallelOrderer.
func (RabbitShard) OrderParallelCtx(ctx context.Context, m *sparse.CSR, opts Options) (sparse.Permutation, error) {
	rr, err := core.RabbitShardedCtx(ctx, m, opts.workers())
	if err != nil {
		return nil, err
	}
	return check.Perm(rr.Perm), nil
}
