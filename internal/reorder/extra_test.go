package reorder

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestPartitionOrderGroupsMeshTiles(t *testing.T) {
	// Scramble a mesh; partition-ordering must restore strong locality,
	// measured as average |p[u]-p[v]| over edges far below scrambled.
	mesh := gen.Mesh2D{Width: 40, Height: 40}.Generate(1)
	scrambled := mesh.PermuteSymmetric(Random{Seed: 1}.Order(mesh))
	p := PartitionOrder{Parts: 16}.Order(scrambled)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	base := avgEdgeDistance(scrambled, Original{}.Order(scrambled))
	got := avgEdgeDistance(scrambled, p)
	if got > base/2 {
		t.Fatalf("partition ordering avg edge distance %.0f vs scrambled %.0f; want at least 2x better", got, base)
	}
}

func TestLouvainOrderCommunitiesContiguous(t *testing.T) {
	m := gen.PlantedPartition{Nodes: 1200, Communities: 12, AvgDegree: 10, Mu: 0.1}.Generate(2)
	p := LouvainOrder{}.Order(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Strongly planted communities should make LOUVAIN dramatically better
	// than the scrambled original order.
	if got, base := avgEdgeDistance(m, p), avgEdgeDistance(m, Original{}.Order(m)); got > base/3 {
		t.Fatalf("louvain avg edge distance %.0f vs original %.0f", got, base)
	}
}

func TestFrequencyClusteringHotPrefixSorted(t *testing.T) {
	m := testMatrix(11)
	p := FrequencyClustering{}.Order(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	inDeg := m.InDegrees()
	inv := p.Inverse()
	// The hot prefix must be sorted by descending in-degree.
	prev := int32(1 << 30)
	for newID := 0; newID < len(inv); newID++ {
		d := inDeg[inv[newID]]
		if d > prev {
			// Once we leave the sorted hot prefix, the remainder must be
			// the original-order cold region; verify it is ascending by
			// old ID from here.
			for k := newID + 1; k < len(inv); k++ {
				if inv[k] < inv[k-1] && inDeg[inv[k]] > 0 == false {
					break
				}
			}
			return
		}
		prev = d
	}
}

func TestHubClusterDeadRowsLast(t *testing.T) {
	// Matrix where some columns are never referenced: those vertices must
	// land at the very end.
	coo := sparse.NewCOO(6, 6, 4)
	coo.Add(0, 1, 1)
	coo.Add(2, 1, 1)
	coo.Add(3, 1, 1)
	coo.Add(1, 0, 1)
	m := coo.ToCSR()
	p := HubCluster{}.Order(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	inDeg := m.InDegrees()
	for v := int32(0); v < m.NumRows; v++ {
		if inDeg[v] == 0 {
			// dead vertices occupy the last IDs
			if int(p[v]) < int(m.NumRows)-4 {
				t.Fatalf("dead vertex %d got ID %d, want near the end", v, p[v])
			}
		}
	}
	// Vertices 0 (in-degree 1) and 1 (in-degree 3) both exceed the average
	// degree 4/6 and form the hub prefix in original order.
	if p[0] != 0 || p[1] != 1 {
		t.Fatalf("hub prefix = p[0]=%d p[1]=%d, want 0 and 1", p[0], p[1])
	}
}

func TestExtraTechniquesInAll(t *testing.T) {
	names := map[string]bool{}
	for _, tech := range All() {
		names[tech.Name()] = true
	}
	for _, want := range []string{"PARTITION", "LOUVAIN", "FBC", "HUBCLUSTER"} {
		if !names[want] {
			t.Fatalf("technique %s missing from All()", want)
		}
	}
}

// avgEdgeDistance measures the mean |p[u]-p[v]| over stored nonzeros — the
// locality proxy used by reordering-quality analyses.
func avgEdgeDistance(m *sparse.CSR, p sparse.Permutation) float64 {
	if m.NNZ() == 0 {
		return 0
	}
	var total float64
	for r := int32(0); r < m.NumRows; r++ {
		cols, _ := m.Row(r)
		for _, c := range cols {
			d := int64(p[r]) - int64(p[c])
			if d < 0 {
				d = -d
			}
			total += float64(d)
		}
	}
	return total / float64(m.NNZ())
}
