package reorder

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func TestChainComposesCorrectly(t *testing.T) {
	m := testMatrix(20)
	chain := Chain{DBG{}, HubGroup{}}
	p := chain.Order(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Applying the chained permutation at once must equal applying the
	// stages one at a time.
	direct := m.PermuteSymmetric(p)
	p1 := DBG{}.Order(m)
	step1 := m.PermuteSymmetric(p1)
	p2 := HubGroup{}.Order(step1)
	staged := step1.PermuteSymmetric(p2)
	if !direct.Equal(staged) {
		t.Fatal("Chain permutation differs from stage-by-stage application")
	}
	if chain.Name() != "DBG∘HUBGROUP" {
		t.Fatalf("Chain name = %q", chain.Name())
	}
}

func TestChainEmptyIsIdentity(t *testing.T) {
	m := testMatrix(21)
	if !(Chain{}).Order(m).IsIdentity() {
		t.Fatal("empty chain must be the identity")
	}
}

func TestPerComponentContiguousComponents(t *testing.T) {
	// Two disconnected cliques of different sizes: the bigger component
	// must occupy the first ID range, each component contiguous.
	coo := sparse.NewCOO(20, 20, 100)
	for i := int32(0); i < 12; i++ { // component A: vertices 0..11
		for j := i + 1; j < 12; j++ {
			coo.AddSym(i, j, 1)
		}
	}
	for i := int32(12); i < 20; i++ { // component B: vertices 12..19
		for j := i + 1; j < 20; j++ {
			coo.AddSym(i, j, 1)
		}
	}
	m := coo.ToCSR()
	p := PerComponent{Inner: Original{}}.Order(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 12; v++ {
		if p[v] >= 12 {
			t.Fatalf("large-component vertex %d got ID %d outside [0,12)", v, p[v])
		}
	}
	for v := int32(12); v < 20; v++ {
		if p[v] < 12 {
			t.Fatalf("small-component vertex %d got ID %d inside the large component's range", v, p[v])
		}
	}
}

func TestPerComponentSingleComponentDelegates(t *testing.T) {
	m := gen.Mesh2D{Width: 10, Height: 10}.Generate(1)
	inner := DegSort{}
	a := PerComponent{Inner: inner}.Order(m)
	b := inner.Order(m)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("single-component PerComponent must match the inner technique exactly")
		}
	}
}

func TestPerComponentPreservesSemantics(t *testing.T) {
	m := gen.KmerChain{Nodes: 500, ChainLen: 50, BranchProb: 0.1}.Generate(2)
	p := PerComponent{Inner: RCM{}}.Order(m)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	back := m.PermuteSymmetric(p).PermuteSymmetric(p.Inverse())
	if !back.Equal(m) {
		t.Fatal("PerComponent reordering is not invertible")
	}
}

func TestConnectedComponentsOnChains(t *testing.T) {
	m := gen.KmerChain{Nodes: 400, ChainLen: 100, BranchProb: 0}.Generate(3)
	_, count := m.ConnectedComponents()
	if count < 4 {
		t.Fatalf("4 disjoint chains should yield >= 4 components, got %d", count)
	}
	if frac := m.LargestComponentFraction(); frac > 0.5 {
		t.Fatalf("largest chain holds %.2f of vertices, want <= 0.5", frac)
	}
}
