package reorder

import (
	"context"
	"sort"

	"repro/internal/check"
	"repro/internal/sparse"
)

// RCM implements Reverse Cuthill–McKee, the classic bandwidth-reducing
// ordering (Karantasis et al., SC'14, cited by the paper as one of the
// techniques RABBIT was shown to match or exceed). It runs a BFS from a
// minimum-degree vertex of each connected component of the symmetrized
// pattern, visiting neighbors in increasing degree order, and reverses the
// final order.
type RCM struct{}

// Name implements Technique.
func (RCM) Name() string { return "RCM" }

// Order implements Technique.
func (r RCM) Order(m *sparse.CSR) sparse.Permutation {
	// A background context never cancels, so the error path is unreachable.
	p, _ := r.OrderCtx(context.Background(), m)
	return check.Perm(p)
}

// OrderCtx implements OrdererCtx: the BFS checks ctx every 1024 dequeued
// vertices, so a deadline interrupts even a single giant component's
// traversal.
func (RCM) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sym := m.Symmetrize()
	n := sym.NumRows
	deg := sym.Degrees()

	// Component start vertices: minimum degree first, so each BFS starts
	// at a pseudo-peripheral low-degree vertex.
	byDegree := make([]int32, n)
	for i := range byDegree {
		byDegree[i] = int32(i)
	}
	sort.SliceStable(byDegree, func(a, b int) bool { return deg[byDegree[a]] < deg[byDegree[b]] })

	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	scratch := make([]int32, 0, 64)
	for _, start := range byDegree {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		order = append(order, start)
		for head := 0; head < len(queue); head++ {
			if head%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			u := queue[head]
			cols, _ := sym.Row(u)
			scratch = scratch[:0]
			for _, v := range cols {
				if !visited[v] {
					visited[v] = true
					scratch = append(scratch, v)
				}
			}
			sort.SliceStable(scratch, func(a, b int) bool { return deg[scratch[a]] < deg[scratch[b]] })
			queue = append(queue, scratch...)
			order = append(order, scratch...)
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return check.Perm(sparse.FromNewOrder(order)), nil
}
