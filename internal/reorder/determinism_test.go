package reorder

import (
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// permDigest orders one fixed matrix with every technique and folds all the
// permutations into a single hash. Any ordering decision that leaks map
// iteration order (or other per-process randomness) changes the digest.
func permDigest() string {
	m := testMatrix(3)
	h := fnv.New64a()
	for _, tech := range All() {
		h.Write([]byte(tech.Name()))
		for _, v := range tech.Order(m) {
			var buf [4]byte
			buf[0] = byte(v)
			buf[1] = byte(v >> 8)
			buf[2] = byte(v >> 16)
			buf[3] = byte(v >> 24)
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

const determinismHelperEnv = "REORDER_DETERMINISM_HELPER"

// TestDeterminismHelper prints the digest when re-executed as a child
// process; it is a no-op in a normal test run.
func TestDeterminismHelper(t *testing.T) {
	if os.Getenv(determinismHelperEnv) != "1" {
		t.Skip("helper for TestDeterminismAcrossProcesses")
	}
	fmt.Printf("PERM_DIGEST=%s\n", permDigest())
}

// TestDeterminismAcrossProcesses re-executes the test binary and compares
// permutation digests between the two processes. Go seeds map iteration
// order per process, so ordering code that ranges over a map without
// sorting passes a same-process double-run but fails here.
func TestDeterminismAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process; skipped in -short")
	}
	parent := permDigest()

	cmd := exec.Command(os.Args[0], "-test.run=^TestDeterminismHelper$", "-test.v")
	cmd.Env = append(os.Environ(), determinismHelperEnv+"=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process: %v\n%s", err, out)
	}
	var child string
	for _, line := range strings.Split(string(out), "\n") {
		if v, ok := strings.CutPrefix(strings.TrimSpace(line), "PERM_DIGEST="); ok {
			child = v
			break
		}
	}
	if child == "" {
		t.Fatalf("child printed no digest:\n%s", out)
	}
	if child != parent {
		t.Fatalf("permutations differ across processes: parent %s, child %s (map iteration order is leaking into an ordering)", parent, child)
	}
}
