package reorder

import (
	"testing"

	"repro/internal/sparse"
)

// adversarialMatrices are structural edge cases every technique must
// survive: diagonal-only, one fully dense row/column, self-loop heavy,
// disconnected stars, and a single strongly connected pair inside an
// otherwise empty matrix.
func adversarialMatrices() map[string]*sparse.CSR {
	out := map[string]*sparse.CSR{}

	diag := sparse.NewCOO(32, 32, 32)
	for i := int32(0); i < 32; i++ {
		diag.Add(i, i, 1)
	}
	out["diagonal-only"] = diag.ToCSR()

	dense := sparse.NewCOO(64, 64, 130)
	for c := int32(0); c < 64; c++ {
		if c != 5 {
			dense.AddSym(5, c, 1)
		}
	}
	out["dense-row"] = dense.ToCSR()

	loops := sparse.NewCOO(16, 16, 32)
	for i := int32(0); i < 16; i++ {
		loops.Add(i, i, 1)
		loops.Add(i, (i+1)%16, 1)
	}
	out["self-loop-ring"] = loops.ToCSR()

	stars := sparse.NewCOO(48, 48, 40)
	for s := int32(0); s < 4; s++ {
		hub := s * 12
		for leaf := hub + 1; leaf < hub+12 && leaf < 48; leaf++ {
			stars.AddSym(hub, leaf, 1)
		}
	}
	out["disconnected-stars"] = stars.ToCSR()

	pair := sparse.NewCOO(100, 100, 2)
	pair.AddSym(40, 60, 1)
	out["mostly-empty"] = pair.ToCSR()

	return out
}

func TestTechniquesSurviveAdversarialMatrices(t *testing.T) {
	for matName, m := range adversarialMatrices() {
		for _, tech := range All() {
			tech, m, matName := tech, m, matName
			t.Run(matName+"/"+tech.Name(), func(t *testing.T) {
				p := tech.Order(m)
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				pm := m.PermuteSymmetric(p)
				if pm.NNZ() != m.NNZ() {
					t.Fatal("nonzeros changed")
				}
				if err := pm.Validate(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
