package reorder

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/gen"
)

// BenchmarkReorder times the parallel tier next to its sequential
// ancestors on a planted-partition graph, at workers=1 and workers=NumCPU,
// reporting ns/nnz (the amortization currency of the paper's Figure 9: a
// reordering pays off once kernel savings exceed ns/nnz × sweeps).
// scripts/bench.sh parses these rows into BENCH_reorder.json. On a
// single-CPU host both worker counts coincide and the JSON records
// host_logical_cpus so readers know wall-clock speedup was out of reach.
func BenchmarkReorder(b *testing.B) {
	m := gen.PlantedPartition{Nodes: 16384, Communities: 128, AvgDegree: 16, Mu: 0.2}.Generate(1)
	nnz := float64(m.NNZ())
	techs := []Technique{Rabbit{}, RCM{}, Boba{}, RCMPP{}, RabbitShard{}}
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, tech := range techs {
		for _, w := range counts {
			b.Run(fmt.Sprintf("%s/w=%d", tech.Name(), w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := OrderWith(context.Background(), tech, m, Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(nnz*float64(b.N)), "ns/nnz")
			})
		}
	}
}
