package reorder

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/sparse"
)

func testMatrix(seed uint64) *sparse.CSR {
	return gen.HubbyCommunities{
		Nodes: 1200, Communities: 12, AvgDegree: 8, Mu: 0.25, Hubs: 40, HubDegree: 30,
	}.Generate(seed)
}

func TestAllTechniquesProduceValidPermutations(t *testing.T) {
	m := testMatrix(1)
	for _, tech := range All() {
		tech := tech
		t.Run(tech.Name(), func(t *testing.T) {
			p := tech.Order(m)
			if len(p) != int(m.NumRows) {
				t.Fatalf("permutation has %d entries for %d rows", len(p), m.NumRows)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			pm := m.PermuteSymmetric(p)
			if pm.NNZ() != m.NNZ() {
				t.Fatal("reordering changed the nonzero count")
			}
			if err := pm.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllTechniquesDeterministic(t *testing.T) {
	m := testMatrix(2)
	for _, tech := range All() {
		tech := tech
		t.Run(tech.Name(), func(t *testing.T) {
			a, b := tech.Order(m), tech.Order(m)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("nondeterministic at vertex %d", i)
				}
			}
		})
	}
}

func TestTechniquesHandleDegenerateMatrices(t *testing.T) {
	empty := &sparse.CSR{NumRows: 8, NumCols: 8, RowOffsets: make([]int32, 9)}
	single := &sparse.CSR{NumRows: 1, NumCols: 1, RowOffsets: []int32{0, 1}, ColIndices: []int32{0}, Values: []float32{1}}
	for _, tech := range All() {
		tech := tech
		t.Run(tech.Name(), func(t *testing.T) {
			for _, m := range []*sparse.CSR{empty, single} {
				p := tech.Order(m)
				if err := p.Validate(); err != nil {
					t.Fatalf("on %dx%d matrix: %v", m.NumRows, m.NumCols, err)
				}
			}
		})
	}
}

func TestOriginalIsIdentity(t *testing.T) {
	m := testMatrix(3)
	if !(Original{}).Order(m).IsIdentity() {
		t.Fatal("ORIGINAL must be the identity")
	}
}

func TestRandomIsSeededAndScrambles(t *testing.T) {
	m := testMatrix(4)
	a := Random{Seed: 1}.Order(m)
	b := Random{Seed: 1}.Order(m)
	c := Random{Seed: 2}.Order(m)
	same := 0
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different permutations")
		}
		if a[i] == c[i] {
			same++
		}
		if int(a[i]) != i {
			diff++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds agree on %d of %d positions", same, len(a))
	}
	if diff < len(a)/2 {
		t.Fatal("RANDOM left most vertices in place")
	}
}

func TestDegSortDescendingInDegree(t *testing.T) {
	m := testMatrix(5)
	p := DegSort{}.Order(m)
	inDeg := m.InDegrees()
	inv := p.Inverse()
	for newID := 1; newID < len(inv); newID++ {
		if inDeg[inv[newID-1]] < inDeg[inv[newID]] {
			t.Fatalf("DEGSORT not descending at new ID %d", newID)
		}
	}
}

func TestDBGGroupsByDegreeRange(t *testing.T) {
	m := testMatrix(6)
	p := DBG{}.Order(m)
	inDeg := m.InDegrees()
	inv := p.Inverse()
	// Bucket boundaries: log2 ranges must be non-increasing along the new
	// order.
	bucket := func(d int32) int {
		b := 0
		for x := d; x > 0; x >>= 1 {
			b++
		}
		return b
	}
	for newID := 1; newID < len(inv); newID++ {
		if bucket(inDeg[inv[newID-1]]) < bucket(inDeg[inv[newID]]) {
			t.Fatalf("DBG bucket order violated at new ID %d", newID)
		}
	}
	// Within a bucket the original relative order is preserved.
	for newID := 1; newID < len(inv); newID++ {
		a, b := inv[newID-1], inv[newID]
		if bucket(inDeg[a]) == bucket(inDeg[b]) && a > b {
			t.Fatalf("DBG broke original order inside a bucket: %d before %d", a, b)
		}
	}
}

func TestRCMReducesBandwidthOnMesh(t *testing.T) {
	// Scramble a mesh; RCM must recover a far smaller bandwidth.
	mesh := gen.Mesh2D{Width: 40, Height: 40}.Generate(7)
	scrambled := mesh.PermuteSymmetric(Random{Seed: 3}.Order(mesh))
	before := scrambled.Bandwidth()
	after := scrambled.PermuteSymmetric(RCM{}.Order(scrambled)).Bandwidth()
	if after >= before/4 {
		t.Fatalf("RCM bandwidth %d, want far below scrambled %d", after, before)
	}
}

func TestGorderPlacesNeighborsNearby(t *testing.T) {
	// On a strongly clustered graph, Gorder must place edge endpoints much
	// closer together than a random ordering does.
	m := gen.PlantedPartition{Nodes: 1500, Communities: 30, AvgDegree: 8, Mu: 0.1}.Generate(8)
	gp := Gorder{Window: 5}.Order(m)
	rp := Random{Seed: 4}.Order(m)
	avgDist := func(p sparse.Permutation) float64 {
		var total float64
		for r := int32(0); r < m.NumRows; r++ {
			cols, _ := m.Row(r)
			for _, c := range cols {
				d := int64(p[r]) - int64(p[c])
				if d < 0 {
					d = -d
				}
				total += float64(d)
			}
		}
		return total / float64(m.NNZ())
	}
	if g, r := avgDist(gp), avgDist(rp); g > r/3 {
		t.Fatalf("Gorder avg edge distance %.0f vs random %.0f; want large reduction", g, r)
	}
}

func TestSlashBurnHubsFirst(t *testing.T) {
	m := gen.HubStar{Nodes: 1000, Hubs: 2, HubConn: 0.4, Background: 100}.Generate(9)
	p := SlashBurn{K: 4}.Order(m)
	deg := m.Symmetrize().Degrees()
	// The two giant hubs must land within the first removal batch.
	for v := int32(0); v < m.NumRows; v++ {
		if deg[v] > 300 && p[v] >= 8 {
			t.Fatalf("giant hub %d (degree %d) got new ID %d, want within first rounds", v, deg[v], p[v])
		}
	}
}

func TestHubTechniquesPrefixProperty(t *testing.T) {
	m := testMatrix(10)
	inDeg := m.InDegrees()
	avg := m.AverageDegree()
	var nHubs int32
	for _, d := range inDeg {
		if float64(d) > avg {
			nHubs++
		}
	}
	for _, tech := range []Technique{HubSort{}, HubGroup{}} {
		p := tech.Order(m)
		for v := int32(0); v < m.NumRows; v++ {
			isHub := float64(inDeg[v]) > avg
			inPrefix := p[v] < nHubs
			if isHub != inPrefix {
				t.Fatalf("%s: vertex %d (hub=%v) got new ID %d with %d hubs", tech.Name(), v, isHub, p[v], nHubs)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"RANDOM", "ORIGINAL", "DEGSORT", "DBG", "GORDER", "RABBIT", "RABBIT++", "RCM", "SLASHBURN"} {
		tech, err := ByName(want)
		if err != nil {
			t.Fatal(err)
		}
		if tech.Name() != want {
			t.Fatalf("ByName(%q).Name() = %q", want, tech.Name())
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestFigure2Set(t *testing.T) {
	techs := Figure2()
	if len(techs) != 6 {
		t.Fatalf("Figure 2 evaluates 6 orderings, got %d", len(techs))
	}
	want := []string{"RANDOM", "ORIGINAL", "DEGSORT", "DBG", "GORDER", "RABBIT"}
	for i, tech := range techs {
		if tech.Name() != want[i] {
			t.Fatalf("Figure2()[%d] = %s, want %s", i, tech.Name(), want[i])
		}
	}
}

func TestQuickLightweightTechniquesValid(t *testing.T) {
	f := func(seed uint64) bool {
		m := gen.ErdosRenyi{Nodes: 150, AvgDegree: 4}.Generate(seed)
		for _, tech := range []Technique{DegSort{}, DBG{}, RCM{}, HubSort{}, HubGroup{}, Random{Seed: seed}} {
			if !tech.Order(m).IsValid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
