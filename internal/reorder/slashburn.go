package reorder

import (
	"context"
	"sort"

	"repro/internal/check"
	"repro/internal/sparse"
)

// SlashBurn implements the hub-removal ordering of Lim, Kang & Faloutsos
// (TKDE'14), one of the community-based techniques RABBIT was originally
// compared against. Each round removes the K highest-degree hubs (they
// receive the lowest available IDs), assigns the vertices of all
// non-giant connected components the highest available IDs (largest
// components first), and recurses on the giant connected component until it
// disappears.
type SlashBurn struct {
	// K is the number of hubs removed per round; 0 defaults to 1% of the
	// vertex count (at least 1).
	K int32
}

// Name implements Technique.
func (SlashBurn) Name() string { return "SLASHBURN" }

// Order implements Technique.
func (s SlashBurn) Order(m *sparse.CSR) sparse.Permutation {
	// A background context never cancels, so the error path is unreachable.
	p, _ := s.OrderCtx(context.Background(), m)
	return check.Perm(p)
}

// OrderCtx implements OrdererCtx with a checkpoint per hub-removal round;
// each round is one degree recomputation plus one component sweep over the
// surviving subgraph, so cancellation latency is bounded by a single
// O(alive + edges) pass.
func (s SlashBurn) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sym := m.Symmetrize()
	n := sym.NumRows
	if n == 0 {
		return sparse.Permutation{}, nil
	}
	k := s.K
	if k <= 0 {
		k = n / 100
		if k < 1 {
			k = 1
		}
	}

	perm := make(sparse.Permutation, n)
	removed := make([]bool, n)
	alive := make([]int32, n) // current working set
	for i := range alive {
		alive[i] = int32(i)
	}
	lo, hi := int32(0), n // next IDs to hand out at the front/back

	deg := make([]int32, n)
	comp := make([]int32, n)
	queue := make([]int32, 0, n)

	for len(alive) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Degrees within the alive subgraph.
		for _, v := range alive {
			d := int32(0)
			cols, _ := sym.Row(v)
			for _, c := range cols {
				if !removed[c] && c != v {
					d++
				}
			}
			deg[v] = d
		}
		// Remove the k highest-degree hubs; they take IDs from the front.
		hubs := make([]int32, len(alive))
		copy(hubs, alive)
		sort.SliceStable(hubs, func(a, b int) bool { return deg[hubs[a]] > deg[hubs[b]] })
		take := k
		if nh := check.SafeInt32(len(hubs)); take > nh {
			take = nh
		}
		for _, h := range hubs[:take] {
			perm[h] = lo
			lo++
			removed[h] = true
		}
		// Connected components of the remainder.
		for _, v := range alive {
			comp[v] = -1
		}
		type cc struct {
			id      int32
			members []int32
		}
		var comps []cc
		for _, v := range alive {
			if removed[v] || comp[v] >= 0 {
				continue
			}
			id := check.SafeInt32(len(comps))
			comp[v] = id
			queue = append(queue[:0], v)
			members := []int32{v}
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				cols, _ := sym.Row(u)
				for _, c := range cols {
					if removed[c] || comp[c] >= 0 {
						continue
					}
					comp[c] = id
					queue = append(queue, c)
					members = append(members, c)
				}
			}
			comps = append(comps, cc{id: id, members: members})
		}
		if len(comps) == 0 {
			break
		}
		// Giant component continues; all others take IDs from the back,
		// smaller components last.
		giant := 0
		for i := range comps {
			if len(comps[i].members) > len(comps[giant].members) {
				giant = i
			}
		}
		rest := make([]cc, 0, len(comps)-1)
		for i := range comps {
			if i != giant {
				rest = append(rest, comps[i])
			}
		}
		sort.SliceStable(rest, func(a, b int) bool { return len(rest[a].members) < len(rest[b].members) })
		for _, c := range rest {
			for i := len(c.members) - 1; i >= 0; i-- {
				hi--
				perm[c.members[i]] = hi
				removed[c.members[i]] = true
			}
		}
		alive = comps[giant].members
		// Termination: once the giant component is no larger than k, place
		// it directly.
		if len(alive) <= int(k) {
			for _, v := range alive {
				perm[v] = lo
				lo++
				removed[v] = true
			}
			break
		}
	}
	return check.Perm(perm), nil
}
