package reorder

import (
	"testing"

	"repro/internal/check"
	"repro/internal/sparse"
)

// pathologicalMatrices is the property-test corpus: degenerate shapes that
// stress every structural assumption a reordering technique can make.
// Unlike adversarialMatrices (which targets realistic skew), these are the
// boundary inputs — empty, single-vertex, and assembly edge cases.
func pathologicalMatrices() map[string]*sparse.CSR {
	out := map[string]*sparse.CSR{}

	out["empty-0x0"] = sparse.NewCOO(0, 0, 0).ToCSR()

	single := sparse.NewCOO(1, 1, 1)
	single.Add(0, 0, 1)
	out["single-row"] = single.ToCSR()

	out["single-row-empty"] = sparse.NewCOO(1, 1, 0).ToCSR()

	dense := sparse.NewCOO(24, 24, 48)
	for c := int32(1); c < 24; c++ {
		dense.AddSym(0, c, 1)
	}
	out["single-dense-row"] = dense.ToCSR()

	diag := sparse.NewCOO(17, 17, 17)
	for i := int32(0); i < 17; i++ {
		diag.Add(i, i, 1)
	}
	out["diagonal-only"] = diag.ToCSR()

	// Three separate cliques plus isolated vertices in between: both the
	// component finder and the community detector see disjoint structure.
	disc := sparse.NewCOO(40, 40, 64)
	for _, base := range []int32{0, 15, 31} {
		for i := base; i < base+5; i++ {
			for j := i + 1; j < base+5; j++ {
				disc.AddSym(i, j, 1)
			}
		}
	}
	out["disconnected-components"] = disc.ToCSR()

	// The same few coordinates added many times: ToCSR must merge them by
	// summation and every technique must see the merged pattern, not the
	// duplicate count.
	dup := sparse.NewCOO(8, 8, 96)
	for rep := 0; rep < 12; rep++ {
		dup.AddSym(0, 1, 0.5)
		dup.AddSym(2, 3, 0.25)
		dup.Add(4, 4, 1)
		dup.AddSym(5, 6, 0.125)
	}
	out["duplicate-heavy"] = dup.ToCSR()

	return out
}

// propertyTechniques is every registered technique plus the combinators,
// which have their own traversal logic worth stressing.
func propertyTechniques() []Technique {
	ts := All()
	ts = append(ts,
		Chain{Rabbit{}, DegSort{}},
		PerComponent{Inner: RCM{}},
		PerComponent{Inner: Rabbit{}},
	)
	return ts
}

// TestPropertyValidPermutation is the core property sweep: every technique
// maps every pathological matrix to a valid permutation, and applying that
// permutation preserves the matrix (entry count, validity, symmetry of the
// operation).
func TestPropertyValidPermutation(t *testing.T) {
	for matName, m := range pathologicalMatrices() {
		for _, tech := range propertyTechniques() {
			tech, m := tech, m
			t.Run(matName+"/"+tech.Name(), func(t *testing.T) {
				p := tech.Order(m)
				if err := check.ValidPermutation(p); err != nil {
					t.Fatalf("invalid permutation: %v", err)
				}
				if len(p) != int(m.NumRows) {
					t.Fatalf("permutation length %d for %d rows", len(p), m.NumRows)
				}
				pm := m.PermuteSymmetric(p)
				if err := pm.Validate(); err != nil {
					t.Fatalf("permuted matrix invalid: %v", err)
				}
				if pm.NNZ() != m.NNZ() {
					t.Fatalf("nonzeros changed: %d -> %d", m.NNZ(), pm.NNZ())
				}
			})
		}
	}
}

// TestPropertyDeterministic pins down that every technique is a pure
// function of the matrix: two runs on clones yield identical permutations.
// The serving cache depends on this (digest equality must imply
// permutation equality).
func TestPropertyDeterministic(t *testing.T) {
	for matName, m := range pathologicalMatrices() {
		for _, tech := range propertyTechniques() {
			tech, m := tech, m
			t.Run(matName+"/"+tech.Name(), func(t *testing.T) {
				p1 := tech.Order(m.Clone())
				p2 := tech.Order(m.Clone())
				if len(p1) != len(p2) {
					t.Fatalf("lengths differ: %d vs %d", len(p1), len(p2))
				}
				for i := range p1 {
					if p1[i] != p2[i] {
						t.Fatalf("permutations differ at %d: %d vs %d", i, p1[i], p2[i])
					}
				}
			})
		}
	}
}
