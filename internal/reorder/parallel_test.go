package reorder

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/sparse"
)

// workerCounts are the parallelism levels the determinism matrix sweeps:
// the sequential reference, two fixed multi-worker levels (meaningful even
// on a single-CPU host, since goroutines interleave), and whatever this
// host's NumCPU is, deduplicated.
func workerCounts() []int {
	counts := []int{1, 2, 4}
	ncpu := runtime.NumCPU()
	for _, c := range counts {
		if c == ncpu {
			return counts
		}
	}
	return append(counts, ncpu)
}

// determinismMatrices is the worker-matrix corpus: every pathological
// shape plus a matrix large enough (1200 rows > several 256-row shards)
// that the sharded and chunked code paths actually split work.
func determinismMatrices() map[string]*sparse.CSR {
	ms := pathologicalMatrices()
	ms["hubby-1200"] = testMatrix(1)
	return ms
}

// TestWorkerCountDeterminismMatrix is the lockdown for the parallel tier:
// every registered technique (plus the combinators) over every corpus
// matrix must produce byte-identical permutations at workers = 1, 2, 4,
// and NumCPU. Techniques outside the parallel tier go through the same
// OrderWith dispatch, pinning that the options plumbing never perturbs
// the sequential paths either.
func TestWorkerCountDeterminismMatrix(t *testing.T) {
	counts := workerCounts()
	for name, m := range determinismMatrices() {
		for _, tech := range propertyTechniques() {
			ref, err := OrderWith(context.Background(), tech, m, Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s workers=1: %v", tech.Name(), name, err)
			}
			for _, w := range counts[1:] {
				p, err := OrderWith(context.Background(), tech, m, Options{Workers: w})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", tech.Name(), name, w, err)
				}
				if len(p) != len(ref) {
					t.Fatalf("%s/%s workers=%d: length %d, want %d", tech.Name(), name, w, len(p), len(ref))
				}
				for i := range p {
					if p[i] != ref[i] {
						t.Fatalf("%s/%s: workers=%d diverges from workers=1 at vertex %d: %d vs %d",
							tech.Name(), name, w, i, p[i], ref[i])
					}
				}
			}
		}
	}
}

// parallelTechniques returns the registry members that implement
// ParallelOrderer.
func parallelTechniques() []ParallelOrderer {
	var out []ParallelOrderer
	for _, tech := range All() {
		if po, ok := tech.(ParallelOrderer); ok {
			out = append(out, po)
		}
	}
	return out
}

// TestParallelTierRegistered pins that the parallel tier is present in the
// registry: BOBA, RCM++, and RABBIT-SHARD all implement ParallelOrderer.
func TestParallelTierRegistered(t *testing.T) {
	want := map[string]bool{"BOBA": false, "RCM++": false, "RABBIT-SHARD": false}
	for _, po := range parallelTechniques() {
		if _, ok := want[po.Name()]; ok {
			want[po.Name()] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("registered technique %s does not implement ParallelOrderer", name)
		}
	}
}

// TestOrderParallelCtxMatchesOrder verifies the OrdererCtx contract on the
// parallel entry point: at full parallelism with a live context the result
// is byte-identical to the plain Order path.
func TestOrderParallelCtxMatchesOrder(t *testing.T) {
	m := testMatrix(7)
	for _, po := range parallelTechniques() {
		ref := po.(Technique).Order(m)
		p, err := po.OrderParallelCtx(context.Background(), m, Options{Workers: runtime.NumCPU() + 3})
		if err != nil {
			t.Fatalf("%s: %v", po.Name(), err)
		}
		for i := range p {
			if p[i] != ref[i] {
				t.Fatalf("%s: OrderParallelCtx diverges from Order at vertex %d", po.Name(), i)
			}
		}
	}
}

// TestOrderParallelCtxCancelledBeforeStart verifies prompt cancellation:
// a pre-cancelled context returns (nil, ctx.Err()) without computing.
func TestOrderParallelCtxCancelledBeforeStart(t *testing.T) {
	m := testMatrix(7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, po := range parallelTechniques() {
		p, err := po.OrderParallelCtx(ctx, m, Options{Workers: 4})
		if err != context.Canceled {
			t.Errorf("%s: error = %v, want context.Canceled", po.Name(), err)
		}
		if p != nil {
			t.Errorf("%s: got a permutation from a cancelled context", po.Name())
		}
	}
}

// TestOrderWithDispatch pins the dispatch rule: parallel techniques route
// through OrderParallelCtx, everything else through the cancellable
// sequential path, and both agree with the technique's plain Order.
func TestOrderWithDispatch(t *testing.T) {
	m := testMatrix(3)
	for _, tech := range []Technique{DegSort{}, Boba{}} {
		ref := tech.Order(m)
		p, err := OrderWith(context.Background(), tech, m, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", tech.Name(), err)
		}
		for i := range p {
			if p[i] != ref[i] {
				t.Fatalf("%s: OrderWith diverges from Order at vertex %d", tech.Name(), i)
			}
		}
	}
}
