package reorder

import (
	"context"
	"sync"

	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/sparse"
)

// Boba implements BOBA-style sort-free parallel reordering (arXiv
// 2306.10410): vertices receive new IDs in order of their first appearance
// as a destination while the nonzeros are scanned in row-major order, and
// vertices that never appear as a destination are appended in ascending
// ID order. No comparison sort runs anywhere, which is the point — the
// cost is one O(nnz) scan, cheap enough to amortize after a single kernel
// sweep.
//
// Parallelization splits the rows into the stable chunks of
// community.Shards; each worker collects the chunk-local first-appearance
// list for its chunks (dedup within the chunk via an epoch-stamped seen
// array), and a sequential pass walks the chunks in order assigning IDs to
// vertices not yet claimed by an earlier chunk. Chunk boundaries depend
// only on the row count, the per-chunk lists land in chunk-owned slots,
// and the cross-chunk dedup is sequential — so the permutation is
// byte-identical at every worker count.
type Boba struct{}

// Name implements Technique.
func (Boba) Name() string { return "BOBA" }

// Order implements Technique (the Workers=1 path).
func (b Boba) Order(m *sparse.CSR) sparse.Permutation {
	// A background context never cancels, so the error path is unreachable.
	p, _ := b.OrderParallelCtx(context.Background(), m, Options{})
	return check.Perm(p)
}

// OrderCtx implements OrdererCtx as the single-worker parallel path.
func (b Boba) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	p, err := b.OrderParallelCtx(ctx, m, Options{})
	if err != nil {
		return nil, err
	}
	return check.Perm(p), nil
}

// bobaChunk is one chunk's contribution: the distinct destination vertices
// of the chunk's rows in first-appearance order, plus the cancellation
// error, if any. Each chunk writes only its own slot.
type bobaChunk struct {
	firsts []int32
	err    error
}

// OrderParallelCtx implements ParallelOrderer.
func (Boba) OrderParallelCtx(ctx context.Context, m *sparse.CSR, opts Options) (sparse.Permutation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := m.NumRows
	chunks := community.Shards(n)
	workers := opts.workers()
	if workers > len(chunks) {
		workers = len(chunks)
	}

	locals := make([]bobaChunk, len(chunks))
	if len(chunks) > 0 {
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				// Chunk-local dedup: a worker reuses one stamp array across
				// its chunks, bumping the epoch per chunk.
				stamp := make([]int32, n)
				for i := range stamp {
					stamp[i] = -1
				}
				for si := wi; si < len(chunks); si += workers {
					locals[si] = bobaScanChunk(ctx, m, chunks[si], stamp, int32(si))
				}
			}(wi)
		}
		wg.Wait()
	}
	for _, lc := range locals {
		if lc.err != nil {
			return nil, lc.err
		}
	}

	// Sequential merge in chunk order: first chunk to mention a vertex
	// names it.
	assigned := make([]bool, n)
	order := make([]int32, 0, n)
	for si, lc := range locals {
		if si%16 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, c := range lc.firsts {
			if !assigned[c] {
				assigned[c] = true
				order = append(order, c)
			}
		}
	}
	for v := int32(0); v < n; v++ {
		if !assigned[v] {
			order = append(order, v)
		}
	}
	return check.Perm(sparse.FromNewOrder(order)), nil
}

// bobaScanChunk scans one chunk's rows in order and returns the distinct
// column indices in first-appearance order. stamp is the caller-owned
// epoch array (stamp[v] == epoch means v was already seen in this chunk).
func bobaScanChunk(ctx context.Context, m *sparse.CSR, ch community.Shard, stamp []int32, epoch int32) bobaChunk {
	var out bobaChunk
	for v := ch.Lo; v < ch.Hi; v++ {
		if (v-ch.Lo)%1024 == 0 {
			if err := ctx.Err(); err != nil {
				out.err = err
				return out
			}
		}
		cols, _ := m.Row(v)
		for _, c := range cols {
			if stamp[c] != epoch {
				stamp[c] = epoch
				out.firsts = append(out.firsts, c)
			}
		}
	}
	return out
}
