package reorder

import (
	"sort"
	"strings"

	"repro/internal/check"
	"repro/internal/sparse"
)

// Chain composes reordering techniques left to right: the matrix is
// reordered by the first technique, the result by the second, and so on;
// the returned permutation is the composition. Chaining lets lightweight
// refinements run on top of heavyweight ones (e.g. hub grouping after a
// partitioning order) without materializing intermediate files.
type Chain []Technique

// Name implements Technique.
func (c Chain) Name() string {
	parts := make([]string, len(c))
	for i, t := range c {
		parts[i] = t.Name()
	}
	return strings.Join(parts, "∘")
}

// Order implements Technique.
func (c Chain) Order(m *sparse.CSR) sparse.Permutation {
	perm := sparse.Identity(m.NumRows)
	cur := m
	for _, t := range c {
		p := t.Order(cur)
		cur = cur.PermuteSymmetric(p)
		perm = perm.Compose(p)
	}
	return check.Perm(perm)
}

// PerComponent applies the inner technique independently to every weakly
// connected component, laying components out contiguously in decreasing
// size order. Disconnected matrices (road networks, k-mer graphs) often
// reorder better per component because global techniques waste ID ranges
// bridging unrelated pieces.
type PerComponent struct {
	Inner Technique
}

// Name implements Technique.
func (p PerComponent) Name() string { return "PERCOMP(" + p.Inner.Name() + ")" }

// Order implements Technique.
func (p PerComponent) Order(m *sparse.CSR) sparse.Permutation {
	label, count := m.ConnectedComponents()
	if count <= 1 {
		return p.Inner.Order(m)
	}
	members := make([][]int32, count)
	for v := int32(0); v < m.NumRows; v++ {
		members[label[v]] = append(members[label[v]], v)
	}
	order := make([]int32, 0, count)
	for c := int32(0); c < count; c++ {
		order = append(order, c)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(members[order[a]]) > len(members[order[b]])
	})
	perm := make(sparse.Permutation, m.NumRows)
	var base int32
	for _, c := range order {
		sub, localOf := extractComponent(m, members[c])
		local := p.Inner.Order(sub)
		for i, v := range localOf {
			perm[v] = base + local[i]
		}
		base += check.SafeInt32(len(localOf))
	}
	return check.Perm(perm)
}

// extractComponent builds the induced submatrix over the given vertices
// (in their given order) and returns it with the local→global vertex map.
func extractComponent(m *sparse.CSR, vs []int32) (*sparse.CSR, []int32) {
	localID := make(map[int32]int32, len(vs))
	for i, v := range vs {
		localID[v] = int32(i)
	}
	nv := check.SafeInt32(len(vs))
	coo := sparse.NewCOO(nv, nv, 0)
	for i, v := range vs {
		cols, vals := m.Row(v)
		for k, c := range cols {
			if j, ok := localID[c]; ok {
				coo.Add(int32(i), j, vals[k])
			}
		}
	}
	return coo.ToCSR(), vs
}
