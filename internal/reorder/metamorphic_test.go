package reorder

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/community"
	"repro/internal/kernels"
	"repro/internal/quality"
	"repro/internal/sparse"
)

// The metamorphic relation under test: relabeling the input graph by a
// random permutation r must not change what a reordering technique
// computes, up to that same relabeling. Concretely, with
//
//	m2 = r(m),  p  = t.Order(m),  p2 = t.Order(m2),  c = r.Compose(p2)
//
// the reordered-relabelled matrix m2.PermuteSymmetric(p2) is exactly
// m.PermuteSymmetric(c), so SpMV through it must reproduce the original
// SpMV output modulo c, and label-invariant quality metrics (insularity,
// modularity, average edge distance) must agree to float tolerance.
//
// All matrix and vector values are small integers so every float32/float64
// accumulation is exact regardless of summation order; the SpMV comparison
// can therefore demand bitwise equality.

// metamorphicMatrix builds a 60-node, 4-community graph (dense blocks of
// 15 plus a sparse ring of bridges) with small-integer values.
func metamorphicMatrix() *sparse.CSR {
	const n, comm = 60, 15
	coo := sparse.NewCOO(n, n, 2048)
	for i := int32(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameComm := i/comm == j/comm
			bridge := j == i+comm && i%comm == 0
			if sameComm && (i+j)%3 != 0 || bridge {
				coo.AddSym(i, j, float32((i+j)%7+1))
			}
		}
	}
	return coo.ToCSR()
}

// groundTruthLabels is the planted community structure of
// metamorphicMatrix.
func groundTruthLabels(n int32) []int32 {
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i) / 15
	}
	return labels
}

func spmv(t *testing.T, m *sparse.CSR, x []float32) []float32 {
	t.Helper()
	y := make([]float32, m.NumRows)
	if err := kernels.SpMVCSR(m, x, y); err != nil {
		t.Fatal(err)
	}
	return y
}

func TestMetamorphicRelabelingInvariance(t *testing.T) {
	m := metamorphicMatrix()
	n := m.NumRows

	rng := rand.New(rand.NewSource(0x5EED))
	r := make(sparse.Permutation, n)
	for i, v := range rng.Perm(int(n)) {
		r[i] = int32(v)
	}
	m2 := m.PermuteSymmetric(r)

	// Integer-valued input vector, relabel-covariant.
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(i%9 + 1)
	}
	y := spmv(t, m, x)

	labels := groundTruthLabels(n)
	a := community.FromLabels(labels)
	labels2 := make([]int32, n)
	for i, lab := range labels {
		labels2[r[i]] = lab
	}
	a2 := community.FromLabels(labels2)

	insul, insul2 := community.Insularity(m, a), community.Insularity(m2, a2)
	if math.Abs(insul-insul2) > 1e-12 {
		t.Fatalf("insularity not relabel-invariant: %v vs %v", insul, insul2)
	}
	mod, mod2 := community.Modularity(m, a), community.Modularity(m2, a2)
	if math.Abs(mod-mod2) > 1e-12 {
		t.Fatalf("modularity not relabel-invariant: %v vs %v", mod, mod2)
	}

	for _, tech := range propertyTechniques() {
		tech := tech
		t.Run(tech.Name(), func(t *testing.T) {
			p := tech.Order(m)
			p2 := tech.Order(m2)
			c := r.Compose(p2)

			// Reordering alone must leave SpMV output invariant: y'[p[i]]
			// equals y[i].
			a1 := m.PermuteSymmetric(p)
			y1 := spmv(t, a1, p.PermuteVector(x))
			for i := int32(0); i < n; i++ {
				if y1[p[i]] != y[i] {
					t.Fatalf("reorder changed SpMV output at row %d: %v vs %v", i, y1[p[i]], y[i])
				}
			}

			// Relabel-then-reorder must agree with the conjugated
			// permutation applied to the original matrix, and SpMV through
			// it must reproduce y modulo c, bit for bit.
			a2m := m2.PermuteSymmetric(p2)
			if conj := m.PermuteSymmetric(c); !a2m.Equal(conj) {
				t.Fatal("relabel+reorder disagrees with conjugated permutation of the original")
			}
			y2 := spmv(t, a2m, c.PermuteVector(x))
			want := c.PermuteVector(y)
			for i := range y2 {
				if y2[i] != want[i] {
					t.Fatalf("relabelled SpMV output differs at row %d: %v vs %v", i, y2[i], want[i])
				}
			}

			// The locality quality of the technique's output, measured on
			// each labeling, must match: the metric sees the same reordered
			// matrix either way.
			d := quality.AverageEdgeDistance(m, c)
			d2 := quality.AverageEdgeDistance(m2, p2)
			if math.Abs(d-d2) > 1e-12 {
				t.Fatalf("average edge distance not relabel-invariant: %v vs %v", d, d2)
			}
		})
	}
}
