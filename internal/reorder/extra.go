package reorder

import (
	"sort"

	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// PartitionOrder adapts the multilevel graph partitioner (internal/partition,
// METIS-style) as a reordering technique: the k parts of a balanced
// edge-cut partition receive consecutive ID ranges. The paper's related
// work expects the insular/hub insights to extend to partitioning-based
// reordering (Section VII); the ablation experiments compare it against
// RABBIT directly.
type PartitionOrder struct {
	Parts int32 // 0 defaults to 64
}

// Name implements Technique.
func (PartitionOrder) Name() string { return "PARTITION" }

// Order implements Technique.
func (p PartitionOrder) Order(m *sparse.CSR) sparse.Permutation {
	parts := p.Parts
	if parts <= 0 {
		parts = 64
	}
	if parts > m.NumRows && m.NumRows > 0 {
		parts = m.NumRows
	}
	if m.NumRows == 0 {
		return sparse.Permutation{}
	}
	labels := partition.Partition(m, partition.Options{Parts: parts})
	return check.Perm(partition.Order(labels, parts))
}

// LouvainOrder orders by Louvain community detection: communities receive
// consecutive ID ranges (larger communities first), preserving the original
// relative order within each community. It is the "other detector" ablation
// against RABBIT's incremental aggregation.
type LouvainOrder struct{}

// Name implements Technique.
func (LouvainOrder) Name() string { return "LOUVAIN" }

// Order implements Technique.
func (LouvainOrder) Order(m *sparse.CSR) sparse.Permutation {
	a := community.Louvain(m.Symmetrize(), community.LouvainOptions{})
	return check.Perm(louvainPerm(m, a))
}

// FrequencyClustering implements frequency-based clustering (Zhang et al.,
// "Making Caches Work for Graph Analytics"): vertices with in-degree above
// the average are sorted by descending degree at the front; the rest keep
// their original order. It differs from HUBSORT only in using the mean
// in-degree over *referenced* vertices; the paper groups it with the
// degree-based techniques DBG was shown to beat.
type FrequencyClustering struct{}

// Name implements Technique.
func (FrequencyClustering) Name() string { return "FBC" }

// Order implements Technique.
func (FrequencyClustering) Order(m *sparse.CSR) sparse.Permutation {
	inDeg := m.InDegrees()
	var referenced int64
	var count int64
	for _, d := range inDeg {
		if d > 0 {
			referenced += int64(d)
			count++
		}
	}
	avg := 0.0
	if count > 0 {
		avg = float64(referenced) / float64(count)
	}
	var hot, cold []int32
	for v := int32(0); v < m.NumRows; v++ {
		if float64(inDeg[v]) > avg {
			hot = append(hot, v)
		} else {
			cold = append(cold, v)
		}
	}
	sort.SliceStable(hot, func(a, b int) bool { return inDeg[hot[a]] > inDeg[hot[b]] })
	return check.Perm(sparse.FromNewOrder(append(hot, cold...)))
}

// HubCluster implements the HubCluster variant of Balaji & Lucia
// (IISWC'18): hub vertices (in-degree above average) are *clustered* to the
// front preserving original order — like HUBGROUP — but the cold region is
// additionally packed so that vertices with zero in-degree sink to the very
// end, keeping never-referenced rows out of the hot ID range entirely.
type HubCluster struct{}

// Name implements Technique.
func (HubCluster) Name() string { return "HUBCLUSTER" }

// Order implements Technique.
func (HubCluster) Order(m *sparse.CSR) sparse.Permutation {
	inDeg := m.InDegrees()
	avg := m.AverageDegree()
	var hubs, warm, dead []int32
	for v := int32(0); v < m.NumRows; v++ {
		switch {
		case float64(inDeg[v]) > avg:
			hubs = append(hubs, v)
		case inDeg[v] > 0:
			warm = append(warm, v)
		default:
			dead = append(dead, v)
		}
	}
	order := append(hubs, warm...)
	return check.Perm(sparse.FromNewOrder(append(order, dead...)))
}
