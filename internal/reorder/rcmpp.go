package reorder

import (
	"context"
	"sort"
	"sync"

	"repro/internal/check"
	"repro/internal/sparse"
)

// rcmppMaxCandidates bounds how many last-level vertices the bi-criteria
// finder evaluates per iteration (the lowest-degree ones, ties broken by
// ascending ID). RCM++ shows a small candidate set already recovers most
// of the bandwidth win; the cap keeps the finder O(candidates · nnz).
const rcmppMaxCandidates = 8

// rcmppMaxIterations bounds the pseudo-peripheral iteration; in practice
// eccentricity stops growing after a handful of hops.
const rcmppMaxIterations = 16

// RCMPP implements RCM++ (arXiv 2409.04171): the RCM BFS of this package
// preceded by a bi-criteria starting-node finder. Instead of starting each
// component at its minimum-degree vertex, the finder runs a George–Liu
// pseudo-peripheral iteration whose candidate step evaluates the
// lowest-degree vertices of the last BFS level by BOTH criteria — maximize
// BFS height (level count), tie-break by minimizing width (largest level),
// then by minimum ID. Deeper, narrower level structures directly bound the
// resulting bandwidth, which plain min-degree starts often miss.
//
// The candidate evaluations are independent BFS traversals and run across
// Options.Workers goroutines; each candidate's (height, width) lands in
// its own slot and the winner is chosen by a sequential scan in candidate
// order, so the chosen start — and therefore the permutation — is
// byte-identical at every worker count.
type RCMPP struct{}

// Name implements Technique.
func (RCMPP) Name() string { return "RCM++" }

// Order implements Technique (the Workers=1 path).
func (r RCMPP) Order(m *sparse.CSR) sparse.Permutation {
	// A background context never cancels, so the error path is unreachable.
	p, _ := r.OrderParallelCtx(context.Background(), m, Options{})
	return check.Perm(p)
}

// OrderCtx implements OrdererCtx as the single-worker parallel path.
func (r RCMPP) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	p, err := r.OrderParallelCtx(ctx, m, Options{})
	if err != nil {
		return nil, err
	}
	return check.Perm(p), nil
}

// OrderParallelCtx implements ParallelOrderer.
func (RCMPP) OrderParallelCtx(ctx context.Context, m *sparse.CSR, opts Options) (sparse.Permutation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sym := m.Symmetrize()
	n := sym.NumRows
	deg := sym.Degrees()

	// Components are still discovered lowest-degree-first so the output
	// component order matches RCM's; only the start within each component
	// changes.
	byDegree := make([]int32, n)
	for i := range byDegree {
		byDegree[i] = int32(i)
	}
	sort.SliceStable(byDegree, func(a, b int) bool { return deg[byDegree[a]] < deg[byDegree[b]] })

	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	scratch := make([]int32, 0, 64)
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	var epoch int32
	for _, seed := range byDegree {
		if visited[seed] {
			continue
		}
		start, err := rcmppFindStart(ctx, sym, deg, seed, seen, &epoch, opts.workers())
		if err != nil {
			return nil, err
		}
		visited[start] = true
		queue = append(queue[:0], start)
		order = append(order, start)
		for head := 0; head < len(queue); head++ {
			if head%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			u := queue[head]
			cols, _ := sym.Row(u)
			scratch = scratch[:0]
			for _, v := range cols {
				if !visited[v] {
					visited[v] = true
					scratch = append(scratch, v)
				}
			}
			sort.SliceStable(scratch, func(a, b int) bool { return deg[scratch[a]] < deg[scratch[b]] })
			queue = append(queue, scratch...)
			order = append(order, scratch...)
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return check.Perm(sparse.FromNewOrder(order)), nil
}

// bfsShape summarizes one rooted BFS of a component: height is the number
// of levels, width the size of the largest level, last the final level's
// vertices in BFS order (only when wantLast). err slots the cancellation
// error for ordered fan-in.
type bfsShape struct {
	height int32
	width  int32
	last   []int32
	err    error
}

// bfsMeasure runs a level-structured BFS from start using the caller's
// epoch-stamped seen array (seen[v] == epoch marks v reached).
func bfsMeasure(ctx context.Context, sym *sparse.CSR, start int32, seen []int32, epoch int32, wantLast bool) bfsShape {
	var out bfsShape
	queue := make([]int32, 1, 64)
	queue[0] = start
	seen[start] = epoch
	levelStart := 0
	for levelStart < len(queue) {
		levelEnd := len(queue)
		out.height++
		if w := int32(levelEnd - levelStart); w > out.width {
			out.width = w
		}
		if wantLast {
			out.last = append(out.last[:0], queue[levelStart:levelEnd]...)
		}
		for i := levelStart; i < levelEnd; i++ {
			if i%1024 == 0 {
				if err := ctx.Err(); err != nil {
					out.err = err
					return out
				}
			}
			cols, _ := sym.Row(queue[i])
			for _, v := range cols {
				if seen[v] != epoch {
					seen[v] = epoch
					queue = append(queue, v)
				}
			}
		}
		levelStart = levelEnd
	}
	return out
}

// rcmppFindStart runs the bi-criteria pseudo-peripheral iteration from
// seed and returns the chosen starting vertex for the component. seen and
// epoch are the sequential caller's scratch; candidate evaluations use
// worker-owned scratch so they can run concurrently.
func rcmppFindStart(ctx context.Context, sym *sparse.CSR, deg []int32, seed int32, seen []int32, epoch *int32, workers int) (int32, error) {
	cur := seed
	var curHeight int32 = -1
	for iter := 0; iter < rcmppMaxIterations; iter++ {
		*epoch++
		shape := bfsMeasure(ctx, sym, cur, seen, *epoch, true)
		if shape.err != nil {
			return 0, shape.err
		}
		if shape.height <= curHeight {
			break
		}
		curHeight = shape.height
		cands := rcmppCandidates(shape.last, deg)
		shapes, err := rcmppEvaluate(ctx, sym, cands, workers)
		if err != nil {
			return 0, err
		}
		// Winner scan in candidate order: max height, then min width, then
		// min ID (candidates are ID-ascending, so strict improvement only).
		best := -1
		for i, s := range shapes {
			if best < 0 || s.height > shapes[best].height ||
				(s.height == shapes[best].height && s.width < shapes[best].width) {
				best = i
			}
		}
		if best < 0 || shapes[best].height <= curHeight {
			// No candidate is deeper than the current root: cur is already
			// pseudo-peripheral under the bi-criteria rule.
			break
		}
		cur = cands[best]
	}
	return cur, nil
}

// rcmppCandidates picks the lowest-degree vertices of the last BFS level,
// ties broken by ascending ID, capped at rcmppMaxCandidates.
func rcmppCandidates(last []int32, deg []int32) []int32 {
	cands := make([]int32, len(last))
	copy(cands, last)
	sort.SliceStable(cands, func(a, b int) bool {
		if deg[cands[a]] != deg[cands[b]] {
			return deg[cands[a]] < deg[cands[b]]
		}
		return cands[a] < cands[b]
	})
	if len(cands) > rcmppMaxCandidates {
		cands = cands[:rcmppMaxCandidates]
	}
	return cands
}

// rcmppEvaluate measures the BFS shape rooted at every candidate, fanning
// the traversals out over the workers. Candidate i is handled by worker
// i%workers and writes only shapes[i], so the fan-in is ordered.
func rcmppEvaluate(ctx context.Context, sym *sparse.CSR, cands []int32, workers int) ([]bfsShape, error) {
	shapes := make([]bfsShape, len(cands))
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		seen := make([]int32, sym.NumRows)
		for i := range seen {
			seen[i] = -1
		}
		for ci, c := range cands {
			shapes[ci] = bfsMeasure(ctx, sym, c, seen, int32(ci), false)
		}
	} else {
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				seen := make([]int32, sym.NumRows)
				for i := range seen {
					seen[i] = -1
				}
				for ci := wi; ci < len(cands); ci += workers {
					shapes[ci] = bfsMeasure(ctx, sym, cands[ci], seen, int32(ci), false)
				}
			}(wi)
		}
		wg.Wait()
	}
	for _, s := range shapes {
		if s.err != nil {
			return nil, s.err
		}
	}
	return shapes, nil
}
