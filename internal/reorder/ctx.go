package reorder

import (
	"context"
	"sort"

	"repro/internal/check"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/sparse"
)

// OrdererCtx is a reordering technique that supports cooperative
// cancellation. OrderCtx either returns a valid permutation with a nil
// error, or (nil, ctx.Err()) promptly after the context is cancelled or
// its deadline passes. A nil error guarantees a permutation byte-identical
// to the one the plain Order method would have produced: cancellation
// checkpoints never influence the computed ordering.
//
// The long-running techniques (RABBIT and its variants, LOUVAIN, GORDER,
// RCM, SLASHBURN, and the combinators) implement OrderCtx natively with
// checkpoints inside their hot loops; everything else is wrapped by
// WithContext's checkpointing adapter, which bounds cancellation latency
// by one full Order call — acceptable because the remaining techniques are
// all cheap degree-bucketing passes.
type OrdererCtx interface {
	// Name returns the technique's display name, matching Technique.Name.
	Name() string
	// OrderCtx computes the old→new permutation, honoring ctx.
	OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error)
}

// WithContext adapts a Technique to OrdererCtx. Techniques that implement
// OrderCtx natively are returned as-is; the rest get a checkpointing
// adapter that verifies the context before starting and refuses to hand
// out results computed past the deadline.
func WithContext(t Technique) OrdererCtx {
	if oc, ok := t.(OrdererCtx); ok {
		return oc
	}
	return ctxAdapter{t}
}

// ByNameCtx resolves a technique from its display name as a cancellable
// orderer, the resolution path the reorderd service uses.
func ByNameCtx(name string) (OrdererCtx, error) {
	t, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return WithContext(t), nil
}

// ctxAdapter wraps a context-oblivious Technique with entry and exit
// checkpoints.
type ctxAdapter struct {
	Technique
}

// OrderCtx implements OrdererCtx.
func (a ctxAdapter) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := a.Technique.Order(m)
	// The deadline may have passed mid-computation; callers of OrderCtx
	// must never observe a result after cancellation, so the adapter
	// re-checks before returning.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return check.Perm(p), nil
}

// OrderCtx implements OrdererCtx via core.RabbitCtx's cancellable merge
// loop.
func (Rabbit) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	rr, err := core.RabbitCtx(ctx, m)
	if err != nil {
		return nil, err
	}
	return check.Perm(rr.Perm), nil
}

// OrderCtx implements OrdererCtx via core.ReorderCtx.
func (RabbitPP) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	res, err := core.ReorderCtx(ctx, m, core.PlusPlusOptions())
	if err != nil {
		return nil, err
	}
	return check.Perm(res.Perm), nil
}

// OrderCtx implements OrdererCtx via core.ReorderCtx.
func (v RabbitVariant) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	res, err := core.ReorderCtx(ctx, m, v.Opts)
	if err != nil {
		return nil, err
	}
	return check.Perm(res.Perm), nil
}

// OrderCtx implements OrdererCtx via community.LouvainCtx's cancellable
// local-moving sweeps.
func (LouvainOrder) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	a, err := community.LouvainCtx(ctx, m.Symmetrize(), community.LouvainOptions{})
	if err != nil {
		return nil, err
	}
	return check.Perm(louvainPerm(m, a)), nil
}

// louvainPerm lays communities out contiguously (larger communities first,
// original relative order within each), shared by LouvainOrder's Order and
// OrderCtx paths.
func louvainPerm(m *sparse.CSR, a community.Assignment) sparse.Permutation {
	sizes := a.Sizes()
	// Rank communities by descending size, ties by label, so big
	// communities stream first.
	rank := make([]int32, a.Count)
	for i := range rank {
		rank[i] = int32(i)
	}
	sort.SliceStable(rank, func(x, y int) bool { return sizes[rank[x]] > sizes[rank[y]] })
	pos := make([]int32, a.Count)
	var cursor int32
	for _, c := range rank {
		pos[c] = cursor
		cursor += sizes[c]
	}
	perm := make(sparse.Permutation, m.NumRows)
	fill := make([]int32, a.Count)
	for v := int32(0); v < m.NumRows; v++ {
		c := a.Of[v]
		perm[v] = pos[c] + fill[c]
		fill[c]++
	}
	return perm
}

// OrderCtx implements OrdererCtx: stages run under the context and a
// checkpoint separates consecutive stages.
func (c Chain) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	perm := sparse.Identity(m.NumRows)
	cur := m
	for _, t := range c {
		p, err := WithContext(t).OrderCtx(ctx, cur)
		if err != nil {
			return nil, err
		}
		cur = cur.PermuteSymmetric(p)
		perm = perm.Compose(p)
	}
	return check.Perm(perm), nil
}

// OrderCtx implements OrdererCtx: components are processed under the
// context with a checkpoint between components.
func (p PerComponent) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	inner := WithContext(p.Inner)
	label, count := m.ConnectedComponents()
	if count <= 1 {
		return inner.OrderCtx(ctx, m)
	}
	members := make([][]int32, count)
	for v := int32(0); v < m.NumRows; v++ {
		members[label[v]] = append(members[label[v]], v)
	}
	order := make([]int32, 0, count)
	for c := int32(0); c < count; c++ {
		order = append(order, c)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(members[order[a]]) > len(members[order[b]])
	})
	perm := make(sparse.Permutation, m.NumRows)
	var base int32
	for _, c := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sub, localOf := extractComponent(m, members[c])
		local, err := inner.OrderCtx(ctx, sub)
		if err != nil {
			return nil, err
		}
		for i, v := range localOf {
			perm[v] = base + local[i]
		}
		base += check.SafeInt32(len(localOf))
	}
	return check.Perm(perm), nil
}
