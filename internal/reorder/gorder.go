package reorder

import (
	"context"

	"repro/internal/check"
	"repro/internal/sparse"
)

// Gorder implements the greedy window ordering of Wei et al. (SIGMOD'16):
// vertices are emitted one by one, each time choosing the unplaced vertex
// with the highest locality score against the last Window placed vertices.
// The score S(u, v) counts shared in-neighbors plus direct edges. The
// paper's Figure 9 shows this technique's defining cost: its preprocessing
// time scales far worse than RABBIT's, and Section VI-C reports it needs
// thousands of SpMV iterations to amortize.
//
// Like the reference implementation, the priority queue is a "unit heap":
// scores change by ±1, so a bucket list per score value gives O(1)
// increment/decrement and pop-max by scanning down from the current
// maximum.
type Gorder struct {
	// Window is the sliding window width; the original paper uses 5, and 0
	// defaults to it.
	Window int
	// MaxFanout guards the sibling expansion: contributions through
	// in-neighbors with more than MaxFanout out-edges are skipped (a giant
	// hub makes the exact expansion quadratic). 0 means 4096. The guard
	// only kicks in on extreme hubs, leaving the algorithm exact on
	// typical inputs.
	MaxFanout int
}

// Name implements Technique.
func (Gorder) Name() string { return "GORDER" }

// unitQueue is a bucketed max-priority queue over vertices with small
// integer keys. All operations are O(1) except popMax's scan down from
// the high-water mark, which amortizes across pops.
type unitQueue struct {
	key    []int32
	next   []int32 // doubly-linked list within a bucket
	prev   []int32
	head   []int32 // bucket heads by key
	in     []bool  // still queued
	maxKey int32
}

func newUnitQueue(n int32) *unitQueue {
	q := &unitQueue{
		key:  make([]int32, n),
		next: make([]int32, n),
		prev: make([]int32, n),
		head: make([]int32, 8),
		in:   make([]bool, n),
	}
	for i := range q.head {
		q.head[i] = -1
	}
	for v := int32(0); v < n; v++ {
		q.in[v] = true
		q.pushFront(0, v)
	}
	return q
}

func (q *unitQueue) pushFront(key, v int32) {
	for int(key) >= len(q.head) {
		q.head = append(q.head, -1)
	}
	h := q.head[key]
	q.next[v] = h
	q.prev[v] = -1
	if h != -1 {
		q.prev[h] = v
	}
	q.head[key] = v
	q.key[v] = key
	if key > q.maxKey {
		q.maxKey = key
	}
}

func (q *unitQueue) unlink(v int32) {
	if q.prev[v] != -1 {
		q.next[q.prev[v]] = q.next[v]
	} else {
		q.head[q.key[v]] = q.next[v]
	}
	if q.next[v] != -1 {
		q.prev[q.next[v]] = q.prev[v]
	}
}

// bump adjusts v's key by delta (±1 steps are typical but any delta
// works); no-op for dequeued vertices.
func (q *unitQueue) bump(v, delta int32) {
	if !q.in[v] || delta == 0 {
		return
	}
	k := q.key[v] + delta
	if k < 0 {
		k = 0
	}
	q.unlink(v)
	q.pushFront(k, v)
}

// remove dequeues v.
func (q *unitQueue) remove(v int32) {
	if !q.in[v] {
		return
	}
	q.unlink(v)
	q.in[v] = false
}

// popMax dequeues and returns a vertex with the maximal key, or -1 when
// empty.
func (q *unitQueue) popMax() int32 {
	for q.maxKey >= 0 {
		if v := q.head[q.maxKey]; v != -1 {
			q.unlink(v)
			q.in[v] = false
			return v
		}
		q.maxKey--
	}
	return -1
}

// Order implements Technique.
func (g Gorder) Order(m *sparse.CSR) sparse.Permutation {
	// A background context never cancels, so the error path is unreachable.
	p, _ := g.OrderCtx(context.Background(), m)
	return check.Perm(p)
}

// OrderCtx implements OrdererCtx: the greedy window scan checks ctx every
// 256 placed vertices, bounding cancellation latency to a few hundred
// score adjustments. GORDER is the technique Figure 9 singles out for
// preprocessing cost, so it is the one that most needs a real deadline.
func (g Gorder) OrderCtx(ctx context.Context, m *sparse.CSR) (sparse.Permutation, error) {
	window := g.Window
	if window <= 0 {
		window = 5
	}
	maxFanout := g.MaxFanout
	if maxFanout <= 0 {
		maxFanout = 4096
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := m.NumRows
	if n == 0 {
		return sparse.Permutation{}, nil
	}
	tr := m.Transpose() // rows of tr = in-neighbors

	q := newUnitQueue(n)
	inDeg := tr.Degrees()

	// adjustScores adds delta to the scores of every vertex related to u:
	// direct out/in neighbors (the Sn term) and out-neighbors of u's
	// in-neighbors (the Ss shared-in-neighbor term).
	adjustScores := func(u int32, delta int32) {
		outs, _ := m.Row(u)
		for _, w := range outs {
			q.bump(w, delta)
		}
		ins, _ := tr.Row(u)
		for _, x := range ins {
			q.bump(x, delta)
			xOuts, _ := m.Row(x)
			if len(xOuts) > maxFanout {
				continue
			}
			for _, w := range xOuts {
				if w != u {
					q.bump(w, delta)
				}
			}
		}
	}

	// Start from the vertex with maximum in-degree, as the original
	// algorithm does.
	var start int32
	for v := int32(1); v < n; v++ {
		if inDeg[v] > inDeg[start] {
			start = v
		}
	}

	order := make([]int32, 0, n)
	win := make([]int32, 0, window)
	place := func(u int32) {
		q.remove(u)
		order = append(order, u)
		if len(win) == window {
			adjustScores(win[0], -1)
			copy(win, win[1:])
			win = win[:len(win)-1]
		}
		win = append(win, u)
		adjustScores(u, 1)
	}
	place(start)
	for len(order) < int(n) {
		if len(order)%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		next := q.popMax()
		if next < 0 {
			break
		}
		place(next)
	}
	return check.Perm(sparse.FromNewOrder(order)), nil
}
