package reorder

import (
	"math/bits"
	"sort"

	"repro/internal/check"
	"repro/internal/sparse"
)

// DBG implements Degree-Based Grouping (Faldu et al., IISWC'19): vertices
// are binned by power-of-two in-degree ranges, bins are laid out in
// decreasing degree order, and the original relative order is preserved
// within each bin. Unlike DEGSORT's total reassignment, DBG packs
// highly-referenced vertices together while retaining whatever locality the
// original ordering already had.
type DBG struct{}

// Name implements Technique.
func (DBG) Name() string { return "DBG" }

// Order implements Technique.
func (DBG) Order(m *sparse.CSR) sparse.Permutation {
	inDeg := m.InDegrees()
	// Bucket index: floor(log2(degree+1)); bucket 0 holds isolated
	// vertices. 32 buckets cover any int32 degree.
	const buckets = 32
	var counts [buckets]int32
	bucketOf := func(d int32) int {
		return bits.Len32(uint32(d))
	}
	for _, d := range inDeg {
		counts[bucketOf(d)]++
	}
	// Descending-degree bucket layout: highest bucket first.
	var starts [buckets]int32
	var cursor int32
	for b := buckets - 1; b >= 0; b-- {
		starts[b] = cursor
		cursor += counts[b]
	}
	p := make(sparse.Permutation, m.NumRows)
	var offsets [buckets]int32
	for v := int32(0); v < m.NumRows; v++ {
		b := bucketOf(inDeg[v])
		p[v] = starts[b] + offsets[b]
		offsets[b]++
	}
	return check.Perm(p)
}

// HubSort packs hub vertices (in-degree above the average degree) first in
// decreasing degree order and leaves the rest in original order — the
// standalone hub-sorting baseline of Balaji & Lucia (IISWC'18).
type HubSort struct{}

// Name implements Technique.
func (HubSort) Name() string { return "HUBSORT" }

// Order implements Technique.
func (HubSort) Order(m *sparse.CSR) sparse.Permutation {
	inDeg := m.InDegrees()
	avg := m.AverageDegree()
	var hubs, rest []int32
	for v := int32(0); v < m.NumRows; v++ {
		if float64(inDeg[v]) > avg {
			hubs = append(hubs, v)
		} else {
			rest = append(rest, v)
		}
	}
	sort.SliceStable(hubs, func(a, b int) bool { return inDeg[hubs[a]] > inDeg[hubs[b]] })
	return check.Perm(sparse.FromNewOrder(append(hubs, rest...)))
}

// HubGroup packs hub vertices first in their original relative order,
// preserving pre-existing locality among the hubs — the standalone
// hub-grouping baseline.
type HubGroup struct{}

// Name implements Technique.
func (HubGroup) Name() string { return "HUBGROUP" }

// Order implements Technique.
func (HubGroup) Order(m *sparse.CSR) sparse.Permutation {
	inDeg := m.InDegrees()
	avg := m.AverageDegree()
	var hubs, rest []int32
	for v := int32(0); v < m.NumRows; v++ {
		if float64(inDeg[v]) > avg {
			hubs = append(hubs, v)
		} else {
			rest = append(rest, v)
		}
	}
	return check.Perm(sparse.FromNewOrder(append(hubs, rest...)))
}
