package reorder

import (
	"context"
	"errors"
	"testing"

	"repro/internal/sparse"
)

// TestOrderCtxCancelledBeforeStart: a context that is already cancelled
// must surface context.Canceled from every technique (native OrdererCtx or
// adapted) with no permutation — callers must never observe a result after
// cancellation.
func TestOrderCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := metamorphicMatrix()
	for _, tech := range propertyTechniques() {
		tech := tech
		t.Run(tech.Name(), func(t *testing.T) {
			p, err := WithContext(tech).OrderCtx(ctx, m)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if p != nil {
				t.Fatalf("got permutation %v after cancellation", p)
			}
		})
	}
}

// TestOrderCtxMatchesOrder: with a live context, OrderCtx must be
// byte-identical to Order — cancellation support must not perturb results,
// or the golden determinism tests and the serving cache's digest keying
// both break.
func TestOrderCtxMatchesOrder(t *testing.T) {
	matrices := map[string]*sparse.CSR{"community": metamorphicMatrix()}
	for name, m := range pathologicalMatrices() {
		matrices[name] = m
	}
	for matName, m := range matrices {
		for _, tech := range propertyTechniques() {
			tech, m := tech, m
			t.Run(matName+"/"+tech.Name(), func(t *testing.T) {
				want := tech.Order(m)
				got, err := WithContext(tech).OrderCtx(context.Background(), m)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("OrderCtx diverges from Order at %d: %d vs %d", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestByNameCtx: every registered name resolves to a cancellable orderer
// whose Name round-trips.
func TestByNameCtx(t *testing.T) {
	for _, tech := range All() {
		o, err := ByNameCtx(tech.Name())
		if err != nil {
			t.Fatalf("%s: %v", tech.Name(), err)
		}
		if o.Name() != tech.Name() {
			t.Fatalf("name mismatch: %q vs %q", o.Name(), tech.Name())
		}
	}
	if _, err := ByNameCtx("NO-SUCH-TECHNIQUE"); err == nil {
		t.Fatal("unknown name resolved")
	}
}
