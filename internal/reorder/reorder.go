// Package reorder provides the matrix reordering techniques the paper
// characterizes (Section IV-A): ORIGINAL, RANDOM, DEGSORT, DBG, GORDER,
// and adapters for the community-based RABBIT and RABBIT++ implemented in
// internal/core, plus RCM and SLASHBURN as additional baselines from the
// related-work space.
//
// A parallel tier (BOBA, RCM++, RABBIT-SHARD) accepts a Workers count via
// Options and the ParallelOrderer interface; every technique — parallel or
// not — produces a byte-identical permutation at any worker count.
//
// Every technique consumes a square CSR matrix and produces a permutation
// mapping old IDs to new IDs; applying it with CSR.PermuteSymmetric
// preserves kernel semantics exactly (a property the test suites verify).
//
//repro:deterministic
package reorder

import (
	"fmt"
	"sort"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/sparse"
)

// Technique is a matrix reordering algorithm.
type Technique interface {
	// Name returns the technique's display name as used in the paper's
	// figures.
	Name() string
	// Order computes the old→new permutation for the matrix.
	Order(m *sparse.CSR) sparse.Permutation
}

// Original returns the matrix's published ordering unchanged — the
// ill-defined baseline of Observation 3.
type Original struct{}

// Name implements Technique.
func (Original) Name() string { return "ORIGINAL" }

// Order implements Technique.
func (Original) Order(m *sparse.CSR) sparse.Permutation {
	return check.Perm(sparse.Identity(m.NumRows))
}

// Random assigns IDs uniformly at random (deterministically in Seed) — the
// structure-destroying lower bound.
type Random struct {
	Seed uint64
}

// Name implements Technique.
func (Random) Name() string { return "RANDOM" }

// Order implements Technique.
func (r Random) Order(m *sparse.CSR) sparse.Permutation {
	// Fisher-Yates with a local splitmix64-style generator; math/rand's
	// global state is never used in this repository.
	p := sparse.Identity(m.NumRows)
	x := r.Seed + 0x9e3779b97f4a7c15
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := len(p) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return check.Perm(p)
}

// DegSort assigns IDs in decreasing order of in-degree (stable in the
// original IDs), packing the most-referenced rows of the input vector into
// the fewest cache lines.
type DegSort struct{}

// Name implements Technique.
func (DegSort) Name() string { return "DEGSORT" }

// Order implements Technique.
func (DegSort) Order(m *sparse.CSR) sparse.Permutation {
	inDeg := m.InDegrees()
	order := make([]int32, m.NumRows)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return inDeg[order[a]] > inDeg[order[b]] })
	return check.Perm(sparse.FromNewOrder(order))
}

// Rabbit adapts internal/core's community-based reordering.
type Rabbit struct{}

// Name implements Technique.
func (Rabbit) Name() string { return "RABBIT" }

// Order implements Technique.
func (Rabbit) Order(m *sparse.CSR) sparse.Permutation {
	return check.Perm(core.Rabbit(m).Perm)
}

// RabbitPP adapts RABBIT++, the paper's proposal: RABBIT plus insular-node
// grouping plus hub grouping.
type RabbitPP struct{}

// Name implements Technique.
func (RabbitPP) Name() string { return "RABBIT++" }

// Order implements Technique.
func (RabbitPP) Order(m *sparse.CSR) sparse.Permutation {
	return check.Perm(core.RabbitPlusPlus(m).Perm)
}

// RabbitVariant exposes an arbitrary point of the Table II design space as
// a Technique.
type RabbitVariant struct {
	Opts core.Options
}

// Name implements Technique.
func (v RabbitVariant) Name() string {
	name := v.Opts.Hub.String()
	if v.Opts.GroupInsular {
		name += "+INS"
	}
	return name
}

// Order implements Technique.
func (v RabbitVariant) Order(m *sparse.CSR) sparse.Permutation {
	return check.Perm(core.Reorder(m, v.Opts).Perm)
}

// ByName resolves a technique from its display name. Reordering seeds and
// parameters use their experiment defaults.
func ByName(name string) (Technique, error) {
	for _, t := range All() {
		if t.Name() == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("reorder: unknown technique %q", name)
}

// All returns the techniques in the order the paper's Figure 2 presents
// them, followed by the extra baselines this repository adds.
func All() []Technique {
	return []Technique{
		Random{Seed: 0xC0FFEE},
		Original{},
		DegSort{},
		DBG{},
		Gorder{Window: 5},
		Rabbit{},
		RabbitPP{},
		RCM{},
		HubSort{},
		HubGroup{},
		SlashBurn{K: 64},
		PartitionOrder{},
		LouvainOrder{},
		FrequencyClustering{},
		HubCluster{},
		Boba{},
		RCMPP{},
		RabbitShard{},
	}
}

// Figure2 returns the six orderings of Figure 2, in presentation order.
func Figure2() []Technique {
	return []Technique{
		Random{Seed: 0xC0FFEE},
		Original{},
		DegSort{},
		DBG{},
		Gorder{Window: 5},
		Rabbit{},
	}
}
