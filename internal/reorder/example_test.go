package reorder_test

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/quality"
	"repro/internal/reorder"
)

// ExampleTechnique sweeps several techniques over one community graph and
// ranks them by the windowed working-set estimate — the cache-footprint
// intuition of the paper's Figure 1.
func ExampleTechnique() {
	m := gen.PlantedPartition{Nodes: 4096, Communities: 32, AvgDegree: 10, Mu: 0.1}.Generate(7)
	for _, tech := range []reorder.Technique{
		reorder.Random{Seed: 1},
		reorder.DegSort{},
		reorder.Rabbit{},
	} {
		p := tech.Order(m)
		ws := quality.WindowedWorkingSet(m, p, 128)
		fmt.Printf("%-8s working set per 128 rows: %.0f columns (of %d)\n", tech.Name(), ws, m.NumRows)
	}
	// The community ordering needs a fraction of the footprint the others
	// do; exact numbers are deterministic for the fixed seed.

	// Output:
	// RANDOM   working set per 128 rows: 1066 columns (of 4096)
	// DEGSORT  working set per 128 rows: 1054 columns (of 4096)
	// RABBIT   working set per 128 rows: 336 columns (of 4096)
}
