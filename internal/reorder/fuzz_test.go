package reorder

import (
	"context"
	"testing"

	"repro/internal/check"
	"repro/internal/sparse"
)

// fuzzMatrix decodes a byte string into a small square CSR: the first byte
// picks the dimension, the rest is consumed pairwise as edges (the same
// encoding internal/core's fuzz targets use).
func fuzzMatrix(data []byte) *sparse.CSR {
	if len(data) == 0 {
		return sparse.NewCOO(0, 0, 0).ToCSR()
	}
	n := int32(data[0]%48) + 1
	data = data[1:]
	coo := sparse.NewCOO(n, n, len(data)/2)
	for len(data) >= 2 {
		r := int32(data[0]) % n
		c := int32(data[1]) % n
		data = data[2:]
		coo.Add(r, c, 1)
	}
	return coo.ToCSR()
}

// fuzzParallel drives one parallel technique on an arbitrary small graph:
// the permutation must be a valid bijection at an arbitrary worker count
// and byte-identical to the workers=1 reference — the fuzz-shaped version
// of the worker-count determinism matrix. The worker byte deliberately
// ranges past NumCPU so over-subscription is fuzzed too.
func fuzzParallel(t *testing.T, po ParallelOrderer, data []byte) {
	if len(data) == 0 {
		return
	}
	workers := int(data[0]%8) + 1
	data = data[1:]
	if len(data) > 512 {
		data = data[:512]
	}
	m := fuzzMatrix(data)
	ref, err := po.OrderParallelCtx(context.Background(), m, Options{Workers: 1})
	if err != nil {
		t.Fatalf("%s workers=1: %v", po.Name(), err)
	}
	if err := check.ValidPermutation(ref); err != nil {
		t.Fatalf("%s: invalid permutation: %v", po.Name(), err)
	}
	if len(ref) != int(m.NumRows) {
		t.Fatalf("%s: permutation size %d for %d rows", po.Name(), len(ref), m.NumRows)
	}
	p, err := po.OrderParallelCtx(context.Background(), m, Options{Workers: workers})
	if err != nil {
		t.Fatalf("%s workers=%d: %v", po.Name(), workers, err)
	}
	for i := range p {
		if p[i] != ref[i] {
			t.Fatalf("%s: workers=%d diverges from workers=1 at vertex %d", po.Name(), workers, i)
		}
	}
}

// FuzzBobaValidPermutation fuzzes the BOBA first-touch pass: CSR from
// fuzz bytes → orderer → check.ValidPermutation, plus worker-count
// equivalence.
func FuzzBobaValidPermutation(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{3, 4, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{7, 48, 7, 7, 7, 8, 8, 7, 1, 2, 3, 4, 5, 6, 40, 41, 41, 40})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzParallel(t, Boba{}, data)
	})
}

// FuzzRCMPPValidPermutation fuzzes the bi-criteria RCM++: CSR from fuzz
// bytes → orderer → check.ValidPermutation, plus worker-count
// equivalence.
func FuzzRCMPPValidPermutation(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{3, 4, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{7, 48, 7, 7, 7, 8, 8, 7, 1, 2, 3, 4, 5, 6, 40, 41, 41, 40})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzParallel(t, RCMPP{}, data)
	})
}
