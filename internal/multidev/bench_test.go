package multidev

import (
	"fmt"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/trace"
)

// BenchmarkMultiDev measures the per-access cost of the K-device
// simulation against the flat single-L2 path over the same SpMV trace,
// so the bench harness can track how much the ownership classification
// and per-device dispatch cost on top of the raw cache simulator.
func BenchmarkMultiDev(b *testing.B) {
	m := gen.PlantedPartition{Nodes: 16384, Communities: 64, AvgDegree: 16, Mu: 0.2}.Generate(1)
	flat := cachesim.Config{CapacityBytes: 512 << 10, LineBytes: 128, Ways: 16}
	var accesses int64
	trace.SpMVCSR(m, flat.LineBytes)(func(int64) { accesses++ })
	perAccess := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*accesses), "ns/access")
	}
	b.Run("flat", func(b *testing.B) {
		tr := trace.SpMVCSR(m, flat.LineBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cachesim.SimulateLRU(flat, tr)
		}
		perAccess(b)
	})
	for _, k := range []int{4, 16} {
		b.Run(fmt.Sprintf("devices-%d", k), func(b *testing.B) {
			cfg := Config{Devices: k, L2: flat.Split(k), Impl: cachesim.ImplFast}
			ot := trace.SpMVCSROwned(m, partition.RowBlocks(m.NumRows, int32(k)), flat.LineBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Simulate(cfg, ot)
			}
			perAccess(b)
		})
	}
}
